// A Flicker-protected Certificate Authority (paper §6.3.2).
//
// The CA's private key exists in cleartext only inside Flicker sessions.
// The certificate database digest is sealed with monotonic-counter replay
// protection, so the compromised OS can neither steal the key nor roll the
// issuance log back.
//
// Build & run:  ./build/examples/certificate_authority

#include <cstdio>
#include <memory>

#include "src/apps/ca.h"
#include "src/crypto/sha1.h"

using namespace flicker;  // NOLINT: example brevity.

int main() {
  FlickerPlatform machine;
  Bytes owner_auth = Sha1::Digest(BytesOf("ca-owner"));
  (void)machine.tpm()->TakeOwnership(owner_auth);

  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary ca_pal = BuildPal(std::make_shared<CaPal>(), options).value();
  CertificateAuthorityHost ca(&machine, &ca_pal, "Flicker Example CA");

  Result<Bytes> public_key = ca.Initialize(owner_auth);
  if (!public_key.ok()) {
    std::printf("init failed: %s\n", public_key.status().ToString().c_str());
    return 1;
  }
  std::printf("CA initialized; public key %zu bytes, private key sealed to the PAL\n",
              public_key.value().size());

  CaPolicy policy;
  policy.allowed_suffixes = {".corp.example.com"};

  // Issue a few certificates.
  for (const char* host : {"www.corp.example.com", "mail.corp.example.com",
                           "vpn.corp.example.com"}) {
    CertificateSigningRequest csr;
    csr.subject = host;
    Drbg rng(BytesOf(csr.subject));
    csr.subject_public_key = RsaGenerateKey(512, &rng).pub.Serialize();
    CertificateAuthorityHost::SignReport report = ca.SignCertificate(csr, policy);
    if (report.status.ok()) {
      bool valid =
          CertificateAuthorityHost::VerifyCertificate(ca.ca_public_key(), report.certificate);
      std::printf("issued serial %llu for %-26s (%.0f ms, signature %s)\n",
                  static_cast<unsigned long long>(report.certificate.serial), host,
                  report.session_ms, valid ? "valid" : "INVALID");
    } else {
      std::printf("FAILED for %s: %s\n", host, report.status.ToString().c_str());
    }
  }

  // Policy enforcement inside the TCB.
  CertificateSigningRequest evil;
  evil.subject = "www.evil.com";
  evil.subject_public_key = Bytes(16, 1);
  std::printf("CSR for www.evil.com: %s\n",
              ca.SignCertificate(evil, policy).status.ToString().c_str());

  // Rollback attack: the OS restores yesterday's sealed state to erase an
  // issued certificate. The monotonic counter catches it.
  Bytes old_state = ca.sealed_state();
  CertificateSigningRequest one_more;
  one_more.subject = "db.corp.example.com";
  one_more.subject_public_key = Bytes(16, 2);
  (void)ca.SignCertificate(one_more, policy);
  ca.set_sealed_state(old_state);
  std::printf("after rollback attack: %s\n",
              ca.SignCertificate(one_more, policy).status.ToString().c_str());

  std::printf("issued log has %zu certificates; audit digest %s...\n",
              ca.issued_log().size(),
              ToHex(CertificateAuthorityHost::ComputeLogDigest(ca.issued_log()))
                  .substr(0, 16)
                  .c_str());
  return 0;
}
