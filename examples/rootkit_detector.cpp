// Remote rootkit detection (paper §6.1): a network administrator verifies a
// possibly-compromised host before admitting it to the corporate VPN.
//
// Build & run:  ./build/examples/rootkit_detector

#include <cstdio>
#include <memory>

#include "src/apps/rootkit_detector.h"

using namespace flicker;  // NOLINT: example brevity.

namespace {

void Report(const char* phase, const RootkitMonitor::QueryReport& report) {
  std::printf("%-38s attestation=%s kernel=%s latency=%.1f ms\n", phase,
              report.status.ok() ? "VALID" : "INVALID",
              report.kernel_clean ? "clean" : "TAMPERED", report.total_latency_ms);
}

}  // namespace

int main() {
  // The employee laptop: SVM machine + untrusted OS.
  FlickerPlatform laptop;

  // The administrator knows the detector PAL and the good kernel hash, and
  // trusts the Privacy CA that certified the laptop's AIK at enrollment.
  PalBinary detector = BuildPal(std::make_shared<RootkitDetectorPal>()).value();
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(laptop.tpm()->aik_public(), "employee-laptop-042");
  RootkitMonitor admin(&detector, laptop.kernel()->pristine_measurement(), ca.public_key(),
                       cert);
  Channel vpn_link(laptop.clock());  // 12 hops, ~9.45 ms RTT (paper §7.1).

  // 1. Clean host admits.
  Report("clean host:", admin.Query(&laptop, &vpn_link));

  // 2. A rootkit hooks sys_open; the measured hash changes.
  (void)laptop.kernel()->InstallSyscallHook(5);
  Report("after syscall-table hook:", admin.Query(&laptop, &vpn_link));

  // 3. The attacker also patches kernel text to hide.
  (void)laptop.kernel()->PatchText(0x1f00, BytesOf("\xe9\xde\xad\xbe\xef"));
  Report("after text patch:", admin.Query(&laptop, &vpn_link));

  // 4. The compromised OS tries the strongest move: tamper with the
  // detector itself before launch. PCR 17 exposes it.
  laptop.flicker_module()->set_corrupt_slb_before_launch(true);
  Report("with tampered detector SLB:", admin.Query(&laptop, &vpn_link));
  laptop.flicker_module()->set_corrupt_slb_before_launch(false);

  // 5. Cleaned up, the host admits again.
  (void)laptop.kernel()->RestorePristine();
  Report("after reimaging:", admin.Query(&laptop, &vpn_link));
  return 0;
}
