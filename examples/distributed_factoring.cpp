// Trustworthy distributed computing (paper §6.2): a BOINC-style client
// factors a number for a server inside Flicker sessions, checkpointing
// MAC-protected state between sessions so the OS can multitask.
//
// Build & run:  ./build/examples/distributed_factoring

#include <cstdio>
#include <memory>

#include "src/apps/distributed.h"

using namespace flicker;  // NOLINT: example brevity.

int main() {
  FlickerPlatform volunteer_machine;
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary pal = BuildPal(std::make_shared<DistributedPal>(), options).value();

  BoincServer server;
  BoincClient client(&volunteer_machine, &pal);
  if (!client.Initialize().ok()) {
    std::printf("init failed\n");
    return 1;
  }
  std::printf("client initialized: 160-bit HMAC key generated from TPM randomness and "
              "sealed to the PAL\n");

  // The server hands out a work unit: find divisors of a composite.
  FactorWorkUnit unit = server.CreateWorkUnit(823'573 * 1'000'003ULL);
  unit.search_limit = 1'100'000;  // ~6 s of simulated compute at 181/ms.

  // Slice into ~2 s sessions so the user's machine stays responsive
  // (Table 4's second column).
  BoincClient::RunStats stats = client.Process(unit, /*slice_ms=*/2000);
  if (!stats.status.ok()) {
    std::printf("processing failed: %s\n", stats.status.ToString().c_str());
    return 1;
  }

  std::printf("work unit done in %d sessions, %.1f s simulated (%.1f s useful work, "
              "%.0f%% overhead)\n",
              stats.sessions, stats.total_ms / 1000.0, stats.work_ms / 1000.0,
              stats.overhead_ms / stats.total_ms * 100.0);
  std::printf("divisors found:");
  for (uint64_t d : stats.divisors) {
    std::printf(" %llu", static_cast<unsigned long long>(d));
  }
  std::printf("\n");

  std::vector<uint64_t> expected = BoincServer::ReferenceFactors(unit);
  std::printf("server-side check: %s\n",
              stats.divisors == expected ? "result matches ground truth"
                                         : "RESULT MISMATCH");
  return stats.divisors == expected ? 0 : 1;
}
