// Attestation tour: the wire-level challenge/response protocol (§4.4.1)
// against a Flicker platform, contrasted with the trusted-boot baseline
// (§2.1/§8) on the same machine.
//
// Build & run:  ./build/examples/attestation_tour

#include <cstdio>
#include <memory>
#include <set>

#include "src/apps/hello.h"
#include "src/attest/ima.h"
#include "src/core/remote_attestation.h"
#include "src/crypto/sha1.h"

using namespace flicker;  // NOLINT: example brevity.

int main() {
  FlickerPlatform platform;
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "demo-host");

  // ---- Flicker: one PAL, one log entry, decisive verdict ----
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).value();
  AttestationService host(&platform, cert);
  AttestationVerifier verifier(&binary, ca.public_key());
  Channel network(platform.clock());

  Bytes challenge = verifier.MakeChallenge();
  network.Deliver();
  Result<Bytes> reply = host.HandleChallenge(challenge, binary, BytesOf("demo input"));
  if (!reply.ok()) {
    std::printf("host failed: %s\n", reply.status().ToString().c_str());
    return 1;
  }
  network.Deliver();
  AttestationVerifier::Outcome outcome = verifier.CheckReply(reply.value());
  std::printf("Flicker attestation: %s\n", outcome.status.ToString().c_str());
  std::printf("  session facts now trustworthy: PAL '%s' on %zu input bytes produced \"%s\"\n",
              outcome.log.pal_name.c_str(), outcome.log.inputs.size(),
              std::string(outcome.log.outputs.begin(), outcome.log.outputs.end()).c_str());

  // A man-in-the-middle doctors the reply; the quote exposes it.
  Bytes challenge2 = verifier.MakeChallenge();
  Result<Bytes> reply2 = host.HandleChallenge(challenge2, binary, BytesOf("demo input"));
  AttestationReply doctored = AttestationReply::Deserialize(reply2.value()).take();
  doctored.log.outputs = BytesOf("doctored output");
  std::printf("with doctored outputs:  %s\n",
              verifier.CheckReply(doctored.Serialize()).status.ToString().c_str());

  // ---- Trusted boot on the same machine: the coarse alternative ----
  ImaSystem ima(platform.machine());
  std::set<std::string> known_good;
  for (const char* component : {"bios", "bootloader", "kernel", "sshd", "apache"}) {
    Bytes content = BytesOf(std::string("v1-") + component);
    (void)ima.MeasureEvent(component, content);
    known_good.insert(ToHex(Sha1::Digest(content)));
  }
  (void)ima.MeasureEvent("locally-built-tool", BytesOf("unknown to verifier"));

  Bytes nonce = Sha1::Digest(BytesOf("ima nonce"));
  ImaVerdict verdict = VerifyImaAttestation(ima.Attest(nonce).value(),
                                            platform.tpm()->aik_public(), known_good, nonce);
  std::printf("\ntrusted-boot attestation over the same machine:\n");
  std::printf("  %zu log entries, %zu unknown (%s) -> platform %s\n", verdict.entries_total,
              verdict.entries_unknown,
              verdict.unknown_entries.empty() ? "-" : verdict.unknown_entries[0].c_str(),
              verdict.Trustworthy() ? "trusted" : "UNDECIDABLE");
  std::printf("  (one unrecognized component spoils the verdict and the whole software\n"
              "   inventory leaked; Flicker attested one PAL and leaked nothing else)\n");
  return outcome.status.ok() ? 0 : 1;
}
