// Flicker-protected SSH password login (paper §6.3.1, Fig. 7).
//
// The user's cleartext password is only ever visible inside the PAL's
// Flicker session on the server; a compromised server OS sees the PKCS#1
// ciphertext and the md5crypt hash, nothing more.
//
// Build & run:  ./build/examples/ssh_login

#include <cstdio>
#include <memory>

#include "src/apps/ssh.h"

using namespace flicker;  // NOLINT: example brevity.

int main() {
  FlickerPlatform server_machine;
  PalBuildOptions options;
  options.measurement_stub = true;  // §7.2 optimization, as in the paper.
  PalBinary ssh_pal = BuildPal(std::make_shared<SshPal>(), options).value();

  SshServer sshd(&server_machine, &ssh_pal);
  (void)sshd.AddUser("alice", "correct horse battery staple", "a1b2c3d4");

  PrivacyCa ca;
  AikCertificate cert = ca.Certify(server_machine.tpm()->aik_public(), "ssh.example.com");
  SshClient client(&ssh_pal, ca.public_key(), cert);

  // --- First Flicker session: establish K_PAL, attested to the client ---
  Bytes setup_nonce = client.MakeNonce();
  Result<SshServer::SetupResult> setup = sshd.Setup(setup_nonce);
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.status().ToString().c_str());
    return 1;
  }
  std::printf("PAL 1 (keygen+seal): %.1f ms; public key %zu bytes\n",
              setup.value().pal1_total_ms, setup.value().public_key.size());

  Status verified = client.VerifyServerSetup(setup.value(), setup_nonce);
  std::printf("client verifies attestation: %s\n", verified.ToString().c_str());
  if (!verified.ok()) {
    return 1;
  }

  // --- Second Flicker session: the login itself ---
  Bytes login_nonce = client.MakeNonce();
  Result<Bytes> ciphertext =
      client.EncryptPassword("correct horse battery staple", login_nonce);
  Result<SshServer::LoginResult> login =
      sshd.HandleLogin("alice", ciphertext.value(), login_nonce);
  std::printf("PAL 2 (unseal+decrypt+md5crypt): %.1f ms -> %s\n",
              login.value().pal2_total_ms,
              login.value().authenticated ? "login OK" : "login DENIED");

  // Wrong password: the PAL happily hashes it, the hash just won't match.
  Bytes bad = client.EncryptPassword("hunter2", client.MakeNonce()).value();
  // (fresh nonce for a fresh exchange)
  Bytes nonce3 = client.MakeNonce();
  bad = client.EncryptPassword("hunter2", nonce3).value();
  Result<SshServer::LoginResult> denied = sshd.HandleLogin("alice", bad, nonce3);
  std::printf("wrong password: %s\n",
              denied.value().authenticated ? "login OK (BUG!)" : "login DENIED");

  // Replay: an eavesdropped ciphertext against a fresh nonce aborts inside
  // the PAL (Fig. 7's nonce check).
  Result<SshServer::LoginResult> replay =
      sshd.HandleLogin("alice", ciphertext.value(), client.MakeNonce());
  std::printf("replayed ciphertext: %s\n", replay.status().ToString().c_str());
  return login.value().authenticated && !denied.value().authenticated ? 0 : 1;
}
