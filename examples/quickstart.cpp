// Quickstart: the paper's Fig. 5 "Hello, world" PAL, run end to end.
//
//   1. Link a PAL against the SLB Core (BuildPal).
//   2. Execute it in a Flicker session (suspend OS -> SKINIT -> PAL ->
//      cleanup -> extends -> resume).
//   3. Attest the session to a verifier and check the PCR 17 chain.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/apps/hello.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"

using namespace flicker;  // NOLINT: example brevity.

int main() {
  // A simulated SVM machine with an untrusted OS on top.
  FlickerPlatform platform;

  // Step 1: link the PAL. The TCB is the SLB Core plus the six-line app.
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  if (!binary.ok()) {
    std::printf("build failed: %s\n", binary.status().ToString().c_str());
    return 1;
  }
  std::printf("PAL '%s': TCB = %d lines, SLB = %u bytes, measurement = %s...\n",
              binary.value().pal->name().c_str(), binary.value().tcb.total_lines,
              binary.value().measured_length,
              ToHex(binary.value().skinit_measurement).substr(0, 16).c_str());

  // Step 2: run it, with a verifier nonce for attestation.
  Bytes nonce = Sha1::Digest(BytesOf("quickstart-nonce"));
  SlbCoreOptions options;
  options.nonce = nonce;
  Result<FlickerSessionResult> session =
      platform.ExecuteSession(binary.value(), BytesOf("ignored input"), options);
  if (!session.ok() || !session.value().ok()) {
    std::printf("session failed\n");
    return 1;
  }
  std::printf("PAL output: \"%s\"\n",
              std::string(session.value().outputs().begin(), session.value().outputs().end())
                  .c_str());
  std::printf("session: suspend %.1f ms, SKINIT %.1f ms, total %.1f ms (simulated)\n",
              session.value().suspend_ms, session.value().skinit_ms,
              session.value().session_total_ms);

  // Step 3: attest. The quote daemon runs on the untrusted OS; trust comes
  // from the TPM signature and the PCR 17 chain.
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "quickstart-machine");
  Result<AttestationResponse> response =
      platform.tqd()->HandleChallenge(nonce, PcrSelection({kSkinitPcr}));
  if (!response.ok()) {
    std::printf("quote failed\n");
    return 1;
  }

  SessionExpectation expectation;
  expectation.binary = &binary.value();
  expectation.inputs = BytesOf("ignored input");
  expectation.outputs = session.value().outputs();
  expectation.nonce = nonce;
  Status verdict =
      VerifyAttestation(expectation, response.value(), cert, ca.public_key(), nonce);
  std::printf("attestation: %s\n", verdict.ToString().c_str());

  // Demonstrate what the verifier catches: claim a different output.
  expectation.outputs = BytesOf("Hello, forgery");
  Status forged = VerifyAttestation(expectation, response.value(), cert, ca.public_key(), nonce);
  std::printf("attestation with forged output: %s\n", forged.ToString().c_str());
  return verdict.ok() && !forged.ok() ? 0 : 1;
}
