// Flicker-protected Certificate Authority (paper §6.3.2).
//
// The CA's private signing key only ever exists in cleartext inside a
// Flicker session. Session 1 generates the 1024-bit keypair from TPM
// randomness and seals {private key, empty certificate database, counter
// credentials} to the PAL. Each signing session unseals the state, applies
// the administrator's access-control policy to the CSR, signs, appends to
// the database, and reseals under a fresh monotonic-counter version so the
// OS cannot roll the database back (§4.3.2).

#ifndef FLICKER_SRC_APPS_CA_H_
#define FLICKER_SRC_APPS_CA_H_

#include <string>
#include <vector>

#include "src/core/flicker_platform.h"
#include "src/core/sealed_state.h"
#include "src/crypto/rsa.h"
#include "src/slb/pal.h"

namespace flicker {

inline constexpr uint8_t kCaModeKeygen = 0;
inline constexpr uint8_t kCaModeSign = 1;

struct CertificateSigningRequest {
  std::string subject;       // e.g. "www.example.com".
  Bytes subject_public_key;  // Serialized RsaPublicKey.

  Bytes Serialize() const;
  static Result<CertificateSigningRequest> Deserialize(const Bytes& data);
};

struct Certificate {
  uint64_t serial = 0;
  std::string subject;
  Bytes subject_public_key;
  std::string issuer;
  Bytes signature;  // CA signature over (serial || subject || key || issuer).

  Bytes SignedPayload() const;
  Bytes Serialize() const;
  static Result<Certificate> Deserialize(const Bytes& data);
};

// The administrator-supplied policy: a CSR is approved iff its subject ends
// with one of the allowed suffixes. The policy travels as (attested) session
// input, so a verifier can confirm which policy gated each signature.
struct CaPolicy {
  std::vector<std::string> allowed_suffixes;

  bool Approves(const std::string& subject) const;
  Bytes Serialize() const;
  static Result<CaPolicy> Deserialize(const Bytes& data);
};

// Bound on any signing frame crossing the network.
inline constexpr size_t kMaxCaFrameBytes = 64 * 1024;

// Wire frame bundling a CSR with the policy that should gate it.
struct CaSignRequest {
  CertificateSigningRequest csr;
  CaPolicy policy;

  Bytes Serialize() const;
  static Result<CaSignRequest> Deserialize(const Bytes& data);
};

class CaPal : public Pal {
 public:
  std::string name() const override { return "certificate-authority"; }
  // No Memory Management module: the CA uses statically allocated buffers,
  // the diet §5.2 recommends, keeping the SLB under the 60 KB code limit.
  std::vector<std::string> required_modules() const override {
    return {kModuleTpmDriver, kModuleTpmUtilities, kModuleCrypto};
  }
  std::vector<std::string> required_symbols() const override {
    return {"rsa_keygen", "rsa_sign", "tpm_seal", "tpm_unseal", "tpm_counter_increment"};
  }
  size_t app_code_bytes() const override { return 3100; }
  int app_lines_of_code() const override { return 240; }

  Status Execute(PalContext* context) override;
};

// Host-side orchestration: runs the keygen and signing sessions, stores the
// sealed state blob between them (untrusted storage, per the threat model).
class CertificateAuthorityHost {
 public:
  CertificateAuthorityHost(FlickerPlatform* platform, const PalBinary* binary,
                           std::string issuer_name);

  // Creates the replay-protection counter (owner-authorized) and runs the
  // keygen session. Returns the CA public key.
  Result<Bytes> Initialize(const Bytes& owner_secret);

  struct SignReport {
    Status status;
    Certificate certificate;
    double session_ms = 0;
  };
  SignReport SignCertificate(const CertificateSigningRequest& csr, const CaPolicy& policy);

  // Wire entry point: parses a hostile signing frame, runs the signing
  // session, returns the serialized certificate. Parse failures and policy
  // denials are Status errors - the CA never emits a bogus certificate.
  Result<Bytes> HandleSignFrame(const Bytes& frame);

  const Bytes& ca_public_key() const { return ca_public_key_; }
  const Bytes& sealed_state() const { return sealed_state_; }
  // Adversary hook: replace the stored blob (e.g. replay an old version).
  void set_sealed_state(const Bytes& blob) { sealed_state_ = blob; }

  // The untrusted certificate log the host keeps; the sealed state carries a
  // rolling digest over it (db_digest_n = SHA1(db_digest_{n-1} || cert_n))
  // so an auditor inside a future PAL session can validate this log.
  const std::vector<Certificate>& issued_log() const { return issued_log_; }
  static Bytes ComputeLogDigest(const std::vector<Certificate>& log);

  // Verifies an issued certificate against the CA public key.
  static bool VerifyCertificate(const Bytes& ca_public_key, const Certificate& certificate);

 private:
  FlickerPlatform* platform_;
  const PalBinary* binary_;
  std::string issuer_;
  Bytes ca_public_key_;
  Bytes sealed_state_;
  std::vector<Certificate> issued_log_;
  uint32_t counter_id_ = 0;
  Bytes counter_auth_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_APPS_CA_H_
