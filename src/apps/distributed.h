// Trustworthy distributed computing (paper §6.2).
//
// A BOINC-style server hands out work units (naive trial-division factoring,
// the paper's demo application). Clients process them inside Flicker
// sessions: the first session generates a 160-bit HMAC key from TPM
// randomness and seals it to the PAL; each work session unseals the key,
// verifies the MAC on its checkpointed state, computes for a bounded slice
// so the OS can multitask, and MACs the new state before yielding. The final
// session extends the result into PCR 17 so one attestation covers the whole
// computation - replacing the 3x/5x/7x redundancy defense (Fig. 8).

#ifndef FLICKER_SRC_APPS_DISTRIBUTED_H_
#define FLICKER_SRC_APPS_DISTRIBUTED_H_

#include <vector>

#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/slb/pal.h"

namespace flicker {

// A factoring work unit: find every divisor of `composite` among candidate
// divisors in [2, search_limit).
struct FactorWorkUnit {
  uint64_t composite = 0;
  uint64_t search_limit = 0;

  Bytes Serialize() const;
};

struct FactorState {
  uint64_t next_divisor = 2;
  std::vector<uint64_t> found;

  Bytes Serialize() const;
  static Result<FactorState> Deserialize(const Bytes& data);
};

// PAL input modes.
inline constexpr uint8_t kDistributedModeInit = 0;
inline constexpr uint8_t kDistributedModeWork = 1;

// Bound on any submission frame crossing the network (carries a quote).
inline constexpr size_t kMaxSubmissionFrameBytes = 1u << 20;

class DistributedPal : public Pal {
 public:
  std::string name() const override { return "boinc-factoring"; }
  // Statically allocated state buffers (no Memory Management module), per
  // the §5.2 guidance, so the linked SLB stays under the 60 KB code limit.
  std::vector<std::string> required_modules() const override {
    return {kModuleTpmDriver, kModuleTpmUtilities, kModuleCrypto};
  }
  std::vector<std::string> required_symbols() const override {
    return {"tpm_seal", "tpm_unseal", "tpm_get_random", "hmac_sha1"};
  }
  size_t app_code_bytes() const override { return 2650; }
  int app_lines_of_code() const override { return 210; }

  Status Execute(PalContext* context) override;
};

// Client-side orchestration: drives the PAL through init + repeated work
// sessions with a caller-chosen slice length (the Table 4 / Fig. 8 knob).
class BoincClient {
 public:
  struct RunStats {
    Status status;
    std::vector<uint64_t> divisors;
    int sessions = 0;
    double total_ms = 0;          // All sessions end to end.
    double work_ms = 0;           // Useful application compute.
    double overhead_ms = 0;       // total - work: Flicker-induced.
    double first_session_unseal_ms = 0;
    Bytes final_outputs;          // What the final session emitted (attested).
  };

  BoincClient(FlickerPlatform* platform, const PalBinary* binary);

  // Runs the init session; stores the sealed key for later work sessions.
  Status Initialize();

  // Processes a unit, slicing work into sessions of ~slice_ms of compute.
  // When `nonce` is nonempty it is extended into PCR 17 of the *final*
  // session, and `Process` leaves the platform in a state where the quote
  // daemon can attest the result (§6.2: "our modified BOINC client then
  // returns the results to the server, along with an attestation").
  RunStats Process(const FactorWorkUnit& unit, double slice_ms, const Bytes& nonce = Bytes());

  // Assembles the attestation bundle for the last completed unit: the final
  // session's inputs/outputs and a fresh TPM quote over PCR 17.
  struct ResultSubmission {
    Bytes final_inputs;   // Inputs of the final work session.
    Bytes final_outputs;  // Outputs carrying the factor list.
    AttestationResponse attestation;

    Bytes Serialize() const;
    static Result<ResultSubmission> Deserialize(const Bytes& data);
  };
  Result<ResultSubmission> SubmitResult(const Bytes& nonce);

  const Bytes& sealed_key() const { return sealed_key_; }

 private:
  FlickerPlatform* platform_;
  const PalBinary* binary_;
  Bytes sealed_key_;
  Bytes last_final_inputs_;
  Bytes last_final_outputs_;
};

// Server side: creates work and checks results, trusting the attestation
// rather than redundant execution.
class BoincServer {
 public:
  explicit BoincServer(uint64_t seed = 0xb01c);

  FactorWorkUnit CreateWorkUnit(uint64_t composite);

  // Server-side acceptance: verify that the submitted result was produced
  // by the genuine PAL under Flicker (quote over the final session's PCR 17
  // chain), and extract the divisors. This is what replaces redundant
  // re-execution (Fig. 8). The server knows the PAL binary and the
  // challenge nonce it issued; everything else arrives in the submission.
  Result<std::vector<uint64_t>> VerifyResult(const PalBinary& binary,
                                             const BoincClient::ResultSubmission& submission,
                                             const AikCertificate& client_aik_cert,
                                             const RsaPublicKey& privacy_ca_public,
                                             const Bytes& nonce);

  // Wire entry point: a hostile submission frame. Corrupt frames and failed
  // attestations are Status errors - the server never accepts a wrong
  // factor list. Returns the divisors as a u32-count + u64 list.
  Result<Bytes> HandleSubmissionFrame(const PalBinary& binary, const Bytes& frame,
                                      const AikCertificate& client_aik_cert,
                                      const RsaPublicKey& privacy_ca_public, const Bytes& nonce);

  // Ground-truth check used by tests (the attestation is what production
  // relies on; this validates the simulator end to end).
  static std::vector<uint64_t> ReferenceFactors(const FactorWorkUnit& unit);

 private:
  Drbg rng_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_APPS_DISTRIBUTED_H_
