#include "src/apps/ca.h"

#include "src/common/serde.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"
#include "src/tpm/tpm_util.h"

namespace flicker {

namespace {

Bytes CaBlobAuth() {
  return Sha1::Digest(BytesOf("ca-pal-state-auth"));
}

// The PAL's cross-session state. Constant size by design: the certificate
// log itself lives with the untrusted OS, and the sealed state carries a
// rolling digest over it (db_digest_{n} = SHA1(db_digest_{n-1} || cert_n)),
// so the log can be audited against the sealed value while the sealed blob
// never outgrows the 4 KB output page.
struct CaState {
  Bytes private_key;  // Serialized RsaPrivateKey.
  uint32_t counter_id = 0;
  Bytes counter_auth;
  uint64_t next_serial = 1;
  Bytes db_digest;  // Rolling digest over every issued certificate.

  Bytes Serialize() const {
    Writer w;
    w.Blob(private_key);
    w.U32(counter_id);
    w.Blob(counter_auth);
    w.U64(next_serial);
    w.Blob(db_digest);
    return w.Take();
  }

  static Result<CaState> Deserialize(const Bytes& data) {
    Reader r(data);
    CaState state;
    state.private_key = r.Blob();
    state.counter_id = r.U32();
    state.counter_auth = r.Blob();
    state.next_serial = r.U64();
    state.db_digest = r.Blob();
    if (!r.ok() || !r.AtEnd()) {
      return InvalidArgumentError("corrupt CA state");
    }
    return state;
  }
};

// Seal the state under the current counter version (Fig. 4 Seal).
Result<Bytes> SealCaState(PalContext* context, const CaState& state, const Bytes& pcr17) {
  ReplayProtectedStorage storage(context->tpm(), state.counter_id, state.counter_auth);
  Result<SealedBlob> blob = storage.Seal(state.Serialize(), pcr17, CaBlobAuth());
  if (!blob.ok()) {
    return blob.status();
  }
  return blob.value().Serialize();
}

}  // namespace

Bytes CertificateSigningRequest::Serialize() const {
  Writer w;
  w.Str(subject);
  w.Blob(subject_public_key);
  return w.Take();
}

Result<CertificateSigningRequest> CertificateSigningRequest::Deserialize(const Bytes& data) {
  Reader r(data);
  CertificateSigningRequest csr;
  csr.subject = r.Str();
  csr.subject_public_key = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt CSR");
  }
  return csr;
}

Bytes Certificate::SignedPayload() const {
  Writer w;
  w.U64(serial);
  w.Str(subject);
  w.Blob(subject_public_key);
  w.Str(issuer);
  return w.Take();
}

Bytes Certificate::Serialize() const {
  Writer w;
  w.U64(serial);
  w.Str(subject);
  w.Blob(subject_public_key);
  w.Str(issuer);
  w.Blob(signature);
  return w.Take();
}

Result<Certificate> Certificate::Deserialize(const Bytes& data) {
  Reader r(data);
  Certificate cert;
  cert.serial = r.U64();
  cert.subject = r.Str();
  cert.subject_public_key = r.Blob();
  cert.issuer = r.Str();
  cert.signature = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt certificate");
  }
  return cert;
}

bool CaPolicy::Approves(const std::string& subject) const {
  for (const std::string& suffix : allowed_suffixes) {
    if (subject.size() >= suffix.size() &&
        subject.compare(subject.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

Bytes CaPolicy::Serialize() const {
  Writer w;
  w.U32(static_cast<uint32_t>(allowed_suffixes.size()));
  for (const std::string& suffix : allowed_suffixes) {
    w.Str(suffix);
  }
  return w.Take();
}

Result<CaPolicy> CaPolicy::Deserialize(const Bytes& data) {
  Reader r(data);
  CaPolicy policy;
  uint32_t count = r.U32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    policy.allowed_suffixes.push_back(r.Str());
  }
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt CA policy");
  }
  return policy;
}

Status CaPal::Execute(PalContext* context) {
  Reader in(context->inputs());
  uint8_t mode = in.U8();

  Result<Bytes> pcr17 = context->tpm()->PcrRead(kSkinitPcr);
  if (!pcr17.ok()) {
    return pcr17.status();
  }

  if (mode == kCaModeKeygen) {
    uint32_t counter_id = in.U32();
    Bytes counter_auth = in.Blob();
    if (!in.ok()) {
      return InvalidArgumentError("corrupt keygen inputs");
    }
    Bytes seed = context->tpm()->GetRandom(128);
    Drbg rng(seed);
    context->ChargeRsaKeygen1024();
    RsaPrivateKey key = RsaGenerateKey(1024, &rng);

    CaState state;
    state.private_key = key.Serialize();
    state.counter_id = counter_id;
    state.counter_auth = counter_auth;
    state.next_serial = 1;
    state.db_digest = Sha1::Digest(Bytes());  // Empty log.
    Result<Bytes> sealed = SealCaState(context, state, pcr17.value());
    if (!sealed.ok()) {
      return sealed.status();
    }

    Writer out;
    out.Blob(key.pub.Serialize());
    out.Blob(sealed.value());
    return context->SetOutputs(out.Take());
  }

  if (mode != kCaModeSign) {
    return InvalidArgumentError("unknown CA PAL mode");
  }

  Bytes sealed_state = in.Blob();
  Bytes csr_bytes = in.Blob();
  Bytes policy_bytes = in.Blob();
  std::string issuer = in.Str();
  if (!in.ok()) {
    return InvalidArgumentError("corrupt signing inputs");
  }

  // Peek the counter credentials: they live inside the sealed state, so
  // unseal first (plain unseal), then verify the version against the live
  // counter - the Fig. 4 Unseal check.
  Result<Bytes> payload =
      UnsealInPal(context->tpm(), SealedBlob::Deserialize(sealed_state), CaBlobAuth());
  if (!payload.ok()) {
    return payload.status();
  }
  if (payload.value().size() < 8) {
    return IntegrityFailureError("sealed CA state missing version");
  }
  uint64_t sealed_version = GetUint64(payload.value(), 0);
  Result<CaState> state =
      CaState::Deserialize(Bytes(payload.value().begin() + 8, payload.value().end()));
  if (!state.ok()) {
    return state.status();
  }
  Result<uint64_t> live_version = context->tpm()->ReadCounter(state.value().counter_id);
  if (!live_version.ok()) {
    return live_version.status();
  }
  if (sealed_version != live_version.value()) {
    return ReplayDetectedError("CA database is stale (rollback attack detected)");
  }

  Result<CertificateSigningRequest> csr = CertificateSigningRequest::Deserialize(csr_bytes);
  if (!csr.ok()) {
    return csr.status();
  }
  Result<CaPolicy> policy = CaPolicy::Deserialize(policy_bytes);
  if (!policy.ok()) {
    return policy.status();
  }
  if (!policy.value().Approves(csr.value().subject)) {
    return PermissionDeniedError("CSR rejected by access-control policy: " + csr.value().subject);
  }

  Result<RsaPrivateKey> key = RsaPrivateKey::Deserialize(state.value().private_key);
  if (!key.ok()) {
    return key.status();
  }

  Certificate cert;
  cert.serial = state.value().next_serial;
  cert.subject = csr.value().subject;
  cert.subject_public_key = csr.value().subject_public_key;
  cert.issuer = issuer;
  context->ChargeRsaSign1024();
  cert.signature = RsaSignSha1(key.value(), cert.SignedPayload());

  // Extend the sealed rolling digest over the new certificate, bump the
  // serial, and reseal. The counter increment happens inside SealCaState,
  // last, so a failed session never leaves the counter ahead of the blob.
  CaState new_state = state.take();
  new_state.next_serial = cert.serial + 1;
  Bytes cert_bytes = cert.Serialize();
  new_state.db_digest = Sha1::Digest(Concat(new_state.db_digest, cert_bytes));
  Result<Bytes> resealed = SealCaState(context, new_state, pcr17.value());
  if (!resealed.ok()) {
    return resealed.status();
  }

  Writer out;
  out.Blob(cert.Serialize());
  out.Blob(resealed.value());
  return context->SetOutputs(out.Take());
}

CertificateAuthorityHost::CertificateAuthorityHost(FlickerPlatform* platform,
                                                   const PalBinary* binary,
                                                   std::string issuer_name)
    : platform_(platform), binary_(binary), issuer_(std::move(issuer_name)) {}

Result<Bytes> CertificateAuthorityHost::Initialize(const Bytes& owner_secret) {
  counter_auth_ = Sha1::Digest(BytesOf("ca-replay-counter-auth"));
  Result<uint32_t> counter =
      TpmCreateCounter(platform_->tpm(), counter_auth_, owner_secret);
  if (!counter.ok()) {
    return counter.status();
  }
  counter_id_ = counter.value();

  Writer in;
  in.U8(kCaModeKeygen);
  in.U32(counter_id_);
  in.Blob(counter_auth_);
  Result<FlickerSessionResult> session = platform_->ExecuteSession(*binary_, in.Take());
  if (!session.ok()) {
    return session.status();
  }
  if (!session.value().ok()) {
    return session.value().record.pal_status;
  }

  Reader out(session.value().outputs());
  ca_public_key_ = out.Blob();
  sealed_state_ = out.Blob();
  if (!out.ok()) {
    return InternalError("keygen session produced corrupt outputs");
  }
  return ca_public_key_;
}

CertificateAuthorityHost::SignReport CertificateAuthorityHost::SignCertificate(
    const CertificateSigningRequest& csr, const CaPolicy& policy) {
  SignReport report;
  if (sealed_state_.empty()) {
    report.status = FailedPreconditionError("CA not initialized");
    return report;
  }
  Writer in;
  in.U8(kCaModeSign);
  in.Blob(sealed_state_);
  in.Blob(csr.Serialize());
  in.Blob(policy.Serialize());
  in.Str(issuer_);
  Result<FlickerSessionResult> session = platform_->ExecuteSession(*binary_, in.Take());
  if (!session.ok()) {
    report.status = session.status();
    return report;
  }
  report.session_ms = session.value().session_total_ms;
  if (!session.value().ok()) {
    report.status = session.value().record.pal_status;
    return report;
  }

  Reader out(session.value().outputs());
  Bytes cert_bytes = out.Blob();
  Bytes new_sealed = out.Blob();
  if (!out.ok()) {
    report.status = InternalError("signing session produced corrupt outputs");
    return report;
  }
  sealed_state_ = new_sealed;
  Result<Certificate> cert = Certificate::Deserialize(cert_bytes);
  if (!cert.ok()) {
    report.status = cert.status();
    return report;
  }
  report.certificate = cert.take();
  issued_log_.push_back(report.certificate);
  report.status = Status::Ok();
  return report;
}

Bytes CertificateAuthorityHost::ComputeLogDigest(const std::vector<Certificate>& log) {
  Bytes digest = Sha1::Digest(Bytes());
  for (const Certificate& cert : log) {
    digest = Sha1::Digest(Concat(digest, cert.Serialize()));
  }
  return digest;
}

bool CertificateAuthorityHost::VerifyCertificate(const Bytes& ca_public_key,
                                                 const Certificate& certificate) {
  Result<RsaPublicKey> key = RsaPublicKey::Deserialize(ca_public_key);
  if (!key.ok()) {
    return false;
  }
  return RsaVerifySha1(key.value(), certificate.SignedPayload(), certificate.signature);
}

Bytes CaSignRequest::Serialize() const {
  Writer w;
  w.Blob(csr.Serialize());
  w.Blob(policy.Serialize());
  return w.Take();
}

Result<CaSignRequest> CaSignRequest::Deserialize(const Bytes& data) {
  if (data.size() > kMaxCaFrameBytes) {
    return InvalidArgumentError("signing frame exceeds wire bound");
  }
  Reader r(data);
  Bytes csr_wire = r.Blob();
  Bytes policy_wire = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt signing frame");
  }
  Result<CertificateSigningRequest> csr = CertificateSigningRequest::Deserialize(csr_wire);
  if (!csr.ok()) {
    return csr.status();
  }
  Result<CaPolicy> policy = CaPolicy::Deserialize(policy_wire);
  if (!policy.ok()) {
    return policy.status();
  }
  CaSignRequest request;
  request.csr = csr.take();
  request.policy = policy.take();
  return request;
}

Result<Bytes> CertificateAuthorityHost::HandleSignFrame(const Bytes& frame) {
  Result<CaSignRequest> request = CaSignRequest::Deserialize(frame);
  if (!request.ok()) {
    return request.status();
  }
  SignReport report = SignCertificate(request.value().csr, request.value().policy);
  if (!report.status.ok()) {
    return report.status;
  }
  return report.certificate.Serialize();
}

}  // namespace flicker
