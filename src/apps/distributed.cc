#include "src/apps/distributed.h"

#include "src/common/serde.h"
#include "src/core/remote_attestation.h"
#include "src/core/sealed_state.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

namespace {

// The blob auth protecting the sealed HMAC key. Knowledge of it is not what
// protects the key - the PCR 17 binding is - so a fixed value is fine (the
// paper's implementation does the same with the well-known secret).
Bytes StateKeyAuth() {
  return Sha1::Digest(BytesOf("boinc-state-key-auth"));
}

}  // namespace

Bytes FactorWorkUnit::Serialize() const {
  Writer w;
  w.U64(composite);
  w.U64(search_limit);
  return w.Take();
}

Bytes FactorState::Serialize() const {
  Writer w;
  w.U64(next_divisor);
  w.U32(static_cast<uint32_t>(found.size()));
  for (uint64_t d : found) {
    w.U64(d);
  }
  return w.Take();
}

Result<FactorState> FactorState::Deserialize(const Bytes& data) {
  Reader r(data);
  FactorState state;
  state.next_divisor = r.U64();
  uint32_t count = r.U32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    state.found.push_back(r.U64());
  }
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt factor state");
  }
  return state;
}

Status DistributedPal::Execute(PalContext* context) {
  Reader in(context->inputs());
  uint8_t mode = in.U8();

  if (mode == kDistributedModeInit) {
    // First invocation: generate the 160-bit symmetric key from TPM
    // randomness and seal it so only this PAL can read it (§6.2).
    Bytes key = context->tpm()->GetRandom(20);
    Result<Bytes> pcr17 = context->tpm()->PcrRead(kSkinitPcr);
    if (!pcr17.ok()) {
      return pcr17.status();
    }
    Result<SealedBlob> sealed = SealForPal(context->tpm(), key, pcr17.value(), StateKeyAuth());
    SecureErase(&key);
    if (!sealed.ok()) {
      return sealed.status();
    }
    Writer out;
    out.Blob(sealed.value().Serialize());
    return context->SetOutputs(out.Take());
  }

  if (mode != kDistributedModeWork) {
    return InvalidArgumentError("unknown distributed PAL mode");
  }

  Bytes sealed_key = in.Blob();
  Bytes state_bytes = in.Blob();
  Bytes state_mac = in.Blob();
  uint64_t composite = in.U64();
  uint64_t search_limit = in.U64();
  uint64_t slice_divisors = in.U64();
  if (!in.ok()) {
    return InvalidArgumentError("corrupt work-session inputs");
  }

  // Unseal the MAC key (the dominant overhead, Table 4).
  Result<Bytes> key = UnsealInPal(context->tpm(), SealedBlob::Deserialize(sealed_key),
                                  StateKeyAuth());
  if (!key.ok()) {
    return key.status();
  }

  FactorState state;
  if (state_bytes.empty() && state_mac.empty()) {
    // Fresh work unit.
    state.next_divisor = 2;
  } else {
    if (!HmacSha1Verify(key.value(), state_bytes, state_mac)) {
      return IntegrityFailureError("checkpointed state MAC mismatch (OS tampering?)");
    }
    Result<FactorState> parsed = FactorState::Deserialize(state_bytes);
    if (!parsed.ok()) {
      return parsed.status();
    }
    state = parsed.take();
  }

  // Application work: trial division for up to `slice_divisors` candidates.
  uint64_t tested = 0;
  while (state.next_divisor < search_limit && tested < slice_divisors) {
    if (composite % state.next_divisor == 0) {
      state.found.push_back(state.next_divisor);
    }
    ++state.next_divisor;
    ++tested;
  }
  context->ChargeDivisorTests(tested);

  bool done = state.next_divisor >= search_limit;
  Writer out;
  out.U8(done ? 1 : 0);
  if (done) {
    // Extend the result into PCR 17 so the attestation covers it (§6.2).
    Bytes result = state.Serialize();
    FLICKER_RETURN_IF_ERROR(context->tpm()->PcrExtend(kSkinitPcr, Sha1::Digest(result)));
    out.Blob(result);
  } else {
    Bytes new_state = state.Serialize();
    Bytes new_mac = HmacSha1(key.value(), new_state);
    out.Blob(new_state);
    out.Blob(new_mac);
  }
  return context->SetOutputs(out.Take());
}

BoincClient::BoincClient(FlickerPlatform* platform, const PalBinary* binary)
    : platform_(platform), binary_(binary) {}

Status BoincClient::Initialize() {
  Writer in;
  in.U8(kDistributedModeInit);
  Result<FlickerSessionResult> session = platform_->ExecuteSession(*binary_, in.Take());
  if (!session.ok()) {
    return session.status();
  }
  if (!session.value().ok()) {
    return session.value().record.pal_status;
  }
  Reader out(session.value().outputs());
  sealed_key_ = out.Blob();
  if (!out.ok() || sealed_key_.empty()) {
    return InternalError("init session produced no sealed key");
  }
  return Status::Ok();
}

BoincClient::RunStats BoincClient::Process(const FactorWorkUnit& unit, double slice_ms,
                                           const Bytes& nonce) {
  RunStats stats;
  if (sealed_key_.empty()) {
    stats.status = FailedPreconditionError("client not initialized");
    return stats;
  }
  const double divisors_per_ms = platform_->machine()->timing().cpu.divisor_tests_per_ms;
  const uint64_t slice_divisors = static_cast<uint64_t>(slice_ms * divisors_per_ms);

  Bytes state_bytes;
  Bytes state_mac;
  SimStopwatch total(platform_->clock());
  for (;;) {
    Writer in;
    in.U8(kDistributedModeWork);
    in.Blob(sealed_key_);
    in.Blob(state_bytes);
    in.Blob(state_mac);
    in.U64(unit.composite);
    in.U64(unit.search_limit);
    in.U64(slice_divisors);
    Bytes inputs = in.Take();

    // Each session extends the nonce; only the final session's PCR 17
    // survives to be quoted, so the attestation covers exactly the final
    // slice plus the result it extended.
    SlbCoreOptions options;
    options.nonce = nonce;
    Result<FlickerSessionResult> session = platform_->ExecuteSession(*binary_, inputs, options);
    if (!session.ok()) {
      stats.status = session.status();
      return stats;
    }
    if (!session.value().ok()) {
      stats.status = session.value().record.pal_status;
      return stats;
    }
    ++stats.sessions;

    Reader out(session.value().outputs());
    uint8_t done = out.U8();
    if (done == 1) {
      Bytes result = out.Blob();
      Result<FactorState> state = FactorState::Deserialize(result);
      if (!state.ok()) {
        stats.status = state.status();
        return stats;
      }
      stats.divisors = state.value().found;
      stats.final_outputs = session.value().outputs();
      last_final_inputs_ = inputs;
      last_final_outputs_ = session.value().outputs();
      break;
    }
    state_bytes = out.Blob();
    state_mac = out.Blob();
    if (!out.ok()) {
      stats.status = InternalError("work session produced corrupt outputs");
      return stats;
    }
    // Between sessions the OS runs (multitasking, §6.2); model a brief
    // window matching the paper's §7.5 measurement (~37 ms).
    platform_->scheduler()->RunFor(37.0);
  }
  stats.total_ms = total.ElapsedMillis();
  // Useful work: candidates actually tested / throughput.
  double total_candidates = static_cast<double>(unit.search_limit - 2);
  stats.work_ms = total_candidates / divisors_per_ms;
  stats.overhead_ms = stats.total_ms - stats.work_ms;
  stats.status = Status::Ok();
  return stats;
}

Result<BoincClient::ResultSubmission> BoincClient::SubmitResult(const Bytes& nonce) {
  if (last_final_outputs_.empty()) {
    return FailedPreconditionError("no completed work unit to submit");
  }
  Result<AttestationResponse> attestation =
      platform_->tqd()->HandleChallenge(nonce, PcrSelection({kSkinitPcr}));
  if (!attestation.ok()) {
    return attestation.status();
  }
  ResultSubmission submission;
  submission.final_inputs = last_final_inputs_;
  submission.final_outputs = last_final_outputs_;
  submission.attestation = attestation.take();
  return submission;
}

BoincServer::BoincServer(uint64_t seed) : rng_(seed) {}

Result<std::vector<uint64_t>> BoincServer::VerifyResult(
    const PalBinary& binary, const BoincClient::ResultSubmission& submission,
    const AikCertificate& client_aik_cert, const RsaPublicKey& privacy_ca_public,
    const Bytes& nonce) {
  // Parse the claimed result from the final outputs.
  Reader out(submission.final_outputs);
  if (out.U8() != 1) {
    return InvalidArgumentError("submission does not carry a completed result");
  }
  Bytes result = out.Blob();
  if (!out.ok()) {
    return InvalidArgumentError("corrupt result submission");
  }

  // Reconstruct the final session's PCR 17 chain: the PAL extended H(result)
  // before the SLB core's closing extends.
  SessionExpectation expectation;
  expectation.binary = &binary;
  expectation.inputs = submission.final_inputs;
  expectation.outputs = submission.final_outputs;
  expectation.nonce = nonce;
  expectation.pal_extends = {Sha1::Digest(result)};
  FLICKER_RETURN_IF_ERROR(VerifyAttestation(expectation, submission.attestation,
                                            client_aik_cert, privacy_ca_public, nonce));

  Result<FactorState> state = FactorState::Deserialize(result);
  if (!state.ok()) {
    return state.status();
  }
  return state.value().found;
}

FactorWorkUnit BoincServer::CreateWorkUnit(uint64_t composite) {
  FactorWorkUnit unit;
  unit.composite = composite;
  // Naive approach from the paper: test a range of candidate divisors.
  unit.search_limit = 1 << 20;
  return unit;
}

std::vector<uint64_t> BoincServer::ReferenceFactors(const FactorWorkUnit& unit) {
  std::vector<uint64_t> out;
  for (uint64_t d = 2; d < unit.search_limit; ++d) {
    if (unit.composite % d == 0) {
      out.push_back(d);
    }
  }
  return out;
}

Bytes BoincClient::ResultSubmission::Serialize() const {
  Writer w;
  w.Blob(final_inputs);
  w.Blob(final_outputs);
  w.Blob(SerializeAttestationResponse(attestation));
  return w.Take();
}

Result<BoincClient::ResultSubmission> BoincClient::ResultSubmission::Deserialize(
    const Bytes& data) {
  if (data.size() > kMaxSubmissionFrameBytes) {
    return InvalidArgumentError("submission frame exceeds wire bound");
  }
  Reader r(data);
  ResultSubmission submission;
  submission.final_inputs = r.Blob();
  submission.final_outputs = r.Blob();
  Bytes attestation_wire = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt submission frame");
  }
  Result<AttestationResponse> attestation = DeserializeAttestationResponse(attestation_wire);
  if (!attestation.ok()) {
    return attestation.status();
  }
  submission.attestation = attestation.take();
  return submission;
}

Result<Bytes> BoincServer::HandleSubmissionFrame(const PalBinary& binary, const Bytes& frame,
                                                 const AikCertificate& client_aik_cert,
                                                 const RsaPublicKey& privacy_ca_public,
                                                 const Bytes& nonce) {
  Result<BoincClient::ResultSubmission> submission =
      BoincClient::ResultSubmission::Deserialize(frame);
  if (!submission.ok()) {
    return submission.status();
  }
  Result<std::vector<uint64_t>> divisors =
      VerifyResult(binary, submission.value(), client_aik_cert, privacy_ca_public, nonce);
  if (!divisors.ok()) {
    return divisors.status();
  }
  Writer w;
  w.U32(static_cast<uint32_t>(divisors.value().size()));
  for (uint64_t d : divisors.value()) {
    w.U64(d);
  }
  return w.Take();
}

}  // namespace flicker
