#include "src/apps/ssh.h"

#include "src/common/serde.h"
#include "src/obs/trace.h"
#include "src/crypto/md5crypt.h"
#include "src/crypto/sha1.h"

namespace flicker {

namespace {

Bytes SshBlobAuth() {
  return Sha1::Digest(BytesOf("ssh-pal-private-key-auth"));
}

}  // namespace

Status SshPal::Execute(PalContext* context) {
  Reader in(context->inputs());
  uint8_t mode = in.U8();

  if (mode == kSshModeSetup) {
    Result<SecureChannelKeyMaterial> material =
        SecureChannelModule::GenerateAndSeal(context, SshBlobAuth());
    if (!material.ok()) {
      return material.status();
    }
    return context->SetOutputs(material.value().Serialize());
  }

  if (mode != kSshModeLogin) {
    return InvalidArgumentError("unknown SSH PAL mode");
  }

  Bytes sealed_private_key = in.Blob();
  Bytes ciphertext = in.Blob();
  std::string salt = in.Str();
  Bytes nonce = in.Blob();
  if (!in.ok()) {
    return InvalidArgumentError("corrupt login-session inputs");
  }

  // K_PAL^-1 <- unseal(sdata); {password, nonce'} <- decrypt(c).
  Result<RsaPrivateKey> key =
      SecureChannelModule::UnsealPrivateKey(context, sealed_private_key, SshBlobAuth());
  if (!key.ok()) {
    return key.status();
  }
  Result<Bytes> plaintext = SecureChannelModule::Decrypt(context, key.value(), ciphertext);
  if (!plaintext.ok()) {
    return plaintext.status();
  }

  Reader payload(plaintext.value());
  std::string password = payload.Str();
  Bytes nonce_prime = payload.Blob();
  if (!payload.ok()) {
    return InvalidArgumentError("corrupt encrypted payload");
  }
  // if (nonce' != nonce) abort - replay protection against a well-behaved
  // server being fed an old ciphertext (Fig. 7).
  if (!ConstantTimeEquals(nonce_prime, nonce)) {
    return ReplayDetectedError("login nonce mismatch (replayed ciphertext?)");
  }

  // hash <- md5crypt(salt, password); only the hash leaves the session.
  context->ChargeMd5Crypt();
  std::string hash = Md5Crypt(password, salt);
  SecureErase(const_cast<char*>(password.data()), password.size());
  return context->SetOutputs(BytesOf(hash));
}

SshServer::SshServer(FlickerPlatform* platform, const PalBinary* binary)
    : platform_(platform), binary_(binary) {}

Status SshServer::AddUser(const std::string& username, const std::string& password,
                          const std::string& salt) {
  PasswdEntry entry;
  entry.username = username;
  entry.salt = salt;
  entry.hashed_passwd = Md5Crypt(password, salt);
  passwd_[username] = entry;
  return Status::Ok();
}

Result<SshServer::SetupResult> SshServer::Setup(const Bytes& client_nonce) {
  obs::ScopedSpan setup_span("app", "app.ssh_setup");
  SetupResult result;
  result.nonce = client_nonce;
  SimStopwatch watch(platform_->clock());

  Writer in;
  in.U8(kSshModeSetup);
  SlbCoreOptions options;
  options.nonce = client_nonce;
  Result<FlickerSessionResult> session = platform_->ExecuteSession(*binary_, in.Take(), options);
  if (!session.ok()) {
    return session.status();
  }
  if (!session.value().ok()) {
    return session.value().record.pal_status;
  }
  result.skinit_ms = session.value().skinit_ms;
  result.pal1_total_ms = session.value().session_total_ms;
  result.setup_outputs = session.value().outputs();
  key_material_ = result.setup_outputs;

  Result<SecureChannelKeyMaterial> material =
      SecureChannelKeyMaterial::Deserialize(key_material_);
  if (!material.ok()) {
    return material.status();
  }
  result.public_key = material.value().public_key;

  Result<AttestationResponse> attestation =
      platform_->tqd()->HandleChallenge(client_nonce, PcrSelection({kSkinitPcr}));
  if (!attestation.ok()) {
    return attestation.status();
  }
  result.attestation = attestation.take();
  return result;
}

Result<SshServer::LoginResult> SshServer::HandleLogin(const std::string& username,
                                                      const Bytes& encrypted_password,
                                                      const Bytes& login_nonce) {
  obs::ScopedSpan login_span("app", "app.ssh_login");
  auto user = passwd_.find(username);
  if (user == passwd_.end()) {
    return NotFoundError("unknown user");
  }
  if (key_material_.empty()) {
    return FailedPreconditionError("server not set up (no PAL key material)");
  }
  Result<SecureChannelKeyMaterial> material =
      SecureChannelKeyMaterial::Deserialize(key_material_);
  if (!material.ok()) {
    return material.status();
  }

  LoginResult result;
  Writer in;
  in.U8(kSshModeLogin);
  in.Blob(material.value().sealed_private_key);
  in.Blob(encrypted_password);
  in.Str(user->second.salt);
  in.Blob(login_nonce);
  Result<FlickerSessionResult> session = platform_->ExecuteSession(*binary_, in.Take());
  if (!session.ok()) {
    return session.status();
  }
  if (!session.value().ok()) {
    return session.value().record.pal_status;
  }
  result.skinit_ms = session.value().skinit_ms;
  result.pal2_total_ms = session.value().session_total_ms;

  std::string reported_hash(session.value().outputs().begin(), session.value().outputs().end());
  result.authenticated = (reported_hash == user->second.hashed_passwd);
  return result;
}

SshClient::SshClient(const PalBinary* expected_binary, const RsaPublicKey& privacy_ca_public,
                     AikCertificate server_aik_cert, uint64_t seed)
    : expected_binary_(expected_binary),
      privacy_ca_public_(privacy_ca_public),
      server_aik_cert_(std::move(server_aik_cert)),
      rng_(seed) {}

Status SshClient::VerifyServerSetup(const SshServer::SetupResult& setup, const Bytes& nonce) {
  // The attested outputs are the key material; inputs were the bare
  // setup-mode selector.
  Writer expected_inputs;
  expected_inputs.U8(kSshModeSetup);
  SessionExpectation expectation;
  expectation.binary = expected_binary_;
  expectation.inputs = expected_inputs.Take();
  expectation.outputs = setup.setup_outputs;
  expectation.nonce = nonce;
  FLICKER_RETURN_IF_ERROR(VerifyAttestation(expectation, setup.attestation, server_aik_cert_,
                                            privacy_ca_public_, nonce));

  // Attestation verified: the public key in the outputs was produced by the
  // genuine PAL under Flicker. Pin it.
  Result<SecureChannelKeyMaterial> material =
      SecureChannelKeyMaterial::Deserialize(setup.setup_outputs);
  if (!material.ok()) {
    return material.status();
  }
  pinned_public_key_ = material.value().public_key;
  return Status::Ok();
}

Result<Bytes> SshClient::EncryptPassword(const std::string& password, const Bytes& login_nonce) {
  if (pinned_public_key_.empty()) {
    return FailedPreconditionError("no verified server key pinned");
  }
  Writer payload;
  payload.Str(password);
  payload.Blob(login_nonce);
  return SecureChannelEncrypt(pinned_public_key_, payload.Take(), &rng_);
}

Bytes SshLoginRequest::Serialize() const {
  Writer w;
  w.Str(username);
  w.Blob(encrypted_password);
  w.Blob(login_nonce);
  return w.Take();
}

Result<SshLoginRequest> SshLoginRequest::Deserialize(const Bytes& data) {
  if (data.size() > kMaxSshFrameBytes) {
    return InvalidArgumentError("login frame exceeds wire bound");
  }
  Reader r(data);
  SshLoginRequest request;
  request.username = r.Str();
  request.encrypted_password = r.Blob();
  request.login_nonce = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt login frame");
  }
  return request;
}

Result<Bytes> SshServer::HandleLoginFrame(const Bytes& frame) {
  obs::ScopedSpan frame_span("app", "app.ssh_login_frame");
  Result<SshLoginRequest> request = SshLoginRequest::Deserialize(frame);
  if (!request.ok()) {
    return request.status();
  }
  Result<LoginResult> login =
      HandleLogin(request.value().username, request.value().encrypted_password,
                  request.value().login_nonce);
  if (!login.ok()) {
    return login.status();
  }
  Writer w;
  w.U8(login.value().authenticated ? 1 : 0);
  return w.Take();
}

}  // namespace flicker
