// The paper's Fig. 5 "Hello, world" PAL: ignores its inputs and writes a
// fixed message to the well-known output location. The minimal PAL - it
// links nothing but the mandatory SLB Core.

#ifndef FLICKER_SRC_APPS_HELLO_H_
#define FLICKER_SRC_APPS_HELLO_H_

#include "src/slb/pal.h"

namespace flicker {

class HelloWorldPal : public Pal {
 public:
  std::string name() const override { return "hello-world"; }
  std::vector<std::string> required_modules() const override { return {}; }
  std::vector<std::string> required_symbols() const override { return {"PAL_OUT"}; }
  size_t app_code_bytes() const override { return 96; }
  int app_lines_of_code() const override { return 6; }

  Status Execute(PalContext* context) override {
    return context->SetOutputs(BytesOf("Hello, world"));
  }
};

}  // namespace flicker

#endif  // FLICKER_SRC_APPS_HELLO_H_
