// Flicker-protected SSH password authentication (paper §6.3.1, Fig. 7).
//
// Two Flicker sessions on the server:
//   * Setup: the PAL generates K_PAL, seals the private half to itself, and
//     outputs the public half; an attestation convinces the client that only
//     this PAL can ever decrypt.
//   * Login: the PAL unseals the private key, decrypts {password, nonce},
//     checks the nonce, computes md5crypt(salt, password) and outputs the
//     hash for comparison with /etc/passwd. The cleartext password exists on
//     the server only inside the session.

#ifndef FLICKER_SRC_APPS_SSH_H_
#define FLICKER_SRC_APPS_SSH_H_

#include <map>
#include <string>

#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/core/secure_channel.h"
#include "src/net/channel.h"
#include "src/slb/pal.h"

namespace flicker {

inline constexpr uint8_t kSshModeSetup = 0;
inline constexpr uint8_t kSshModeLogin = 1;

// Bound on any login frame crossing the network; anything larger is hostile.
inline constexpr size_t kMaxSshFrameBytes = 64 * 1024;

// Wire form of one login attempt, so the exchange can ride a lossy session.
struct SshLoginRequest {
  std::string username;
  Bytes encrypted_password;
  Bytes login_nonce;

  Bytes Serialize() const;
  static Result<SshLoginRequest> Deserialize(const Bytes& data);
};

// One PAL with two modes: both sessions must have the same measurement so
// the sealed private key binds "to the same PAL in a subsequent session".
class SshPal : public Pal {
 public:
  std::string name() const override { return "ssh-password"; }
  std::vector<std::string> required_modules() const override {
    return {kModuleTpmDriver, kModuleTpmUtilities, kModuleCrypto, kModuleSecureChannel};
  }
  std::vector<std::string> required_symbols() const override {
    return {"secure_channel_keygen", "secure_channel_decrypt", "md5crypt", "tpm_unseal"};
  }
  size_t app_code_bytes() const override { return 1980; }
  int app_lines_of_code() const override { return 160; }

  Status Execute(PalContext* context) override;
};

// /etc/passwd-style entry: salt + md5crypt hash, never the password.
struct PasswdEntry {
  std::string username;
  std::string salt;
  std::string hashed_passwd;  // Full "$1$salt$hash" crypt string.
};

// The modified sshd. Holds the passwd database and the PAL key material
// produced at setup.
class SshServer {
 public:
  SshServer(FlickerPlatform* platform, const PalBinary* binary);

  Status AddUser(const std::string& username, const std::string& password,
                 const std::string& salt);

  // First Flicker session: establish K_PAL. Returns the session's
  // attestation bundle for the client to verify.
  struct SetupResult {
    Bytes public_key;
    Bytes setup_outputs;   // Raw PAL outputs (the serialized key material).
    AttestationResponse attestation;
    Bytes nonce;
    double pal1_total_ms = 0;
    double skinit_ms = 0;
  };
  Result<SetupResult> Setup(const Bytes& client_nonce);

  // The §6.3.1 optimization: "only create a new keypair the first time a
  // user connects". True when key material already exists, letting clients
  // that pinned K_PAL earlier skip straight to login (no PAL 1 session, no
  // quote - the ~1.2 s prompt latency disappears on reconnects).
  bool HasKeyMaterial() const { return !key_material_.empty(); }

  // Second Flicker session: process an encrypted password for `username`.
  struct LoginResult {
    bool authenticated = false;
    double pal2_total_ms = 0;
    double skinit_ms = 0;
  };
  Result<LoginResult> HandleLogin(const std::string& username, const Bytes& encrypted_password,
                                  const Bytes& login_nonce);

  // Wire entry point: a hostile, possibly corrupted login frame. Oversized
  // or malformed frames fail with a Status; a 1-byte authenticated verdict
  // is produced only for well-formed requests - never a wrong answer.
  Result<Bytes> HandleLoginFrame(const Bytes& frame);

  const Bytes& key_material() const { return key_material_; }

 private:
  FlickerPlatform* platform_;
  const PalBinary* binary_;
  std::map<std::string, PasswdEntry> passwd_;
  Bytes key_material_;  // Serialized SecureChannelKeyMaterial.
};

// The modified ssh client (flicker-password auth method).
class SshClient {
 public:
  SshClient(const PalBinary* expected_binary, const RsaPublicKey& privacy_ca_public,
            AikCertificate server_aik_cert, uint64_t seed = 0x55b);

  // Verifies the server's setup attestation; on success, pins K_PAL.
  Status VerifyServerSetup(const SshServer::SetupResult& setup, const Bytes& nonce);

  // Encrypts {password, nonce} under the pinned K_PAL (PKCS#1, §6.3.1).
  Result<Bytes> EncryptPassword(const std::string& password, const Bytes& login_nonce);

  Bytes MakeNonce() { return rng_.Generate(20); }
  const Bytes& pinned_public_key() const { return pinned_public_key_; }

 private:
  const PalBinary* expected_binary_;
  RsaPublicKey privacy_ca_public_;
  AikCertificate server_aik_cert_;
  Bytes pinned_public_key_;
  Drbg rng_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_APPS_SSH_H_
