// Rootkit detection with verifiable execution (paper §6.1).
//
// A network administrator challenges a remote host: the host runs the
// detector PAL under Flicker, which hashes the kernel's text segment,
// syscall table and loaded modules, extends the result into PCR 17 and
// returns it. The subsequent TPM quote proves (a) the genuine detector ran
// under SKINIT and (b) the returned hash is exactly what it computed - a
// compromised OS can neither skip the scan nor forge a clean result.

#ifndef FLICKER_SRC_APPS_ROOTKIT_DETECTOR_H_
#define FLICKER_SRC_APPS_ROOTKIT_DETECTOR_H_

#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/net/channel.h"
#include "src/slb/pal.h"

namespace flicker {

// The PAL: input is the serialized region list; output is the 20-byte
// SHA-1 over all regions, also extended into PCR 17. Runs WITHOUT the OS
// Protection module - it must read kernel memory outside its own segment.
class RootkitDetectorPal : public Pal {
 public:
  std::string name() const override { return "rootkit-detector"; }
  // Only the raw TPM driver is linked; SHA-1 and the PCR-extend command are
  // inlined in the app code. That keeps the whole SLB near 5 KB, matching
  // Table 1's 15.4 ms SKINIT (the detector predates the measurement-stub
  // optimization, §7.2).
  std::vector<std::string> required_modules() const override { return {kModuleTpmDriver}; }
  std::vector<std::string> required_symbols() const override { return {"tpm_transmit"}; }
  size_t app_code_bytes() const override { return 4096; }
  int app_lines_of_code() const override { return 220; }

  Status Execute(PalContext* context) override;
};

// Administrator-side logic: issue a challenge over the network, verify the
// attestation, compare against the known-good kernel measurement.
class RootkitMonitor {
 public:
  struct QueryReport {
    Status status;             // OK iff the attestation verified.
    bool kernel_clean = false; // Hash matched the known-good value.
    Bytes reported_measurement;
    double total_latency_ms = 0;  // Challenge sent -> verdict reached.
    double skinit_ms = 0;
    double session_ms = 0;
    double quote_ms = 0;
  };

  RootkitMonitor(const PalBinary* binary, Bytes known_good_measurement,
                 const RsaPublicKey& privacy_ca_public, AikCertificate host_aik_cert,
                 uint64_t nonce_seed = 0xad317);

  // Runs one detection query against `platform` over `channel`.
  QueryReport Query(FlickerPlatform* platform, Channel* channel);

 private:
  const PalBinary* binary_;
  Bytes known_good_;
  RsaPublicKey privacy_ca_public_;
  AikCertificate host_aik_cert_;
  Drbg nonce_rng_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_APPS_ROOTKIT_DETECTOR_H_
