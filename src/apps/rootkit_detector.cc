#include "src/apps/rootkit_detector.h"

#include "src/crypto/sha1.h"
#include "src/os/kernel.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

Status RootkitDetectorPal::Execute(PalContext* context) {
  Result<std::vector<KernelRegion>> regions = OsKernel::DeserializeRegions(context->inputs());
  if (!regions.ok()) {
    return regions.status();
  }

  Sha1 hash;
  for (const KernelRegion& region : regions.value()) {
    Result<Bytes> bytes = context->ReadMemory(region.base, region.size);
    if (!bytes.ok()) {
      return bytes.status();
    }
    hash.Update(bytes.value());
    context->ChargeSha1(region.size);
  }
  Bytes measurement = hash.Finish();

  // Extend the result into PCR 17 so the quote covers it even if the OS
  // tampers with the output buffer afterwards (§6.1).
  FLICKER_RETURN_IF_ERROR(context->tpm()->PcrExtend(kSkinitPcr, measurement));
  return context->SetOutputs(measurement);
}

RootkitMonitor::RootkitMonitor(const PalBinary* binary, Bytes known_good_measurement,
                               const RsaPublicKey& privacy_ca_public,
                               AikCertificate host_aik_cert, uint64_t nonce_seed)
    : binary_(binary),
      known_good_(std::move(known_good_measurement)),
      privacy_ca_public_(privacy_ca_public),
      host_aik_cert_(std::move(host_aik_cert)),
      nonce_rng_(nonce_seed) {}

RootkitMonitor::QueryReport RootkitMonitor::Query(FlickerPlatform* platform, Channel* channel) {
  QueryReport report;
  SimStopwatch total(platform->clock());

  // Challenge: nonce travels to the host.
  Bytes nonce = nonce_rng_.Generate(kPcrSize);
  Bytes inputs = platform->kernel()->SerializeRegions();
  channel->Deliver();

  // Host: run the detector PAL under Flicker.
  SlbCoreOptions options;
  options.nonce = nonce;
  Result<FlickerSessionResult> session = platform->ExecuteSession(*binary_, inputs, options);
  if (!session.ok()) {
    report.status = session.status();
    return report;
  }
  report.skinit_ms = session.value().skinit_ms;
  report.session_ms = session.value().session_total_ms;
  report.reported_measurement = session.value().outputs();

  // Host: quote daemon signs the PCR state.
  SimStopwatch quote_watch(platform->clock());
  Result<AttestationResponse> response =
      platform->tqd()->HandleChallenge(nonce, PcrSelection({kSkinitPcr}));
  report.quote_ms = quote_watch.ElapsedMillis();
  if (!response.ok()) {
    report.status = response.status();
    return report;
  }

  // Response travels back; administrator verifies.
  channel->Deliver();
  SessionExpectation expectation;
  expectation.binary = binary_;
  expectation.inputs = inputs;
  expectation.outputs = report.reported_measurement;
  expectation.nonce = nonce;
  expectation.pal_extends = {report.reported_measurement};
  report.status = VerifyAttestation(expectation, response.value(), host_aik_cert_,
                                    privacy_ca_public_, nonce);
  report.kernel_clean = report.status.ok() &&
                        ConstantTimeEquals(report.reported_measurement, known_good_);
  report.total_latency_ms = total.ElapsedMillis();
  return report;
}

}  // namespace flicker
