#include "src/attest/ima.h"

#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

ImaSystem::ImaSystem(Machine* machine, int pcr_index)
    : machine_(machine), pcr_index_(pcr_index) {}

Status ImaSystem::MeasureEvent(const std::string& description, const Bytes& content) {
  Bytes measurement = Sha1::Digest(content);
  FLICKER_RETURN_IF_ERROR(machine_->tpm()->PcrExtend(pcr_index_, measurement));
  log_.push_back(ImaEvent{description, measurement});
  return Status::Ok();
}

Result<ImaAttestation> ImaSystem::Attest(const Bytes& nonce) {
  Result<TpmQuote> quote = machine_->tpm()->Quote(nonce, PcrSelection({pcr_index_}));
  if (!quote.ok()) {
    return quote.status();
  }
  ImaAttestation attestation;
  attestation.log = log_;
  attestation.quote = quote.take();
  attestation.aik_public = machine_->tpm()->aik_public().Serialize();
  return attestation;
}

ImaVerdict VerifyImaAttestation(const ImaAttestation& attestation, const RsaPublicKey& aik,
                                const std::set<std::string>& known_good, const Bytes& nonce,
                                int pcr_index) {
  ImaVerdict verdict;
  verdict.entries_total = attestation.log.size();

  // 1. Quote signature over (composite, nonce).
  if (attestation.quote.nonce != nonce) {
    return verdict;
  }
  Bytes buffer = attestation.quote.selection.Serialize();
  Bytes values;
  for (const Bytes& v : attestation.quote.pcr_values) {
    values.insert(values.end(), v.begin(), v.end());
  }
  PutUint32(&buffer, static_cast<uint32_t>(values.size()));
  buffer.insert(buffer.end(), values.begin(), values.end());
  Bytes composite = Sha1::Digest(buffer);
  Bytes info = BytesOf("QUOT");
  info.insert(info.end(), composite.begin(), composite.end());
  info.insert(info.end(), nonce.begin(), nonce.end());
  verdict.quote_signature_valid = RsaVerifySha1(aik, info, attestation.quote.signature);

  // 2. Replay the log: the aggregate must match the quoted PCR.
  if (attestation.quote.selection.IsSelected(pcr_index) &&
      !attestation.quote.pcr_values.empty()) {
    Bytes aggregate(kPcrSize, 0x00);  // Static PCRs boot to zero.
    for (const ImaEvent& event : attestation.log) {
      aggregate = Sha1::Digest(Concat(aggregate, event.measurement));
    }
    size_t position = 0;
    for (int index : attestation.quote.selection.Indices()) {
      if (index == pcr_index) {
        break;
      }
      ++position;
    }
    verdict.log_matches_pcr =
        position < attestation.quote.pcr_values.size() &&
        ConstantTimeEquals(aggregate, attestation.quote.pcr_values[position]);
  }

  // 3. Every entry must be in the verifier's known-good database.
  for (const ImaEvent& event : attestation.log) {
    if (known_good.count(ToHex(event.measurement)) == 0) {
      ++verdict.entries_unknown;
      verdict.unknown_entries.push_back(event.description);
    }
  }
  return verdict;
}

}  // namespace flicker
