#include "src/attest/verifier.h"

#include "src/crypto/merkle.h"
#include "src/crypto/sha1.h"
#include "src/slb/slb_core.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

namespace {

Bytes Extend(const Bytes& pcr, const Bytes& measurement) {
  return Sha1::Digest(Concat(pcr, measurement));
}

}  // namespace

Bytes ComputeExecutionPcr17(const PalBinary& binary, LateLaunchTech tech) {
  Bytes pcr(kPcrSize, 0x00);
  if (tech == LateLaunchTech::kIntelTxt) {
    pcr = Extend(pcr, SinitAcmMeasurement());
  }
  pcr = Extend(pcr, binary.skinit_measurement);
  if (binary.options.measurement_stub) {
    pcr = Extend(pcr, binary.stub_body_measurement);
  }
  return pcr;
}

Bytes ComputeExpectedPcr17(const SessionExpectation& expectation) {
  Bytes pcr = ComputeExecutionPcr17(*expectation.binary, expectation.tech);
  for (const Bytes& measurement : expectation.pal_extends) {
    pcr = Extend(pcr, measurement);
  }
  pcr = Extend(pcr, Sha1::Digest(expectation.inputs));
  pcr = Extend(pcr, Sha1::Digest(expectation.outputs));
  if (!expectation.nonce.empty()) {
    pcr = Extend(pcr, Sha1::Digest(expectation.nonce));
  }
  pcr = Extend(pcr, FlickerTerminationConstant());
  return pcr;
}

Bytes RecomputeQuoteComposite(const TpmQuote& quote) {
  Bytes buffer = quote.selection.Serialize();
  Bytes values;
  for (const Bytes& v : quote.pcr_values) {
    values.insert(values.end(), v.begin(), v.end());
  }
  PutUint32(&buffer, static_cast<uint32_t>(values.size()));
  buffer.insert(buffer.end(), values.begin(), values.end());
  return Sha1::Digest(buffer);
}

Status VerifyAttestation(const SessionExpectation& expectation,
                         const AttestationResponse& response, const AikCertificate& aik_cert,
                         const RsaPublicKey& privacy_ca_public, const Bytes& expected_nonce) {
  // 1. Certificate chain: the AIK must be certified by a trusted Privacy CA
  //    and match the key shipped with the response.
  if (!PrivacyCa::Verify(privacy_ca_public, aik_cert)) {
    return IntegrityFailureError("AIK certificate signature invalid");
  }
  if (aik_cert.aik_public != response.aik_public) {
    return IntegrityFailureError("AIK in response does not match certificate");
  }
  Result<RsaPublicKey> aik = RsaPublicKey::Deserialize(response.aik_public);
  if (!aik.ok()) {
    return aik.status();
  }

  // 2. Nonce freshness.
  if (response.quote.nonce != expected_nonce) {
    return ReplayDetectedError("quote nonce does not match the challenge");
  }

  // 3. Quote signature over TPM_QUOTE_INFO.
  Bytes composite = RecomputeQuoteComposite(response.quote);
  Bytes info = BytesOf("QUOT");
  info.insert(info.end(), composite.begin(), composite.end());
  info.insert(info.end(), response.quote.nonce.begin(), response.quote.nonce.end());
  if (!RsaVerifySha1(aik.value(), info, response.quote.signature)) {
    return IntegrityFailureError("quote signature invalid");
  }

  // 4. PCR 17 must be in the selection and hold the reconstructed chain.
  if (!response.quote.selection.IsSelected(kSkinitPcr)) {
    return InvalidArgumentError("quote does not cover PCR 17");
  }
  size_t position = 0;
  for (int index : response.quote.selection.Indices()) {
    if (index == kSkinitPcr) {
      break;
    }
    ++position;
  }
  if (position >= response.quote.pcr_values.size()) {
    return InvalidArgumentError("quote value list shorter than selection");
  }
  Bytes expected_pcr17 = ComputeExpectedPcr17(expectation);
  if (!ConstantTimeEquals(response.quote.pcr_values[position], expected_pcr17)) {
    return IntegrityFailureError(
        "PCR 17 does not match the expected session chain (wrong PAL, tampered I/O, or no "
        "Flicker session)");
  }
  return Status::Ok();
}

Status VerifyBatchQuote(const SessionExpectation& expectation, const BatchQuoteResponse& response,
                        const AikCertificate& aik_cert, const RsaPublicKey& privacy_ca_public,
                        const Bytes& expected_nonce) {
  // The response's own nonce field is advisory; the proof must hold for the
  // nonce this challenger actually issued.
  if (response.nonce != expected_nonce) {
    return ReplayDetectedError("batch slice does not answer this challenge");
  }
  if (response.path.steps.size() > kMaxMerklePathSteps) {
    return InvalidArgumentError("batch auth path implausibly deep");
  }
  Bytes root = MerkleTree::RootFromPath(expected_nonce, response.path);
  // VerifyAttestation's nonce-freshness check now pins the quote's
  // externalData to the recomputed root: a quote from any other batch - or a
  // path for any other leaf - yields a different root and fails there.
  return VerifyAttestation(expectation, response.response, aik_cert, privacy_ca_public, root);
}

}  // namespace flicker
