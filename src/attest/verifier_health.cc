#include "src/attest/verifier_health.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace flicker {

VerifierHealthTracker::VerifierHealthTracker(const VerifierHealthConfig& config)
    : config_(config), state_(static_cast<size_t>(config.num_verifiers)) {
  latency_ring_.reserve(config_.latency_window);
}

bool VerifierHealthTracker::AdmitsTraffic(const VerifierState& s, double now_ms) const {
  if (!s.open) {
    return true;
  }
  // Half-open: after the cooldown one probe per cooldown window may pass.
  return now_ms - s.opened_at_ms >= config_.breaker_cooldown_ms &&
         (s.last_probe_ms < s.opened_at_ms ||
          now_ms - s.last_probe_ms >= config_.breaker_cooldown_ms);
}

int VerifierHealthTracker::PickVerifier(double now_ms, int exclude) {
  const int n = config_.num_verifiers;
  for (int scanned = 0; scanned < n; ++scanned) {
    int candidate = rr_next_;
    rr_next_ = (rr_next_ + 1) % n;
    if (candidate == exclude) {
      continue;
    }
    VerifierState& s = state_[candidate];
    if (!AdmitsTraffic(s, now_ms)) {
      continue;
    }
    if (s.open) {
      s.last_probe_ms = now_ms;  // This request is the half-open probe.
    }
    return candidate;
  }
  // Every breaker open (or only the excluded verifier admits): plain
  // round-robin so the farm keeps receiving probe traffic.
  int candidate = rr_next_;
  rr_next_ = (rr_next_ + 1) % n;
  if (candidate == exclude && n > 1) {
    candidate = rr_next_;
    rr_next_ = (rr_next_ + 1) % n;
  }
  state_[candidate].last_probe_ms = now_ms;
  return candidate;
}

bool VerifierHealthTracker::ShouldShed(int verifier) const {
  return config_.max_outstanding > 0 &&
         state_[verifier].outstanding >= config_.max_outstanding;
}

void VerifierHealthTracker::OnDispatch(int verifier) { ++state_[verifier].outstanding; }

void VerifierHealthTracker::OnSuccess(int verifier, double latency_ms, double now_ms) {
  VerifierState& s = state_[verifier];
  s.outstanding = std::max(0, s.outstanding - 1);
  // The gray-failure trap: a slow verifier still ANSWERS, so a naive
  // breaker re-closes on every late success and the oscillation keeps
  // feeding it traffic. An answer is only evidence of health when it
  // arrives at healthy speed - within a small multiple of the current
  // hedge delay. Slower answers leave the breaker state untouched (a
  // half-open probe answered at gray speed stays open) and stay out of
  // the latency pool, which would otherwise drag the p95 hedge delay up
  // toward the gray latency and disarm hedging entirely.
  const bool healthy_speed = latency_ms <= 2.0 * HedgeDelayMs();
  if (!healthy_speed) {
    if (s.open) {
      s.opened_at_ms = now_ms;  // Probe answered, but gray: restart cooldown.
    }
    return;
  }
  s.consecutive_misses = 0;
  if (s.open) {
    s.open = false;
    double mttr_ms = now_ms - s.opened_at_ms;
    mttr_samples_ms_.push_back(mttr_ms);
    obs::ObserveMs(obs::Hist::kFleetVerifierMttrMs, mttr_ms);
  }
  if (latency_ring_.size() < config_.latency_window) {
    latency_ring_.push_back(latency_ms);
  } else {
    latency_ring_[ring_next_] = latency_ms;
    ring_full_ = true;
  }
  ring_next_ = (ring_next_ + 1) % config_.latency_window;
}

void VerifierHealthTracker::OnMiss(int verifier, double now_ms) {
  VerifierState& s = state_[verifier];
  s.outstanding = std::max(0, s.outstanding - 1);
  if (s.open) {
    // The half-open probe missed: restart the cooldown from here.
    s.opened_at_ms = now_ms;
    return;
  }
  if (++s.consecutive_misses >= config_.breaker_threshold) {
    s.open = true;
    s.opened_at_ms = now_ms;
    s.last_probe_ms = 0;
    s.consecutive_misses = 0;
    ++breaker_trips_;
    obs::Count(obs::Ctr::kFleetVerifierBreakerTrips);
  }
}

void VerifierHealthTracker::OnAbandoned(int verifier) {
  VerifierState& s = state_[verifier];
  s.outstanding = std::max(0, s.outstanding - 1);
}

double VerifierHealthTracker::HedgeDelayMs() const {
  size_t count = latency_ring_.size();
  if (count < static_cast<size_t>(config_.min_samples)) {
    return config_.hedge_default_ms;
  }
  std::vector<double> sorted(latency_ring_.begin(), latency_ring_.begin() + count);
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank p95, matching FleetStats::LatencyPercentileMs.
  size_t rank = static_cast<size_t>(0.95 * static_cast<double>(count) + 0.5);
  rank = std::min(std::max<size_t>(rank, 1), count);
  double p95 = sorted[rank - 1];
  return std::min(std::max(p95, config_.hedge_min_ms), config_.hedge_max_ms);
}

bool VerifierHealthTracker::BreakerOpen(int verifier, double now_ms) const {
  const VerifierState& s = state_[verifier];
  (void)now_ms;
  return s.open;
}

}  // namespace flicker
