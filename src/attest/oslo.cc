#include "src/attest/oslo.h"

#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"
#include "src/slb/slb_layout.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

Bytes OsloBootLoader::LoaderImage() {
  Bytes image(kSlbRegionSize, 0);
  uint16_t length = static_cast<uint16_t>(kLoaderImageBytes);
  uint16_t entry = static_cast<uint16_t>(kSlbHeaderSize);
  image[0] = static_cast<uint8_t>(length);
  image[1] = static_cast<uint8_t>(length >> 8);
  image[2] = static_cast<uint8_t>(entry);
  image[3] = static_cast<uint8_t>(entry >> 8);
  Drbg code(BytesOf("oslo-loader-v1"));
  Bytes body = code.Generate(kLoaderImageBytes - kSlbHeaderSize);
  std::copy(body.begin(), body.end(), image.begin() + kSlbHeaderSize);
  return image;
}

Bytes OsloBootLoader::LoaderMeasurement() {
  Bytes image = LoaderImage();
  return Sha1::Digest(image.data(), kLoaderImageBytes);
}

Result<OsloBootReport> OsloBootLoader::SecureBoot(Machine* machine, const OsKernel& kernel) {
  OsloBootReport report;

  // Boot-time: the APs have not been started by the OS yet; park them for
  // the SKINIT handshake.
  for (int cpu = 1; cpu < machine->num_cpus(); ++cpu) {
    if (machine->cpu(cpu)->state == CpuState::kRunning) {
      machine->cpu(cpu)->state = CpuState::kIdle;
    }
    FLICKER_RETURN_IF_ERROR(machine->apic()->SendInitIpi(cpu));
  }

  // Stage the loader at the SLB base and launch it.
  FLICKER_RETURN_IF_ERROR(machine->memory()->Write(kSlbFixedBase, LoaderImage()));
  SimStopwatch skinit_watch(machine->clock());
  Result<SkinitLaunch> launch = machine->Skinit(machine->bsp()->id, kSlbFixedBase);
  if (!launch.ok()) {
    return launch.status();
  }
  report.skinit_ms = skinit_watch.ElapsedMillis();
  report.loader_measurement = launch.value().measurement;

  // The measured loader hashes the kernel image (text + syscall table +
  // modules) and extends it into PCR 17 before handing control over - the
  // OSLO "hash the OS kernel" step (§8: "OSLO also includes an
  // implementation of SHA-1 to hash the OS kernel").
  SimStopwatch hash_watch(machine->clock());
  Sha1 hash;
  size_t total_bytes = 0;
  for (const KernelRegion& region : kernel.MeasuredRegions()) {
    Result<Bytes> bytes = machine->memory()->Read(region.base, region.size);
    if (!bytes.ok()) {
      return bytes.status();
    }
    hash.Update(bytes.value());
    total_bytes += region.size;
  }
  machine->clock()->AdvanceMillis(machine->timing().Sha1Millis(total_bytes));
  report.kernel_measurement = hash.Finish();
  report.kernel_hash_ms = hash_watch.ElapsedMillis();
  FLICKER_RETURN_IF_ERROR(machine->tpm()->PcrExtend(kSkinitPcr, report.kernel_measurement));

  report.pcr17_after_boot = machine->tpm()->PcrRead(kSkinitPcr).value();

  // Exit the secure loader and boot the kernel.
  FLICKER_RETURN_IF_ERROR(machine->ExitSecureMode(machine->bsp()->id, kernel.cr3()));
  for (int cpu = 1; cpu < machine->num_cpus(); ++cpu) {
    FLICKER_RETURN_IF_ERROR(machine->apic()->SendStartupIpi(cpu));
  }
  return report;
}

Bytes OsloBootLoader::ExpectedBootPcr17(const Bytes& expected_kernel_hash) {
  Bytes pcr = ExpectedPcr17AfterSkinit(LoaderMeasurement());
  return Sha1::Digest(Concat(pcr, expected_kernel_hash));
}

}  // namespace flicker
