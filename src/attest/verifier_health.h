// Client-side health tracking for a farm of attestation verifiers.
//
// Gray failures are the verifier tier's signature pathology: a worker that
// is not down - it still accepts frames - but answers 10x slower than its
// peers, so naive round-robin turns one slow node into head-of-line
// blocking for 1/N of the fleet. Nothing in the response says "slow"; the
// only signal is comparative latency. This tracker owns that signal:
//
//   * a pooled ring of recent ack round-trip samples yields the p95 the
//     hedge delay derives from ("fire a second copy once this request has
//     taken longer than 95% of recent successes"),
//   * per-verifier consecutive-miss counts drive a circuit breaker: after
//     `breaker_threshold` hedge-detected misses the verifier is skipped
//     outright for `breaker_cooldown_ms`, then a single half-open probe
//     either re-closes the breaker (and records the MTTR sample) or
//     re-opens it for another cooldown,
//   * per-verifier outstanding-request depth doubles as farm-side admission
//     control: when every candidate sits at the depth cap the farm sheds
//     with a distinct kOverloaded verdict instead of queueing unboundedly.
//
// Pure logic, no I/O, deterministic: the tracker never reads a clock - all
// times arrive as arguments in simulated milliseconds - so the fleet
// harness and unit tests drive it bit-exactly.

#ifndef FLICKER_SRC_ATTEST_VERIFIER_HEALTH_H_
#define FLICKER_SRC_ATTEST_VERIFIER_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flicker {

struct VerifierHealthConfig {
  int num_verifiers = 1;
  // Hedge delay = clamp(p95 of pooled ack samples, min, max); before
  // `min_samples` acks have been pooled the default applies.
  double hedge_default_ms = 200.0;
  double hedge_min_ms = 10.0;
  double hedge_max_ms = 2000.0;
  int min_samples = 8;
  // Breaker: consecutive misses to open, cooldown before the half-open probe.
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 2000.0;
  // Admission control: max outstanding requests per verifier; 0 disables
  // shedding (legacy unbounded queueing).
  int max_outstanding = 0;
  size_t latency_window = 128;  // Pooled ack-sample ring capacity.
};

class VerifierHealthTracker {
 public:
  explicit VerifierHealthTracker(const VerifierHealthConfig& config);

  // ---- Selection ----
  //
  // Next verifier for a fresh request: round-robin over verifiers whose
  // breaker admits traffic at `now_ms` (closed, or open-and-cooled-down
  // enough to probe), skipping `exclude` (the hedge must not re-pick the
  // verifier it is hedging against; pass -1 for none). Falls back to plain
  // round-robin when every breaker is open - a fully-broken farm still
  // gets probe traffic, otherwise no breaker could ever close again.
  int PickVerifier(double now_ms, int exclude);

  // True when `verifier` is at or over the outstanding-request cap (never
  // true when max_outstanding == 0).
  bool ShouldShed(int verifier) const;

  // ---- Signals from the wire ----
  void OnDispatch(int verifier);  // Request handed to the verifier.
  // Well-formed answer observed after `latency_ms`. Only an answer at
  // healthy speed (within 2x the current hedge delay) counts as evidence of
  // health: it clears the miss streak, closes an open breaker (recording
  // MTTR relative to when it opened) and pools the sample. A slower answer
  // is the gray-failure signature and changes nothing - a half-open probe
  // answered at gray speed restarts the cooldown instead of re-closing.
  void OnSuccess(int verifier, double latency_ms, double now_ms);
  // Hedge fired / timeout expired against the verifier: one consecutive
  // miss; opens the breaker at the configured threshold.
  void OnMiss(int verifier, double now_ms);
  // Response abandoned without an answer (round resolved elsewhere or timed
  // out); only releases the outstanding slot.
  void OnAbandoned(int verifier);

  // ---- Derived views ----
  double HedgeDelayMs() const;  // p95-derived, clamped; default until warm.
  bool BreakerOpen(int verifier, double now_ms) const;
  int outstanding(int verifier) const { return state_[verifier].outstanding; }
  uint64_t breaker_trips() const { return breaker_trips_; }
  const std::vector<double>& mttr_samples_ms() const { return mttr_samples_ms_; }

 private:
  struct VerifierState {
    int outstanding = 0;
    int consecutive_misses = 0;
    bool open = false;
    double opened_at_ms = 0;
    double last_probe_ms = 0;
  };

  bool AdmitsTraffic(const VerifierState& s, double now_ms) const;

  VerifierHealthConfig config_;
  std::vector<VerifierState> state_;
  std::vector<double> latency_ring_;
  size_t ring_next_ = 0;
  bool ring_full_ = false;
  int rr_next_ = 0;
  uint64_t breaker_trips_ = 0;
  std::vector<double> mttr_samples_ms_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_ATTEST_VERIFIER_HEALTH_H_
