// The untrusted event log that accompanies a Flicker attestation.
//
// §2.1: "An attestation consists of an untrusted event log and a signed
// quote from the TPM." For Flicker sessions the log records what the
// challenged party *claims* ran: which PAL, its inputs and outputs, the
// nonce, and any application-level PCR extends. The verifier never trusts
// the log directly - it reconstructs the PCR 17 chain from the log plus its
// own knowledge of the PAL binary, and the TPM's signature arbitrates.

#ifndef FLICKER_SRC_ATTEST_EVENT_LOG_H_
#define FLICKER_SRC_ATTEST_EVENT_LOG_H_

#include <string>
#include <vector>

#include "src/attest/verifier.h"
#include "src/common/bytes.h"
#include "src/common/status.h"

namespace flicker {

struct FlickerEventLog {
  std::string pal_name;
  // What the platform claims SKINIT measured; checked against the
  // verifier's own build of the PAL.
  Bytes claimed_measurement;
  Bytes inputs;
  Bytes outputs;
  Bytes nonce;
  std::vector<Bytes> pal_extends;

  Bytes Serialize() const;
  static Result<FlickerEventLog> Deserialize(const Bytes& data);
};

// Builds the verifier-side expectation from an untrusted log and the
// verifier's authoritative copy of the PAL. Fails fast when the log's
// claimed measurement does not match the binary (the log is lying about
// which PAL ran; the quote check would fail anyway, but this gives a
// precise diagnostic).
Result<SessionExpectation> ExpectationFromLog(const FlickerEventLog& log,
                                              const PalBinary& binary,
                                              LateLaunchTech tech = LateLaunchTech::kAmdSvm);

}  // namespace flicker

#endif  // FLICKER_SRC_ATTEST_EVENT_LOG_H_
