// Remote-verifier logic (paper §4.4.1).
//
// Given knowledge of the PAL (its SLB image), the session inputs/outputs and
// the nonce it issued, the verifier reconstructs the exact extend chain
// PCR 17 must hold and checks the TPM's quote signature over it. Nothing the
// untrusted OS does can produce the same PCR 17 value without running the
// PAL under SKINIT, because only SKINIT resets PCR 17.

#ifndef FLICKER_SRC_ATTEST_VERIFIER_H_
#define FLICKER_SRC_ATTEST_VERIFIER_H_

#include <vector>

#include "src/attest/privacy_ca.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/os/tqd.h"
#include "src/slb/slb_layout.h"
#include "src/tpm/structures.h"

namespace flicker {

// What the verifier knows/expects about a session.
struct SessionExpectation {
  // The PAL being attested; the verifier recomputes its measurements from
  // the same (public) binary.
  const PalBinary* binary = nullptr;
  Bytes inputs;
  Bytes outputs;
  Bytes nonce;
  // Measurements the PAL itself extended into PCR 17 before the SLB core's
  // closing extends (e.g., the rootkit detector extends the kernel hash).
  std::vector<Bytes> pal_extends;
  // Which launch technology the platform uses: a TXT chain begins with the
  // SINIT ACM measurement.
  LateLaunchTech tech = LateLaunchTech::kAmdSvm;
};

// The extend chain for a session that ran `expectation`:
//   0^20
//   -> [H(SINIT ACM)]                        (Intel TXT platforms only)
//   -> H(measured SLB prefix)                (SKINIT / SENTER)
//   -> [H(full 64 KB image)]                 (measurement stub builds only)
//   -> [pal_extends...]                      (application extends)
//   -> H(inputs) -> H(outputs) -> [H(nonce)] -> termination constant.
Bytes ComputeExpectedPcr17(const SessionExpectation& expectation);

// The PCR 17 value while the PAL executes (before the closing extends):
// what sealed storage should bind to.
Bytes ComputeExecutionPcr17(const PalBinary& binary,
                            LateLaunchTech tech = LateLaunchTech::kAmdSvm);

// Full attestation check: AIK certificate chain, quote signature, composite
// reconstruction, nonce freshness, and the PCR 17 chain. Returns OK only if
// every link holds.
Status VerifyAttestation(const SessionExpectation& expectation,
                         const AttestationResponse& response, const AikCertificate& aik_cert,
                         const RsaPublicKey& privacy_ca_public, const Bytes& expected_nonce);

// One challenger's check of a Merkle-aggregated batch quote. The challenger
// recomputes the batch root from its OWN nonce (`expected_nonce`, the one it
// issued) and the shipped authentication path, then runs the full
// VerifyAttestation chain with that root as the quote's externalData. A
// response carrying a wrong path, another challenger's slice, or a quote
// from a different batch therefore fails closed: nothing in the response is
// trusted to name the nonce being proven.
Status VerifyBatchQuote(const SessionExpectation& expectation, const BatchQuoteResponse& response,
                        const AikCertificate& aik_cert, const RsaPublicKey& privacy_ca_public,
                        const Bytes& expected_nonce);

// Reconstructs TPM_COMPOSITE_HASH from a quote's selection + values; must
// match the TPM-side computation bit for bit.
Bytes RecomputeQuoteComposite(const TpmQuote& quote);

}  // namespace flicker

#endif  // FLICKER_SRC_ATTEST_VERIFIER_H_
