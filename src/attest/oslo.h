// An OSLO-style Open Secure LOader (Kauer, USENIX Security 2007 - the
// paper's §8 related work and the starting point of the original Flicker
// implementation).
//
// OSLO uses SKINIT at *boot time* to establish a dynamic root of trust for
// the whole boot: the BIOS and boot sector drop out of the TCB because the
// measured loader - not the BIOS - measures and launches the kernel. This
// module reproduces that flow on the simulated platform and gives Flicker's
// trusted-boot comparison a stronger baseline than BIOS-rooted IMA:
//
//   reboot -> (untrusted BIOS runs) -> SKINIT(loader SLB)
//     PCR 17 = H(0^20 || H(loader))        [hardware]
//     loader hashes the kernel image and extends it into PCR 17
//     loader exits the secure loader block and boots the kernel
//
// A verifier reconstructs PCR 17 from the public loader image and a
// known-good kernel hash; a tampered BIOS cannot influence either link.

#ifndef FLICKER_SRC_ATTEST_OSLO_H_
#define FLICKER_SRC_ATTEST_OSLO_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/os/kernel.h"

namespace flicker {

struct OsloBootReport {
  Bytes loader_measurement;  // H(loader SLB prefix) - public.
  Bytes kernel_measurement;  // H(kernel image) as the loader saw it.
  Bytes pcr17_after_boot;    // The chain a verifier must reproduce.
  double skinit_ms = 0;
  double kernel_hash_ms = 0;
};

class OsloBootLoader {
 public:
  // The loader is ~1,000 lines / ~6 KB (per the paper's comparison: "OSLO
  // consists of just over 1,000 lines of code, and is larger than Flicker
  // because it executes at boot time and includes support for the Multiboot
  // Specification").
  static constexpr size_t kLoaderImageBytes = 6144;
  static constexpr int kLoaderLinesOfCode = 1024;

  // The loader's deterministic SLB image (header + code), and its SKINIT
  // measurement - both public, so any verifier can predict the chain.
  static Bytes LoaderImage();
  static Bytes LoaderMeasurement();

  // Performs the secure boot on a freshly rebooted machine: parks APs,
  // SKINITs the loader, hashes the kernel's measured regions into PCR 17,
  // exits secure mode and hands off to the OS.
  static Result<OsloBootReport> SecureBoot(Machine* machine, const OsKernel& kernel);

  // Verifier: the PCR 17 value a correct boot of `expected_kernel_hash`
  // produces.
  static Bytes ExpectedBootPcr17(const Bytes& expected_kernel_hash);
};

}  // namespace flicker

#endif  // FLICKER_SRC_ATTEST_OSLO_H_
