#include "src/attest/privacy_ca.h"

namespace flicker {

Bytes AikCertificate::SignedPayload() const {
  Bytes payload = aik_public;
  Bytes label = BytesOf(tpm_label);
  PutUint32(&payload, static_cast<uint32_t>(label.size()));
  payload.insert(payload.end(), label.begin(), label.end());
  return payload;
}

PrivacyCa::PrivacyCa(uint64_t seed) : rng_(seed) {
  key_ = RsaGenerateKey(1024, &rng_);
}

AikCertificate PrivacyCa::Certify(const RsaPublicKey& aik_public, const std::string& tpm_label) {
  AikCertificate cert;
  cert.aik_public = aik_public.Serialize();
  cert.tpm_label = tpm_label;
  cert.signature = RsaSignSha1(key_, cert.SignedPayload());
  return cert;
}

bool PrivacyCa::Verify(const RsaPublicKey& ca_public, const AikCertificate& certificate) {
  return RsaVerifySha1(ca_public, certificate.SignedPayload(), certificate.signature);
}

}  // namespace flicker
