#include "src/attest/event_log.h"

#include "src/common/serde.h"

namespace flicker {

Bytes FlickerEventLog::Serialize() const {
  Writer w;
  w.Str(pal_name);
  w.Blob(claimed_measurement);
  w.Blob(inputs);
  w.Blob(outputs);
  w.Blob(nonce);
  w.U32(static_cast<uint32_t>(pal_extends.size()));
  for (const Bytes& extend : pal_extends) {
    w.Blob(extend);
  }
  return w.Take();
}

Result<FlickerEventLog> FlickerEventLog::Deserialize(const Bytes& data) {
  Reader r(data);
  FlickerEventLog log;
  log.pal_name = r.Str();
  log.claimed_measurement = r.Blob();
  log.inputs = r.Blob();
  log.outputs = r.Blob();
  log.nonce = r.Blob();
  uint32_t extend_count = r.U32();
  for (uint32_t i = 0; i < extend_count && r.ok(); ++i) {
    log.pal_extends.push_back(r.Blob());
  }
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt Flicker event log");
  }
  return log;
}

Result<SessionExpectation> ExpectationFromLog(const FlickerEventLog& log, const PalBinary& binary,
                                              LateLaunchTech tech) {
  if (log.claimed_measurement != binary.identity()) {
    return IntegrityFailureError("event log claims a different PAL than expected: " +
                                 log.pal_name);
  }
  SessionExpectation expectation;
  expectation.binary = &binary;
  expectation.inputs = log.inputs;
  expectation.outputs = log.outputs;
  expectation.nonce = log.nonce;
  expectation.pal_extends = log.pal_extends;
  expectation.tech = tech;
  return expectation;
}

}  // namespace flicker
