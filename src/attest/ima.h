// A trusted-boot integrity measurement architecture in the style of IBM IMA
// (paper §2.1, §8) - the baseline Flicker's "meaningful attestation" goal is
// defined against.
//
// Every piece of software loaded since boot (BIOS, bootloader, kernel,
// applications, config files) is hashed into a static PCR and appended to an
// event log. An attestation ships the whole log: the verifier must know a
// good value for EVERY entry, a single unknown entry spoils the verdict, and
// the log leaks the platform's complete software inventory. The ablation
// bench quantifies all three against Flicker's single-PAL attestation.

#ifndef FLICKER_SRC_ATTEST_IMA_H_
#define FLICKER_SRC_ATTEST_IMA_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"

namespace flicker {

struct ImaEvent {
  std::string description;  // "kernel", "/usr/bin/sshd", ...
  Bytes measurement;        // SHA-1 of the loaded content.
};

struct ImaAttestation {
  std::vector<ImaEvent> log;  // Untrusted; validated against the quote.
  TpmQuote quote;
  Bytes aik_public;
};

class ImaSystem {
 public:
  // IMA conventionally aggregates into PCR 10 (a static PCR: only a reboot
  // resets it).
  explicit ImaSystem(Machine* machine, int pcr_index = 10);

  // Measures loaded content: extend SHA-1(content) into the PCR, append to
  // the log. Called for everything from the BIOS up.
  Status MeasureEvent(const std::string& description, const Bytes& content);

  const std::vector<ImaEvent>& event_log() const { return log_; }
  int pcr_index() const { return pcr_index_; }

  Result<ImaAttestation> Attest(const Bytes& nonce);

 private:
  Machine* machine_;
  int pcr_index_;
  std::vector<ImaEvent> log_;
};

struct ImaVerdict {
  bool quote_signature_valid = false;
  bool log_matches_pcr = false;   // Recomputed aggregate equals the quoted PCR.
  size_t entries_total = 0;
  size_t entries_unknown = 0;     // Entries absent from the known-good database.
  std::vector<std::string> unknown_entries;

  // The verifier can only trust the platform when the chain verifies AND it
  // recognizes every single entry.
  bool Trustworthy() const {
    return quote_signature_valid && log_matches_pcr && entries_unknown == 0;
  }
};

// Verifier side: validate the quote, replay the log into the expected PCR,
// and check each measurement against `known_good` (hex digests).
ImaVerdict VerifyImaAttestation(const ImaAttestation& attestation, const RsaPublicKey& aik,
                                const std::set<std::string>& known_good, const Bytes& nonce,
                                int pcr_index = 10);

}  // namespace flicker

#endif  // FLICKER_SRC_ATTEST_IMA_H_
