// Reliable request/response sessions over a LossyChannel.
//
// The channel below is adversarial: datagrams vanish, duplicate, reorder,
// garble and stall. This layer restores exactly-once request/response
// semantics the way RPC stacks do:
//
//   * sequence numbers pair every response with its request; stale or
//     mismatched frames are ignored, never surfaced,
//   * per-request deadlines run on the simulated clock - a Call either
//     returns the server's typed verdict or fails CLOSED (kUnavailable)
//     no later than its total deadline,
//   * retransmits follow the shared capped-exponential BackoffPolicy with
//     deterministic jitter (same seed => same schedule, so chaos cells
//     replay bit-exact),
//   * the server answers duplicate sequence numbers from a bounded reply
//     cache without re-invoking the handler, so a retransmitted request is
//     executed at most once (a CA must not mint two certificates because
//     the wire hiccuped),
//   * a server shedding load answers with a distinct kOverloaded verdict;
//     the client folds it back into the same backoff schedule (retry-after)
//     instead of failing, and the server leaves shed sequence numbers
//     uncached - the request never executed, so a later retransmit may,
//   * every inbound frame is treated as hostile: length-checked, magic- and
//     type-checked, bounded, and covered by a trailing FNV-1a checksum, so
//     a wire bit-flip is a rejected frame (recovered by retransmit), never
//     garbled bytes surfacing to the application.
//
// The simulation is single-threaded, so the remote endpoint does not run by
// itself: Call() invokes a caller-supplied pump after each transmit, which
// is where the test (or app harness) lets the server's ServePending drain.

#ifndef FLICKER_SRC_NET_SESSION_H_
#define FLICKER_SRC_NET_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "src/common/backoff.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/lossy_channel.h"

namespace flicker {

// Hard ceiling on any session frame; anything larger is hostile by fiat.
inline constexpr size_t kMaxSessionFrameBytes = 1u << 20;

struct SessionFrame {
  static constexpr uint32_t kMagic = 0x46534E31;  // "FSN1"
  static constexpr uint8_t kRequest = 0;
  static constexpr uint8_t kResponse = 1;

  uint8_t type = kRequest;
  uint64_t seq = 0;
  // Responses carry the server's Status in-band so errors survive the wire
  // typed; requests leave these at defaults.
  uint8_t status_code = 0;
  std::string status_message;
  Bytes payload;

  // Wire form: magic | type | seq | status | message | payload | fnv1a32.
  Bytes Serialize() const;
  static Result<SessionFrame> Deserialize(const Bytes& data);
};

struct SessionConfig {
  double attempt_timeout_ms = 30.0;  // Receive window after each transmit.
  int max_attempts = 4;              // One initial send plus three retransmits.
  double total_deadline_ms = 250.0;  // Fail-closed ceiling per Call.
  // Capped exponential backoff between retransmits, with deterministic
  // jitter so concurrent retriers do not sync up.
  BackoffPolicy backoff{5.0, 2.0, 40.0, 0.5};
  uint64_t jitter_seed = 0x5e55;
};

class SessionClient {
 public:
  // Runs the peer while this client waits: drains the remote endpoint's
  // pending frames up to the given simulated-clock horizon.
  using PeerPump = std::function<void(double deadline_ms)>;

  SessionClient(LossyChannel* channel, NetEndpoint side,
                SessionConfig config = SessionConfig())
      : channel_(channel), side_(side), config_(config) {}

  // Sends `request` and returns the matching response payload, the server's
  // typed error, or - when the deadline/attempt budget exhausts with no
  // matching reply - a fail-closed kUnavailable. Never returns a response
  // whose sequence number does not match this call.
  Result<Bytes> Call(const Bytes& request, const PeerPump& pump = PeerPump());

  uint64_t calls() const { return calls_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t stale_frames() const { return stale_frames_; }
  uint64_t rejected_frames() const { return rejected_frames_; }
  uint64_t overload_retries() const { return overload_retries_; }

 private:
  LossyChannel* channel_;
  NetEndpoint side_;
  SessionConfig config_;
  uint64_t next_seq_ = 0;
  uint64_t calls_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t stale_frames_ = 0;
  uint64_t rejected_frames_ = 0;
  uint64_t overload_retries_ = 0;
};

// ---- Attested-session amortization (wire layer) ----
//
// A TPM quote is the expensive way to authenticate a platform: ~1 s of TPM
// time per challenge (Table 1). Once one quote has been verified, both ends
// hold a shared session key (shipped under the attested K_PAL; see
// secure_channel.h) and further exchanges ride HMAC-SHA256-authenticated
// frames instead - the paper's SSH design (§6) applied to attestation
// traffic. The MAC covers a strictly-increasing counter and the sender's
// role, so replayed and reflected frames both fail closed.

struct AuthedFrame {
  static constexpr uint32_t kMagic = 0x46415331;  // "FAS1"
  static constexpr uint8_t kInitiator = 0;  // The side that established the session.
  static constexpr uint8_t kResponder = 1;

  uint64_t session_id = 0;
  uint8_t sender = kInitiator;
  uint64_t counter = 0;  // Strictly increasing per sender within a session.
  Bytes payload;
  Bytes tag;  // HMAC-SHA256(key, magic || session_id || sender || counter || payload).

  Bytes Serialize() const;
  static Result<AuthedFrame> Deserialize(const Bytes& data);
};

// One side of an established MAC session. Seal() stamps this side's next
// counter and tags the frame; Open() verifies the peer's tag in constant
// time and enforces counter monotonicity, so a recorded frame can never be
// accepted twice (or reflected back at its sender).
class MacSessionEndpoint {
 public:
  MacSessionEndpoint(uint64_t session_id, Bytes key, bool is_initiator)
      : session_id_(session_id), key_(std::move(key)), is_initiator_(is_initiator) {}

  AuthedFrame Seal(const Bytes& payload);
  Result<Bytes> Open(const AuthedFrame& frame);

  uint64_t session_id() const { return session_id_; }
  // Frames sealed plus frames accepted: the cache's use-count bound.
  uint64_t uses() const { return uses_; }

 private:
  uint64_t session_id_;
  Bytes key_;
  bool is_initiator_;
  uint64_t next_counter_ = 1;
  uint64_t peer_high_water_ = 0;
  uint64_t uses_ = 0;
};

class SessionServer {
 public:
  using Handler = std::function<Result<Bytes>(const Bytes&)>;

  SessionServer(LossyChannel* channel, NetEndpoint side, size_t reply_cache_capacity = 64)
      : channel_(channel), side_(side), cache_capacity_(reply_cache_capacity) {}

  // Receives every frame arriving for this endpoint before `deadline_ms`
  // and answers requests via `handler`. Handler Status errors are encoded
  // in-band. Duplicate sequence numbers are answered from the reply cache
  // without re-invoking the handler (at-most-once execution). Malformed or
  // non-request frames are counted and dropped. Returns frames processed.
  size_t ServePending(double deadline_ms, const Handler& handler);

  uint64_t requests_handled() const { return requests_handled_; }
  uint64_t duplicates_served() const { return duplicates_served_; }
  uint64_t rejected_frames() const { return rejected_frames_; }
  uint64_t overloads_shed() const { return overloads_shed_; }

 private:
  LossyChannel* channel_;
  NetEndpoint side_;
  size_t cache_capacity_;
  std::map<uint64_t, Bytes> reply_cache_;  // seq -> serialized response frame.
  std::deque<uint64_t> cache_order_;       // FIFO eviction.
  uint64_t requests_handled_ = 0;
  uint64_t duplicates_served_ = 0;
  uint64_t rejected_frames_ = 0;
  uint64_t overloads_shed_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_NET_SESSION_H_
