// Latency-modeled message channel between the Flicker platform and a remote
// verifier.
//
// Calibrated to the paper's §7.1 setup: the verifier is 12 hops away with
// ping times of 9.33 / 9.45 / 10.10 ms (min/avg/max over 50 trials). Message
// delivery advances the shared simulated clock by a deterministic jittered
// one-way latency.

#ifndef FLICKER_SRC_NET_CHANNEL_H_
#define FLICKER_SRC_NET_CHANNEL_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/crypto/drbg.h"
#include "src/hw/clock.h"

namespace flicker {

struct LatencyProfile {
  double min_rtt_ms = 9.33;
  double avg_rtt_ms = 9.45;
  double max_rtt_ms = 10.10;
  int hops = 12;
};

class Channel {
 public:
  Channel(SimClock* clock, LatencyProfile profile = LatencyProfile(), uint64_t jitter_seed = 17)
      : clock_(clock), profile_(profile), jitter_(jitter_seed) {}

  // Delivers one message: advances the clock by a one-way latency drawn
  // from [min, max]/2 with mass near avg/2. Only actual deliveries count
  // toward messages_delivered(); bare latency sampling does not.
  void Deliver() {
    clock_->AdvanceMillis(SampleOneWayMs());
    ++messages_delivered_;
  }

  // Convenience for request/response exchanges.
  void RoundTrip() {
    Deliver();
    Deliver();
  }

  double SampleOneWayMs();

  const LatencyProfile& profile() const { return profile_; }
  uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  SimClock* clock_;
  LatencyProfile profile_;
  Drbg jitter_;
  uint64_t messages_delivered_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_NET_CHANNEL_H_
