#include "src/net/lossy_channel.h"

#include <algorithm>
#include <ostream>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The exact rounding SimClock::AdvanceMillis applies (µs grain widened to
// ns), so a fault-free LossyChannel charges byte-identical latencies to the
// Channel it replaces.
uint64_t NsOfMs(double ms) {
  return ms > 0 ? static_cast<uint64_t>(ms * 1000.0 + 0.5) * 1000 : 0;
}

}  // namespace

const char* NetEndpointName(NetEndpoint endpoint) {
  return endpoint == NetEndpoint::kClient ? "client" : "server";
}

const char* NetFaultName(NetFault fault) {
  switch (fault) {
    case NetFault::kNone:
      return "none";
    case NetFault::kDrop:
      return "drop";
    case NetFault::kDuplicate:
      return "duplicate";
    case NetFault::kReorder:
      return "reorder";
    case NetFault::kCorrupt:
      return "corrupt";
    case NetFault::kDelay:
      return "delay";
    case NetFault::kPartition:
      return "partition";
  }
  return "?";
}

NetFaultSchedule::NetFaultSchedule(uint64_t seed, const NetFaultMix& mix,
                                   std::vector<PartitionWindow> partitions)
    : enabled_(true), seed_(seed), mix_(mix), partitions_(std::move(partitions)) {}

NetFault NetFaultSchedule::Classify(uint64_t msg_index) const {
  if (!enabled_) {
    return NetFault::kNone;
  }
  for (const PartitionWindow& window : partitions_) {
    if (msg_index >= window.start_msg && msg_index < window.end_msg) {
      return NetFault::kPartition;
    }
  }
  // One draw in [0, 10000); the mix carves it into disjoint verdict bands,
  // so per-message probabilities are exact and mutually exclusive.
  uint64_t draw = SplitMix64(seed_ ^ (msg_index * 0x9E3779B97F4A7C15ULL)) % 10000;
  uint64_t band = mix_.drop_bp;
  if (draw < band) {
    return NetFault::kDrop;
  }
  band += mix_.duplicate_bp;
  if (draw < band) {
    return NetFault::kDuplicate;
  }
  band += mix_.reorder_bp;
  if (draw < band) {
    return NetFault::kReorder;
  }
  band += mix_.corrupt_bp;
  if (draw < band) {
    return NetFault::kCorrupt;
  }
  band += mix_.delay_bp;
  if (draw < band) {
    return NetFault::kDelay;
  }
  return NetFault::kNone;
}

double LossyChannel::SampleOneWayMs() {
  // Same triangular jitter as Channel::SampleOneWayMs, so a fault-free
  // LossyChannel charges byte-identical latencies to the same-seeded
  // Channel it replaces.
  double spread_low = (profile_.avg_rtt_ms - profile_.min_rtt_ms) / 2.0;
  double spread_high = (profile_.max_rtt_ms - profile_.avg_rtt_ms) / 2.0;
  uint64_t draw = jitter_.UniformUint64(1000);
  double u = static_cast<double>(draw) / 999.0;  // [0, 1].
  double rtt;
  if (u < 0.5) {
    rtt = profile_.avg_rtt_ms - spread_low * (1.0 - 2.0 * u);
  } else {
    rtt = profile_.avg_rtt_ms + spread_high * (2.0 * u - 1.0);
  }
  return rtt / 2.0;
}

void LossyChannel::Enqueue(NetEndpoint dest, uint64_t seq, uint64_t arrival_ns, Bytes payload) {
  InFlight entry;
  entry.arrival_ns = arrival_ns;
  entry.seq = seq;
  entry.dest = dest;
  entry.payload = std::move(payload);
  if (delivery_hook_) {
    delivery_hook_(dest, seq, entry.arrival_ns);
  }
  in_flight_.push_back(std::move(entry));
}

void LossyChannel::Record(NetEndpoint dest, const NetTraceEntry& entry) {
  std::vector<NetTraceEntry>& ring = ring_[static_cast<int>(dest)];
  size_t& next = ring_next_[static_cast<int>(dest)];
  if (ring.size() < kTraceCapacity) {
    ring.push_back(entry);
  } else {
    ring[next] = entry;
    next = (next + 1) % kTraceCapacity;
  }
}

void LossyChannel::Send(NetEndpoint from, const Bytes& datagram) {
  SendAt(from, clock_->NowNanos(), datagram);
}

void LossyChannel::SendAt(NetEndpoint from, uint64_t send_ns, const Bytes& datagram) {
  const uint64_t seq = ++messages_sent_;
  const NetEndpoint dest =
      from == NetEndpoint::kClient ? NetEndpoint::kServer : NetEndpoint::kClient;
  const double one_way_ms = SampleOneWayMs();
  const NetFault fault = schedule_.Classify(seq);
  // Scheduled arrival on the wire; fault verdicts below may push it out.
  uint64_t arrival_ns = send_ns + NsOfMs(one_way_ms);

  NetTraceEntry trace;
  trace.seq = seq;
  trace.from = from;
  trace.bytes = datagram.size();
  trace.fault = fault;
  trace.sent_at_ns = send_ns;

  obs::Count(obs::Ctr::kNetMessagesSent);
  if (fault != NetFault::kNone) {
    ++faults_injected_;
    obs::Count(obs::Ctr::kNetFaultsInjected);
    obs::Instant("net", NetFaultName(fault),
                 {{"seq", std::to_string(seq)}, {"from", NetEndpointName(from)}});
  }
  switch (fault) {
    case NetFault::kDrop:
    case NetFault::kPartition:
      // Swallowed by the wire; the latency sample was still drawn (the
      // bytes left the sender), keeping replays aligned across verdicts.
      break;
    case NetFault::kDuplicate: {
      Enqueue(dest, seq, arrival_ns, datagram);
      // The duplicate trails by its own fresh latency (a retransmitting
      // middlebox), so both copies arrive and the receiver must dedup.
      Enqueue(dest, seq, arrival_ns + NsOfMs(SampleOneWayMs()), datagram);
      break;
    }
    case NetFault::kReorder:
      // Held back long enough for a later message to overtake it.
      arrival_ns += NsOfMs(schedule_.mix().reorder_ms);
      Enqueue(dest, seq, arrival_ns, datagram);
      break;
    case NetFault::kCorrupt: {
      Bytes garbled = datagram;
      if (!garbled.empty()) {
        size_t pos = static_cast<size_t>(seq * 0x9E3779B97F4A7C15ULL % garbled.size());
        garbled[pos] ^= 0x5A;
      }
      Enqueue(dest, seq, arrival_ns, std::move(garbled));
      break;
    }
    case NetFault::kDelay:
      arrival_ns += NsOfMs(schedule_.mix().delay_ms);
      Enqueue(dest, seq, arrival_ns, datagram);
      break;
    case NetFault::kNone:
      Enqueue(dest, seq, arrival_ns, datagram);
      break;
  }
  // The traced arrival is the same nanosecond the in-flight queue carries,
  // so the ring and a later Receive() agree exactly.
  trace.arrival_ns = arrival_ns;
  Record(dest, trace);
}

int LossyChannel::EarliestFor(NetEndpoint at) const {
  int best = -1;
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].dest != at) {
      continue;
    }
    if (best < 0 || in_flight_[i].arrival_ns < in_flight_[best].arrival_ns ||
        (in_flight_[i].arrival_ns == in_flight_[best].arrival_ns &&
         in_flight_[i].seq < in_flight_[best].seq)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool LossyChannel::NextArrivalMs(NetEndpoint at, double* arrival_ms) const {
  int index = EarliestFor(at);
  if (index < 0) {
    return false;
  }
  *arrival_ms = static_cast<double>(in_flight_[index].arrival_ns) / 1e6;
  return true;
}

bool LossyChannel::Receive(NetEndpoint at, Bytes* out) {
  int index = EarliestFor(at);
  if (index < 0) {
    return false;
  }
  clock_->AdvanceToNanos(in_flight_[index].arrival_ns);
  *out = std::move(in_flight_[index].payload);
  in_flight_.erase(in_flight_.begin() + index);
  ++messages_delivered_;
  obs::Count(obs::Ctr::kNetMessagesDelivered);
  return true;
}

bool LossyChannel::ReceiveUntil(NetEndpoint at, double deadline_ms, Bytes* out) {
  const uint64_t deadline_ns = NsOfMs(deadline_ms);
  int index = EarliestFor(at);
  if (index < 0 || in_flight_[index].arrival_ns > deadline_ns) {
    // Nothing arrives in time: burn the wait so timeout verdicts charge
    // honestly, and leave any late datagram in flight.
    clock_->AdvanceToNanos(deadline_ns);
    return false;
  }
  return Receive(at, out);
}

bool LossyChannel::ReceiveScheduled(NetEndpoint at, uint64_t seq, uint64_t arrival_ns, Bytes* out) {
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    const InFlight& entry = in_flight_[i];
    if (entry.dest != at || entry.seq != seq || entry.arrival_ns != arrival_ns) {
      continue;
    }
    *out = std::move(in_flight_[i].payload);
    in_flight_.erase(in_flight_.begin() + static_cast<long>(i));
    ++messages_delivered_;
    obs::Count(obs::Ctr::kNetMessagesDelivered);
    return true;
  }
  return false;
}

std::vector<NetTraceEntry> LossyChannel::TraceSnapshot(NetEndpoint at) const {
  const std::vector<NetTraceEntry>& ring = ring_[static_cast<int>(at)];
  const size_t next = ring_next_[static_cast<int>(at)];
  std::vector<NetTraceEntry> out;
  out.reserve(ring.size());
  for (size_t i = 0; i < ring.size(); ++i) {
    out.push_back(ring[(next + i) % ring.size()]);
  }
  return out;
}

void LossyChannel::DumpTrace(std::ostream& os) const {
  os << "LossyChannel trace (" << messages_sent_ << " sent, " << messages_delivered_
     << " delivered, " << faults_injected_ << " faulted):\n";
  for (NetEndpoint at : {NetEndpoint::kClient, NetEndpoint::kServer}) {
    for (const NetTraceEntry& entry : TraceSnapshot(at)) {
      os << "  #" << entry.seq << " " << NetEndpointName(entry.from) << "->"
         << NetEndpointName(at) << " " << entry.bytes << "B " << NetFaultName(entry.fault)
         << " sent@" << entry.sent_at_ns << "ns arrive@" << entry.arrival_ns << "ns\n";
    }
  }
}

}  // namespace flicker
