#include "src/net/session.h"

#include "src/common/serde.h"
#include "src/crypto/hmac.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {

namespace {

// FNV-1a over the frame body. Not cryptographic - the trust decisions live
// in the attestation layer - but it turns every wire bit-flip into a
// rejected frame the retransmit machinery recovers from, instead of garbled
// bytes surfacing to the application.
uint32_t FrameChecksum(const Bytes& body) {
  uint32_t hash = 2166136261u;
  for (uint8_t byte : body) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

}  // namespace

Bytes SessionFrame::Serialize() const {
  Writer w;
  w.U32(kMagic);
  w.U8(type);
  w.U64(seq);
  w.U8(status_code);
  w.Str(status_message);
  w.Blob(payload);
  Bytes body = w.Take();
  Writer tail;
  tail.U32(FrameChecksum(body));
  Bytes sum = tail.Take();
  body.insert(body.end(), sum.begin(), sum.end());
  return body;
}

Result<SessionFrame> SessionFrame::Deserialize(const Bytes& data) {
  if (data.size() > kMaxSessionFrameBytes) {
    return InvalidArgumentError("session frame exceeds size bound");
  }
  if (data.size() < 4) {
    return InvalidArgumentError("session frame too short for checksum");
  }
  Bytes body(data.begin(), data.end() - 4);
  Bytes sum(data.end() - 4, data.end());
  Reader tail(sum);
  if (tail.U32() != FrameChecksum(body)) {
    return IntegrityFailureError("session frame checksum mismatch");
  }
  Reader r(body);
  SessionFrame frame;
  if (r.U32() != kMagic) {
    return InvalidArgumentError("bad session frame magic");
  }
  frame.type = r.U8();
  frame.seq = r.U64();
  frame.status_code = r.U8();
  frame.status_message = r.Str();
  frame.payload = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt session frame");
  }
  if (frame.type != kRequest && frame.type != kResponse) {
    return InvalidArgumentError("unknown session frame type");
  }
  if (frame.status_code > static_cast<uint8_t>(StatusCode::kOverloaded)) {
    return InvalidArgumentError("session frame carries unknown status code");
  }
  return frame;
}

Result<Bytes> SessionClient::Call(const Bytes& request, const PeerPump& pump) {
  ++calls_;
  obs::Count(obs::Ctr::kSessionCalls);
  const uint64_t seq = ++next_seq_;
  obs::ScopedSpan call_span("net", "net.call");
  call_span.Arg("seq", seq);
  const uint64_t call_start_ns = obs::NowNs(channel_->clock());
  SessionFrame frame;
  frame.type = SessionFrame::kRequest;
  frame.seq = seq;
  frame.payload = request;
  const Bytes wire = frame.Serialize();

  const double start_ms = static_cast<double>(channel_->clock()->NowMicros()) / 1000.0;
  const double hard_deadline_ms = start_ms + config_.total_deadline_ms;
  BackoffSchedule backoff(config_.backoff, config_.jitter_seed ^ seq);
  Status last_failure = UnavailableError("no response received");

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      double delay_ms = backoff.NextDelayMs();
      double now_ms = static_cast<double>(channel_->clock()->NowMicros()) / 1000.0;
      if (now_ms + delay_ms >= hard_deadline_ms) {
        break;  // The coming wait would blow the deadline: fail closed now.
      }
      channel_->clock()->AdvanceMillis(delay_ms);
      ++retransmits_;
      obs::Count(obs::Ctr::kSessionRetransmits);
      obs::Instant("net", "net.retransmit", {{"seq", std::to_string(seq)}});
    }
    channel_->Send(side_, wire);

    double now_ms = static_cast<double>(channel_->clock()->NowMicros()) / 1000.0;
    double attempt_deadline_ms = now_ms + config_.attempt_timeout_ms;
    if (attempt_deadline_ms > hard_deadline_ms) {
      attempt_deadline_ms = hard_deadline_ms;
    }
    if (pump) {
      pump(attempt_deadline_ms);
    }

    // Drain inbound frames until the matching response or the window ends.
    Bytes inbound;
    bool shed_by_server = false;
    while (channel_->ReceiveUntil(side_, attempt_deadline_ms, &inbound)) {
      Result<SessionFrame> parsed = SessionFrame::Deserialize(inbound);
      if (!parsed.ok()) {
        ++rejected_frames_;  // Garbled or hostile: ignore, keep waiting.
        obs::Count(obs::Ctr::kSessionRejectedFrames);
        continue;
      }
      const SessionFrame& response = parsed.value();
      if (response.type != SessionFrame::kResponse || response.seq != seq) {
        ++stale_frames_;  // A reply to some earlier life; never surfaced.
        obs::Count(obs::Ctr::kSessionStaleFrames);
        continue;
      }
      if (response.status_code == static_cast<uint8_t>(StatusCode::kOverloaded)) {
        // The server shed this request before executing it; re-enter the
        // retransmit loop so the shared backoff schedule paces the retry
        // instead of hammering an overloaded farm.
        ++overload_retries_;
        obs::Count(obs::Ctr::kSessionOverloadRetries);
        last_failure = Status(StatusCode::kOverloaded, response.status_message);
        shed_by_server = true;
        break;
      }
      obs::ObserveMs(obs::Hist::kSessionCallLatencyMs,
                     static_cast<double>(obs::NowNs(channel_->clock()) - call_start_ns) / 1e6);
      if (response.status_code != 0) {
        return Status(static_cast<StatusCode>(response.status_code), response.status_message);
      }
      return response.payload;
    }
    if (!shed_by_server) {
      last_failure = UnavailableError("response window expired");
    }
    double after_ms = static_cast<double>(channel_->clock()->NowMicros()) / 1000.0;
    if (after_ms >= hard_deadline_ms) {
      break;
    }
  }
  obs::Instant("net", "net.call_deadline", {{"seq", std::to_string(seq)}});
  obs::ObserveMs(obs::Hist::kSessionCallLatencyMs,
                 static_cast<double>(obs::NowNs(channel_->clock()) - call_start_ns) / 1e6);
  if (last_failure.code() == StatusCode::kOverloaded) {
    // Surface the distinct retry-after verdict so the caller can widen its
    // own backoff instead of treating the farm as dead.
    return last_failure;
  }
  return Status(StatusCode::kUnavailable,
                "session call failed closed by deadline: " + last_failure.message());
}

size_t SessionServer::ServePending(double deadline_ms, const Handler& handler) {
  size_t processed = 0;
  Bytes inbound;
  // Only frames already scheduled to arrive before the horizon are served;
  // an idle server does not burn simulated time (the waiting client's own
  // ReceiveUntil is what charges the timeout window).
  while (true) {
    double arrival_ms = 0;
    if (!channel_->NextArrivalMs(side_, &arrival_ms) || arrival_ms > deadline_ms) {
      break;
    }
    if (!channel_->Receive(side_, &inbound)) {
      break;
    }
    ++processed;
    Result<SessionFrame> parsed = SessionFrame::Deserialize(inbound);
    if (!parsed.ok() || parsed.value().type != SessionFrame::kRequest) {
      ++rejected_frames_;
      obs::Count(obs::Ctr::kSessionRejectedFrames);
      continue;
    }
    const SessionFrame& request = parsed.value();

    auto cached = reply_cache_.find(request.seq);
    if (cached != reply_cache_.end()) {
      // Retransmit or wire duplicate: answer what we answered before.
      ++duplicates_served_;
      obs::Count(obs::Ctr::kSessionDuplicatesServed);
      channel_->Send(side_, cached->second);
      continue;
    }

    Result<Bytes> verdict = handler(request.payload);
    SessionFrame response;
    response.type = SessionFrame::kResponse;
    response.seq = request.seq;
    if (verdict.ok()) {
      response.payload = verdict.value();
    } else {
      response.status_code = static_cast<uint8_t>(verdict.status().code());
      response.status_message = verdict.status().message();
    }
    Bytes response_wire = response.Serialize();
    if (!verdict.ok() && verdict.status().code() == StatusCode::kOverloaded) {
      // Admission control rejected the request before executing it, so
      // at-most-once is not at stake: leave the seq uncached and let a
      // later retransmit run the handler for real once load drains.
      ++overloads_shed_;
      obs::Count(obs::Ctr::kSessionOverloadSheds);
      channel_->Send(side_, response_wire);
      continue;
    }
    if (reply_cache_.size() >= cache_capacity_ && !cache_order_.empty()) {
      reply_cache_.erase(cache_order_.front());
      cache_order_.pop_front();
    }
    reply_cache_.emplace(request.seq, response_wire);
    cache_order_.push_back(request.seq);
    ++requests_handled_;
    obs::Count(obs::Ctr::kSessionRequestsHandled);
    channel_->Send(side_, response_wire);
  }
  return processed;
}

namespace {

// The bytes the session MAC commits to: everything in the frame except the
// tag itself.
Bytes AuthedFrameMacInput(const AuthedFrame& frame) {
  Writer w;
  w.U32(AuthedFrame::kMagic);
  w.U64(frame.session_id);
  w.U8(frame.sender);
  w.U64(frame.counter);
  w.Blob(frame.payload);
  return w.Take();
}

}  // namespace

Bytes AuthedFrame::Serialize() const {
  Writer w;
  w.U32(kMagic);
  w.U64(session_id);
  w.U8(sender);
  w.U64(counter);
  w.Blob(payload);
  w.Blob(tag);
  return w.Take();
}

Result<AuthedFrame> AuthedFrame::Deserialize(const Bytes& data) {
  if (data.size() > kMaxSessionFrameBytes) {
    return InvalidArgumentError("authed frame exceeds size bound");
  }
  Reader r(data);
  AuthedFrame frame;
  if (r.U32() != kMagic) {
    return InvalidArgumentError("bad authed frame magic");
  }
  frame.session_id = r.U64();
  frame.sender = r.U8();
  frame.counter = r.U64();
  frame.payload = r.Blob();
  frame.tag = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt authed frame");
  }
  if (frame.sender != kInitiator && frame.sender != kResponder) {
    return InvalidArgumentError("unknown authed frame sender role");
  }
  return frame;
}

AuthedFrame MacSessionEndpoint::Seal(const Bytes& payload) {
  AuthedFrame frame;
  frame.session_id = session_id_;
  frame.sender = is_initiator_ ? AuthedFrame::kInitiator : AuthedFrame::kResponder;
  frame.counter = next_counter_++;
  frame.payload = payload;
  frame.tag = HmacSha256(key_, AuthedFrameMacInput(frame));
  ++uses_;
  return frame;
}

Result<Bytes> MacSessionEndpoint::Open(const AuthedFrame& frame) {
  if (frame.session_id != session_id_) {
    return InvalidArgumentError("authed frame names a different session");
  }
  uint8_t peer_role = is_initiator_ ? AuthedFrame::kResponder : AuthedFrame::kInitiator;
  if (frame.sender != peer_role) {
    return IntegrityFailureError("authed frame reflected back at its sender");
  }
  if (!HmacSha256Verify(key_, AuthedFrameMacInput(frame), frame.tag)) {
    return IntegrityFailureError("authed frame MAC invalid");
  }
  if (frame.counter <= peer_high_water_) {
    return ReplayDetectedError("authed frame counter replayed");
  }
  peer_high_water_ = frame.counter;
  ++uses_;
  return frame.payload;
}

}  // namespace flicker
