// An adversarial, byte-carrying datagram channel.
//
// The original Channel models only latency: Deliver() advances the clock and
// no bytes move, so every protocol above it silently assumes a perfect wire.
// LossyChannel actually transports datagrams between two endpoints and
// subjects each one to a seeded, deterministic NetFaultSchedule: per-message
// drop, duplicate, reorder, corrupt and delay verdicts plus partition
// windows during which nothing crosses in either direction. The same seed
// replays the same fault sequence bit-exact, mirroring FaultScheduler's
// seeded-plan design for power loss.
//
// With a disabled (default) schedule the channel is behaviorally identical
// to Channel: one latency sample per message, no extra deliveries, no
// overhead - so calibrated benches are unaffected unless a test arms faults.
//
// Each endpoint keeps a fixed-capacity delivery trace ring (like
// TpmTransport's command trace) so a failing chaos cell can dump exactly
// what the wire did to every frame. Ring timestamps sit on the shared
// sim-clock nanosecond epoch (obs::NowNs), and every send/delivery/fault is
// also counted in the global metrics registry and surfaced as an instant
// event on the unified trace stream: the rings are bounded dump-on-failure
// views, not a parallel truth.

#ifndef FLICKER_SRC_NET_LOSSY_CHANNEL_H_
#define FLICKER_SRC_NET_LOSSY_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "src/common/bytes.h"
#include "src/hw/clock.h"
#include "src/net/channel.h"

namespace flicker {

enum class NetEndpoint : int { kClient = 0, kServer = 1 };

const char* NetEndpointName(NetEndpoint endpoint);

// Per-message fault probabilities in basis points (1/100 of a percent), so
// mixes stay integral and seeds map to verdicts deterministically. Verdicts
// are mutually exclusive per message; at most one fires.
struct NetFaultMix {
  uint32_t drop_bp = 0;
  uint32_t duplicate_bp = 0;
  uint32_t reorder_bp = 0;
  uint32_t corrupt_bp = 0;
  uint32_t delay_bp = 0;
  double delay_ms = 25.0;    // Extra latency when a delay verdict fires.
  double reorder_ms = 15.0;  // Extra latency letting the next message pass.
};

// A half-open range of message indices (1-based Send() count) during which
// the wire is cut: everything sent in [start_msg, end_msg) is dropped.
struct PartitionWindow {
  uint64_t start_msg = 0;
  uint64_t end_msg = 0;
};

// What the schedule decided for one message.
enum class NetFault { kNone, kDrop, kDuplicate, kReorder, kCorrupt, kDelay, kPartition };

const char* NetFaultName(NetFault fault);

// Seeded, deterministic per-message fault plan. Default-constructed = fully
// disabled (never faults, draws no randomness).
class NetFaultSchedule {
 public:
  NetFaultSchedule() = default;
  NetFaultSchedule(uint64_t seed, const NetFaultMix& mix,
                   std::vector<PartitionWindow> partitions = {});

  // Verdict for the `msg_index`-th Send (1-based). Pure function of
  // (seed, mix, index): replays are bit-exact.
  NetFault Classify(uint64_t msg_index) const;

  bool enabled() const { return enabled_; }
  uint64_t seed() const { return seed_; }
  const NetFaultMix& mix() const { return mix_; }

 private:
  bool enabled_ = false;
  uint64_t seed_ = 0;
  NetFaultMix mix_;
  std::vector<PartitionWindow> partitions_;
};

// One delivery-trace record: what happened to one Send at one endpoint.
// Timestamps are sim-clock nanoseconds on the shared trace epoch
// (obs::NowNs) - the same unit the TpmTransport command ring and the
// unified span stream use, so a dumped frame lines up against the TPM
// command it triggered.
struct NetTraceEntry {
  uint64_t seq = 0;          // Global Send() index (1-based).
  NetEndpoint from = NetEndpoint::kClient;
  size_t bytes = 0;
  NetFault fault = NetFault::kNone;
  uint64_t sent_at_ns = 0;   // Simulated send time (shared ns epoch).
  uint64_t arrival_ns = 0;   // Scheduled arrival (dropped: never delivered).
};

class LossyChannel {
 public:
  static constexpr size_t kTraceCapacity = 256;

  explicit LossyChannel(SimClock* clock, LatencyProfile profile = LatencyProfile(),
                        uint64_t jitter_seed = 17)
      : clock_(clock), profile_(profile), jitter_(jitter_seed) {}

  void set_fault_schedule(const NetFaultSchedule& schedule) { schedule_ = schedule; }
  const NetFaultSchedule& fault_schedule() const { return schedule_; }

  // Queues one datagram from `from` toward the peer. Draws exactly one
  // latency sample; the armed schedule may drop, duplicate, reorder,
  // corrupt or further delay it. Never blocks, never fails (datagrams).
  void Send(NetEndpoint from, const Bytes& datagram);

  // Like Send, but the transmission starts at the explicit `send_ns` instant
  // instead of the channel clock's now. Arrival is a pure function of
  // (send_ns, drawn latency, fault verdict) - senders living on different
  // timelines (a verifier deep in its service queue answering a machine)
  // cannot drag each other's clocks forward through the shared wire.
  void SendAt(NetEndpoint from, uint64_t send_ns, const Bytes& datagram);

  // Delivers the earliest pending datagram addressed to `at`, advancing the
  // clock to its arrival time (never backwards). False when nothing is in
  // flight for this endpoint.
  bool Receive(NetEndpoint at, Bytes* out);

  // Like Receive, but refuses to advance the simulated clock past
  // `deadline_ms`: if the earliest pending arrival for `at` is later (or
  // nothing is in flight), advances to the deadline and returns false - the
  // caller's timeout verdict.
  bool ReceiveUntil(NetEndpoint at, double deadline_ms, Bytes* out);

  // Earliest pending arrival time for `at`; false when none in flight.
  bool NextArrivalMs(NetEndpoint at, double* arrival_ms) const;

  // ---- Discrete-event mode ----
  //
  // Under the fleet executor deliveries are heap events, not synchronous
  // waits. The hook fires once per datagram the wire actually carries (at
  // enqueue time, i.e. inside Send); drops and partition verdicts enqueue
  // nothing, so no hook fires and the sender's timeout is the only signal.
  // The scheduler is expected to post an event at `arrival_ns` whose handler
  // calls ReceiveScheduled with the same (dest, seq, arrival_ns) triple.
  using DeliveryHook = std::function<void(NetEndpoint dest, uint64_t seq, uint64_t arrival_ns)>;
  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }

  // Delivers exactly the datagram a DeliveryHook invocation named. Unlike
  // Receive it never advances the clock: the executor already owns time, and
  // wire latency is not CPU time on either endpoint. False when the datagram
  // is no longer in flight (already taken by a synchronous Receive).
  bool ReceiveScheduled(NetEndpoint at, uint64_t seq, uint64_t arrival_ns, Bytes* out);

  SimClock* clock() const { return clock_; }
  const LatencyProfile& profile() const { return profile_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t faults_injected() const { return faults_injected_; }

  // Delivery trace for one endpoint's inbound direction, oldest-first.
  std::vector<NetTraceEntry> TraceSnapshot(NetEndpoint at) const;
  // Dumps both directions' traces, for chaos-test fixtures on failure.
  void DumpTrace(std::ostream& os) const;

 private:
  struct InFlight {
    uint64_t arrival_ns = 0;
    uint64_t seq = 0;      // Tie-break: FIFO among equal arrivals.
    NetEndpoint dest = NetEndpoint::kClient;
    Bytes payload;
  };

  double SampleOneWayMs();
  void Enqueue(NetEndpoint dest, uint64_t seq, uint64_t arrival_ns, Bytes payload);
  void Record(NetEndpoint dest, const NetTraceEntry& entry);
  // Index into in_flight_ of the earliest pending datagram for `at`, or -1.
  int EarliestFor(NetEndpoint at) const;

  SimClock* clock_;
  LatencyProfile profile_;
  Drbg jitter_;
  NetFaultSchedule schedule_;
  DeliveryHook delivery_hook_;

  std::vector<InFlight> in_flight_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t faults_injected_ = 0;

  // One inbound trace ring per endpoint.
  std::vector<NetTraceEntry> ring_[2];
  size_t ring_next_[2] = {0, 0};
};

}  // namespace flicker

#endif  // FLICKER_SRC_NET_LOSSY_CHANNEL_H_
