#include "src/net/channel.h"

namespace flicker {

double Channel::SampleOneWayMs() {
  // Triangular-ish jitter around the average: avg + U[-1,1] * spread, where
  // spread keeps samples within [min, max].
  double spread_low = (profile_.avg_rtt_ms - profile_.min_rtt_ms) / 2.0;
  double spread_high = (profile_.max_rtt_ms - profile_.avg_rtt_ms) / 2.0;
  uint64_t draw = jitter_.UniformUint64(1000);
  double u = static_cast<double>(draw) / 999.0;  // [0, 1].
  double rtt;
  if (u < 0.5) {
    rtt = profile_.avg_rtt_ms - spread_low * (1.0 - 2.0 * u);
  } else {
    rtt = profile_.avg_rtt_ms + spread_high * (2.0 * u - 1.0);
  }
  return rtt / 2.0;
}

}  // namespace flicker
