// SimExecutor: one deterministic loop running thousands of actors.
//
// The executor owns the event heap and the fleet's notion of "now". Every
// schedulable party - a Machine/FlickerPlatform, a verifier-farm worker, a
// channel wire - registers as an actor with (optionally) its own SimClock.
// Dispatching an event at heap time T moves the executor's now to T and
// fast-forwards the target actor's clock to max(T, its local now); the
// handler then runs the actor's *activity* synchronously, charging hardware
// latencies to the actor-local clock through the approved timing call sites
// (tools/time_discipline.allow). The activity's end time is simply the
// actor's clock afterwards, and any follow-on work (a network delivery, a
// batch-window flush, a timeout) is posted back onto the heap as a future
// event instead of spinning a shared counter.
//
// Actor clocks therefore model per-machine hardware running in parallel:
// machine A burning 972 ms on a TPM quote does not delay machine B, because
// only A's clock moved. A busy actor naturally serializes its own work -
// an event dispatched at T to an actor whose clock already reads T' > T
// starts at T' (single-server FIFO queueing, no explicit queue needed).
//
// Determinism: the heap key is (ns, seeded tiebreak, seq) - see
// event_queue.h - and OrderDigest() folds the exact dispatch order into one
// FNV-1a value the determinism suite compares across runs.

#ifndef FLICKER_SRC_SIM_EXECUTOR_H_
#define FLICKER_SRC_SIM_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/hw/clock.h"
#include "src/sim/event_queue.h"

namespace flicker {
namespace sim {

using ActorId = int;
inline constexpr ActorId kNoActor = -1;

class SimExecutor {
 public:
  explicit SimExecutor(uint64_t seed) : queue_(seed), seed_(seed) {}

  // Registers an actor. `clock` may be null (pure timer targets); when set,
  // the executor fast-forwards it to each dispatched event's time and it
  // must outlive the executor's use. The returned id maps to the tracer's
  // fleet pid as id + 2 (pid 1 stays the standalone default).
  ActorId RegisterActor(std::string name, SimClock* clock);

  size_t actor_count() const { return actors_.size(); }
  const std::string& actor_name(ActorId id) const { return actors_[static_cast<size_t>(id)].name; }
  SimClock* actor_clock(ActorId id) const { return actors_[static_cast<size_t>(id)].clock; }
  // The Chrome trace pid for one actor's spans: one process track per
  // machine in Perfetto.
  uint64_t actor_pid(ActorId id) const { return static_cast<uint64_t>(id) + 2; }

  // ---- Scheduling ----
  uint64_t NowNs() const { return now_ns_; }
  // Schedules at an absolute sim time, clamped to now (events never fire in
  // the past).
  EventId ScheduleAt(ActorId actor, uint64_t at_ns, std::function<void()> fn);
  // Schedules relative to the executor's now.
  EventId ScheduleAfter(ActorId actor, uint64_t delta_ns, std::function<void()> fn);
  // Schedules relative to an actor's local clock: the verb for timers that
  // belong to an activity in progress (e.g. a batch window deadline).
  EventId ScheduleAfterLocal(ActorId actor, uint64_t delta_ns, std::function<void()> fn);
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // ---- The loop ----
  // Dispatches the next event; false when the heap is empty.
  bool Step();
  // Runs until the heap drains.
  void Run();
  // Runs until the heap drains or the next event lies beyond `horizon_ns`.
  void RunUntil(uint64_t horizon_ns);

  // ---- Introspection / determinism ----
  uint64_t events_processed() const { return events_processed_; }
  size_t max_heap_size() const { return queue_.max_size(); }
  size_t heap_size() const { return queue_.size(); }
  uint64_t events_cancelled() const { return queue_.cancelled(); }
  uint64_t seed() const { return seed_; }
  // FNV-1a over every dispatched (at_ns, actor, seq): two runs executed the
  // same event order iff their digests match.
  uint64_t OrderDigest() const { return order_digest_; }

 private:
  struct Actor {
    std::string name;
    SimClock* clock;
  };

  void Dispatch(ScheduledEvent event);

  EventQueue queue_;
  uint64_t seed_;
  uint64_t now_ns_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t order_digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  std::vector<Actor> actors_;
};

}  // namespace sim
}  // namespace flicker

#endif  // FLICKER_SRC_SIM_EXECUTOR_H_
