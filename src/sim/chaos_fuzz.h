// The composite chaos fuzzer: seeded fault-plan generation over every
// injector the fleet harness owns, invariant oracles over the resulting
// run, and delta-debugging shrinking of any failing plan down to a minimal
// reproducer.
//
// A ChaosPlan is a list of ChaosEvents - power cuts (clean or landing on a
// crash point mid-checkpoint), rack partitions, timed wire-fault mixes, TPM
// transport fault windows and verifier-tier faults - applied on top of a
// base FleetConfig and run under the discrete-event engine. Because the
// engine is deterministic, (base, plan) IS the reproducer: the same pair
// replays the same run event-for-event, which is what makes shrinking
// sound: a candidate plan either reproduces the exact failure signature or
// it does not, with no flaky middle ground.
//
// Oracles checked after every run, in fixed order (the first violated one
// names the failure signature):
//   accepted_wrong  - a tampered frame passed the verification chain,
//   torn_state      - a checkpoint store served neither old nor new bytes
//                     (or failed closed) after a mid-seal power cut,
//   accounting      - completed + timed_out + failed != injected,
//   machine_dead    - a power-cut machine failed to reboot and rejoin,
//   starved         - a live machine kept receiving arrivals after the last
//                     fault window but never completed another round.
//
// Shrinking is ddmin over the event list (drop complement chunks at
// doubling granularity) followed by per-event attenuation (halve window
// durations and crash-point indices); every candidate re-runs the full
// deterministic simulation and is kept only if the signature reproduces
// exactly. The minimal plan serializes to a text replay file that
// `micro_fleet --replay=<file>` re-runs byte-identically.

#ifndef FLICKER_SRC_SIM_CHAOS_FUZZ_H_
#define FLICKER_SRC_SIM_CHAOS_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/fleet.h"

namespace flicker {
namespace sim {

// One injected fault. Tagged union over the fleet's injector set; only the
// member selected by `kind` is meaningful.
struct ChaosEvent {
  enum class Kind { kPowerCut, kPartition, kNetWindow, kTpmWindow, kVerifierFault };
  Kind kind = Kind::kPowerCut;
  FleetPowerCut power_cut;
  FleetPartition partition;
  FleetNetMixWindow net_window;
  FleetTpmFaultWindow tpm_window;
  FleetVerifierFault verifier_fault;
};

// A fault schedule: the fleet seed the run executes under plus the events
// layered onto the base config. (base, plan) fully determines the run.
struct ChaosPlan {
  uint64_t seed = 1;
  std::vector<ChaosEvent> events;
};

// Shapes the generator's dice. Times are drawn as whole milliseconds inside
// [0, horizon_ms) so serialized plans round-trip exactly through text.
struct ChaosGenOptions {
  int max_events = 6;          // Plans carry 1..max_events faults.
  double horizon_ms = 2000.0;  // Fault windows live inside this span.
  double max_window_ms = 800.0;
  uint64_t max_crash_hit = 6;  // Crash-point cuts land on hit 1..max.
};

// Draws one plan from `seed` (splitmix-seeded, deterministic). Only valid
// plans are produced: machine/verifier indices in range for `base`,
// crash-point cuts only when base.checkpoints.enabled.
ChaosPlan GenerateChaosPlan(uint64_t seed, const FleetConfig& base,
                            const ChaosGenOptions& options = ChaosGenOptions());

// Layers the plan's events onto a copy of the base config (and stamps the
// plan's seed), ready to hand to Fleet.
FleetConfig ApplyChaosPlan(const FleetConfig& base, const ChaosPlan& plan);

// One fuzz run's verdict. `signature` is empty when every oracle held.
struct ChaosOutcome {
  bool ran = false;  // False: the harness itself failed (see error).
  std::string error;
  std::string signature;
  FleetStats stats;
};

// First violated oracle's name (see file comment), or "" when all held.
std::string EvaluateChaosOracles(const FleetStats& stats);

// Builds and runs one fleet under (base + plan) and evaluates the oracles.
ChaosOutcome RunChaosPlan(const FleetConfig& base, const ChaosPlan& plan);

// Delta-debugging: returns a (locally) minimal plan whose run still fails
// with exactly `signature`. Every probe is a full deterministic re-run;
// `*runs_used` (optional) counts them.
ChaosPlan ShrinkChaosPlan(const FleetConfig& base, const ChaosPlan& plan,
                          const std::string& signature, int* runs_used = nullptr);

// ---- Replay files ----
//
// Text format, one directive per line; '#' lines are comments except the
// machine-readable "# signature:" header the regression gate compares
// against. The file pins the base-config fields the run depends on, so a
// replay is self-contained:
//
//   # flicker chaos replay v1
//   # signature: torn_state
//   seed 7
//   machines 4
//   ...
//   event power_cut at=120.000 machine=1 hit=2

struct ChaosReplay {
  FleetConfig base;
  ChaosPlan plan;
  std::string signature;  // The failure this file reproduces ("" = clean).
};

std::string SerializeChaosReplay(const FleetConfig& base, const ChaosPlan& plan,
                                 const std::string& signature);
Result<ChaosReplay> ParseChaosReplay(const std::string& text);

// The failure artifact written alongside a shrunk reproducer: signature,
// minimal plan, the executor's order digest (pins the exact interleaving)
// and the process-wide crash-point census via FaultScheduler::
// DumpCrashPoints, so a torn-state report names the durability boundaries
// the failing run crossed.
std::string ChaosFailureArtifact(const FleetConfig& base, const ChaosPlan& plan,
                                 const ChaosOutcome& outcome);

// ---- Campaign ----

struct ChaosFuzzReport {
  int plans_run = 0;
  int violations = 0;  // Distinct generated plans that violated an oracle.
  bool found = false;  // At least one violation was found and shrunk.
  // First violation, shrunk: the minimal reproducer and its paperwork.
  ChaosPlan minimal;
  std::string signature;
  std::string replay_file;  // SerializeChaosReplay of the minimal plan.
  std::string artifact;     // ChaosFailureArtifact of the minimal plan's run.
  size_t original_events = 0;
  int shrink_runs = 0;
};

// Runs `num_plans` generated plans (seeds derived from campaign_seed); on
// the first oracle violation, shrinks it and fills the reproducer fields.
// Later violations are only counted - one minimal reproducer per campaign.
ChaosFuzzReport ChaosFuzz(const FleetConfig& base, uint64_t campaign_seed, int num_plans,
                          const ChaosGenOptions& options = ChaosGenOptions());

}  // namespace sim
}  // namespace flicker

#endif  // FLICKER_SRC_SIM_CHAOS_FUZZ_H_
