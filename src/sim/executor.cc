#include "src/sim/executor.h"

#include "src/obs/metrics.h"

namespace flicker {
namespace sim {

namespace {

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ActorId SimExecutor::RegisterActor(std::string name, SimClock* clock) {
  actors_.push_back(Actor{std::move(name), clock});
  return static_cast<ActorId>(actors_.size()) - 1;
}

EventId SimExecutor::ScheduleAt(ActorId actor, uint64_t at_ns, std::function<void()> fn) {
  if (at_ns < now_ns_) {
    at_ns = now_ns_;
  }
  return queue_.Schedule(at_ns, actor, std::move(fn));
}

EventId SimExecutor::ScheduleAfter(ActorId actor, uint64_t delta_ns, std::function<void()> fn) {
  return queue_.Schedule(now_ns_ + delta_ns, actor, std::move(fn));
}

EventId SimExecutor::ScheduleAfterLocal(ActorId actor, uint64_t delta_ns,
                                        std::function<void()> fn) {
  SimClock* clock = actors_[static_cast<size_t>(actor)].clock;
  uint64_t base = clock != nullptr ? clock->NowNanos() : now_ns_;
  if (base < now_ns_) {
    base = now_ns_;
  }
  return queue_.Schedule(base + delta_ns, actor, std::move(fn));
}

void SimExecutor::Dispatch(ScheduledEvent event) {
  now_ns_ = event.at_ns;
  order_digest_ = Fnv1a(order_digest_, event.at_ns);
  order_digest_ = Fnv1a(order_digest_, static_cast<uint64_t>(event.actor) + 1);
  order_digest_ = Fnv1a(order_digest_, event.seq);
  ++events_processed_;
  obs::ObserveMs(obs::Hist::kSimEventHeapSize, static_cast<double>(queue_.size()));
  if (event.actor != kNoActor) {
    SimClock* clock = actors_[static_cast<size_t>(event.actor)].clock;
    if (clock != nullptr) {
      clock->AdvanceToNanos(event.at_ns);
    }
  }
  event.fn();
}

bool SimExecutor::Step() {
  if (queue_.empty()) {
    return false;
  }
  Dispatch(queue_.Pop());
  return true;
}

void SimExecutor::Run() {
  while (Step()) {
  }
}

void SimExecutor::RunUntil(uint64_t horizon_ns) {
  uint64_t next_ns = 0;
  while (queue_.PeekTime(&next_ns) && next_ns <= horizon_ns) {
    Dispatch(queue_.Pop());
  }
}

}  // namespace sim
}  // namespace flicker
