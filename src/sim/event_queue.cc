#include "src/sim/event_queue.h"

#include <algorithm>

namespace flicker {
namespace sim {

namespace {

// Same mixer the net fault schedule and backoff jitter use: cheap, full
// avalanche, and a pure function of its input, so the (seed, seq) → tiebreak
// map replays bit-exact.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

EventId EventQueue::Schedule(uint64_t at_ns, int actor, std::function<void()> fn) {
  uint64_t seq = next_seq_++;
  HeapEntry entry{at_ns, SplitMix64(seed_ ^ seq), seq};
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), Later());
  payloads_.emplace(seq, Payload{actor, std::move(fn)});
  ++live_count_;
  max_size_ = std::max(max_size_, live_count_);
  return EventId{seq};
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  auto it = payloads_.find(id.seq);
  if (it == payloads_.end()) {
    return false;
  }
  payloads_.erase(it);
  dead_.insert(id.seq);
  --live_count_;
  ++cancelled_count_;
  return true;
}

void EventQueue::DropDeadTop() {
  while (!heap_.empty() && dead_.count(heap_.front().seq) != 0) {
    dead_.erase(heap_.front().seq);
    std::pop_heap(heap_.begin(), heap_.end(), Later());
    heap_.pop_back();
  }
}

bool EventQueue::PeekTime(uint64_t* at_ns) const {
  // Dead entries may sit on top; scan past them without mutating (const).
  // The heap top is the earliest entry, dead or not, and a dead entry can
  // only hide later events, so the first live scan result is exact.
  const_cast<EventQueue*>(this)->DropDeadTop();
  if (heap_.empty()) {
    return false;
  }
  *at_ns = heap_.front().at_ns;
  return true;
}

ScheduledEvent EventQueue::Pop() {
  DropDeadTop();
  HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later());
  heap_.pop_back();
  auto it = payloads_.find(top.seq);
  ScheduledEvent event;
  event.at_ns = top.at_ns;
  event.tiebreak = top.tiebreak;
  event.seq = top.seq;
  event.actor = it->second.actor;
  event.fn = std::move(it->second.fn);
  payloads_.erase(it);
  --live_count_;
  return event;
}

}  // namespace sim
}  // namespace flicker
