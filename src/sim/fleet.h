// The fleet harness: N Flicker machines and an M-verifier farm under one
// discrete-event executor.
//
// Every machine is a full FlickerPlatform (its own TPM, kernel, quote
// daemon) shrunk to a ~1.5 MB memory image so a thousand of them fit in a
// process. A seeded open-loop client injects attestation rounds (Poisson
// arrivals, uniform target machine); the targeted machine answers through
// either the direct HandleChallenge path or the tqd's Merkle batch window
// (timer-driven under the executor), ships the response across its own
// LossyChannel wire, and a farm verifier runs the full cryptographic
// VerifyAttestation / VerifyBatchQuote chain before acking back across the
// same wire. Round latency is arrival-to-ack at the machine; a round whose
// frames are dropped, partitioned or lost to a power cut times out.
//
// Chaos is first-class: partition windows cut a contiguous rack of machines
// off the farm for a simulated interval, power-cut plans yank the cord on a
// machine mid-run (RAM and open batch windows lost, TPM reset; the machine
// reboots, re-runs its bootstrap session and rejoins), and verifier-fault
// windows gray-slow, crash or hang farm workers. Against the verifier tier
// the client side fights back (FleetFarmPolicy): hedged requests fire a
// second verifier after a p95-derived delay, per-verifier breakers steer
// traffic off workers that keep missing, and farm-side admission control
// sheds with an overload nack the machine answers with a full-jitter
// backoff resend. Invariant tracked throughout: a verifier must never
// accept a frame the wire tampered with (`accepted_wrong` stays zero,
// chaos or not), and a checkpoint store must never serve torn state.
//
// Determinism: same seed => byte-identical BENCH JSON and executor order
// digest; different seeds explore different interleavings via the event
// heap's seeded tiebreak.

#ifndef FLICKER_SRC_SIM_FLEET_H_
#define FLICKER_SRC_SIM_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/attest/verifier_health.h"
#include "src/common/backoff.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/flicker_platform.h"
#include "src/core/sealed_state.h"
#include "src/net/lossy_channel.h"
#include "src/sim/executor.h"
#include "src/slb/slb_layout.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace sim {

// A contiguous rack of machines cut off from the farm: frames either way
// during [start_ms, end_ms) - measured from the injection epoch, i.e. the
// instant the bootstrapped fleet starts taking rounds - are dropped.
struct FleetPartition {
  double start_ms = 0;
  double end_ms = 0;
  int first_machine = 0;
  int last_machine = -1;  // Inclusive.
};

// The cord pulled on one machine at an instant (from the injection epoch).
struct FleetPowerCut {
  double at_ms = 0;
  int machine = 0;
  // 0: clean cord pull. >0: the cut lands on the Nth crash point inside the
  // machine's checkpoint Seal (requires FleetCheckpointConfig::enabled),
  // leaving the two-phase write torn mid-protocol exactly as the PR 3 crash
  // matrix does; the post-reboot Recover() must still serve old-or-new.
  uint64_t crash_at_hit = 0;
};

// A verifier-tier fault window, epoch-relative like partitions. Gray-slow
// inflates the verify cost by slow_factor (the verifier still answers -
// eventually); crash eats frames with no time charged (the worker restarts
// empty); hang seizes the worker until the window ends, so every frame
// queued behind it inherits the stall (head-of-line blocking).
struct FleetVerifierFault {
  enum class Kind { kGraySlow, kCrash, kHang };
  Kind kind = Kind::kGraySlow;
  int verifier = 0;
  double start_ms = 0;
  double end_ms = 0;
  double slow_factor = 10.0;  // kGraySlow only.
};

// Client-side farm policy: hedging, breaker failover and admission control.
// With hedge=false the harness dispatches exactly as before (blind
// round-robin, no shedding) so legacy runs stay event-for-event identical.
struct FleetFarmPolicy {
  bool hedge = false;
  // Hedge delay = clamp(p95 of pooled ack round-trips, min, max); the
  // default applies until hedge_min_samples acks have been pooled.
  double hedge_default_ms = 400.0;
  double hedge_min_ms = 10.0;
  double hedge_max_ms = 4000.0;
  int hedge_min_samples = 8;
  // Per-verifier breaker: consecutive hedge/timeout misses to open, cooldown
  // before the half-open probe.
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 2000.0;
  // A hedge copy arms its own hedge timer, so a round whose duplicate also
  // landed on a slow verifier escalates again - up to this many hedges. 1
  // reproduces classic one-shot hedging; with two gray verifiers in the
  // farm a one-shot hedge can land gray-on-gray and stall the round.
  int max_hedges_per_round = 3;
  // Admission control: when every breaker-admissible verifier already holds
  // this many outstanding requests, the farm frontend sheds with an
  // overload nack instead of queueing unboundedly. 0 = never shed.
  int max_outstanding = 0;
  // Paces overload resends. Full jitter, so a rack of shed machines spreads
  // its return over the whole window instead of re-arriving in lockstep.
  BackoffPolicy overload_backoff{10.0, 2.0, 500.0, 0, true};
};

// Per-machine crash-consistent checkpoint store (DESIGN.md §9) the chaos
// plans exercise: power cuts can land mid-Seal and the recovery oracle
// checks the store still serves exactly the old or the new generation.
struct FleetCheckpointConfig {
  bool enabled = false;
  // Test-only misordered commit (commit before increment) - the seeded bug
  // the chaos fuzzer must rediscover, as in the PR 3 matrix.
  bool misordered_commit = false;
};

// A timed wire-fault window: `mix` replaces the affected machines' wire
// schedule during [start_ms, end_ms), then the base fault_mix is restored.
struct FleetNetMixWindow {
  double start_ms = 0;
  double end_ms = 0;
  int first_machine = 0;
  int last_machine = -1;  // Inclusive.
  NetFaultMix mix;
};

// A timed TPM-transport fault window on one machine (drop/garble/delay on
// the LPC bus, not the network).
struct FleetTpmFaultWindow {
  double start_ms = 0;
  double end_ms = 0;
  int machine = 0;
  FaultPlan plan;
};

struct FleetConfig {
  uint64_t seed = 1;
  int num_machines = 16;
  int num_verifiers = 2;
  int rounds = 128;
  // Open-loop Poisson client: mean gap between round injections.
  double mean_interarrival_ms = 2.0;
  // Share of machines (basis points) answering via the tqd batch window
  // instead of one quote per challenge.
  uint32_t batched_machines_bp = 5000;
  // Share of rounds (basis points) that run a fresh full Flicker session
  // before quoting, refreshing the machine's PCR 17 expectation.
  uint32_t full_session_bp = 0;
  // One TPM quote alone costs ~973 ms (Table 2), and concurrent rounds to
  // the same machine queue behind it, so timeouts live on the multi-second
  // scale.
  double round_timeout_ms = 5000.0;
  // Modeled verifier CPU cost per response checked.
  double verify_cost_ms = 0.5;
  // 512-bit keys keep a thousand TPMs affordable; the key material is
  // memoized across machines (one manufacture seed), certs are per-machine.
  size_t tpm_key_bits = 512;
  size_t max_batch_size = 8;
  double max_batch_wait_ms = 10.0;
  LatencyProfile latency;
  // Per-wire fault plan (seeded per machine off fault_seed); all-zero mix =
  // clean wires.
  NetFaultMix fault_mix;
  uint64_t fault_seed = 0;
  std::vector<FleetPartition> partitions;
  std::vector<FleetPowerCut> power_cuts;
  std::vector<FleetVerifierFault> verifier_faults;
  std::vector<FleetNetMixWindow> net_windows;
  std::vector<FleetTpmFaultWindow> tpm_windows;
  FleetFarmPolicy farm;
  FleetCheckpointConfig checkpoints;
};

struct FleetStats {
  // Round outcomes. completed + timed_out + failed == rounds injected.
  uint64_t rounds_injected = 0;
  uint64_t rounds_completed = 0;
  uint64_t rounds_timed_out = 0;
  uint64_t rounds_failed = 0;  // Died at the machine (dead machine, quote error).
  // Verifier-side verdicts (a rejected round still times out at the client).
  uint64_t rounds_rejected = 0;         // Clean frame failed verification.
  uint64_t tampered_rejected = 0;       // Corrupted frame correctly refused.
  uint64_t accepted_wrong = 0;          // INVARIANT: must stay zero.
  uint64_t responses_verified = 0;
  // Chaos accounting.
  uint64_t partition_drops = 0;
  uint64_t power_cuts = 0;
  uint64_t machines_dead = 0;
  // Farm-policy accounting (hedged mode; all zero on legacy runs).
  uint64_t hedges_fired = 0;
  uint64_t hedge_wins = 0;  // Rounds resolved by the hedge copy's ack.
  uint64_t overload_sheds = 0;
  uint64_t overload_resends = 0;
  uint64_t breaker_trips = 0;
  uint64_t verifier_fault_frames = 0;  // Frames that met an active verifier fault.
  std::vector<double> mttr_ms;         // Breaker open -> re-closed, per recovery.
  // Checkpoint / oracle accounting (chaos fuzzer invariants).
  uint64_t checkpoints_sealed = 0;
  uint64_t checkpoint_recoveries = 0;
  uint64_t torn_states = 0;  // INVARIANT: must stay zero.
  // Machines with arrivals after the last fault window that completed none
  // of them (the "no permanently starved machine" oracle).
  uint64_t starved_machines = 0;
  std::vector<uint64_t> machine_completed;  // Per machine, all rounds.
  // Batch shape: flushed window size -> count.
  std::map<size_t, uint64_t> batch_sizes;
  uint64_t batch_quotes = 0;
  // Time and engine.
  std::vector<double> round_latencies_ms;  // Completed rounds, completion order.
  double sim_duration_ms = 0;
  double verifier_busy_ms = 0;
  int num_verifiers = 0;
  uint64_t events_processed = 0;
  uint64_t events_cancelled = 0;
  size_t max_heap = 0;
  uint64_t order_digest = 0;

  double SessionsPerSec() const;
  // p in [0,1]; nearest-rank over completed-round latencies, 0 when none.
  double LatencyPercentileMs(double p) const;
  double VerifierUtilization() const;
  // The BENCH_fleet.json payload: stable key order, fixed precision, so two
  // same-seed runs compare byte-identical with cmp(1).
  std::string ToJson(const FleetConfig& config) const;
};

// Jain's fairness index over per-actor allocations (throughput, quotes, ...):
// (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair, 1/n = one actor gets
// everything; 1.0 by convention for empty/all-zero inputs. The vTPM
// noisy-neighbor campaign reports it over healthy tenants' completed quotes.
double JainFairnessIndex(const std::vector<double>& allocations);

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);
  ~Fleet();

  // Builds machines, certs and wires, runs every machine's bootstrap
  // session, and schedules the arrival/chaos plan onto the heap.
  Status Build();
  // Drains the heap; every injected round resolves (complete or timeout).
  Status Run();

  const FleetStats& stats() const { return stats_; }
  SimExecutor* executor() { return &executor_; }
  // The injection epoch: the latest machine-local bootstrap completion, the
  // zero point for arrivals, partitions and power cuts.
  uint64_t epoch_ns() const { return epoch_ns_; }
  // The machine's current PCR 17 expectation inputs (bootstrap or latest
  // refresh); exposed for tests.
  const Bytes& machine_session_nonce(int machine) const;

 private:
  struct PendingWire {
    size_t round = 0;
    bool to_farm = false;
    Bytes sent;  // Ground truth for tamper detection at the verifier.
    uint64_t sent_ns = 0;
    // Farm-policy bookkeeping (hedged mode).
    int verifier = -1;       // Farm wires: dispatch target. Acks: the sender.
    int exclude = -1;        // Hedges must not re-pick the verifier they hedge.
    uint64_t request_seq = 0;  // Acks: the farm wire this answers.
    bool hedge = false;
    bool overload_nack = false;
    bool concluded = false;  // Answered, hedged against, shed, or timed out.
  };

  struct FleetMachine {
    int id = 0;
    std::unique_ptr<FlickerPlatform> platform;
    // Backs the channel's clock slot; sends go through SendAt with explicit
    // sender instants, so this never advances and no sender's timeline can
    // leak into another's arrival times through the shared wire.
    SimClock wire_clock;
    std::unique_ptr<LossyChannel> channel;
    AikCertificate cert;
    ActorId actor = kNoActor;
    bool batched = false;
    bool dead = false;
    uint64_t reboots = 0;
    // Expectation snapshot inputs for the machine's current PCR 17 chain.
    Bytes session_nonce;
    Bytes session_outputs;
    std::map<uint64_t, PendingWire> pending;  // Channel seq -> wire record.
    // Crash-consistent checkpoint store (FleetCheckpointConfig::enabled).
    std::unique_ptr<CrashConsistentSealedStore> store;
    Bytes owner_auth;
    Bytes blob_auth;
    Bytes release_pcr;
    uint64_t checkpoint_gen = 0;  // Last generation known committed.
  };

  struct FarmVerifier {
    SimClock clock;
    ActorId actor = kNoActor;
    double busy_ms = 0;
    uint64_t verified = 0;
  };

  struct RoundState {
    int machine = 0;
    Bytes nonce;
    uint64_t arrival_ns = 0;
    EventId timeout;
    bool resolved = false;
    bool full_session = false;
    bool is_batch = false;
    int hedge_count = 0;         // Hedges fired so far (capped by the policy).
    int overload_resends = 0;
    Bytes response_wire;         // Last farm-bound frame, for hedge/resend.
    // Expectation snapshot captured when the quote was produced, so a
    // machine refreshing its session mid-flight cannot invalidate earlier
    // genuine quotes.
    Bytes snapshot_nonce;
    Bytes snapshot_outputs;
  };

  Bytes DeriveNonce(const std::string& label, uint64_t a, uint64_t b) const;
  Status ValidateConfig() const;
  Status BootstrapMachine(FleetMachine* machine);
  Status SetupCheckpointStore(FleetMachine* machine);
  bool Partitioned(int machine, uint64_t at_ns) const;
  SessionExpectation SnapshotExpectation(const RoundState& round) const;
  double MsSinceEpoch(uint64_t at_ns) const;
  const FleetVerifierFault* ActiveVerifierFault(int verifier, uint64_t at_ns) const;

  // Event handlers.
  void OnArrival(size_t round_index);
  void OnWireEnqueued(int machine_id, NetEndpoint dest, uint64_t seq, uint64_t arrival_ns);
  void OnFarmDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns, int verifier_index);
  void OnResponseDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns);
  void OnTimeout(size_t round_index);
  void OnPowerCut(const FleetPowerCut& cut);
  void OnHedgeTimer(int machine_id, uint64_t seq, size_t round_index, double hedge_delay_ms);
  void OnOverloadResend(size_t round_index);

  // Stamps the wire at the sender's instant and ships one frame. Returns the
  // channel sequence number of the frame for post-hoc annotation.
  uint64_t SendWire(FleetMachine* machine, size_t round_index, bool to_farm, Bytes wire,
                    uint64_t sender_now_ns, int exclude = -1, bool hedge = false,
                    bool overload_nack = false);
  void SendBatchSlices(int machine_id, std::vector<BatchQuoteResponse> slices);
  void FailRound(size_t round_index);

  FleetConfig config_;
  SimExecutor executor_;
  PrivacyCa ca_;
  std::unique_ptr<PalBinary> binary_;
  std::vector<std::unique_ptr<FleetMachine>> machines_;
  std::vector<FarmVerifier> verifiers_;
  std::vector<RoundState> rounds_;
  std::map<Bytes, size_t> nonce_to_round_;
  uint64_t next_verifier_ = 0;  // Round-robin farm dispatch (legacy mode).
  std::unique_ptr<VerifierHealthTracker> health_;  // Hedged mode only.
  uint64_t epoch_ns_ = 0;
  // End of the last configured fault window; arrivals after this instant
  // feed the starvation oracle.
  uint64_t quiesce_ns_ = 0;
  std::vector<uint64_t> machine_arrivals_after_quiesce_;
  std::vector<uint64_t> machine_completed_after_quiesce_;
  FleetStats stats_;
  bool built_ = false;
};

}  // namespace sim
}  // namespace flicker

#endif  // FLICKER_SRC_SIM_FLEET_H_
