// The fleet harness: N Flicker machines and an M-verifier farm under one
// discrete-event executor.
//
// Every machine is a full FlickerPlatform (its own TPM, kernel, quote
// daemon) shrunk to a ~1.5 MB memory image so a thousand of them fit in a
// process. A seeded open-loop client injects attestation rounds (Poisson
// arrivals, uniform target machine); the targeted machine answers through
// either the direct HandleChallenge path or the tqd's Merkle batch window
// (timer-driven under the executor), ships the response across its own
// LossyChannel wire, and a farm verifier runs the full cryptographic
// VerifyAttestation / VerifyBatchQuote chain before acking back across the
// same wire. Round latency is arrival-to-ack at the machine; a round whose
// frames are dropped, partitioned or lost to a power cut times out.
//
// Chaos is first-class: partition windows cut a contiguous rack of machines
// off the farm for a simulated interval, and power-cut plans yank the cord
// on a machine mid-run (RAM and open batch windows lost, TPM reset; the
// machine reboots, re-runs its bootstrap session and rejoins). Invariant
// tracked throughout: a verifier must never accept a frame the wire
// tampered with (`accepted_wrong` stays zero, chaos or not).
//
// Determinism: same seed => byte-identical BENCH JSON and executor order
// digest; different seeds explore different interleavings via the event
// heap's seeded tiebreak.

#ifndef FLICKER_SRC_SIM_FLEET_H_
#define FLICKER_SRC_SIM_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/flicker_platform.h"
#include "src/net/lossy_channel.h"
#include "src/sim/executor.h"
#include "src/slb/slb_layout.h"

namespace flicker {
namespace sim {

// A contiguous rack of machines cut off from the farm: frames either way
// during [start_ms, end_ms) - measured from the injection epoch, i.e. the
// instant the bootstrapped fleet starts taking rounds - are dropped.
struct FleetPartition {
  double start_ms = 0;
  double end_ms = 0;
  int first_machine = 0;
  int last_machine = -1;  // Inclusive.
};

// The cord pulled on one machine at an instant (from the injection epoch).
struct FleetPowerCut {
  double at_ms = 0;
  int machine = 0;
};

struct FleetConfig {
  uint64_t seed = 1;
  int num_machines = 16;
  int num_verifiers = 2;
  int rounds = 128;
  // Open-loop Poisson client: mean gap between round injections.
  double mean_interarrival_ms = 2.0;
  // Share of machines (basis points) answering via the tqd batch window
  // instead of one quote per challenge.
  uint32_t batched_machines_bp = 5000;
  // Share of rounds (basis points) that run a fresh full Flicker session
  // before quoting, refreshing the machine's PCR 17 expectation.
  uint32_t full_session_bp = 0;
  // One TPM quote alone costs ~973 ms (Table 2), and concurrent rounds to
  // the same machine queue behind it, so timeouts live on the multi-second
  // scale.
  double round_timeout_ms = 5000.0;
  // Modeled verifier CPU cost per response checked.
  double verify_cost_ms = 0.5;
  // 512-bit keys keep a thousand TPMs affordable; the key material is
  // memoized across machines (one manufacture seed), certs are per-machine.
  size_t tpm_key_bits = 512;
  size_t max_batch_size = 8;
  double max_batch_wait_ms = 10.0;
  LatencyProfile latency;
  // Per-wire fault plan (seeded per machine off fault_seed); all-zero mix =
  // clean wires.
  NetFaultMix fault_mix;
  uint64_t fault_seed = 0;
  std::vector<FleetPartition> partitions;
  std::vector<FleetPowerCut> power_cuts;
};

struct FleetStats {
  // Round outcomes. completed + timed_out + failed == rounds injected.
  uint64_t rounds_injected = 0;
  uint64_t rounds_completed = 0;
  uint64_t rounds_timed_out = 0;
  uint64_t rounds_failed = 0;  // Died at the machine (dead machine, quote error).
  // Verifier-side verdicts (a rejected round still times out at the client).
  uint64_t rounds_rejected = 0;         // Clean frame failed verification.
  uint64_t tampered_rejected = 0;       // Corrupted frame correctly refused.
  uint64_t accepted_wrong = 0;          // INVARIANT: must stay zero.
  uint64_t responses_verified = 0;
  // Chaos accounting.
  uint64_t partition_drops = 0;
  uint64_t power_cuts = 0;
  uint64_t machines_dead = 0;
  // Batch shape: flushed window size -> count.
  std::map<size_t, uint64_t> batch_sizes;
  uint64_t batch_quotes = 0;
  // Time and engine.
  std::vector<double> round_latencies_ms;  // Completed rounds, completion order.
  double sim_duration_ms = 0;
  double verifier_busy_ms = 0;
  int num_verifiers = 0;
  uint64_t events_processed = 0;
  uint64_t events_cancelled = 0;
  size_t max_heap = 0;
  uint64_t order_digest = 0;

  double SessionsPerSec() const;
  // p in [0,1]; nearest-rank over completed-round latencies, 0 when none.
  double LatencyPercentileMs(double p) const;
  double VerifierUtilization() const;
  // The BENCH_fleet.json payload: stable key order, fixed precision, so two
  // same-seed runs compare byte-identical with cmp(1).
  std::string ToJson(const FleetConfig& config) const;
};

// Jain's fairness index over per-actor allocations (throughput, quotes, ...):
// (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair, 1/n = one actor gets
// everything; 1.0 by convention for empty/all-zero inputs. The vTPM
// noisy-neighbor campaign reports it over healthy tenants' completed quotes.
double JainFairnessIndex(const std::vector<double>& allocations);

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);
  ~Fleet();

  // Builds machines, certs and wires, runs every machine's bootstrap
  // session, and schedules the arrival/chaos plan onto the heap.
  Status Build();
  // Drains the heap; every injected round resolves (complete or timeout).
  Status Run();

  const FleetStats& stats() const { return stats_; }
  SimExecutor* executor() { return &executor_; }
  // The injection epoch: the latest machine-local bootstrap completion, the
  // zero point for arrivals, partitions and power cuts.
  uint64_t epoch_ns() const { return epoch_ns_; }
  // The machine's current PCR 17 expectation inputs (bootstrap or latest
  // refresh); exposed for tests.
  const Bytes& machine_session_nonce(int machine) const;

 private:
  struct PendingWire {
    size_t round = 0;
    bool to_farm = false;
    Bytes sent;  // Ground truth for tamper detection at the verifier.
  };

  struct FleetMachine {
    int id = 0;
    std::unique_ptr<FlickerPlatform> platform;
    SimClock wire_clock;  // The wire's own timeline; stamped per send.
    std::unique_ptr<LossyChannel> channel;
    AikCertificate cert;
    ActorId actor = kNoActor;
    bool batched = false;
    bool dead = false;
    uint64_t reboots = 0;
    // Expectation snapshot inputs for the machine's current PCR 17 chain.
    Bytes session_nonce;
    Bytes session_outputs;
    std::map<uint64_t, PendingWire> pending;  // Channel seq -> wire record.
  };

  struct FarmVerifier {
    SimClock clock;
    ActorId actor = kNoActor;
    double busy_ms = 0;
    uint64_t verified = 0;
  };

  struct RoundState {
    int machine = 0;
    Bytes nonce;
    uint64_t arrival_ns = 0;
    EventId timeout;
    bool resolved = false;
    bool full_session = false;
    bool is_batch = false;
    // Expectation snapshot captured when the quote was produced, so a
    // machine refreshing its session mid-flight cannot invalidate earlier
    // genuine quotes.
    Bytes snapshot_nonce;
    Bytes snapshot_outputs;
  };

  Bytes DeriveNonce(const std::string& label, uint64_t a, uint64_t b) const;
  Status BootstrapMachine(FleetMachine* machine);
  bool Partitioned(int machine, uint64_t at_ns) const;
  SessionExpectation SnapshotExpectation(const RoundState& round) const;

  // Event handlers.
  void OnArrival(size_t round_index);
  void OnWireEnqueued(int machine_id, NetEndpoint dest, uint64_t seq, uint64_t arrival_ns);
  void OnFarmDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns, int verifier_index);
  void OnResponseDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns);
  void OnTimeout(size_t round_index);
  void OnPowerCut(int machine_id);

  // Stamps the wire at the sender's instant and ships one frame.
  void SendWire(FleetMachine* machine, size_t round_index, bool to_farm, Bytes wire,
                uint64_t sender_now_ns);
  void SendBatchSlices(int machine_id, std::vector<BatchQuoteResponse> slices);
  void FailRound(size_t round_index);

  FleetConfig config_;
  SimExecutor executor_;
  PrivacyCa ca_;
  std::unique_ptr<PalBinary> binary_;
  std::vector<std::unique_ptr<FleetMachine>> machines_;
  std::vector<FarmVerifier> verifiers_;
  std::vector<RoundState> rounds_;
  std::map<Bytes, size_t> nonce_to_round_;
  uint64_t next_verifier_ = 0;  // Round-robin farm dispatch.
  uint64_t epoch_ns_ = 0;
  FleetStats stats_;
  bool built_ = false;
};

}  // namespace sim
}  // namespace flicker

#endif  // FLICKER_SRC_SIM_FLEET_H_
