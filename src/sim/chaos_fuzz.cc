#include "src/sim/chaos_fuzz.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "src/common/fault.h"
#include "src/crypto/drbg.h"
#include "src/obs/metrics.h"

namespace flicker {
namespace sim {

namespace {

std::string F3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return std::string(buf);
}

const char* TpmFaultKindName(FaultPlan::Kind kind) {
  switch (kind) {
    case FaultPlan::Kind::kNone:
      return "none";
    case FaultPlan::Kind::kDrop:
      return "drop";
    case FaultPlan::Kind::kGarble:
      return "garble";
    case FaultPlan::Kind::kDelay:
      return "delay";
  }
  return "none";
}

const char* VerifierFaultKindName(FleetVerifierFault::Kind kind) {
  switch (kind) {
    case FleetVerifierFault::Kind::kGraySlow:
      return "gray";
    case FleetVerifierFault::Kind::kCrash:
      return "crash";
    case FleetVerifierFault::Kind::kHang:
      return "hang";
  }
  return "gray";
}

// One event as one replay-file line. Shared by the serializer and the
// failure artifact so both always agree on the format the parser reads.
std::string EventLine(const ChaosEvent& event) {
  std::ostringstream os;
  os << "event ";
  switch (event.kind) {
    case ChaosEvent::Kind::kPowerCut:
      os << "power_cut at=" << F3(event.power_cut.at_ms)
         << " machine=" << event.power_cut.machine << " hit=" << event.power_cut.crash_at_hit;
      break;
    case ChaosEvent::Kind::kPartition:
      os << "partition start=" << F3(event.partition.start_ms)
         << " end=" << F3(event.partition.end_ms) << " first=" << event.partition.first_machine
         << " last=" << event.partition.last_machine;
      break;
    case ChaosEvent::Kind::kNetWindow:
      os << "net_window start=" << F3(event.net_window.start_ms)
         << " end=" << F3(event.net_window.end_ms) << " first=" << event.net_window.first_machine
         << " last=" << event.net_window.last_machine
         << " drop=" << event.net_window.mix.drop_bp << " dup=" << event.net_window.mix.duplicate_bp
         << " reorder=" << event.net_window.mix.reorder_bp
         << " corrupt=" << event.net_window.mix.corrupt_bp
         << " delay=" << event.net_window.mix.delay_bp
         << " delay_ms=" << F3(event.net_window.mix.delay_ms)
         << " reorder_ms=" << F3(event.net_window.mix.reorder_ms);
      break;
    case ChaosEvent::Kind::kTpmWindow:
      os << "tpm_window start=" << F3(event.tpm_window.start_ms)
         << " end=" << F3(event.tpm_window.end_ms) << " machine=" << event.tpm_window.machine
         << " kind=" << TpmFaultKindName(event.tpm_window.plan.kind)
         << " every_n=" << event.tpm_window.plan.every_n
         << " delay_ms=" << F3(event.tpm_window.plan.delay_ms)
         << " drop_timeout_ms=" << F3(event.tpm_window.plan.drop_timeout_ms);
      break;
    case ChaosEvent::Kind::kVerifierFault:
      os << "verifier_fault kind=" << VerifierFaultKindName(event.verifier_fault.kind)
         << " verifier=" << event.verifier_fault.verifier
         << " start=" << F3(event.verifier_fault.start_ms)
         << " end=" << F3(event.verifier_fault.end_ms)
         << " slow=" << F3(event.verifier_fault.slow_factor);
      break;
  }
  return os.str();
}

// key=value tokens of one directive line (tokens after the directive word).
std::map<std::string, std::string> ParseKv(std::istringstream* line) {
  std::map<std::string, std::string> kv;
  std::string token;
  while (*line >> token) {
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return kv;
}

double KvDouble(const std::map<std::string, std::string>& kv, const char* key, double fallback) {
  auto it = kv.find(key);
  return it == kv.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

uint64_t KvU64(const std::map<std::string, std::string>& kv, const char* key, uint64_t fallback) {
  auto it = kv.find(key);
  return it == kv.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
}

int KvInt(const std::map<std::string, std::string>& kv, const char* key, int fallback) {
  return static_cast<int>(KvU64(kv, key, static_cast<uint64_t>(fallback)));
}

// Integer-millisecond draw in [0, bound); generated times round-trip
// exactly through the %.3f text format.
double DrawMs(Drbg* rng, double bound) {
  if (bound < 1.0) {
    return 0;
  }
  return static_cast<double>(rng->UniformUint64(static_cast<uint64_t>(bound)));
}

}  // namespace

ChaosPlan GenerateChaosPlan(uint64_t seed, const FleetConfig& base,
                            const ChaosGenOptions& options) {
  Drbg rng(seed ^ 0xC4A05F22ULL);
  ChaosPlan plan;
  plan.seed = seed;
  const int n = base.num_machines;
  const uint64_t count = 1 + rng.UniformUint64(static_cast<uint64_t>(options.max_events));
  for (uint64_t i = 0; i < count; ++i) {
    ChaosEvent event;
    const uint64_t roll = rng.UniformUint64(100);
    const double start = DrawMs(&rng, options.horizon_ms - 1.0);
    const double max_dur = std::min(options.max_window_ms, options.horizon_ms - start);
    const double dur = 1.0 + DrawMs(&rng, std::max(1.0, max_dur - 1.0));
    if (roll < 25) {
      event.kind = ChaosEvent::Kind::kPowerCut;
      event.power_cut.at_ms = DrawMs(&rng, options.horizon_ms);
      event.power_cut.machine = static_cast<int>(rng.UniformUint64(static_cast<uint64_t>(n)));
      if (base.checkpoints.enabled && rng.UniformUint64(2) == 1) {
        event.power_cut.crash_at_hit = 1 + rng.UniformUint64(options.max_crash_hit);
      }
    } else if (roll < 45) {
      event.kind = ChaosEvent::Kind::kPartition;
      event.partition.start_ms = start;
      event.partition.end_ms = start + dur;
      event.partition.first_machine = static_cast<int>(rng.UniformUint64(static_cast<uint64_t>(n)));
      const uint64_t len =
          1 + rng.UniformUint64(static_cast<uint64_t>(n - event.partition.first_machine));
      event.partition.last_machine = event.partition.first_machine + static_cast<int>(len) - 1;
    } else if (roll < 65) {
      event.kind = ChaosEvent::Kind::kNetWindow;
      event.net_window.start_ms = start;
      event.net_window.end_ms = start + dur;
      event.net_window.first_machine =
          static_cast<int>(rng.UniformUint64(static_cast<uint64_t>(n)));
      const uint64_t len =
          1 + rng.UniformUint64(static_cast<uint64_t>(n - event.net_window.first_machine));
      event.net_window.last_machine = event.net_window.first_machine + static_cast<int>(len) - 1;
      event.net_window.mix.drop_bp = static_cast<uint32_t>(rng.UniformUint64(21)) * 100;
      event.net_window.mix.duplicate_bp = static_cast<uint32_t>(rng.UniformUint64(11)) * 100;
      event.net_window.mix.reorder_bp = static_cast<uint32_t>(rng.UniformUint64(11)) * 100;
      event.net_window.mix.corrupt_bp = static_cast<uint32_t>(rng.UniformUint64(21)) * 100;
      event.net_window.mix.delay_bp = static_cast<uint32_t>(rng.UniformUint64(11)) * 100;
    } else if (roll < 80) {
      event.kind = ChaosEvent::Kind::kTpmWindow;
      event.tpm_window.start_ms = start;
      event.tpm_window.end_ms = start + dur;
      event.tpm_window.machine = static_cast<int>(rng.UniformUint64(static_cast<uint64_t>(n)));
      const uint64_t kind_roll = rng.UniformUint64(3);
      event.tpm_window.plan.kind = kind_roll == 0   ? FaultPlan::Kind::kDrop
                                   : kind_roll == 1 ? FaultPlan::Kind::kGarble
                                                    : FaultPlan::Kind::kDelay;
      event.tpm_window.plan.every_n = 1 + rng.UniformUint64(4);
      event.tpm_window.plan.delay_ms = 1.0 + DrawMs(&rng, 10.0);
      event.tpm_window.plan.drop_timeout_ms = 5.0;
    } else {
      event.kind = ChaosEvent::Kind::kVerifierFault;
      const uint64_t kind_roll = rng.UniformUint64(4);
      event.verifier_fault.kind = kind_roll < 2 ? FleetVerifierFault::Kind::kGraySlow
                                 : kind_roll == 2 ? FleetVerifierFault::Kind::kCrash
                                                  : FleetVerifierFault::Kind::kHang;
      event.verifier_fault.verifier =
          static_cast<int>(rng.UniformUint64(static_cast<uint64_t>(base.num_verifiers)));
      event.verifier_fault.start_ms = start;
      event.verifier_fault.end_ms = start + dur;
      event.verifier_fault.slow_factor = static_cast<double>(2 + rng.UniformUint64(15));
    }
    plan.events.push_back(event);
  }
  return plan;
}

FleetConfig ApplyChaosPlan(const FleetConfig& base, const ChaosPlan& plan) {
  FleetConfig config = base;
  config.seed = plan.seed;
  for (const ChaosEvent& event : plan.events) {
    switch (event.kind) {
      case ChaosEvent::Kind::kPowerCut:
        config.power_cuts.push_back(event.power_cut);
        break;
      case ChaosEvent::Kind::kPartition:
        config.partitions.push_back(event.partition);
        break;
      case ChaosEvent::Kind::kNetWindow:
        config.net_windows.push_back(event.net_window);
        break;
      case ChaosEvent::Kind::kTpmWindow:
        config.tpm_windows.push_back(event.tpm_window);
        break;
      case ChaosEvent::Kind::kVerifierFault:
        config.verifier_faults.push_back(event.verifier_fault);
        break;
    }
  }
  return config;
}

std::string EvaluateChaosOracles(const FleetStats& stats) {
  if (stats.accepted_wrong != 0) {
    return "accepted_wrong";
  }
  if (stats.torn_states != 0) {
    return "torn_state";
  }
  if (stats.rounds_completed + stats.rounds_timed_out + stats.rounds_failed !=
      stats.rounds_injected) {
    return "accounting";
  }
  if (stats.machines_dead != 0) {
    return "machine_dead";
  }
  if (stats.starved_machines != 0) {
    return "starved";
  }
  return "";
}

ChaosOutcome RunChaosPlan(const FleetConfig& base, const ChaosPlan& plan) {
  ChaosOutcome outcome;
  Fleet fleet(ApplyChaosPlan(base, plan));
  Status run = fleet.Run();
  obs::Count(obs::Ctr::kChaosPlansRun);
  if (!run.ok()) {
    outcome.error = run.ToString();
    return outcome;
  }
  outcome.ran = true;
  outcome.stats = fleet.stats();
  outcome.signature = EvaluateChaosOracles(outcome.stats);
  if (!outcome.signature.empty()) {
    obs::Count(obs::Ctr::kChaosViolationsFound);
  }
  return outcome;
}

ChaosPlan ShrinkChaosPlan(const FleetConfig& base, const ChaosPlan& plan,
                          const std::string& signature, int* runs_used) {
  int runs = 0;
  auto reproduces = [&](const ChaosPlan& candidate) {
    ++runs;
    ChaosOutcome outcome = RunChaosPlan(base, candidate);
    return outcome.ran && outcome.signature == signature;
  };

  ChaosPlan current = plan;

  // Phase 1: ddmin over the event list. Try dropping each chunk at the
  // current granularity; adopt any candidate that still reproduces, then
  // restart at coarse granularity (the list just got shorter). When no
  // chunk at this granularity can go, halve the chunks.
  size_t granularity = 2;
  while (current.events.size() >= 2) {
    const size_t chunk =
        std::max<size_t>(1, (current.events.size() + granularity - 1) / granularity);
    bool reduced = false;
    for (size_t start = 0; start < current.events.size(); start += chunk) {
      ChaosPlan candidate = current;
      const size_t end = std::min(current.events.size(), start + chunk);
      candidate.events.erase(candidate.events.begin() + static_cast<long>(start),
                             candidate.events.begin() + static_cast<long>(end));
      if (reproduces(candidate)) {
        current = candidate;
        reduced = true;
        break;
      }
    }
    if (reduced) {
      granularity = 2;
      continue;
    }
    if (chunk == 1) {
      break;  // Every single event is load-bearing.
    }
    granularity *= 2;
  }

  // Phase 2: attenuate the survivors - halve window durations and
  // crash-point indices while the signature still reproduces, so the
  // reproducer is minimal in magnitude as well as in event count.
  bool attenuated = true;
  while (attenuated) {
    attenuated = false;
    for (size_t i = 0; i < current.events.size(); ++i) {
      ChaosPlan candidate = current;
      ChaosEvent& event = candidate.events[i];
      bool changed = false;
      switch (event.kind) {
        case ChaosEvent::Kind::kPowerCut:
          if (event.power_cut.crash_at_hit > 1) {
            event.power_cut.crash_at_hit /= 2;
            changed = true;
          }
          break;
        case ChaosEvent::Kind::kPartition:
          if (event.partition.end_ms - event.partition.start_ms >= 2.0) {
            event.partition.end_ms =
                event.partition.start_ms + (event.partition.end_ms - event.partition.start_ms) / 2;
            changed = true;
          }
          break;
        case ChaosEvent::Kind::kNetWindow:
          if (event.net_window.end_ms - event.net_window.start_ms >= 2.0) {
            event.net_window.end_ms = event.net_window.start_ms +
                                      (event.net_window.end_ms - event.net_window.start_ms) / 2;
            changed = true;
          }
          break;
        case ChaosEvent::Kind::kTpmWindow:
          if (event.tpm_window.end_ms - event.tpm_window.start_ms >= 2.0) {
            event.tpm_window.end_ms = event.tpm_window.start_ms +
                                      (event.tpm_window.end_ms - event.tpm_window.start_ms) / 2;
            changed = true;
          }
          break;
        case ChaosEvent::Kind::kVerifierFault:
          if (event.verifier_fault.end_ms - event.verifier_fault.start_ms >= 2.0) {
            event.verifier_fault.end_ms =
                event.verifier_fault.start_ms +
                (event.verifier_fault.end_ms - event.verifier_fault.start_ms) / 2;
            changed = true;
          }
          break;
      }
      if (changed && reproduces(candidate)) {
        current = candidate;
        attenuated = true;
      }
    }
  }

  if (runs_used != nullptr) {
    *runs_used = runs;
  }
  return current;
}

std::string SerializeChaosReplay(const FleetConfig& base, const ChaosPlan& plan,
                                 const std::string& signature) {
  std::ostringstream os;
  os << "# flicker chaos replay v1\n";
  os << "# signature: " << signature << "\n";
  os << "seed " << plan.seed << "\n";
  os << "machines " << base.num_machines << "\n";
  os << "verifiers " << base.num_verifiers << "\n";
  os << "rounds " << base.rounds << "\n";
  os << "mean_interarrival_ms " << F3(base.mean_interarrival_ms) << "\n";
  os << "round_timeout_ms " << F3(base.round_timeout_ms) << "\n";
  os << "verify_cost_ms " << F3(base.verify_cost_ms) << "\n";
  os << "tpm_key_bits " << base.tpm_key_bits << "\n";
  os << "batched_machines_bp " << base.batched_machines_bp << "\n";
  os << "full_session_bp " << base.full_session_bp << "\n";
  os << "max_batch_size " << base.max_batch_size << "\n";
  os << "max_batch_wait_ms " << F3(base.max_batch_wait_ms) << "\n";
  os << "fault_seed " << base.fault_seed << "\n";
  os << "fault_mix drop=" << base.fault_mix.drop_bp << " dup=" << base.fault_mix.duplicate_bp
     << " reorder=" << base.fault_mix.reorder_bp << " corrupt=" << base.fault_mix.corrupt_bp
     << " delay=" << base.fault_mix.delay_bp << " delay_ms=" << F3(base.fault_mix.delay_ms)
     << " reorder_ms=" << F3(base.fault_mix.reorder_ms) << "\n";
  os << "checkpoints " << (base.checkpoints.enabled ? 1 : 0) << "\n";
  os << "misordered_commit " << (base.checkpoints.misordered_commit ? 1 : 0) << "\n";
  os << "hedge " << (base.farm.hedge ? 1 : 0) << "\n";
  if (base.farm.hedge) {
    os << "farm hedge_default_ms=" << F3(base.farm.hedge_default_ms)
       << " hedge_min_ms=" << F3(base.farm.hedge_min_ms)
       << " hedge_max_ms=" << F3(base.farm.hedge_max_ms)
       << " hedge_min_samples=" << base.farm.hedge_min_samples
       << " breaker_threshold=" << base.farm.breaker_threshold
       << " breaker_cooldown_ms=" << F3(base.farm.breaker_cooldown_ms)
       << " max_outstanding=" << base.farm.max_outstanding << "\n";
  }
  for (const ChaosEvent& event : plan.events) {
    os << EventLine(event) << "\n";
  }
  return os.str();
}

Result<ChaosReplay> ParseChaosReplay(const std::string& text) {
  ChaosReplay replay;
  // Zeroed so the missing-directive check below cannot be satisfied by
  // FleetConfig's defaults: a replay must state its own fleet shape.
  replay.base.num_machines = 0;
  replay.base.num_verifiers = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      const std::string kSigPrefix = "# signature: ";
      if (line.compare(0, kSigPrefix.size(), kSigPrefix) == 0) {
        replay.signature = line.substr(kSigPrefix.size());
      }
      continue;
    }
    std::istringstream tokens(line);
    std::string directive;
    tokens >> directive;
    if (directive == "seed") {
      tokens >> replay.plan.seed;
      replay.base.seed = replay.plan.seed;
    } else if (directive == "machines") {
      tokens >> replay.base.num_machines;
    } else if (directive == "verifiers") {
      tokens >> replay.base.num_verifiers;
    } else if (directive == "rounds") {
      tokens >> replay.base.rounds;
    } else if (directive == "mean_interarrival_ms") {
      tokens >> replay.base.mean_interarrival_ms;
    } else if (directive == "round_timeout_ms") {
      tokens >> replay.base.round_timeout_ms;
    } else if (directive == "verify_cost_ms") {
      tokens >> replay.base.verify_cost_ms;
    } else if (directive == "tpm_key_bits") {
      tokens >> replay.base.tpm_key_bits;
    } else if (directive == "batched_machines_bp") {
      tokens >> replay.base.batched_machines_bp;
    } else if (directive == "full_session_bp") {
      tokens >> replay.base.full_session_bp;
    } else if (directive == "max_batch_size") {
      tokens >> replay.base.max_batch_size;
    } else if (directive == "max_batch_wait_ms") {
      tokens >> replay.base.max_batch_wait_ms;
    } else if (directive == "fault_seed") {
      tokens >> replay.base.fault_seed;
    } else if (directive == "fault_mix") {
      auto kv = ParseKv(&tokens);
      replay.base.fault_mix.drop_bp = static_cast<uint32_t>(KvU64(kv, "drop", 0));
      replay.base.fault_mix.duplicate_bp = static_cast<uint32_t>(KvU64(kv, "dup", 0));
      replay.base.fault_mix.reorder_bp = static_cast<uint32_t>(KvU64(kv, "reorder", 0));
      replay.base.fault_mix.corrupt_bp = static_cast<uint32_t>(KvU64(kv, "corrupt", 0));
      replay.base.fault_mix.delay_bp = static_cast<uint32_t>(KvU64(kv, "delay", 0));
      replay.base.fault_mix.delay_ms = KvDouble(kv, "delay_ms", 25.0);
      replay.base.fault_mix.reorder_ms = KvDouble(kv, "reorder_ms", 15.0);
    } else if (directive == "checkpoints") {
      int flag = 0;
      tokens >> flag;
      replay.base.checkpoints.enabled = flag != 0;
    } else if (directive == "misordered_commit") {
      int flag = 0;
      tokens >> flag;
      replay.base.checkpoints.misordered_commit = flag != 0;
    } else if (directive == "hedge") {
      int flag = 0;
      tokens >> flag;
      replay.base.farm.hedge = flag != 0;
    } else if (directive == "farm") {
      auto kv = ParseKv(&tokens);
      replay.base.farm.hedge_default_ms = KvDouble(kv, "hedge_default_ms", 400.0);
      replay.base.farm.hedge_min_ms = KvDouble(kv, "hedge_min_ms", 10.0);
      replay.base.farm.hedge_max_ms = KvDouble(kv, "hedge_max_ms", 4000.0);
      replay.base.farm.hedge_min_samples = KvInt(kv, "hedge_min_samples", 8);
      replay.base.farm.breaker_threshold = KvInt(kv, "breaker_threshold", 3);
      replay.base.farm.breaker_cooldown_ms = KvDouble(kv, "breaker_cooldown_ms", 2000.0);
      replay.base.farm.max_outstanding = KvInt(kv, "max_outstanding", 0);
    } else if (directive == "event") {
      std::string kind;
      tokens >> kind;
      auto kv = ParseKv(&tokens);
      ChaosEvent event;
      if (kind == "power_cut") {
        event.kind = ChaosEvent::Kind::kPowerCut;
        event.power_cut.at_ms = KvDouble(kv, "at", 0);
        event.power_cut.machine = KvInt(kv, "machine", 0);
        event.power_cut.crash_at_hit = KvU64(kv, "hit", 0);
      } else if (kind == "partition") {
        event.kind = ChaosEvent::Kind::kPartition;
        event.partition.start_ms = KvDouble(kv, "start", 0);
        event.partition.end_ms = KvDouble(kv, "end", 0);
        event.partition.first_machine = KvInt(kv, "first", 0);
        event.partition.last_machine = KvInt(kv, "last", -1);
      } else if (kind == "net_window") {
        event.kind = ChaosEvent::Kind::kNetWindow;
        event.net_window.start_ms = KvDouble(kv, "start", 0);
        event.net_window.end_ms = KvDouble(kv, "end", 0);
        event.net_window.first_machine = KvInt(kv, "first", 0);
        event.net_window.last_machine = KvInt(kv, "last", -1);
        event.net_window.mix.drop_bp = static_cast<uint32_t>(KvU64(kv, "drop", 0));
        event.net_window.mix.duplicate_bp = static_cast<uint32_t>(KvU64(kv, "dup", 0));
        event.net_window.mix.reorder_bp = static_cast<uint32_t>(KvU64(kv, "reorder", 0));
        event.net_window.mix.corrupt_bp = static_cast<uint32_t>(KvU64(kv, "corrupt", 0));
        event.net_window.mix.delay_bp = static_cast<uint32_t>(KvU64(kv, "delay", 0));
        event.net_window.mix.delay_ms = KvDouble(kv, "delay_ms", 25.0);
        event.net_window.mix.reorder_ms = KvDouble(kv, "reorder_ms", 15.0);
      } else if (kind == "tpm_window") {
        event.kind = ChaosEvent::Kind::kTpmWindow;
        event.tpm_window.start_ms = KvDouble(kv, "start", 0);
        event.tpm_window.end_ms = KvDouble(kv, "end", 0);
        event.tpm_window.machine = KvInt(kv, "machine", 0);
        auto kind_it = kv.find("kind");
        const std::string plan_kind = kind_it == kv.end() ? "none" : kind_it->second;
        event.tpm_window.plan.kind = plan_kind == "drop"     ? FaultPlan::Kind::kDrop
                                     : plan_kind == "garble" ? FaultPlan::Kind::kGarble
                                     : plan_kind == "delay"  ? FaultPlan::Kind::kDelay
                                                             : FaultPlan::Kind::kNone;
        event.tpm_window.plan.every_n = KvU64(kv, "every_n", 0);
        event.tpm_window.plan.delay_ms = KvDouble(kv, "delay_ms", 0);
        event.tpm_window.plan.drop_timeout_ms = KvDouble(kv, "drop_timeout_ms", 0);
      } else if (kind == "verifier_fault") {
        event.kind = ChaosEvent::Kind::kVerifierFault;
        auto kind_it = kv.find("kind");
        const std::string fault_kind = kind_it == kv.end() ? "gray" : kind_it->second;
        event.verifier_fault.kind = fault_kind == "crash" ? FleetVerifierFault::Kind::kCrash
                                    : fault_kind == "hang"
                                        ? FleetVerifierFault::Kind::kHang
                                        : FleetVerifierFault::Kind::kGraySlow;
        event.verifier_fault.verifier = KvInt(kv, "verifier", 0);
        event.verifier_fault.start_ms = KvDouble(kv, "start", 0);
        event.verifier_fault.end_ms = KvDouble(kv, "end", 0);
        event.verifier_fault.slow_factor = KvDouble(kv, "slow", 10.0);
      } else {
        return InvalidArgumentError("chaos replay: unknown event kind '" + kind + "'");
      }
      replay.plan.events.push_back(event);
    } else {
      return InvalidArgumentError("chaos replay: unknown directive '" + directive + "'");
    }
  }
  if (replay.base.num_machines <= 0 || replay.base.num_verifiers <= 0) {
    return InvalidArgumentError("chaos replay: missing machines/verifiers directives");
  }
  return replay;
}

std::string ChaosFailureArtifact(const FleetConfig& base, const ChaosPlan& plan,
                                 const ChaosOutcome& outcome) {
  std::ostringstream os;
  os << "chaos failure artifact\n";
  os << "signature: " << outcome.signature << "\n";
  os << "plan: seed " << plan.seed << ", " << plan.events.size() << " event(s)\n";
  for (const ChaosEvent& event : plan.events) {
    os << "  " << EventLine(event) << "\n";
  }
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016llx",
                static_cast<unsigned long long>(outcome.stats.order_digest));
  os << "order_digest: " << digest << " (" << outcome.stats.events_processed
     << " events processed)\n";
  os << "oracles: accepted_wrong=" << outcome.stats.accepted_wrong
     << " torn_states=" << outcome.stats.torn_states
     << " machines_dead=" << outcome.stats.machines_dead
     << " starved=" << outcome.stats.starved_machines << " outcomes "
     << outcome.stats.rounds_completed << "+" << outcome.stats.rounds_timed_out << "+"
     << outcome.stats.rounds_failed << "/" << outcome.stats.rounds_injected << "\n";
  os << "base: " << base.num_machines << " machines, " << base.num_verifiers << " verifiers, "
     << base.rounds << " rounds\n";
  // The crash-point census names every durability boundary the failing run
  // executed - for a torn_state signature, the suspects list.
  FaultScheduler census;
  census.DumpCrashPoints(os);
  return os.str();
}

ChaosFuzzReport ChaosFuzz(const FleetConfig& base, uint64_t campaign_seed, int num_plans,
                          const ChaosGenOptions& options) {
  ChaosFuzzReport report;
  for (int p = 0; p < num_plans; ++p) {
    const uint64_t plan_seed =
        campaign_seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(p) + 1));
    ChaosPlan plan = GenerateChaosPlan(plan_seed, base, options);
    ChaosOutcome outcome = RunChaosPlan(base, plan);
    ++report.plans_run;
    if (!outcome.ran || outcome.signature.empty()) {
      continue;
    }
    ++report.violations;
    if (report.found) {
      continue;  // One minimal reproducer per campaign; later hits only count.
    }
    report.found = true;
    report.signature = outcome.signature;
    report.original_events = plan.events.size();
    report.minimal = ShrinkChaosPlan(base, plan, outcome.signature, &report.shrink_runs);
    ChaosOutcome minimal_outcome = RunChaosPlan(base, report.minimal);
    report.replay_file = SerializeChaosReplay(base, report.minimal, report.signature);
    report.artifact = ChaosFailureArtifact(base, report.minimal, minimal_outcome);
  }
  return report;
}

}  // namespace sim
}  // namespace flicker
