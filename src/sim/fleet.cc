#include "src/sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/apps/hello.h"
#include "src/common/fault.h"
#include "src/core/remote_attestation.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace sim {

namespace {

// A fleet machine's memory image. The default 64 MB MachineConfig is
// infeasible a thousand times over, so the kernel is relocated to a compact
// layout just above the 64 KB SLB region at kSlbFixedBase (1 MB): text at
// 1.125 MB, a one-module set, everything inside 1.5 MB.
FlickerPlatformConfig FleetPlatformConfig(size_t tpm_key_bits) {
  FlickerPlatformConfig config;
  config.machine.memory_bytes = 0x180000;  // 1.5 MB.
  config.machine.tpm.key_bits = tpm_key_bits;
  // One shared manufacture seed: RSA key material is memoized per
  // (seed, bits), so machine #2..#N skip keygen entirely. Identity still
  // differs per machine via its own Privacy CA certificate label.
  config.kernel.text_base = 0x120000;
  config.kernel.text_size = 64 * 1024;
  config.kernel.syscall_table_base = 0x134000;
  config.kernel.syscall_table_size = 4096;
  config.kernel.modules_base = 0x136000;
  config.kernel.modules = {{"tpm_tis", 16 * 1024}};
  return config;
}

std::string F3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return std::string(buf);
}

}  // namespace

// ---- FleetStats ----

double FleetStats::SessionsPerSec() const {
  if (sim_duration_ms <= 0) {
    return 0;
  }
  return static_cast<double>(rounds_completed) * 1000.0 / sim_duration_ms;
}

double FleetStats::LatencyPercentileMs(double p) const {
  if (round_latencies_ms.empty()) {
    return 0;
  }
  std::vector<double> sorted = round_latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t index = static_cast<size_t>(rank + 0.5);
  if (index >= sorted.size()) {
    index = sorted.size() - 1;
  }
  return sorted[index];
}

double FleetStats::VerifierUtilization() const {
  if (sim_duration_ms <= 0 || num_verifiers <= 0) {
    return 0;
  }
  return verifier_busy_ms / (sim_duration_ms * num_verifiers);
}

double JainFairnessIndex(const std::vector<double>& allocations) {
  double sum = 0;
  double sum_sq = 0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq == 0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

std::string FleetStats::ToJson(const FleetConfig& config) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"fleet\": {\"machines\": " << config.num_machines
     << ", \"verifiers\": " << config.num_verifiers << ", \"rounds\": " << config.rounds
     << ", \"seed\": " << config.seed << ", \"batched_machines_bp\": " << config.batched_machines_bp
     << ", \"mean_interarrival_ms\": " << F3(config.mean_interarrival_ms) << "},\n";
  os << "  \"outcome\": {\"completed\": " << rounds_completed
     << ", \"timed_out\": " << rounds_timed_out << ", \"failed\": " << rounds_failed
     << ", \"rejected\": " << rounds_rejected << ", \"tampered_rejected\": " << tampered_rejected
     << ", \"accepted_wrong\": " << accepted_wrong << ", \"verified\": " << responses_verified
     << "},\n";
  os << "  \"chaos\": {\"partition_drops\": " << partition_drops
     << ", \"power_cuts\": " << power_cuts << ", \"machines_dead\": " << machines_dead << "},\n";
  os << "  \"throughput\": {\"sim_duration_ms\": " << F3(sim_duration_ms)
     << ", \"sessions_per_sec\": " << F3(SessionsPerSec()) << "},\n";
  os << "  \"latency_ms\": {\"p50\": " << F3(LatencyPercentileMs(0.50))
     << ", \"p90\": " << F3(LatencyPercentileMs(0.90))
     << ", \"p99\": " << F3(LatencyPercentileMs(0.99))
     << ", \"max\": " << F3(LatencyPercentileMs(1.0)) << "},\n";
  char util[64];
  std::snprintf(util, sizeof(util), "%.4f", VerifierUtilization());
  os << "  \"verifier\": {\"busy_ms\": " << F3(verifier_busy_ms) << ", \"utilization\": " << util
     << "},\n";
  os << "  \"batch\": {\"quotes\": " << batch_quotes << ", \"sizes\": {";
  bool first = true;
  for (const auto& [size, count] : batch_sizes) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "\"" << size << "\": " << count;
  }
  os << "}},\n";
  // v2 sections: only present when the run exercised the verifier-farm
  // policy, verifier faults, or the checkpoint store, so legacy fleet JSON
  // stays byte-identical.
  const bool v2 = config.farm.hedge || !config.verifier_faults.empty() ||
                  config.checkpoints.enabled || !config.net_windows.empty() ||
                  !config.tpm_windows.empty();
  if (v2) {
    double mttr_mean = 0;
    double mttr_max = 0;
    for (double sample : mttr_ms) {
      mttr_mean += sample;
      mttr_max = std::max(mttr_max, sample);
    }
    if (!mttr_ms.empty()) {
      mttr_mean /= static_cast<double>(mttr_ms.size());
    }
    os << "  \"farm\": {\"hedged\": " << (config.farm.hedge ? "true" : "false")
       << ", \"hedges_fired\": " << hedges_fired << ", \"hedge_wins\": " << hedge_wins
       << ", \"overload_sheds\": " << overload_sheds
       << ", \"overload_resends\": " << overload_resends
       << ", \"breaker_trips\": " << breaker_trips
       << ", \"verifier_fault_frames\": " << verifier_fault_frames
       << ", \"mttr_samples\": " << mttr_ms.size() << ", \"mttr_mean_ms\": " << F3(mttr_mean)
       << ", \"mttr_max_ms\": " << F3(mttr_max) << "},\n";
    os << "  \"oracle\": {\"torn_states\": " << torn_states
       << ", \"checkpoints_sealed\": " << checkpoints_sealed
       << ", \"checkpoint_recoveries\": " << checkpoint_recoveries
       << ", \"starved_machines\": " << starved_machines << "},\n";
  }
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016llx", static_cast<unsigned long long>(order_digest));
  os << "  \"engine\": {\"events\": " << events_processed << ", \"cancelled\": " << events_cancelled
     << ", \"max_heap\": " << max_heap << ", \"order_digest\": \"" << digest << "\"}\n";
  os << "}\n";
  return os.str();
}

// ---- Fleet ----

Fleet::Fleet(const FleetConfig& config) : config_(config), executor_(config.seed) {}

Fleet::~Fleet() = default;

Bytes Fleet::DeriveNonce(const std::string& label, uint64_t a, uint64_t b) const {
  return Sha1::Digest(BytesOf(label + "-" + std::to_string(config_.seed) + "-" +
                              std::to_string(a) + "-" + std::to_string(b)));
}

Status Fleet::ValidateConfig() const {
  const int n = config_.num_machines;
  for (const FleetPartition& window : config_.partitions) {
    if (window.first_machine < 0 || window.last_machine >= n ||
        window.first_machine > window.last_machine) {
      return InvalidArgumentError("partition window targets machines outside the fleet");
    }
    if (window.end_ms < window.start_ms) {
      return InvalidArgumentError("partition window ends before it starts");
    }
  }
  for (const FleetPowerCut& cut : config_.power_cuts) {
    if (cut.machine < 0 || cut.machine >= n) {
      return InvalidArgumentError("power cut targets machine outside the fleet");
    }
    if (cut.crash_at_hit > 0 && !config_.checkpoints.enabled) {
      return InvalidArgumentError("crash-point power cut requires the checkpoint store");
    }
  }
  for (const FleetVerifierFault& fault : config_.verifier_faults) {
    if (fault.verifier < 0 || fault.verifier >= config_.num_verifiers) {
      return InvalidArgumentError("verifier fault targets verifier outside the farm");
    }
    if (fault.end_ms <= fault.start_ms) {
      return InvalidArgumentError("verifier fault window ends before it starts");
    }
    if (fault.kind == FleetVerifierFault::Kind::kGraySlow && fault.slow_factor < 1.0) {
      return InvalidArgumentError("gray-slow factor below 1 would speed the verifier up");
    }
  }
  for (const FleetNetMixWindow& window : config_.net_windows) {
    if (window.first_machine < 0 || window.last_machine >= n ||
        window.first_machine > window.last_machine) {
      return InvalidArgumentError("net-mix window targets machines outside the fleet");
    }
    if (window.end_ms <= window.start_ms) {
      return InvalidArgumentError("net-mix window ends before it starts");
    }
  }
  for (const FleetTpmFaultWindow& window : config_.tpm_windows) {
    if (window.machine < 0 || window.machine >= n) {
      return InvalidArgumentError("tpm fault window targets machine outside the fleet");
    }
    if (window.end_ms <= window.start_ms) {
      return InvalidArgumentError("tpm fault window ends before it starts");
    }
  }
  if (config_.farm.hedge &&
      (config_.farm.breaker_threshold <= 0 || config_.farm.hedge_min_samples <= 0 ||
       config_.farm.max_hedges_per_round <= 0)) {
    return InvalidArgumentError("farm policy thresholds must be positive");
  }
  return Status::Ok();
}

double Fleet::MsSinceEpoch(uint64_t at_ns) const {
  return (static_cast<double>(at_ns) - static_cast<double>(epoch_ns_)) / 1e6;
}

const FleetVerifierFault* Fleet::ActiveVerifierFault(int verifier, uint64_t at_ns) const {
  const double at_ms = MsSinceEpoch(at_ns);
  for (const FleetVerifierFault& fault : config_.verifier_faults) {
    if (fault.verifier == verifier && at_ms >= fault.start_ms && at_ms < fault.end_ms) {
      return &fault;
    }
  }
  return nullptr;
}

const Bytes& Fleet::machine_session_nonce(int machine) const {
  return machines_[static_cast<size_t>(machine)]->session_nonce;
}

Status Fleet::BootstrapMachine(FleetMachine* machine) {
  SlbCoreOptions options;
  options.nonce = DeriveNonce("fleet-bootstrap", static_cast<uint64_t>(machine->id),
                              machine->reboots);
  Result<FlickerSessionResult> session =
      machine->platform->ExecuteSession(*binary_, Bytes(), options);
  if (!session.ok()) {
    return session.status();
  }
  if (!session.value().ok()) {
    return session.value().record.pal_status;
  }
  machine->session_nonce = options.nonce;
  machine->session_outputs = session.value().outputs();
  return Status::Ok();
}

Status Fleet::SetupCheckpointStore(FleetMachine* machine) {
  // Runs before the machine's first session: the release PCR read here is
  // the post-reset PCR 17 value, which is exactly what the register holds
  // again after a power cut's Startup(kClear) - so recovery can unseal.
  machine->owner_auth =
      Sha1::Digest(BytesOf("fleet-owner-" + std::to_string(machine->id)));
  machine->blob_auth = Sha1::Digest(BytesOf("fleet-blob-" + std::to_string(machine->id)));
  FLICKER_RETURN_IF_ERROR(machine->platform->tpm()->TakeOwnership(machine->owner_auth));
  Result<Bytes> release = machine->platform->tpm()->PcrRead(kSkinitPcr);
  if (!release.ok()) {
    return release.status();
  }
  machine->release_pcr = release.value();
  CrashStoreOptions options;
  options.broken_commit_before_increment = config_.checkpoints.misordered_commit;
  Result<CrashConsistentSealedStore> store = CrashConsistentSealedStore::Create(
      machine->platform->tpm(), Sha1::Digest(BytesOf("fleet-ctr-" + std::to_string(machine->id))),
      machine->owner_auth, options);
  if (!store.ok()) {
    return store.status();
  }
  machine->store = std::make_unique<CrashConsistentSealedStore>(store.take());
  machine->checkpoint_gen = 0;
  FLICKER_RETURN_IF_ERROR(machine->store->Seal(BytesOf("ckpt-0"), machine->release_pcr,
                                               machine->blob_auth));
  ++stats_.checkpoints_sealed;
  return Status::Ok();
}

bool Fleet::Partitioned(int machine, uint64_t at_ns) const {
  // Partition windows are epoch-relative (nobody writes chaos plans in
  // absolute bootstrap-skewed nanoseconds).
  const double at_ms = (static_cast<double>(at_ns) - static_cast<double>(epoch_ns_)) / 1e6;
  for (const FleetPartition& window : config_.partitions) {
    if (machine >= window.first_machine && machine <= window.last_machine &&
        at_ms >= window.start_ms && at_ms < window.end_ms) {
      return true;
    }
  }
  return false;
}

SessionExpectation Fleet::SnapshotExpectation(const RoundState& round) const {
  SessionExpectation expectation;
  expectation.binary = binary_.get();
  expectation.inputs = Bytes();
  expectation.outputs = round.snapshot_outputs;
  expectation.nonce = round.snapshot_nonce;
  return expectation;
}

Status Fleet::Build() {
  if (built_) {
    return Status::Ok();
  }
  FLICKER_RETURN_IF_ERROR(ValidateConfig());
  Result<PalBinary> built = BuildPal(std::make_shared<HelloWorldPal>());
  if (!built.ok()) {
    return built.status();
  }
  binary_ = std::make_unique<PalBinary>(built.take());

  FlickerPlatformConfig platform_config = FleetPlatformConfig(config_.tpm_key_bits);
  platform_config.tqd.max_batch_size = config_.max_batch_size;
  platform_config.tqd.max_batch_wait_ms = config_.max_batch_wait_ms;

  Drbg shape(config_.seed ^ 0xF1EE7ULL);
  machines_.reserve(static_cast<size_t>(config_.num_machines));
  for (int i = 0; i < config_.num_machines; ++i) {
    auto machine = std::make_unique<FleetMachine>();
    machine->id = i;
    machine->platform = std::make_unique<FlickerPlatform>(platform_config);
    machine->channel = std::make_unique<LossyChannel>(
        &machine->wire_clock, config_.latency,
        /*jitter_seed=*/config_.seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(i) + 1)));
    if (config_.fault_mix.drop_bp != 0 || config_.fault_mix.duplicate_bp != 0 ||
        config_.fault_mix.reorder_bp != 0 || config_.fault_mix.corrupt_bp != 0 ||
        config_.fault_mix.delay_bp != 0) {
      machine->channel->set_fault_schedule(
          NetFaultSchedule(config_.fault_seed ^ static_cast<uint64_t>(i), config_.fault_mix));
    }
    machine->cert =
        ca_.Certify(machine->platform->tpm()->aik_public(), "fleet-" + std::to_string(i));
    machine->actor =
        executor_.RegisterActor("machine-" + std::to_string(i), machine->platform->clock());
    machine->batched = shape.UniformUint64(10000) < config_.batched_machines_bp;

    const int id = i;
    machine->channel->set_delivery_hook(
        [this, id](NetEndpoint dest, uint64_t seq, uint64_t arrival_ns) {
          OnWireEnqueued(id, dest, seq, arrival_ns);
        });

    // The quote daemon runs its flush windows and breaker probes as real
    // executor timers instead of waiting to be polled.
    const ActorId actor = machine->actor;
    TpmQuoteDaemon::TimerHost host;
    host.schedule = [this, actor](uint64_t delay_ns, std::function<void()> fn) {
      return executor_.ScheduleAfterLocal(actor, delay_ns, std::move(fn)).seq;
    };
    host.cancel = [this](uint64_t event_seq) { executor_.Cancel(EventId{event_seq}); };
    machine->platform->tqd()->BindTimers(
        std::move(host),
        [this, id](std::vector<BatchQuoteResponse> slices) {
          SendBatchSlices(id, std::move(slices));
        },
        /*drain_sink=*/nullptr);

    if (config_.checkpoints.enabled) {
      FLICKER_RETURN_IF_ERROR(SetupCheckpointStore(machine.get()));
    }
    FLICKER_RETURN_IF_ERROR(BootstrapMachine(machine.get()));
    machines_.push_back(std::move(machine));
  }

  if (config_.farm.hedge) {
    VerifierHealthConfig health;
    health.num_verifiers = config_.num_verifiers;
    health.hedge_default_ms = config_.farm.hedge_default_ms;
    health.hedge_min_ms = config_.farm.hedge_min_ms;
    health.hedge_max_ms = config_.farm.hedge_max_ms;
    health.min_samples = config_.farm.hedge_min_samples;
    health.breaker_threshold = config_.farm.breaker_threshold;
    health.breaker_cooldown_ms = config_.farm.breaker_cooldown_ms;
    health.max_outstanding = config_.farm.max_outstanding;
    health_ = std::make_unique<VerifierHealthTracker>(health);
  }

  verifiers_.resize(static_cast<size_t>(config_.num_verifiers));
  for (int v = 0; v < config_.num_verifiers; ++v) {
    verifiers_[static_cast<size_t>(v)].actor = executor_.RegisterActor(
        "verifier-" + std::to_string(v), &verifiers_[static_cast<size_t>(v)].clock);
  }

  // The client starts injecting once the whole fleet is up: machine clocks
  // already sit at their bootstrap completion, so rounds injected from the
  // executor's zero would time out before any machine could even start.
  epoch_ns_ = 0;
  for (const auto& machine : machines_) {
    epoch_ns_ = std::max(epoch_ns_, machine->platform->clock()->NowNanos());
  }

  // The starvation oracle's horizon: the instant every configured fault
  // window has ended. Arrivals after it should complete on a healthy fleet.
  double quiesce_ms = 0;
  for (const FleetPartition& w : config_.partitions) quiesce_ms = std::max(quiesce_ms, w.end_ms);
  for (const FleetPowerCut& c : config_.power_cuts) quiesce_ms = std::max(quiesce_ms, c.at_ms);
  for (const FleetVerifierFault& f : config_.verifier_faults)
    quiesce_ms = std::max(quiesce_ms, f.end_ms);
  for (const FleetNetMixWindow& w : config_.net_windows) quiesce_ms = std::max(quiesce_ms, w.end_ms);
  for (const FleetTpmFaultWindow& w : config_.tpm_windows)
    quiesce_ms = std::max(quiesce_ms, w.end_ms);
  quiesce_ns_ = epoch_ns_ + static_cast<uint64_t>(quiesce_ms * 1e6 + 0.5);
  machine_arrivals_after_quiesce_.assign(static_cast<size_t>(config_.num_machines), 0);
  machine_completed_after_quiesce_.assign(static_cast<size_t>(config_.num_machines), 0);
  stats_.machine_completed.assign(static_cast<size_t>(config_.num_machines), 0);

  // The open-loop client: seeded Poisson arrivals, uniform target machine.
  Drbg arrivals(config_.seed ^ 0xA2217A1ULL);
  double t_ms = 0;
  rounds_.resize(static_cast<size_t>(config_.rounds));
  for (int r = 0; r < config_.rounds; ++r) {
    const double u = (static_cast<double>(arrivals.UniformUint64(1ULL << 30)) + 1.0) /
                     (static_cast<double>(1ULL << 30) + 1.0);
    t_ms += -config_.mean_interarrival_ms * std::log(u);
    RoundState& round = rounds_[static_cast<size_t>(r)];
    round.machine = static_cast<int>(
        arrivals.UniformUint64(static_cast<uint64_t>(config_.num_machines)));
    round.full_session = arrivals.UniformUint64(10000) < config_.full_session_bp;
    round.nonce = DeriveNonce("fleet-round", static_cast<uint64_t>(r), 0);
    round.arrival_ns = epoch_ns_ + static_cast<uint64_t>(t_ms * 1e6 + 0.5);
    nonce_to_round_[round.nonce] = static_cast<size_t>(r);
    if (round.arrival_ns > quiesce_ns_) {
      ++machine_arrivals_after_quiesce_[static_cast<size_t>(round.machine)];
    }
    const size_t round_index = static_cast<size_t>(r);
    executor_.ScheduleAt(machines_[static_cast<size_t>(round.machine)]->actor, round.arrival_ns,
                         [this, round_index] { OnArrival(round_index); });
  }
  stats_.rounds_injected = static_cast<uint64_t>(config_.rounds);

  for (const FleetPowerCut& cut : config_.power_cuts) {
    executor_.ScheduleAt(machines_[static_cast<size_t>(cut.machine)]->actor,
                         epoch_ns_ + static_cast<uint64_t>(cut.at_ms * 1e6 + 0.5),
                         [this, cut] { OnPowerCut(cut); });
  }

  // Timed wire-mix windows: swap the fault schedule in at the window start
  // and restore the base mix at the end. The schedule is re-armed at
  // runtime, so a window can hit wires mid-conversation.
  for (size_t w = 0; w < config_.net_windows.size(); ++w) {
    const FleetNetMixWindow& window = config_.net_windows[w];
    for (int m = window.first_machine; m <= window.last_machine; ++m) {
      FleetMachine* machine = machines_[static_cast<size_t>(m)].get();
      const uint64_t window_seed = config_.fault_seed ^ (0x57D0ULL + w) ^
                                   (static_cast<uint64_t>(m) << 32);
      NetFaultMix mix = window.mix;
      NetFaultMix base = config_.fault_mix;
      executor_.ScheduleAt(machine->actor,
                           epoch_ns_ + static_cast<uint64_t>(window.start_ms * 1e6 + 0.5),
                           [machine, window_seed, mix] {
                             machine->channel->set_fault_schedule(
                                 NetFaultSchedule(window_seed, mix));
                           });
      const uint64_t base_seed = config_.fault_seed ^ static_cast<uint64_t>(m);
      executor_.ScheduleAt(machine->actor,
                           epoch_ns_ + static_cast<uint64_t>(window.end_ms * 1e6 + 0.5),
                           [machine, base_seed, base] {
                             machine->channel->set_fault_schedule(
                                 NetFaultSchedule(base_seed, base));
                           });
    }
  }

  // Timed TPM-transport fault windows (the LPC bus, not the network).
  for (const FleetTpmFaultWindow& window : config_.tpm_windows) {
    FleetMachine* machine = machines_[static_cast<size_t>(window.machine)].get();
    const FaultPlan plan = window.plan;
    executor_.ScheduleAt(machine->actor,
                         epoch_ns_ + static_cast<uint64_t>(window.start_ms * 1e6 + 0.5),
                         [machine, plan] {
                           machine->platform->machine()->tpm_transport()->set_fault_plan(plan);
                         });
    executor_.ScheduleAt(machine->actor,
                         epoch_ns_ + static_cast<uint64_t>(window.end_ms * 1e6 + 0.5),
                         [machine] {
                           machine->platform->machine()->tpm_transport()->set_fault_plan(
                               FaultPlan());
                         });
  }

  built_ = true;
  return Status::Ok();
}

Status Fleet::Run() {
  FLICKER_RETURN_IF_ERROR(Build());
  executor_.Run();
  // Duration measured from the injection epoch: bootstrap time is a fixed
  // setup cost, not part of the steady-state throughput being reported.
  stats_.sim_duration_ms =
      static_cast<double>(executor_.NowNs() - std::min(executor_.NowNs(), epoch_ns_)) / 1e6;
  stats_.num_verifiers = config_.num_verifiers;
  stats_.verifier_busy_ms = 0;
  for (const FarmVerifier& verifier : verifiers_) {
    stats_.verifier_busy_ms += verifier.busy_ms;
  }
  stats_.events_processed = executor_.events_processed();
  stats_.events_cancelled = executor_.events_cancelled();
  stats_.max_heap = executor_.max_heap_size();
  stats_.order_digest = executor_.OrderDigest();
  if (health_) {
    stats_.breaker_trips = health_->breaker_trips();
    stats_.mttr_ms = health_->mttr_samples_ms();
  }
  // Starvation oracle: a live machine with post-quiesce arrivals but no
  // post-quiesce completion never recovered from the faults it absorbed.
  stats_.starved_machines = 0;
  for (size_t m = 0; m < machines_.size(); ++m) {
    if (!machines_[m]->dead && machine_arrivals_after_quiesce_[m] >= 2 &&
        machine_completed_after_quiesce_[m] == 0) {
      ++stats_.starved_machines;
    }
  }
  return Status::Ok();
}

void Fleet::FailRound(size_t round_index) {
  RoundState& round = rounds_[round_index];
  if (round.resolved) {
    return;
  }
  round.resolved = true;
  if (round.timeout.valid()) {
    executor_.Cancel(round.timeout);
  }
  ++stats_.rounds_failed;
  obs::Count(obs::Ctr::kFleetRoundsFailed);
}

void Fleet::OnArrival(size_t round_index) {
  RoundState& round = rounds_[round_index];
  FleetMachine& machine = *machines_[static_cast<size_t>(round.machine)];
  obs::ScopedProcess process_scope(executor_.actor_pid(machine.actor));
  if (machine.dead) {
    FailRound(round_index);
    return;
  }
  round.timeout = executor_.ScheduleAt(
      machine.actor, round.arrival_ns + static_cast<uint64_t>(config_.round_timeout_ms * 1e6 + 0.5),
      [this, round_index] { OnTimeout(round_index); });

  if (round.full_session) {
    SlbCoreOptions options;
    options.nonce = DeriveNonce("fleet-session", static_cast<uint64_t>(round_index),
                                machine.reboots);
    Result<FlickerSessionResult> session =
        machine.platform->ExecuteSession(*binary_, Bytes(), options);
    if (!session.ok() || !session.value().ok()) {
      FailRound(round_index);
      return;
    }
    machine.session_nonce = options.nonce;
    machine.session_outputs = session.value().outputs();
  }

  if (machine.batched) {
    Status submitted =
        machine.platform->tqd()->SubmitBatched(round.nonce, PcrSelection({kSkinitPcr}));
    if (!submitted.ok()) {
      FailRound(round_index);
    }
    // The window's flush timer (or an inline full-window flush inside
    // SubmitBatched) carries the round from here.
    return;
  }

  Result<AttestationResponse> response =
      machine.platform->tqd()->HandleChallenge(round.nonce, PcrSelection({kSkinitPcr}));
  if (!response.ok()) {
    FailRound(round_index);
    return;
  }
  round.is_batch = false;
  round.snapshot_nonce = machine.session_nonce;
  round.snapshot_outputs = machine.session_outputs;
  SendWire(&machine, round_index, /*to_farm=*/true,
           SerializeAttestationResponse(response.value()),
           machine.platform->clock()->NowNanos());
}

void Fleet::SendBatchSlices(int machine_id, std::vector<BatchQuoteResponse> slices) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  ++stats_.batch_quotes;
  ++stats_.batch_sizes[slices.size()];
  for (BatchQuoteResponse& slice : slices) {
    auto it = nonce_to_round_.find(slice.nonce);
    if (it == nonce_to_round_.end()) {
      continue;
    }
    RoundState& round = rounds_[it->second];
    if (round.resolved) {
      continue;  // Timed out while the window coalesced.
    }
    round.is_batch = true;
    round.snapshot_nonce = machine.session_nonce;
    round.snapshot_outputs = machine.session_outputs;
    SendWire(&machine, it->second, /*to_farm=*/true, SerializeBatchQuoteResponse(slice),
             machine.platform->clock()->NowNanos());
  }
}

uint64_t Fleet::SendWire(FleetMachine* machine, size_t round_index, bool to_farm, Bytes wire,
                         uint64_t sender_now_ns, int exclude, bool hedge, bool overload_nack) {
  const uint64_t seq = machine->channel->messages_sent() + 1;
  PendingWire pending;
  pending.round = round_index;
  pending.to_farm = to_farm;
  pending.sent = wire;
  pending.sent_ns = sender_now_ns;
  pending.exclude = exclude;
  pending.hedge = hedge;
  pending.overload_nack = overload_nack;
  machine->pending[seq] = std::move(pending);
  if (to_farm) {
    rounds_[round_index].response_wire = wire;
    if (health_) {
      // Arm the hedge: if no ack (or nack) has concluded this frame once the
      // p95-derived delay elapses, a duplicate goes to a different verifier.
      const double hedge_delay_ms = health_->HedgeDelayMs();
      const int machine_id = machine->id;
      executor_.ScheduleAt(machine->actor,
                           sender_now_ns + static_cast<uint64_t>(hedge_delay_ms * 1e6 + 0.5),
                           [this, machine_id, seq, round_index, hedge_delay_ms] {
                             OnHedgeTimer(machine_id, seq, round_index, hedge_delay_ms);
                           });
    }
  }
  // Transmission starts at the sender's own instant: a verifier answering
  // from deep inside its service queue stamps the ack with its (future)
  // finish time without dragging the machine's wire timeline along - the
  // machine's next frame (a hedge copy, a fresh round) still leaves at the
  // machine's now, not the slow verifier's.
  machine->channel->SendAt(to_farm ? NetEndpoint::kClient : NetEndpoint::kServer, sender_now_ns,
                           std::move(wire));
  return seq;
}

void Fleet::OnWireEnqueued(int machine_id, NetEndpoint dest, uint64_t seq, uint64_t arrival_ns) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  auto pending_it = machine.pending.find(seq);
  if (pending_it == machine.pending.end()) {
    return;
  }
  if (Partitioned(machine_id, pending_it->second.sent_ns)) {
    ++stats_.partition_drops;
    return;  // The rack is cut: the frame rots in flight, the round times out.
  }
  if (dest == NetEndpoint::kServer) {
    PendingWire& pending = pending_it->second;
    int verifier_index;
    if (health_) {
      // Farm frontend: health-aware pick. Scan breaker-admissible verifiers
      // for one under the outstanding cap; if every candidate is saturated,
      // shed with an overload nack the machine answers with a paced resend.
      const double now_ms = MsSinceEpoch(arrival_ns);
      verifier_index = -1;
      for (int scanned = 0; scanned < config_.num_verifiers; ++scanned) {
        int candidate = health_->PickVerifier(now_ms, pending.exclude);
        if (!health_->ShouldShed(candidate)) {
          verifier_index = candidate;
          break;
        }
      }
      if (verifier_index < 0) {
        pending.concluded = true;  // Never dispatched; no verifier to miss.
        ++stats_.overload_sheds;
        obs::Count(obs::Ctr::kFleetOverloadSheds);
        SendWire(&machine, pending.round, /*to_farm=*/false, rounds_[pending.round].nonce,
                 arrival_ns, /*exclude=*/-1, /*hedge=*/false, /*overload_nack=*/true);
        return;
      }
      pending.verifier = verifier_index;
      health_->OnDispatch(verifier_index);
    } else {
      verifier_index =
          static_cast<int>(next_verifier_++ % static_cast<uint64_t>(config_.num_verifiers));
      pending.verifier = verifier_index;
    }
    executor_.ScheduleAt(verifiers_[static_cast<size_t>(verifier_index)].actor, arrival_ns,
                         [this, machine_id, seq, arrival_ns, verifier_index] {
                           OnFarmDelivery(machine_id, seq, arrival_ns, verifier_index);
                         });
  } else {
    executor_.ScheduleAt(machine.actor, arrival_ns, [this, machine_id, seq, arrival_ns] {
      OnResponseDelivery(machine_id, seq, arrival_ns);
    });
  }
}

void Fleet::OnFarmDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns, int verifier_index) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  FarmVerifier& verifier = verifiers_[static_cast<size_t>(verifier_index)];
  obs::ScopedProcess process_scope(executor_.actor_pid(verifier.actor));
  Bytes wire;
  if (!machine.channel->ReceiveScheduled(NetEndpoint::kServer, seq, arrival_ns, &wire)) {
    return;
  }
  auto pending_it = machine.pending.find(seq);
  if (pending_it == machine.pending.end()) {
    return;
  }
  const PendingWire& pending = pending_it->second;
  const RoundState& round = rounds_[pending.round];

  // Verifier-tier faults hit before any verification work happens.
  const FleetVerifierFault* fault = ActiveVerifierFault(verifier_index, arrival_ns);
  double verify_cost_ms = config_.verify_cost_ms;
  if (fault != nullptr) {
    ++stats_.verifier_fault_frames;
    obs::Count(obs::Ctr::kFleetVerifierFaults);
    switch (fault->kind) {
      case FleetVerifierFault::Kind::kCrash:
        // The worker died holding the frame; its restart comes up empty.
        // Nobody answers - the hedge or the round timeout picks it up.
        return;
      case FleetVerifierFault::Kind::kHang:
        // The worker seizes until the window ends; frames queued behind it
        // on this actor inherit the stall, and this frame is never answered.
        verifier.clock.AdvanceToNanos(
            std::max(verifier.clock.NowNanos(),
                     epoch_ns_ + static_cast<uint64_t>(fault->end_ms * 1e6 + 0.5)));
        return;
      case FleetVerifierFault::Kind::kGraySlow:
        verify_cost_ms *= fault->slow_factor;
        break;
    }
  }

  verifier.clock.AdvanceMillis(verify_cost_ms);
  verifier.busy_ms += verify_cost_ms;
  ++verifier.verified;
  ++stats_.responses_verified;
  obs::ObserveMs(obs::Hist::kFleetVerifierBusyMs, verify_cost_ms);

  const bool tampered = wire != pending.sent;
  const SessionExpectation expectation = SnapshotExpectation(round);
  Status verdict = Status::Ok();
  if (round.is_batch) {
    Result<BatchQuoteResponse> parsed = DeserializeBatchQuoteResponse(wire);
    verdict = parsed.ok() ? VerifyBatchQuote(expectation, parsed.value(), machine.cert,
                                             ca_.public_key(), round.nonce)
                          : parsed.status();
  } else {
    Result<AttestationResponse> parsed = DeserializeAttestationResponse(wire);
    verdict = parsed.ok() ? VerifyAttestation(expectation, parsed.value(), machine.cert,
                                              ca_.public_key(), round.nonce)
                          : parsed.status();
  }

  if (verdict.ok()) {
    if (tampered) {
      // A tampered frame passed the full verification chain: the invariant
      // the whole stack exists to uphold just broke. Record it loudly.
      ++stats_.accepted_wrong;
      return;
    }
    // Ack back across the same wire, timed from the verifier's instant. The
    // ack records which farm wire it answers so the machine can attribute
    // the round trip to this verifier.
    const uint64_t ack_seq = SendWire(&machine, pending.round, /*to_farm=*/false, round.nonce,
                                      verifier.clock.NowNanos());
    PendingWire& ack = machine.pending[ack_seq];
    ack.verifier = verifier_index;
    ack.request_seq = seq;
  } else if (tampered) {
    ++stats_.tampered_rejected;
  } else {
    ++stats_.rounds_rejected;
  }
}

void Fleet::OnResponseDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  obs::ScopedProcess process_scope(executor_.actor_pid(machine.actor));
  Bytes wire;
  if (!machine.channel->ReceiveScheduled(NetEndpoint::kClient, seq, arrival_ns, &wire)) {
    return;
  }
  auto pending_it = machine.pending.find(seq);
  if (pending_it == machine.pending.end()) {
    return;
  }
  PendingWire& delivered = pending_it->second;
  RoundState& round = rounds_[delivered.round];

  if (delivered.overload_nack) {
    // The farm shed our response. Resend after a full-jitter backoff so a
    // rack of shed machines does not return in lockstep.
    if (round.resolved || machine.dead) {
      return;
    }
    const int attempt = round.overload_resends++;
    BackoffSchedule schedule(config_.farm.overload_backoff,
                             config_.seed ^ (0x4F4CULL + static_cast<uint64_t>(delivered.round)));
    double delay_ms = 0;
    for (int i = 0; i <= attempt; ++i) {
      delay_ms = schedule.NextDelayMs();
    }
    const size_t round_index = delivered.round;
    executor_.ScheduleAt(machine.actor,
                         arrival_ns + static_cast<uint64_t>(delay_ms * 1e6 + 0.5),
                         [this, round_index] { OnOverloadResend(round_index); });
    return;
  }

  // Attribute the ack to the verifier that produced it: close its breaker,
  // pool the round-trip sample, release its outstanding slot. A late
  // duplicate (hedge already fired against this dispatch) changes nothing.
  if (health_ && delivered.verifier >= 0 && delivered.request_seq != 0) {
    auto request_it = machine.pending.find(delivered.request_seq);
    if (request_it != machine.pending.end() && !request_it->second.concluded) {
      request_it->second.concluded = true;
      const double rtt_ms =
          static_cast<double>(arrival_ns - request_it->second.sent_ns) / 1e6;
      health_->OnSuccess(delivered.verifier, rtt_ms, MsSinceEpoch(arrival_ns));
    }
  }

  if (round.resolved) {
    return;  // A duplicated ack, or the round already timed out.
  }
  round.resolved = true;
  if (round.timeout.valid()) {
    executor_.Cancel(round.timeout);
  }
  if (delivered.request_seq != 0) {
    auto request_it = machine.pending.find(delivered.request_seq);
    if (request_it != machine.pending.end() && request_it->second.hedge) {
      ++stats_.hedge_wins;
      obs::Count(obs::Ctr::kFleetHedgeWins);
    }
  }
  const double latency_ms = static_cast<double>(arrival_ns - round.arrival_ns) / 1e6;
  ++stats_.rounds_completed;
  ++stats_.machine_completed[static_cast<size_t>(round.machine)];
  if (round.arrival_ns > quiesce_ns_) {
    ++machine_completed_after_quiesce_[static_cast<size_t>(round.machine)];
  }
  stats_.round_latencies_ms.push_back(latency_ms);
  obs::Count(obs::Ctr::kFleetSessions);
  obs::ObserveMs(obs::Hist::kFleetRoundLatencyMs, latency_ms);
}

void Fleet::OnTimeout(size_t round_index) {
  RoundState& round = rounds_[round_index];
  if (round.resolved) {
    return;
  }
  round.resolved = true;
  ++stats_.rounds_timed_out;
  obs::Count(obs::Ctr::kFleetRoundsFailed);
  if (health_) {
    // Every farm dispatch of this round that nobody answered is a miss: the
    // breaker hears about verifiers that swallow frames even when no hedge
    // fired in time.
    FleetMachine& machine = *machines_[static_cast<size_t>(round.machine)];
    const double now_ms = MsSinceEpoch(executor_.NowNs());
    for (auto& [seq, pending] : machine.pending) {
      if (pending.round == round_index && pending.to_farm && !pending.concluded) {
        pending.concluded = true;
        if (pending.verifier >= 0) {
          health_->OnMiss(pending.verifier, now_ms);
        }
      }
    }
  }
}

void Fleet::OnHedgeTimer(int machine_id, uint64_t seq, size_t round_index,
                         double hedge_delay_ms) {
  RoundState& round = rounds_[round_index];
  if (round.resolved || round.hedge_count >= config_.farm.max_hedges_per_round) {
    return;
  }
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  if (machine.dead) {
    return;
  }
  auto pending_it = machine.pending.find(seq);
  if (pending_it == machine.pending.end() || pending_it->second.concluded) {
    return;
  }
  PendingWire& pending = pending_it->second;
  // The primary has outlived the p95 of recent round trips: call it missing
  // and fire the duplicate at a different verifier. First well-formed ack
  // wins; the loser's ack is discarded by the round.resolved check.
  pending.concluded = true;
  ++round.hedge_count;
  if (pending.verifier >= 0) {
    health_->OnMiss(pending.verifier, MsSinceEpoch(executor_.NowNs()));
  }
  ++stats_.hedges_fired;
  obs::Count(obs::Ctr::kFleetHedgesFired);
  obs::ObserveMs(obs::Hist::kFleetHedgeDelayMs, hedge_delay_ms);
  SendWire(&machine, round_index, /*to_farm=*/true, round.response_wire,
           machine.platform->clock()->NowNanos(), /*exclude=*/pending.verifier,
           /*hedge=*/true);
}

void Fleet::OnOverloadResend(size_t round_index) {
  RoundState& round = rounds_[round_index];
  if (round.resolved) {
    return;
  }
  FleetMachine& machine = *machines_[static_cast<size_t>(round.machine)];
  if (machine.dead) {
    return;
  }
  ++stats_.overload_resends;
  obs::Count(obs::Ctr::kFleetOverloadResends);
  SendWire(&machine, round_index, /*to_farm=*/true, round.response_wire,
           machine.platform->clock()->NowNanos());
}

void Fleet::OnPowerCut(const FleetPowerCut& cut) {
  FleetMachine& machine = *machines_[static_cast<size_t>(cut.machine)];
  obs::ScopedProcess process_scope(executor_.actor_pid(machine.actor));
  ++stats_.power_cuts;

  // A crash-point cut lands mid-checkpoint: the machine was sealing its next
  // generation when the cord was pulled, leaving the two-phase protocol torn
  // at the Nth crash point - exactly the PR 3 matrix, driven by the chaos
  // plan instead of a hand-enumerated sweep.
  const uint64_t next_gen = machine.checkpoint_gen + 1;
  bool seal_completed = false;
  if (cut.crash_at_hit > 0 && machine.store != nullptr) {
    FaultScheduler* scheduler = machine.platform->machine()->fault_scheduler();
    scheduler->ClearHits();
    CrashPlan plan;
    plan.crash_at_hit = cut.crash_at_hit;
    scheduler->Arm(plan);
    try {
      FaultInjectionScope scope(scheduler);
      Status sealed = machine.store->Seal(BytesOf("ckpt-" + std::to_string(next_gen)),
                                          machine.release_pcr, machine.blob_auth);
      seal_completed = sealed.ok();
    } catch (const PowerLossException&) {
      // The cut landed inside the seal; the staged write is torn mid-flight.
    }
    scheduler->Disarm();
    if (seal_completed) {
      ++stats_.checkpoints_sealed;
    }
  }

  machine.platform->machine()->PowerCut();
  // The daemon's RAM - open batch windows, queued challenges, timers - is
  // gone; the rounds parked there will time out and that is the contract.
  machine.platform->tqd()->OnPowerLoss();
  ++machine.reboots;
  Result<TpmStartupReport> startup = machine.platform->tpm()->Startup(TpmStartupType::kClear);
  if (!startup.ok()) {
    machine.dead = true;
    ++stats_.machines_dead;
    return;
  }

  // Torn-state oracle: after any reset the checkpoint store must classify
  // what it finds and serve exactly the old or the new generation - a
  // fail-closed store or wrong bytes is the invariant violation the chaos
  // fuzzer exists to catch.
  if (machine.store != nullptr) {
    ++stats_.checkpoint_recoveries;
    bool torn = false;
    Result<RecoveryClass> recovered = machine.store->Recover();
    if (!recovered.ok() || recovered.value() == RecoveryClass::kFailClosed) {
      torn = true;
    } else {
      Result<Bytes> latest = machine.store->UnsealLatest(machine.blob_auth);
      if (!latest.ok()) {
        torn = true;
      } else if (latest.value() == BytesOf("ckpt-" + std::to_string(next_gen))) {
        machine.checkpoint_gen = next_gen;
      } else if (latest.value() != BytesOf("ckpt-" + std::to_string(machine.checkpoint_gen))) {
        torn = true;  // Neither generation: the store served bytes nobody wrote.
      }
    }
    if (torn) {
      ++stats_.torn_states;
    }
  }

  // Reboot: a fresh bootstrap session re-establishes the PCR 17 expectation
  // under which this machine's future quotes verify.
  Status rebooted = BootstrapMachine(&machine);
  if (!rebooted.ok()) {
    machine.dead = true;
    ++stats_.machines_dead;
  }
}

}  // namespace sim
}  // namespace flicker
