#include "src/sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/apps/hello.h"
#include "src/core/remote_attestation.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace sim {

namespace {

// A fleet machine's memory image. The default 64 MB MachineConfig is
// infeasible a thousand times over, so the kernel is relocated to a compact
// layout just above the 64 KB SLB region at kSlbFixedBase (1 MB): text at
// 1.125 MB, a one-module set, everything inside 1.5 MB.
FlickerPlatformConfig FleetPlatformConfig(size_t tpm_key_bits) {
  FlickerPlatformConfig config;
  config.machine.memory_bytes = 0x180000;  // 1.5 MB.
  config.machine.tpm.key_bits = tpm_key_bits;
  // One shared manufacture seed: RSA key material is memoized per
  // (seed, bits), so machine #2..#N skip keygen entirely. Identity still
  // differs per machine via its own Privacy CA certificate label.
  config.kernel.text_base = 0x120000;
  config.kernel.text_size = 64 * 1024;
  config.kernel.syscall_table_base = 0x134000;
  config.kernel.syscall_table_size = 4096;
  config.kernel.modules_base = 0x136000;
  config.kernel.modules = {{"tpm_tis", 16 * 1024}};
  return config;
}

std::string F3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return std::string(buf);
}

}  // namespace

// ---- FleetStats ----

double FleetStats::SessionsPerSec() const {
  if (sim_duration_ms <= 0) {
    return 0;
  }
  return static_cast<double>(rounds_completed) * 1000.0 / sim_duration_ms;
}

double FleetStats::LatencyPercentileMs(double p) const {
  if (round_latencies_ms.empty()) {
    return 0;
  }
  std::vector<double> sorted = round_latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t index = static_cast<size_t>(rank + 0.5);
  if (index >= sorted.size()) {
    index = sorted.size() - 1;
  }
  return sorted[index];
}

double FleetStats::VerifierUtilization() const {
  if (sim_duration_ms <= 0 || num_verifiers <= 0) {
    return 0;
  }
  return verifier_busy_ms / (sim_duration_ms * num_verifiers);
}

double JainFairnessIndex(const std::vector<double>& allocations) {
  double sum = 0;
  double sum_sq = 0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq == 0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

std::string FleetStats::ToJson(const FleetConfig& config) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"fleet\": {\"machines\": " << config.num_machines
     << ", \"verifiers\": " << config.num_verifiers << ", \"rounds\": " << config.rounds
     << ", \"seed\": " << config.seed << ", \"batched_machines_bp\": " << config.batched_machines_bp
     << ", \"mean_interarrival_ms\": " << F3(config.mean_interarrival_ms) << "},\n";
  os << "  \"outcome\": {\"completed\": " << rounds_completed
     << ", \"timed_out\": " << rounds_timed_out << ", \"failed\": " << rounds_failed
     << ", \"rejected\": " << rounds_rejected << ", \"tampered_rejected\": " << tampered_rejected
     << ", \"accepted_wrong\": " << accepted_wrong << ", \"verified\": " << responses_verified
     << "},\n";
  os << "  \"chaos\": {\"partition_drops\": " << partition_drops
     << ", \"power_cuts\": " << power_cuts << ", \"machines_dead\": " << machines_dead << "},\n";
  os << "  \"throughput\": {\"sim_duration_ms\": " << F3(sim_duration_ms)
     << ", \"sessions_per_sec\": " << F3(SessionsPerSec()) << "},\n";
  os << "  \"latency_ms\": {\"p50\": " << F3(LatencyPercentileMs(0.50))
     << ", \"p90\": " << F3(LatencyPercentileMs(0.90))
     << ", \"p99\": " << F3(LatencyPercentileMs(0.99))
     << ", \"max\": " << F3(LatencyPercentileMs(1.0)) << "},\n";
  char util[64];
  std::snprintf(util, sizeof(util), "%.4f", VerifierUtilization());
  os << "  \"verifier\": {\"busy_ms\": " << F3(verifier_busy_ms) << ", \"utilization\": " << util
     << "},\n";
  os << "  \"batch\": {\"quotes\": " << batch_quotes << ", \"sizes\": {";
  bool first = true;
  for (const auto& [size, count] : batch_sizes) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "\"" << size << "\": " << count;
  }
  os << "}},\n";
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016llx", static_cast<unsigned long long>(order_digest));
  os << "  \"engine\": {\"events\": " << events_processed << ", \"cancelled\": " << events_cancelled
     << ", \"max_heap\": " << max_heap << ", \"order_digest\": \"" << digest << "\"}\n";
  os << "}\n";
  return os.str();
}

// ---- Fleet ----

Fleet::Fleet(const FleetConfig& config) : config_(config), executor_(config.seed) {}

Fleet::~Fleet() = default;

Bytes Fleet::DeriveNonce(const std::string& label, uint64_t a, uint64_t b) const {
  return Sha1::Digest(BytesOf(label + "-" + std::to_string(config_.seed) + "-" +
                              std::to_string(a) + "-" + std::to_string(b)));
}

const Bytes& Fleet::machine_session_nonce(int machine) const {
  return machines_[static_cast<size_t>(machine)]->session_nonce;
}

Status Fleet::BootstrapMachine(FleetMachine* machine) {
  SlbCoreOptions options;
  options.nonce = DeriveNonce("fleet-bootstrap", static_cast<uint64_t>(machine->id),
                              machine->reboots);
  Result<FlickerSessionResult> session =
      machine->platform->ExecuteSession(*binary_, Bytes(), options);
  if (!session.ok()) {
    return session.status();
  }
  if (!session.value().ok()) {
    return session.value().record.pal_status;
  }
  machine->session_nonce = options.nonce;
  machine->session_outputs = session.value().outputs();
  return Status::Ok();
}

bool Fleet::Partitioned(int machine, uint64_t at_ns) const {
  // Partition windows are epoch-relative (nobody writes chaos plans in
  // absolute bootstrap-skewed nanoseconds).
  const double at_ms = (static_cast<double>(at_ns) - static_cast<double>(epoch_ns_)) / 1e6;
  for (const FleetPartition& window : config_.partitions) {
    if (machine >= window.first_machine && machine <= window.last_machine &&
        at_ms >= window.start_ms && at_ms < window.end_ms) {
      return true;
    }
  }
  return false;
}

SessionExpectation Fleet::SnapshotExpectation(const RoundState& round) const {
  SessionExpectation expectation;
  expectation.binary = binary_.get();
  expectation.inputs = Bytes();
  expectation.outputs = round.snapshot_outputs;
  expectation.nonce = round.snapshot_nonce;
  return expectation;
}

Status Fleet::Build() {
  if (built_) {
    return Status::Ok();
  }
  Result<PalBinary> built = BuildPal(std::make_shared<HelloWorldPal>());
  if (!built.ok()) {
    return built.status();
  }
  binary_ = std::make_unique<PalBinary>(built.take());

  FlickerPlatformConfig platform_config = FleetPlatformConfig(config_.tpm_key_bits);
  platform_config.tqd.max_batch_size = config_.max_batch_size;
  platform_config.tqd.max_batch_wait_ms = config_.max_batch_wait_ms;

  Drbg shape(config_.seed ^ 0xF1EE7ULL);
  machines_.reserve(static_cast<size_t>(config_.num_machines));
  for (int i = 0; i < config_.num_machines; ++i) {
    auto machine = std::make_unique<FleetMachine>();
    machine->id = i;
    machine->platform = std::make_unique<FlickerPlatform>(platform_config);
    machine->channel = std::make_unique<LossyChannel>(
        &machine->wire_clock, config_.latency,
        /*jitter_seed=*/config_.seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(i) + 1)));
    if (config_.fault_mix.drop_bp != 0 || config_.fault_mix.duplicate_bp != 0 ||
        config_.fault_mix.reorder_bp != 0 || config_.fault_mix.corrupt_bp != 0 ||
        config_.fault_mix.delay_bp != 0) {
      machine->channel->set_fault_schedule(
          NetFaultSchedule(config_.fault_seed ^ static_cast<uint64_t>(i), config_.fault_mix));
    }
    machine->cert =
        ca_.Certify(machine->platform->tpm()->aik_public(), "fleet-" + std::to_string(i));
    machine->actor =
        executor_.RegisterActor("machine-" + std::to_string(i), machine->platform->clock());
    machine->batched = shape.UniformUint64(10000) < config_.batched_machines_bp;

    const int id = i;
    machine->channel->set_delivery_hook(
        [this, id](NetEndpoint dest, uint64_t seq, uint64_t arrival_ns) {
          OnWireEnqueued(id, dest, seq, arrival_ns);
        });

    // The quote daemon runs its flush windows and breaker probes as real
    // executor timers instead of waiting to be polled.
    const ActorId actor = machine->actor;
    TpmQuoteDaemon::TimerHost host;
    host.schedule = [this, actor](uint64_t delay_ns, std::function<void()> fn) {
      return executor_.ScheduleAfterLocal(actor, delay_ns, std::move(fn)).seq;
    };
    host.cancel = [this](uint64_t event_seq) { executor_.Cancel(EventId{event_seq}); };
    machine->platform->tqd()->BindTimers(
        std::move(host),
        [this, id](std::vector<BatchQuoteResponse> slices) {
          SendBatchSlices(id, std::move(slices));
        },
        /*drain_sink=*/nullptr);

    FLICKER_RETURN_IF_ERROR(BootstrapMachine(machine.get()));
    machines_.push_back(std::move(machine));
  }

  verifiers_.resize(static_cast<size_t>(config_.num_verifiers));
  for (int v = 0; v < config_.num_verifiers; ++v) {
    verifiers_[static_cast<size_t>(v)].actor = executor_.RegisterActor(
        "verifier-" + std::to_string(v), &verifiers_[static_cast<size_t>(v)].clock);
  }

  // The client starts injecting once the whole fleet is up: machine clocks
  // already sit at their bootstrap completion, so rounds injected from the
  // executor's zero would time out before any machine could even start.
  epoch_ns_ = 0;
  for (const auto& machine : machines_) {
    epoch_ns_ = std::max(epoch_ns_, machine->platform->clock()->NowNanos());
  }

  // The open-loop client: seeded Poisson arrivals, uniform target machine.
  Drbg arrivals(config_.seed ^ 0xA2217A1ULL);
  double t_ms = 0;
  rounds_.resize(static_cast<size_t>(config_.rounds));
  for (int r = 0; r < config_.rounds; ++r) {
    const double u = (static_cast<double>(arrivals.UniformUint64(1ULL << 30)) + 1.0) /
                     (static_cast<double>(1ULL << 30) + 1.0);
    t_ms += -config_.mean_interarrival_ms * std::log(u);
    RoundState& round = rounds_[static_cast<size_t>(r)];
    round.machine = static_cast<int>(
        arrivals.UniformUint64(static_cast<uint64_t>(config_.num_machines)));
    round.full_session = arrivals.UniformUint64(10000) < config_.full_session_bp;
    round.nonce = DeriveNonce("fleet-round", static_cast<uint64_t>(r), 0);
    round.arrival_ns = epoch_ns_ + static_cast<uint64_t>(t_ms * 1e6 + 0.5);
    nonce_to_round_[round.nonce] = static_cast<size_t>(r);
    const size_t round_index = static_cast<size_t>(r);
    executor_.ScheduleAt(machines_[static_cast<size_t>(round.machine)]->actor, round.arrival_ns,
                         [this, round_index] { OnArrival(round_index); });
  }
  stats_.rounds_injected = static_cast<uint64_t>(config_.rounds);

  for (const FleetPowerCut& cut : config_.power_cuts) {
    if (cut.machine < 0 || cut.machine >= config_.num_machines) {
      return InvalidArgumentError("power cut targets machine outside the fleet");
    }
    const int id = cut.machine;
    executor_.ScheduleAt(machines_[static_cast<size_t>(id)]->actor,
                         epoch_ns_ + static_cast<uint64_t>(cut.at_ms * 1e6 + 0.5),
                         [this, id] { OnPowerCut(id); });
  }

  built_ = true;
  return Status::Ok();
}

Status Fleet::Run() {
  FLICKER_RETURN_IF_ERROR(Build());
  executor_.Run();
  // Duration measured from the injection epoch: bootstrap time is a fixed
  // setup cost, not part of the steady-state throughput being reported.
  stats_.sim_duration_ms =
      static_cast<double>(executor_.NowNs() - std::min(executor_.NowNs(), epoch_ns_)) / 1e6;
  stats_.num_verifiers = config_.num_verifiers;
  stats_.verifier_busy_ms = 0;
  for (const FarmVerifier& verifier : verifiers_) {
    stats_.verifier_busy_ms += verifier.busy_ms;
  }
  stats_.events_processed = executor_.events_processed();
  stats_.events_cancelled = executor_.events_cancelled();
  stats_.max_heap = executor_.max_heap_size();
  stats_.order_digest = executor_.OrderDigest();
  return Status::Ok();
}

void Fleet::FailRound(size_t round_index) {
  RoundState& round = rounds_[round_index];
  if (round.resolved) {
    return;
  }
  round.resolved = true;
  if (round.timeout.valid()) {
    executor_.Cancel(round.timeout);
  }
  ++stats_.rounds_failed;
  obs::Count(obs::Ctr::kFleetRoundsFailed);
}

void Fleet::OnArrival(size_t round_index) {
  RoundState& round = rounds_[round_index];
  FleetMachine& machine = *machines_[static_cast<size_t>(round.machine)];
  obs::ScopedProcess process_scope(executor_.actor_pid(machine.actor));
  if (machine.dead) {
    FailRound(round_index);
    return;
  }
  round.timeout = executor_.ScheduleAt(
      machine.actor, round.arrival_ns + static_cast<uint64_t>(config_.round_timeout_ms * 1e6 + 0.5),
      [this, round_index] { OnTimeout(round_index); });

  if (round.full_session) {
    SlbCoreOptions options;
    options.nonce = DeriveNonce("fleet-session", static_cast<uint64_t>(round_index),
                                machine.reboots);
    Result<FlickerSessionResult> session =
        machine.platform->ExecuteSession(*binary_, Bytes(), options);
    if (!session.ok() || !session.value().ok()) {
      FailRound(round_index);
      return;
    }
    machine.session_nonce = options.nonce;
    machine.session_outputs = session.value().outputs();
  }

  if (machine.batched) {
    Status submitted =
        machine.platform->tqd()->SubmitBatched(round.nonce, PcrSelection({kSkinitPcr}));
    if (!submitted.ok()) {
      FailRound(round_index);
    }
    // The window's flush timer (or an inline full-window flush inside
    // SubmitBatched) carries the round from here.
    return;
  }

  Result<AttestationResponse> response =
      machine.platform->tqd()->HandleChallenge(round.nonce, PcrSelection({kSkinitPcr}));
  if (!response.ok()) {
    FailRound(round_index);
    return;
  }
  round.is_batch = false;
  round.snapshot_nonce = machine.session_nonce;
  round.snapshot_outputs = machine.session_outputs;
  SendWire(&machine, round_index, /*to_farm=*/true,
           SerializeAttestationResponse(response.value()),
           machine.platform->clock()->NowNanos());
}

void Fleet::SendBatchSlices(int machine_id, std::vector<BatchQuoteResponse> slices) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  ++stats_.batch_quotes;
  ++stats_.batch_sizes[slices.size()];
  for (BatchQuoteResponse& slice : slices) {
    auto it = nonce_to_round_.find(slice.nonce);
    if (it == nonce_to_round_.end()) {
      continue;
    }
    RoundState& round = rounds_[it->second];
    if (round.resolved) {
      continue;  // Timed out while the window coalesced.
    }
    round.is_batch = true;
    round.snapshot_nonce = machine.session_nonce;
    round.snapshot_outputs = machine.session_outputs;
    SendWire(&machine, it->second, /*to_farm=*/true, SerializeBatchQuoteResponse(slice),
             machine.platform->clock()->NowNanos());
  }
}

void Fleet::SendWire(FleetMachine* machine, size_t round_index, bool to_farm, Bytes wire,
                     uint64_t sender_now_ns) {
  // The wire's own clock is stamped to the sender's instant so arrival times
  // are sender-relative whichever side transmits.
  machine->wire_clock.AdvanceToNanos(sender_now_ns);
  const uint64_t seq = machine->channel->messages_sent() + 1;
  PendingWire pending;
  pending.round = round_index;
  pending.to_farm = to_farm;
  pending.sent = wire;
  machine->pending[seq] = std::move(pending);
  machine->channel->Send(to_farm ? NetEndpoint::kClient : NetEndpoint::kServer, wire);
}

void Fleet::OnWireEnqueued(int machine_id, NetEndpoint dest, uint64_t seq, uint64_t arrival_ns) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  if (machine.pending.find(seq) == machine.pending.end()) {
    return;
  }
  if (Partitioned(machine_id, machine.wire_clock.NowNanos())) {
    ++stats_.partition_drops;
    return;  // The rack is cut: the frame rots in flight, the round times out.
  }
  if (dest == NetEndpoint::kServer) {
    const int verifier_index =
        static_cast<int>(next_verifier_++ % static_cast<uint64_t>(config_.num_verifiers));
    executor_.ScheduleAt(verifiers_[static_cast<size_t>(verifier_index)].actor, arrival_ns,
                         [this, machine_id, seq, arrival_ns, verifier_index] {
                           OnFarmDelivery(machine_id, seq, arrival_ns, verifier_index);
                         });
  } else {
    executor_.ScheduleAt(machine.actor, arrival_ns, [this, machine_id, seq, arrival_ns] {
      OnResponseDelivery(machine_id, seq, arrival_ns);
    });
  }
}

void Fleet::OnFarmDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns, int verifier_index) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  FarmVerifier& verifier = verifiers_[static_cast<size_t>(verifier_index)];
  obs::ScopedProcess process_scope(executor_.actor_pid(verifier.actor));
  Bytes wire;
  if (!machine.channel->ReceiveScheduled(NetEndpoint::kServer, seq, arrival_ns, &wire)) {
    return;
  }
  auto pending_it = machine.pending.find(seq);
  if (pending_it == machine.pending.end()) {
    return;
  }
  const PendingWire& pending = pending_it->second;
  const RoundState& round = rounds_[pending.round];

  verifier.clock.AdvanceMillis(config_.verify_cost_ms);
  verifier.busy_ms += config_.verify_cost_ms;
  ++verifier.verified;
  ++stats_.responses_verified;
  obs::ObserveMs(obs::Hist::kFleetVerifierBusyMs, config_.verify_cost_ms);

  const bool tampered = wire != pending.sent;
  const SessionExpectation expectation = SnapshotExpectation(round);
  Status verdict = Status::Ok();
  if (round.is_batch) {
    Result<BatchQuoteResponse> parsed = DeserializeBatchQuoteResponse(wire);
    verdict = parsed.ok() ? VerifyBatchQuote(expectation, parsed.value(), machine.cert,
                                             ca_.public_key(), round.nonce)
                          : parsed.status();
  } else {
    Result<AttestationResponse> parsed = DeserializeAttestationResponse(wire);
    verdict = parsed.ok() ? VerifyAttestation(expectation, parsed.value(), machine.cert,
                                              ca_.public_key(), round.nonce)
                          : parsed.status();
  }

  if (verdict.ok()) {
    if (tampered) {
      // A tampered frame passed the full verification chain: the invariant
      // the whole stack exists to uphold just broke. Record it loudly.
      ++stats_.accepted_wrong;
      return;
    }
    // Ack back across the same wire, timed from the verifier's instant.
    SendWire(&machine, pending.round, /*to_farm=*/false, round.nonce, verifier.clock.NowNanos());
  } else if (tampered) {
    ++stats_.tampered_rejected;
  } else {
    ++stats_.rounds_rejected;
  }
}

void Fleet::OnResponseDelivery(int machine_id, uint64_t seq, uint64_t arrival_ns) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  obs::ScopedProcess process_scope(executor_.actor_pid(machine.actor));
  Bytes wire;
  if (!machine.channel->ReceiveScheduled(NetEndpoint::kClient, seq, arrival_ns, &wire)) {
    return;
  }
  auto pending_it = machine.pending.find(seq);
  if (pending_it == machine.pending.end()) {
    return;
  }
  RoundState& round = rounds_[pending_it->second.round];
  if (round.resolved) {
    return;  // A duplicated ack, or the round already timed out.
  }
  round.resolved = true;
  if (round.timeout.valid()) {
    executor_.Cancel(round.timeout);
  }
  const double latency_ms = static_cast<double>(arrival_ns - round.arrival_ns) / 1e6;
  ++stats_.rounds_completed;
  stats_.round_latencies_ms.push_back(latency_ms);
  obs::Count(obs::Ctr::kFleetSessions);
  obs::ObserveMs(obs::Hist::kFleetRoundLatencyMs, latency_ms);
}

void Fleet::OnTimeout(size_t round_index) {
  RoundState& round = rounds_[round_index];
  if (round.resolved) {
    return;
  }
  round.resolved = true;
  ++stats_.rounds_timed_out;
  obs::Count(obs::Ctr::kFleetRoundsFailed);
}

void Fleet::OnPowerCut(int machine_id) {
  FleetMachine& machine = *machines_[static_cast<size_t>(machine_id)];
  obs::ScopedProcess process_scope(executor_.actor_pid(machine.actor));
  ++stats_.power_cuts;
  machine.platform->machine()->PowerCut();
  // The daemon's RAM - open batch windows, queued challenges, timers - is
  // gone; the rounds parked there will time out and that is the contract.
  machine.platform->tqd()->OnPowerLoss();
  ++machine.reboots;
  Result<TpmStartupReport> startup = machine.platform->tpm()->Startup(TpmStartupType::kClear);
  if (!startup.ok()) {
    machine.dead = true;
    ++stats_.machines_dead;
    return;
  }
  // Reboot: a fresh bootstrap session re-establishes the PCR 17 expectation
  // under which this machine's future quotes verify.
  Status rebooted = BootstrapMachine(&machine);
  if (!rebooted.ok()) {
    machine.dead = true;
    ++stats_.machines_dead;
  }
}

}  // namespace sim
}  // namespace flicker
