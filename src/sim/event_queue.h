// The event heap at the heart of the discrete-event engine.
//
// Events are ordered by the key (at_ns, tiebreak, seq): simulated time
// first, then a seeded tiebreak so that *simultaneous* events from
// different schedulers interleave differently per seed (the fleet harness
// uses this to explore multi-party attestation interleavings by seed), and
// finally the monotonic schedule sequence number so the order is total and
// bit-exactly reproducible.
//
// Cancellation is lazy: Cancel() marks the sequence number dead and Pop()
// skips tombstones, so cancelling a pending timer (a batch window that
// filled early, a round timeout that completed) is O(1).

#ifndef FLICKER_SRC_SIM_EVENT_QUEUE_H_
#define FLICKER_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace flicker {
namespace sim {

// Handle to one scheduled event; seq 0 means "no event".
struct EventId {
  uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

struct ScheduledEvent {
  uint64_t at_ns = 0;
  uint64_t tiebreak = 0;  // SplitMix64(seed ^ seq): the seeded interleaving.
  uint64_t seq = 0;       // 1-based schedule order; final total-order key.
  int actor = -1;         // Executor actor the event dispatches to (-1 = none).
  std::function<void()> fn;
};

class EventQueue {
 public:
  explicit EventQueue(uint64_t seed) : seed_(seed) {}

  EventId Schedule(uint64_t at_ns, int actor, std::function<void()> fn);

  // Marks a pending event dead. Returns false when the event already fired,
  // was already cancelled, or never existed.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }
  // Earliest pending event time; false when the queue is empty.
  bool PeekTime(uint64_t* at_ns) const;
  // Pops the earliest live event. Caller must check !empty() first.
  ScheduledEvent Pop();

  uint64_t scheduled() const { return next_seq_ - 1; }
  uint64_t cancelled() const { return cancelled_count_; }
  size_t max_size() const { return max_size_; }

 private:
  struct HeapEntry {
    uint64_t at_ns;
    uint64_t tiebreak;
    uint64_t seq;
  };
  // Min-heap comparison: std::push_heap builds a max-heap, so invert.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
      if (a.tiebreak != b.tiebreak) return a.tiebreak > b.tiebreak;
      return a.seq > b.seq;
    }
  };
  struct Payload {
    int actor;
    std::function<void()> fn;
  };

  void DropDeadTop();

  uint64_t seed_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  size_t max_size_ = 0;
  uint64_t cancelled_count_ = 0;
  std::vector<HeapEntry> heap_;
  std::unordered_set<uint64_t> dead_;
  // Payloads keyed by seq, parallel to the heap; erased on pop/cancel.
  std::unordered_map<uint64_t, Payload> payloads_;
};

}  // namespace sim
}  // namespace flicker

#endif  // FLICKER_SRC_SIM_EVENT_QUEUE_H_
