#include "src/vtpm/vtpm_manager.h"

#include <utility>

#include "src/common/fault.h"
#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {
namespace vtpm {

VtpmManager::VtpmManager(Machine* machine, VtpmManagerConfig config)
    : machine_(machine), config_(std::move(config)) {}

bool VtpmManager::TenantQuarantined(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.quarantined;
}

bool VtpmManager::TenantResident(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.resident != nullptr;
}

size_t VtpmManager::resident_count() const {
  size_t count = 0;
  for (const auto& [name, record] : tenants_) {
    if (record.resident != nullptr) {
      ++count;
    }
  }
  return count;
}

std::vector<std::string> VtpmManager::TenantNames() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, record] : tenants_) {
    names.push_back(name);
  }
  return names;
}

CrashConsistentSealedStore* VtpmManager::StoreForTest(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.store.get();
}

void VtpmManager::Quarantine(const std::string& tenant, TenantRecord* record) {
  record->quarantined = true;
  record->resident.reset();
  (void)tenant;
  obs::Instant("vtpm", "vtpm.quarantine");
}

Status VtpmManager::CreateTenant(const std::string& tenant, const Bytes& owner_auth) {
  if (tenant.empty() || tenant.size() > kMaxTenantNameLen) {
    return InvalidArgumentError("tenant name empty or too long");
  }
  if (owner_auth.size() != kVtpmDigestSize) {
    return InvalidArgumentError("tenant owner auth must be 20 bytes");
  }
  if (tenants_.count(tenant) != 0) {
    return FailedPreconditionError("tenant already exists: " + tenant);
  }
  Result<CrashConsistentSealedStore> store = CrashConsistentSealedStore::Create(
      machine_->tpm(), Sha1::Digest(BytesOf("vtpm-ctr-" + tenant)), config_.owner_secret);
  if (!store.ok()) {
    return store.status();
  }
  TenantRecord& record = tenants_[tenant];
  record.store = std::make_unique<CrashConsistentSealedStore>(store.take());
  // A crash here leaves a store with no committed snapshot; RecoverAll rolls
  // the half-created tenant back by dropping its record.
  CRASH_POINT("vtpm.create.provisioned");

  Bytes key_seed = machine_->tpm()->GetRandom(kVtpmDigestSize);
  record.resident = std::make_unique<VirtualTpm>(VtpmState::Fresh(tenant, owner_auth, key_seed));
  record.last_used = ++lru_tick_;
  Status sealed = SnapshotRecord(tenant, &record);
  if (!sealed.ok()) {
    return sealed;
  }
  return EvictLruIfNeeded();
}

Status VtpmManager::SnapshotRecord(const std::string& tenant, TenantRecord* record) {
  obs::ScopedSpan span("vtpm", "vtpm.snapshot");
  VirtualTpm* vt = record->resident.get();
  Result<uint64_t> live = machine_->tpm()->ReadCounter(record->store->counter_id());
  if (!live.ok()) {
    return live.status();
  }
  VtpmState next = vt->state();
  next.generation += 1;
  next.binding.counter_id = record->store->counter_id();
  // The store's Seal increments the counter exactly once; bind the snapshot
  // to the post-commit reading, so it is live iff that seal committed and no
  // later snapshot superseded it.
  next.binding.counter_value = live.value() + 1;
  next.binding.tenant_tag = TenantTag(tenant);
  Bytes wire = next.Serialize();
  CRASH_POINT("vtpm.snapshot.serialized");
  Status sealed = record->store->Seal(wire, config_.release_pcr17, config_.blob_auth);
  if (!sealed.ok()) {
    return sealed;
  }
  CRASH_POINT("vtpm.snapshot.sealed");
  *vt->mutable_state() = std::move(next);
  obs::Count(obs::Ctr::kVtpmSnapshots);
  return Status::Ok();
}

Status VtpmManager::SnapshotTenant(const std::string& tenant) {
  Result<VirtualTpm*> vt = ResidentTenant(tenant);
  if (!vt.ok()) {
    return vt.status();
  }
  return SnapshotRecord(tenant, &tenants_[tenant]);
}

Status VtpmManager::Extend(const std::string& tenant, int index, const Bytes& owner_auth,
                           const Bytes& measurement) {
  Result<VirtualTpm*> vt = ResidentTenant(tenant);
  if (!vt.ok()) {
    return vt.status();
  }
  if (!vt.value()->CheckOwnerAuth(owner_auth)) {
    return PermissionDeniedError("tenant owner auth mismatch: " + tenant);
  }
  FLICKER_RETURN_IF_ERROR(vt.value()->Extend(index, measurement));
  // RAM-only until the next snapshot: a crash here loses the extend, never
  // tears durable state.
  CRASH_POINT("vtpm.extend.applied");
  obs::Count(obs::Ctr::kVtpmExtends);
  return Status::Ok();
}

Status VtpmManager::EvictTenant(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return NotFoundError("no such tenant: " + tenant);
  }
  if (it->second.resident == nullptr) {
    return Status::Ok();
  }
  FLICKER_RETURN_IF_ERROR(SnapshotRecord(tenant, &it->second));
  it->second.resident.reset();
  CRASH_POINT("vtpm.evict.dropped");
  return Status::Ok();
}

Status VtpmManager::EvictLruIfNeeded() {
  while (resident_count() > config_.max_resident) {
    const std::string* lru = nullptr;
    uint64_t oldest = 0;
    for (const auto& [name, record] : tenants_) {
      if (record.resident != nullptr && (lru == nullptr || record.last_used < oldest)) {
        lru = &name;
        oldest = record.last_used;
      }
    }
    if (lru == nullptr) {
      return Status::Ok();
    }
    FLICKER_RETURN_IF_ERROR(EvictTenant(*lru));
  }
  return Status::Ok();
}

Result<VirtualTpm*> VtpmManager::LoadRecord(const std::string& tenant, TenantRecord* record) {
  if (record->quarantined) {
    return RollbackDetectedError("tenant quarantined: " + tenant);
  }
  if (record->resident != nullptr) {
    record->last_used = ++lru_tick_;
    return record->resident.get();
  }
  Result<Bytes> wire = record->store->UnsealLatest(config_.blob_auth);
  if (!wire.ok()) {
    if (wire.status().code() == StatusCode::kReplayDetected) {
      // Check 1 fired: the sealed payload's version is not the live counter.
      ++rollbacks_detected_;
      obs::Count(obs::Ctr::kVtpmRollbacksDetected);
      Quarantine(tenant, record);
      return RollbackDetectedError("stale vTPM snapshot for tenant " + tenant + ": " +
                                   wire.status().message());
    }
    return wire.status();
  }
  Result<VtpmState> state = VtpmState::Deserialize(wire.value());
  if (!state.ok()) {
    Quarantine(tenant, record);
    return IntegrityFailureError("tenant state blob corrupt: " + state.status().ToString());
  }
  // Check 2: the counter binding inside the state must name this store's
  // counter at its exact live reading.
  Result<uint64_t> live = machine_->tpm()->ReadCounter(record->store->counter_id());
  if (!live.ok()) {
    return live.status();
  }
  if (state.value().binding.counter_id != record->store->counter_id() ||
      state.value().binding.counter_value != live.value() ||
      state.value().binding.tenant_tag != TenantTag(tenant)) {
    ++rollbacks_detected_;
    obs::Count(obs::Ctr::kVtpmRollbacksDetected);
    Quarantine(tenant, record);
    return RollbackDetectedError("counter binding mismatch for tenant " + tenant);
  }
  record->resident = std::make_unique<VirtualTpm>(state.take());
  record->last_used = ++lru_tick_;
  FLICKER_RETURN_IF_ERROR(EvictLruIfNeeded());
  return record->resident.get();
}

Result<VirtualTpm*> VtpmManager::ResidentTenant(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return NotFoundError("no such tenant: " + tenant);
  }
  return LoadRecord(tenant, &it->second);
}

Status VtpmManager::RecoverAll() {
  obs::ScopedSpan span("vtpm", "vtpm.recover_all");
  Status first = Status::Ok();
  std::vector<std::string> rolled_back_creates;
  for (auto& [tenant, record] : tenants_) {
    Result<RecoveryClass> recovered = record.store->Recover();
    obs::Count(obs::Ctr::kVtpmRecoveries);
    if (!recovered.ok() || recovered.value() == RecoveryClass::kFailClosed) {
      Quarantine(tenant, &record);
      if (first.ok()) {
        first = recovered.ok() ? IntegrityFailureError("tenant store failed closed: " + tenant)
                               : recovered.status();
      }
      continue;
    }
    // The recovery decision itself is a durability boundary the double-fault
    // suite sweeps: a second cut here must leave the next RecoverAll able to
    // reach the same classification.
    CRASH_POINT("vtpm.recover.restored");
    if (!record.store->has_committed()) {
      // A create that crashed before its first snapshot committed: no
      // durable state ever existed, so the tenant rolls back to nonexistence.
      rolled_back_creates.push_back(tenant);
    }
  }
  for (const std::string& tenant : rolled_back_creates) {
    tenants_.erase(tenant);
  }
  return first;
}

void VtpmManager::OnPowerLoss() {
  for (auto& [tenant, record] : tenants_) {
    record.resident.reset();
  }
}

}  // namespace vtpm
}  // namespace flicker
