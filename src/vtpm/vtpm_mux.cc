#include "src/vtpm/vtpm_mux.h"

#include <utility>

#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace vtpm {

VtpmMultiplexer::VtpmMultiplexer(VtpmManager* manager, TpmQuoteDaemon* tqd, VtpmMuxConfig config)
    : manager_(manager), tqd_(tqd), config_(config) {}

uint64_t VtpmMultiplexer::NowMicros() const {
  return manager_->machine()->clock()->NowMicros();
}

Bytes VtpmMultiplexer::BoundNonce(const Bytes& tenant_tag, const Bytes& composite,
                                  const Bytes& nonce) {
  Sha1 hash;
  hash.Update(BytesOf("vtpm-quote"));
  hash.Update(tenant_tag);
  hash.Update(composite);
  hash.Update(nonce);
  return hash.Finish();
}

bool VtpmMultiplexer::TenantBreakerOpen(const std::string& tenant) const {
  auto it = lanes_.find(tenant);
  return it != lanes_.end() && it->second.breaker_open;
}

bool VtpmMultiplexer::LaneAllows(TenantLane* lane) {
  if (!lane->breaker_open) {
    return true;
  }
  double open_ms =
      static_cast<double>(NowMicros() - lane->breaker_opened_at_us) / 1000.0;
  if (open_ms < config_.breaker_cooldown_ms) {
    return false;
  }
  // Half-open: let traffic probe again; the next failure re-opens with a
  // fresh cooldown, so a still-sick tenant stays rate-limited.
  lane->breaker_open = false;
  lane->consecutive_failures = 0;
  lane->overflow_streak = 0;
  return true;
}

void VtpmMultiplexer::OpenBreaker(const std::string& tenant, TenantLane* lane) {
  if (lane->breaker_open) {
    return;
  }
  lane->breaker_open = true;
  lane->breaker_opened_at_us = NowMicros();
  ++quarantines_total_;
  ++counters_[tenant].breaker_trips;
  obs::Count(obs::Ctr::kVtpmQuarantines);
  obs::Instant("vtpm", "vtpm.breaker_open");
}

void VtpmMultiplexer::NoteFailure(const std::string& tenant, TenantLane* lane) {
  ++lane->consecutive_failures;
  if (lane->consecutive_failures >= config_.breaker_threshold) {
    OpenBreaker(tenant, lane);
  }
}

void VtpmMultiplexer::Complete(VtpmQuoteCompletion completion) {
  VtpmTenantCounters& counters = counters_[completion.tenant];
  if (completion.status.ok()) {
    ++counters.completed;
    obs::Count(obs::Ctr::kVtpmQuotes);
  } else if (completion.status.code() == StatusCode::kUnavailable) {
    ++counters.shed;
  } else {
    ++counters.failed;
  }
  if (completion.queue_age_ms > counters.max_queue_age_ms) {
    counters.max_queue_age_ms = completion.queue_age_ms;
  }
  obs::ObserveMs(obs::Hist::kVtpmQueueAgeMs, completion.queue_age_ms);
  if (sink_) {
    sink_(completion);
  }
}

void VtpmMultiplexer::Shed(const std::string& tenant, const PendingRequest& request,
                           double queue_age_ms, const std::string& why) {
  ++shed_total_;
  obs::Count(obs::Ctr::kVtpmShed);
  VtpmQuoteCompletion completion;
  completion.tenant = tenant;
  completion.nonce = request.nonce;
  completion.status = UnavailableError("vtpm request shed: " + why);
  completion.queue_age_ms = queue_age_ms;
  Complete(std::move(completion));
}

Status VtpmMultiplexer::Submit(const std::string& tenant, const Bytes& nonce,
                               const Bytes& owner_auth) {
  TenantLane& lane = lanes_[tenant];
  ++counters_[tenant].submitted;
  if (!LaneAllows(&lane)) {
    ++shed_total_;
    ++counters_[tenant].shed;
    obs::Count(obs::Ctr::kVtpmShed);
    return UnavailableError("tenant breaker open: " + tenant);
  }
  if (lane.queue.size() >= config_.max_queue_per_tenant) {
    ++shed_total_;
    ++counters_[tenant].shed;
    obs::Count(obs::Ctr::kVtpmShed);
    // Sustained overflow is the flooding signature: quarantine the lane so
    // the flood degrades to shed-at-submit.
    if (++lane.overflow_streak >= config_.flood_threshold) {
      OpenBreaker(tenant, &lane);
    }
    return UnavailableError("tenant queue full: " + tenant);
  }
  lane.overflow_streak = 0;
  PendingRequest request;
  request.nonce = nonce;
  request.owner_auth = owner_auth;
  request.enqueued_at_us = NowMicros();
  lane.queue.push_back(std::move(request));
  return Status::Ok();
}

bool VtpmMultiplexer::HasPending() const {
  for (const auto& [tenant, lane] : lanes_) {
    if (!lane.queue.empty()) {
      return true;
    }
  }
  return false;
}

size_t VtpmMultiplexer::pending_count() const {
  size_t total = 0;
  for (const auto& [tenant, lane] : lanes_) {
    total += lane.queue.size();
  }
  return total;
}

void VtpmMultiplexer::DispatchOne(const std::string& tenant, TenantLane* lane) {
  obs::ScopedSpan span("vtpm", "vtpm.dispatch");
  PendingRequest request = std::move(lane->queue.front());
  lane->queue.pop_front();
  const double queue_age_ms =
      static_cast<double>(NowMicros() - request.enqueued_at_us) / 1000.0;

  if (!LaneAllows(lane)) {
    Shed(tenant, request, queue_age_ms, "breaker opened while queued");
    return;
  }
  if (config_.max_queue_age_ms > 0 && queue_age_ms > config_.max_queue_age_ms) {
    // The challenger has long since timed out; don't burn a hardware turn.
    Shed(tenant, request, queue_age_ms, "deadline exceeded in queue");
    return;
  }

  VtpmQuoteCompletion completion;
  completion.tenant = tenant;
  completion.nonce = request.nonce;
  completion.queue_age_ms = queue_age_ms;

  Result<VirtualTpm*> vt = manager_->ResidentTenant(tenant);
  if (!vt.ok()) {
    completion.status = vt.status();
    NoteFailure(tenant, lane);
    Complete(std::move(completion));
    return;
  }
  if (!vt.value()->CheckOwnerAuth(request.owner_auth)) {
    completion.status = PermissionDeniedError("tenant owner auth mismatch: " + tenant);
    NoteFailure(tenant, lane);
    Complete(std::move(completion));
    return;
  }

  completion.composite = vt.value()->CompositeDigest();
  completion.bound_nonce =
      BoundNonce(TenantTag(tenant), completion.composite, request.nonce);
  Result<AttestationResponse> response = tqd_->HandleChallenge(
      completion.bound_nonce, PcrSelection({kSkinitPcr}), config_.tenant_deadline_ms);
  if (!response.ok()) {
    completion.status = response.status();
    NoteFailure(tenant, lane);
    Complete(std::move(completion));
    return;
  }
  lane->consecutive_failures = 0;
  completion.status = Status::Ok();
  completion.response = response.take();
  Complete(std::move(completion));
}

bool VtpmMultiplexer::PumpOne() {
  if (lanes_.empty()) {
    return false;
  }
  // Round-robin: resume just past the cursor, wrapping once.
  auto start = lanes_.upper_bound(cursor_);
  for (size_t step = 0; step < lanes_.size(); ++step) {
    if (start == lanes_.end()) {
      start = lanes_.begin();
    }
    if (!start->second.queue.empty()) {
      cursor_ = start->first;
      DispatchOne(start->first, &start->second);
      return true;
    }
    ++start;
  }
  return false;
}

void VtpmMultiplexer::PumpAll() {
  while (PumpOne()) {
  }
}

void VtpmMultiplexer::OnPowerLoss() {
  for (auto& [tenant, lane] : lanes_) {
    lane.queue.clear();
    // Breaker state is RAM too; a rebooted multiplexer starts every tenant
    // closed and re-learns the faulty ones.
    lane.breaker_open = false;
    lane.consecutive_failures = 0;
    lane.overflow_streak = 0;
  }
}

}  // namespace vtpm
}  // namespace flicker
