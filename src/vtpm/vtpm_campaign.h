// The vTPM noisy-neighbor + power-cut chaos campaign, run under the
// discrete-event fleet engine.
//
// One machine hosts the manager + multiplexer; N tenant clients inject
// seeded Poisson quote rounds against it. Two tenants misbehave on purpose:
// a flooding tenant arriving orders of magnitude faster than its queue
// drains, and a crash-looping tenant whose every request carries a wrong
// owner auth. Scheduled power cuts wipe RAM (queues, resident vTPMs) and
// force the recovery path mid-campaign.
//
// The campaign's own verifier checks every accepted quote from its OWN
// records: the AIK signature over TPM_QUOTE_INFO, and that the signed
// externalData equals the bound nonce recomputed from the client's original
// challenge and the tenant's expected vPCR composite. accepted_wrong counts
// quotes that verify but answer something the client never asked -
// the invariant that must stay zero.
//
// Pass criteria the tests and the --vtpm verify campaign assert:
// healthy tenants complete 100% of their rounds with bounded p99, the
// misbehaving tenants are quarantined instead of wedging the hardware, and
// the same seed reproduces the same JSON byte for byte.

#ifndef FLICKER_SRC_VTPM_VTPM_CAMPAIGN_H_
#define FLICKER_SRC_VTPM_VTPM_CAMPAIGN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/vtpm/vtpm_mux.h"

namespace flicker {
namespace vtpm {

struct VtpmCampaignConfig {
  uint64_t seed = 1;
  int num_tenants = 6;
  // Indices into the tenant list; -1 disables the role.
  int flooding_tenant = 0;
  int crashloop_tenant = 1;
  // Arrival horizon (sim ms past the setup epoch) and per-tenant Poisson
  // mean inter-arrival times. A hardware quote costs ~972 ms of sim time
  // (Table 1), so the flood mean is far under service time by design.
  double duration_ms = 120000.0;
  double healthy_mean_interarrival_ms = 6000.0;
  double flood_mean_interarrival_ms = 120.0;
  size_t max_flood_arrivals = 1200;  // Hard cap on flood event count.
  std::vector<double> power_cut_at_ms;  // Offsets past the epoch.
  // Healthy-client retry loop: attempts, linear backoff, round timeout.
  int max_attempts_per_round = 8;
  double client_retry_backoff_ms = 2000.0;
  double client_timeout_ms = 30000.0;
  size_t tpm_key_bits = 512;  // Small keys: sim latency is charged, not computed.
  size_t max_resident = 4;    // Manager working set (forces LRU evictions).
  VtpmMuxConfig mux;
};

struct VtpmTenantCampaignStats {
  uint64_t injected = 0;   // Rounds this tenant's client started.
  uint64_t completed = 0;  // Verified quote received.
  uint64_t failed = 0;     // Gave up (attempts exhausted / expected failure).
  uint64_t shed = 0;       // Mux-level sheds (from the mux counters).
  uint64_t breaker_trips = 0;
  double max_queue_age_ms = 0;
};

struct VtpmCampaignStats {
  std::vector<VtpmTenantCampaignStats> tenants;  // Index = tenant number.
  uint64_t responses_verified = 0;
  uint64_t rejected = 0;        // Signature/verification failures (expect 0).
  uint64_t accepted_wrong = 0;  // INVARIANT: must stay zero.
  uint64_t rollbacks_detected = 0;
  uint64_t quarantines = 0;
  uint64_t shed_total = 0;
  uint64_t power_cuts = 0;
  uint64_t client_retries = 0;
  std::vector<double> healthy_latencies_ms;  // Completion order.
  double sim_duration_ms = 0;
  uint64_t events_processed = 0;
  size_t max_heap = 0;
  uint64_t order_digest = 0;

  // Over tenants that are neither flooding nor crash-looping.
  double HealthyCompletionRate(const VtpmCampaignConfig& config) const;
  double HealthyJainIndex(const VtpmCampaignConfig& config) const;
  // Nearest-rank percentile over healthy round latencies, 0 when none.
  double HealthyLatencyPercentileMs(double p) const;

  // The BENCH_vtpm.json payload: stable key order, fixed precision, so two
  // same-seed runs compare byte-identical with cmp(1).
  std::string ToJson(const VtpmCampaignConfig& config) const;
};

// Builds the platform + tenants, runs the campaign to completion, and
// returns the stats. Deterministic in `config.seed`.
Result<VtpmCampaignStats> RunVtpmCampaign(const VtpmCampaignConfig& config);

}  // namespace vtpm
}  // namespace flicker

#endif  // FLICKER_SRC_VTPM_VTPM_CAMPAIGN_H_
