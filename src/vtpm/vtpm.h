// One resident virtual TPM: the in-RAM working copy of a tenant's VtpmState.
//
// A VirtualTpm is pure software state - extends, reads and key derivation
// touch no hardware. Durability comes from the manager snapshotting the
// state back through the crash-consistent store; a power cut simply loses
// whatever extends happened after the last snapshot, exactly like a real
// vTPM whose backing write had not landed yet.

#ifndef FLICKER_SRC_VTPM_VTPM_H_
#define FLICKER_SRC_VTPM_VTPM_H_

#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/vtpm/vtpm_state.h"

namespace flicker {
namespace vtpm {

class VirtualTpm {
 public:
  explicit VirtualTpm(VtpmState state) : state_(std::move(state)) {}

  const VtpmState& state() const { return state_; }
  VtpmState* mutable_state() { return &state_; }
  const std::string& tenant() const { return state_.tenant; }

  // vPCR extend with hardware semantics: new = SHA1(old || measurement).
  Status Extend(int index, const Bytes& measurement);
  Result<Bytes> PcrRead(int index) const;

  // SHA-1 over the concatenated vPCR bank: what a tenant quote covers.
  Bytes CompositeDigest() const;

  // Tenant key hierarchy: HMAC-SHA1(key_seed, label). Deterministic per
  // (snapshot, label), so a rolled-back snapshot would re-derive old keys -
  // which is precisely what the counter binding exists to prevent.
  Bytes DeriveKey(const std::string& label) const;

  // Constant-time owner-auth gate for tenant operations.
  bool CheckOwnerAuth(const Bytes& auth) const;

 private:
  VtpmState state_;
};

}  // namespace vtpm
}  // namespace flicker

#endif  // FLICKER_SRC_VTPM_VTPM_H_
