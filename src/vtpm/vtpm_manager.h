// VtpmManager: vtpmmgr-style multiplexing of N per-tenant virtual TPMs over
// the one hardware TPM.
//
// Every tenant owns a CrashConsistentSealedStore (its own hardware monotonic
// counter) holding the tenant's sealed VtpmState. The manager's in-RAM
// VirtualTpm instances are a bounded working set (LRU-evicted at
// max_resident); the stores' staged/committed slots model the untrusted
// disk, so they survive machine resets while resident instances do not.
//
// Rollback defense, twice over:
//   1. The store's two-phase seal embeds the counter version in the sealed
//      payload; UnsealLatest rejects any blob whose version is not the live
//      counter reading (kReplayDetected).
//   2. The VtpmState inside carries a VtpmCounterBinding naming the counter
//      and the exact value it must read; LoadTenant re-checks it after
//      unsealing. Either check failing maps to kRollbackDetected and
//      quarantines the tenant fail-closed: a stale snapshot must never
//      attest, derive keys, or accept extends.
//
// Durability boundaries are CRASH_POINT-instrumented (create / extend /
// snapshot-serialize / snapshot-seal / evict / recover) and swept by the
// vTPM crash matrix.

#ifndef FLICKER_SRC_VTPM_VTPM_MANAGER_H_
#define FLICKER_SRC_VTPM_VTPM_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/sealed_state.h"
#include "src/hw/machine.h"
#include "src/vtpm/vtpm.h"

namespace flicker {
namespace vtpm {

struct VtpmManagerConfig {
  // Resident working-set bound; the least recently used tenant is
  // snapshot-evicted when a load would exceed it.
  size_t max_resident = 4;
  // Hardware TPM owner secret (counter creation is owner-authorized).
  Bytes owner_secret;
  // Usage secret on every tenant's sealed snapshot.
  Bytes blob_auth;
  // PCR 17 value the group seal binds to (the manager PAL's identity; tests
  // bind to the current OS-context value, like the crash matrix does).
  Bytes release_pcr17;
};

class VtpmManager {
 public:
  VtpmManager(Machine* machine, VtpmManagerConfig config);

  // Provisions a tenant: dedicated store + counter, fresh VtpmState
  // (key seed drawn from the hardware TPM's RNG), initial snapshot sealed.
  Status CreateTenant(const std::string& tenant, const Bytes& owner_auth);

  // Owner-authorized vPCR extend on the resident instance (RAM only; made
  // durable by the next snapshot).
  Status Extend(const std::string& tenant, int index, const Bytes& owner_auth,
                const Bytes& measurement);

  // Serializes the resident state (generation+1, counter binding re-bound to
  // the post-seal counter value) and seals it through the tenant's store.
  Status SnapshotTenant(const std::string& tenant);

  // Snapshot, then drop the resident instance (working-set management).
  Status EvictTenant(const std::string& tenant);

  // Loads (unseal + deserialize + binding check) the tenant if not resident;
  // returns the live instance. kRollbackDetected quarantines the tenant.
  Result<VirtualTpm*> ResidentTenant(const std::string& tenant);

  // Post-reset recovery: runs every tenant store's Recover() and verifies
  // each tenant still loads. Tenants whose state fails the rollback or
  // recovery checks are quarantined; healthy tenants keep running. The
  // returned status is the first failure, after every tenant was attempted.
  Status RecoverAll();

  // Power-domain hook: resident instances lived in RAM.
  void OnPowerLoss();

  bool TenantExists(const std::string& tenant) const { return tenants_.count(tenant) != 0; }
  bool TenantQuarantined(const std::string& tenant) const;
  bool TenantResident(const std::string& tenant) const;
  size_t resident_count() const;
  std::vector<std::string> TenantNames() const;
  uint64_t rollbacks_detected() const { return rollbacks_detected_; }

  Machine* machine() { return machine_; }

  // The untrusted disk, for rollback-attack tests: lets a test capture and
  // restore a tenant's staged/committed slots around a later snapshot.
  CrashConsistentSealedStore* StoreForTest(const std::string& tenant);

 private:
  struct TenantRecord {
    // Disk surface: survives resets.
    std::unique_ptr<CrashConsistentSealedStore> store;
    // RAM surface: cleared by OnPowerLoss.
    std::unique_ptr<VirtualTpm> resident;
    uint64_t last_used = 0;  // LRU tick.
    bool quarantined = false;
  };

  Status SnapshotRecord(const std::string& tenant, TenantRecord* record);
  Result<VirtualTpm*> LoadRecord(const std::string& tenant, TenantRecord* record);
  Status EvictLruIfNeeded();
  void Quarantine(const std::string& tenant, TenantRecord* record);

  Machine* machine_;
  VtpmManagerConfig config_;
  std::map<std::string, TenantRecord> tenants_;  // Sorted: deterministic sweeps.
  uint64_t lru_tick_ = 0;
  uint64_t rollbacks_detected_ = 0;
};

}  // namespace vtpm
}  // namespace flicker

#endif  // FLICKER_SRC_VTPM_VTPM_MANAGER_H_
