// VtpmMultiplexer: the fair scheduler between N tenants and the one
// hardware TPM.
//
// Each tenant gets its own bounded FIFO queue; a deficit round-robin cursor
// dispatches one request at a time through the quote daemon, so a flooding
// tenant can fill only its own queue while every other tenant still gets
// its turn each rotation. Tenant faults stay the tenant's problem:
//
//   - per-tenant deadline: a request older than max_queue_age_ms at
//     dispatch is shed (kUnavailable), and the hardware retry loop runs
//     under a per-tenant deadline override rather than the global one;
//   - per-tenant circuit breaker: consecutive failures (bad owner auth,
//     rollback quarantine, hardware timeouts attributable to the tenant)
//     open the breaker; a breaker-open tenant's traffic is shed with
//     kUnavailable until the cooldown expires, so a crash-looping tenant
//     cannot consume hardware turns;
//   - flood quarantine: sustained queue overflow trips the same breaker, so
//     a flooding tenant degrades to shed-at-submit instead of queue churn.
//
// The quote a tenant receives is a real hardware quote whose externalData
// nonce binds the tenant's virtual PCR bank:
//   bound_nonce = SHA1("vtpm-quote" || tenant_tag || vPCR composite || nonce)
// so one hardware AIK serves every tenant while a verifier that recomputes
// the bound nonce from its own challenge still gets per-tenant freshness
// and vPCR binding.

#ifndef FLICKER_SRC_VTPM_VTPM_MUX_H_
#define FLICKER_SRC_VTPM_VTPM_MUX_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/os/tqd.h"
#include "src/vtpm/vtpm_manager.h"

namespace flicker {
namespace vtpm {

struct VtpmMuxConfig {
  size_t max_queue_per_tenant = 8;
  // Shed a queued request older than this at dispatch time (0 = unlimited).
  double max_queue_age_ms = 20000.0;
  // Per-tenant hardware retry budget, passed through to the quote daemon.
  double tenant_deadline_ms = 8000.0;
  // Per-tenant breaker: consecutive failures that open it, and how long
  // (simulated ms) the tenant stays quarantined before traffic may resume.
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 5000.0;
  // Queue-overflow events that count as flooding and trip the breaker.
  int flood_threshold = 16;
};

// Everything the completion sink learns about one finished request.
struct VtpmQuoteCompletion {
  std::string tenant;
  Bytes nonce;        // The challenger's original nonce.
  Bytes bound_nonce;  // What the hardware quote actually signs.
  Bytes composite;    // The tenant's vPCR composite the binding covered.
  Status status;
  AttestationResponse response;  // Meaningful iff status.ok().
  double queue_age_ms = 0;       // Enqueue to dispatch.
};

struct VtpmTenantCounters {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;     // kUnavailable: breaker, overflow, or deadline.
  uint64_t failed = 0;   // Any other terminal failure.
  uint64_t breaker_trips = 0;
  double max_queue_age_ms = 0;
};

class VtpmMultiplexer {
 public:
  using CompletionSink = std::function<void(const VtpmQuoteCompletion&)>;

  VtpmMultiplexer(VtpmManager* manager, TpmQuoteDaemon* tqd, VtpmMuxConfig config);

  void set_sink(CompletionSink sink) { sink_ = std::move(sink); }

  // Enqueues a quote request. Shed immediately (kUnavailable, counted) when
  // the tenant's breaker is open or its queue is full; accepted requests
  // complete through the sink when the pump dispatches them.
  Status Submit(const std::string& tenant, const Bytes& nonce, const Bytes& owner_auth);

  // Dispatches at most one queued request, advancing the round-robin cursor.
  // Returns true if any work (dispatch or shed) happened.
  bool PumpOne();
  // Pumps until every queue is empty.
  void PumpAll();

  bool HasPending() const;
  size_t pending_count() const;

  // Power-domain hook: queues lived in RAM; challengers re-issue.
  void OnPowerLoss();

  const std::map<std::string, VtpmTenantCounters>& tenant_counters() const { return counters_; }
  uint64_t shed_total() const { return shed_total_; }
  uint64_t quarantines_total() const { return quarantines_total_; }
  bool TenantBreakerOpen(const std::string& tenant) const;

  static Bytes BoundNonce(const Bytes& tenant_tag, const Bytes& composite, const Bytes& nonce);

 private:
  struct PendingRequest {
    Bytes nonce;
    Bytes owner_auth;
    uint64_t enqueued_at_us = 0;
  };
  struct TenantLane {
    std::deque<PendingRequest> queue;
    int consecutive_failures = 0;
    int overflow_streak = 0;
    bool breaker_open = false;
    uint64_t breaker_opened_at_us = 0;
  };

  uint64_t NowMicros() const;
  bool LaneAllows(TenantLane* lane);  // Closed, or cooldown expired.
  void NoteFailure(const std::string& tenant, TenantLane* lane);
  void OpenBreaker(const std::string& tenant, TenantLane* lane);
  void Shed(const std::string& tenant, const PendingRequest& request, double queue_age_ms,
            const std::string& why);
  void Complete(VtpmQuoteCompletion completion);
  void DispatchOne(const std::string& tenant, TenantLane* lane);

  VtpmManager* manager_;
  TpmQuoteDaemon* tqd_;
  VtpmMuxConfig config_;
  CompletionSink sink_;

  std::map<std::string, TenantLane> lanes_;  // Sorted: deterministic rotation.
  std::string cursor_;                       // Last tenant served.
  std::map<std::string, VtpmTenantCounters> counters_;
  uint64_t shed_total_ = 0;
  uint64_t quarantines_total_ = 0;
};

}  // namespace vtpm
}  // namespace flicker

#endif  // FLICKER_SRC_VTPM_VTPM_MUX_H_
