#include "src/vtpm/vtpm_state.h"

#include "src/common/serde.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace vtpm {

namespace {

constexpr uint32_t kBindingMagic = 0x56434231;  // "VCB1"
constexpr uint32_t kStateMagic = 0x56545331;    // "VTS1"

uint32_t Fnv1a32(const Bytes& data, size_t len) {
  uint32_t hash = 0x811C9DC5u;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 0x01000193u;
  }
  return hash;
}

// Appends the checksum over everything written so far.
Bytes SealChecksum(Bytes body) {
  uint32_t crc = Fnv1a32(body, body.size());
  PutUint32(&body, crc);
  return body;
}

// Verifies the trailing checksum and copies out the body it covers.
bool CheckAndStripChecksum(const Bytes& wire, Bytes* body) {
  if (wire.size() < 4) {
    return false;
  }
  size_t body_len = wire.size() - 4;
  if (GetUint32(wire, body_len) != Fnv1a32(wire, body_len)) {
    return false;
  }
  body->assign(wire.begin(), wire.begin() + static_cast<long>(body_len));
  return true;
}

}  // namespace

Bytes TenantTag(const std::string& tenant) { return Sha1::Digest(BytesOf(tenant)); }

Bytes VtpmCounterBinding::Serialize() const {
  Writer w;
  w.U32(kBindingMagic);
  w.U32(counter_id);
  w.U64(counter_value);
  w.Blob(tenant_tag);
  return SealChecksum(w.Take());
}

Result<VtpmCounterBinding> VtpmCounterBinding::Deserialize(const Bytes& wire) {
  Bytes body;
  if (!CheckAndStripChecksum(wire, &body)) {
    return InvalidArgumentError("counter binding: bad length or checksum");
  }
  Reader r(body);
  if (r.U32() != kBindingMagic) {
    return InvalidArgumentError("counter binding: bad magic");
  }
  VtpmCounterBinding binding;
  binding.counter_id = r.U32();
  binding.counter_value = r.U64();
  binding.tenant_tag = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("counter binding: truncated or trailing bytes");
  }
  if (binding.tenant_tag.size() != kVtpmDigestSize) {
    return InvalidArgumentError("counter binding: tenant tag must be 20 bytes");
  }
  return binding;
}

VtpmState VtpmState::Fresh(const std::string& tenant, const Bytes& owner_auth,
                           const Bytes& key_seed) {
  VtpmState state;
  state.tenant = tenant;
  state.owner_auth = owner_auth;
  state.key_seed = key_seed;
  for (Bytes& pcr : state.pcrs) {
    pcr.assign(kVtpmDigestSize, 0x00);
  }
  state.binding.tenant_tag = TenantTag(tenant);
  return state;
}

Bytes VtpmState::Serialize() const {
  Writer w;
  w.U32(kStateMagic);
  w.Str(tenant);
  w.U64(generation);
  w.Blob(owner_auth);
  w.Blob(key_seed);
  for (const Bytes& pcr : pcrs) {
    w.Blob(pcr);
  }
  w.Blob(binding.Serialize());
  w.U64(extends);
  return SealChecksum(w.Take());
}

Result<VtpmState> VtpmState::Deserialize(const Bytes& wire) {
  Bytes body;
  if (!CheckAndStripChecksum(wire, &body)) {
    return InvalidArgumentError("vTPM state: bad length or checksum");
  }
  Reader r(body);
  if (r.U32() != kStateMagic) {
    return InvalidArgumentError("vTPM state: bad magic");
  }
  VtpmState state;
  state.tenant = r.Str();
  state.generation = r.U64();
  state.owner_auth = r.Blob();
  state.key_seed = r.Blob();
  for (Bytes& pcr : state.pcrs) {
    pcr = r.Blob();
  }
  Bytes binding_wire = r.Blob();
  state.extends = r.U64();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("vTPM state: truncated or trailing bytes");
  }
  if (state.tenant.empty() || state.tenant.size() > kMaxTenantNameLen) {
    return InvalidArgumentError("vTPM state: tenant name empty or too long");
  }
  if (state.owner_auth.size() != kVtpmDigestSize || state.key_seed.size() != kVtpmDigestSize) {
    return InvalidArgumentError("vTPM state: owner auth and key seed must be 20 bytes");
  }
  for (const Bytes& pcr : state.pcrs) {
    if (pcr.size() != kVtpmDigestSize) {
      return InvalidArgumentError("vTPM state: vPCR values must be 20 bytes");
    }
  }
  Result<VtpmCounterBinding> binding = VtpmCounterBinding::Deserialize(binding_wire);
  if (!binding.ok()) {
    return binding.status();
  }
  state.binding = binding.take();
  if (state.binding.tenant_tag != TenantTag(state.tenant)) {
    return InvalidArgumentError("vTPM state: counter binding names a different tenant");
  }
  return state;
}

}  // namespace vtpm
}  // namespace flicker
