#include "src/vtpm/vtpm_campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/drbg.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/sim/executor.h"
#include "src/sim/fleet.h"
#include "src/vtpm/vtpm_manager.h"

namespace flicker {
namespace vtpm {

namespace {

// Fixed-precision float for byte-identical same-seed JSON.
std::string F3(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

double NearestRank(std::vector<double> sorted_input, double p) {
  if (sorted_input.empty()) {
    return 0;
  }
  std::sort(sorted_input.begin(), sorted_input.end());
  double rank = p * static_cast<double>(sorted_input.size() - 1);
  size_t index = static_cast<size_t>(rank + 0.5);
  if (index >= sorted_input.size()) {
    index = sorted_input.size() - 1;
  }
  return sorted_input[index];
}

// The fleet's compact machine image: the default 64 MB is wasteful for a
// quote-only host, so relocate the kernel into 1.5 MB.
FlickerPlatformConfig CampaignPlatformConfig(size_t tpm_key_bits) {
  FlickerPlatformConfig config;
  config.machine.memory_bytes = 0x180000;
  config.machine.tpm.key_bits = tpm_key_bits;
  config.kernel.text_base = 0x120000;
  config.kernel.text_size = 64 * 1024;
  config.kernel.syscall_table_base = 0x134000;
  config.kernel.syscall_table_size = 4096;
  config.kernel.modules_base = 0x136000;
  config.kernel.modules = {{"tpm_tis", 16 * 1024}};
  return config;
}

struct Round {
  int tenant = 0;
  uint64_t seq = 0;
  Bytes nonce;
  int attempts = 0;
  uint64_t first_submit_ns = 0;
  sim::EventId timeout_id{};
  bool timeout_armed = false;
  bool done = false;
};

class Campaign {
 public:
  explicit Campaign(const VtpmCampaignConfig& config)
      : config_(config), executor_(config.seed) {}

  Result<VtpmCampaignStats> Run();

 private:
  std::string TenantName(int i) const { return "tenant-" + std::to_string(i); }
  Bytes TenantAuth(int i) const {
    return Sha1::Digest(BytesOf("tenant-auth-" + std::to_string(config_.seed) + "-" +
                                std::to_string(i)));
  }
  bool IsHealthy(int i) const {
    return i != config_.flooding_tenant && i != config_.crashloop_tenant;
  }
  Bytes RoundNonce(int tenant, uint64_t seq) const {
    return Sha1::Digest(BytesOf("vtpm-round-" + std::to_string(config_.seed) + "-" +
                                std::to_string(tenant) + "-" + std::to_string(seq)));
  }

  Status Setup();
  void ScheduleArrivals();
  void SchedulePowerCuts();
  void SchedulePump();
  void SubmitRound(Round* round);
  void RetryOrFail(Round* round, const Status& why);
  void OnCompletion(const VtpmQuoteCompletion& completion);
  void OnPowerCut();
  void FinishRound(Round* round, bool success);

  VtpmCampaignConfig config_;
  sim::SimExecutor executor_;
  std::unique_ptr<FlickerPlatform> platform_;
  std::unique_ptr<VtpmManager> manager_;
  std::unique_ptr<VtpmMultiplexer> mux_;
  Bytes owner_secret_;
  uint64_t epoch_ns_ = 0;

  sim::ActorId machine_actor_ = sim::kNoActor;
  std::vector<sim::ActorId> client_actors_;
  std::vector<std::unique_ptr<SimClock>> client_clocks_;

  std::vector<std::unique_ptr<Round>> rounds_;
  std::map<Bytes, Round*> outstanding_;  // Keyed by original nonce.
  std::vector<Bytes> expected_composite_;  // Per tenant, fixed at setup.
  bool pump_scheduled_ = false;

  VtpmCampaignStats stats_;
};

Status Campaign::Setup() {
  platform_ = std::make_unique<FlickerPlatform>(CampaignPlatformConfig(config_.tpm_key_bits));
  owner_secret_ = Sha1::Digest(BytesOf("vtpm-owner-" + std::to_string(config_.seed)));
  FLICKER_RETURN_IF_ERROR(platform_->tpm()->TakeOwnership(owner_secret_));

  VtpmManagerConfig manager_config;
  manager_config.max_resident = config_.max_resident;
  manager_config.owner_secret = owner_secret_;
  manager_config.blob_auth = Sha1::Digest(BytesOf("vtpm-blob"));
  Result<Bytes> pcr17 = platform_->tpm()->PcrRead(kSkinitPcr);
  if (!pcr17.ok()) {
    return pcr17.status();
  }
  manager_config.release_pcr17 = pcr17.take();
  manager_ = std::make_unique<VtpmManager>(platform_->machine(), manager_config);
  mux_ = std::make_unique<VtpmMultiplexer>(manager_.get(), platform_->tqd(), config_.mux);
  mux_->set_sink([this](const VtpmQuoteCompletion& completion) { OnCompletion(completion); });

  // Provision every tenant with a distinct workload measurement, so each
  // vPCR composite (and hence every bound nonce) is tenant-unique.
  expected_composite_.resize(static_cast<size_t>(config_.num_tenants));
  for (int i = 0; i < config_.num_tenants; ++i) {
    const std::string name = TenantName(i);
    FLICKER_RETURN_IF_ERROR(manager_->CreateTenant(name, TenantAuth(i)));
    FLICKER_RETURN_IF_ERROR(manager_->Extend(
        name, 0, TenantAuth(i), Sha1::Digest(BytesOf("workload-" + std::to_string(i)))));
    FLICKER_RETURN_IF_ERROR(manager_->SnapshotTenant(name));
    Result<VirtualTpm*> vt = manager_->ResidentTenant(name);
    if (!vt.ok()) {
      return vt.status();
    }
    expected_composite_[static_cast<size_t>(i)] = vt.value()->CompositeDigest();
  }

  machine_actor_ = executor_.RegisterActor("vtpm-host", platform_->clock());
  for (int i = 0; i < config_.num_tenants; ++i) {
    client_clocks_.push_back(std::make_unique<SimClock>());
    client_actors_.push_back(
        executor_.RegisterActor("client-" + std::to_string(i), client_clocks_.back().get()));
  }
  epoch_ns_ = platform_->clock()->NowNanos();
  stats_.tenants.resize(static_cast<size_t>(config_.num_tenants));
  return Status::Ok();
}

void Campaign::ScheduleArrivals() {
  for (int i = 0; i < config_.num_tenants; ++i) {
    const bool flooding = i == config_.flooding_tenant;
    const double mean_ms = flooding ? config_.flood_mean_interarrival_ms
                                    : config_.healthy_mean_interarrival_ms;
    const size_t cap = flooding ? config_.max_flood_arrivals : SIZE_MAX;
    Drbg arrivals(config_.seed * 1000003ULL + static_cast<uint64_t>(i));
    double t_ms = 0;
    uint64_t seq = 0;
    while (seq < cap) {
      const double u = (static_cast<double>(arrivals.UniformUint64(1ULL << 30)) + 1.0) /
                       static_cast<double>(1ULL << 30);
      t_ms += -mean_ms * std::log(u);
      if (t_ms > config_.duration_ms) {
        break;
      }
      auto round = std::make_unique<Round>();
      round->tenant = i;
      round->seq = seq;
      round->nonce = RoundNonce(i, seq);
      Round* raw = round.get();
      rounds_.push_back(std::move(round));
      ++stats_.tenants[static_cast<size_t>(i)].injected;
      executor_.ScheduleAt(client_actors_[static_cast<size_t>(i)],
                           epoch_ns_ + static_cast<uint64_t>(t_ms * 1e6),
                           [this, raw] { SubmitRound(raw); });
      ++seq;
    }
  }
}

void Campaign::SchedulePowerCuts() {
  for (double at_ms : config_.power_cut_at_ms) {
    executor_.ScheduleAt(machine_actor_, epoch_ns_ + static_cast<uint64_t>(at_ms * 1e6),
                         [this] { OnPowerCut(); });
  }
}

void Campaign::SchedulePump() {
  if (pump_scheduled_) {
    return;
  }
  pump_scheduled_ = true;
  // Local time: the pump serializes on the host machine's clock, modeling
  // the one hardware TPM every tenant shares.
  executor_.ScheduleAfterLocal(machine_actor_, 0, [this] {
    pump_scheduled_ = false;
    if (mux_->PumpOne() && mux_->HasPending()) {
      SchedulePump();
    }
  });
}

void Campaign::SubmitRound(Round* round) {
  if (round->done) {
    return;
  }
  ++round->attempts;
  if (round->first_submit_ns == 0) {
    round->first_submit_ns = executor_.NowNs();
  }
  // The crash-looping tenant presents a wrong owner auth on every request.
  Bytes auth = round->tenant == config_.crashloop_tenant
                   ? Sha1::Digest(BytesOf("wrong-auth"))
                   : TenantAuth(round->tenant);
  Status submitted = mux_->Submit(TenantName(round->tenant), round->nonce, auth);
  if (!submitted.ok()) {
    RetryOrFail(round, submitted);
    return;
  }
  outstanding_[round->nonce] = round;
  round->timeout_id = executor_.ScheduleAfterLocal(
      client_actors_[static_cast<size_t>(round->tenant)],
      static_cast<uint64_t>(config_.client_timeout_ms * 1e6), [this, round] {
        if (round->done) {
          return;
        }
        round->timeout_armed = false;
        outstanding_.erase(round->nonce);
        RetryOrFail(round, UnavailableError("client timeout (request lost)"));
      });
  round->timeout_armed = true;
  SchedulePump();
}

void Campaign::RetryOrFail(Round* round, const Status& why) {
  (void)why;
  if (round->done) {
    return;
  }
  // Only healthy clients retry: the flood is fire-and-forget pressure, and
  // the crash-looper's failures are its expected behavior.
  if (IsHealthy(round->tenant) && round->attempts < config_.max_attempts_per_round) {
    ++stats_.client_retries;
    const uint64_t backoff_ns = static_cast<uint64_t>(
        config_.client_retry_backoff_ms * 1e6 * static_cast<double>(round->attempts));
    executor_.ScheduleAfterLocal(client_actors_[static_cast<size_t>(round->tenant)], backoff_ns,
                                 [this, round] { SubmitRound(round); });
    return;
  }
  FinishRound(round, /*success=*/false);
}

void Campaign::FinishRound(Round* round, bool success) {
  if (round->done) {
    return;
  }
  round->done = true;
  if (round->timeout_armed) {
    executor_.Cancel(round->timeout_id);
    round->timeout_armed = false;
  }
  outstanding_.erase(round->nonce);
  VtpmTenantCampaignStats& tenant = stats_.tenants[static_cast<size_t>(round->tenant)];
  if (success) {
    ++tenant.completed;
    const double latency_ms =
        static_cast<double>(platform_->clock()->NowNanos() - round->first_submit_ns) / 1e6;
    obs::ObserveMs(obs::Hist::kVtpmRoundLatencyMs, latency_ms);
    if (IsHealthy(round->tenant)) {
      stats_.healthy_latencies_ms.push_back(latency_ms);
    }
  } else {
    ++tenant.failed;
  }
}

void Campaign::OnCompletion(const VtpmQuoteCompletion& completion) {
  auto it = outstanding_.find(completion.nonce);
  if (it == outstanding_.end()) {
    return;  // The client already timed out and re-issued or gave up.
  }
  Round* round = it->second;
  if (!completion.status.ok()) {
    outstanding_.erase(it);
    if (round->timeout_armed) {
      executor_.Cancel(round->timeout_id);
      round->timeout_armed = false;
    }
    RetryOrFail(round, completion.status);
    return;
  }
  // Verify from the campaign's own records: AIK signature over
  // TPM_QUOTE_INFO, then the signed nonce must equal the binding recomputed
  // from the client's challenge and the tenant's expected composite.
  Result<RsaPublicKey> aik = RsaPublicKey::Deserialize(completion.response.aik_public);
  bool signature_ok = false;
  if (aik.ok()) {
    Bytes composite = RecomputeQuoteComposite(completion.response.quote);
    Bytes info = BytesOf("QUOT");
    info.insert(info.end(), composite.begin(), composite.end());
    info.insert(info.end(), completion.response.quote.nonce.begin(),
                completion.response.quote.nonce.end());
    signature_ok = RsaVerifySha1(aik.value(), info, completion.response.quote.signature);
  }
  if (!signature_ok) {
    ++stats_.rejected;
    outstanding_.erase(it);
    if (round->timeout_armed) {
      executor_.Cancel(round->timeout_id);
      round->timeout_armed = false;
    }
    RetryOrFail(round, IntegrityFailureError("quote signature rejected"));
    return;
  }
  ++stats_.responses_verified;
  const Bytes expected = VtpmMultiplexer::BoundNonce(
      TenantTag(TenantName(round->tenant)),
      expected_composite_[static_cast<size_t>(round->tenant)], round->nonce);
  if (completion.response.quote.nonce != expected) {
    // A verified quote answering something this client never asked.
    ++stats_.accepted_wrong;
    FinishRound(round, /*success=*/false);
    return;
  }
  FinishRound(round, /*success=*/true);
}

void Campaign::OnPowerCut() {
  ++stats_.power_cuts;
  platform_->machine()->PowerCut();
  (void)platform_->tpm()->Startup(TpmStartupType::kClear);
  manager_->OnPowerLoss();
  (void)manager_->RecoverAll();
  mux_->OnPowerLoss();
  platform_->tqd()->OnPowerLoss();
}

Result<VtpmCampaignStats> Campaign::Run() {
  FLICKER_RETURN_IF_ERROR(Setup());
  ScheduleArrivals();
  SchedulePowerCuts();
  executor_.Run();

  // Fold the mux's per-tenant view into the campaign stats.
  for (int i = 0; i < config_.num_tenants; ++i) {
    auto it = mux_->tenant_counters().find(TenantName(i));
    if (it == mux_->tenant_counters().end()) {
      continue;
    }
    VtpmTenantCampaignStats& tenant = stats_.tenants[static_cast<size_t>(i)];
    tenant.shed = it->second.shed;
    tenant.breaker_trips = it->second.breaker_trips;
    tenant.max_queue_age_ms = it->second.max_queue_age_ms;
  }
  stats_.rollbacks_detected = manager_->rollbacks_detected();
  stats_.quarantines = mux_->quarantines_total();
  stats_.shed_total = mux_->shed_total();
  stats_.sim_duration_ms =
      static_cast<double>(platform_->clock()->NowNanos() - epoch_ns_) / 1e6;
  stats_.events_processed = executor_.events_processed();
  stats_.max_heap = executor_.max_heap_size();
  stats_.order_digest = executor_.OrderDigest();
  return stats_;
}

}  // namespace

double VtpmCampaignStats::HealthyCompletionRate(const VtpmCampaignConfig& config) const {
  uint64_t injected = 0;
  uint64_t completed = 0;
  for (int i = 0; i < config.num_tenants; ++i) {
    if (i == config.flooding_tenant || i == config.crashloop_tenant) {
      continue;
    }
    injected += tenants[static_cast<size_t>(i)].injected;
    completed += tenants[static_cast<size_t>(i)].completed;
  }
  return injected == 0 ? 1.0
                       : static_cast<double>(completed) / static_cast<double>(injected);
}

double VtpmCampaignStats::HealthyJainIndex(const VtpmCampaignConfig& config) const {
  std::vector<double> allocations;
  for (int i = 0; i < config.num_tenants; ++i) {
    if (i == config.flooding_tenant || i == config.crashloop_tenant) {
      continue;
    }
    allocations.push_back(static_cast<double>(tenants[static_cast<size_t>(i)].completed));
  }
  return sim::JainFairnessIndex(allocations);
}

double VtpmCampaignStats::HealthyLatencyPercentileMs(double p) const {
  return NearestRank(healthy_latencies_ms, p);
}

std::string VtpmCampaignStats::ToJson(const VtpmCampaignConfig& config) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": {\"tenants\": " << config.num_tenants
     << ", \"flooding\": " << config.flooding_tenant
     << ", \"crashloop\": " << config.crashloop_tenant << ", \"seed\": " << config.seed
     << ", \"duration_ms\": " << F3(config.duration_ms)
     << ", \"power_cuts\": " << config.power_cut_at_ms.size() << "},\n";
  os << "  \"tenant\": [\n";
  for (size_t i = 0; i < tenants.size(); ++i) {
    const VtpmTenantCampaignStats& t = tenants[i];
    os << "    {\"injected\": " << t.injected << ", \"completed\": " << t.completed
       << ", \"failed\": " << t.failed << ", \"shed\": " << t.shed
       << ", \"breaker_trips\": " << t.breaker_trips
       << ", \"max_queue_age_ms\": " << F3(t.max_queue_age_ms) << "}"
       << (i + 1 < tenants.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  char rate[64];
  std::snprintf(rate, sizeof(rate), "%.4f", HealthyCompletionRate(config));
  char jain[64];
  std::snprintf(jain, sizeof(jain), "%.4f", HealthyJainIndex(config));
  os << "  \"fairness\": {\"healthy_completion_rate\": " << rate
     << ", \"jain_index\": " << jain << "},\n";
  os << "  \"latency_ms\": {\"p50\": " << F3(HealthyLatencyPercentileMs(0.50))
     << ", \"p90\": " << F3(HealthyLatencyPercentileMs(0.90))
     << ", \"p99\": " << F3(HealthyLatencyPercentileMs(0.99))
     << ", \"max\": " << F3(HealthyLatencyPercentileMs(1.0)) << "},\n";
  os << "  \"robustness\": {\"rollbacks_detected\": " << rollbacks_detected
     << ", \"quarantines\": " << quarantines << ", \"shed_total\": " << shed_total
     << ", \"power_cuts\": " << power_cuts << ", \"client_retries\": " << client_retries
     << "},\n";
  os << "  \"verifier\": {\"verified\": " << responses_verified << ", \"rejected\": " << rejected
     << ", \"accepted_wrong\": " << accepted_wrong << "},\n";
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016llx",
                static_cast<unsigned long long>(order_digest));
  os << "  \"engine\": {\"events\": " << events_processed << ", \"max_heap\": " << max_heap
     << ", \"sim_duration_ms\": " << F3(sim_duration_ms) << ", \"order_digest\": \"" << digest
     << "\"}\n";
  os << "}\n";
  return os.str();
}

Result<VtpmCampaignStats> RunVtpmCampaign(const VtpmCampaignConfig& config) {
  if (config.num_tenants < 1) {
    return InvalidArgumentError("campaign needs at least one tenant");
  }
  Campaign campaign(config);
  return campaign.Run();
}

}  // namespace vtpm
}  // namespace flicker
