// Durable per-tenant vTPM state: the wire formats the multiplexer seals.
//
// A virtual TPM's whole identity - its virtual PCR bank, owner secret, key
// seed and generation - lives in one VtpmState blob that the manager group-
// seals through a per-tenant CrashConsistentSealedStore. The blob embeds a
// VtpmCounterBinding naming the hardware NV monotonic counter that versions
// it: a snapshot is only live while the counter reads exactly the bound
// value, so an attacker who power-cuts the host and restores an older sealed
// snapshot is detected (kRollbackDetected) instead of attesting stale state.
//
// Both formats are parsed from bytes the untrusted OS stores, so
// Deserialize is hardened the way the PR 4 batteries expect: magic tags,
// bounded lengths, exact digest sizes, no trailing bytes, and a trailing
// FNV-1a checksum that makes every single-byte flip detectable.

#ifndef FLICKER_SRC_VTPM_VTPM_STATE_H_
#define FLICKER_SRC_VTPM_VTPM_STATE_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace flicker {
namespace vtpm {

// A virtual TPM exposes a small dynamic-PCR bank; eight is enough for every
// tenant workload the campaign models and keeps snapshots compact.
inline constexpr int kNumVtpmPcrs = 8;
// vPCRs, owner auth, key seed and tenant tags are all SHA-1 sized.
inline constexpr size_t kVtpmDigestSize = 20;
// Tenant names come from the untrusted control plane; bound their length.
inline constexpr size_t kMaxTenantNameLen = 64;

// Binds a state blob to the hardware NV monotonic counter that versions it.
struct VtpmCounterBinding {
  uint32_t counter_id = 0;     // Hardware counter handle.
  uint64_t counter_value = 0;  // The counter reading this snapshot is live at.
  Bytes tenant_tag;            // SHA-1 of the tenant name: no cross-tenant swaps.

  Bytes Serialize() const;
  static Result<VtpmCounterBinding> Deserialize(const Bytes& wire);

  bool operator==(const VtpmCounterBinding& other) const {
    return counter_id == other.counter_id && counter_value == other.counter_value &&
           tenant_tag == other.tenant_tag;
  }
};

// The whole durable identity of one tenant's virtual TPM.
struct VtpmState {
  std::string tenant;
  uint64_t generation = 0;  // Bumped by every snapshot.
  Bytes owner_auth;         // 20 bytes; gates tenant operations.
  Bytes key_seed;           // 20 bytes; root of the tenant key hierarchy.
  std::array<Bytes, kNumVtpmPcrs> pcrs;  // 20 bytes each.
  VtpmCounterBinding binding;
  uint64_t extends = 0;  // Total vPCR extends ever applied (diagnostics).

  // Fresh state for a new tenant: all vPCRs zero, generation 0.
  static VtpmState Fresh(const std::string& tenant, const Bytes& owner_auth,
                         const Bytes& key_seed);

  Bytes Serialize() const;
  static Result<VtpmState> Deserialize(const Bytes& wire);
};

// SHA-1 of the tenant name: the stable 20-byte tenant identifier used in
// counter bindings and quote nonce derivation.
Bytes TenantTag(const std::string& tenant);

}  // namespace vtpm
}  // namespace flicker

#endif  // FLICKER_SRC_VTPM_VTPM_STATE_H_
