#include "src/vtpm/vtpm.h"

#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace vtpm {

Status VirtualTpm::Extend(int index, const Bytes& measurement) {
  if (index < 0 || index >= kNumVtpmPcrs) {
    return InvalidArgumentError("vPCR index out of range");
  }
  if (measurement.size() != kVtpmDigestSize) {
    return InvalidArgumentError("vPCR extend measurement must be 20 bytes");
  }
  Bytes& pcr = state_.pcrs[static_cast<size_t>(index)];
  pcr = Sha1::Digest(Concat(pcr, measurement));
  ++state_.extends;
  return Status::Ok();
}

Result<Bytes> VirtualTpm::PcrRead(int index) const {
  if (index < 0 || index >= kNumVtpmPcrs) {
    return InvalidArgumentError("vPCR index out of range");
  }
  return state_.pcrs[static_cast<size_t>(index)];
}

Bytes VirtualTpm::CompositeDigest() const {
  Sha1 hash;
  for (const Bytes& pcr : state_.pcrs) {
    hash.Update(pcr);
  }
  return hash.Finish();
}

Bytes VirtualTpm::DeriveKey(const std::string& label) const {
  return HmacSha1(state_.key_seed, BytesOf(label));
}

bool VirtualTpm::CheckOwnerAuth(const Bytes& auth) const {
  return ConstantTimeEquals(auth, state_.owner_auth);
}

}  // namespace vtpm
}  // namespace flicker
