#include "src/common/status.h"

namespace flicker {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kPermissionDenied:
      return "permission denied";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kIntegrityFailure:
      return "integrity failure";
    case StatusCode::kReplayDetected:
      return "replay detected";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kTpmFailed:
      return "tpm failed";
    case StatusCode::kRollbackDetected:
      return "rollback detected";
    case StatusCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status IntegrityFailureError(std::string message) {
  return Status(StatusCode::kIntegrityFailure, std::move(message));
}
Status ReplayDetectedError(std::string message) {
  return Status(StatusCode::kReplayDetected, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status TpmFailedError(std::string message) {
  return Status(StatusCode::kTpmFailed, std::move(message));
}
Status RollbackDetectedError(std::string message) {
  return Status(StatusCode::kRollbackDetected, std::move(message));
}
Status OverloadedError(std::string message) {
  return Status(StatusCode::kOverloaded, std::move(message));
}

}  // namespace flicker
