#include "src/common/bytes.h"

#include <cstring>

namespace flicker {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string ToHex(const Bytes& data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes FromHex(std::string_view hex, bool* ok) {
  Bytes out;
  if (hex.size() % 2 != 0) {
    if (ok != nullptr) {
      *ok = false;
    }
    return out;
  }
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexDigit(hex[i]);
    int lo = HexDigit(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      if (ok != nullptr) {
        *ok = false;
      }
      return Bytes();
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  if (ok != nullptr) {
    *ok = true;
  }
  return out;
}

Bytes BytesOf(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

Bytes Concat(std::initializer_list<const Bytes*> parts) {
  size_t total = 0;
  for (const Bytes* p : parts) {
    total += p->size();
  }
  Bytes out;
  out.reserve(total);
  for (const Bytes* p : parts) {
    out.insert(out.end(), p->begin(), p->end());
  }
  return out;
}

Bytes Concat(const Bytes& a, const Bytes& b) {
  return Concat({&a, &b});
}

Bytes Concat(const Bytes& a, const Bytes& b, const Bytes& c) {
  return Concat({&a, &b, &c});
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

void SecureErase(void* data, size_t len) {
  volatile uint8_t* p = static_cast<volatile uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    p[i] = 0;
  }
}

void SecureErase(Bytes* data) {
  if (!data->empty()) {
    SecureErase(data->data(), data->size());
  }
  data->clear();
}

void PutUint16(Bytes* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

void PutUint32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

void PutUint64(Bytes* out, uint64_t v) {
  PutUint32(out, static_cast<uint32_t>(v >> 32));
  PutUint32(out, static_cast<uint32_t>(v));
}

uint16_t GetUint16(const Bytes& in, size_t offset) {
  return static_cast<uint16_t>((in[offset] << 8) | in[offset + 1]);
}

uint32_t GetUint32(const Bytes& in, size_t offset) {
  return (static_cast<uint32_t>(in[offset]) << 24) | (static_cast<uint32_t>(in[offset + 1]) << 16) |
         (static_cast<uint32_t>(in[offset + 2]) << 8) | static_cast<uint32_t>(in[offset + 3]);
}

uint64_t GetUint64(const Bytes& in, size_t offset) {
  return (static_cast<uint64_t>(GetUint32(in, offset)) << 32) | GetUint32(in, offset + 4);
}

}  // namespace flicker
