#include "src/common/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>

namespace flicker {

namespace {

// Every CRASH_POINT site executed at least once in this process. The macro
// registers each site through a function-local static, so after the first
// execution the steady-state cost stays a guard check plus the null test.
std::map<std::string, bool>& CrashPointCensus() {
  static std::map<std::string, bool> census;
  return census;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

FaultScheduler*& ActiveSchedulerSlot() {
  static FaultScheduler* active = nullptr;
  return active;
}

}  // namespace

CrashPlan CrashPlan::FromSeed(uint64_t seed, uint64_t max_hits) {
  CrashPlan plan;
  plan.crash_at_hit = max_hits == 0 ? 0 : 1 + SplitMix64(seed) % max_hits;
  return plan;
}

void FaultScheduler::OnCrashPoint(const char* name) {
  hits_.emplace_back(name);
  if (!armed_ || plan_.crash_at_hit == 0) {
    return;
  }
  if (!plan_.only_point.empty() && plan_.only_point != name) {
    return;
  }
  if (++hit_count_ == plan_.crash_at_hit) {
    armed_ = false;  // One crash per plan; recovery code must not re-crash.
    throw PowerLossException(name, plan_.crash_at_hit);
  }
}

void FaultScheduler::DumpCrashPoints(std::ostream& os) const {
  std::map<std::string, uint64_t> observed;
  for (const std::string& hit : hits_) {
    ++observed[hit];
  }
  os << "crash points (registered=" << CrashPointCensus().size()
     << ", observed by this scheduler=" << observed.size() << "):\n";
  for (const auto& [name, unused] : CrashPointCensus()) {
    auto it = observed.find(name);
    if (it != observed.end()) {
      os << "  * " << name << " x" << it->second << "\n";
    } else {
      os << "    " << name << "\n";
    }
  }
  // Hits on sites whose registration we have not seen would mean the macro's
  // registration guard broke; surface them rather than hiding them.
  for (const auto& [name, count] : observed) {
    if (CrashPointCensus().count(name) == 0) {
      os << "  ! " << name << " x" << count << " (unregistered)\n";
    }
  }
}

FaultScheduler* ActiveFaultScheduler() { return ActiveSchedulerSlot(); }

bool RegisterCrashPointSite(const char* name) {
  CrashPointCensus()[name] = true;
  return true;
}

std::vector<std::string> ExecutedCrashPointNames() {
  std::vector<std::string> names;
  names.reserve(CrashPointCensus().size());
  for (const auto& [name, unused] : CrashPointCensus()) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted.
}

bool WriteCrashPointCensus(const char* tag) {
  const char* prefix = std::getenv("FLICKER_CRASH_POINTS_OUT");
  if (prefix == nullptr || prefix[0] == '\0') {
    return true;
  }
  std::string path = std::string(prefix) + "." + tag + ".txt";
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& name : ExecutedCrashPointNames()) {
    out << name << "\n";
  }
  out.flush();
  if (!out) {
    std::fprintf(stderr, "WriteCrashPointCensus: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

FaultInjectionScope::FaultInjectionScope(FaultScheduler* scheduler)
    : previous_(ActiveSchedulerSlot()) {
  ActiveSchedulerSlot() = scheduler;
}

FaultInjectionScope::~FaultInjectionScope() { ActiveSchedulerSlot() = previous_; }

}  // namespace flicker
