#include "src/common/fault.h"

namespace flicker {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

FaultScheduler*& ActiveSchedulerSlot() {
  static FaultScheduler* active = nullptr;
  return active;
}

}  // namespace

CrashPlan CrashPlan::FromSeed(uint64_t seed, uint64_t max_hits) {
  CrashPlan plan;
  plan.crash_at_hit = max_hits == 0 ? 0 : 1 + SplitMix64(seed) % max_hits;
  return plan;
}

void FaultScheduler::OnCrashPoint(const char* name) {
  hits_.emplace_back(name);
  if (!armed_ || plan_.crash_at_hit == 0) {
    return;
  }
  if (!plan_.only_point.empty() && plan_.only_point != name) {
    return;
  }
  if (++hit_count_ == plan_.crash_at_hit) {
    armed_ = false;  // One crash per plan; recovery code must not re-crash.
    throw PowerLossException(name, plan_.crash_at_hit);
  }
}

FaultScheduler* ActiveFaultScheduler() { return ActiveSchedulerSlot(); }

FaultInjectionScope::FaultInjectionScope(FaultScheduler* scheduler)
    : previous_(ActiveSchedulerSlot()) {
  ActiveSchedulerSlot() = scheduler;
}

FaultInjectionScope::~FaultInjectionScope() { ActiveSchedulerSlot() = previous_; }

}  // namespace flicker
