// Lightweight error handling for the Flicker tree.
//
// The simulator models a platform where most failures are protocol-level
// (bad authorization, PCR mismatch, privilege violation) rather than
// exceptional host conditions, so we use explicit Status/Result values
// instead of exceptions.

#ifndef FLICKER_SRC_COMMON_STATUS_H_
#define FLICKER_SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace flicker {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed input (bad sizes, bad hex, bad header)
  kFailedPrecondition, // operation issued in the wrong platform state
  kPermissionDenied,   // privilege/ring/authorization failure
  kNotFound,           // missing key handle, NV index, sysfs entry, ...
  kIntegrityFailure,   // MAC/signature/PCR-binding check failed
  kReplayDetected,     // stale sealed blob or stale nonce
  kResourceExhausted,  // out of SLB space, NV space, counter overflow
  kUnavailable,        // transient transport failure; retry may succeed
  kInternal,           // simulator invariant broke (bug)
  kTpmFailed,          // TPM in failure mode; only Startup/GetTestResult work
  kRollbackDetected,   // persistent state older than the hardware counter says it must be
  kOverloaded,         // server shed the request under load; retry after backoff
};

// Human-readable name for a code ("kIntegrityFailure" -> "integrity failure").
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error. `value()` asserts on error; callers must check `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                       // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {                // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const {
    DieIfError();
    return *value_;
  }
  T& value() {
    DieIfError();
    return *value_;
  }
  T&& take() {
    DieIfError();
    return std::move(*value_);
  }

 private:
  // Accessing the value of an error Result is always a hard programming
  // error; fail loudly even in optimized builds.
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n", status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

// Convenience constructors mirroring absl::*Error.
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status PermissionDeniedError(std::string message);
Status NotFoundError(std::string message);
Status IntegrityFailureError(std::string message);
Status ReplayDetectedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status TpmFailedError(std::string message);
Status RollbackDetectedError(std::string message);
Status OverloadedError(std::string message);

#define FLICKER_RETURN_IF_ERROR(expr)       \
  do {                                      \
    ::flicker::Status _st = (expr);         \
    if (!_st.ok()) {                        \
      return _st;                           \
    }                                       \
  } while (0)

}  // namespace flicker

#endif  // FLICKER_SRC_COMMON_STATUS_H_
