// Shared retry/backoff policy.
//
// Every layer that retries over an unreliable medium (the tqd against a
// lossy TPM transport, a network session against a lossy channel) needs the
// same shape: capped exponential backoff with optional deterministic jitter.
// Hand-rolled copies drift apart - one caps, one doesn't, one jitters with
// wall-clock randomness that breaks replayability - so the policy lives here
// once and both layers instantiate it.
//
// Jitter is deterministic (splitmix64 over seed x retry index): two
// schedules built from the same policy and seed emit identical delays, so a
// failing seed in a chaos campaign replays bit-exact.

#ifndef FLICKER_SRC_COMMON_BACKOFF_H_
#define FLICKER_SRC_COMMON_BACKOFF_H_

#include <cstdint>

namespace flicker {

struct BackoffPolicy {
  double initial_ms = 2.0;     // Delay before the first retry.
  double multiplier = 2.0;     // Growth factor per retry.
  double max_ms = 0;           // Cap on a single delay; 0 = uncapped.
  // Fraction of each delay randomized away: delay *= 1 - jitter * u with
  // u in [0, 1). 0 keeps the schedule exact (the tqd's pinned 2/4/8 ms).
  double jitter_fraction = 0;
  // Full jitter (AWS style): each delay is drawn uniformly from
  // [0, capped exponential delay) instead of shaving a fraction off the
  // exponential value. Decorrelates retry storms - a fleet of clients that
  // all saw the same overload signal spread their resends across the whole
  // window instead of returning in lockstep. Overrides jitter_fraction.
  // Still deterministic: the draw is splitmix64 over seed x retry index.
  bool full_jitter = false;
};

// Iterates a policy's delays. Not thread-safe; one schedule per operation.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const BackoffPolicy& policy, uint64_t jitter_seed = 0)
      : policy_(policy), jitter_seed_(jitter_seed) {}

  // Delay (simulated ms) to wait before the next retry; ratchets the
  // schedule forward. The first call returns ~initial_ms.
  double NextDelayMs();

  // Delay the next NextDelayMs() call would return, without ratcheting -
  // lets deadline checks ask "can we afford the coming wait?" first.
  double PeekDelayMs() const;

  void Reset() { retries_ = 0; }
  int retries_issued() const { return retries_; }

 private:
  double DelayForRetry(int retry) const;

  BackoffPolicy policy_;
  uint64_t jitter_seed_;
  int retries_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_COMMON_BACKOFF_H_
