// Byte-buffer utilities shared by every Flicker module.
//
// The TPM, SLB, and crypto layers all traffic in raw octet strings; this
// header provides the one vocabulary type (`Bytes`) plus the handful of
// helpers (hex codecs, concatenation, constant-time compare, secure erase)
// that the rest of the tree builds on.

#ifndef FLICKER_SRC_COMMON_BYTES_H_
#define FLICKER_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace flicker {

// Raw octet string. All measurements, ciphertexts, and wire messages use it.
using Bytes = std::vector<uint8_t>;

// Encodes `data` as lowercase hex ("deadbeef").
std::string ToHex(const Bytes& data);

// Decodes a hex string (case-insensitive). Returns an empty vector and sets
// `ok` to false on malformed input (odd length or non-hex digit).
Bytes FromHex(std::string_view hex, bool* ok = nullptr);

// Copies the bytes of an ASCII string.
Bytes BytesOf(std::string_view text);

// Concatenates any number of buffers in order.
Bytes Concat(std::initializer_list<const Bytes*> parts);
Bytes Concat(const Bytes& a, const Bytes& b);
Bytes Concat(const Bytes& a, const Bytes& b, const Bytes& c);

// Compares two buffers without early exit, so the comparison time does not
// leak the position of the first mismatch. Returns true iff equal.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

// Overwrites the buffer with zeros through a volatile pointer so the store
// cannot be elided, then clears it. Used by the SLB Core cleanup phase and
// by anything holding key material.
void SecureErase(Bytes* data);
void SecureErase(void* data, size_t len);

// Big-endian integer serialization helpers (TPM structures are big-endian).
void PutUint16(Bytes* out, uint16_t v);
void PutUint32(Bytes* out, uint32_t v);
void PutUint64(Bytes* out, uint64_t v);
uint16_t GetUint16(const Bytes& in, size_t offset);
uint32_t GetUint32(const Bytes& in, size_t offset);
uint64_t GetUint64(const Bytes& in, size_t offset);

}  // namespace flicker

#endif  // FLICKER_SRC_COMMON_BYTES_H_
