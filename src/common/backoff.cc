#include "src/common/backoff.h"

namespace flicker {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double BackoffSchedule::DelayForRetry(int retry) const {
  double delay = policy_.initial_ms;
  for (int i = 0; i < retry; ++i) {
    delay *= policy_.multiplier;
    if (policy_.max_ms > 0 && delay >= policy_.max_ms) {
      delay = policy_.max_ms;
      break;
    }
  }
  if (policy_.max_ms > 0 && delay > policy_.max_ms) {
    delay = policy_.max_ms;
  }
  if (policy_.full_jitter) {
    uint64_t draw = SplitMix64(jitter_seed_ ^ (0x6a697466ULL + static_cast<uint64_t>(retry)));
    double u = static_cast<double>(draw % 10000) / 10000.0;  // [0, 1).
    delay *= u;
  } else if (policy_.jitter_fraction > 0) {
    uint64_t draw = SplitMix64(jitter_seed_ ^ (0x6e65744aULL + static_cast<uint64_t>(retry)));
    double u = static_cast<double>(draw % 10000) / 10000.0;  // [0, 1).
    delay *= 1.0 - policy_.jitter_fraction * u;
  }
  return delay;
}

double BackoffSchedule::NextDelayMs() { return DelayForRetry(retries_++); }

double BackoffSchedule::PeekDelayMs() const { return DelayForRetry(retries_); }

}  // namespace flicker
