// Deterministic power-loss fault injection.
//
// Crash consistency can only be tested if a "power cut" can strike between
// any two durable writes. Components on the SKINIT -> PAL -> seal -> exit
// path instrument those boundaries with CRASH_POINT("name"); a harness arms
// a FaultScheduler with a CrashPlan ("crash at the Nth hit") and replays the
// same deterministic workload once per hit, so every interleaving of crash x
// recovery is swept by an ordinary test.
//
// A power cut is not a Status: no code under test may catch and "handle" it,
// exactly as real software cannot intercept the mains dropping. It is a
// dedicated exception type that unwinds to the harness, leaving whatever
// torn intermediate state the interrupted component had already made
// durable. Only test harnesses may catch PowerLossException.
//
// The scheduler is installed process-globally (RAII FaultInjectionScope)
// rather than plumbed through six layers of constructors; production builds
// never install one, so CRASH_POINT is a single null check.

#ifndef FLICKER_SRC_COMMON_FAULT_H_
#define FLICKER_SRC_COMMON_FAULT_H_

#include <cstdint>
#include <exception>
#include <iosfwd>
#include <string>
#include <vector>

namespace flicker {

// Where and when to cut power. `crash_at_hit` counts CRASH_POINT executions
// 1-based from Arm(); 0 never fires (pure recording). When `only_point` is
// non-empty, only hits with that exact name are counted.
struct CrashPlan {
  uint64_t crash_at_hit = 0;
  std::string only_point;

  // Derives a plan from a seed: crash at a pseudo-random hit in
  // [1, max_hits]. Deterministic (splitmix64), so a failing seed replays.
  static CrashPlan FromSeed(uint64_t seed, uint64_t max_hits);
};

// Thrown by CRASH_POINT when the armed plan elects the current hit. Carries
// the site name and the 1-based hit index for diagnostics.
class PowerLossException : public std::exception {
 public:
  PowerLossException(std::string point, uint64_t hit_index)
      : point_(std::move(point)),
        hit_index_(hit_index),
        what_("simulated power loss at crash point '" + point_ + "' (hit " +
              std::to_string(hit_index_) + ")") {}

  const char* what() const noexcept override { return what_.c_str(); }
  const std::string& point() const { return point_; }
  uint64_t hit_index() const { return hit_index_; }

 private:
  std::string point_;
  uint64_t hit_index_;
  std::string what_;
};

// Counts crash-point hits and fires the armed plan. Also records the ordered
// hit names so a recording pass can enumerate the crash surface of a
// workload before the replay passes sweep it.
class FaultScheduler {
 public:
  // Starts counting hits from zero under `plan`.
  void Arm(const CrashPlan& plan) {
    plan_ = plan;
    armed_ = true;
    hit_count_ = 0;
  }
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  // Called by CRASH_POINT. Records the hit; throws PowerLossException when
  // the armed plan's index is reached.
  void OnCrashPoint(const char* name);

  // Ordered names of every hit observed since the last ClearHits/Arm.
  const std::vector<std::string>& hits() const { return hits_; }
  void ClearHits() { hits_.clear(); }

  uint64_t hit_count() const { return hit_count_; }

  // The process-wide crash-point census (every CRASH_POINT site that has
  // executed, fault injection armed or not), one name per line with a '*'
  // marker and hit count for the sites this scheduler observed. Failing-test
  // fixtures print it alongside TpmTransport::DumpTrace; the verify.sh
  // crash-point coverage gate consumes the same census via
  // WriteCrashPointCensus().
  void DumpCrashPoints(std::ostream& os) const;

 private:
  CrashPlan plan_;
  bool armed_ = false;
  uint64_t hit_count_ = 0;
  std::vector<std::string> hits_;
};

// The process-global scheduler CRASH_POINT consults; null when no harness
// has installed one.
FaultScheduler* ActiveFaultScheduler();

// Registers one CRASH_POINT site in the process-wide census the first time
// it executes. Called through a function-local static in the macro, so the
// steady-state cost stays a guard check. Always returns true.
bool RegisterCrashPointSite(const char* name);

// Sorted names of every crash-point site executed so far in this process.
std::vector<std::string> ExecutedCrashPointNames();

// Writes the census (one name per line, sorted) to
// "$FLICKER_CRASH_POINTS_OUT.<tag>.txt" for the verify.sh coverage gate.
// A no-op returning true when the environment variable is unset (plain
// developer runs produce no files); false only on an I/O error.
bool WriteCrashPointCensus(const char* tag);

// Installs `scheduler` as the active one for the current scope. Nestable;
// the previous scheduler is restored on destruction.
class FaultInjectionScope {
 public:
  explicit FaultInjectionScope(FaultScheduler* scheduler);
  ~FaultInjectionScope();

  FaultInjectionScope(const FaultInjectionScope&) = delete;
  FaultInjectionScope& operator=(const FaultInjectionScope&) = delete;

 private:
  FaultScheduler* previous_;
};

}  // namespace flicker

// Marks a durability boundary: the instants immediately before/after this
// statement are distinct crash states. Free (one null check) unless a
// FaultInjectionScope is active.
#define CRASH_POINT(name)                                                  \
  do {                                                                     \
    static const bool _flicker_cp_registered =                             \
        ::flicker::RegisterCrashPointSite(name);                           \
    (void)_flicker_cp_registered;                                          \
    ::flicker::FaultScheduler* _flicker_fs = ::flicker::ActiveFaultScheduler(); \
    if (_flicker_fs != nullptr) {                                          \
      _flicker_fs->OnCrashPoint(name);                                     \
    }                                                                      \
  } while (0)

#endif  // FLICKER_SRC_COMMON_FAULT_H_
