// Minimal length-prefixed serialization helpers for PAL input/output
// parameters and application wire messages.
//
// Everything is big-endian and length-prefixed; Reader methods fail softly
// (set an error flag) so malformed input from the untrusted OS can never
// crash a PAL.

#ifndef FLICKER_SRC_COMMON_SERDE_H_
#define FLICKER_SRC_COMMON_SERDE_H_

#include <string>

#include "src/common/bytes.h"

namespace flicker {

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) { PutUint16(&out_, v); }
  void U32(uint32_t v) { PutUint32(&out_, v); }
  void U64(uint64_t v) { PutUint64(&out_, v); }
  void Blob(const Bytes& data) {
    U32(static_cast<uint32_t>(data.size()));
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void Str(const std::string& s) { Blob(BytesOf(s)); }

  const Bytes& Take() const { return out_; }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  uint16_t U16() {
    if (!Need(2)) {
      return 0;
    }
    uint16_t v = GetUint16(data_, pos_);
    pos_ += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) {
      return 0;
    }
    uint32_t v = GetUint32(data_, pos_);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) {
      return 0;
    }
    uint64_t v = GetUint64(data_, pos_);
    pos_ += 8;
    return v;
  }
  Bytes Blob() {
    uint32_t len = U32();
    if (!Need(len)) {
      return Bytes();
    }
    Bytes out(data_.begin() + static_cast<long>(pos_), data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return out;
  }
  std::string Str() {
    Bytes b = Blob();
    return std::string(b.begin(), b.end());
  }

  // True iff every read so far was in bounds and the buffer is fully
  // consumed (when `all_consumed` is requested).
  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Need(size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const Bytes& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace flicker

#endif  // FLICKER_SRC_COMMON_SERDE_H_
