// The cross-core adversarial campaign for the concurrent-execution mode,
// run under the discrete-event fleet engine.
//
// A fleet of multi-core machines each late-launches the minimal hypervisor
// once, then serves seeded Poisson PAL-session rounds on its dedicated
// cores while the untrusted OS - modeled as explicit adversary events on
// the remaining cores - attacks continuously: DMA into PAL and hypervisor
// frames, guest-mode loads/stores probing protected regions, and malformed
// hypercalls (bad bases, overlapping regions, corrupt headers, bogus
// session ids, hijacked cores, double launches). A slice of the rounds are
// "attacked rounds" that fire the whole battery in the window where the
// PAL region is protected but not yet executed - the exact window a
// concurrent OS gets that a suspended one never had.
//
// The invariant the campaign asserts: every attack dies with the RIGHT
// typed denial (HvDenial / DEV block), no protected byte ever changes, and
// every session still completes with outputs and a PCR 17 chain
// byte-identical to an unattacked reference session. `accepted_wrong`
// counts attacks that succeeded or sessions that returned wrong content -
// the number that must stay zero. `attacks_mistyped` counts attacks that
// failed for the wrong reason - also held at zero.
//
// Same seed => byte-identical JSON (the --hv verify campaign diffs two
// runs), and the engine's order digest pins the exact event interleaving.

#ifndef FLICKER_SRC_HV_HV_CAMPAIGN_H_
#define FLICKER_SRC_HV_HV_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hv/hypervisor.h"

namespace flicker {
namespace hv {

struct HvCampaignConfig {
  uint64_t seed = 1;
  int num_machines = 4;
  // Cores per machine: with two PAL slots the top two cores are
  // PAL-dedicated and the OS (and its attacks) keeps the rest.
  int num_cpus = 4;
  // Arrival horizon (sim ms past the setup epoch) and Poisson mean
  // inter-arrival times for session rounds and ambient attacks.
  double duration_ms = 30000.0;
  double session_mean_interarrival_ms = 500.0;
  double attack_mean_interarrival_ms = 200.0;
  // Every Nth round is a dual-slot round (two concurrent sessions on one
  // machine); every Mth round runs the full mid-session attack battery.
  int dual_slot_every = 5;
  int attacked_round_every = 3;
};

struct HvCampaignStats {
  uint64_t rounds_injected = 0;
  uint64_t rounds_completed = 0;
  uint64_t rounds_failed = 0;
  uint64_t dual_rounds = 0;
  uint64_t attacked_rounds = 0;
  uint64_t hv_launches = 0;
  // Aggregated across the fleet's hypervisors after the run.
  uint64_t sessions_completed = 0;
  uint64_t exits_handled = 0;
  uint64_t denials[static_cast<size_t>(HvDenial::kCount)] = {};
  // Adversary ledger. accepted_wrong and attacks_mistyped must be zero.
  uint64_t attacks_launched = 0;
  uint64_t attacks_denied = 0;
  uint64_t attacks_mistyped = 0;
  uint64_t accepted_wrong = 0;
  uint64_t dma_blocked = 0;
  uint64_t npt_blocked = 0;
  // OS-visible pause: what the hypervisor actually charged, next to what a
  // classic whole-machine suspend would have cost for the same rounds.
  double os_pause_ms_total = 0;
  double classic_equiv_pause_ms_total = 0;
  std::vector<double> round_latencies_ms;
  double sim_duration_ms = 0;
  uint64_t events_processed = 0;
  size_t max_heap = 0;
  uint64_t order_digest = 0;

  double SessionsPerSecond() const;
  double LatencyPercentileMs(double p) const;  // Nearest-rank, p in [0,1].
  double PauseReduction() const;  // classic_equiv / os_pause (higher is better).
  std::string ToJson(const HvCampaignConfig& config) const;
};

Result<HvCampaignStats> RunHvCampaign(const HvCampaignConfig& config);

}  // namespace hv
}  // namespace flicker

#endif  // FLICKER_SRC_HV_HV_CAMPAIGN_H_
