// The minimal SVM hypervisor: Flicker's §9 "concurrent execution" future
// work, realized the TrustVisor way.
//
// One SKINIT late launch measures the hypervisor loader block (HLB) into
// PCR 17 exactly like an SLB; the hypervisor then stays resident, arms DEV
// over its own frames, flips the OS cores into guest mode behind a
// nested-page guard, and from then on PAL sessions cost two world switches
// instead of a whole-machine suspend: the PAL is pinned to a dedicated
// core behind nested-page + DEV protections while the untrusted OS keeps
// running on the remaining cores - no AP parking, no suspend/resume.
//
// The guest interface is deliberately tiny and fully typed: three
// hypercalls (start session / run is host-side / collect outputs), every
// malformed or malicious parameter dies with an HvDenial, and the
// cross-core adversarial campaign (src/hv/hv_campaign) asserts that no
// attack is ever accepted.
//
// PCR 17 under the hypervisor: each session gets a software µPCR seeded
// with the SKINIT chain value SHA1(0^20 || H(PAL)). With
// `mirror_hardware_pcr` (the default for single-session platforms) the
// hypervisor also context-switches the hardware PCR 17 to the PAL's chain
// for the session's duration - it retains the dynamic-launch privilege, so
// sealed storage and quotes bind exactly as in classic mode and session
// outputs are byte-identical between modes. Mirrored sessions are
// exclusive (the hardware TPM has one PCR 17); non-mirrored sessions may
// run concurrently on as many PAL slots/cores as configured.

#ifndef FLICKER_SRC_HV_HYPERVISOR_H_
#define FLICKER_SRC_HV_HYPERVISOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/slb/slb_core.h"
#include "src/slb/slb_layout.h"

namespace flicker {
namespace hv {

// Every way the hypervisor refuses a guest. Each denial is typed so the
// adversarial campaign can assert both "the attack failed" and "it failed
// for the right reason".
enum class HvDenial : int {
  kNotLaunched = 0,     // Hypercall before LateLaunch / after a reset.
  kAlreadyLaunched,     // Second LateLaunch while resident.
  kBadRegion,           // PAL region out of bounds or not a configured slot.
  kRegionOverlap,       // PAL region overlaps hypervisor or an active session.
  kBadHeader,           // SLB header fails the SKINIT validation rules.
  kNoFreeCore,          // No dedicated core available for the session.
  kBadCore,             // Guest addressed a core it does not own.
  kSessionNotFound,     // Session id does not name a live session.
  kSessionNotRunning,   // Session exists but is not in the expected state.
  kTpmBusy,             // Mirrored session while another mirrored one runs.
  kNptViolation,        // Guest memory access into protected frames.
  kBadHypercallParam,   // Any other malformed hypercall argument.
  kCount
};

const char* HvDenialName(HvDenial denial);

struct HvConfig {
  // Where the hypervisor loader block lives. Sits above the kernel module
  // images in every platform map this repo uses.
  uint64_t hv_base = 0x140000;
  // Physical bases PAL sessions may be staged at. Slot 0 defaults to the
  // classic fixed base so a concurrent session's patched image - and hence
  // its measurement - is bit-identical to the classic mode's.
  std::vector<uint64_t> pal_slot_bases = {kSlbFixedBase};
  // Mirror each session's µPCR chain into the hardware PCR 17 (see file
  // comment). Required for seal/quote parity with classic mode; turn off
  // for multi-session campaigns with TPM-free PALs.
  bool mirror_hardware_pcr = true;
};

// The size of the synthetic hypervisor loader block SKINIT measures.
inline constexpr size_t kHvLoaderSize = 8 * 1024;

enum class HvSessionState {
  kProtected,  // Region protected + measured; awaiting execution.
  kRunning,    // PAL executing on the pinned core.
  kCompleted,  // Session ended; outputs await collection.
};

struct HvSession {
  uint64_t id = 0;
  uint64_t slb_base = 0;
  int core = -1;
  HvSessionState state = HvSessionState::kProtected;
  bool mirrored = false;
  SkinitLaunch launch;    // Synthesized launch descriptor for the SLB core.
  Bytes upcr;             // The session's software µPCR 17.
  uint64_t saved_cr3 = 0; // The OS cr3 the pinned core held before the session.

  bool running_or_protected() const { return state != HvSessionState::kCompleted; }
};

// Aggregate statistics the campaign and bench report.
struct HvStats {
  uint64_t sessions_started = 0;
  uint64_t sessions_completed = 0;
  uint64_t exits_handled = 0;
  uint64_t denials_total = 0;
  uint64_t denials[static_cast<size_t>(HvDenial::kCount)] = {};
  // Simulated nanoseconds the OS was actually paused by hypervisor work
  // (world switches + handlers); the classic mode's analogue is the whole
  // session duration.
  uint64_t os_pause_ns = 0;
};

class Hypervisor : public GuestAccessGuard {
 public:
  Hypervisor(Machine* machine, const HvConfig& config = HvConfig());

  // One-time late launch: the caller (platform) has parked the APs; this
  // stages the HLB, SKINITs it so PCR 17 attests the hypervisor, exits
  // secure mode (the OS resumes on all cores), then re-arms DEV over the
  // hypervisor frames, installs the nested-page guard, and flips the OS
  // cores to guest mode with the top core(s) dedicated to PAL sessions.
  Status LateLaunch();

  // True while the hypervisor survives on this machine (no reset since
  // LateLaunch and the guard is still installed).
  bool resident() const;

  // The hypervisor's own SKINIT measurement (hash of the patched HLB) and
  // the PCR 17 chain value attesting it.
  const Bytes& measurement() const { return measurement_; }
  const Bytes& launch_pcr17() const { return launch_pcr17_; }

  // First configured PAL slot with no active session, or 0 if none free.
  uint64_t FreeSlotBase() const;

  // ---- The guest->hypervisor interface (hypercalls) ----
  //
  // VMMCALL start-session: validates the staged PAL region at `slb_base`
  // (must be a configured slot), protects it (nested pages + DEV), measures
  // it, seeds the session µPCR with the SKINIT chain, pins a dedicated
  // core, and returns the session id. `requested_core` of -1 auto-picks;
  // naming a core that is not PAL-dedicated dies with kBadCore.
  Result<uint64_t> HcStartSession(uint64_t slb_base, int requested_core = -1);

  // Host-side: runs the PAL session `id` through the shared SLB core body
  // on its pinned core. (In hardware this is the dedicated core executing
  // the PAL while the OS runs elsewhere; the discrete-event campaign
  // overlaps sessions across machines.)
  Result<SessionRecord> RunSession(uint64_t id, const PalBinary& binary,
                                   const SlbCoreOptions& options);

  // VMMCALL collect-outputs: after the session completed, reads the output
  // page and unprotects nothing (the session already tore down).
  Result<Bytes> HcCollectOutputs(uint64_t id);

  // ---- GuestAccessGuard ----
  // OS cores fault on hypervisor frames and on active PAL session regions.
  bool FaultsGuestAccess(int core, uint64_t addr, size_t len, bool is_write) override;

  // A live (not yet collected) session by id; null when unknown.
  const HvSession* FindSession(uint64_t id) const;

  const HvStats& stats() const { return stats_; }
  uint64_t denied(HvDenial d) const { return stats_.denials[static_cast<size_t>(d)]; }
  int active_sessions() const { return static_cast<int>(sessions_.size()); }
  const HvConfig& config() const { return config_; }

 private:
  // Records a typed denial, charges the exit cost, returns the error.
  Status Deny(HvDenial denial, const char* detail);
  // Charges one guest-exit round trip to the machine clock and the OS
  // pause accounting.
  void ChargeExit();
  bool OverlapsHypervisor(uint64_t addr, size_t len) const;
  const HvSession* FindSessionCovering(uint64_t addr, size_t len) const;
  void EndSession(HvSession* session, uint64_t restored_cr3);

  friend class HvSessionEnv;

  Machine* machine_;
  HvConfig config_;
  bool launched_ = false;
  uint64_t launch_epoch_ = 0;
  Bytes measurement_;
  Bytes launch_pcr17_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, HvSession> sessions_;
  HvStats stats_;
};

}  // namespace hv
}  // namespace flicker

#endif  // FLICKER_SRC_HV_HYPERVISOR_H_
