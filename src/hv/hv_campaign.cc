#include "src/hv/hv_campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "src/apps/hello.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/drbg.h"
#include "src/sim/executor.h"

namespace flicker {
namespace hv {

namespace {

// Fixed-precision float for byte-identical same-seed JSON.
std::string F3(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

double NearestRank(std::vector<double> sorted_input, double p) {
  if (sorted_input.empty()) {
    return 0;
  }
  std::sort(sorted_input.begin(), sorted_input.end());
  double rank = p * static_cast<double>(sorted_input.size() - 1);
  size_t index = static_cast<size_t>(rank + 0.5);
  if (index >= sorted_input.size()) {
    index = sorted_input.size() - 1;
  }
  return sorted_input[index];
}

// The fleet's compact machine image: a relocated 1.5 MB kernel leaves the
// low megabyte to the PAL slots and the hypervisor loader at 0x140000,
// with a second PAL slot at 0x150000 so dual-slot rounds fit.
FlickerPlatformConfig CampaignPlatformConfig(const HvCampaignConfig& campaign) {
  FlickerPlatformConfig config;
  config.mode = SessionMode::kConcurrent;
  config.machine.memory_bytes = 0x180000;
  config.machine.num_cpus = campaign.num_cpus;
  config.kernel.text_base = 0x120000;
  config.kernel.text_size = 64 * 1024;
  config.kernel.syscall_table_base = 0x134000;
  config.kernel.syscall_table_size = 4096;
  config.kernel.modules_base = 0x136000;
  config.kernel.modules = {{"tpm_tis", 16 * 1024}};
  // µPCR-only sessions: the hello PAL never touches the TPM, so both slots
  // (and both dedicated cores) can hold sessions at once.
  config.hv.mirror_hardware_pcr = false;
  config.hv.pal_slot_bases = {kSlbFixedBase, 0x150000};
  return config;
}

// Number of distinct ambient attack shapes ScheduleAttacks draws from.
constexpr uint64_t kNumAmbientAttacks = 10;

class Campaign {
 public:
  explicit Campaign(const HvCampaignConfig& config)
      : config_(config), executor_(config.seed) {}

  Result<HvCampaignStats> Run();

 private:
  Status Setup();
  void ScheduleRounds();
  void ScheduleAttacks();
  void RunRound(int machine, bool dual, bool attacked);
  Status ExecuteRound(FlickerPlatform* platform, bool dual, bool attacked);
  void MidSessionBattery(FlickerPlatform* platform, uint64_t slot, uint64_t session_id);
  void AmbientAttack(int machine, int kind);
  void VerifyRecord(uint64_t slot, const SessionRecord& record);

  // Runs one attack that must die with the given typed denial: OK is an
  // accepted attack, a failure that did not bump the expected denial
  // counter failed for the wrong reason.
  void Attack(Hypervisor* hv, HvDenial expect, const std::function<Status()>& fn);
  // A DMA attack the Device Exclusion Vector must block; on writes the
  // target bytes must additionally be unchanged (host view).
  void DmaAttack(Machine* machine, uint64_t addr, bool is_read);

  HvCampaignConfig config_;
  sim::SimExecutor executor_;
  std::vector<std::unique_ptr<FlickerPlatform>> machines_;
  std::vector<sim::ActorId> machine_actors_;
  std::vector<uint64_t> epoch_ns_;

  PalBinary binary_;
  Bytes inputs_;
  // The unattacked reference every fleet session must reproduce. Keyed by
  // slot base: the image is patched for its load address, so each slot has
  // its own measurement and hence its own PCR 17 chain.
  struct SlotReference {
    Bytes outputs;
    Bytes pcr17_exec;
    Bytes pcr17_final;
  };
  std::map<uint64_t, SlotReference> expected_;
  double classic_session_pause_ms_ = 0;

  HvCampaignStats stats_;
};

Status Campaign::Setup() {
  Result<PalBinary> built = BuildPal(std::make_shared<HelloWorldPal>());
  if (!built.ok()) {
    return built.status();
  }
  binary_ = built.take();
  inputs_ = BytesOf("hv-campaign-input");

  // Reference sessions on a scratch machine with the identical config: one
  // unattacked run per PAL slot (the image is patched per load address, so
  // each slot yields a distinct measurement chain). The campaign then
  // requires every fleet session to reproduce its slot's reference byte
  // for byte.
  {
    FlickerPlatform reference(CampaignPlatformConfig(config_));
    FLICKER_RETURN_IF_ERROR(reference.EnsureHypervisorResident());
    Hypervisor* hv = reference.hypervisor();
    FlickerModule* module = reference.flicker_module();
    for (uint64_t slot : hv->config().pal_slot_bases) {
      FLICKER_RETURN_IF_ERROR(module->WriteSlb(binary_.image));
      FLICKER_RETURN_IF_ERROR(module->WriteInputs(inputs_));
      FLICKER_RETURN_IF_ERROR(module->StageForHypervisorAt(slot));
      Result<uint64_t> id = hv->HcStartSession(slot);
      if (!id.ok()) {
        return id.status();
      }
      Result<SessionRecord> record = hv->RunSession(id.value(), binary_, SlbCoreOptions());
      if (!record.ok()) {
        return record.status();
      }
      FLICKER_RETURN_IF_ERROR(record.value().pal_status);
      expected_[slot] = SlotReference{record.value().outputs,
                                      record.value().pcr17_during_execution,
                                      record.value().pcr17_final};
      Result<Bytes> collected = hv->HcCollectOutputs(id.value());
      if (!collected.ok()) {
        return collected.status();
      }
    }
  }

  // Classic analogue of the same session, for the pause comparison - and a
  // hard mode-parity check: the concurrent µPCR chain for the classic fixed
  // base must equal what the hardware PCR 17 shows classically.
  {
    FlickerPlatformConfig classic_config = CampaignPlatformConfig(config_);
    classic_config.mode = SessionMode::kClassic;
    FlickerPlatform classic(classic_config);
    Result<FlickerSessionResult> ref = classic.ExecuteSession(binary_, inputs_);
    if (!ref.ok()) {
      return ref.status();
    }
    const SlotReference& fixed = expected_[kSlbFixedBase];
    if (ref.value().record.outputs != fixed.outputs ||
        ref.value().record.pcr17_final != fixed.pcr17_final) {
      return IntegrityFailureError("classic/concurrent mode parity violated");
    }
    classic_session_pause_ms_ = ref.value().os_pause_ms;
  }

  for (int m = 0; m < config_.num_machines; ++m) {
    machines_.push_back(std::make_unique<FlickerPlatform>(CampaignPlatformConfig(config_)));
    FlickerPlatform* platform = machines_.back().get();
    // Launch the hypervisor up front so rounds measure steady state, not
    // the one-time SKINIT.
    FLICKER_RETURN_IF_ERROR(platform->EnsureHypervisorResident());
    ++stats_.hv_launches;
    machine_actors_.push_back(
        executor_.RegisterActor("hv-machine-" + std::to_string(m), platform->clock()));
    epoch_ns_.push_back(platform->clock()->NowNanos());
  }
  return Status::Ok();
}

void Campaign::ScheduleRounds() {
  for (int m = 0; m < config_.num_machines; ++m) {
    Drbg arrivals(config_.seed * 1000003ULL + static_cast<uint64_t>(m));
    double t_ms = 0;
    uint64_t seq = 0;
    while (true) {
      const double u = (static_cast<double>(arrivals.UniformUint64(1ULL << 30)) + 1.0) /
                       static_cast<double>(1ULL << 30);
      t_ms += -config_.session_mean_interarrival_ms * std::log(u);
      if (t_ms > config_.duration_ms) {
        break;
      }
      const bool dual = config_.dual_slot_every > 0 &&
                        seq % static_cast<uint64_t>(config_.dual_slot_every) ==
                            static_cast<uint64_t>(config_.dual_slot_every) - 1;
      const bool attacked = config_.attacked_round_every > 0 &&
                            seq % static_cast<uint64_t>(config_.attacked_round_every) ==
                                static_cast<uint64_t>(config_.attacked_round_every) - 1;
      ++stats_.rounds_injected;
      if (dual) {
        ++stats_.dual_rounds;
      }
      if (attacked) {
        ++stats_.attacked_rounds;
      }
      executor_.ScheduleAt(machine_actors_[static_cast<size_t>(m)],
                           epoch_ns_[static_cast<size_t>(m)] + static_cast<uint64_t>(t_ms * 1e6),
                           [this, m, dual, attacked] { RunRound(m, dual, attacked); });
      ++seq;
    }
  }
}

void Campaign::ScheduleAttacks() {
  for (int m = 0; m < config_.num_machines; ++m) {
    Drbg attacks(config_.seed * 7777777ULL + static_cast<uint64_t>(m));
    double t_ms = 0;
    while (true) {
      const double u = (static_cast<double>(attacks.UniformUint64(1ULL << 30)) + 1.0) /
                       static_cast<double>(1ULL << 30);
      t_ms += -config_.attack_mean_interarrival_ms * std::log(u);
      if (t_ms > config_.duration_ms) {
        break;
      }
      const int kind = static_cast<int>(attacks.UniformUint64(kNumAmbientAttacks));
      executor_.ScheduleAt(machine_actors_[static_cast<size_t>(m)],
                           epoch_ns_[static_cast<size_t>(m)] + static_cast<uint64_t>(t_ms * 1e6),
                           [this, m, kind] { AmbientAttack(m, kind); });
    }
  }
}

void Campaign::Attack(Hypervisor* hv, HvDenial expect, const std::function<Status()>& fn) {
  ++stats_.attacks_launched;
  const uint64_t before = hv->denied(expect);
  Status status = fn();
  if (status.ok()) {
    ++stats_.accepted_wrong;
    return;
  }
  if (hv->denied(expect) == before) {
    ++stats_.attacks_mistyped;
    return;
  }
  ++stats_.attacks_denied;
}

void Campaign::DmaAttack(Machine* machine, uint64_t addr, bool is_read) {
  ++stats_.attacks_launched;
  const uint64_t before = machine->dma_blocked_count();
  Bytes original;
  if (!is_read) {
    Result<Bytes> snapshot = machine->memory()->Read(addr, 16);
    if (!snapshot.ok()) {
      ++stats_.attacks_mistyped;
      return;
    }
    original = snapshot.take();
  }
  Status status = is_read ? machine->DmaRead(addr, 16).status()
                          : machine->DmaWrite(addr, Bytes(16, 0xee));
  if (status.ok()) {
    ++stats_.accepted_wrong;
    return;
  }
  if (machine->dma_blocked_count() == before) {
    ++stats_.attacks_mistyped;
    return;
  }
  if (!is_read) {
    Result<Bytes> after = machine->memory()->Read(addr, 16);
    if (!after.ok() || after.value() != original) {
      ++stats_.accepted_wrong;  // The "blocked" write landed anyway.
      return;
    }
  }
  ++stats_.attacks_denied;
}

void Campaign::VerifyRecord(uint64_t slot, const SessionRecord& record) {
  auto it = expected_.find(slot);
  if (it == expected_.end() || !record.pal_status.ok() ||
      record.outputs != it->second.outputs ||
      record.pcr17_during_execution != it->second.pcr17_exec ||
      record.pcr17_final != it->second.pcr17_final) {
    ++stats_.accepted_wrong;  // An attack changed what the session produced.
  }
}

void Campaign::MidSessionBattery(FlickerPlatform* platform, uint64_t slot,
                                 uint64_t session_id) {
  Hypervisor* hv = platform->hypervisor();
  Machine* machine = platform->machine();
  const uint64_t hv_base = hv->config().hv_base;

  // Devices the OS still drives try to reach in: DEV must block all three.
  DmaAttack(machine, slot + kSlbCodeOffset, /*is_read=*/false);
  DmaAttack(machine, slot, /*is_read=*/true);
  DmaAttack(machine, hv_base, /*is_read=*/false);

  // Cross-core probing from an OS guest core: nested paging must fault.
  Attack(hv, HvDenial::kNptViolation,
         [&] { return machine->GuestWrite(0, slot + kSlbCodeOffset, Bytes(8, 0xaa)); });
  Attack(hv, HvDenial::kNptViolation,
         [&] { return machine->GuestRead(0, slot + kSlbInputsOffset, 16).status(); });
  Attack(hv, HvDenial::kNptViolation,
         [&] { return machine->GuestWrite(0, hv_base + 16, Bytes(8, 0xbb)); });

  // Malicious hypercalls against the live session.
  Attack(hv, HvDenial::kRegionOverlap, [&] { return hv->HcStartSession(slot).status(); });
  Attack(hv, HvDenial::kSessionNotRunning,
         [&] { return hv->HcCollectOutputs(session_id).status(); });
}

void Campaign::AmbientAttack(int machine_index, int kind) {
  FlickerPlatform* platform = machines_[static_cast<size_t>(machine_index)].get();
  Hypervisor* hv = platform->hypervisor();
  Machine* machine = platform->machine();
  const uint64_t hv_base = hv->config().hv_base;
  switch (kind) {
    case 0:
      Attack(hv, HvDenial::kNptViolation,
             [&] { return machine->GuestWrite(0, hv_base + 8, Bytes(8, 0xcc)); });
      break;
    case 1:
      Attack(hv, HvDenial::kNptViolation,
             [&] { return machine->GuestRead(1, hv_base, 20).status(); });
      break;
    case 2:
      DmaAttack(machine, hv_base + 64, /*is_read=*/false);
      break;
    case 3:
      Attack(hv, HvDenial::kBadRegion, [&] { return hv->HcStartSession(0x1000).status(); });
      break;
    case 4: {
      // Corrupt header: stage a 2-byte "SLB" at a free slot, then ask the
      // hypervisor to protect it. SKINIT's header rules must refuse.
      const uint64_t slot = hv->FreeSlotBase();
      if (slot == 0) {
        Attack(hv, HvDenial::kBadRegion, [&] { return hv->HcStartSession(0x1000).status(); });
        break;
      }
      (void)machine->GuestWrite(0, slot, Bytes{2, 0, 9, 9});
      Attack(hv, HvDenial::kBadHeader, [&] { return hv->HcStartSession(slot).status(); });
      break;
    }
    case 5:
      Attack(hv, HvDenial::kSessionNotFound,
             [&] { return hv->RunSession(0xdead, binary_, SlbCoreOptions()).status(); });
      break;
    case 6:
      Attack(hv, HvDenial::kBadHypercallParam,
             [&] { return hv->HcCollectOutputs(0).status(); });
      break;
    case 7:
      Attack(hv, HvDenial::kSessionNotFound,
             [&] { return hv->HcCollectOutputs(0xdead).status(); });
      break;
    case 8:
      Attack(hv, HvDenial::kAlreadyLaunched, [&] { return hv->LateLaunch(); });
      break;
    case 9: {
      // Core hijack: a validly staged PAL asking for an OS core.
      const uint64_t slot = hv->FreeSlotBase();
      FlickerModule* module = platform->flicker_module();
      if (slot != 0 && module->WriteSlb(binary_.image).ok() &&
          module->WriteInputs(inputs_).ok() && module->StageForHypervisorAt(slot).ok()) {
        Attack(hv, HvDenial::kBadCore, [&] { return hv->HcStartSession(slot, 0).status(); });
      }
      break;
    }
    default:
      break;
  }
}

Status Campaign::ExecuteRound(FlickerPlatform* platform, bool dual, bool attacked) {
  FlickerModule* module = platform->flicker_module();
  Hypervisor* hv = platform->hypervisor();
  FLICKER_RETURN_IF_ERROR(module->WriteSlb(binary_.image));
  FLICKER_RETURN_IF_ERROR(module->WriteInputs(inputs_));
  FLICKER_RETURN_IF_ERROR(platform->EnsureHypervisorResident());

  const int session_count = dual ? 2 : 1;
  std::vector<uint64_t> slots;
  std::vector<uint64_t> ids;
  for (int i = 0; i < session_count; ++i) {
    const uint64_t slot = hv->FreeSlotBase();
    if (slot == 0) {
      return ResourceExhaustedError("no free hypervisor PAL slot");
    }
    FLICKER_RETURN_IF_ERROR(module->StageForHypervisorAt(slot));
    Result<uint64_t> id = hv->HcStartSession(slot);
    if (!id.ok()) {
      return id.status();
    }
    slots.push_back(slot);
    ids.push_back(id.value());
  }

  if (attacked) {
    MidSessionBattery(platform, slots[0], ids[0]);
  }
  if (dual) {
    // Both slots busy: a third session must die as an overlap.
    Attack(hv, HvDenial::kRegionOverlap, [&] { return hv->HcStartSession(slots[0]).status(); });
  }

  for (int i = 0; i < session_count; ++i) {
    Result<SessionRecord> record = hv->RunSession(ids[i], binary_, SlbCoreOptions());
    if (!record.ok()) {
      return record.status();
    }
    VerifyRecord(slots[i], record.value());
    FLICKER_RETURN_IF_ERROR(module->CollectOutputsAt(slots[i]));
    Result<Bytes> collected = hv->HcCollectOutputs(ids[i]);
    if (!collected.ok()) {
      return collected.status();
    }
    if (collected.value() != expected_[slots[i]].outputs) {
      ++stats_.accepted_wrong;
    }
    stats_.classic_equiv_pause_ms_total += classic_session_pause_ms_;
  }
  return Status::Ok();
}

void Campaign::RunRound(int machine_index, bool dual, bool attacked) {
  FlickerPlatform* platform = machines_[static_cast<size_t>(machine_index)].get();
  const uint64_t start_ns = platform->clock()->NowNanos();
  Status status = ExecuteRound(platform, dual, attacked);
  if (status.ok()) {
    ++stats_.rounds_completed;
    stats_.round_latencies_ms.push_back(
        static_cast<double>(platform->clock()->NowNanos() - start_ns) / 1e6);
  } else {
    ++stats_.rounds_failed;
  }
}

Result<HvCampaignStats> Campaign::Run() {
  FLICKER_RETURN_IF_ERROR(Setup());
  ScheduleRounds();
  ScheduleAttacks();
  executor_.Run();

  for (const auto& platform : machines_) {
    const HvStats& hv_stats = platform->hypervisor()->stats();
    stats_.sessions_completed += hv_stats.sessions_completed;
    stats_.exits_handled += hv_stats.exits_handled;
    for (size_t d = 0; d < static_cast<size_t>(HvDenial::kCount); ++d) {
      stats_.denials[d] += hv_stats.denials[d];
    }
    stats_.os_pause_ms_total += static_cast<double>(hv_stats.os_pause_ns) / 1e6;
    stats_.dma_blocked += platform->machine()->dma_blocked_count();
    stats_.npt_blocked += platform->machine()->npt_blocked_count();
  }
  stats_.sim_duration_ms = static_cast<double>(executor_.NowNs()) / 1e6;
  stats_.events_processed = executor_.events_processed();
  stats_.max_heap = executor_.max_heap_size();
  stats_.order_digest = executor_.OrderDigest();
  return stats_;
}

}  // namespace

double HvCampaignStats::SessionsPerSecond() const {
  return sim_duration_ms <= 0
             ? 0
             : static_cast<double>(sessions_completed) / (sim_duration_ms / 1000.0);
}

double HvCampaignStats::LatencyPercentileMs(double p) const {
  return NearestRank(round_latencies_ms, p);
}

double HvCampaignStats::PauseReduction() const {
  return os_pause_ms_total <= 0 ? 0 : classic_equiv_pause_ms_total / os_pause_ms_total;
}

std::string HvCampaignStats::ToJson(const HvCampaignConfig& config) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": {\"machines\": " << config.num_machines
     << ", \"cpus\": " << config.num_cpus << ", \"seed\": " << config.seed
     << ", \"duration_ms\": " << F3(config.duration_ms)
     << ", \"rounds_injected\": " << rounds_injected << ", \"dual_rounds\": " << dual_rounds
     << ", \"attacked_rounds\": " << attacked_rounds << "},\n";
  os << "  \"sessions\": {\"rounds_completed\": " << rounds_completed
     << ", \"rounds_failed\": " << rounds_failed << ", \"hv_sessions\": " << sessions_completed
     << ", \"hv_launches\": " << hv_launches << ", \"exits\": " << exits_handled
     << ", \"sessions_per_sec\": " << F3(SessionsPerSecond()) << "},\n";
  os << "  \"attacks\": {\"launched\": " << attacks_launched << ", \"denied\": " << attacks_denied
     << ", \"mistyped\": " << attacks_mistyped << ", \"accepted_wrong\": " << accepted_wrong
     << ", \"dma_blocked\": " << dma_blocked << ", \"npt_blocked\": " << npt_blocked << "},\n";
  os << "  \"denials\": {";
  for (size_t d = 0; d < static_cast<size_t>(HvDenial::kCount); ++d) {
    os << (d == 0 ? "" : ", ") << "\"" << HvDenialName(static_cast<HvDenial>(d))
       << "\": " << denials[d];
  }
  os << "},\n";
  os << "  \"latency_ms\": {\"p50\": " << F3(LatencyPercentileMs(0.50))
     << ", \"p90\": " << F3(LatencyPercentileMs(0.90))
     << ", \"p99\": " << F3(LatencyPercentileMs(0.99))
     << ", \"max\": " << F3(LatencyPercentileMs(1.0)) << "},\n";
  os << "  \"pause\": {\"os_pause_ms\": " << F3(os_pause_ms_total)
     << ", \"classic_equivalent_ms\": " << F3(classic_equiv_pause_ms_total)
     << ", \"reduction\": " << F3(PauseReduction()) << "},\n";
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016llx",
                static_cast<unsigned long long>(order_digest));
  os << "  \"engine\": {\"events\": " << events_processed << ", \"max_heap\": " << max_heap
     << ", \"sim_duration_ms\": " << F3(sim_duration_ms) << ", \"order_digest\": \"" << digest
     << "\"}\n";
  os << "}\n";
  return os.str();
}

Result<HvCampaignStats> RunHvCampaign(const HvCampaignConfig& config) {
  if (config.num_machines < 1) {
    return InvalidArgumentError("campaign needs at least one machine");
  }
  if (config.num_cpus < 3) {
    return InvalidArgumentError("concurrent mode needs an OS core plus dedicated cores");
  }
  Campaign campaign(config);
  return campaign.Run();
}

}  // namespace hv
}  // namespace flicker
