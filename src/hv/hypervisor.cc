#include "src/hv/hypervisor.h"

#include "src/common/fault.h"
#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace hv {

const char* HvDenialName(HvDenial denial) {
  switch (denial) {
    case HvDenial::kNotLaunched:
      return "not_launched";
    case HvDenial::kAlreadyLaunched:
      return "already_launched";
    case HvDenial::kBadRegion:
      return "bad_region";
    case HvDenial::kRegionOverlap:
      return "region_overlap";
    case HvDenial::kBadHeader:
      return "bad_header";
    case HvDenial::kNoFreeCore:
      return "no_free_core";
    case HvDenial::kBadCore:
      return "bad_core";
    case HvDenial::kSessionNotFound:
      return "session_not_found";
    case HvDenial::kSessionNotRunning:
      return "session_not_running";
    case HvDenial::kTpmBusy:
      return "tpm_busy";
    case HvDenial::kNptViolation:
      return "npt_violation";
    case HvDenial::kBadHypercallParam:
      return "bad_hypercall_param";
    case HvDenial::kCount:
      break;
  }
  return "unknown";
}

namespace {

// The synthetic hypervisor loader block: SLB-format header (u16 length,
// u16 entry) followed by a deterministic body, so the hypervisor's SKINIT
// measurement is a stable, predictable constant a verifier can whitelist.
Bytes BuildHvLoaderImage() {
  Bytes image(kHvLoaderSize, 0);
  image[0] = static_cast<uint8_t>(kHvLoaderSize & 0xff);
  image[1] = static_cast<uint8_t>((kHvLoaderSize >> 8) & 0xff);
  image[2] = 4;  // Entry point right after the header.
  image[3] = 0;
  Bytes pad = Sha1::Digest(BytesOf("flicker-minimal-hypervisor-v1"));
  for (size_t i = 4; i < image.size(); ++i) {
    image[i] = pad[(i - 4) % pad.size()];
  }
  return image;
}

// The session µPCR extend: PCR <- SHA1(PCR || measurement), the same fold
// the hardware register applies.
Bytes FoldUpcr(const Bytes& upcr, const Bytes& measurement) {
  Bytes chain = upcr;
  chain.insert(chain.end(), measurement.begin(), measurement.end());
  return Sha1::Digest(chain);
}

}  // namespace

// The hypervisor-hosted session environment: the PAL runs on its pinned
// core; PCR 17 is the session µPCR (mirrored into the hardware register
// when configured); exiting ends the session and resumes the core as an OS
// guest.
class HvSessionEnv : public SessionEnv {
 public:
  HvSessionEnv(Hypervisor* hv, HvSession* session) : hv_(hv), session_(session) {}

  Cpu* session_cpu() override { return hv_->machine_->cpu(session_->core); }

  Status CheckEntry(const SkinitLaunch& launch) override {
    if (session_->state != HvSessionState::kRunning || launch.slb_base != session_->slb_base) {
      return FailedPreconditionError("SLB core must run inside the hypervisor session");
    }
    return Status::Ok();
  }

  Status ExtendPcr(const Bytes& measurement) override {
    if (measurement.size() != 20) {
      return InvalidArgumentError("µPCR extend requires a 20-byte measurement");
    }
    session_->upcr = FoldUpcr(session_->upcr, measurement);
    hv_->machine_->clock()->AdvanceMillis(hv_->machine_->timing().hv.upcr_extend_us / 1000.0);
    if (session_->mirrored) {
      return hv_->machine_->tpm()->PcrExtend(kSkinitPcr, measurement);
    }
    return Status::Ok();
  }

  Result<Bytes> ReadPcr() override {
    if (!session_->mirrored) {
      return session_->upcr;
    }
    Result<Bytes> hardware = hv_->machine_->tpm()->PcrRead(kSkinitPcr);
    if (!hardware.ok()) {
      return hardware.status();
    }
    // A PAL may extend PCR 17 directly through the locality its session
    // grants (e.g. the rootkit detector's inlined extend). The hypervisor
    // virtualizes the pinned core's TPM port, so its shadow follows the
    // hardware register - which stays the single source of truth for
    // mirrored sessions, exactly as in classic mode.
    session_->upcr = hardware.value();
    return hardware;
  }

  Status Exit(uint64_t restored_cr3) override {
    hv_->EndSession(session_, restored_cr3);
    return Status::Ok();
  }

 private:
  Hypervisor* hv_;
  HvSession* session_;
};

Hypervisor::Hypervisor(Machine* machine, const HvConfig& config)
    : machine_(machine), config_(config) {}

bool Hypervisor::resident() const {
  return launched_ && machine_->reset_epoch() == launch_epoch_ &&
         machine_->guest_guard() == this;
}

Status Hypervisor::Deny(HvDenial denial, const char* detail) {
  ++stats_.denials_total;
  ++stats_.denials[static_cast<size_t>(denial)];
  obs::Count(obs::Ctr::kHvDeniedAccesses);
  ChargeExit();
  return PermissionDeniedError(std::string("hv denial [") + HvDenialName(denial) + "]: " + detail);
}

void Hypervisor::ChargeExit() {
  const double exit_ms = machine_->timing().HvExitMillis();
  machine_->clock()->AdvanceMillis(exit_ms);
  ++stats_.exits_handled;
  stats_.os_pause_ns += static_cast<uint64_t>(exit_ms * 1e6 + 0.5);
  obs::Count(obs::Ctr::kHvExits);
  obs::ObserveMs(obs::Hist::kHvExitLatencyMs, exit_ms);
}

bool Hypervisor::OverlapsHypervisor(uint64_t addr, size_t len) const {
  const uint64_t hv_end = config_.hv_base + kHvLoaderSize;
  return addr < hv_end && addr + len > config_.hv_base;
}

const HvSession* Hypervisor::FindSessionCovering(uint64_t addr, size_t len) const {
  for (const auto& [id, session] : sessions_) {
    const uint64_t end = session.slb_base + kSlbAllocationSize;
    if (addr < end && addr + len > session.slb_base) {
      return &session;
    }
  }
  return nullptr;
}

Status Hypervisor::LateLaunch() {
  if (resident()) {
    return Deny(HvDenial::kAlreadyLaunched, "hypervisor already resident");
  }
  // A relaunch after a reset starts from scratch: no session survives the
  // power domain.
  sessions_.clear();
  launched_ = false;

  if (!machine_->memory()->InBounds(config_.hv_base, kSlbRegionSize)) {
    return Deny(HvDenial::kBadRegion, "hypervisor region exceeds physical memory");
  }
  for (uint64_t slot : config_.pal_slot_bases) {
    if (!machine_->memory()->InBounds(slot, kSlbAllocationSize)) {
      return Deny(HvDenial::kBadRegion, "PAL slot exceeds physical memory");
    }
    if (slot < config_.hv_base + kSlbRegionSize && slot + kSlbAllocationSize > config_.hv_base) {
      return Deny(HvDenial::kRegionOverlap, "PAL slot overlaps the hypervisor region");
    }
  }

  // Stage the HLB and late-launch it: the same SKINIT handshake an SLB
  // gets, so PCR 17 now attests the hypervisor's identity at locality 4.
  const uint64_t saved_cr3 = machine_->bsp()->cr3;
  FLICKER_RETURN_IF_ERROR(machine_->memory()->Write(config_.hv_base, BuildHvLoaderImage()));
  Result<SkinitLaunch> launch = machine_->Skinit(machine_->bsp()->id, config_.hv_base);
  if (!launch.ok()) {
    return launch.status();
  }
  measurement_ = launch.value().measurement;
  launch_pcr17_ = ExpectedPcr17AfterSkinit(measurement_);
  stats_.os_pause_ns +=
      static_cast<uint64_t>(machine_->timing().SkinitMillis(launch.value().slb_length) * 1e6 + 0.5);
  CRASH_POINT("hv.launched");

  // The hypervisor initializes (VMCBs, nested page tables) and returns the
  // machine to the OS - but stays resident: DEV re-armed over its frames,
  // the nested-page guard installed, OS cores VMRUN'd as guests, and the
  // top core(s) dedicated to PAL sessions.
  FLICKER_RETURN_IF_ERROR(machine_->ExitSecureMode(machine_->bsp()->id, saved_cr3));
  machine_->dev()->Protect(config_.hv_base, kHvLoaderSize);
  machine_->set_guest_guard(this);
  machine_->clock()->AdvanceMillis(machine_->timing().hv.npt_update_us / 1000.0);

  const int num_cpus = machine_->num_cpus();
  int dedicated = static_cast<int>(config_.pal_slot_bases.size());
  if (dedicated > num_cpus - 1) {
    dedicated = num_cpus - 1;
  }
  for (int i = 0; i < num_cpus; ++i) {
    Cpu* cpu = machine_->cpu(i);
    cpu->guest_mode = true;
    cpu->pal_dedicated = (i >= num_cpus - dedicated);
  }

  launched_ = true;
  launch_epoch_ = machine_->reset_epoch();
  return Status::Ok();
}

uint64_t Hypervisor::FreeSlotBase() const {
  for (uint64_t slot : config_.pal_slot_bases) {
    if (FindSessionCovering(slot, kSlbAllocationSize) == nullptr) {
      return slot;
    }
  }
  return 0;
}

Result<uint64_t> Hypervisor::HcStartSession(uint64_t slb_base, int requested_core) {
  if (!resident()) {
    return Deny(HvDenial::kNotLaunched, "start-session before hypervisor launch");
  }
  ChargeExit();

  bool is_slot = false;
  for (uint64_t slot : config_.pal_slot_bases) {
    if (slot == slb_base) {
      is_slot = true;
      break;
    }
  }
  if (!is_slot || !machine_->memory()->InBounds(slb_base, kSlbAllocationSize)) {
    return Deny(HvDenial::kBadRegion, "PAL base is not a configured session slot");
  }
  if (OverlapsHypervisor(slb_base, kSlbAllocationSize)) {
    return Deny(HvDenial::kRegionOverlap, "PAL region overlaps the hypervisor");
  }
  if (FindSessionCovering(slb_base, kSlbAllocationSize) != nullptr) {
    return Deny(HvDenial::kRegionOverlap, "PAL region overlaps an active session");
  }

  // Header validation: the same rules SKINIT enforces on an SLB.
  Result<Bytes> header = machine_->memory()->Read(slb_base, 4);
  if (!header.ok()) {
    return header.status();
  }
  const uint16_t length = static_cast<uint16_t>(header.value()[0] | (header.value()[1] << 8));
  const uint16_t entry = static_cast<uint16_t>(header.value()[2] | (header.value()[3] << 8));
  if (length < 4 || entry >= length) {
    return Deny(HvDenial::kBadHeader, "PAL header fails SKINIT validation");
  }

  // Pin a dedicated core.
  int core = -1;
  if (requested_core >= 0) {
    if (requested_core >= machine_->num_cpus() ||
        !machine_->cpu(requested_core)->pal_dedicated) {
      return Deny(HvDenial::kBadCore, "requested core is not PAL-dedicated");
    }
    bool busy = false;
    for (const auto& [id, session] : sessions_) {
      if (session.core == requested_core && session.running_or_protected()) {
        busy = true;
        break;
      }
    }
    core = busy ? -1 : requested_core;
    if (core < 0) {
      return Deny(HvDenial::kNoFreeCore, "requested core already runs a session");
    }
  } else {
    for (int i = machine_->num_cpus() - 1; i >= 0; --i) {
      if (!machine_->cpu(i)->pal_dedicated) {
        continue;
      }
      bool busy = false;
      for (const auto& [id, session] : sessions_) {
        if (session.core == i && session.running_or_protected()) {
          busy = true;
          break;
        }
      }
      if (!busy) {
        core = i;
        break;
      }
    }
    if (core < 0) {
      return Deny(HvDenial::kNoFreeCore, "every PAL-dedicated core is busy");
    }
  }

  const bool mirrored = config_.mirror_hardware_pcr;
  if (mirrored) {
    for (const auto& [id, session] : sessions_) {
      if (session.mirrored && session.state != HvSessionState::kCompleted) {
        return Deny(HvDenial::kTpmBusy, "hardware PCR 17 is held by another mirrored session");
      }
    }
  }

  // Protect the region (nested pages + DEV), then measure it on the main
  // CPU - the hypervisor never streams bytes to the TPM, which is exactly
  // the modeled latency win over SKINIT-per-session.
  machine_->dev()->Protect(slb_base, kSlbAllocationSize);
  machine_->clock()->AdvanceMillis(machine_->timing().hv.npt_update_us / 1000.0);
  stats_.os_pause_ns +=
      static_cast<uint64_t>(machine_->timing().hv.npt_update_us * 1000.0 + 0.5);

  Bytes measurement;
  MeasureOutcome outcome = MeasureOutcome::kHashed;
  if (machine_->measurement_engine() != nullptr) {
    Result<Bytes> cached =
        machine_->measurement_engine()->Measure(machine_->memory(), slb_base, length, &outcome);
    if (!cached.ok()) {
      machine_->dev()->Unprotect(slb_base, kSlbAllocationSize);
      return cached.status();
    }
    measurement = cached.take();
  } else {
    Result<Bytes> bytes = machine_->memory()->Read(slb_base, length);
    if (!bytes.ok()) {
      machine_->dev()->Unprotect(slb_base, kSlbAllocationSize);
      return bytes.status();
    }
    measurement = Sha1::Digest(bytes.value());
  }
  double measure_ms = 0;
  switch (outcome) {
    case MeasureOutcome::kHashed:
      measure_ms = machine_->timing().Sha1Millis(length);
      break;
    case MeasureOutcome::kVerifiedHit:
      measure_ms = machine_->timing().MemTouchMillis(length);
      break;
    case MeasureOutcome::kCleanHit:
      break;
  }
  machine_->clock()->AdvanceMillis(measure_ms);
  stats_.os_pause_ns += static_cast<uint64_t>(measure_ms * 1e6 + 0.5);

  HvSession session;
  session.id = next_session_id_++;
  session.slb_base = slb_base;
  session.core = core;
  session.mirrored = mirrored;
  session.upcr = ExpectedPcr17AfterSkinit(measurement);
  session.launch.slb_base = slb_base;
  session.launch.slb_length = length;
  session.launch.entry_point = entry;
  session.launch.measurement = measurement;

  // Mirror the dynamic-launch PCR handshake: the hypervisor retains the
  // locality-4 privilege from its own launch and context-switches the
  // hardware PCR 17 to the PAL's chain for the session's duration.
  if (mirrored) {
    machine_->tpm_transport()->hardware()->SkinitReset(measurement);
  }

  // Drop the pinned core out of guest mode into the flat ring-0 state the
  // SLB core expects (the VMCB for this core now runs trusted code).
  Cpu* pinned = machine_->cpu(core);
  session.saved_cr3 = pinned->cr3;
  pinned->guest_mode = false;
  pinned->interrupts_enabled = false;
  pinned->debug_access_enabled = false;
  pinned->paging_enabled = false;
  pinned->ring = 0;
  pinned->LoadFlatSegments();
  CRASH_POINT("hv.session_protected");

  session.state = HvSessionState::kProtected;
  const uint64_t id = session.id;
  sessions_.emplace(id, std::move(session));
  ++stats_.sessions_started;
  obs::Count(obs::Ctr::kHvSessions);
  int live = 0;
  for (const auto& [sid, s] : sessions_) {
    if (s.state != HvSessionState::kCompleted) {
      ++live;
    }
  }
  obs::ObserveMs(obs::Hist::kHvSessionConcurrency, static_cast<double>(live));
  return id;
}

Result<SessionRecord> Hypervisor::RunSession(uint64_t id, const PalBinary& binary,
                                             const SlbCoreOptions& options) {
  if (!resident()) {
    return Deny(HvDenial::kNotLaunched, "run-session before hypervisor launch");
  }
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Deny(HvDenial::kSessionNotFound, "no such session");
  }
  HvSession* session = &it->second;
  if (session->state != HvSessionState::kProtected) {
    return Deny(HvDenial::kSessionNotRunning, "session is not awaiting execution");
  }
  session->state = HvSessionState::kRunning;
  HvSessionEnv env(this, session);
  Result<SessionRecord> record = SlbCore::RunWith(machine_, &env, session->launch, binary, options);
  if (!record.ok()) {
    // The session died mid-flight; tear it down so the slot and core free
    // up and the OS keeps running (no whole-machine reboot needed).
    if (session->state != HvSessionState::kCompleted) {
      EndSession(session, session->saved_cr3);
    }
    sessions_.erase(id);
    return record.status();
  }
  return record;
}

void Hypervisor::EndSession(HvSession* session, uint64_t restored_cr3) {
  CRASH_POINT("hv.session_end");
  Cpu* pinned = machine_->cpu(session->core);
  pinned->LoadFlatSegments();
  pinned->paging_enabled = true;
  pinned->cr3 = restored_cr3;
  pinned->ring = 0;
  pinned->interrupts_enabled = true;
  pinned->debug_access_enabled = true;
  pinned->guest_mode = true;  // Back under the hypervisor as an OS guest.

  machine_->dev()->Unprotect(session->slb_base, kSlbAllocationSize);
  machine_->clock()->AdvanceMillis(machine_->timing().hv.npt_update_us / 1000.0);
  if (session->mirrored) {
    // The hardware PCR 17 keeps the PAL's final chain - exactly what a
    // classic session leaves behind - and the locality drops back to 0.
    Status dropped = machine_->tpm_transport()->hardware()->SetLocality(0);
    (void)dropped;  // Hardware transitions to locality 0 always succeed.
  }
  session->state = HvSessionState::kCompleted;
  ++stats_.sessions_completed;
  ChargeExit();
}

Result<Bytes> Hypervisor::HcCollectOutputs(uint64_t id) {
  if (!resident()) {
    return Deny(HvDenial::kNotLaunched, "collect-outputs before hypervisor launch");
  }
  ChargeExit();
  if (id == 0) {
    return Deny(HvDenial::kBadHypercallParam, "session id zero is never issued");
  }
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Deny(HvDenial::kSessionNotFound, "no such session");
  }
  if (it->second.state != HvSessionState::kCompleted) {
    return Deny(HvDenial::kSessionNotRunning, "session has not completed");
  }
  Result<Bytes> outputs =
      ReadIoPage(*machine_->memory(), it->second.slb_base + kSlbOutputsOffset);
  if (!outputs.ok()) {
    return outputs.status();
  }
  sessions_.erase(it);
  return outputs;
}

const HvSession* Hypervisor::FindSession(uint64_t id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

bool Hypervisor::FaultsGuestAccess(int core, uint64_t addr, size_t len, bool is_write) {
  (void)core;
  (void)is_write;
  if (len == 0) {
    return false;
  }
  if (OverlapsHypervisor(addr, len)) {
    ++stats_.denials_total;
    ++stats_.denials[static_cast<size_t>(HvDenial::kNptViolation)];
    obs::Count(obs::Ctr::kHvDeniedAccesses);
    ChargeExit();
    return true;
  }
  const HvSession* session = FindSessionCovering(addr, len);
  if (session != nullptr && session->state != HvSessionState::kCompleted) {
    ++stats_.denials_total;
    ++stats_.denials[static_cast<size_t>(HvDenial::kNptViolation)];
    obs::Count(obs::Ctr::kHvDeniedAccesses);
    ChargeExit();
    return true;
  }
  return false;
}

}  // namespace hv
}  // namespace flicker
