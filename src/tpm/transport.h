// The single choke point between software and the TPM device model.
//
// TpmTransport carries every driver-side command as a byte frame
// (src/tpm/commands.h) through Transmit(), and owns the TIS locality state:
// software may request localities 0-2; locality 4 is reachable only through
// the hardware facade that wraps Tpm::HardwareInterface (the SKINIT path).
// The transport rejects locality-inappropriate commands before they reach
// the device, records every command in a fixed-capacity trace ring (ordinal,
// locality, simulated latency, result code), and can inject faults - drop,
// garble or delay every Nth frame - so upper layers' retry logic is testable.
//
// Every ring record is also forwarded to the unified observability stream
// (src/obs/trace.h) as a completed span and counted in the global metrics
// registry: the ring is a bounded dump-on-failure view over that stream,
// not a parallel truth, and both report timestamps on the shared sim-clock
// nanosecond epoch.
//
// TpmClient is the driver built on top: it mirrors the Tpm software API
// method-for-method so call sites keep their shape, but every operation is
// marshalled, transmitted, policy-checked and unmarshalled. Timing is
// unchanged by construction: the device model charges the calibrated
// latencies exactly as before, and the transport adds none of its own.

#ifndef FLICKER_SRC_TPM_TRANSPORT_H_
#define FLICKER_SRC_TPM_TRANSPORT_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/rsa.h"
#include "src/tpm/structures.h"
#include "src/tpm/tpm.h"

namespace flicker {

// One traced command (or TIS/hardware pseudo-command). `at_ns` is the
// sim-clock timestamp when dispatch completed, on the same nanosecond epoch
// as every other trace in the tree (obs::NowNs) - the LossyChannel delivery
// rings and the unified span stream report in the identical unit, so a TPM
// command can be lined up against the network frame that caused it.
struct TraceEntry {
  uint64_t seq = 0;
  uint32_t ordinal = 0;
  int locality = 0;
  uint64_t at_ns = 0;        // Sim-clock completion time (shared ns epoch).
  double latency_ms = 0;     // Simulated time charged while dispatching.
  uint32_t result_code = 0;  // Wire return code (0 = TPM_SUCCESS).
};

// Fault-injection plan applied to transmitted frames. `every_n` selects
// every Nth frame (1-based count of Transmit calls); 0 disables injection.
struct FaultPlan {
  enum class Kind { kNone, kDrop, kGarble, kDelay };
  Kind kind = Kind::kNone;
  uint64_t every_n = 0;
  double delay_ms = 0;         // Extra latency for kDelay.
  double drop_timeout_ms = 0;  // Time the driver burns waiting on a dropped frame.
};

class TpmTransport {
 public:
  static constexpr size_t kTraceCapacity = 256;

  explicit TpmTransport(Tpm* tpm);

  // Sends one request frame to the device and returns the response frame.
  // Transport-level failures (dropped frame, locality rejection) surface as
  // an error Status; device-level errors come back encoded in the response.
  Result<Bytes> Transmit(const Bytes& request_frame);

  // TIS locality handshake for the software side (localities 0-2 only;
  // 3 and 4 are denied exactly as Tpm::RequestLocality denies them).
  // ReleaseLocality restores the locality active before the last request.
  Status RequestLocality(int locality);
  Status ReleaseLocality();
  int locality() const { return tpm_->locality(); }

  // ---- Hardware facade: the sole holder of Tpm::HardwareInterface ----
  //
  // The chipset/CPU model goes through this so hardware-path events appear
  // in the same trace as driver commands.
  class Hardware {
   public:
    explicit Hardware(TpmTransport* transport) : transport_(transport) {}

    void SkinitReset(const Bytes& slb_measurement);
    void ExtendIdentityPcr(const Bytes& measurement);
    // TPM_Init alone: volatile state is lost and the device demands a
    // TPM_Startup before accepting further commands. This is the reset-line
    // event the power domain pulls on PowerCut/WarmReset.
    void Init();
    // Legacy reset: TPM_Init plus the BIOS's automatic TPM_Startup(ST_CLEAR),
    // preserving the pre-lifecycle Reboot contract.
    void PowerCycle();
    // Latches/clears the hardware self-test fault (for failure-mode tests).
    void ForceFailureMode();
    void ClearFailureMode();
    Status SetLocality(int locality);

   private:
    TpmTransport* transport_;
  };

  Hardware* hardware() { return &hardware_; }

  // ---- Fault injection ----
  void set_fault_plan(const FaultPlan& plan) { plan_ = plan; }
  const FaultPlan& fault_plan() const { return plan_; }
  uint64_t faults_injected() const { return faults_injected_; }

  // ---- Trace ring ----
  uint64_t total_commands() const { return total_commands_; }
  // Entries oldest-first; at most kTraceCapacity are retained.
  std::vector<TraceEntry> TraceSnapshot() const;
  void ClearTrace();
  // Human-readable dump of the trace ring (one line per entry), for test
  // fixtures to emit on failure so the command history leading up to a
  // crash/recovery bug is visible.
  void DumpTrace(std::ostream& os) const;

 private:
  friend class Hardware;

  void Record(uint32_t ordinal, int locality, double latency_ms, uint32_t result_code);

  Tpm* tpm_;
  Hardware hardware_;

  std::vector<TraceEntry> ring_;
  size_t ring_next_ = 0;
  uint64_t seq_ = 0;

  FaultPlan plan_;
  uint64_t transmit_count_ = 0;
  uint64_t total_commands_ = 0;
  uint64_t faults_injected_ = 0;

  std::vector<int> locality_stack_;
};

// Driver-side TPM access over the transport. Mirrors the Tpm software API so
// existing call sites (machine->tpm()->..., context->tpm()->...) compile
// unchanged while every operation crosses the wire.
class TpmClient {
 public:
  explicit TpmClient(TpmTransport* transport);

  Bytes GetRandom(size_t len);  // Empty on transport failure.
  Result<Bytes> PcrRead(int index);
  // Extends of dynamic PCRs auto-negotiate locality 2 when the current
  // locality would be rejected, as a real driver's TIS handshake does.
  Status PcrExtend(int index, const Bytes& measurement);
  Status PcrExtendData(int index, const Bytes& data);

  AuthSessionInfo StartOiap();  // handle == 0 on transport failure.
  AuthSessionInfo StartOsap(AuthEntity entity, const Bytes& nonce_odd_osap);
  void TerminateSession(uint32_t handle);

  Result<SealedBlob> Seal(const Bytes& data, const PcrSelection& selection,
                          const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                          const CommandAuth& auth);
  Result<Bytes> Unseal(const SealedBlob& blob, const Bytes& blob_auth, const CommandAuth& auth);

  // Single-frame convenience quote (TPM_ORD_Quote with keyHandle 0: the
  // device loads, signs with and flushes the AIK at the calibrated cost).
  Result<TpmQuote> Quote(const Bytes& nonce, const PcrSelection& selection);

  Bytes GetAikBlob();
  Result<uint32_t> LoadKey2(const Bytes& blob);
  Status FlushKey(uint32_t handle);
  Result<TpmQuote> QuoteWithKey(uint32_t key_handle, const Bytes& nonce,
                                const PcrSelection& selection);

  Status NvDefineSpace(uint32_t index, size_t size, const PcrSelection& read_selection,
                       const std::map<int, Bytes>& read_pcrs, const PcrSelection& write_selection,
                       const std::map<int, Bytes>& write_pcrs, const CommandAuth& auth);
  Status NvWrite(uint32_t index, const Bytes& data);
  Result<Bytes> NvRead(uint32_t index);

  Result<uint32_t> CreateCounter(const Bytes& counter_auth, const CommandAuth& auth);
  Result<uint64_t> IncrementCounter(uint32_t id, const Bytes& counter_auth);
  Result<uint64_t> ReadCounter(uint32_t id);

  Status TakeOwnership(const Bytes& owner_auth);
  Result<Tpm::Capabilities> GetCapability();

  // ---- Lifecycle (TPM_Startup family) ----
  Result<TpmStartupReport> Startup(TpmStartupType type);
  Status SaveState();
  Status SelfTestFull();
  Result<uint32_t> GetTestResult();

  // Fetched over the wire once at construction (a capability read; free).
  const RsaPublicKey& aik_public() const { return aik_public_; }
  const RsaPublicKey& srk_public() const { return srk_public_; }
  static Bytes WellKnownSecret() { return Tpm::WellKnownSecret(); }

  int locality() const { return transport_->locality(); }
  TpmTransport* transport() { return transport_; }
  TpmTransport::Hardware* hardware() { return transport_->hardware(); }

 private:
  Result<Bytes> Roundtrip(const Bytes& request_frame);

  TpmTransport* transport_;
  RsaPublicKey aik_public_;
  RsaPublicKey srk_public_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_TPM_TRANSPORT_H_
