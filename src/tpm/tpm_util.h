// Driver-side TPM utilities: the authorization-session handshakes (OIAP /
// OSAP) needed to call Seal, Unseal, NV definition and counter creation.
//
// This is the paper's "TPM Utilities" PAL module (Fig. 6): PAL code links it
// to perform TPM operations without hand-rolling the session HMACs. Each
// helper starts a session, computes the same parameter digest the TPM
// checks, presents the HMAC, and terminates the session.

#ifndef FLICKER_SRC_TPM_TPM_UTIL_H_
#define FLICKER_SRC_TPM_TPM_UTIL_H_

#include <map>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/tpm/tpm.h"

namespace flicker {

// Seals `data` so it is released only when the PCRs in `selection` hold
// `release_pcrs` (current values where omitted) and the caller knows
// `blob_auth`. `srk_secret` is the SRK usage secret (the well-known secret
// unless changed).
Result<SealedBlob> TpmSealData(Tpm* tpm, const Bytes& data, const PcrSelection& selection,
                               const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                               const Bytes& srk_secret = Tpm::WellKnownSecret());

Result<Bytes> TpmUnsealData(Tpm* tpm, const SealedBlob& blob, const Bytes& blob_auth,
                            const Bytes& srk_secret = Tpm::WellKnownSecret());

// Owner-authorized NV space definition.
Status TpmDefineNvSpace(Tpm* tpm, uint32_t index, size_t size, const PcrSelection& read_selection,
                        const std::map<int, Bytes>& read_pcrs, const PcrSelection& write_selection,
                        const std::map<int, Bytes>& write_pcrs, const Bytes& owner_secret);

// Owner-authorized monotonic-counter creation.
Result<uint32_t> TpmCreateCounter(Tpm* tpm, const Bytes& counter_auth, const Bytes& owner_secret);

}  // namespace flicker

#endif  // FLICKER_SRC_TPM_TPM_UTIL_H_
