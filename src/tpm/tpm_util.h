// Driver-side TPM utilities: the authorization-session handshakes (OIAP /
// OSAP) needed to call Seal, Unseal, NV definition and counter creation.
//
// This is the paper's "TPM Utilities" PAL module (Fig. 6): PAL code links it
// to perform TPM operations without hand-rolling the session HMACs. Each
// helper starts a session, computes the same parameter digest the TPM
// checks, presents the HMAC, and terminates the session.
//
// The helpers are templates over the device handle so they run identically
// against the raw device model (`Tpm`, in device-level tests) and against
// the byte-marshalled transport client (`TpmClient`, everywhere else).

#ifndef FLICKER_SRC_TPM_TPM_UTIL_H_
#define FLICKER_SRC_TPM_TPM_UTIL_H_

#include <map>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/sha1.h"
#include "src/tpm/tpm.h"

namespace flicker {

namespace tpm_util_internal {

// Builds the CommandAuth for a command whose parameters hash to
// `param_digest`, under an OIAP session.
template <typename Device>
CommandAuth MakeAuth(Device* tpm, const AuthSessionInfo& session, const Bytes& secret,
                     const Bytes& param_digest) {
  CommandAuth auth;
  auth.session_handle = session.handle;
  auth.nonce_odd = tpm->GetRandom(kPcrSize);
  auth.auth = Tpm::ComputeCommandAuth(secret, param_digest, session.nonce_even, auth.nonce_odd);
  return auth;
}

}  // namespace tpm_util_internal

// Seals `data` so it is released only when the PCRs in `selection` hold
// `release_pcrs` (current values where omitted) and the caller knows
// `blob_auth`. `srk_secret` is the SRK usage secret (the well-known secret
// unless changed).
template <typename Device>
Result<SealedBlob> TpmSealData(Device* tpm, const Bytes& data, const PcrSelection& selection,
                               const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                               const Bytes& srk_secret = Tpm::WellKnownSecret()) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Seal"), data, selection.Serialize()));
  CommandAuth auth = tpm_util_internal::MakeAuth(tpm, session, srk_secret, param_digest);
  Result<SealedBlob> blob = tpm->Seal(data, selection, release_pcrs, blob_auth, auth);
  tpm->TerminateSession(session.handle);
  return blob;
}

template <typename Device>
Result<Bytes> TpmUnsealData(Device* tpm, const SealedBlob& blob, const Bytes& blob_auth,
                            const Bytes& srk_secret = Tpm::WellKnownSecret()) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Unseal"), blob.ciphertext));
  CommandAuth auth = tpm_util_internal::MakeAuth(tpm, session, srk_secret, param_digest);
  Result<Bytes> data = tpm->Unseal(blob, blob_auth, auth);
  tpm->TerminateSession(session.handle);
  return data;
}

// Owner-authorized NV space definition.
template <typename Device>
Status TpmDefineNvSpace(Device* tpm, uint32_t index, size_t size,
                        const PcrSelection& read_selection, const std::map<int, Bytes>& read_pcrs,
                        const PcrSelection& write_selection, const std::map<int, Bytes>& write_pcrs,
                        const Bytes& owner_secret) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_NV_DefineSpace"),
                                           read_selection.Serialize(),
                                           write_selection.Serialize()));
  CommandAuth auth = tpm_util_internal::MakeAuth(tpm, session, owner_secret, param_digest);
  Status st =
      tpm->NvDefineSpace(index, size, read_selection, read_pcrs, write_selection, write_pcrs, auth);
  tpm->TerminateSession(session.handle);
  return st;
}

// Owner-authorized monotonic-counter creation.
template <typename Device>
Result<uint32_t> TpmCreateCounter(Device* tpm, const Bytes& counter_auth,
                                  const Bytes& owner_secret) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_CreateCounter"), counter_auth));
  CommandAuth auth = tpm_util_internal::MakeAuth(tpm, session, owner_secret, param_digest);
  Result<uint32_t> id = tpm->CreateCounter(counter_auth, auth);
  tpm->TerminateSession(session.handle);
  return id;
}

}  // namespace flicker

#endif  // FLICKER_SRC_TPM_TPM_UTIL_H_
