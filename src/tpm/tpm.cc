#include "src/tpm/tpm.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/common/fault.h"
#include "src/crypto/aes.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"

namespace flicker {

namespace {

constexpr char kSealMagic[] = "TPM-SEAL-v1";
constexpr char kQuoteFixed[] = "QUOT";  // TPM_QUOTE_INFO fixed tag.

// RSA key generation at 2048 bits costs a few hundred host-milliseconds, and
// the test suite builds many TPMs with identical seeds. Manufacture-time key
// derivation is deterministic in (seed, bits), so memoize it.
struct ManufacturedKeys {
  RsaPrivateKey srk;
  RsaPrivateKey aik;
};

const ManufacturedKeys& GetManufacturedKeys(uint64_t seed, size_t bits) {
  static std::mutex mutex;
  static std::map<std::pair<uint64_t, size_t>, ManufacturedKeys>* cache =
      new std::map<std::pair<uint64_t, size_t>, ManufacturedKeys>();
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_pair(seed, bits);
  auto it = cache->find(key);
  if (it == cache->end()) {
    Drbg keygen_rng(seed);
    ManufacturedKeys keys;
    keys.srk = RsaGenerateKey(bits, &keygen_rng);
    keys.aik = RsaGenerateKey(bits, &keygen_rng);
    it = cache->emplace(key, std::move(keys)).first;
  }
  return it->second;
}

// TPM_QUOTE_INFO: fixed tag || composite || external nonce.
Bytes QuoteInfoDigestInput(const Bytes& composite, const Bytes& nonce) {
  Bytes info = BytesOf(kQuoteFixed);
  info.insert(info.end(), composite.begin(), composite.end());
  info.insert(info.end(), nonce.begin(), nonce.end());
  return info;
}

}  // namespace

Tpm::Tpm(SimClock* clock, TpmTimingProfile profile, TpmConfig config)
    : clock_(clock),
      profile_(std::move(profile)),
      config_(config),
      hardware_(this),
      rng_(config.manufacture_seed ^ 0x54504d21ULL),  // "TPM!"
      srk_usage_auth_(WellKnownSecret()) {
  const ManufacturedKeys& keys = GetManufacturedKeys(config.manufacture_seed, config.key_bits);
  srk_ = keys.srk;
  aik_ = keys.aik;
}

// ---- Lifecycle ----

uint32_t Tpm::JournalCrc(const JournalEntry& entry) {
  // CRC-32 (reflected polynomial) over every field but the checksum itself.
  // A record whose stored crc disagrees was torn mid-write.
  Bytes encoded;
  encoded.push_back(static_cast<uint8_t>(entry.kind));
  encoded.push_back(entry.committed ? 1 : 0);
  PutUint32(&encoded, entry.index);
  PutUint64(&encoded, entry.counter_value);
  encoded.insert(encoded.end(), entry.data.begin(), entry.data.end());

  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : encoded) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

void Tpm::ReplayJournal(TpmStartupReport* report) {
  if (!journal_.has_value()) {
    return;
  }
  // Replay itself is a durability boundary: a second power cut striking here
  // leaves the journal record in place, and the next Startup replays it to
  // the same state (discard and roll-forward are both idempotent).
  CRASH_POINT("tpm.journal.replay");
  const JournalEntry& entry = *journal_;
  if (entry.crc != JournalCrc(entry) || !entry.committed) {
    // Torn record (checksum mismatch) or crash before the commit mark: the
    // mutation never happened as far as the caller knows, and the payload
    // area was untouched, so discarding is the correct roll-back.
    journal_.reset();
    report->journal_discarded = true;
    return;
  }
  // Committed: roll forward. Re-applying is idempotent, so a crash that
  // struck between commit and apply (or mid-apply, leaving a half-written
  // payload) converges to the same state.
  switch (entry.kind) {
    case JournalEntry::Kind::kNvWrite: {
      auto it = nv_spaces_.find(entry.index);
      if (it != nv_spaces_.end()) {
        it->second.data = entry.data;
      }
      break;
    }
    case JournalEntry::Kind::kCounterIncrement: {
      auto it = counters_.find(entry.index);
      if (it != counters_.end()) {
        // max() keeps the counter monotonic even if the increment had
        // already landed before the cut.
        it->second.value = std::max(it->second.value, entry.counter_value);
      }
      break;
    }
  }
  journal_.reset();
  report->journal_rolled_forward = true;
}

Result<TpmStartupReport> Tpm::Startup(TpmStartupType type) {
  if (lifecycle_ == TpmLifecycleState::kOperational) {
    return FailedPreconditionError("TPM_Startup without a preceding TPM_Init");
  }
  TpmStartupReport report;
  ReplayJournal(&report);

  if (type == TpmStartupType::kState) {
    if (!saved_state_valid_) {
      // The spec's answer to a ST_STATE resume with nothing to resume:
      // failure mode until the platform restarts with ST_CLEAR.
      self_test_result_ = kTpmTestNoSavedState;
      lifecycle_ = TpmLifecycleState::kFailed;
      return TpmFailedError("TPM_Startup(ST_STATE) without valid saved state");
    }
    pcrs_.RestoreStaticFrom(saved_pcrs_);
    report.state_restored = true;
  } else if (self_test_result_ == kTpmTestNoSavedState) {
    // ST_CLEAR needs no saved state; the resume failure is not permanent.
    self_test_result_ = kTpmTestPassed;
  }
  // The snapshot is single-use either way.
  saved_state_valid_ = false;

  if (self_test_result_ != kTpmTestPassed) {
    lifecycle_ = TpmLifecycleState::kFailed;
    return TpmFailedError("TPM self test failed during startup");
  }
  lifecycle_ = TpmLifecycleState::kOperational;
  return report;
}

Status Tpm::SaveState() {
  if (lifecycle_ != TpmLifecycleState::kOperational) {
    return FailedPreconditionError("TPM_SaveState requires an operational TPM");
  }
  saved_state_valid_ = false;  // A partially written snapshot is no snapshot.
  saved_pcrs_ = pcrs_;
  CRASH_POINT("tpm.save_state");
  saved_state_valid_ = true;
  return Status::Ok();
}

Status Tpm::SelfTestFull() {
  if (lifecycle_ == TpmLifecycleState::kNeedStartup) {
    return FailedPreconditionError("TPM_Init: TPM_Startup required");
  }
  if (self_test_result_ != kTpmTestPassed) {
    lifecycle_ = TpmLifecycleState::kFailed;
    return TpmFailedError("TPM self test failed");
  }
  lifecycle_ = TpmLifecycleState::kOperational;
  return Status::Ok();
}

Bytes Tpm::GetRandom(size_t len) {
  Charge(profile_.get_random_ms);
  return rng_.Generate(len);
}

Result<Bytes> Tpm::PcrRead(int index) {
  Charge(profile_.pcr_read_ms);
  return pcrs_.Read(index);
}

bool Tpm::ExtendAllowedAt(int index, int locality) {
  switch (index) {
    case 17:
    case 18:
    case 19:
      return locality >= 2;
    case 20:
      return locality >= 1;
    case 21:
    case 22:
      return locality == 2;
    default:
      return true;
  }
}

Status Tpm::PcrExtend(int index, const Bytes& measurement) {
  Charge(profile_.pcr_extend_ms);
  if (index >= 0 && index < kNumPcrs && !ExtendAllowedAt(index, locality_)) {
    return PermissionDeniedError("PCR " + std::to_string(index) +
                                 " cannot be extended from locality " + std::to_string(locality_));
  }
  return pcrs_.Extend(index, measurement);
}

Status Tpm::PcrExtendData(int index, const Bytes& data) {
  return PcrExtend(index, Sha1::Digest(data));
}

AuthSessionInfo Tpm::StartOiap() {
  Charge(profile_.session_start_ms);
  AuthSessionInfo session;
  session.handle = next_session_handle_++;
  session.nonce_even = rng_.Generate(kPcrSize);
  session.osap = false;
  sessions_[session.handle] = session;
  return session;
}

AuthSessionInfo Tpm::StartOsap(AuthEntity entity, const Bytes& nonce_odd_osap) {
  Charge(profile_.session_start_ms);
  AuthSessionInfo session;
  session.handle = next_session_handle_++;
  session.nonce_even = rng_.Generate(kPcrSize);
  session.osap = true;
  Bytes nonce_even_osap = rng_.Generate(kPcrSize);
  session.shared_secret = HmacSha1(EntitySecret(entity), Concat(nonce_even_osap, nonce_odd_osap));
  sessions_[session.handle] = session;
  // The caller derives the same shared secret; hand back nonce_even_osap via
  // the nonce_even field convention is wrong, so expose it in shared_secret
  // for the simulator's driver (which is trusted to model the handshake).
  // To keep both sides honest we return the derived secret directly: the
  // driver-side helper recomputes nothing but uses this value, exactly as a
  // real driver ends up holding the same secret after the handshake.
  return session;
}

void Tpm::TerminateSession(uint32_t handle) {
  sessions_.erase(handle);
}

const Bytes& Tpm::EntitySecret(AuthEntity entity) const {
  switch (entity) {
    case AuthEntity::kSrk:
      return srk_usage_auth_;
    case AuthEntity::kOwner:
      return owner_auth_;
  }
  return srk_usage_auth_;
}

Bytes Tpm::ComputeCommandAuth(const Bytes& secret, const Bytes& param_digest,
                              const Bytes& nonce_even, const Bytes& nonce_odd) {
  return HmacSha1(secret, Concat(param_digest, nonce_even, nonce_odd));
}

Status Tpm::CheckAuth(AuthEntity entity, const Bytes& param_digest, const CommandAuth& auth) {
  auto it = sessions_.find(auth.session_handle);
  if (it == sessions_.end()) {
    return PermissionDeniedError("unknown authorization session");
  }
  AuthSessionInfo& session = it->second;
  const Bytes& secret = session.osap ? session.shared_secret : EntitySecret(entity);
  Bytes expected = ComputeCommandAuth(secret, param_digest, session.nonce_even, auth.nonce_odd);
  if (!ConstantTimeEquals(expected, auth.auth)) {
    // A real TPM terminates the session on auth failure (defense against
    // online guessing); model that.
    sessions_.erase(it);
    return PermissionDeniedError("authorization HMAC mismatch");
  }
  // Roll the rolling nonce for the next use of this session.
  session.nonce_even = rng_.Generate(kPcrSize);
  return Status::Ok();
}

Result<Bytes> Tpm::CompositeWithOverrides(const PcrSelection& selection,
                                          const std::map<int, Bytes>& overrides) const {
  if (selection.Empty()) {
    return InvalidArgumentError("PCR selection must not be empty");
  }
  Bytes buffer = selection.Serialize();
  Bytes values;
  for (int index : selection.Indices()) {
    auto it = overrides.find(index);
    if (it != overrides.end()) {
      if (it->second.size() != kPcrSize) {
        return InvalidArgumentError("override PCR value must be 20 bytes");
      }
      values.insert(values.end(), it->second.begin(), it->second.end());
    } else {
      Result<Bytes> current = pcrs_.Read(index);
      if (!current.ok()) {
        return current.status();
      }
      values.insert(values.end(), current.value().begin(), current.value().end());
    }
  }
  PutUint32(&buffer, static_cast<uint32_t>(values.size()));
  buffer.insert(buffer.end(), values.begin(), values.end());
  return Sha1::Digest(buffer);
}

Result<SealedBlob> Tpm::Seal(const Bytes& data, const PcrSelection& selection,
                             const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                             const CommandAuth& auth) {
  Charge(profile_.seal_ms);
  if (blob_auth.size() != kPcrSize) {
    return InvalidArgumentError("blob auth must be 20 bytes");
  }
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Seal"), data, selection.Serialize()));
  FLICKER_RETURN_IF_ERROR(CheckAuth(AuthEntity::kSrk, param_digest, auth));

  Result<Bytes> composite = CompositeWithOverrides(selection, release_pcrs);
  if (!composite.ok()) {
    return composite.status();
  }

  // Inner plaintext: magic || selection || release composite || blob auth ||
  // data. The whole envelope is AES-CBC under a fresh key wrapped by the SRK,
  // then MACed - the hybrid construction §2.2 describes.
  Bytes inner = BytesOf(kSealMagic);
  Bytes selection_wire = selection.Serialize();
  PutUint16(&inner, static_cast<uint16_t>(selection_wire.size()));
  inner.insert(inner.end(), selection_wire.begin(), selection_wire.end());
  inner.insert(inner.end(), composite.value().begin(), composite.value().end());
  inner.insert(inner.end(), blob_auth.begin(), blob_auth.end());
  PutUint32(&inner, static_cast<uint32_t>(data.size()));
  inner.insert(inner.end(), data.begin(), data.end());

  Bytes aes_key = rng_.Generate(16);
  Bytes mac_key = rng_.Generate(20);
  Bytes iv = rng_.Generate(16);
  Aes aes(aes_key);
  Bytes body = aes.EncryptCbc(inner, iv);

  Bytes wrapped_keys_plain = Concat(aes_key, mac_key);
  Result<Bytes> wrapped = RsaEncryptPkcs1(srk_.pub, wrapped_keys_plain, &rng_);
  if (!wrapped.ok()) {
    return wrapped.status();
  }

  SealedBlob blob;
  PutUint32(&blob.ciphertext, static_cast<uint32_t>(wrapped.value().size()));
  blob.ciphertext.insert(blob.ciphertext.end(), wrapped.value().begin(), wrapped.value().end());
  blob.ciphertext.insert(blob.ciphertext.end(), iv.begin(), iv.end());
  PutUint32(&blob.ciphertext, static_cast<uint32_t>(body.size()));
  blob.ciphertext.insert(blob.ciphertext.end(), body.begin(), body.end());
  Bytes tag = HmacSha1(mac_key, Concat(iv, body));
  blob.ciphertext.insert(blob.ciphertext.end(), tag.begin(), tag.end());

  SecureErase(&aes_key);
  SecureErase(&mac_key);
  return blob;
}

Result<Bytes> Tpm::Unseal(const SealedBlob& blob, const Bytes& blob_auth, const CommandAuth& auth) {
  Charge(profile_.unseal_ms);
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Unseal"), blob.ciphertext));
  FLICKER_RETURN_IF_ERROR(CheckAuth(AuthEntity::kSrk, param_digest, auth));

  const Bytes& ct = blob.ciphertext;
  if (ct.size() < 4) {
    return InvalidArgumentError("sealed blob truncated");
  }
  size_t offset = 0;
  uint32_t wrapped_len = GetUint32(ct, offset);
  offset += 4;
  if (offset + wrapped_len + 16 + 4 > ct.size()) {
    return InvalidArgumentError("sealed blob truncated");
  }
  Bytes wrapped(ct.begin() + static_cast<long>(offset),
                ct.begin() + static_cast<long>(offset + wrapped_len));
  offset += wrapped_len;
  Bytes iv(ct.begin() + static_cast<long>(offset), ct.begin() + static_cast<long>(offset + 16));
  offset += 16;
  uint32_t body_len = GetUint32(ct, offset);
  offset += 4;
  if (offset + body_len + kPcrSize != ct.size()) {
    return InvalidArgumentError("sealed blob truncated");
  }
  Bytes body(ct.begin() + static_cast<long>(offset),
             ct.begin() + static_cast<long>(offset + body_len));
  offset += body_len;
  Bytes tag(ct.begin() + static_cast<long>(offset), ct.end());

  Result<Bytes> wrapped_keys = RsaDecryptPkcs1(srk_, wrapped);
  if (!wrapped_keys.ok() || wrapped_keys.value().size() != 36) {
    return IntegrityFailureError("sealed blob key unwrap failed");
  }
  Bytes aes_key(wrapped_keys.value().begin(), wrapped_keys.value().begin() + 16);
  Bytes mac_key(wrapped_keys.value().begin() + 16, wrapped_keys.value().end());

  if (!HmacSha1Verify(mac_key, Concat(iv, body), tag)) {
    return IntegrityFailureError("sealed blob MAC mismatch");
  }

  Aes aes(aes_key);
  Result<Bytes> inner = aes.DecryptCbc(body, iv);
  if (!inner.ok()) {
    return IntegrityFailureError("sealed blob decryption failed");
  }
  const Bytes& in = inner.value();

  size_t magic_len = BytesOf(kSealMagic).size();
  if (in.size() < magic_len + 2 ||
      !std::equal(in.begin(), in.begin() + static_cast<long>(magic_len),
                  BytesOf(kSealMagic).begin())) {
    return IntegrityFailureError("sealed blob magic mismatch");
  }
  size_t pos = magic_len;
  uint16_t selection_len = GetUint16(in, pos);
  pos += 2;
  if (pos + selection_len + kPcrSize + kPcrSize + 4 > in.size()) {
    return IntegrityFailureError("sealed blob inner structure truncated");
  }
  // Reconstruct the PCR selection from the wire form (3-byte bitmap).
  PcrSelection selection;
  if (selection_len == 5) {
    uint32_t mask = static_cast<uint32_t>(in[pos + 2]) | (static_cast<uint32_t>(in[pos + 3]) << 8) |
                    (static_cast<uint32_t>(in[pos + 4]) << 16);
    for (int i = 0; i < kNumPcrs; ++i) {
      if ((mask >> i) & 1) {
        selection.Select(i);
      }
    }
  }
  pos += selection_len;
  Bytes sealed_composite(in.begin() + static_cast<long>(pos),
                         in.begin() + static_cast<long>(pos + kPcrSize));
  pos += kPcrSize;
  Bytes sealed_auth(in.begin() + static_cast<long>(pos),
                    in.begin() + static_cast<long>(pos + kPcrSize));
  pos += kPcrSize;
  uint32_t data_len = GetUint32(in, pos);
  pos += 4;
  if (pos + data_len != in.size()) {
    return IntegrityFailureError("sealed blob inner structure truncated");
  }

  if (!ConstantTimeEquals(sealed_auth, blob_auth)) {
    return PermissionDeniedError("sealed blob auth mismatch");
  }

  Result<Bytes> current_composite = pcrs_.ComputeComposite(selection);
  if (!current_composite.ok()) {
    return current_composite.status();
  }
  if (!ConstantTimeEquals(current_composite.value(), sealed_composite)) {
    return IntegrityFailureError("PCR state does not match sealed composite");
  }

  return Bytes(in.begin() + static_cast<long>(pos), in.end());
}

namespace {
constexpr char kAikWrapMagic[] = "TPM-AIKWRAP-v1";
}  // namespace

Bytes Tpm::GetAikBlob() {
  // Hybrid envelope under the SRK: the same construction as sealed storage
  // but without a PCR binding (the AIK is loadable in any platform state).
  Bytes inner = BytesOf(kAikWrapMagic);
  Bytes serialized = aik_.Serialize();
  PutUint32(&inner, static_cast<uint32_t>(serialized.size()));
  inner.insert(inner.end(), serialized.begin(), serialized.end());

  Bytes aes_key = rng_.Generate(16);
  Bytes mac_key = rng_.Generate(20);
  Bytes iv = rng_.Generate(16);
  Aes aes(aes_key);
  Bytes body = aes.EncryptCbc(inner, iv);
  Result<Bytes> wrapped = RsaEncryptPkcs1(srk_.pub, Concat(aes_key, mac_key), &rng_);

  Bytes blob;
  PutUint32(&blob, static_cast<uint32_t>(wrapped.value().size()));
  blob.insert(blob.end(), wrapped.value().begin(), wrapped.value().end());
  blob.insert(blob.end(), iv.begin(), iv.end());
  PutUint32(&blob, static_cast<uint32_t>(body.size()));
  blob.insert(blob.end(), body.begin(), body.end());
  Bytes tag = HmacSha1(mac_key, Concat(iv, body));
  blob.insert(blob.end(), tag.begin(), tag.end());
  SecureErase(&aes_key);
  SecureErase(&mac_key);
  return blob;
}

Result<uint32_t> Tpm::LoadKey2(const Bytes& blob) {
  Charge(profile_.load_key_ms);
  if (blob.size() < 4) {
    return InvalidArgumentError("key blob truncated");
  }
  size_t offset = 0;
  uint32_t wrapped_len = GetUint32(blob, offset);
  offset += 4;
  if (offset + wrapped_len + 16 + 4 > blob.size()) {
    return InvalidArgumentError("key blob truncated");
  }
  Bytes wrapped(blob.begin() + static_cast<long>(offset),
                blob.begin() + static_cast<long>(offset + wrapped_len));
  offset += wrapped_len;
  Bytes iv(blob.begin() + static_cast<long>(offset), blob.begin() + static_cast<long>(offset + 16));
  offset += 16;
  uint32_t body_len = GetUint32(blob, offset);
  offset += 4;
  if (offset + body_len + kPcrSize != blob.size()) {
    return InvalidArgumentError("key blob truncated");
  }
  Bytes body(blob.begin() + static_cast<long>(offset),
             blob.begin() + static_cast<long>(offset + body_len));
  offset += body_len;
  Bytes tag(blob.begin() + static_cast<long>(offset), blob.end());

  Result<Bytes> keys = RsaDecryptPkcs1(srk_, wrapped);
  if (!keys.ok() || keys.value().size() != 36) {
    return IntegrityFailureError("key blob unwrap failed");
  }
  Bytes aes_key(keys.value().begin(), keys.value().begin() + 16);
  Bytes mac_key(keys.value().begin() + 16, keys.value().end());
  if (!HmacSha1Verify(mac_key, Concat(iv, body), tag)) {
    return IntegrityFailureError("key blob MAC mismatch");
  }
  Aes aes(aes_key);
  Result<Bytes> inner = aes.DecryptCbc(body, iv);
  if (!inner.ok()) {
    return IntegrityFailureError("key blob decryption failed");
  }
  size_t magic_len = BytesOf(kAikWrapMagic).size();
  const Bytes& in = inner.value();
  if (in.size() < magic_len + 4 ||
      !std::equal(in.begin(), in.begin() + static_cast<long>(magic_len),
                  BytesOf(kAikWrapMagic).begin())) {
    return IntegrityFailureError("key blob magic mismatch");
  }
  uint32_t key_len = GetUint32(in, magic_len);
  if (magic_len + 4 + key_len != in.size()) {
    return IntegrityFailureError("key blob inner structure truncated");
  }
  Result<RsaPrivateKey> key =
      RsaPrivateKey::Deserialize(Bytes(in.begin() + static_cast<long>(magic_len + 4), in.end()));
  if (!key.ok()) {
    return key.status();
  }
  uint32_t handle = next_key_handle_++;
  key_slots_[handle] = key.take();
  return handle;
}

Status Tpm::FlushKey(uint32_t handle) {
  if (key_slots_.erase(handle) == 0) {
    return NotFoundError("no key loaded at that handle");
  }
  return Status::Ok();
}

Result<TpmQuote> Tpm::QuoteWithKey(uint32_t key_handle, const Bytes& nonce,
                                   const PcrSelection& selection) {
  double sign_ms = profile_.quote_ms - profile_.load_key_ms;
  Charge(sign_ms > 0 ? sign_ms : profile_.quote_ms);
  auto slot = key_slots_.find(key_handle);
  if (slot == key_slots_.end()) {
    return NotFoundError("quote requires a loaded signing key");
  }
  if (selection.Empty()) {
    return InvalidArgumentError("quote requires a PCR selection");
  }
  Result<Bytes> composite = pcrs_.ComputeComposite(selection);
  if (!composite.ok()) {
    return composite.status();
  }

  TpmQuote quote;
  quote.selection = selection;
  quote.nonce = nonce;
  for (int index : selection.Indices()) {
    quote.pcr_values.push_back(pcrs_.Read(index).value());
  }
  quote.signature = RsaSignSha1(slot->second, QuoteInfoDigestInput(composite.value(), nonce));
  return quote;
}

Result<TpmQuote> Tpm::Quote(const Bytes& nonce, const PcrSelection& selection) {
  // Load + sign + flush, charging the full calibrated quote latency.
  Result<uint32_t> handle = LoadKey2(GetAikBlob());
  if (!handle.ok()) {
    return handle.status();
  }
  Result<TpmQuote> quote = QuoteWithKey(handle.value(), nonce, selection);
  Status flushed = FlushKey(handle.value());
  (void)flushed;
  return quote;
}

Status Tpm::NvDefineSpace(uint32_t index, size_t size, const PcrSelection& read_selection,
                          const std::map<int, Bytes>& read_pcrs,
                          const PcrSelection& write_selection,
                          const std::map<int, Bytes>& write_pcrs, const CommandAuth& auth) {
  Charge(profile_.nv_write_ms);
  if (!owned_) {
    return FailedPreconditionError("TPM has no owner; TakeOwnership first");
  }
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_NV_DefineSpace"),
                                           read_selection.Serialize(),
                                           write_selection.Serialize()));
  FLICKER_RETURN_IF_ERROR(CheckAuth(AuthEntity::kOwner, param_digest, auth));
  if (nv_spaces_.count(index) != 0) {
    return InvalidArgumentError("NV index already defined");
  }

  NvSpace space;
  space.size = size;
  space.read_selection = read_selection;
  space.write_selection = write_selection;
  if (!read_selection.Empty()) {
    Result<Bytes> composite = CompositeWithOverrides(read_selection, read_pcrs);
    if (!composite.ok()) {
      return composite.status();
    }
    space.read_composite = composite.value();
  }
  if (!write_selection.Empty()) {
    Result<Bytes> composite = CompositeWithOverrides(write_selection, write_pcrs);
    if (!composite.ok()) {
      return composite.status();
    }
    space.write_composite = composite.value();
  }
  nv_spaces_[index] = std::move(space);
  return Status::Ok();
}

Status Tpm::NvWrite(uint32_t index, const Bytes& data) {
  Charge(profile_.nv_write_ms);
  auto it = nv_spaces_.find(index);
  if (it == nv_spaces_.end()) {
    return NotFoundError("NV index not defined");
  }
  NvSpace& space = it->second;
  if (data.size() > space.size) {
    return ResourceExhaustedError("NV write exceeds defined space");
  }
  if (!space.write_selection.Empty()) {
    Result<Bytes> current = pcrs_.ComputeComposite(space.write_selection);
    if (!current.ok()) {
      return current.status();
    }
    if (!ConstantTimeEquals(current.value(), space.write_composite)) {
      return PermissionDeniedError("PCR state does not authorize NV write");
    }
  }

  // Write-ahead journal: record -> checksum -> commit mark -> apply -> clear,
  // with a durability boundary between each stage. NVRAM programs in
  // sectors, so the apply stage really is tearable: model the first half of
  // the payload landing before the second.
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kNvWrite;
  entry.index = index;
  entry.data = data;
  journal_ = entry;
  CRASH_POINT("tpm.nv_write.journal");  // Torn record: crc still unset.
  journal_->crc = JournalCrc(*journal_);
  CRASH_POINT("tpm.nv_write.staged");  // Valid record, no commit mark.
  journal_->committed = true;
  journal_->crc = JournalCrc(*journal_);
  CRASH_POINT("tpm.nv_write.commit");  // Committed, payload area untouched.
  Bytes torn(data.begin(), data.begin() + static_cast<long>(data.size() / 2));
  if (space.data.size() > torn.size()) {
    torn.insert(torn.end(), space.data.begin() + static_cast<long>(torn.size()),
                space.data.end());
  }
  space.data = torn;
  CRASH_POINT("tpm.nv_write.apply");  // Half-written payload, journal committed.
  space.data = data;
  journal_.reset();
  return Status::Ok();
}

Result<Bytes> Tpm::NvRead(uint32_t index) {
  Charge(profile_.nv_read_ms);
  auto it = nv_spaces_.find(index);
  if (it == nv_spaces_.end()) {
    return NotFoundError("NV index not defined");
  }
  NvSpace& space = it->second;
  if (!space.read_selection.Empty()) {
    Result<Bytes> current = pcrs_.ComputeComposite(space.read_selection);
    if (!current.ok()) {
      return current.status();
    }
    if (!ConstantTimeEquals(current.value(), space.read_composite)) {
      return PermissionDeniedError("PCR state does not authorize NV read");
    }
  }
  return space.data;
}

Result<uint32_t> Tpm::CreateCounter(const Bytes& counter_auth, const CommandAuth& auth) {
  Charge(profile_.counter_ms);
  if (!owned_) {
    return FailedPreconditionError("TPM has no owner; TakeOwnership first");
  }
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_CreateCounter"), counter_auth));
  FLICKER_RETURN_IF_ERROR(CheckAuth(AuthEntity::kOwner, param_digest, auth));
  uint32_t id = next_counter_id_++;
  counters_[id] = Counter{0, counter_auth};
  return id;
}

Result<uint64_t> Tpm::IncrementCounter(uint32_t id, const Bytes& counter_auth) {
  Charge(profile_.counter_ms);
  auto it = counters_.find(id);
  if (it == counters_.end()) {
    return NotFoundError("unknown counter");
  }
  if (!ConstantTimeEquals(it->second.auth, counter_auth)) {
    return PermissionDeniedError("counter auth mismatch");
  }

  // Same journal discipline as NvWrite; the apply itself is a single-word
  // program and therefore atomic, but the window between the commit mark and
  // the apply is not.
  const uint64_t target = it->second.value + 1;
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kCounterIncrement;
  entry.index = id;
  entry.counter_value = target;
  journal_ = entry;
  CRASH_POINT("tpm.counter.journal");  // Torn record: crc still unset.
  journal_->crc = JournalCrc(*journal_);
  CRASH_POINT("tpm.counter.staged");  // Valid record, no commit mark.
  journal_->committed = true;
  journal_->crc = JournalCrc(*journal_);
  CRASH_POINT("tpm.counter.commit");  // Committed, counter word not yet programmed.
  it->second.value = target;
  journal_.reset();
  return target;
}

Result<uint64_t> Tpm::ReadCounter(uint32_t id) {
  Charge(profile_.counter_ms);
  auto it = counters_.find(id);
  if (it == counters_.end()) {
    return NotFoundError("unknown counter");
  }
  return it->second.value;
}

Status Tpm::TakeOwnership(const Bytes& owner_auth) {
  if (owned_) {
    return FailedPreconditionError("TPM already has an owner");
  }
  if (owner_auth.size() != kPcrSize) {
    return InvalidArgumentError("owner auth must be 20 bytes");
  }
  owner_auth_ = owner_auth;
  owned_ = true;
  return Status::Ok();
}

Tpm::Capabilities Tpm::GetCapability() const {
  return Capabilities{kNumPcrs, config_.key_bits, profile_.name};
}

Status Tpm::TransitionLocality(int locality, bool hardware) {
  if (locality < 0 || locality > 4) {
    return InvalidArgumentError("locality must be 0-4");
  }
  if (!hardware && locality >= 3) {
    return PermissionDeniedError("locality " + std::to_string(locality) +
                                 " is hardware-only (SKINIT microcode / ACM)");
  }
  locality_ = locality;
  return Status::Ok();
}

Status Tpm::RequestLocality(int locality) {
  return TransitionLocality(locality, /*hardware=*/false);
}

void Tpm::HardwareInterface::SkinitReset(const Bytes& slb_measurement) {
  Status raised = tpm_->TransitionLocality(4, /*hardware=*/true);
  (void)raised;  // Locality 4 is always reachable from the hardware side.
  // Dynamic PCRs reset only at locality 4 - the property the paper's TCB
  // argument rests on (§2.3); the transition above just established it.
  tpm_->pcrs_.DynamicReset();
  // The measurement arrives over the hardware path; the transfer time is
  // charged by the CPU model as part of SKINIT itself.
  Status st = tpm_->pcrs_.Extend(kSkinitPcr, slb_measurement);
  (void)st;  // A 20-byte digest from the CPU cannot fail validation.
  st = tpm_->TransitionLocality(2, /*hardware=*/true);
  (void)st;
}

Status Tpm::HardwareInterface::SetLocality(int locality) {
  return tpm_->TransitionLocality(locality, /*hardware=*/true);
}

void Tpm::HardwareInterface::ExtendIdentityPcr(const Bytes& measurement) {
  Status st = tpm_->pcrs_.Extend(kSkinitPcr, measurement);
  (void)st;  // 20-byte digests from the CPU cannot fail validation.
}

void Tpm::HardwareInterface::Init() {
  // The reset line: volatile state evaporates, persistent state (NV spaces,
  // counters, the journal, the SaveState snapshot, the fault latch) stays.
  tpm_->pcrs_.PowerCycleReset();
  tpm_->sessions_.clear();
  tpm_->key_slots_.clear();
  Status st = tpm_->TransitionLocality(0, /*hardware=*/true);
  (void)st;
  tpm_->lifecycle_ = TpmLifecycleState::kNeedStartup;
}

void Tpm::HardwareInterface::PowerCycle() {
  Init();
  // The BIOS issues TPM_Startup(ST_CLEAR) during POST; callers of this
  // one-shot reboot get back an operational TPM (or one parked in failure
  // mode, which Startup reports and the caller's next command will see).
  Result<TpmStartupReport> started = tpm_->Startup(TpmStartupType::kClear);
  (void)started;
}

void Tpm::HardwareInterface::ForceFailureMode() {
  tpm_->self_test_result_ = kTpmTestHardwareFault;
  tpm_->lifecycle_ = TpmLifecycleState::kFailed;
}

void Tpm::HardwareInterface::ClearFailureMode() {
  if (tpm_->self_test_result_ == kTpmTestHardwareFault) {
    tpm_->self_test_result_ = kTpmTestPassed;
  }
  // The device stays in failure mode until software runs TPM_Startup;
  // clearing the latch models the fault going away, not the recovery
  // protocol.
}

}  // namespace flicker
