// The TPM's Platform Configuration Register bank with v1.2 static/dynamic
// semantics (paper §2.3):
//   * a reboot resets static PCRs 0-16 to zero and dynamic PCRs 17-23 to -1
//     (all 0xff), so a verifier can distinguish reboot from dynamic reset;
//   * only the CPU's SKINIT handshake may reset the dynamic PCRs to zero;
//   * software can only ever extend.

#ifndef FLICKER_SRC_TPM_PCR_BANK_H_
#define FLICKER_SRC_TPM_PCR_BANK_H_

#include <array>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/tpm/structures.h"

namespace flicker {

class PcrBank {
 public:
  PcrBank() { PowerCycleReset(); }

  // Reboot semantics: static PCRs to 0^20, dynamic PCRs to 0xff^20.
  void PowerCycleReset();

  // The SKINIT-initiated hardware reset: dynamic PCRs (17-23) to 0^20.
  // Callable only by the CPU model; the Tpm facade does not expose it to
  // software.
  void DynamicReset();

  // TPM_Startup(ST_STATE): restore static PCRs 0-16 from a SaveState
  // snapshot. Resettable (dynamic) PCRs keep their post-Init default of -1:
  // a suspend/resume cycle must never resurrect a launch-session PCR value.
  void RestoreStaticFrom(const PcrBank& saved);

  // PCR_i <- SHA1(PCR_i || measurement). Measurement must be 20 bytes.
  Status Extend(int index, const Bytes& measurement);

  Result<Bytes> Read(int index) const;

  // TPM_COMPOSITE_HASH over the selected registers:
  // SHA1(serialized selection || 4-byte value-blob length || values).
  Result<Bytes> ComputeComposite(const PcrSelection& selection) const;

  static bool ValidIndex(int index) { return index >= 0 && index < kNumPcrs; }
  static bool IsDynamic(int index) { return index >= kFirstDynamicPcr && index < kNumPcrs; }

 private:
  std::array<Bytes, kNumPcrs> values_;
};

// Computes the value PCR 17 takes after SKINIT measures an SLB and software
// extends nothing else: SHA1(0^20 || SHA1(slb)). Shared by the CPU model and
// the verifier ("V <- H(0x00^20 || H(P))", paper §4.3.1).
Bytes ExpectedPcr17AfterSkinit(const Bytes& slb_measurement);

}  // namespace flicker

#endif  // FLICKER_SRC_TPM_PCR_BANK_H_
