#include "src/tpm/pcr_bank.h"

#include "src/crypto/sha1.h"

namespace flicker {

void PcrBank::PowerCycleReset() {
  for (int i = 0; i < kNumPcrs; ++i) {
    if (IsDynamic(i)) {
      values_[i] = Bytes(kPcrSize, 0xff);
    } else {
      values_[i] = Bytes(kPcrSize, 0x00);
    }
  }
}

void PcrBank::DynamicReset() {
  for (int i = kFirstDynamicPcr; i < kNumPcrs; ++i) {
    values_[i] = Bytes(kPcrSize, 0x00);
  }
}

void PcrBank::RestoreStaticFrom(const PcrBank& saved) {
  for (int i = 0; i < kFirstDynamicPcr; ++i) {
    values_[i] = saved.values_[i];
  }
}

Status PcrBank::Extend(int index, const Bytes& measurement) {
  if (!ValidIndex(index)) {
    return InvalidArgumentError("PCR index out of range");
  }
  if (measurement.size() != kPcrSize) {
    return InvalidArgumentError("PCR extend value must be 20 bytes");
  }
  values_[index] = Sha1::Digest(Concat(values_[index], measurement));
  return Status::Ok();
}

Result<Bytes> PcrBank::Read(int index) const {
  if (!ValidIndex(index)) {
    return InvalidArgumentError("PCR index out of range");
  }
  return values_[index];
}

Result<Bytes> PcrBank::ComputeComposite(const PcrSelection& selection) const {
  if (selection.Empty()) {
    return InvalidArgumentError("PCR selection must not be empty");
  }
  Bytes buffer = selection.Serialize();
  Bytes values;
  for (int index : selection.Indices()) {
    values.insert(values.end(), values_[index].begin(), values_[index].end());
  }
  PutUint32(&buffer, static_cast<uint32_t>(values.size()));
  buffer.insert(buffer.end(), values.begin(), values.end());
  return Sha1::Digest(buffer);
}

Bytes ExpectedPcr17AfterSkinit(const Bytes& slb_measurement) {
  Bytes zeros(kPcrSize, 0x00);
  return Sha1::Digest(Concat(zeros, slb_measurement));
}

}  // namespace flicker
