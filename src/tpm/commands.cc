#include "src/tpm/commands.h"

#include <utility>

#include "src/common/serde.h"

namespace flicker {

namespace {

// Vendor error band: TPM_SUCCESS is 0, our StatusCodes map above 0x400.
constexpr uint32_t kVendorErrorBase = 0x400;

uint32_t SelectionMask(const PcrSelection& selection) { return selection.mask(); }

PcrSelection SelectionFromMask(uint32_t mask) {
  PcrSelection selection;
  for (int i = 0; i < kNumPcrs; ++i) {
    if ((mask >> i) & 1) {
      selection.Select(i);
    }
  }
  return selection;
}

void WritePcrOverrides(Writer* w, const std::map<int, Bytes>& overrides) {
  w->U32(static_cast<uint32_t>(overrides.size()));
  for (const auto& [index, value] : overrides) {
    w->U32(static_cast<uint32_t>(index));
    w->Blob(value);
  }
}

std::map<int, Bytes> ReadPcrOverrides(Reader* r) {
  std::map<int, Bytes> overrides;
  uint32_t count = r->U32();
  if (count > static_cast<uint32_t>(kNumPcrs)) {
    // More overrides than PCRs is always malformed; stop reading so the
    // handler's AtEnd() check rejects the frame.
    return overrides;
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t index = r->U32();
    overrides[static_cast<int>(index)] = r->Blob();
  }
  return overrides;
}

void WriteAuthTrailer(Writer* w, const CommandAuth& auth) {
  w->U32(auth.session_handle);
  w->Blob(auth.nonce_odd);
  w->Blob(auth.auth);
}

CommandAuth ReadAuthTrailer(Reader* r) {
  CommandAuth auth;
  auth.session_handle = r->U32();
  auth.nonce_odd = r->Blob();
  auth.auth = r->Blob();
  return auth;
}

void WriteSessionPayload(Writer* w, const AuthSessionInfo& session) {
  w->U32(session.handle);
  w->Blob(session.nonce_even);
  w->U8(session.osap ? 1 : 0);
  w->Blob(session.shared_secret);
}

void WriteQuotePayload(Writer* w, const TpmQuote& quote) {
  w->U32(SelectionMask(quote.selection));
  w->U32(static_cast<uint32_t>(quote.pcr_values.size()));
  for (const Bytes& value : quote.pcr_values) {
    w->Blob(value);
  }
  w->Blob(quote.nonce);
  w->Blob(quote.signature);
}

Status MalformedBody() { return InvalidArgumentError("malformed TPM command body"); }

}  // namespace

const char* TpmOrdinalName(uint32_t ordinal) {
  switch (ordinal) {
    case kOrdOiap: return "TPM_ORD_OIAP";
    case kOrdOsap: return "TPM_ORD_OSAP";
    case kOrdTakeOwnership: return "TPM_ORD_TakeOwnership";
    case kOrdExtend: return "TPM_ORD_Extend";
    case kOrdSelfTestFull: return "TPM_ORD_SelfTestFull";
    case kOrdGetTestResult: return "TPM_ORD_GetTestResult";
    case kOrdSaveState: return "TPM_ORD_SaveState";
    case kOrdStartup: return "TPM_ORD_Startup";
    case kOrdPcrRead: return "TPM_ORD_PcrRead";
    case kOrdQuote: return "TPM_ORD_Quote";
    case kOrdSeal: return "TPM_ORD_Seal";
    case kOrdUnseal: return "TPM_ORD_Unseal";
    case kOrdLoadKey2: return "TPM_ORD_LoadKey2";
    case kOrdGetRandom: return "TPM_ORD_GetRandom";
    case kOrdGetCapability: return "TPM_ORD_GetCapability";
    case kOrdTerminateHandle: return "TPM_ORD_Terminate_Handle";
    case kOrdFlushSpecific: return "TPM_ORD_FlushSpecific";
    case kOrdNvDefineSpace: return "TPM_ORD_NV_DefineSpace";
    case kOrdNvWriteValue: return "TPM_ORD_NV_WriteValue";
    case kOrdNvReadValue: return "TPM_ORD_NV_ReadValue";
    case kOrdCreateCounter: return "TPM_ORD_CreateCounter";
    case kOrdIncrementCounter: return "TPM_ORD_IncrementCounter";
    case kOrdReadCounter: return "TPM_ORD_ReadCounter";
    case kOrdGetAikBlob: return "TPM_VENDOR_GetAikBlob";
    case kOrdGetPubKey: return "TPM_VENDOR_GetPubKey";
    case kOrdTisRequestLocality: return "TIS_RequestLocality";
    case kOrdTisReleaseLocality: return "TIS_ReleaseLocality";
    case kOrdHwSkinitReset: return "HW_SkinitReset";
    case kOrdHwExtendIdentityPcr: return "HW_ExtendIdentityPcr";
    case kOrdHwPowerCycle: return "HW_PowerCycle";
    case kOrdHwSetLocality: return "HW_SetLocality";
    case kOrdHwInit: return "HW_Init";
    case kOrdHwForceFailure: return "HW_ForceFailureMode";
    case kOrdHwClearFailure: return "HW_ClearFailureMode";
    default: return "TPM_ORD_<unknown>";
  }
}

uint32_t ReturnCodeFor(StatusCode code) {
  if (code == StatusCode::kOk) {
    return 0;
  }
  return kVendorErrorBase + static_cast<uint32_t>(code);
}

StatusCode StatusCodeFromReturnCode(uint32_t return_code) {
  if (return_code == 0) {
    return StatusCode::kOk;
  }
  uint32_t raw = return_code - kVendorErrorBase;
  if (raw >= 1 && raw <= static_cast<uint32_t>(StatusCode::kRollbackDetected)) {
    return static_cast<StatusCode>(raw);
  }
  return StatusCode::kInternal;
}

Bytes BuildCommandFrame(uint16_t tag, uint32_t ordinal, const Bytes& body) {
  Bytes frame;
  PutUint16(&frame, tag);
  PutUint32(&frame, static_cast<uint32_t>(kFrameHeaderSize + body.size()));
  PutUint32(&frame, ordinal);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Result<CommandFrame> ParseCommandFrame(const Bytes& frame) {
  if (frame.size() < kFrameHeaderSize) {
    return InvalidArgumentError("TPM frame shorter than its header");
  }
  CommandFrame out;
  out.tag = GetUint16(frame, 0);
  uint32_t param_size = GetUint32(frame, 2);
  out.ordinal = GetUint32(frame, 6);
  if (param_size != frame.size()) {
    return InvalidArgumentError("TPM frame paramSize does not match frame length");
  }
  if (out.tag != kTagRequest && out.tag != kTagRequestAuth1) {
    return InvalidArgumentError("TPM frame tag is not a request tag");
  }
  out.body.assign(frame.begin() + kFrameHeaderSize, frame.end());
  return out;
}

Bytes BuildResponseFrame(bool auth1, const Status& status, const Bytes& payload) {
  Bytes frame;
  PutUint16(&frame, auth1 ? kTagResponseAuth1 : kTagResponse);
  Bytes body;
  if (status.ok()) {
    body = payload;
  } else {
    Writer w;
    w.Str(status.message());
    body = w.Take();
  }
  PutUint32(&frame, static_cast<uint32_t>(kFrameHeaderSize + body.size()));
  PutUint32(&frame, ReturnCodeFor(status.code()));
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Result<Bytes> ParseResponseFrame(const Bytes& frame) {
  if (frame.size() < kFrameHeaderSize) {
    return InvalidArgumentError("TPM response shorter than its header");
  }
  uint16_t tag = GetUint16(frame, 0);
  if (tag != kTagResponse && tag != kTagResponseAuth1) {
    return InvalidArgumentError("TPM response tag invalid");
  }
  if (GetUint32(frame, 2) != frame.size()) {
    return InvalidArgumentError("TPM response paramSize does not match frame length");
  }
  uint32_t return_code = GetUint32(frame, 6);
  Bytes body(frame.begin() + kFrameHeaderSize, frame.end());
  if (return_code == 0) {
    return body;
  }
  Reader r(body);
  std::string message = r.Str();
  if (!r.ok()) {
    message = "TPM error response with corrupt message";
  }
  return Status(StatusCodeFromReturnCode(return_code), message);
}

Result<uint32_t> PeekOrdinal(const Bytes& frame) {
  if (frame.size() < kFrameHeaderSize) {
    return InvalidArgumentError("TPM frame shorter than its header");
  }
  return GetUint32(frame, 6);
}

uint32_t PeekReturnCode(const Bytes& frame) {
  if (frame.size() < kFrameHeaderSize) {
    return ReturnCodeFor(StatusCode::kInvalidArgument);
  }
  return GetUint32(frame, 6);
}

bool ExtendTargetPcr(const Bytes& frame, int* index) {
  Result<CommandFrame> parsed = ParseCommandFrame(frame);
  if (!parsed.ok() || parsed.value().ordinal != kOrdExtend) {
    return false;
  }
  Reader r(parsed.value().body);
  uint32_t pcr = r.U32();
  if (!r.ok()) {
    return false;
  }
  *index = static_cast<int>(pcr);
  return true;
}

// ---- Request builders ----

Bytes BuildGetRandom(size_t len) {
  Writer w;
  w.U32(static_cast<uint32_t>(len));
  return BuildCommandFrame(kTagRequest, kOrdGetRandom, w.Take());
}

Bytes BuildPcrRead(int index) {
  Writer w;
  w.U32(static_cast<uint32_t>(index));
  return BuildCommandFrame(kTagRequest, kOrdPcrRead, w.Take());
}

Bytes BuildPcrExtend(int index, const Bytes& measurement) {
  Writer w;
  w.U32(static_cast<uint32_t>(index));
  w.Blob(measurement);
  return BuildCommandFrame(kTagRequest, kOrdExtend, w.Take());
}

Bytes BuildOiap() { return BuildCommandFrame(kTagRequest, kOrdOiap, Bytes()); }

Bytes BuildOsap(AuthEntity entity, const Bytes& nonce_odd_osap) {
  Writer w;
  w.U16(entity == AuthEntity::kOwner ? 1 : 0);
  w.Blob(nonce_odd_osap);
  return BuildCommandFrame(kTagRequest, kOrdOsap, w.Take());
}

Bytes BuildTerminateHandle(uint32_t handle) {
  Writer w;
  w.U32(handle);
  return BuildCommandFrame(kTagRequest, kOrdTerminateHandle, w.Take());
}

Bytes BuildSeal(const Bytes& data, const PcrSelection& selection,
                const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                const CommandAuth& auth) {
  Writer w;
  w.Blob(data);
  w.U32(SelectionMask(selection));
  WritePcrOverrides(&w, release_pcrs);
  w.Blob(blob_auth);
  WriteAuthTrailer(&w, auth);
  return BuildCommandFrame(kTagRequestAuth1, kOrdSeal, w.Take());
}

Bytes BuildUnseal(const SealedBlob& blob, const Bytes& blob_auth, const CommandAuth& auth) {
  Writer w;
  w.Blob(blob.ciphertext);
  w.Blob(blob_auth);
  WriteAuthTrailer(&w, auth);
  return BuildCommandFrame(kTagRequestAuth1, kOrdUnseal, w.Take());
}

Bytes BuildQuote(uint32_t key_handle, const Bytes& nonce, const PcrSelection& selection) {
  Writer w;
  w.U32(key_handle);
  w.Blob(nonce);
  w.U32(SelectionMask(selection));
  return BuildCommandFrame(kTagRequest, kOrdQuote, w.Take());
}

Bytes BuildLoadKey2(const Bytes& blob) {
  Writer w;
  w.Blob(blob);
  return BuildCommandFrame(kTagRequest, kOrdLoadKey2, w.Take());
}

Bytes BuildFlushSpecific(uint32_t handle) {
  Writer w;
  w.U32(handle);
  return BuildCommandFrame(kTagRequest, kOrdFlushSpecific, w.Take());
}

Bytes BuildNvDefineSpace(uint32_t index, size_t size, const PcrSelection& read_selection,
                         const std::map<int, Bytes>& read_pcrs,
                         const PcrSelection& write_selection,
                         const std::map<int, Bytes>& write_pcrs, const CommandAuth& auth) {
  Writer w;
  w.U32(index);
  w.U64(size);
  w.U32(SelectionMask(read_selection));
  WritePcrOverrides(&w, read_pcrs);
  w.U32(SelectionMask(write_selection));
  WritePcrOverrides(&w, write_pcrs);
  WriteAuthTrailer(&w, auth);
  return BuildCommandFrame(kTagRequestAuth1, kOrdNvDefineSpace, w.Take());
}

Bytes BuildNvWrite(uint32_t index, const Bytes& data) {
  Writer w;
  w.U32(index);
  w.Blob(data);
  return BuildCommandFrame(kTagRequest, kOrdNvWriteValue, w.Take());
}

Bytes BuildNvRead(uint32_t index) {
  Writer w;
  w.U32(index);
  return BuildCommandFrame(kTagRequest, kOrdNvReadValue, w.Take());
}

Bytes BuildCreateCounter(const Bytes& counter_auth, const CommandAuth& auth) {
  Writer w;
  w.Blob(counter_auth);
  WriteAuthTrailer(&w, auth);
  return BuildCommandFrame(kTagRequestAuth1, kOrdCreateCounter, w.Take());
}

Bytes BuildIncrementCounter(uint32_t id, const Bytes& counter_auth) {
  Writer w;
  w.U32(id);
  w.Blob(counter_auth);
  return BuildCommandFrame(kTagRequest, kOrdIncrementCounter, w.Take());
}

Bytes BuildReadCounter(uint32_t id) {
  Writer w;
  w.U32(id);
  return BuildCommandFrame(kTagRequest, kOrdReadCounter, w.Take());
}

Bytes BuildTakeOwnership(const Bytes& owner_auth) {
  Writer w;
  w.Blob(owner_auth);
  return BuildCommandFrame(kTagRequest, kOrdTakeOwnership, w.Take());
}

Bytes BuildStartup(TpmStartupType type) {
  Writer w;
  w.U16(type == TpmStartupType::kClear ? 1 : 2);  // TPM_ST_CLEAR / TPM_ST_STATE
  return BuildCommandFrame(kTagRequest, kOrdStartup, w.Take());
}

Bytes BuildSaveState() { return BuildCommandFrame(kTagRequest, kOrdSaveState, Bytes()); }

Bytes BuildSelfTestFull() { return BuildCommandFrame(kTagRequest, kOrdSelfTestFull, Bytes()); }

Bytes BuildGetTestResult() { return BuildCommandFrame(kTagRequest, kOrdGetTestResult, Bytes()); }

Bytes BuildGetCapability() { return BuildCommandFrame(kTagRequest, kOrdGetCapability, Bytes()); }

Bytes BuildGetAikBlob() { return BuildCommandFrame(kTagRequest, kOrdGetAikBlob, Bytes()); }

Bytes BuildGetPubKey(bool srk) {
  Writer w;
  w.U8(srk ? 1 : 0);
  return BuildCommandFrame(kTagRequest, kOrdGetPubKey, w.Take());
}

// ---- Response payload codecs ----

Result<AuthSessionInfo> ParseSessionPayload(const Bytes& payload) {
  Reader r(payload);
  AuthSessionInfo session;
  session.handle = r.U32();
  session.nonce_even = r.Blob();
  session.osap = r.U8() != 0;
  session.shared_secret = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("malformed TPM session payload");
  }
  return session;
}

Result<TpmQuote> ParseQuotePayload(const Bytes& payload) {
  Reader r(payload);
  TpmQuote quote;
  quote.selection = SelectionFromMask(r.U32());
  uint32_t count = r.U32();
  if (count > static_cast<uint32_t>(kNumPcrs)) {
    return InvalidArgumentError("malformed TPM quote payload");
  }
  for (uint32_t i = 0; i < count; ++i) {
    quote.pcr_values.push_back(r.Blob());
  }
  quote.nonce = r.Blob();
  quote.signature = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("malformed TPM quote payload");
  }
  return quote;
}

Result<uint32_t> ParseHandlePayload(const Bytes& payload) {
  Reader r(payload);
  uint32_t handle = r.U32();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("malformed TPM handle payload");
  }
  return handle;
}

Result<uint64_t> ParseCounterPayload(const Bytes& payload) {
  Reader r(payload);
  uint64_t value = r.U64();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("malformed TPM counter payload");
  }
  return value;
}

Result<Bytes> ParseBlobPayload(const Bytes& payload) {
  Reader r(payload);
  Bytes blob = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("malformed TPM blob payload");
  }
  return blob;
}

Result<TpmStartupReport> ParseStartupPayload(const Bytes& payload) {
  Reader r(payload);
  TpmStartupReport report;
  report.journal_rolled_forward = r.U8() != 0;
  report.journal_discarded = r.U8() != 0;
  report.state_restored = r.U8() != 0;
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("malformed TPM startup payload");
  }
  return report;
}

Result<Tpm::Capabilities> ParseCapabilityPayload(const Bytes& payload) {
  Reader r(payload);
  Tpm::Capabilities caps;
  caps.num_pcrs = static_cast<int>(r.U32());
  caps.key_bits = static_cast<size_t>(r.U64());
  caps.profile_name = r.Str();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("malformed TPM capability payload");
  }
  return caps;
}

// ---- Device side ----

namespace {

// Each handler parses the body and executes the command. `auth1` propagates
// into the response tag.
Bytes HandleFrame(Tpm* tpm, const CommandFrame& cmd) {
  const bool auth1 = cmd.tag == kTagRequestAuth1;
  Reader r(cmd.body);
  Writer payload;

  auto malformed = [&] { return BuildResponseFrame(auth1, MalformedBody(), Bytes()); };
  auto respond = [&](const Status& st) { return BuildResponseFrame(auth1, st, payload.Take()); };

  switch (cmd.ordinal) {
    case kOrdGetRandom: {
      uint32_t len = r.U32();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      payload.Blob(tpm->GetRandom(len));
      return respond(Status::Ok());
    }
    case kOrdPcrRead: {
      uint32_t index = r.U32();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<Bytes> value = tpm->PcrRead(static_cast<int>(index));
      if (!value.ok()) {
        return respond(value.status());
      }
      payload.Blob(value.value());
      return respond(Status::Ok());
    }
    case kOrdExtend: {
      uint32_t index = r.U32();
      Bytes measurement = r.Blob();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      return respond(tpm->PcrExtend(static_cast<int>(index), measurement));
    }
    case kOrdOiap: {
      if (!r.AtEnd()) {
        return malformed();
      }
      WriteSessionPayload(&payload, tpm->StartOiap());
      return respond(Status::Ok());
    }
    case kOrdOsap: {
      uint16_t entity = r.U16();
      Bytes nonce_odd_osap = r.Blob();
      if (!r.ok() || !r.AtEnd() || entity > 1) {
        return malformed();
      }
      WriteSessionPayload(&payload, tpm->StartOsap(
          entity == 1 ? AuthEntity::kOwner : AuthEntity::kSrk, nonce_odd_osap));
      return respond(Status::Ok());
    }
    case kOrdTerminateHandle: {
      uint32_t handle = r.U32();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      tpm->TerminateSession(handle);
      return respond(Status::Ok());
    }
    case kOrdSeal: {
      Bytes data = r.Blob();
      PcrSelection selection = SelectionFromMask(r.U32());
      std::map<int, Bytes> release_pcrs = ReadPcrOverrides(&r);
      Bytes blob_auth = r.Blob();
      CommandAuth auth = ReadAuthTrailer(&r);
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<SealedBlob> blob = tpm->Seal(data, selection, release_pcrs, blob_auth, auth);
      if (!blob.ok()) {
        return respond(blob.status());
      }
      payload.Blob(blob.value().ciphertext);
      return respond(Status::Ok());
    }
    case kOrdUnseal: {
      SealedBlob blob{r.Blob()};
      Bytes blob_auth = r.Blob();
      CommandAuth auth = ReadAuthTrailer(&r);
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<Bytes> data = tpm->Unseal(blob, blob_auth, auth);
      if (!data.ok()) {
        return respond(data.status());
      }
      payload.Blob(data.value());
      return respond(Status::Ok());
    }
    case kOrdQuote: {
      uint32_t key_handle = r.U32();
      Bytes nonce = r.Blob();
      PcrSelection selection = SelectionFromMask(r.U32());
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<TpmQuote> quote = key_handle == 0
                                   ? tpm->Quote(nonce, selection)
                                   : tpm->QuoteWithKey(key_handle, nonce, selection);
      if (!quote.ok()) {
        return respond(quote.status());
      }
      WriteQuotePayload(&payload, quote.value());
      return respond(Status::Ok());
    }
    case kOrdLoadKey2: {
      Bytes blob = r.Blob();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<uint32_t> handle = tpm->LoadKey2(blob);
      if (!handle.ok()) {
        return respond(handle.status());
      }
      payload.U32(handle.value());
      return respond(Status::Ok());
    }
    case kOrdFlushSpecific: {
      uint32_t handle = r.U32();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      return respond(tpm->FlushKey(handle));
    }
    case kOrdNvDefineSpace: {
      uint32_t index = r.U32();
      uint64_t size = r.U64();
      PcrSelection read_selection = SelectionFromMask(r.U32());
      std::map<int, Bytes> read_pcrs = ReadPcrOverrides(&r);
      PcrSelection write_selection = SelectionFromMask(r.U32());
      std::map<int, Bytes> write_pcrs = ReadPcrOverrides(&r);
      CommandAuth auth = ReadAuthTrailer(&r);
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      return respond(tpm->NvDefineSpace(index, size, read_selection, read_pcrs, write_selection,
                                        write_pcrs, auth));
    }
    case kOrdNvWriteValue: {
      uint32_t index = r.U32();
      Bytes data = r.Blob();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      return respond(tpm->NvWrite(index, data));
    }
    case kOrdNvReadValue: {
      uint32_t index = r.U32();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<Bytes> data = tpm->NvRead(index);
      if (!data.ok()) {
        return respond(data.status());
      }
      payload.Blob(data.value());
      return respond(Status::Ok());
    }
    case kOrdCreateCounter: {
      Bytes counter_auth = r.Blob();
      CommandAuth auth = ReadAuthTrailer(&r);
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<uint32_t> id = tpm->CreateCounter(counter_auth, auth);
      if (!id.ok()) {
        return respond(id.status());
      }
      payload.U32(id.value());
      return respond(Status::Ok());
    }
    case kOrdIncrementCounter: {
      uint32_t id = r.U32();
      Bytes counter_auth = r.Blob();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<uint64_t> value = tpm->IncrementCounter(id, counter_auth);
      if (!value.ok()) {
        return respond(value.status());
      }
      payload.U64(value.value());
      return respond(Status::Ok());
    }
    case kOrdReadCounter: {
      uint32_t id = r.U32();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      Result<uint64_t> value = tpm->ReadCounter(id);
      if (!value.ok()) {
        return respond(value.status());
      }
      payload.U64(value.value());
      return respond(Status::Ok());
    }
    case kOrdTakeOwnership: {
      Bytes owner_auth = r.Blob();
      if (!r.ok() || !r.AtEnd()) {
        return malformed();
      }
      return respond(tpm->TakeOwnership(owner_auth));
    }
    case kOrdStartup: {
      uint16_t type = r.U16();
      if (!r.ok() || !r.AtEnd() || type < 1 || type > 2) {
        return malformed();
      }
      Result<TpmStartupReport> report =
          tpm->Startup(type == 1 ? TpmStartupType::kClear : TpmStartupType::kState);
      if (!report.ok()) {
        return respond(report.status());
      }
      payload.U8(report.value().journal_rolled_forward ? 1 : 0);
      payload.U8(report.value().journal_discarded ? 1 : 0);
      payload.U8(report.value().state_restored ? 1 : 0);
      return respond(Status::Ok());
    }
    case kOrdSaveState: {
      if (!r.AtEnd()) {
        return malformed();
      }
      return respond(tpm->SaveState());
    }
    case kOrdSelfTestFull: {
      if (!r.AtEnd()) {
        return malformed();
      }
      return respond(tpm->SelfTestFull());
    }
    case kOrdGetTestResult: {
      if (!r.AtEnd()) {
        return malformed();
      }
      payload.U32(tpm->GetTestResult());
      return respond(Status::Ok());
    }
    case kOrdGetCapability: {
      if (!r.AtEnd()) {
        return malformed();
      }
      Tpm::Capabilities caps = tpm->GetCapability();
      payload.U32(static_cast<uint32_t>(caps.num_pcrs));
      payload.U64(caps.key_bits);
      payload.Str(caps.profile_name);
      return respond(Status::Ok());
    }
    case kOrdGetAikBlob: {
      if (!r.AtEnd()) {
        return malformed();
      }
      payload.Blob(tpm->GetAikBlob());
      return respond(Status::Ok());
    }
    case kOrdGetPubKey: {
      uint8_t srk = r.U8();
      if (!r.ok() || !r.AtEnd() || srk > 1) {
        return malformed();
      }
      payload.Blob(srk == 1 ? tpm->srk_public().Serialize() : tpm->aik_public().Serialize());
      return respond(Status::Ok());
    }
    default:
      return BuildResponseFrame(auth1, InvalidArgumentError("unknown TPM ordinal"), Bytes());
  }
}

}  // namespace

Bytes DispatchFrame(Tpm* tpm, const Bytes& request_frame) {
  Result<CommandFrame> cmd = ParseCommandFrame(request_frame);
  if (!cmd.ok()) {
    return BuildResponseFrame(/*auth1=*/false, cmd.status(), Bytes());
  }
  // Lifecycle gate (TPM 1.2 §"Startup"): after TPM_Init only TPM_Startup is
  // accepted; in failure mode only TPM_Startup and TPM_GetTestResult are.
  const uint32_t ordinal = cmd.value().ordinal;
  const bool lifecycle_exempt = ordinal == kOrdStartup || ordinal == kOrdGetTestResult;
  if (!lifecycle_exempt) {
    const bool auth1 = cmd.value().tag == kTagRequestAuth1;
    if (tpm->lifecycle_state() == TpmLifecycleState::kNeedStartup) {
      return BuildResponseFrame(
          auth1, FailedPreconditionError("TPM_Init: TPM_Startup required"), Bytes());
    }
    if (tpm->lifecycle_state() == TpmLifecycleState::kFailed) {
      return BuildResponseFrame(
          auth1, TpmFailedError("TPM in failure mode; only Startup/GetTestResult accepted"),
          Bytes());
    }
  }
  return HandleFrame(tpm, cmd.value());
}

}  // namespace flicker
