// Software model of a v1.2 TPM.
//
// All cryptography is real (this file's seal blobs are AES-CBC + HMAC-SHA1
// envelopes whose keys are wrapped by the TPM's real RSA storage key, and
// quotes are real PKCS#1 signatures by the AIK). Only command *latency* is
// modeled, by charging the shared SimClock per the TpmTimingProfile; the
// profile defaults reproduce the Broadcom BCM0102 the paper measured.
//
// The hardware-only interface (dynamic PCR reset, locality changes) is
// reachable through Tpm::HardwareInterface, which only the CPU/chipset model
// holds - mirroring the property that software cannot reset PCR 17 (§2.3).

#ifndef FLICKER_SRC_TPM_TPM_H_
#define FLICKER_SRC_TPM_TPM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/drbg.h"
#include "src/crypto/rsa.h"
#include "src/hw/clock.h"
#include "src/hw/timing.h"
#include "src/tpm/pcr_bank.h"
#include "src/tpm/structures.h"

namespace flicker {

struct TpmConfig {
  // Seed for the manufacture-time entropy pool (EK/SRK/AIK derivation).
  uint64_t manufacture_seed = 0x7501;
  // Storage/identity key size. Real v1.2 TPMs use 2048-bit keys; tests may
  // shrink this for speed.
  size_t key_bits = 2048;
};

// Authorization session state (TPM_OIAP / TPM_OSAP).
struct AuthSessionInfo {
  uint32_t handle = 0;
  Bytes nonce_even;       // TPM-chosen rolling nonce.
  bool osap = false;
  Bytes shared_secret;    // OSAP only: HMAC(entity secret, nonceEvenOSAP||nonceOddOSAP).
};

// Authorization data a caller attaches to an authorized command.
struct CommandAuth {
  uint32_t session_handle = 0;
  Bytes nonce_odd;
  Bytes auth;  // HMAC-SHA1(secret, param_digest || nonce_even || nonce_odd).
};

// Entities whose usage secrets can authorize commands.
enum class AuthEntity {
  kSrk,    // Storage Root Key: authorizes Seal/Unseal.
  kOwner,  // TPM owner: authorizes NV definition and counter creation.
};

// ---- v1.2 lifecycle (TPM_Init -> TPM_Startup -> operational) ----
//
// TPM_Init is the hardware reset signal (a power cut or platform reset);
// after it the TPM accepts only TPM_Startup/TPM_GetTestResult until software
// issues TPM_Startup. A failed self test (or a ST_STATE resume without valid
// saved state) enters failure mode, where again only those two commands are
// accepted - everything else answers kTpmFailed.

enum class TpmStartupType {
  kClear,  // TPM_ST_CLEAR: boot with default volatile state.
  kState,  // TPM_ST_STATE: resume from a TPM_SaveState snapshot (S3 wake).
};

enum class TpmLifecycleState {
  kNeedStartup,  // TPM_Init seen; waiting for TPM_Startup.
  kOperational,
  kFailed,       // self-test failure mode.
};

// What TPM_Startup did while bringing the device up - the recovery story a
// crash-consistency harness asserts on.
struct TpmStartupReport {
  bool journal_rolled_forward = false;  // committed NV/counter journal applied
  bool journal_discarded = false;       // torn or uncommitted journal dropped
  bool state_restored = false;          // ST_STATE restored static PCRs
};

// TPM_GetTestResult values the model reports.
constexpr uint32_t kTpmTestPassed = 0;
constexpr uint32_t kTpmTestNoSavedState = 0x21;   // ST_STATE without SaveState
constexpr uint32_t kTpmTestHardwareFault = 0x5A;  // injected permanent fault

class Tpm {
 public:
  Tpm(SimClock* clock, TpmTimingProfile profile, TpmConfig config = TpmConfig());

  // ---- Software command interface (what drivers may call) ----

  // ---- Lifecycle commands (§v1.2 startup semantics) ----
  //
  // These charge no simulated latency: the calibrated Broadcom profile
  // models steady-state command costs, and startup happens outside every
  // measured window, so the reproduced tables are unaffected.

  // TPM_Startup. Replays the NV/counter write-ahead journal (rolling a
  // committed record forward, discarding a torn or uncommitted one), then
  // either boots clear or restores the SaveState snapshot. Fails with
  // kFailedPrecondition when no TPM_Init preceded it, and with kTpmFailed
  // when the self test fails (ST_STATE without valid saved state included).
  Result<TpmStartupReport> Startup(TpmStartupType type);

  // TPM_SaveState: snapshot volatile state ahead of S3. The snapshot is
  // single-use and only static PCRs are restored - resettable PCRs 17-23
  // return to -1 on every TPM_Init, so a suspend/resume cycle can never
  // resurrect a Flicker session's PCR 17 value.
  Status SaveState();

  // TPM_SelfTestFull: re-runs the self test; enters (or confirms) failure
  // mode when the hardware fault flag is set.
  Status SelfTestFull();

  // TPM_GetTestResult: answers in every lifecycle state. kTpmTestPassed (0)
  // means healthy.
  uint32_t GetTestResult() const { return self_test_result_; }

  TpmLifecycleState lifecycle_state() const { return lifecycle_; }
  bool saved_state_valid() const { return saved_state_valid_; }
  // True while an NV/counter journal record is pending (crashed mid-write).
  bool journal_pending() const { return journal_.has_value(); }

  // TPM_GetRandom. Charges get_random_ms per call.
  Bytes GetRandom(size_t len);

  // TPM_PCRRead / TPM_Extend. Extend requires a 20-byte measurement.
  Result<Bytes> PcrRead(int index);
  Status PcrExtend(int index, const Bytes& measurement);
  // Convenience used throughout: extend with SHA1(data).
  Status PcrExtendData(int index, const Bytes& data);

  // TPM_OIAP: start an object-independent session.
  AuthSessionInfo StartOiap();
  // TPM_OSAP: start an object-specific session bound to `entity`. The caller
  // supplies nonce_odd_osap; the shared secret is derived on both sides.
  AuthSessionInfo StartOsap(AuthEntity entity, const Bytes& nonce_odd_osap);
  void TerminateSession(uint32_t handle);

  // TPM_Seal (authorized by SRK usage secret). Encrypts `data` so it can only
  // be released when the PCRs in `selection` hold the values in
  // `release_pcrs` (or, if empty, their current values) and the caller
  // proves knowledge of `blob_auth`. The blob itself is handled by untrusted
  // software.
  Result<SealedBlob> Seal(const Bytes& data, const PcrSelection& selection,
                          const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                          const CommandAuth& auth);

  // TPM_Unseal. Fails with kIntegrityFailure when the current PCR state does
  // not match the sealed composite, and kPermissionDenied on bad auth.
  Result<Bytes> Unseal(const SealedBlob& blob, const Bytes& blob_auth, const CommandAuth& auth);

  // TPM_Quote convenience: load the AIK, sign (composite of `selection`,
  // nonce), flush - charging the full measured quote latency.
  Result<TpmQuote> Quote(const Bytes& nonce, const PcrSelection& selection);

  // ---- Key slots (TPM_LoadKey2 / TPM_FlushSpecific) ----
  //
  // Real TPMs hold the AIK private key wrapped under the SRK; the OS stores
  // the blob and must load it into a (scarce) key slot before quoting -
  // "the OS causes the TPM to load its AIK" (§6). The wrapped blob is
  // opaque to software; tampering is detected at load time.

  // The wrapped AIK blob the OS keeps on disk.
  Bytes GetAikBlob();
  // Unwraps a key blob into a slot; charges load_key_ms.
  Result<uint32_t> LoadKey2(const Bytes& blob);
  Status FlushKey(uint32_t handle);
  // Quote with an explicitly loaded key; charges quote_ms - load_key_ms
  // (quote_ms is calibrated as the total including the load).
  Result<TpmQuote> QuoteWithKey(uint32_t key_handle, const Bytes& nonce,
                                const PcrSelection& selection);
  size_t loaded_key_count() const { return key_slots_.size(); }

  // ---- NV storage (§4.3.2) ----

  // Defines an NV space. Owner-authorized. `read_pcrs`/`write_pcrs` gate
  // access on the *values the selected PCRs hold at definition time* unless
  // explicit values are provided.
  Status NvDefineSpace(uint32_t index, size_t size, const PcrSelection& read_selection,
                       const std::map<int, Bytes>& read_pcrs, const PcrSelection& write_selection,
                       const std::map<int, Bytes>& write_pcrs, const CommandAuth& auth);
  Status NvWrite(uint32_t index, const Bytes& data);
  Result<Bytes> NvRead(uint32_t index);

  // ---- Monotonic counters (§4.3.2) ----

  // Owner-authorized creation. Returns the counter id.
  Result<uint32_t> CreateCounter(const Bytes& counter_auth, const CommandAuth& auth);
  Result<uint64_t> IncrementCounter(uint32_t id, const Bytes& counter_auth);
  Result<uint64_t> ReadCounter(uint32_t id);

  // ---- Ownership & identity ----

  // Installs the 20-byte owner authorization secret (TPM_TakeOwnership).
  Status TakeOwnership(const Bytes& owner_auth);
  const Bytes& owner_auth_digest() const { return owner_auth_; }  // Test hook.

  const RsaPublicKey& aik_public() const { return aik_.pub; }
  const RsaPublicKey& srk_public() const { return srk_.pub; }
  // Usage secret of the SRK (the TCG "well-known secret" of 20 zero bytes).
  static Bytes WellKnownSecret() { return Bytes(kPcrSize, 0x00); }

  // TPM_GetCapability subset.
  struct Capabilities {
    int num_pcrs;
    size_t key_bits;
    std::string profile_name;
  };
  Capabilities GetCapability() const;

  // Current locality (0 = legacy software, 4 = CPU during SKINIT).
  int locality() const { return locality_; }

  // The simulated clock command latencies are charged to; the transport
  // reads it to measure per-command dispatch latency for its trace.
  SimClock* sim_clock() { return clock_; }

  // TIS-style locality request from the software side. Localities 0-2 are
  // driver-reachable; 3 is reserved for the ACM and 4 for CPU microcode, so
  // software requests for those return kPermissionDenied (§2.3).
  Status RequestLocality(int locality);

  // True iff an extend of `index` is permitted at `locality`. Dynamic PCRs
  // are gated: 17-19 accept localities 2-4, 20 accepts 1-4, 21-22 accept
  // only locality 2 (trusted OS); static PCRs accept any locality.
  static bool ExtendAllowedAt(int index, int locality);

  // ---- Hardware interface: held by the chipset/CPU model only ----
  class HardwareInterface {
   public:
    explicit HardwareInterface(Tpm* tpm) : tpm_(tpm) {}

    // The SKINIT handshake: raise locality 4, reset dynamic PCRs, extend the
    // SLB measurement into PCR 17, drop to locality 2.
    void SkinitReset(const Bytes& slb_measurement);

    // Additional hardware-path extend into PCR 17 at launch locality; used
    // by the TXT model for the post-ACM MLE measurement.
    void ExtendIdentityPcr(const Bytes& measurement);

    // TPM_Init: the reset line. Drops volatile state (sessions, key slots,
    // locality), resets PCRs to power-cycle defaults and leaves the device
    // awaiting TPM_Startup. Persistent state (NV, counters, journal, saved
    // state, fault flag) survives.
    void Init();

    // Platform reboot: TPM_Init plus an immediate TPM_Startup(ST_CLEAR), the
    // one-shot cycle a BIOS performs before handing off to the OS.
    void PowerCycle();

    // Latches / clears the permanent hardware fault the self test reports -
    // the knob robustness tests use to put the device into failure mode.
    void ForceFailureMode();
    void ClearFailureMode();

    // Hardware-side locality transition (any locality 0-4). Out-of-range
    // values are a chipset-model bug and are rejected.
    Status SetLocality(int locality);

   private:
    Tpm* tpm_;
  };

  HardwareInterface* hardware() { return &hardware_; }

  // Computes the HMAC a caller must present for an authorized command, and
  // is reused by driver-side helpers. Exposed so the SLB-core TPM utilities
  // implement the same computation the TPM checks.
  static Bytes ComputeCommandAuth(const Bytes& secret, const Bytes& param_digest,
                                  const Bytes& nonce_even, const Bytes& nonce_odd);

 private:
  friend class HardwareInterface;

  struct NvSpace {
    size_t size = 0;
    PcrSelection read_selection;
    Bytes read_composite;
    PcrSelection write_selection;
    Bytes write_composite;
    Bytes data;
  };

  // Write-ahead journal record for NV/counter mutations. The record is
  // "durably written" in stages (payload, checksum, commit mark) with a
  // crash point between each, so a power cut leaves exactly one of: no
  // record, a torn record (checksum mismatch), an uncommitted record, or a
  // committed record - and TPM_Startup replay resolves each case.
  struct JournalEntry {
    enum class Kind : uint8_t { kNvWrite, kCounterIncrement };
    Kind kind = Kind::kNvWrite;
    uint32_t index = 0;          // NV index or counter id.
    Bytes data;                  // Full new NV contents (kNvWrite).
    uint64_t counter_value = 0;  // Target value (kCounterIncrement).
    bool committed = false;
    uint32_t crc = 0;
  };

  static uint32_t JournalCrc(const JournalEntry& entry);
  void ReplayJournal(TpmStartupReport* report);

  // Verifies `auth` against the entity's secret for a command whose
  // parameters hash to `param_digest`, then rolls the session nonce.
  Status CheckAuth(AuthEntity entity, const Bytes& param_digest, const CommandAuth& auth);

  // Computes a composite digest over `selection` using explicit `values`
  // where provided and current PCR contents otherwise.
  Result<Bytes> CompositeWithOverrides(const PcrSelection& selection,
                                       const std::map<int, Bytes>& overrides) const;

  const Bytes& EntitySecret(AuthEntity entity) const;

  // The single checked locality mutator; every transition (software or
  // hardware) funnels through it. `hardware` unlocks localities 3 and 4.
  Status TransitionLocality(int locality, bool hardware);

  void Charge(double ms) { clock_->AdvanceMillis(ms); }

  SimClock* clock_;
  TpmTimingProfile profile_;
  TpmConfig config_;
  HardwareInterface hardware_;

  // ---- Volatile state: lost on TPM_Init / power cut ----
  //
  // Devices in the field begin life powered up: the model constructs in
  // kOperational (BIOS POST already ran Startup), and only an explicit
  // TPM_Init drops to kNeedStartup.
  TpmLifecycleState lifecycle_ = TpmLifecycleState::kOperational;
  PcrBank pcrs_;
  Drbg rng_;
  int locality_ = 0;

  std::map<uint32_t, AuthSessionInfo> sessions_;
  uint32_t next_session_handle_ = 0x1000;

  std::map<uint32_t, RsaPrivateKey> key_slots_;
  uint32_t next_key_handle_ = 0x2000;

  // ---- Persistent state: survives TPM_Init (battery-backed NVRAM) ----
  RsaPrivateKey srk_;
  RsaPrivateKey aik_;
  Bytes srk_usage_auth_;
  Bytes owner_auth_;
  bool owned_ = false;

  std::map<uint32_t, NvSpace> nv_spaces_;

  struct Counter {
    uint64_t value = 0;
    Bytes auth;
  };
  std::map<uint32_t, Counter> counters_;
  uint32_t next_counter_id_ = 1;

  std::optional<JournalEntry> journal_;
  bool saved_state_valid_ = false;
  PcrBank saved_pcrs_;                       // SaveState snapshot (statics restored).
  uint32_t self_test_result_ = kTpmTestPassed;
};

}  // namespace flicker

#endif  // FLICKER_SRC_TPM_TPM_H_
