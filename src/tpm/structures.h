// TPM v1.2 data structures shared by the device model, the SLB core's TPM
// driver, and the verifier.

#ifndef FLICKER_SRC_TPM_STRUCTURES_H_
#define FLICKER_SRC_TPM_STRUCTURES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"

namespace flicker {

// A v1.2 TPM exposes at least 24 PCRs; 17-23 are the dynamic (resettable)
// registers (paper §2.3).
constexpr int kNumPcrs = 24;
constexpr int kFirstDynamicPcr = 17;
constexpr int kSkinitPcr = 17;  // SKINIT extends the SLB measurement here.
constexpr size_t kPcrSize = 20;

// Bitmask selection of PCR indices, the argument shape of Quote/Seal.
class PcrSelection {
 public:
  PcrSelection() = default;
  explicit PcrSelection(std::initializer_list<int> indices) {
    for (int i : indices) {
      Select(i);
    }
  }

  void Select(int index) { mask_ |= (1u << index); }
  bool IsSelected(int index) const { return (mask_ >> index) & 1; }
  bool Empty() const { return mask_ == 0; }
  uint32_t mask() const { return mask_; }

  std::vector<int> Indices() const {
    std::vector<int> out;
    for (int i = 0; i < kNumPcrs; ++i) {
      if (IsSelected(i)) {
        out.push_back(i);
      }
    }
    return out;
  }

  // TPM_PCR_SELECTION wire form: 16-bit size-of-select then the bitmap.
  Bytes Serialize() const {
    Bytes out;
    PutUint16(&out, 3);  // 3 bytes cover 24 PCRs.
    out.push_back(static_cast<uint8_t>(mask_));
    out.push_back(static_cast<uint8_t>(mask_ >> 8));
    out.push_back(static_cast<uint8_t>(mask_ >> 16));
    return out;
  }

  friend bool operator==(const PcrSelection& a, const PcrSelection& b) {
    return a.mask_ == b.mask_;
  }

 private:
  uint32_t mask_ = 0;
};

// The result of TPM_Quote: the signed composite plus the raw PCR values the
// verifier recomputes the composite from.
struct TpmQuote {
  PcrSelection selection;
  std::vector<Bytes> pcr_values;  // One 20-byte value per selected index.
  Bytes nonce;
  Bytes signature;  // PKCS#1 SHA-1 signature by the AIK over the quote info.
};

// Opaque sealed-storage ciphertext. Kept by untrusted software (paper §2.2);
// everything security-relevant is inside `ciphertext`.
struct SealedBlob {
  Bytes ciphertext;

  Bytes Serialize() const { return ciphertext; }
  static SealedBlob Deserialize(const Bytes& data) { return SealedBlob{data}; }

  friend bool operator==(const SealedBlob& a, const SealedBlob& b) {
    return a.ciphertext == b.ciphertext;
  }
};

}  // namespace flicker

#endif  // FLICKER_SRC_TPM_STRUCTURES_H_
