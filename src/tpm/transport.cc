#include "src/tpm/transport.h"

#include <iomanip>
#include <ostream>
#include <string>

#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tpm/commands.h"

namespace flicker {

TpmTransport::TpmTransport(Tpm* tpm) : tpm_(tpm), hardware_(this) {
  ring_.reserve(kTraceCapacity);
}

void TpmTransport::Record(uint32_t ordinal, int locality, double latency_ms,
                          uint32_t result_code) {
  TraceEntry entry;
  entry.seq = seq_++;
  entry.ordinal = ordinal;
  entry.locality = locality;
  entry.at_ns = obs::NowNs(tpm_->sim_clock());
  entry.latency_ms = latency_ms;
  entry.result_code = result_code;
  // The ring is a bounded view; the unified stream gets the same record as
  // a completed span (the charged latency ends exactly at `at_ns`), plus
  // the command count the metrics dump reports.
  obs::Count(obs::Ctr::kTpmCommands);
  obs::EmitComplete("tpm", TpmOrdinalName(ordinal),
                    entry.at_ns - static_cast<uint64_t>(latency_ms * 1e6 + 0.5), entry.at_ns);
  if (ring_.size() < kTraceCapacity) {
    ring_.push_back(entry);
  } else {
    ring_[ring_next_] = entry;
    ring_next_ = (ring_next_ + 1) % kTraceCapacity;
  }
}

std::vector<TraceEntry> TpmTransport::TraceSnapshot() const {
  std::vector<TraceEntry> out;
  out.reserve(ring_.size());
  if (ring_.size() < kTraceCapacity) {
    out = ring_;
  } else {
    for (size_t i = 0; i < kTraceCapacity; ++i) {
      out.push_back(ring_[(ring_next_ + i) % kTraceCapacity]);
    }
  }
  return out;
}

void TpmTransport::ClearTrace() {
  ring_.clear();
  ring_next_ = 0;
}

void TpmTransport::DumpTrace(std::ostream& os) const {
  std::vector<TraceEntry> entries = TraceSnapshot();
  os << "TPM command trace (" << entries.size() << " of " << total_commands_
     << " commands retained):\n";
  for (const TraceEntry& e : entries) {
    os << "  #" << std::setw(4) << e.seq << "  @" << e.at_ns << "ns  L" << e.locality << "  "
       << TpmOrdinalName(e.ordinal) << "  rc=0x" << std::hex << e.result_code << std::dec
       << "  " << e.latency_ms << "ms\n";
  }
}

Result<Bytes> TpmTransport::Transmit(const Bytes& request_frame) {
  ++transmit_count_;
  ++total_commands_;
  const int at_locality = tpm_->locality();

  Result<uint32_t> peeked = PeekOrdinal(request_frame);
  const uint32_t ordinal = peeked.ok() ? peeked.value() : 0;

  // Fault injection happens where a bus fault would: between the driver
  // handing the frame off and the device consuming it.
  Bytes frame = request_frame;
  if (plan_.kind != FaultPlan::Kind::kNone && plan_.every_n > 0 &&
      transmit_count_ % plan_.every_n == 0) {
    ++faults_injected_;
    obs::Count(obs::Ctr::kTpmTransportFaults);
    switch (plan_.kind) {
      case FaultPlan::Kind::kDrop: {
        // The driver burns its receive timeout waiting for a reply that
        // never comes.
        tpm_->sim_clock()->AdvanceMillis(plan_.drop_timeout_ms);
        Record(ordinal, at_locality, plan_.drop_timeout_ms,
               ReturnCodeFor(StatusCode::kUnavailable));
        obs::ObserveMs(obs::Hist::kTpmCommandLatencyMs, plan_.drop_timeout_ms);
        return UnavailableError("TPM frame dropped (injected fault)");
      }
      case FaultPlan::Kind::kGarble: {
        // Flip one byte in the middle of the parameter body; header fields
        // stay intact so the device sees a parseable but corrupted command.
        if (frame.size() > kFrameHeaderSize) {
          size_t body_len = frame.size() - kFrameHeaderSize;
          frame[kFrameHeaderSize + body_len / 2] ^= 0x5A;
        }
        break;
      }
      case FaultPlan::Kind::kDelay:
        tpm_->sim_clock()->AdvanceMillis(plan_.delay_ms);
        break;
      case FaultPlan::Kind::kNone:
        break;
    }
  }

  // Locality gate: an extend of a gated PCR from the wrong locality is
  // refused at the interface, before the device sees the frame.
  int extend_index = 0;
  if (ordinal == kOrdExtend && ExtendTargetPcr(frame, &extend_index) &&
      extend_index >= 0 && extend_index < kNumPcrs &&
      !Tpm::ExtendAllowedAt(extend_index, at_locality)) {
    Record(ordinal, at_locality, 0, ReturnCodeFor(StatusCode::kPermissionDenied));
    return PermissionDeniedError("PCR " + std::to_string(extend_index) +
                                 " cannot be extended from locality " +
                                 std::to_string(at_locality));
  }

  uint64_t start_us = tpm_->sim_clock()->NowMicros();
  Bytes response = DispatchFrame(tpm_, frame);
  double latency_ms =
      static_cast<double>(tpm_->sim_clock()->NowMicros() - start_us) / 1000.0;
  Record(ordinal, at_locality, latency_ms, PeekReturnCode(response));
  obs::ObserveMs(obs::Hist::kTpmCommandLatencyMs, latency_ms);
  return response;
}

Status TpmTransport::RequestLocality(int locality) {
  int previous = tpm_->locality();
  Status st = tpm_->RequestLocality(locality);
  Record(kOrdTisRequestLocality, locality, 0, ReturnCodeFor(st.code()));
  if (st.ok()) {
    locality_stack_.push_back(previous);
  }
  return st;
}

Status TpmTransport::ReleaseLocality() {
  if (locality_stack_.empty()) {
    return FailedPreconditionError("no locality request to release");
  }
  int previous = locality_stack_.back();
  locality_stack_.pop_back();
  Status st = tpm_->RequestLocality(previous);
  Record(kOrdTisReleaseLocality, previous, 0, ReturnCodeFor(st.code()));
  return st;
}

// ---- Hardware facade ----

void TpmTransport::Hardware::SkinitReset(const Bytes& slb_measurement) {
  transport_->tpm_->hardware()->SkinitReset(slb_measurement);
  transport_->Record(kOrdHwSkinitReset, 4, 0, 0);
}

void TpmTransport::Hardware::ExtendIdentityPcr(const Bytes& measurement) {
  transport_->tpm_->hardware()->ExtendIdentityPcr(measurement);
  transport_->Record(kOrdHwExtendIdentityPcr, transport_->tpm_->locality(), 0, 0);
}

void TpmTransport::Hardware::Init() {
  transport_->tpm_->hardware()->Init();
  transport_->locality_stack_.clear();
  transport_->Record(kOrdHwInit, 0, 0, 0);
}

void TpmTransport::Hardware::PowerCycle() {
  transport_->tpm_->hardware()->PowerCycle();
  transport_->locality_stack_.clear();
  transport_->Record(kOrdHwPowerCycle, 0, 0, 0);
}

void TpmTransport::Hardware::ForceFailureMode() {
  transport_->tpm_->hardware()->ForceFailureMode();
  transport_->Record(kOrdHwForceFailure, 0, 0, 0);
}

void TpmTransport::Hardware::ClearFailureMode() {
  transport_->tpm_->hardware()->ClearFailureMode();
  transport_->Record(kOrdHwClearFailure, 0, 0, 0);
}

Status TpmTransport::Hardware::SetLocality(int locality) {
  Status st = transport_->tpm_->hardware()->SetLocality(locality);
  transport_->Record(kOrdHwSetLocality, locality, 0, ReturnCodeFor(st.code()));
  return st;
}

// ---- TpmClient ----

TpmClient::TpmClient(TpmTransport* transport) : transport_(transport) {
  // Public-key export is a capability read (no modeled latency); fetch both
  // up front so aik_public()/srk_public() can return references.
  Result<Bytes> aik = Roundtrip(BuildGetPubKey(/*srk=*/false));
  if (aik.ok()) {
    Result<Bytes> blob = ParseBlobPayload(aik.value());
    if (blob.ok()) {
      Result<RsaPublicKey> key = RsaPublicKey::Deserialize(blob.value());
      if (key.ok()) {
        aik_public_ = key.take();
      }
    }
  }
  Result<Bytes> srk = Roundtrip(BuildGetPubKey(/*srk=*/true));
  if (srk.ok()) {
    Result<Bytes> blob = ParseBlobPayload(srk.value());
    if (blob.ok()) {
      Result<RsaPublicKey> key = RsaPublicKey::Deserialize(blob.value());
      if (key.ok()) {
        srk_public_ = key.take();
      }
    }
  }
}

Result<Bytes> TpmClient::Roundtrip(const Bytes& request_frame) {
  Result<Bytes> response = transport_->Transmit(request_frame);
  if (!response.ok()) {
    return response.status();
  }
  return ParseResponseFrame(response.value());
}

Bytes TpmClient::GetRandom(size_t len) {
  Result<Bytes> payload = Roundtrip(BuildGetRandom(len));
  if (!payload.ok()) {
    return Bytes();
  }
  Result<Bytes> random = ParseBlobPayload(payload.value());
  return random.ok() ? random.take() : Bytes();
}

Result<Bytes> TpmClient::PcrRead(int index) {
  Result<Bytes> payload = Roundtrip(BuildPcrRead(index));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseBlobPayload(payload.value());
}

Status TpmClient::PcrExtend(int index, const Bytes& measurement) {
  // A real driver raises its locality through the TIS before extending a
  // launch-gated PCR; mirror that so software extends of PCR 17 (allowed by
  // §2.3 - software can extend, never reset) work from locality 0.
  const bool negotiate = index >= 0 && index < kNumPcrs &&
                         !Tpm::ExtendAllowedAt(index, transport_->locality()) &&
                         Tpm::ExtendAllowedAt(index, 2);
  if (negotiate) {
    FLICKER_RETURN_IF_ERROR(transport_->RequestLocality(2));
  }
  Result<Bytes> payload = Roundtrip(BuildPcrExtend(index, measurement));
  if (negotiate) {
    Status released = transport_->ReleaseLocality();
    (void)released;  // Restoring a previously held software locality cannot fail.
  }
  return payload.ok() ? Status::Ok() : payload.status();
}

Status TpmClient::PcrExtendData(int index, const Bytes& data) {
  return PcrExtend(index, Sha1::Digest(data));
}

AuthSessionInfo TpmClient::StartOiap() {
  Result<Bytes> payload = Roundtrip(BuildOiap());
  if (!payload.ok()) {
    return AuthSessionInfo();
  }
  Result<AuthSessionInfo> session = ParseSessionPayload(payload.value());
  return session.ok() ? session.take() : AuthSessionInfo();
}

AuthSessionInfo TpmClient::StartOsap(AuthEntity entity, const Bytes& nonce_odd_osap) {
  Result<Bytes> payload = Roundtrip(BuildOsap(entity, nonce_odd_osap));
  if (!payload.ok()) {
    return AuthSessionInfo();
  }
  Result<AuthSessionInfo> session = ParseSessionPayload(payload.value());
  return session.ok() ? session.take() : AuthSessionInfo();
}

void TpmClient::TerminateSession(uint32_t handle) {
  Result<Bytes> payload = Roundtrip(BuildTerminateHandle(handle));
  (void)payload;
}

Result<SealedBlob> TpmClient::Seal(const Bytes& data, const PcrSelection& selection,
                                   const std::map<int, Bytes>& release_pcrs,
                                   const Bytes& blob_auth, const CommandAuth& auth) {
  Result<Bytes> payload = Roundtrip(BuildSeal(data, selection, release_pcrs, blob_auth, auth));
  if (!payload.ok()) {
    return payload.status();
  }
  Result<Bytes> ciphertext = ParseBlobPayload(payload.value());
  if (!ciphertext.ok()) {
    return ciphertext.status();
  }
  return SealedBlob{ciphertext.take()};
}

Result<Bytes> TpmClient::Unseal(const SealedBlob& blob, const Bytes& blob_auth,
                                const CommandAuth& auth) {
  Result<Bytes> payload = Roundtrip(BuildUnseal(blob, blob_auth, auth));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseBlobPayload(payload.value());
}

Result<TpmQuote> TpmClient::Quote(const Bytes& nonce, const PcrSelection& selection) {
  Result<Bytes> payload = Roundtrip(BuildQuote(/*key_handle=*/0, nonce, selection));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseQuotePayload(payload.value());
}

Bytes TpmClient::GetAikBlob() {
  Result<Bytes> payload = Roundtrip(BuildGetAikBlob());
  if (!payload.ok()) {
    return Bytes();
  }
  Result<Bytes> blob = ParseBlobPayload(payload.value());
  return blob.ok() ? blob.take() : Bytes();
}

Result<uint32_t> TpmClient::LoadKey2(const Bytes& blob) {
  Result<Bytes> payload = Roundtrip(BuildLoadKey2(blob));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseHandlePayload(payload.value());
}

Status TpmClient::FlushKey(uint32_t handle) {
  Result<Bytes> payload = Roundtrip(BuildFlushSpecific(handle));
  return payload.ok() ? Status::Ok() : payload.status();
}

Result<TpmQuote> TpmClient::QuoteWithKey(uint32_t key_handle, const Bytes& nonce,
                                         const PcrSelection& selection) {
  Result<Bytes> payload = Roundtrip(BuildQuote(key_handle, nonce, selection));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseQuotePayload(payload.value());
}

Status TpmClient::NvDefineSpace(uint32_t index, size_t size, const PcrSelection& read_selection,
                                const std::map<int, Bytes>& read_pcrs,
                                const PcrSelection& write_selection,
                                const std::map<int, Bytes>& write_pcrs, const CommandAuth& auth) {
  Result<Bytes> payload = Roundtrip(BuildNvDefineSpace(index, size, read_selection, read_pcrs,
                                                       write_selection, write_pcrs, auth));
  return payload.ok() ? Status::Ok() : payload.status();
}

Status TpmClient::NvWrite(uint32_t index, const Bytes& data) {
  Result<Bytes> payload = Roundtrip(BuildNvWrite(index, data));
  return payload.ok() ? Status::Ok() : payload.status();
}

Result<Bytes> TpmClient::NvRead(uint32_t index) {
  Result<Bytes> payload = Roundtrip(BuildNvRead(index));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseBlobPayload(payload.value());
}

Result<uint32_t> TpmClient::CreateCounter(const Bytes& counter_auth, const CommandAuth& auth) {
  Result<Bytes> payload = Roundtrip(BuildCreateCounter(counter_auth, auth));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseHandlePayload(payload.value());
}

Result<uint64_t> TpmClient::IncrementCounter(uint32_t id, const Bytes& counter_auth) {
  Result<Bytes> payload = Roundtrip(BuildIncrementCounter(id, counter_auth));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseCounterPayload(payload.value());
}

Result<uint64_t> TpmClient::ReadCounter(uint32_t id) {
  Result<Bytes> payload = Roundtrip(BuildReadCounter(id));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseCounterPayload(payload.value());
}

Status TpmClient::TakeOwnership(const Bytes& owner_auth) {
  Result<Bytes> payload = Roundtrip(BuildTakeOwnership(owner_auth));
  return payload.ok() ? Status::Ok() : payload.status();
}

Result<Tpm::Capabilities> TpmClient::GetCapability() {
  Result<Bytes> payload = Roundtrip(BuildGetCapability());
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseCapabilityPayload(payload.value());
}

Result<TpmStartupReport> TpmClient::Startup(TpmStartupType type) {
  Result<Bytes> payload = Roundtrip(BuildStartup(type));
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseStartupPayload(payload.value());
}

Status TpmClient::SaveState() {
  Result<Bytes> payload = Roundtrip(BuildSaveState());
  return payload.ok() ? Status::Ok() : payload.status();
}

Status TpmClient::SelfTestFull() {
  Result<Bytes> payload = Roundtrip(BuildSelfTestFull());
  return payload.ok() ? Status::Ok() : payload.status();
}

Result<uint32_t> TpmClient::GetTestResult() {
  Result<Bytes> payload = Roundtrip(BuildGetTestResult());
  if (!payload.ok()) {
    return payload.status();
  }
  return ParseHandlePayload(payload.value());
}

}  // namespace flicker
