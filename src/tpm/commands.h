// Wire-level TPM v1.2 command marshalling.
//
// Every driver-side TPM operation is expressed as a byte frame with the
// v1.2 header layout - tag (u16), paramSize (u32), ordinal/returnCode (u32) -
// followed by a serde-encoded parameter body. The driver builds request
// frames with the Build* helpers, the device side decodes and executes them
// in DispatchFrame, and both sides share the payload codecs so a garbled
// frame is caught by exactly the checks a real TPM applies (parse failure or
// authorization-HMAC mismatch).
//
// Ordinals use the real TPM 1.2 values; simulator-only reads (AIK blob,
// public-key export) live in the vendor-specific range, and TIS events that
// are register writes rather than commands (locality changes, the SKINIT
// hardware path) get pseudo-ordinals that exist only in the command trace.

#ifndef FLICKER_SRC_TPM_COMMANDS_H_
#define FLICKER_SRC_TPM_COMMANDS_H_

#include <cstdint>
#include <map>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/tpm/structures.h"
#include "src/tpm/tpm.h"

namespace flicker {

// ---- Frame tags (TPM_TAG_*) ----
constexpr uint16_t kTagRequest = 0x00C1;       // TPM_TAG_RQU_COMMAND
constexpr uint16_t kTagRequestAuth1 = 0x00C2;  // TPM_TAG_RQU_AUTH1_COMMAND
constexpr uint16_t kTagResponse = 0x00C4;      // TPM_TAG_RSP_COMMAND
constexpr uint16_t kTagResponseAuth1 = 0x00C5; // TPM_TAG_RSP_AUTH1_COMMAND

// Header: tag (2) + paramSize (4) + ordinal/returnCode (4).
constexpr size_t kFrameHeaderSize = 10;

// ---- Ordinals (TPM_ORD_*, v1.2 values) ----
enum TpmOrdinal : uint32_t {
  kOrdOiap = 0x0000000A,
  kOrdOsap = 0x0000000B,
  kOrdTakeOwnership = 0x0000000D,
  kOrdExtend = 0x00000014,
  kOrdPcrRead = 0x00000015,
  kOrdQuote = 0x00000016,
  kOrdSeal = 0x00000017,
  kOrdUnseal = 0x00000018,
  kOrdLoadKey2 = 0x00000041,
  kOrdGetRandom = 0x00000046,
  kOrdSelfTestFull = 0x00000050,
  kOrdGetTestResult = 0x00000054,
  kOrdGetCapability = 0x00000065,
  kOrdTerminateHandle = 0x00000096,
  kOrdSaveState = 0x00000098,
  kOrdStartup = 0x00000099,
  kOrdFlushSpecific = 0x000000BA,
  kOrdNvDefineSpace = 0x000000CC,
  kOrdNvWriteValue = 0x000000CD,
  kOrdNvReadValue = 0x000000CF,
  kOrdCreateCounter = 0x000000DC,
  kOrdIncrementCounter = 0x000000DD,
  kOrdReadCounter = 0x000000DE,

  // Vendor-specific range (TPM_VENDOR_COMMAND bit): simulator-only reads.
  kOrdGetAikBlob = 0x20000001,
  kOrdGetPubKey = 0x20000002,

  // TIS pseudo-ordinals: locality register writes and the hardware-side
  // interface. Never framed; recorded in the transport trace only.
  kOrdTisRequestLocality = 0xF0000001,
  kOrdTisReleaseLocality = 0xF0000002,
  kOrdHwSkinitReset = 0xF0000010,
  kOrdHwExtendIdentityPcr = 0xF0000011,
  kOrdHwPowerCycle = 0xF0000012,
  kOrdHwSetLocality = 0xF0000013,
  kOrdHwInit = 0xF0000014,
  kOrdHwForceFailure = 0xF0000015,
  kOrdHwClearFailure = 0xF0000016,
};

// Human-readable ordinal name for traces ("TPM_ORD_Quote").
const char* TpmOrdinalName(uint32_t ordinal);

// ---- Return-code <-> Status mapping ----
//
// 0 is TPM_SUCCESS; errors map StatusCode into the vendor error band
// (0x400 + code) and carry the message as a string in the response body.
uint32_t ReturnCodeFor(StatusCode code);
StatusCode StatusCodeFromReturnCode(uint32_t return_code);

// ---- Frame construction / parsing ----

struct CommandFrame {
  uint16_t tag = 0;
  uint32_t ordinal = 0;
  Bytes body;
};

Bytes BuildCommandFrame(uint16_t tag, uint32_t ordinal, const Bytes& body);
Result<CommandFrame> ParseCommandFrame(const Bytes& frame);

// Builds a response frame for `status` (payload only included on success).
Bytes BuildResponseFrame(bool auth1, const Status& status, const Bytes& payload);
// Returns the payload on TPM_SUCCESS, or the decoded error Status.
Result<Bytes> ParseResponseFrame(const Bytes& frame);

// Reads just the ordinal (requests) or return code (responses) of a frame
// without validating the body; used by the transport for tracing/policy.
Result<uint32_t> PeekOrdinal(const Bytes& frame);
uint32_t PeekReturnCode(const Bytes& frame);

// For an Extend request, recovers the target PCR index (for the transport's
// locality gate). Returns false if `frame` is not a well-formed Extend.
bool ExtendTargetPcr(const Bytes& frame, int* index);

// ---- Request builders (driver side) ----

Bytes BuildGetRandom(size_t len);
Bytes BuildPcrRead(int index);
Bytes BuildPcrExtend(int index, const Bytes& measurement);
Bytes BuildOiap();
Bytes BuildOsap(AuthEntity entity, const Bytes& nonce_odd_osap);
Bytes BuildTerminateHandle(uint32_t handle);
Bytes BuildSeal(const Bytes& data, const PcrSelection& selection,
                const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                const CommandAuth& auth);
Bytes BuildUnseal(const SealedBlob& blob, const Bytes& blob_auth, const CommandAuth& auth);
// key_handle 0 requests the convenience load-sign-flush quote; a nonzero
// handle quotes with an explicitly loaded key (TPM_ORD_Quote's keyHandle).
Bytes BuildQuote(uint32_t key_handle, const Bytes& nonce, const PcrSelection& selection);
Bytes BuildLoadKey2(const Bytes& blob);
Bytes BuildFlushSpecific(uint32_t handle);
Bytes BuildNvDefineSpace(uint32_t index, size_t size, const PcrSelection& read_selection,
                         const std::map<int, Bytes>& read_pcrs,
                         const PcrSelection& write_selection,
                         const std::map<int, Bytes>& write_pcrs, const CommandAuth& auth);
Bytes BuildNvWrite(uint32_t index, const Bytes& data);
Bytes BuildNvRead(uint32_t index);
Bytes BuildCreateCounter(const Bytes& counter_auth, const CommandAuth& auth);
Bytes BuildIncrementCounter(uint32_t id, const Bytes& counter_auth);
Bytes BuildReadCounter(uint32_t id);
Bytes BuildTakeOwnership(const Bytes& owner_auth);
Bytes BuildStartup(TpmStartupType type);
Bytes BuildSaveState();
Bytes BuildSelfTestFull();
Bytes BuildGetTestResult();
Bytes BuildGetCapability();
Bytes BuildGetAikBlob();
Bytes BuildGetPubKey(bool srk);

// ---- Response payload codecs ----

Result<AuthSessionInfo> ParseSessionPayload(const Bytes& payload);
Result<TpmQuote> ParseQuotePayload(const Bytes& payload);
Result<uint32_t> ParseHandlePayload(const Bytes& payload);
Result<uint64_t> ParseCounterPayload(const Bytes& payload);
Result<Bytes> ParseBlobPayload(const Bytes& payload);
Result<Tpm::Capabilities> ParseCapabilityPayload(const Bytes& payload);
Result<TpmStartupReport> ParseStartupPayload(const Bytes& payload);

// ---- Device side ----
//
// Decodes a request frame, executes it against `tpm`, and encodes the
// response frame. Errors (parse failures, authorization failures, device
// Status errors) are encoded in-band; the returned frame is always valid.
Bytes DispatchFrame(Tpm* tpm, const Bytes& request_frame);

}  // namespace flicker

#endif  // FLICKER_SRC_TPM_COMMANDS_H_
