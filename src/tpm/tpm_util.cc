#include "src/tpm/tpm_util.h"

#include "src/tpm/transport.h"

namespace flicker {

// Explicit instantiations for both device handles, so both wire-ups stay
// compiled even when a given binary only links one of them.
template Result<SealedBlob> TpmSealData<Tpm>(Tpm*, const Bytes&, const PcrSelection&,
                                             const std::map<int, Bytes>&, const Bytes&,
                                             const Bytes&);
template Result<SealedBlob> TpmSealData<TpmClient>(TpmClient*, const Bytes&, const PcrSelection&,
                                                   const std::map<int, Bytes>&, const Bytes&,
                                                   const Bytes&);
template Result<Bytes> TpmUnsealData<Tpm>(Tpm*, const SealedBlob&, const Bytes&, const Bytes&);
template Result<Bytes> TpmUnsealData<TpmClient>(TpmClient*, const SealedBlob&, const Bytes&,
                                                const Bytes&);
template Status TpmDefineNvSpace<Tpm>(Tpm*, uint32_t, size_t, const PcrSelection&,
                                      const std::map<int, Bytes>&, const PcrSelection&,
                                      const std::map<int, Bytes>&, const Bytes&);
template Status TpmDefineNvSpace<TpmClient>(TpmClient*, uint32_t, size_t, const PcrSelection&,
                                            const std::map<int, Bytes>&, const PcrSelection&,
                                            const std::map<int, Bytes>&, const Bytes&);
template Result<uint32_t> TpmCreateCounter<Tpm>(Tpm*, const Bytes&, const Bytes&);
template Result<uint32_t> TpmCreateCounter<TpmClient>(TpmClient*, const Bytes&, const Bytes&);

}  // namespace flicker
