#include "src/tpm/tpm_util.h"

#include "src/crypto/sha1.h"

namespace flicker {

namespace {

// Builds the CommandAuth for a command whose parameters hash to
// `param_digest`, under an OIAP session.
CommandAuth MakeAuth(Tpm* tpm, const AuthSessionInfo& session, const Bytes& secret,
                     const Bytes& param_digest) {
  CommandAuth auth;
  auth.session_handle = session.handle;
  auth.nonce_odd = tpm->GetRandom(kPcrSize);
  auth.auth = Tpm::ComputeCommandAuth(secret, param_digest, session.nonce_even, auth.nonce_odd);
  return auth;
}

}  // namespace

Result<SealedBlob> TpmSealData(Tpm* tpm, const Bytes& data, const PcrSelection& selection,
                               const std::map<int, Bytes>& release_pcrs, const Bytes& blob_auth,
                               const Bytes& srk_secret) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Seal"), data, selection.Serialize()));
  CommandAuth auth = MakeAuth(tpm, session, srk_secret, param_digest);
  Result<SealedBlob> blob = tpm->Seal(data, selection, release_pcrs, blob_auth, auth);
  tpm->TerminateSession(session.handle);
  return blob;
}

Result<Bytes> TpmUnsealData(Tpm* tpm, const SealedBlob& blob, const Bytes& blob_auth,
                            const Bytes& srk_secret) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Unseal"), blob.ciphertext));
  CommandAuth auth = MakeAuth(tpm, session, srk_secret, param_digest);
  Result<Bytes> data = tpm->Unseal(blob, blob_auth, auth);
  tpm->TerminateSession(session.handle);
  return data;
}

Status TpmDefineNvSpace(Tpm* tpm, uint32_t index, size_t size, const PcrSelection& read_selection,
                        const std::map<int, Bytes>& read_pcrs, const PcrSelection& write_selection,
                        const std::map<int, Bytes>& write_pcrs, const Bytes& owner_secret) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_NV_DefineSpace"),
                                           read_selection.Serialize(),
                                           write_selection.Serialize()));
  CommandAuth auth = MakeAuth(tpm, session, owner_secret, param_digest);
  Status st =
      tpm->NvDefineSpace(index, size, read_selection, read_pcrs, write_selection, write_pcrs, auth);
  tpm->TerminateSession(session.handle);
  return st;
}

Result<uint32_t> TpmCreateCounter(Tpm* tpm, const Bytes& counter_auth, const Bytes& owner_secret) {
  AuthSessionInfo session = tpm->StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_CreateCounter"), counter_auth));
  CommandAuth auth = MakeAuth(tpm, session, owner_secret, param_digest);
  Result<uint32_t> id = tpm->CreateCounter(counter_auth, auth);
  tpm->TerminateSession(session.handle);
  return id;
}

}  // namespace flicker
