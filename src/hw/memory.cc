#include "src/hw/memory.h"

#include <algorithm>
#include <cstring>

namespace flicker {

Result<Bytes> PhysicalMemory::Read(uint64_t addr, size_t len) const {
  if (!InBounds(addr, len)) {
    return InvalidArgumentError("physical read out of bounds");
  }
  return Bytes(data_.begin() + static_cast<long>(addr), data_.begin() + static_cast<long>(addr + len));
}

Status PhysicalMemory::Write(uint64_t addr, const Bytes& bytes) {
  if (!InBounds(addr, bytes.size())) {
    return InvalidArgumentError("physical write out of bounds");
  }
  std::copy(bytes.begin(), bytes.end(), data_.begin() + static_cast<long>(addr));
  MarkWatches(addr, bytes.size());
  return Status::Ok();
}

Status PhysicalMemory::Erase(uint64_t addr, size_t len) {
  if (!InBounds(addr, len)) {
    return InvalidArgumentError("physical erase out of bounds");
  }
  std::memset(data_.data() + addr, 0, len);
  MarkWatches(addr, len);
  return Status::Ok();
}

int PhysicalMemory::RegisterWatch(uint64_t base, size_t len) {
  watches_.push_back(Watch{base, len, false});
  return static_cast<int>(watches_.size()) - 1;
}

bool PhysicalMemory::IsWatchDirty(int id) const {
  return watches_[static_cast<size_t>(id)].dirty;
}

void PhysicalMemory::ClearWatchDirty(int id) {
  watches_[static_cast<size_t>(id)].dirty = false;
}

void PhysicalMemory::MarkWatches(uint64_t addr, size_t len) {
  for (Watch& w : watches_) {
    if (addr < w.base + w.len && w.base < addr + len) {
      w.dirty = true;
    }
  }
}

void DeviceExclusionVector::Protect(uint64_t base, size_t len) {
  ranges_.push_back(Range{base, len});
}

void DeviceExclusionVector::Unprotect(uint64_t base, size_t len) {
  for (auto it = ranges_.begin(); it != ranges_.end(); ++it) {
    if (it->base == base && it->len == len) {
      ranges_.erase(it);
      return;
    }
  }
}

void DeviceExclusionVector::Clear() {
  ranges_.clear();
}

bool DeviceExclusionVector::Blocks(uint64_t addr, size_t len) const {
  for (const Range& r : ranges_) {
    if (addr < r.base + r.len && r.base < addr + len) {
      return true;
    }
  }
  return false;
}

}  // namespace flicker
