#include "src/hw/machine.h"

#include "src/common/fault.h"
#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {

Bytes SinitAcmMeasurement() {
  // A fixed, public stand-in for the chipset vendor's signed SINIT module.
  return Sha1::Digest(BytesOf("flicker-sim-sinit-acm-v1"));
}

Machine::Machine(const MachineConfig& config)
    : tech_(config.tech),
      timing_(config.timing),
      memory_(config.memory_bytes),
      cpus_(static_cast<size_t>(config.num_cpus)),
      apic_(&cpus_),
      tpm_(&clock_, config.timing.tpm, config.tpm),
      tpm_transport_(&tpm_),
      tpm_client_(&tpm_transport_) {
  for (int i = 0; i < config.num_cpus; ++i) {
    cpus_[static_cast<size_t>(i)].id = i;
    cpus_[static_cast<size_t>(i)].is_bsp = (i == 0);
  }
}

Result<SkinitLaunch> Machine::Skinit(int cpu_index, uint64_t slb_base) {
  if (cpu_index < 0 || cpu_index >= num_cpus()) {
    return InvalidArgumentError("SKINIT: CPU index out of range");
  }
  Cpu& cpu = cpus_[static_cast<size_t>(cpu_index)];

  // SKINIT is a privileged instruction (§5.1.2: only ring 0 may invoke it).
  if (cpu.ring != 0) {
    return PermissionDeniedError("SKINIT is privileged; requires ring 0");
  }
  if (tech_ == LateLaunchTech::kIntelTxt && !cpu.smx_enabled) {
    return FailedPreconditionError("GETSEC[SENTER] requires SMX to be enabled");
  }
  // Multiprocessor preconditions (§4.2): BSP only, all APs parked via INIT.
  if (!cpu.is_bsp) {
    return FailedPreconditionError("SKINIT may only execute on the BSP");
  }
  if (!apic_.AllApsParked()) {
    return FailedPreconditionError("SKINIT requires every AP to have accepted an INIT IPI");
  }
  if (in_secure_session_) {
    return FailedPreconditionError("a secure session is already active");
  }
  if (!memory_.InBounds(slb_base, kSlbRegionSize)) {
    return InvalidArgumentError("SLB region exceeds physical memory");
  }
  // The launch handshake talks to the TPM; a TPM that has not been started
  // up (or is in failure mode) cannot accept the dynamic-PCR reset.
  if (tpm_.lifecycle_state() != TpmLifecycleState::kOperational) {
    return FailedPreconditionError("SKINIT requires an operational TPM (run TPM_Startup)");
  }
  CRASH_POINT("skinit.enter");

  // Preconditions all hold: the launch proper starts here. The span covers
  // measurement, the locality-4 PCR-17 handshake and the modeled SKINIT
  // latency charge - its TPM_HW_SkinitReset child is the paper's dynamic
  // PCR reset event.
  obs::ScopedSpan skinit_span("hw", "hw.skinit");
  obs::Count(obs::Ctr::kSkinitLaunches);
  const uint64_t skinit_start_ns = obs::NowNs(&clock_);

  // Parse and validate the SLB header: first two 16-bit words are length and
  // entry point (§2.4).
  Result<Bytes> header = memory_.Read(slb_base, 4);
  if (!header.ok()) {
    return header.status();
  }
  uint16_t length = static_cast<uint16_t>(header.value()[0] | (header.value()[1] << 8));
  uint16_t entry = static_cast<uint16_t>(header.value()[2] | (header.value()[3] << 8));
  if (length < 4) {
    return InvalidArgumentError("SLB length field smaller than its own header");
  }
  if (entry >= length) {
    return InvalidArgumentError("SLB entry point beyond its length");
  }

  // Hardware protections: DMA exclusion over the full 64 KB region,
  // interrupts off, hardware debugging off (§2.4).
  dev_.Protect(slb_base, kSlbRegionSize);
  cpu.interrupts_enabled = false;
  cpu.debug_access_enabled = false;

  // Measure the SLB contents (length bytes) and stream them to the TPM:
  // dynamic PCRs reset to 0, PCR 17 extended with the measurement. The
  // stream is the dominant latency (Table 2). The host-side digest may come
  // from the measurement cache; the modeled TPM transfer cost is charged
  // regardless, since the hardware streams the bytes every launch.
  Bytes measurement;
  if (measurement_engine_ != nullptr) {
    Result<Bytes> cached = measurement_engine_->Measure(&memory_, slb_base, length, nullptr);
    if (!cached.ok()) {
      return cached.status();
    }
    measurement = cached.take();
  } else {
    Result<Bytes> slb_bytes = memory_.Read(slb_base, length);
    if (!slb_bytes.ok()) {
      return slb_bytes.status();
    }
    measurement = Sha1::Digest(slb_bytes.value());
  }
  CRASH_POINT("skinit.measured");
  if (tech_ == LateLaunchTech::kIntelTxt) {
    // SENTER: the SINIT ACM is authenticated and measured first, then the
    // launched environment - PCR 17 gains the extra well-known link.
    tpm_transport_.hardware()->SkinitReset(SinitAcmMeasurement());
    tpm_transport_.hardware()->ExtendIdentityPcr(measurement);
  } else {
    tpm_transport_.hardware()->SkinitReset(measurement);
  }
  CRASH_POINT("skinit.pcr_extended");
  clock_.AdvanceMillis(timing_.SkinitMillis(length));
  obs::ObserveMs(obs::Hist::kSkinitLatencyMs,
                 static_cast<double>(obs::NowNs(&clock_) - skinit_start_ns) / 1e6);
  skinit_span.Arg("slb_length", static_cast<uint64_t>(length));

  // CPU enters flat 32-bit protected mode at the SLB entry point.
  cpu.paging_enabled = false;
  cpu.ring = 0;
  cpu.LoadFlatSegments();

  in_secure_session_ = true;
  active_slb_base_ = slb_base;

  SkinitLaunch launch;
  launch.slb_base = slb_base;
  launch.slb_length = length;
  launch.entry_point = entry;
  launch.measurement = measurement;
  return launch;
}

Status Machine::ExitSecureMode(int cpu_index, uint64_t restored_cr3) {
  if (cpu_index < 0 || cpu_index >= num_cpus()) {
    return InvalidArgumentError("CPU index out of range");
  }
  if (!in_secure_session_) {
    return FailedPreconditionError("no secure session active");
  }
  CRASH_POINT("machine.exit_secure");
  Cpu& cpu = cpus_[static_cast<size_t>(cpu_index)];
  cpu.LoadFlatSegments();
  cpu.paging_enabled = true;
  cpu.cr3 = restored_cr3;
  cpu.ring = 0;
  cpu.interrupts_enabled = true;
  cpu.debug_access_enabled = true;
  dev_.Unprotect(active_slb_base_, kSlbRegionSize);
  Status locality_dropped = tpm_transport_.hardware()->SetLocality(0);
  (void)locality_dropped;  // Hardware transitions to locality 0 always succeed.
  in_secure_session_ = false;
  active_slb_base_ = 0;
  return Status::Ok();
}

Status Machine::DmaWrite(uint64_t addr, const Bytes& data) {
  if (dev_.Blocks(addr, data.size())) {
    ++dma_blocked_count_;
    obs::Count(obs::Ctr::kDmaBlocked);
    return PermissionDeniedError("DMA write blocked by Device Exclusion Vector");
  }
  return memory_.Write(addr, data);
}

Result<Bytes> Machine::DmaRead(uint64_t addr, size_t len) {
  if (dev_.Blocks(addr, len)) {
    ++dma_blocked_count_;
    obs::Count(obs::Ctr::kDmaBlocked);
    return PermissionDeniedError("DMA read blocked by Device Exclusion Vector");
  }
  return memory_.Read(addr, len);
}

Status Machine::GuestWrite(int cpu_index, uint64_t addr, const Bytes& data) {
  if (cpu_index < 0 || cpu_index >= num_cpus()) {
    return InvalidArgumentError("guest access: CPU index out of range");
  }
  const Cpu& cpu = cpus_[static_cast<size_t>(cpu_index)];
  if (cpu.guest_mode && guest_guard_ != nullptr &&
      guest_guard_->FaultsGuestAccess(cpu_index, addr, data.size(), /*is_write=*/true)) {
    ++npt_blocked_count_;
    return PermissionDeniedError("guest write blocked by nested page protection");
  }
  return memory_.Write(addr, data);
}

Result<Bytes> Machine::GuestRead(int cpu_index, uint64_t addr, size_t len) {
  if (cpu_index < 0 || cpu_index >= num_cpus()) {
    return InvalidArgumentError("guest access: CPU index out of range");
  }
  const Cpu& cpu = cpus_[static_cast<size_t>(cpu_index)];
  if (cpu.guest_mode && guest_guard_ != nullptr &&
      guest_guard_->FaultsGuestAccess(cpu_index, addr, len, /*is_write=*/false)) {
    ++npt_blocked_count_;
    return PermissionDeniedError("guest read blocked by nested page protection");
  }
  return memory_.Read(addr, len);
}

void Machine::Reboot() {
  tpm_transport_.hardware()->PowerCycle();
  dev_.Clear();
  guest_guard_ = nullptr;
  ++reset_epoch_;
  in_secure_session_ = false;
  active_slb_base_ = 0;
  for (Cpu& cpu : cpus_) {
    cpu.state = CpuState::kRunning;
    cpu.ring = 0;
    cpu.interrupts_enabled = true;
    cpu.debug_access_enabled = true;
    cpu.paging_enabled = true;
    cpu.guest_mode = false;
    cpu.pal_dedicated = false;
    cpu.LoadFlatSegments();
  }
}

// Shared tail of both reset kinds: everything except what happens to RAM.
// The TPM reset line fires via Hardware::Init - no TPM_Startup - so the
// device refuses commands until recovery software issues one.
void Machine::ResetCommon() {
  tpm_transport_.hardware()->Init();
  dev_.Clear();
  guest_guard_ = nullptr;
  ++reset_epoch_;
  in_secure_session_ = false;
  active_slb_base_ = 0;
  for (Cpu& cpu : cpus_) {
    cpu.state = CpuState::kRunning;
    cpu.ring = 0;
    cpu.interrupts_enabled = true;
    cpu.debug_access_enabled = true;
    cpu.paging_enabled = true;
    cpu.guest_mode = false;
    cpu.pal_dedicated = false;
    cpu.LoadFlatSegments();
  }
}

void Machine::PowerCut() {
  obs::Count(obs::Ctr::kPowerCuts);
  obs::Instant("hw", "hw.power_cut");
  // RAM loses its contents; Erase also dirties measurement-cache watches so
  // no cached SLB digest survives the outage.
  Status erased = memory_.Erase(0, memory_.size());
  (void)erased;  // Erasing the whole address space cannot go out of bounds.
  ResetCommon();
}

void Machine::WarmReset() {
  obs::Count(obs::Ctr::kWarmResets);
  obs::Instant("hw", "hw.warm_reset");
  ResetCommon();
}

}  // namespace flicker
