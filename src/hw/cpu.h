// CPU core and APIC models.
//
// Only the state SKINIT's security argument touches is modeled: privilege
// ring, interrupt flag, debug-port availability, paging/segmentation state,
// and the multiprocessor INIT handshake (paper §4.2 "Suspend OS": SKINIT may
// only run on the BSP while every AP has accepted an INIT IPI).

#ifndef FLICKER_SRC_HW_CPU_H_
#define FLICKER_SRC_HW_CPU_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace flicker {

enum class CpuState {
  kRunning,  // Executing OS/process code.
  kIdle,     // Descheduled by CPU hotplug, no process context.
  kInit,     // Received INIT IPI; waiting for the SKINIT handshake / SIPI.
};

// Segment descriptor state loaded into CS/DS/SS. The OS runs with flat
// segments (base 0, limit 4 GB); the SLB core loads slb_base-relative
// segments, and the OS Protection module narrows the limit around the PAL.
struct SegmentState {
  uint64_t base = 0;
  uint64_t limit = UINT32_MAX;

  bool Contains(uint64_t linear_addr, size_t len) const {
    // The segmented address space is [base, base+limit]; an access of `len`
    // bytes at offset (linear_addr - base) must fit below the limit.
    if (linear_addr < base) {
      return false;
    }
    uint64_t offset = linear_addr - base;
    return offset + len <= limit + 1;
  }
};

struct Cpu {
  int id = 0;
  bool is_bsp = false;
  CpuState state = CpuState::kRunning;

  int ring = 0;
  bool interrupts_enabled = true;
  bool debug_access_enabled = true;
  bool paging_enabled = true;
  // Intel SMX (Safer Mode Extensions) enable bit; GETSEC[SENTER] requires
  // it. Meaningless on SVM machines.
  bool smx_enabled = true;
  // Set while the core runs as an SVM guest under the minimal hypervisor
  // (VMRUN'd with a VMCB): its memory traffic is subject to nested-page
  // translation and the hypervisor's guest-access guard.
  bool guest_mode = false;
  // Set on a core the hypervisor has pinned to a PAL session; the OS
  // scheduler must not place work on it until the session ends.
  bool pal_dedicated = false;
  uint64_t cr3 = 0;  // Opaque page-table root handle for the OS model.
  SegmentState code_segment;
  SegmentState data_segment;

  // Loads flat segments covering all of memory (the post-session call-gate
  // path in the SLB core, §4.2 "Resume OS").
  void LoadFlatSegments() {
    code_segment = SegmentState{};
    data_segment = SegmentState{};
  }
};

// Minimal APIC: routes INIT and Startup IPIs between cores.
class Apic {
 public:
  explicit Apic(std::vector<Cpu>* cpus) : cpus_(cpus) {}

  // INIT IPI: parks the target AP. Fails if the target is still running a
  // process context (the flicker-module must hotplug-deschedule it first)
  // or is the BSP.
  Status SendInitIpi(int target);

  // Startup IPI: returns a parked AP to the running state.
  Status SendStartupIpi(int target);

  // True when every AP has accepted INIT (the SKINIT precondition).
  bool AllApsParked() const;

 private:
  std::vector<Cpu>* cpus_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_HW_CPU_H_
