// Virtual time for the simulated platform.
//
// Every latency the paper measures (SKINIT transfer, TPM command times, PAL
// compute) is charged to a SimClock by the component that models it. Benches
// then report simulated milliseconds, which is what reproduces the paper's
// tables regardless of host speed.

#ifndef FLICKER_SRC_HW_CLOCK_H_
#define FLICKER_SRC_HW_CLOCK_H_

#include <cstdint>

namespace flicker {

class SimClock {
 public:
  SimClock() = default;

  uint64_t NowMicros() const { return now_micros_; }
  double NowMillis() const { return static_cast<double>(now_micros_) / 1000.0; }
  double NowSeconds() const { return static_cast<double>(now_micros_) / 1e6; }

  void AdvanceMicros(uint64_t micros) { now_micros_ += micros; }
  void AdvanceMillis(double millis) {
    if (millis > 0) {
      now_micros_ += static_cast<uint64_t>(millis * 1000.0 + 0.5);
    }
  }

 private:
  uint64_t now_micros_ = 0;
};

// RAII span measuring elapsed simulated time, used by benches to attribute
// costs to protocol phases.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock* clock) : clock_(clock), start_micros_(clock->NowMicros()) {}

  double ElapsedMillis() const {
    return static_cast<double>(clock_->NowMicros() - start_micros_) / 1000.0;
  }

  void Restart() { start_micros_ = clock_->NowMicros(); }

 private:
  const SimClock* clock_;
  uint64_t start_micros_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_HW_CLOCK_H_
