// Virtual time for the simulated platform.
//
// Every latency the paper measures (SKINIT transfer, TPM command times, PAL
// compute) is charged to a SimClock by the component that models it. Benches
// then report simulated milliseconds, which is what reproduces the paper's
// tables regardless of host speed.
//
// Time is kept in integer nanoseconds, the same unit and epoch the unified
// trace stream (obs::NowNs), the TpmTransport command ring and the
// LossyChannel delivery rings report in - there is no second epoch to
// convert to. AdvanceMillis rounds each charge to the microsecond (the
// resolution the calibrated tables were captured at) before widening to ns,
// so the migration to a ns epoch did not move any bench number.
//
// Time discipline: a SimClock may only move forward through the advancement
// verbs below, and only from the discrete-event engine (src/sim/) or one of
// the hardware-model charge sites enumerated in
// tools/time_discipline.allow - verify.sh greps every other caller away.
// Components that want "run X later" semantics post an event on a
// sim::SimExecutor instead of spinning the clock themselves.

#ifndef FLICKER_SRC_HW_CLOCK_H_
#define FLICKER_SRC_HW_CLOCK_H_

#include <cstdint>

namespace flicker {

class SimClock {
 public:
  SimClock() = default;

  uint64_t NowNanos() const { return now_ns_; }
  uint64_t NowMicros() const { return now_ns_ / 1000; }
  double NowMillis() const { return static_cast<double>(now_ns_) / 1e6; }
  double NowSeconds() const { return static_cast<double>(now_ns_) / 1e9; }

  void AdvanceNanos(uint64_t nanos) { now_ns_ += nanos; }
  void AdvanceMicros(uint64_t micros) { now_ns_ += micros * 1000; }
  // Quantized to the microsecond grain (then widened to ns): fractional-µs
  // charges accumulate exactly as they did when the clock counted µs, which
  // keeps the calibrated bench tables byte-identical across the ns
  // migration.
  void AdvanceMillis(double millis) {
    if (millis > 0) {
      now_ns_ += static_cast<uint64_t>(millis * 1000.0 + 0.5) * 1000;
    }
  }
  // Moves to an absolute instant, never backwards: the verb the event engine
  // (and scheduled-delivery channels) use to land on an event's timestamp.
  void AdvanceToNanos(uint64_t ns) {
    if (ns > now_ns_) {
      now_ns_ = ns;
    }
  }

 private:
  uint64_t now_ns_ = 0;
};

// RAII span measuring elapsed simulated time, used by benches to attribute
// costs to protocol phases.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock* clock) : clock_(clock), start_ns_(clock->NowNanos()) {}

  double ElapsedMillis() const {
    return static_cast<double>(clock_->NowNanos() - start_ns_) / 1e6;
  }

  void Restart() { start_ns_ = clock_->NowNanos(); }

 private:
  const SimClock* clock_;
  uint64_t start_ns_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_HW_CLOCK_H_
