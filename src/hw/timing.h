// Calibrated cost model for the simulated platform.
//
// The constants come from the paper's measurements on an HP dc5750
// (Athlon64 X2 4200+, Broadcom BCM0102 v1.2 TPM), §7:
//   * Table 1: SKINIT 15.4 ms (64 KB SLB), PCR Extend 1.2 ms, kernel hash
//     22.0 ms, TPM Quote 972.7 ms.
//   * Table 2: SKINIT vs SLB size, linear at ~2.77 ms/KB of TPM transfer.
//   * Table 4 / Fig. 9: Unseal 898-905 ms, Seal 10.2 ms, 1024-bit key
//     generation 185.7 ms, decrypt 4.6 ms, sign 4.7 ms, GetRandom 1.3 ms.
// The Infineon profile uses the alternative numbers quoted in §7 (Quote
// 331 ms, Unseal 391 ms).

#ifndef FLICKER_SRC_HW_TIMING_H_
#define FLICKER_SRC_HW_TIMING_H_

#include <string>

namespace flicker {

struct TpmTimingProfile {
  std::string name;
  double quote_ms;
  double seal_ms;
  double unseal_ms;
  double pcr_extend_ms;
  double pcr_read_ms;
  double get_random_ms;
  double nv_read_ms;
  double nv_write_ms;
  double counter_ms;
  double session_start_ms;
  // TPM_LoadKey2: unwrapping a key blob (e.g. the AIK) into a key slot.
  // quote_ms is the *total* measured quote latency including this load, so
  // the signing step alone costs quote_ms - load_key_ms.
  double load_key_ms;
  // SKINIT's dominant cost: streaming the SLB to the TPM for hashing.
  double skinit_transfer_ms_per_kb;
};

inline TpmTimingProfile BroadcomBcm0102Profile() {
  return TpmTimingProfile{
      .name = "Broadcom BCM0102",
      .quote_ms = 972.7,
      .seal_ms = 10.2,
      .unseal_ms = 898.3,
      .pcr_extend_ms = 1.2,
      .pcr_read_ms = 0.4,
      .get_random_ms = 1.3,
      .nv_read_ms = 12.0,
      .nv_write_ms = 25.0,
      .counter_ms = 8.0,
      .session_start_ms = 5.0,
      .load_key_ms = 15.0,
      .skinit_transfer_ms_per_kb = 2.76,
  };
}

inline TpmTimingProfile InfineonProfile() {
  return TpmTimingProfile{
      .name = "Infineon",
      .quote_ms = 331.0,
      .seal_ms = 8.0,
      .unseal_ms = 391.0,
      .pcr_extend_ms = 0.6,
      .pcr_read_ms = 0.3,
      .get_random_ms = 0.7,
      .nv_read_ms = 8.0,
      .nv_write_ms = 15.0,
      .counter_ms = 5.0,
      .session_start_ms = 3.0,
      .load_key_ms = 8.0,
      .skinit_transfer_ms_per_kb = 2.76,  // Bus-limited, not TPM-limited.
  };
}

struct CpuTimingProfile {
  std::string name;
  // Fixed CPU-side cost of SKINIT (entering flat protected mode, arming the
  // DEV). The paper's zero-length-SLB measurement bounds this under 1 ms.
  double skinit_cpu_setup_ms;
  // SHA-1 throughput of the main CPU; calibrated from the 22 ms hash of the
  // ~2 MB kernel text+syscall+module image in Table 1.
  double sha1_mb_per_ms;
  // 1024-bit RSA costs on the main CPU (Fig. 9 breakdown).
  double rsa1024_keygen_ms;
  double rsa1024_decrypt_ms;
  double rsa1024_sign_ms;
  // Symmetric crypto throughput for PAL-side AES/HMAC over bulk state.
  double aes_mb_per_ms;
  // Generic per-byte memory-touch cost for PAL compute loops.
  double memcpy_mb_per_ms;
  // Trial-division throughput of the distributed-computing workload
  // (§6.2/§7.3: 1,500,000 candidate divisors in an ~8.3 s session).
  double divisor_tests_per_ms;
  // One md5crypt(3) evaluation (1000 MD5 rounds) on the main CPU.
  double md5crypt_ms;
};

inline CpuTimingProfile Athlon64X2Profile() {
  return CpuTimingProfile{
      .name = "AMD Athlon64 X2 4200+ (2.2 GHz)",
      .skinit_cpu_setup_ms = 0.9,
      .sha1_mb_per_ms = 0.0909,  // ~90.9 MB/s -> 22 ms for 2 MB.
      .rsa1024_keygen_ms = 185.7,
      .rsa1024_decrypt_ms = 4.6,
      .rsa1024_sign_ms = 4.7,
      .aes_mb_per_ms = 0.15,
      .memcpy_mb_per_ms = 2.0,
      .divisor_tests_per_ms = 181.0,
      .md5crypt_ms = 1.0,
  };
}

// Costs of the minimal SVM hypervisor's virtualization primitives
// (ROADMAP item 4 / paper §9 "concurrent execution"). Calibrated from
// published VMRUN/#VMEXIT round-trip measurements on Barcelona-class SVM
// parts (a few microseconds per world switch) rather than the paper, which
// predates the hypervisor.
struct HvTimingProfile {
  std::string name;
  // One direction of a world switch (VMRUN or #VMEXIT: VMCB save/restore).
  double world_switch_us;
  // Hypervisor-side handling of one hypercall, excluding the world switches.
  double hypercall_us;
  // Installing or tearing down nested-page protection over one PAL region.
  double npt_update_us;
  // One software µPCR extend (SHA-1 of 40 bytes plus bookkeeping).
  double upcr_extend_us;
};

inline HvTimingProfile SvmHvProfile() {
  return HvTimingProfile{
      .name = "SVM minimal hypervisor",
      .world_switch_us = 1.0,
      .hypercall_us = 3.0,
      .npt_update_us = 5.0,
      .upcr_extend_us = 1.0,
  };
}

struct TimingModel {
  TpmTimingProfile tpm;
  CpuTimingProfile cpu;
  HvTimingProfile hv = SvmHvProfile();

  double SkinitMillis(size_t slb_transfer_bytes) const {
    return cpu.skinit_cpu_setup_ms +
           tpm.skinit_transfer_ms_per_kb * (static_cast<double>(slb_transfer_bytes) / 1024.0);
  }
  double Sha1Millis(size_t bytes) const {
    return static_cast<double>(bytes) / (1024.0 * 1024.0) / cpu.sha1_mb_per_ms;
  }
  // Cost of touching (comparing/copying) a memory range without hashing it;
  // what a verified measurement-cache hit pays instead of Sha1Millis.
  double MemTouchMillis(size_t bytes) const {
    return static_cast<double>(bytes) / (1024.0 * 1024.0) / cpu.memcpy_mb_per_ms;
  }
  // Full cost of one guest->hypervisor->guest transition handling a
  // hypercall or intercepted exit: two world switches plus the handler.
  double HvExitMillis() const {
    return (2.0 * hv.world_switch_us + hv.hypercall_us) / 1000.0;
  }
};

inline TimingModel DefaultTimingModel() {
  return TimingModel{.tpm = BroadcomBcm0102Profile(), .cpu = Athlon64X2Profile()};
}

inline TimingModel InfineonTimingModel() {
  return TimingModel{.tpm = InfineonProfile(), .cpu = Athlon64X2Profile()};
}

// The hardware the authors' concurrent work ("How low can you go?", ASPLOS
// 2008 [19]) recommends: PAL state protected by the CPU instead of TPM
// sealed storage, measurements kept on-die, attestation-grade signatures in
// hardware. Late-launch and seal/unseal-equivalents drop from hundreds of
// milliseconds to microseconds - the "up to six orders of magnitude" claim.
inline TpmTimingProfile NextGenHardwareProfile() {
  return TpmTimingProfile{
      .name = "next-gen (ASPLOS'08 recommendations)",
      .quote_ms = 1.0,           // Hardware-assisted signing.
      .seal_ms = 0.001,          // CPU-protected PAL context, no TPM round trip.
      .unseal_ms = 0.001,
      .pcr_extend_ms = 0.001,    // On-die measurement registers.
      .pcr_read_ms = 0.001,
      .get_random_ms = 0.001,
      .nv_read_ms = 0.01,
      .nv_write_ms = 0.01,
      .counter_ms = 0.001,
      .session_start_ms = 0.001,
      .load_key_ms = 0.001,
      .skinit_transfer_ms_per_kb = 0.0001,  // On-die hashing at memory speed.
  };
}

inline TimingModel NextGenTimingModel() {
  TimingModel model{.tpm = NextGenHardwareProfile(), .cpu = Athlon64X2Profile()};
  model.cpu.skinit_cpu_setup_ms = 0.001;
  return model;
}

}  // namespace flicker

#endif  // FLICKER_SRC_HW_TIMING_H_
