// The simulated SVM platform: CPUs, physical memory, DEV, APIC and TPM wired
// together, with the SKINIT instruction's full state machine.
//
// SKINIT here enforces exactly the preconditions and effects §2.4 and §4.2
// describe: ring-0 + BSP-only + APs-parked preconditions; then interrupts
// off, hardware debug off, DEV armed over the 64 KB SLB region, dynamic PCRs
// reset, SLB measured into PCR 17, and the CPU dropped into flat 32-bit
// protected mode at the SLB entry point. Latency is charged per Table 2's
// calibration (linear in the bytes streamed to the TPM).

#ifndef FLICKER_SRC_HW_MACHINE_H_
#define FLICKER_SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>

#include "src/common/bytes.h"
#include "src/common/fault.h"
#include "src/common/status.h"
#include "src/hw/clock.h"
#include "src/hw/cpu.h"
#include "src/hw/memory.h"
#include "src/hw/timing.h"
#include "src/tpm/tpm.h"
#include "src/tpm/transport.h"

namespace flicker {

// The architectural SLB limit: SKINIT measures and protects at most 64 KB.
constexpr size_t kSlbRegionSize = 64 * 1024;

// Which late-launch technology the platform implements (§2.4). AMD SVM's
// SKINIT measures the SLB directly into PCR 17. Intel TXT's GETSEC[SENTER]
// first authenticates and measures the chipset vendor's SINIT ACM, then the
// launched environment - so the PCR 17 chain gains one extra (well-known)
// link, and SMX must be enabled.
enum class LateLaunchTech {
  kAmdSvm,
  kIntelTxt,
};

struct MachineConfig {
  size_t memory_bytes = 64 * 1024 * 1024;
  int num_cpus = 2;  // The paper's test machine is a dual-core Athlon64 X2.
  LateLaunchTech tech = LateLaunchTech::kAmdSvm;
  TimingModel timing = DefaultTimingModel();
  TpmConfig tpm = TpmConfig();
};

// Measurement of the (synthetic) SINIT Authenticated Code Module that TXT
// platforms load; a verifier must know it to reconstruct PCR 17.
Bytes SinitAcmMeasurement();

// What SKINIT hands to the secure loader: the validated header and the
// measurement the TPM now holds.
struct SkinitLaunch {
  uint64_t slb_base = 0;
  uint16_t slb_length = 0;
  uint16_t entry_point = 0;
  Bytes measurement;  // SHA-1 of the measured SLB bytes.
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = MachineConfig());

  SimClock* clock() { return &clock_; }
  const TimingModel& timing() const { return timing_; }
  PhysicalMemory* memory() { return &memory_; }
  DeviceExclusionVector* dev() { return &dev_; }
  // Software-side TPM access: every command crosses the byte-marshalled
  // transport; no layer above the machine touches the device model directly.
  TpmClient* tpm() { return &tpm_client_; }
  TpmTransport* tpm_transport() { return &tpm_transport_; }
  Apic* apic() { return &apic_; }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  Cpu* cpu(int index) { return &cpus_[index]; }
  Cpu* bsp() { return &cpus_[0]; }

  // Optional measurement engine (the SLB measurement cache). When set, the
  // SKINIT and SLB-core hash paths route through it; when null they hash
  // directly. The engine must outlive the machine's use of it.
  void set_measurement_engine(MeasurementEngine* engine) { measurement_engine_ = engine; }
  MeasurementEngine* measurement_engine() { return measurement_engine_; }

  LateLaunchTech tech() const { return tech_; }

  // ---- The late-launch instruction ----
  //
  // On an SVM machine this is SKINIT; on a TXT machine it behaves as
  // GETSEC[SENTER] (SINIT ACM measured first, SMX required). The bytes
  // streamed to the TPM are the SLB header's length field, so a small
  // measurement-stub SLB transfers only its own few KB (§7.2) while the
  // full 64 KB region is always DEV-protected.
  Result<SkinitLaunch> Skinit(int cpu_index, uint64_t slb_base);
  // The Intel spelling; identical semantics modulo the TXT differences.
  Result<SkinitLaunch> Senter(int cpu_index, uint64_t mle_base) {
    return Skinit(cpu_index, mle_base);
  }

  // True while a late-launched environment is active (between Skinit and
  // ExitSecureMode).
  bool in_secure_session() const { return in_secure_session_; }
  uint64_t active_slb_base() const { return active_slb_base_; }

  // The SLB core's resume path: restore flat segments + paging with the
  // saved cr3, drop DEV protection of the SLB region, re-enable interrupts
  // and hardware debug. (§4.2 "Resume OS".)
  Status ExitSecureMode(int cpu_index, uint64_t restored_cr3);

  // ---- DMA port: every simulated DMA-capable device goes through these ----
  Status DmaWrite(uint64_t addr, const Bytes& data);
  Result<Bytes> DmaRead(uint64_t addr, size_t len);
  uint64_t dma_blocked_count() const { return dma_blocked_count_; }

  // ---- Nested paging (SVM hypervisor mode) ----
  //
  // The minimal hypervisor installs itself as the guest-access guard and
  // flips the OS cores into guest mode; from then on OS-originated memory
  // traffic must go through GuestRead/GuestWrite, which take a nested page
  // fault (kPermissionDenied) on hypervisor- or PAL-owned frames. With no
  // guard installed (the classic machine) these are plain memory accesses.
  void set_guest_guard(GuestAccessGuard* guard) { guest_guard_ = guard; }
  GuestAccessGuard* guest_guard() { return guest_guard_; }
  Status GuestWrite(int cpu_index, uint64_t addr, const Bytes& data);
  Result<Bytes> GuestRead(int cpu_index, uint64_t addr, size_t len);
  uint64_t npt_blocked_count() const { return npt_blocked_count_; }

  // Bumped by every reset flavour (Reboot, PowerCut, WarmReset). The
  // hypervisor keys its residency on this: any reset evicts it.
  uint64_t reset_epoch() const { return reset_epoch_; }

  // Platform reboot: TPM power cycle (dynamic PCRs to -1), CPUs reset, DEV
  // cleared.
  void Reboot();

  // ---- Power domain / reset model ----
  //
  // PowerCut models the cord being pulled: RAM contents are lost (zeroed),
  // the TPM reset line fires (TPM_Init, volatile state gone), and every CPU
  // comes back at its reset vector. WarmReset models a reset-button press:
  // identical except RAM survives. Neither runs the BIOS's TPM_Startup -
  // recovery software must issue it, which is exactly what the crash matrix
  // exercises. The firing of either mid-operation is simulated by the
  // FaultScheduler throwing PowerLossException from a CRASH_POINT; the test
  // harness catches it and calls one of these to complete the crash.
  void PowerCut();
  void WarmReset();

  // The machine's fault scheduler: arm it (and install it via
  // FaultInjectionScope) to make the Nth CRASH_POINT throw. Owned here so
  // the power domain and its crash plan travel with the platform.
  FaultScheduler* fault_scheduler() { return &fault_scheduler_; }

 private:
  void ResetCommon();

  SimClock clock_;
  LateLaunchTech tech_;
  TimingModel timing_;
  PhysicalMemory memory_;
  DeviceExclusionVector dev_;
  std::vector<Cpu> cpus_;
  Apic apic_;
  Tpm tpm_;
  TpmTransport tpm_transport_;
  TpmClient tpm_client_;

  MeasurementEngine* measurement_engine_ = nullptr;
  GuestAccessGuard* guest_guard_ = nullptr;
  FaultScheduler fault_scheduler_;

  bool in_secure_session_ = false;
  uint64_t active_slb_base_ = 0;
  uint64_t dma_blocked_count_ = 0;
  uint64_t npt_blocked_count_ = 0;
  uint64_t reset_epoch_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_HW_MACHINE_H_
