// Physical memory and the Device Exclusion Vector (DEV).
//
// The DEV is the SVM mechanism SKINIT programs to block DMA-capable devices
// from the Secure Loader Block's pages (paper §2.4). Here it is a list of
// protected physical ranges every simulated DMA transaction is checked
// against.

#ifndef FLICKER_SRC_HW_MEMORY_H_
#define FLICKER_SRC_HW_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace flicker {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(size_t size_bytes) : data_(size_bytes, 0) {}

  size_t size() const { return data_.size(); }

  Result<Bytes> Read(uint64_t addr, size_t len) const;
  Status Write(uint64_t addr, const Bytes& bytes);
  // Zero-fill, used by the SLB core cleanup phase to erase PAL secrets.
  Status Erase(uint64_t addr, size_t len);

  bool InBounds(uint64_t addr, size_t len) const {
    return addr <= data_.size() && len <= data_.size() - addr;
  }

  // ---- Dirty watches ----
  //
  // A watch covers [base, base+len); every Write or Erase overlapping it
  // sets its dirty flag. The SLB measurement cache keys its entries on
  // these, so a cached digest can never outlive a memory mutation.
  int RegisterWatch(uint64_t base, size_t len);
  bool IsWatchDirty(int id) const;
  void ClearWatchDirty(int id);

 private:
  struct Watch {
    uint64_t base;
    size_t len;
    bool dirty;
  };

  void MarkWatches(uint64_t addr, size_t len);

  std::vector<uint8_t> data_;
  std::vector<Watch> watches_;
};

// How a measurement was produced, so callers can charge the right simulated
// cost: a full hash, a memcmp against the cached snapshot, or nothing.
enum class MeasureOutcome {
  kHashed,
  kVerifiedHit,
  kCleanHit,
};

// Hook the chipset/SLB-core measurement paths call instead of hashing
// directly. Implemented by the SLB measurement cache (src/slb); a null
// engine means "hash every time".
class MeasurementEngine {
 public:
  virtual ~MeasurementEngine() = default;

  // SHA-1 of memory [base, base+len), possibly served from cache. `outcome`
  // may be null.
  virtual Result<Bytes> Measure(PhysicalMemory* memory, uint64_t base, size_t len,
                                MeasureOutcome* outcome) = 0;
};

// Nested-page-protection hook: when a core runs in guest mode under the
// minimal hypervisor, every memory access the OS model issues through
// Machine::GuestRead/GuestWrite is checked against this guard. Implemented
// by the hypervisor (src/hv); a null guard means "identity-mapped, nothing
// faults" - exactly the pre-hypervisor machine.
class GuestAccessGuard {
 public:
  virtual ~GuestAccessGuard() = default;

  // True when the guest access [addr, addr+len) from `core` must take a
  // nested page fault (i.e. it touches hypervisor- or PAL-owned frames).
  virtual bool FaultsGuestAccess(int core, uint64_t addr, size_t len, bool is_write) = 0;
};

class DeviceExclusionVector {
 public:
  // Marks [base, base+len) as DMA-protected.
  void Protect(uint64_t base, size_t len);
  // Removes protection for ranges exactly matching a prior Protect call.
  void Unprotect(uint64_t base, size_t len);
  void Clear();

  // True when [addr, addr+len) overlaps any protected range.
  bool Blocks(uint64_t addr, size_t len) const;

  size_t protected_range_count() const { return ranges_.size(); }

 private:
  struct Range {
    uint64_t base;
    size_t len;
  };
  std::vector<Range> ranges_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_HW_MEMORY_H_
