#include "src/hw/cpu.h"

namespace flicker {

Status Apic::SendInitIpi(int target) {
  if (target < 0 || target >= static_cast<int>(cpus_->size())) {
    return InvalidArgumentError("INIT IPI target out of range");
  }
  Cpu& cpu = (*cpus_)[target];
  if (cpu.is_bsp) {
    return InvalidArgumentError("cannot send INIT IPI to the BSP");
  }
  if (cpu.state == CpuState::kRunning) {
    return FailedPreconditionError("AP still executing processes; deschedule it first");
  }
  cpu.state = CpuState::kInit;
  return Status::Ok();
}

Status Apic::SendStartupIpi(int target) {
  if (target < 0 || target >= static_cast<int>(cpus_->size())) {
    return InvalidArgumentError("Startup IPI target out of range");
  }
  Cpu& cpu = (*cpus_)[target];
  if (cpu.is_bsp) {
    return InvalidArgumentError("cannot send Startup IPI to the BSP");
  }
  cpu.state = CpuState::kRunning;
  return Status::Ok();
}

bool Apic::AllApsParked() const {
  for (const Cpu& cpu : *cpus_) {
    if (!cpu.is_bsp && cpu.state != CpuState::kInit) {
      return false;
    }
  }
  return true;
}

}  // namespace flicker
