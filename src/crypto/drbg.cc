#include "src/crypto/drbg.h"

#include <cassert>

#include "src/crypto/sha256.h"

namespace flicker {

Drbg::Drbg(const Bytes& seed) : counter_(0) {
  Bytes tagged = BytesOf("flicker-drbg-init");
  tagged.insert(tagged.end(), seed.begin(), seed.end());
  state_ = Sha256::Digest(tagged);
}

Drbg::Drbg(uint64_t seed) : counter_(0) {
  Bytes b;
  PutUint64(&b, seed);
  Bytes tagged = BytesOf("flicker-drbg-init");
  tagged.insert(tagged.end(), b.begin(), b.end());
  state_ = Sha256::Digest(tagged);
}

void Drbg::Ratchet() {
  Bytes input = BytesOf("flicker-drbg-ratchet");
  input.insert(input.end(), state_.begin(), state_.end());
  state_ = Sha256::Digest(input);
}

Bytes Drbg::Generate(size_t len) {
  Bytes out;
  out.reserve(len);
  while (out.size() < len) {
    Bytes block_input = state_;
    PutUint64(&block_input, counter_++);
    Bytes block = Sha256::Digest(block_input);
    size_t take = len - out.size();
    if (take > block.size()) {
      take = block.size();
    }
    out.insert(out.end(), block.begin(), block.begin() + take);
  }
  Ratchet();
  return out;
}

void Drbg::Reseed(const Bytes& entropy) {
  Bytes input = BytesOf("flicker-drbg-reseed");
  input.insert(input.end(), state_.begin(), state_.end());
  input.insert(input.end(), entropy.begin(), entropy.end());
  state_ = Sha256::Digest(input);
}

uint64_t Drbg::UniformUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound below 2^64.
  uint64_t limit = bound == 1 ? 0 : (~0ULL - (~0ULL % bound) - 1);
  for (;;) {
    Bytes b = Generate(8);
    uint64_t v = GetUint64(b, 0);
    if (bound == 1) {
      return 0;
    }
    if (v <= limit) {
      return v % bound;
    }
  }
}

}  // namespace flicker
