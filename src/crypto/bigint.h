// Arbitrary-precision unsigned integers, implemented from scratch.
//
// This is the multi-precision library the paper's Crypto PAL module lists
// (Fig. 6): it backs RSA key generation, PKCS#1 operations, and the TPM's
// 2048-bit storage/identity keys. Values are unsigned; subtraction below
// zero is a programming error and asserts.

#ifndef FLICKER_SRC_CRYPTO_BIGINT_H_
#define FLICKER_SRC_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace flicker {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t value);

  // Big-endian byte-string conversions (the TPM wire format for RSA values).
  static BigInt FromBytesBe(const Bytes& bytes);
  // Serializes big-endian, left-padded with zeros to at least `min_len`.
  Bytes ToBytesBe(size_t min_len = 0) const;

  static BigInt FromHex(std::string_view hex);
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1) != 0; }
  // Number of significant bits; 0 for zero.
  size_t BitLength() const;
  bool GetBit(size_t index) const;
  uint64_t ToUint64() const;  // Truncates to the low 64 bits.

  // Returns <0, 0, >0 like memcmp.
  static int Compare(const BigInt& a, const BigInt& b);

  friend bool operator==(const BigInt& a, const BigInt& b) { return Compare(a, b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return Compare(a, b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) { return Compare(a, b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return Compare(a, b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) { return Compare(a, b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return Compare(a, b) >= 0; }

  BigInt operator+(const BigInt& other) const;
  // Requires *this >= other.
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;
  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  // Computes quotient and remainder simultaneously (Knuth Algorithm D).
  // `divisor` must be nonzero; either output pointer may be null.
  static void DivMod(const BigInt& dividend, const BigInt& divisor, BigInt* quotient,
                     BigInt* remainder);

  // (base ^ exponent) mod modulus. Odd moduli > 1 run on the Montgomery
  // engine (MontgomeryContext); even moduli fall back to the generic
  // square-and-multiply path. A zero modulus yields zero (use ModExpChecked
  // where callers can surface the error).
  static BigInt ModExp(const BigInt& base, const BigInt& exponent, const BigInt& modulus);

  // Same, but reports a zero modulus as kInvalidArgument instead of
  // asserting or folding it into a sentinel value.
  static Result<BigInt> ModExpChecked(const BigInt& base, const BigInt& exponent,
                                      const BigInt& modulus);

  // The plain square-and-multiply implementation, one DivMod per exponent
  // bit. Retained as the even-modulus path and as the oracle the
  // differential tests compare the Montgomery engine against.
  static BigInt ModExpReference(const BigInt& base, const BigInt& exponent,
                                const BigInt& modulus);

  // Multiplicative inverse of a mod m; returns zero if gcd(a, m) != 1.
  static BigInt ModInverse(const BigInt& a, const BigInt& m);

  static BigInt Gcd(const BigInt& a, const BigInt& b);

 private:
  friend class MontgomeryContext;  // Operates on the raw limb vector.

  void Normalize();

  // Little-endian 64-bit limbs (128-bit intermediates); empty means zero.
  std::vector<uint64_t> limbs_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_BIGINT_H_
