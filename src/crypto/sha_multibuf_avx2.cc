// 8-lane AVX2 instantiation of the multi-buffer SHA kernels. This TU is
// compiled with -mavx2 (see CMakeLists.txt); the dispatcher in
// sha_multibuf.cc only calls into it after __builtin_cpu_supports("avx2"),
// so no other TU may reference these symbols directly.

#if defined(__x86_64__) && !defined(FLICKER_SIMD_DISABLED)

#include <immintrin.h>

#include "src/crypto/sha_multibuf_kernel.h"

namespace flicker {
namespace multibuf_internal {

struct Vec256 {
  static constexpr int kLanes = 8;
  __m256i v;

  static Vec256 Load(const uint32_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void Store(uint32_t* p, const Vec256& a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
  }
  static Vec256 Set1(uint32_t x) { return {_mm256_set1_epi32(static_cast<int>(x))}; }
};

inline Vec256 Add(const Vec256& a, const Vec256& b) { return {_mm256_add_epi32(a.v, b.v)}; }
inline Vec256 Xor(const Vec256& a, const Vec256& b) { return {_mm256_xor_si256(a.v, b.v)}; }
inline Vec256 And(const Vec256& a, const Vec256& b) { return {_mm256_and_si256(a.v, b.v)}; }
inline Vec256 Or(const Vec256& a, const Vec256& b) { return {_mm256_or_si256(a.v, b.v)}; }
inline Vec256 AndNot(const Vec256& a, const Vec256& b) {
  return {_mm256_andnot_si256(a.v, b.v)};
}
template <int N>
inline Vec256 Rotl(const Vec256& a) {
  return {_mm256_or_si256(_mm256_slli_epi32(a.v, N), _mm256_srli_epi32(a.v, 32 - N))};
}
inline Vec256 Shr(const Vec256& a, int n) { return {_mm256_srli_epi32(a.v, n)}; }

void Sha1CompressAvx2(uint32_t* state, const uint32_t* blocks) {
  Sha1CompressLanes<Vec256>(state, blocks);
}

void Sha256CompressAvx2(uint32_t* state, const uint32_t* blocks) {
  Sha256CompressLanes<Vec256>(state, blocks);
}

}  // namespace multibuf_internal
}  // namespace flicker

#endif  // __x86_64__ && !FLICKER_SIMD_DISABLED
