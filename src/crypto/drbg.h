// Deterministic random bit generator: a SHA-256 counter construction in the
// style of Hash_DRBG (SP 800-90A, simplified).
//
// The TPM's GetRandom and RSA key generation draw from an instance of this.
// Determinism given a seed is a feature for the simulator: tests and
// benchmarks reproduce bit-exact runs.

#ifndef FLICKER_SRC_CRYPTO_DRBG_H_
#define FLICKER_SRC_CRYPTO_DRBG_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace flicker {

class Drbg {
 public:
  // Seeds from arbitrary entropy input (hashed into the state).
  explicit Drbg(const Bytes& seed);
  explicit Drbg(uint64_t seed);

  // Generates `len` pseudorandom bytes and ratchets the state forward.
  Bytes Generate(size_t len);

  // Mixes additional entropy into the state.
  void Reseed(const Bytes& entropy);

  // Uniform value in [0, bound) via rejection sampling; bound must be > 0.
  uint64_t UniformUint64(uint64_t bound);

 private:
  void Ratchet();

  Bytes state_;      // 32-byte working state V.
  uint64_t counter_; // Monotonic block counter.
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_DRBG_H_
