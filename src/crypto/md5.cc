#include "src/crypto/md5.h"

#include <cmath>
#include <cstring>

namespace flicker {

namespace {

inline uint32_t Rotl(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

// T[i] = floor(2^32 * |sin(i + 1)|), the RFC 1321 defining formula. Double
// precision carries 53 mantissa bits, comfortably exact for 32 significant
// bits of a value in [0, 1).
struct Md5Tables {
  uint32_t t[64];
  Md5Tables() {
    for (int i = 0; i < 64; ++i) {
      t[i] = static_cast<uint32_t>(std::floor(std::fabs(std::sin(i + 1.0)) * 4294967296.0));
    }
  }
};

const Md5Tables& Tables() {
  static const Md5Tables tables;
  return tables;
}

constexpr int kShifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

}  // namespace

void Md5::Reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Md5::ProcessBlock(const uint8_t* block) {
  const Md5Tables& tables = Tables();
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[i * 4]) | (static_cast<uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 3]) << 24);
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];

  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t tmp = d;
    d = c;
    c = b;
    b = b + Rotl(a + f + tables.t[i] + m[g], kShifts[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t take = kBlockSize - buffer_len_;
    if (take > len) {
      take = len;
    }
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= kBlockSize) {
    ProcessBlock(p);
    p += kBlockSize;
    len -= kBlockSize;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Bytes Md5::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  // MD5 length is little-endian, unlike the SHA family.
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  Update(len_bytes, 8);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 4; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i]);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i] >> 24);
  }
  Reset();  // Finish leaves the object ready for the next message.
  return digest;
}

Bytes Md5::Digest(const void* data, size_t len) {
  Md5 h;
  h.Update(data, len);
  return h.Finish();
}

Bytes Md5::Digest(const Bytes& data) {
  return Digest(data.data(), data.size());
}

}  // namespace flicker
