#include "src/crypto/bigint.h"

#include <cassert>
#include <cstring>

#include "src/crypto/montgomery.h"

namespace flicker {

namespace {

using uint128 = unsigned __int128;

}  // namespace

BigInt::BigInt(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(value);
  }
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigInt BigInt::FromBytesBe(const Bytes& bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes[i] is the (size-1-i)-th byte from the least-significant end.
    size_t pos = bytes.size() - 1 - i;
    out.limbs_[pos / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (pos % 8));
  }
  out.Normalize();
  return out;
}

Bytes BigInt::ToBytesBe(size_t min_len) const {
  size_t bytes_needed = (BitLength() + 7) / 8;
  size_t len = bytes_needed > min_len ? bytes_needed : min_len;
  Bytes out(len, 0);
  for (size_t i = 0; i < bytes_needed; ++i) {
    uint64_t limb = limbs_[i / 8];
    out[len - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 8)));
  }
  return out;
}

BigInt BigInt::FromHex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) {
    padded.insert(padded.begin(), '0');
  }
  bool ok = false;
  Bytes bytes = flicker::FromHex(padded, &ok);
  assert(ok && "BigInt::FromHex: malformed hex");
  return FromBytesBe(bytes);
}

std::string BigInt::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  std::string out = flicker::ToHex(ToBytesBe());
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::GetBit(size_t index) const {
  size_t limb = index / 64;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (index % 64)) & 1;
}

uint64_t BigInt::ToUint64() const {
  return limbs_.empty() ? 0 : limbs_[0];
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  size_t n = limbs_.size() > other.limbs_.size() ? limbs_.size() : other.limbs_.size();
  out.limbs_.assign(n + 1, 0);
  uint128 carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint128 sum = carry;
    if (i < limbs_.size()) {
      sum += limbs_[i];
    }
    if (i < other.limbs_.size()) {
      sum += other.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  out.limbs_[n] = static_cast<uint64_t>(carry);
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
  assert(Compare(*this, other) >= 0 && "BigInt subtraction underflow");
  BigInt out;
  out.limbs_.assign(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t subtrahend = i < other.limbs_.size() ? other.limbs_[i] : 0;
    uint64_t a = limbs_[i];
    uint64_t diff = a - subtrahend - borrow;
    // Borrow occurred iff a < subtrahend + borrow (computed without overflow).
    borrow = (a < subtrahend || (a == subtrahend && borrow)) ? 1 : 0;
    out.limbs_[i] = diff;
  }
  assert(borrow == 0);
  out.Normalize();
  return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (IsZero() || other.IsZero()) {
    return BigInt();
  }
  BigInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint128 carry = 0;
    uint128 a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint128 cur = static_cast<uint128>(out.limbs_[i + j]) + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      uint128 cur = static_cast<uint128>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) {
    return BigInt();
  }
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  out.Normalize();
  return out;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor, BigInt* quotient,
                    BigInt* remainder) {
  assert(!divisor.IsZero() && "BigInt division by zero");
  if (Compare(dividend, divisor) < 0) {
    if (quotient != nullptr) {
      *quotient = BigInt();
    }
    if (remainder != nullptr) {
      *remainder = dividend;
    }
    return;
  }

  // Single-limb divisor fast path.
  if (divisor.limbs_.size() == 1) {
    uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    uint128 rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      uint128 cur = (rem << 64) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    if (quotient != nullptr) {
      *quotient = q;
    }
    if (remainder != nullptr) {
      *remainder = BigInt(static_cast<uint64_t>(rem));
    }
    return;
  }

  // Knuth Algorithm D with 64-bit digits. Normalize so the divisor's top
  // limb has its high bit set.
  size_t shift = 0;
  uint64_t top = divisor.limbs_.back();
  while ((top & (1ULL << 63)) == 0) {
    top <<= 1;
    ++shift;
  }
  BigInt u = dividend << shift;
  BigInt v = divisor << shift;
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // Extra high limb u_{m+n}.

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  const uint64_t v_top = v.limbs_[n - 1];
  const uint64_t v_second = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    uint128 numerator = (static_cast<uint128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    uint128 qhat = numerator / v_top;
    uint128 rhat = numerator % v_top;
    const uint128 base = static_cast<uint128>(1) << 64;
    if (qhat >= base) {
      qhat = base - 1;
      rhat = numerator - qhat * v_top;
    }
    while (rhat < base &&
           qhat * v_second > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_top;
    }

    // u[j .. j+n] -= qhat * v.
    uint64_t borrow = 0;
    uint128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128 product = qhat * v.limbs_[i] + carry;
      carry = product >> 64;
      uint64_t sub = static_cast<uint64_t>(product);
      uint64_t a = u.limbs_[i + j];
      uint64_t diff = a - sub - borrow;
      borrow = (a < sub || (a == sub && borrow)) ? 1 : 0;
      u.limbs_[i + j] = diff;
    }
    uint64_t carry_limb = static_cast<uint64_t>(carry);
    uint64_t a = u.limbs_[j + n];
    uint64_t diff = a - carry_limb - borrow;
    bool negative = (a < carry_limb || (a == carry_limb && borrow));
    u.limbs_[j + n] = diff;

    if (negative) {
      // qhat was one too large; add v back.
      --qhat;
      uint128 add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint128 sum = static_cast<uint128>(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<uint64_t>(sum);
        add_carry = sum >> 64;
      }
      u.limbs_[j + n] = static_cast<uint64_t>(u.limbs_[j + n] + static_cast<uint64_t>(add_carry));
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }

  q.Normalize();
  if (quotient != nullptr) {
    *quotient = q;
  }
  if (remainder != nullptr) {
    u.limbs_.resize(n);
    u.Normalize();
    *remainder = u >> shift;
  }
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q;
  DivMod(*this, other, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt r;
  DivMod(*this, other, nullptr, &r);
  return r;
}

BigInt BigInt::ModExpReference(const BigInt& base, const BigInt& exponent,
                               const BigInt& modulus) {
  if (modulus.IsZero() || modulus == BigInt(1)) {
    return BigInt();
  }
  BigInt result(1);
  BigInt b = base % modulus;
  size_t bits = exponent.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = (result * result) % modulus;
    if (exponent.GetBit(i)) {
      result = (result * b) % modulus;
    }
  }
  return result;
}

Result<BigInt> BigInt::ModExpChecked(const BigInt& base, const BigInt& exponent,
                                     const BigInt& modulus) {
  if (modulus.IsZero()) {
    return InvalidArgumentError("ModExp: modulus must be nonzero");
  }
  if (modulus == BigInt(1)) {
    return BigInt();
  }
  if (modulus.IsOdd()) {
    Result<MontgomeryContext> ctx = MontgomeryContext::Create(modulus);
    if (ctx.ok()) {
      return ctx.value().ModExp(base, exponent);
    }
  }
  return ModExpReference(base, exponent, modulus);
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exponent, const BigInt& modulus) {
  Result<BigInt> result = ModExpChecked(base, exponent, modulus);
  if (!result.ok()) {
    return BigInt();
  }
  return result.take();
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a;
  BigInt y = b;
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

BigInt BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking only the coefficient of `a`, with signs managed
  // explicitly since BigInt is unsigned.
  BigInt r0 = m;
  BigInt r1 = a % m;
  BigInt t0;     // Coefficient for r0.
  BigInt t1(1);  // Coefficient for r1.
  bool t0_neg = false;
  bool t1_neg = false;

  while (!r1.IsZero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 % r1;

    // t2 = t0 - q * t1 with sign handling.
    BigInt qt = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (Compare(t0, qt) >= 0) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }

    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }

  if (r0 != BigInt(1)) {
    return BigInt();  // Not invertible.
  }
  if (t0_neg) {
    return m - (t0 % m);
  }
  return t0 % m;
}

}  // namespace flicker
