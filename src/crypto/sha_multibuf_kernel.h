// Width-generic multi-buffer SHA-1/SHA-256 compression kernels.
//
// The multi-buffer engine lays W independent hash states out "vertically":
// vector element j of every working variable belongs to lane j, so one
// vector instruction advances W compressions at once. This header holds the
// round logic, templated over a vector trait type V; each translation unit
// instantiates it for its ISA:
//
//   sha_multibuf.cc       ScalarVec<4>  (plain arrays; the bit-exact fallback,
//                                        also what -DFLICKER_SIMD=OFF uses)
//   sha_multibuf_sse2.cc  __m128i       (4 lanes, baseline x86-64)
//   sha_multibuf_avx2.cc  __m256i       (8 lanes, runtime-dispatched)
//
// A trait type V must provide:
//   V::kLanes                       lane count
//   V::Load(const uint32_t* p)      load kLanes consecutive u32
//   V::Store(uint32_t* p, v)        inverse of Load
//   Add(a, b), Xor(a, b), And(a, b), Or(a, b), AndNot(a, b)  (~a & b)
//   Rotl<n>(a), Set1(x)
//
// Blocks enter pre-byteswapped: the caller gathers word t of each lane's
// 64-byte block into blocks[t * kLanes + lane], already big-endian decoded,
// so the kernel itself is ISA-agnostic and endian-free.

#ifndef FLICKER_SRC_CRYPTO_SHA_MULTIBUF_KERNEL_H_
#define FLICKER_SRC_CRYPTO_SHA_MULTIBUF_KERNEL_H_

#include <cstdint>

namespace flicker {
namespace multibuf_internal {

// Plain-array vector: the compiler is free to vectorize the per-element
// loops, but correctness never depends on it. This is the scalar oracle.
template <int W>
struct ScalarVec {
  static constexpr int kLanes = W;
  uint32_t v[W];

  static ScalarVec Load(const uint32_t* p) {
    ScalarVec out;
    for (int i = 0; i < W; ++i) {
      out.v[i] = p[i];
    }
    return out;
  }
  static void Store(uint32_t* p, const ScalarVec& a) {
    for (int i = 0; i < W; ++i) {
      p[i] = a.v[i];
    }
  }
  static ScalarVec Set1(uint32_t x) {
    ScalarVec out;
    for (int i = 0; i < W; ++i) {
      out.v[i] = x;
    }
    return out;
  }
};

template <int W>
inline ScalarVec<W> Add(const ScalarVec<W>& a, const ScalarVec<W>& b) {
  ScalarVec<W> out;
  for (int i = 0; i < W; ++i) {
    out.v[i] = a.v[i] + b.v[i];
  }
  return out;
}
template <int W>
inline ScalarVec<W> Xor(const ScalarVec<W>& a, const ScalarVec<W>& b) {
  ScalarVec<W> out;
  for (int i = 0; i < W; ++i) {
    out.v[i] = a.v[i] ^ b.v[i];
  }
  return out;
}
template <int W>
inline ScalarVec<W> And(const ScalarVec<W>& a, const ScalarVec<W>& b) {
  ScalarVec<W> out;
  for (int i = 0; i < W; ++i) {
    out.v[i] = a.v[i] & b.v[i];
  }
  return out;
}
template <int W>
inline ScalarVec<W> Or(const ScalarVec<W>& a, const ScalarVec<W>& b) {
  ScalarVec<W> out;
  for (int i = 0; i < W; ++i) {
    out.v[i] = a.v[i] | b.v[i];
  }
  return out;
}
template <int W>
inline ScalarVec<W> AndNot(const ScalarVec<W>& a, const ScalarVec<W>& b) {
  ScalarVec<W> out;
  for (int i = 0; i < W; ++i) {
    out.v[i] = ~a.v[i] & b.v[i];
  }
  return out;
}
template <int N, int W>
inline ScalarVec<W> Rotl(const ScalarVec<W>& a) {
  ScalarVec<W> out;
  for (int i = 0; i < W; ++i) {
    out.v[i] = (a.v[i] << N) | (a.v[i] >> (32 - N));
  }
  return out;
}
template <int W>
inline ScalarVec<W> Shr(const ScalarVec<W>& a, int n) {
  ScalarVec<W> out;
  for (int i = 0; i < W; ++i) {
    out.v[i] = a.v[i] >> n;
  }
  return out;
}

// ---- SHA-1: W lanes, one 64-byte block each ------------------------------
//
// `state` is 5 * kLanes words, state[r * kLanes + lane]; `blocks` is
// 16 * kLanes pre-byteswapped message words in the same layout.
template <typename V>
inline void Sha1CompressLanes(uint32_t* state, const uint32_t* blocks) {
  constexpr int W = V::kLanes;
  V w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = V::Load(blocks + t * W);
  }

  V a = V::Load(state + 0 * W);
  V b = V::Load(state + 1 * W);
  V c = V::Load(state + 2 * W);
  V d = V::Load(state + 3 * W);
  V e = V::Load(state + 4 * W);

  const V k0 = V::Set1(0x5a827999);
  const V k1 = V::Set1(0x6ed9eba1);
  const V k2 = V::Set1(0x8f1bbcdc);
  const V k3 = V::Set1(0xca62c1d6);

  for (int t = 0; t < 80; ++t) {
    V wt;
    if (t < 16) {
      wt = w[t & 15];
    } else {
      wt = Rotl<1>(Xor(Xor(w[(t - 3) & 15], w[(t - 8) & 15]),
                       Xor(w[(t - 14) & 15], w[(t - 16) & 15])));
      w[t & 15] = wt;
    }
    V f;
    V k;
    if (t < 20) {
      f = Or(And(b, c), AndNot(b, d));
      k = k0;
    } else if (t < 40) {
      f = Xor(Xor(b, c), d);
      k = k1;
    } else if (t < 60) {
      f = Or(Or(And(b, c), And(b, d)), And(c, d));
      k = k2;
    } else {
      f = Xor(Xor(b, c), d);
      k = k3;
    }
    V tmp = Add(Add(Add(Rotl<5>(a), f), Add(e, k)), wt);
    e = d;
    d = c;
    c = Rotl<30>(b);
    b = a;
    a = tmp;
  }

  V::Store(state + 0 * W, Add(a, V::Load(state + 0 * W)));
  V::Store(state + 1 * W, Add(b, V::Load(state + 1 * W)));
  V::Store(state + 2 * W, Add(c, V::Load(state + 2 * W)));
  V::Store(state + 3 * W, Add(d, V::Load(state + 3 * W)));
  V::Store(state + 4 * W, Add(e, V::Load(state + 4 * W)));
}

inline constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

// ---- SHA-256: W lanes, one 64-byte block each ----------------------------
//
// Same layout as SHA-1 with 8 state rows.
template <typename V>
inline void Sha256CompressLanes(uint32_t* state, const uint32_t* blocks) {
  constexpr int W = V::kLanes;
  V w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = V::Load(blocks + t * W);
  }

  V a = V::Load(state + 0 * W);
  V b = V::Load(state + 1 * W);
  V c = V::Load(state + 2 * W);
  V d = V::Load(state + 3 * W);
  V e = V::Load(state + 4 * W);
  V f = V::Load(state + 5 * W);
  V g = V::Load(state + 6 * W);
  V h = V::Load(state + 7 * W);

  for (int t = 0; t < 64; ++t) {
    V wt;
    if (t < 16) {
      wt = w[t & 15];
    } else {
      V w15 = w[(t - 15) & 15];
      V w2 = w[(t - 2) & 15];
      V s0 = Xor(Xor(Rotl<25>(w15), Rotl<14>(w15)), Shr(w15, 3));
      V s1 = Xor(Xor(Rotl<15>(w2), Rotl<13>(w2)), Shr(w2, 10));
      wt = Add(Add(w[(t - 16) & 15], s0), Add(w[(t - 7) & 15], s1));
      w[t & 15] = wt;
    }
    V s1 = Xor(Xor(Rotl<26>(e), Rotl<21>(e)), Rotl<7>(e));
    V ch = Xor(And(e, f), AndNot(e, g));
    V temp1 = Add(Add(h, s1), Add(Add(ch, V::Set1(kSha256K[t])), wt));
    V s0 = Xor(Xor(Rotl<30>(a), Rotl<19>(a)), Rotl<10>(a));
    V maj = Xor(Xor(And(a, b), And(a, c)), And(b, c));
    V temp2 = Add(s0, maj);
    h = g;
    g = f;
    f = e;
    e = Add(d, temp1);
    d = c;
    c = b;
    b = a;
    a = Add(temp1, temp2);
  }

  V::Store(state + 0 * W, Add(a, V::Load(state + 0 * W)));
  V::Store(state + 1 * W, Add(b, V::Load(state + 1 * W)));
  V::Store(state + 2 * W, Add(c, V::Load(state + 2 * W)));
  V::Store(state + 3 * W, Add(d, V::Load(state + 3 * W)));
  V::Store(state + 4 * W, Add(e, V::Load(state + 4 * W)));
  V::Store(state + 5 * W, Add(f, V::Load(state + 5 * W)));
  V::Store(state + 6 * W, Add(g, V::Load(state + 6 * W)));
  V::Store(state + 7 * W, Add(h, V::Load(state + 7 * W)));
}

}  // namespace multibuf_internal
}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_SHA_MULTIBUF_KERNEL_H_
