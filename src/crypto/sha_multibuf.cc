#include "src/crypto/sha_multibuf.h"

#include <algorithm>
#include <cstring>

#include "src/crypto/sha_multibuf_kernel.h"

namespace flicker {

namespace multibuf_internal {

// ISA kernels, each in its own translation unit so it can be compiled with
// the matching -m flags (see src/crypto/CMakeLists.txt). On non-x86-64
// builds, or with -DFLICKER_SIMD=OFF, the TUs are empty and the extern
// symbols below are never referenced.
#if defined(__x86_64__) && !defined(FLICKER_SIMD_DISABLED)
void Sha1CompressSse2(uint32_t* state, const uint32_t* blocks);
void Sha256CompressSse2(uint32_t* state, const uint32_t* blocks);
void Sha1CompressAvx2(uint32_t* state, const uint32_t* blocks);
void Sha256CompressAvx2(uint32_t* state, const uint32_t* blocks);
#endif

}  // namespace multibuf_internal

namespace {

using multibuf_internal::ScalarVec;

constexpr int kMaxLanes = 8;

constexpr uint32_t kSha1Iv[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0};
constexpr uint32_t kSha256Iv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

void Sha1CompressScalar(uint32_t* state, const uint32_t* blocks) {
  multibuf_internal::Sha1CompressLanes<ScalarVec<4>>(state, blocks);
}
void Sha256CompressScalar(uint32_t* state, const uint32_t* blocks) {
  multibuf_internal::Sha256CompressLanes<ScalarVec<4>>(state, blocks);
}

using CompressFn = void (*)(uint32_t*, const uint32_t*);

struct Engine {
  const char* name;
  int lanes;
  CompressFn sha1;
  CompressFn sha256;
};

constexpr Engine kScalarEngine = {"scalar", 4, &Sha1CompressScalar, &Sha256CompressScalar};

const Engine& HostEngine() {
#if defined(__x86_64__) && !defined(FLICKER_SIMD_DISABLED)
  static const Engine engine = [] {
    if (__builtin_cpu_supports("avx2")) {
      return Engine{"avx2", 8, &multibuf_internal::Sha1CompressAvx2,
                    &multibuf_internal::Sha256CompressAvx2};
    }
    return Engine{"sse2", 4, &multibuf_internal::Sha1CompressSse2,
                  &multibuf_internal::Sha256CompressSse2};
  }();
  return engine;
#else
  return kScalarEngine;
#endif
}

bool g_force_scalar = false;

const Engine& ActiveEngine() { return g_force_scalar ? kScalarEngine : HostEngine(); }

inline uint32_t LoadBe32(const uint8_t* p) {
  uint32_t raw;
  std::memcpy(&raw, p, 4);
  return __builtin_bswap32(raw);
}

// Writes the 16 big-endian-decoded words of padded block `t` of (data, len)
// into column `lane` of the W-wide transposed word matrix. `nblocks` is the
// message's total padded block count.
void GatherBlockColumn(const uint8_t* data, size_t len, uint64_t t, uint64_t nblocks, int lane,
                       int width, uint32_t* words) {
  const uint64_t offset = t * 64;
  if (offset + 64 <= len) {
    // Pure data block: the common case on long messages.
    const uint8_t* p = data + offset;
    for (int w = 0; w < 16; ++w) {
      words[w * width + lane] = LoadBe32(p + 4 * w);
    }
    return;
  }
  // Tail: remaining data, the 0x80 marker, zero fill, and (in the final
  // block) the 64-bit big-endian message bit length.
  uint8_t block[64];
  std::memset(block, 0, sizeof(block));
  if (offset < len) {
    std::memcpy(block, data + offset, len - offset);
  }
  if (len >= offset && len - offset < 64) {
    block[len - offset] = 0x80;
  }
  if (t == nblocks - 1) {
    const uint64_t bit_len = static_cast<uint64_t>(len) * 8;
    for (int i = 0; i < 8; ++i) {
      block[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    }
  }
  for (int w = 0; w < 16; ++w) {
    words[w * width + lane] = LoadBe32(block + 4 * w);
  }
}

// The lane scheduler shared by SHA-1 (rows = 5) and SHA-256 (rows = 8).
// Messages are assigned to lanes in groups of `width`; within a group every
// compression step advances all lanes, and a lane whose message ends early
// has its digest snapshotted right after its final block (later steps feed
// it zero blocks whose output is discarded), so ragged lengths cost only the
// wasted lanes of the longest message's tail steps.
std::vector<Bytes> DigestManyImpl(const std::vector<Bytes>& messages, int rows,
                                  const uint32_t* iv, CompressFn compress, int width) {
  std::vector<Bytes> digests(messages.size());
  uint32_t state[8 * kMaxLanes];
  uint32_t words[16 * kMaxLanes];
  uint64_t nblocks[kMaxLanes];

  for (size_t group = 0; group < messages.size(); group += static_cast<size_t>(width)) {
    const int lanes = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(width), messages.size() - group));
    uint64_t max_blocks = 0;
    for (int lane = 0; lane < lanes; ++lane) {
      const size_t len = messages[group + lane].size();
      nblocks[lane] = (static_cast<uint64_t>(len) + 9 + 63) / 64;
      max_blocks = std::max(max_blocks, nblocks[lane]);
      for (int r = 0; r < rows; ++r) {
        state[r * width + lane] = iv[r];
      }
    }
    for (uint64_t t = 0; t < max_blocks; ++t) {
      std::memset(words, 0, sizeof(uint32_t) * 16 * static_cast<size_t>(width));
      for (int lane = 0; lane < lanes; ++lane) {
        if (t < nblocks[lane]) {
          const Bytes& msg = messages[group + lane];
          GatherBlockColumn(msg.data(), msg.size(), t, nblocks[lane], lane, width, words);
        }
      }
      compress(state, words);
      for (int lane = 0; lane < lanes; ++lane) {
        if (t + 1 == nblocks[lane]) {
          Bytes& digest = digests[group + lane];
          digest.resize(static_cast<size_t>(rows) * 4);
          for (int r = 0; r < rows; ++r) {
            const uint32_t word = state[r * width + lane];
            digest[static_cast<size_t>(r) * 4] = static_cast<uint8_t>(word >> 24);
            digest[static_cast<size_t>(r) * 4 + 1] = static_cast<uint8_t>(word >> 16);
            digest[static_cast<size_t>(r) * 4 + 2] = static_cast<uint8_t>(word >> 8);
            digest[static_cast<size_t>(r) * 4 + 3] = static_cast<uint8_t>(word);
          }
        }
      }
    }
  }
  return digests;
}

}  // namespace

std::vector<Bytes> Sha1DigestMany(const std::vector<Bytes>& messages) {
  const Engine& engine = ActiveEngine();
  return DigestManyImpl(messages, 5, kSha1Iv, engine.sha1, engine.lanes);
}

std::vector<Bytes> Sha256DigestMany(const std::vector<Bytes>& messages) {
  const Engine& engine = ActiveEngine();
  return DigestManyImpl(messages, 8, kSha256Iv, engine.sha256, engine.lanes);
}

int ShaMultiBufLanes() { return ActiveEngine().lanes; }

const char* ShaMultiBufEngine() { return ActiveEngine().name; }

bool ShaMultiBufForceScalar(bool force) {
  bool previous = g_force_scalar;
  g_force_scalar = force;
  return previous;
}

}  // namespace flicker
