#include "src/crypto/merkle.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/crypto/sha1.h"
#include "src/crypto/sha_multibuf.h"

namespace flicker {

namespace {

constexpr uint8_t kLeafPrefix = 0x00;
constexpr uint8_t kInteriorPrefix = 0x01;
constexpr size_t kDigestSize = Sha1::kDigestSize;

}  // namespace

Bytes MerkleTree::LeafDigest(const Bytes& nonce) {
  Bytes message;
  message.reserve(1 + nonce.size());
  message.push_back(kLeafPrefix);
  message.insert(message.end(), nonce.begin(), nonce.end());
  return Sha1::Digest(message);
}

Bytes MerkleTree::InteriorDigest(const Bytes& left, const Bytes& right) {
  Bytes message;
  message.reserve(1 + left.size() + right.size());
  message.push_back(kInteriorPrefix);
  message.insert(message.end(), left.begin(), left.end());
  message.insert(message.end(), right.begin(), right.end());
  return Sha1::Digest(message);
}

Result<MerkleTree> MerkleTree::Build(const std::vector<Bytes>& nonces) {
  if (nonces.empty()) {
    return InvalidArgumentError("cannot build a Merkle tree over zero nonces");
  }
  std::vector<Bytes> messages;
  messages.reserve(nonces.size());
  for (const Bytes& nonce : nonces) {
    Bytes m;
    m.reserve(1 + nonce.size());
    m.push_back(kLeafPrefix);
    m.insert(m.end(), nonce.begin(), nonce.end());
    messages.push_back(std::move(m));
  }
  std::vector<Bytes> leaves = Sha1DigestMany(messages);

  // Sort leaves by digest (ties by original index keep the order stable) so
  // the root does not depend on challenge arrival order.
  std::vector<size_t> order(leaves.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int cmp = std::memcmp(leaves[a].data(), leaves[b].data(), kDigestSize);
    if (cmp != 0) {
      return cmp < 0;
    }
    return a < b;
  });

  MerkleTree tree;
  tree.slot_.resize(order.size());
  std::vector<Bytes> sorted(order.size());
  for (size_t slot = 0; slot < order.size(); ++slot) {
    sorted[slot] = leaves[order[slot]];
    tree.slot_[order[slot]] = slot;
  }
  tree.levels_.push_back(std::move(sorted));

  while (tree.levels_.back().size() > 1) {
    const std::vector<Bytes>& level = tree.levels_.back();
    std::vector<Bytes> pair_messages;
    pair_messages.reserve(level.size() / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      Bytes m;
      m.reserve(1 + 2 * kDigestSize);
      m.push_back(kInteriorPrefix);
      m.insert(m.end(), level[i].begin(), level[i].end());
      m.insert(m.end(), level[i + 1].begin(), level[i + 1].end());
      pair_messages.push_back(std::move(m));
    }
    std::vector<Bytes> next = Sha1DigestMany(pair_messages);
    if (level.size() % 2 != 0) {
      next.push_back(level.back());  // Odd node: promote unchanged.
    }
    tree.levels_.push_back(std::move(next));
  }
  return tree;
}

MerkleAuthPath MerkleTree::PathFor(size_t index) const {
  MerkleAuthPath path;
  size_t pos = slot_.at(index);
  for (size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const std::vector<Bytes>& level = levels_[depth];
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      MerkleStep step;
      step.sibling = level[sibling];
      step.sibling_is_left = sibling < pos;
      path.steps.push_back(std::move(step));
    }
    // A promoted odd node contributes no step at this level.
    pos /= 2;
  }
  return path;
}

Bytes MerkleTree::RootFromPath(const Bytes& nonce, const MerkleAuthPath& path) {
  Bytes node = LeafDigest(nonce);
  for (const MerkleStep& step : path.steps) {
    node = step.sibling_is_left ? InteriorDigest(step.sibling, node)
                                : InteriorDigest(node, step.sibling);
  }
  return node;
}

Bytes MerkleAuthPath::Serialize() const {
  Bytes out;
  PutUint32(&out, static_cast<uint32_t>(steps.size()));
  for (const MerkleStep& step : steps) {
    out.push_back(step.sibling_is_left ? 1 : 0);
    out.insert(out.end(), step.sibling.begin(), step.sibling.end());
  }
  return out;
}

Result<MerkleAuthPath> MerkleAuthPath::Deserialize(const Bytes& data) {
  if (data.size() < 4) {
    return InvalidArgumentError("auth path truncated before step count");
  }
  size_t count = GetUint32(data, 0);
  if (count > kMaxMerklePathSteps) {
    return InvalidArgumentError("auth path implausibly deep");
  }
  if (data.size() != 4 + count * (1 + kDigestSize)) {
    return InvalidArgumentError("auth path length does not match step count");
  }
  MerkleAuthPath path;
  path.steps.reserve(count);
  size_t offset = 4;
  for (size_t i = 0; i < count; ++i) {
    uint8_t side = data[offset];
    if (side > 1) {
      return InvalidArgumentError("auth path side byte invalid");
    }
    MerkleStep step;
    step.sibling_is_left = side == 1;
    step.sibling.assign(data.begin() + static_cast<long>(offset + 1),
                        data.begin() + static_cast<long>(offset + 1 + kDigestSize));
    path.steps.push_back(std::move(step));
    offset += 1 + kDigestSize;
  }
  return path;
}

}  // namespace flicker
