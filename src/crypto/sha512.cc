#include "src/crypto/sha512.h"

#include <cstring>

#include "src/crypto/bigint.h"

namespace flicker {

namespace {

inline uint64_t Rotr(uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

constexpr int kFirstPrimes[80] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131,
    137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311,
    313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409,
};

// floor(p^(1/k) * 2^64) for k in {2, 3}: the integer k-th root of p << (64*k),
// found by binary search over BigInt. Its low 64 bits are the FIPS "fractional
// part" constant because p < 2^9 keeps the integer part in the upper bits.
uint64_t FractionalRootBits(int p, int k) {
  BigInt target = BigInt(static_cast<uint64_t>(p)) << (64 * k);
  BigInt lo(0);
  BigInt hi = BigInt(1) << (64 * k / k + 10);  // Safe upper bound: 2^74.
  while (lo + BigInt(1) < hi) {
    BigInt mid = (lo + hi) >> 1;
    BigInt power = mid;
    for (int i = 1; i < k; ++i) {
      power = power * mid;
    }
    if (BigInt::Compare(power, target) <= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo.ToUint64();
}

struct Sha512Tables {
  uint64_t iv[8];
  uint64_t k[80];
  Sha512Tables() {
    for (int i = 0; i < 8; ++i) {
      iv[i] = FractionalRootBits(kFirstPrimes[i], 2);
    }
    for (int i = 0; i < 80; ++i) {
      k[i] = FractionalRootBits(kFirstPrimes[i], 3);
    }
  }
};

const Sha512Tables& Tables() {
  static const Sha512Tables tables;
  return tables;
}

}  // namespace

void Sha512::Reset() {
  const Sha512Tables& t = Tables();
  for (int i = 0; i < 8; ++i) {
    state_[i] = t.iv[i];
  }
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha512::ProcessBlock(const uint8_t* block) {
  const Sha512Tables& tables = Tables();
  uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = 0;
    for (int j = 0; j < 8; ++j) {
      w[i] = (w[i] << 8) | block[i * 8 + j];
    }
  }
  for (int i = 16; i < 80; ++i) {
    uint64_t s0 = Rotr(w[i - 15], 1) ^ Rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    uint64_t s1 = Rotr(w[i - 2], 19) ^ Rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint64_t a = state_[0];
  uint64_t b = state_[1];
  uint64_t c = state_[2];
  uint64_t d = state_[3];
  uint64_t e = state_[4];
  uint64_t f = state_[5];
  uint64_t g = state_[6];
  uint64_t h = state_[7];

  for (int i = 0; i < 80; ++i) {
    uint64_t s1 = Rotr(e, 14) ^ Rotr(e, 18) ^ Rotr(e, 41);
    uint64_t ch = (e & f) ^ (~e & g);
    uint64_t temp1 = h + s1 + ch + tables.k[i] + w[i];
    uint64_t s0 = Rotr(a, 28) ^ Rotr(a, 34) ^ Rotr(a, 39);
    uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint64_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha512::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t take = kBlockSize - buffer_len_;
    if (take > len) {
      take = len;
    }
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= kBlockSize) {
    ProcessBlock(p);
    p += kBlockSize;
    len -= kBlockSize;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Bytes Sha512::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 112) {
    Update(&zero, 1);
  }
  // The 128-bit length field: the high 64 bits are zero for any input we
  // can represent.
  uint8_t len_bytes[16] = {0};
  for (int i = 0; i < 8; ++i) {
    len_bytes[8 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 16);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      digest[i * 8 + j] = static_cast<uint8_t>(state_[i] >> (56 - 8 * j));
    }
  }
  Reset();  // Finish leaves the object ready for the next message.
  return digest;
}

Bytes Sha512::Digest(const void* data, size_t len) {
  Sha512 h;
  h.Update(data, len);
  return h.Finish();
}

Bytes Sha512::Digest(const Bytes& data) {
  return Digest(data.data(), data.size());
}

}  // namespace flicker
