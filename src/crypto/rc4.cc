#include "src/crypto/rc4.h"

#include <cassert>
#include <utility>

namespace flicker {

Rc4::Rc4(const Bytes& key) {
  assert(!key.empty() && key.size() <= 256);
  for (int i = 0; i < 256; ++i) {
    s_[i] = static_cast<uint8_t>(i);
  }
  uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

Bytes Rc4::Crypt(const Bytes& data) {
  Bytes out(data.size());
  for (size_t n = 0; n < data.size(); ++n) {
    i_ = static_cast<uint8_t>(i_ + 1);
    j_ = static_cast<uint8_t>(j_ + s_[i_]);
    std::swap(s_[i_], s_[j_]);
    uint8_t k = s_[static_cast<uint8_t>(s_[i_] + s_[j_])];
    out[n] = static_cast<uint8_t>(data[n] ^ k);
  }
  return out;
}

}  // namespace flicker
