#include "src/crypto/aes.h"

#include <cassert>
#include <cstring>

namespace flicker {

namespace {

// GF(2^8) multiply modulo the AES polynomial x^8 + x^4 + x^3 + x + 1.
uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) {
      p ^= a;
    }
    bool hi = (a & 0x80) != 0;
    a = static_cast<uint8_t>(a << 1);
    if (hi) {
      a ^= 0x1b;
    }
    b >>= 1;
  }
  return p;
}

// The S-box from its definition: multiplicative inverse in GF(2^8) followed
// by the affine transform b ^ rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63.
struct AesTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];
  AesTables() {
    // Build inverses via a log/antilog walk over the generator 3.
    uint8_t inverse[256] = {0};
    uint8_t pow_table[256];
    uint8_t value = 1;
    for (int i = 0; i < 255; ++i) {
      pow_table[i] = value;
      value = GfMul(value, 3);
    }
    uint8_t log_table[256] = {0};
    for (int i = 0; i < 255; ++i) {
      log_table[pow_table[i]] = static_cast<uint8_t>(i);
    }
    for (int i = 1; i < 256; ++i) {
      inverse[i] = pow_table[(255 - log_table[i]) % 255];
    }

    for (int i = 0; i < 256; ++i) {
      uint8_t b = inverse[i];
      uint8_t x = static_cast<uint8_t>(b ^ ((b << 1) | (b >> 7)) ^ ((b << 2) | (b >> 6)) ^
                                       ((b << 3) | (b >> 5)) ^ ((b << 4) | (b >> 4)) ^ 0x63);
      sbox[i] = x;
      inv_sbox[x] = static_cast<uint8_t>(i);
    }
  }
};

const AesTables& Tables() {
  static const AesTables tables;
  return tables;
}

uint32_t SubWord(uint32_t w) {
  const AesTables& t = Tables();
  return (static_cast<uint32_t>(t.sbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(t.sbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(t.sbox[(w >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(t.sbox[w & 0xff]);
}

uint32_t RotWord(uint32_t w) {
  return (w << 8) | (w >> 24);
}

}  // namespace

Aes::Aes(const Bytes& key) {
  assert((key.size() == 16 || key.size() == 32) && "AES key must be 128 or 256 bits");
  int nk = static_cast<int>(key.size() / 4);
  rounds_ = nk + 6;
  int total_words = 4 * (rounds_ + 1);

  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = (static_cast<uint32_t>(key[4 * i]) << 24) |
                     (static_cast<uint32_t>(key[4 * i + 1]) << 16) |
                     (static_cast<uint32_t>(key[4 * i + 2]) << 8) |
                     static_cast<uint32_t>(key[4 * i + 3]);
  }
  uint8_t rcon = 1;
  for (int i = nk; i < total_words; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^ (static_cast<uint32_t>(rcon) << 24);
      rcon = GfMul(rcon, 2);
    } else if (nk > 6 && i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes::EncryptBlock(const uint8_t* in, uint8_t* out) const {
  const AesTables& tables = Tables();
  uint8_t state[16];
  std::memcpy(state, in, 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      uint32_t w = round_keys_[round * 4 + c];
      state[4 * c] ^= static_cast<uint8_t>(w >> 24);
      state[4 * c + 1] ^= static_cast<uint8_t>(w >> 16);
      state[4 * c + 2] ^= static_cast<uint8_t>(w >> 8);
      state[4 * c + 3] ^= static_cast<uint8_t>(w);
    }
  };

  add_round_key(0);
  for (int round = 1; round <= rounds_; ++round) {
    // SubBytes.
    for (int i = 0; i < 16; ++i) {
      state[i] = tables.sbox[state[i]];
    }
    // ShiftRows: row r rotates left by r (state is column-major).
    uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[4 * c + r] = state[4 * ((c + r) % 4) + r];
      }
    }
    std::memcpy(state, t, 16);
    // MixColumns (skipped in the final round).
    if (round != rounds_) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = state + 4 * c;
        uint8_t a0 = col[0];
        uint8_t a1 = col[1];
        uint8_t a2 = col[2];
        uint8_t a3 = col[3];
        col[0] = static_cast<uint8_t>(GfMul(a0, 2) ^ GfMul(a1, 3) ^ a2 ^ a3);
        col[1] = static_cast<uint8_t>(a0 ^ GfMul(a1, 2) ^ GfMul(a2, 3) ^ a3);
        col[2] = static_cast<uint8_t>(a0 ^ a1 ^ GfMul(a2, 2) ^ GfMul(a3, 3));
        col[3] = static_cast<uint8_t>(GfMul(a0, 3) ^ a1 ^ a2 ^ GfMul(a3, 2));
      }
    }
    add_round_key(round);
  }
  std::memcpy(out, state, 16);
}

void Aes::DecryptBlock(const uint8_t* in, uint8_t* out) const {
  const AesTables& tables = Tables();
  uint8_t state[16];
  std::memcpy(state, in, 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      uint32_t w = round_keys_[round * 4 + c];
      state[4 * c] ^= static_cast<uint8_t>(w >> 24);
      state[4 * c + 1] ^= static_cast<uint8_t>(w >> 16);
      state[4 * c + 2] ^= static_cast<uint8_t>(w >> 8);
      state[4 * c + 3] ^= static_cast<uint8_t>(w);
    }
  };

  add_round_key(rounds_);
  for (int round = rounds_ - 1; round >= 0; --round) {
    // InvShiftRows: row r rotates right by r.
    uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[4 * c + r] = state[4 * ((c - r + 4) % 4) + r];
      }
    }
    std::memcpy(state, t, 16);
    // InvSubBytes.
    for (int i = 0; i < 16; ++i) {
      state[i] = tables.inv_sbox[state[i]];
    }
    add_round_key(round);
    // InvMixColumns (skipped after the last AddRoundKey).
    if (round != 0) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = state + 4 * c;
        uint8_t a0 = col[0];
        uint8_t a1 = col[1];
        uint8_t a2 = col[2];
        uint8_t a3 = col[3];
        col[0] = static_cast<uint8_t>(GfMul(a0, 14) ^ GfMul(a1, 11) ^ GfMul(a2, 13) ^ GfMul(a3, 9));
        col[1] = static_cast<uint8_t>(GfMul(a0, 9) ^ GfMul(a1, 14) ^ GfMul(a2, 11) ^ GfMul(a3, 13));
        col[2] = static_cast<uint8_t>(GfMul(a0, 13) ^ GfMul(a1, 9) ^ GfMul(a2, 14) ^ GfMul(a3, 11));
        col[3] = static_cast<uint8_t>(GfMul(a0, 11) ^ GfMul(a1, 13) ^ GfMul(a2, 9) ^ GfMul(a3, 14));
      }
    }
  }
  std::memcpy(out, state, 16);
}

Bytes Aes::EncryptCbc(const Bytes& plaintext, const Bytes& iv) const {
  assert(iv.size() == kBlockSize);
  size_t pad = kBlockSize - (plaintext.size() % kBlockSize);
  Bytes padded = plaintext;
  padded.insert(padded.end(), pad, static_cast<uint8_t>(pad));

  Bytes out(padded.size());
  uint8_t chain[kBlockSize];
  std::memcpy(chain, iv.data(), kBlockSize);
  for (size_t off = 0; off < padded.size(); off += kBlockSize) {
    uint8_t block[kBlockSize];
    for (size_t i = 0; i < kBlockSize; ++i) {
      block[i] = static_cast<uint8_t>(padded[off + i] ^ chain[i]);
    }
    EncryptBlock(block, out.data() + off);
    std::memcpy(chain, out.data() + off, kBlockSize);
  }
  return out;
}

Result<Bytes> Aes::DecryptCbc(const Bytes& ciphertext, const Bytes& iv) const {
  assert(iv.size() == kBlockSize);
  if (ciphertext.empty() || ciphertext.size() % kBlockSize != 0) {
    return InvalidArgumentError("CBC ciphertext length must be a positive multiple of 16");
  }
  Bytes out(ciphertext.size());
  uint8_t chain[kBlockSize];
  std::memcpy(chain, iv.data(), kBlockSize);
  for (size_t off = 0; off < ciphertext.size(); off += kBlockSize) {
    uint8_t block[kBlockSize];
    DecryptBlock(ciphertext.data() + off, block);
    for (size_t i = 0; i < kBlockSize; ++i) {
      out[off + i] = static_cast<uint8_t>(block[i] ^ chain[i]);
    }
    std::memcpy(chain, ciphertext.data() + off, kBlockSize);
  }
  uint8_t pad = out.back();
  if (pad == 0 || pad > kBlockSize) {
    return IntegrityFailureError("bad CBC padding");
  }
  for (size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      return IntegrityFailureError("bad CBC padding");
    }
  }
  out.resize(out.size() - pad);
  return out;
}

Bytes Aes::CryptCtr(const Bytes& data, const Bytes& nonce) const {
  assert(nonce.size() == kBlockSize);
  Bytes out(data.size());
  uint8_t counter[kBlockSize];
  std::memcpy(counter, nonce.data(), kBlockSize);
  uint8_t keystream[kBlockSize];
  for (size_t off = 0; off < data.size(); off += kBlockSize) {
    EncryptBlock(counter, keystream);
    size_t n = data.size() - off < kBlockSize ? data.size() - off : kBlockSize;
    for (size_t i = 0; i < n; ++i) {
      out[off + i] = static_cast<uint8_t>(data[off + i] ^ keystream[i]);
    }
    // Increment the big-endian counter.
    for (int i = kBlockSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) {
        break;
      }
    }
  }
  return out;
}

}  // namespace flicker
