// HMAC (RFC 2104) over any of the hash classes in this directory.
//
// Flicker's distributed-computing application (paper §6.2) MACs its
// checkpointed state with a TPM-sealed symmetric key before yielding to the
// untrusted OS; this is that primitive.

#ifndef FLICKER_SRC_CRYPTO_HMAC_H_
#define FLICKER_SRC_CRYPTO_HMAC_H_

#include "src/common/bytes.h"

namespace flicker {

// Generic HMAC over a hash type exposing kDigestSize/kBlockSize/Update/Finish.
template <typename Hash>
Bytes HmacDigest(const Bytes& key, const Bytes& message) {
  Bytes k = key;
  if (k.size() > Hash::kBlockSize) {
    k = Hash::Digest(k);
  }
  k.resize(Hash::kBlockSize, 0);

  Bytes inner_pad(Hash::kBlockSize);
  Bytes outer_pad(Hash::kBlockSize);
  for (size_t i = 0; i < Hash::kBlockSize; ++i) {
    inner_pad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    outer_pad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }

  Hash inner;
  inner.Update(inner_pad);
  inner.Update(message);
  Bytes inner_digest = inner.Finish();

  Hash outer;
  outer.Update(outer_pad);
  outer.Update(inner_digest);
  return outer.Finish();
}

// The concrete instantiations used across the tree.
Bytes HmacSha1(const Bytes& key, const Bytes& message);
Bytes HmacSha256(const Bytes& key, const Bytes& message);

// Verifies in constant time.
bool HmacSha1Verify(const Bytes& key, const Bytes& message, const Bytes& tag);
bool HmacSha256Verify(const Bytes& key, const Bytes& message, const Bytes& tag);

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_HMAC_H_
