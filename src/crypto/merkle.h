// Merkle aggregation for batch quotes (tqd coalescing, paper §6).
//
// A TPM quote costs one RSA signature no matter how much data the nonce
// commits to, so the quote daemon aggregates K outstanding challenge nonces
// into a binary SHA-1 Merkle tree and quotes the root once. Each challenger
// receives the shared quote plus the authentication path for its own nonce;
// recomputing the root from that path and comparing it to the quoted
// externalData proves the nonce was in the batch without trusting the daemon.
//
// Hashing is domain-separated - leaf = SHA1(0x00 || nonce), interior =
// SHA1(0x01 || left || right) - so an interior node can never be replayed as
// a leaf (or vice versa). Leaves are sorted by digest before the tree is
// built, making the root independent of challenge arrival order. An odd node
// at any level is promoted unchanged rather than paired with a duplicate,
// which closes the classic duplicate-leaf malleability. Level hashing runs
// through the multi-buffer SHA engine (sha_multibuf.h).

#ifndef FLICKER_SRC_CRYPTO_MERKLE_H_
#define FLICKER_SRC_CRYPTO_MERKLE_H_

#include <cstddef>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace flicker {

// One bottom-up step of an authentication path: the sibling digest and the
// side it occupies.
struct MerkleStep {
  Bytes sibling;  // 20-byte SHA-1 digest.
  bool sibling_is_left = false;
};

struct MerkleAuthPath {
  std::vector<MerkleStep> steps;

  // Wire form: u32 step count, then per step one side byte (0 = right,
  // 1 = left) and the 20-byte sibling digest.
  Bytes Serialize() const;
  static Result<MerkleAuthPath> Deserialize(const Bytes& data);
};

// Paths longer than this are rejected on deserialization: 2^32 leaves is
// already far past any batch the daemon would coalesce.
inline constexpr size_t kMaxMerklePathSteps = 32;

class MerkleTree {
 public:
  static Bytes LeafDigest(const Bytes& nonce);
  static Bytes InteriorDigest(const Bytes& left, const Bytes& right);

  // Builds the tree over SHA1(0x00 || nonce) leaves. Fails on an empty
  // batch.
  static Result<MerkleTree> Build(const std::vector<Bytes>& nonces);

  const Bytes& root() const { return levels_.back()[0]; }
  size_t leaf_count() const { return levels_.front().size(); }

  // The authentication path for `nonces[index]` as passed to Build.
  MerkleAuthPath PathFor(size_t index) const;

  // Folds `nonce` up `path`; the result equals the batch root iff the path
  // is authentic for that nonce.
  static Bytes RootFromPath(const Bytes& nonce, const MerkleAuthPath& path);

 private:
  MerkleTree() = default;

  std::vector<std::vector<Bytes>> levels_;  // levels_[0] = sorted leaves.
  std::vector<size_t> slot_;                // Original index -> sorted leaf slot.
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_MERKLE_H_
