#include "src/crypto/rsa.h"

#include <cassert>

#include "src/crypto/montgomery.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha_multibuf.h"

namespace flicker {

namespace {

// DigestInfo DER prefix for SHA-1 (RFC 3447 §9.2).
constexpr uint8_t kSha1DigestInfoPrefix[] = {0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e,
                                             0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14};

constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,  67,
    71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157,
    163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257,
    263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367,
    373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467,
    479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599,
    601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701, 709,
    719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809, 811, 821, 823, 827, 829,
    839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953, 967,
    971, 977, 983, 991, 997};

void PutLengthPrefixed(Bytes* out, const BigInt& v) {
  Bytes bytes = v.ToBytesBe();
  PutUint32(out, static_cast<uint32_t>(bytes.size()));
  out->insert(out->end(), bytes.begin(), bytes.end());
}

bool GetLengthPrefixed(const Bytes& in, size_t* offset, BigInt* out) {
  if (*offset + 4 > in.size()) {
    return false;
  }
  uint32_t len = GetUint32(in, *offset);
  *offset += 4;
  if (*offset + len > in.size()) {
    return false;
  }
  Bytes bytes(in.begin() + static_cast<long>(*offset), in.begin() + static_cast<long>(*offset + len));
  *offset += len;
  *out = BigInt::FromBytesBe(bytes);
  return true;
}

BigInt RandomBits(size_t bits, Drbg* rng) {
  size_t bytes = (bits + 7) / 8;
  Bytes b = rng->Generate(bytes);
  // Clear excess high bits, then force the top bit so the product has full
  // modulus width.
  size_t excess = bytes * 8 - bits;
  b[0] = static_cast<uint8_t>(b[0] & (0xff >> excess));
  b[0] = static_cast<uint8_t>(b[0] | (0x80 >> excess));
  return BigInt::FromBytesBe(b);
}

}  // namespace

Bytes RsaPublicKey::Serialize() const {
  Bytes out;
  PutLengthPrefixed(&out, n);
  PutLengthPrefixed(&out, e);
  return out;
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(const Bytes& data) {
  RsaPublicKey key;
  size_t offset = 0;
  if (!GetLengthPrefixed(data, &offset, &key.n) || !GetLengthPrefixed(data, &offset, &key.e) ||
      offset != data.size()) {
    return InvalidArgumentError("malformed RSA public key serialization");
  }
  if (key.n.IsZero() || key.e.IsZero()) {
    return InvalidArgumentError("RSA public key fields must be nonzero");
  }
  return key;
}

Bytes RsaPrivateKey::Serialize() const {
  Bytes out;
  PutLengthPrefixed(&out, pub.n);
  PutLengthPrefixed(&out, pub.e);
  PutLengthPrefixed(&out, d);
  PutLengthPrefixed(&out, p);
  PutLengthPrefixed(&out, q);
  PutLengthPrefixed(&out, dp);
  PutLengthPrefixed(&out, dq);
  PutLengthPrefixed(&out, qinv);
  return out;
}

Result<RsaPrivateKey> RsaPrivateKey::Deserialize(const Bytes& data) {
  RsaPrivateKey key;
  size_t offset = 0;
  bool ok = GetLengthPrefixed(data, &offset, &key.pub.n) &&
            GetLengthPrefixed(data, &offset, &key.pub.e) &&
            GetLengthPrefixed(data, &offset, &key.d) && GetLengthPrefixed(data, &offset, &key.p) &&
            GetLengthPrefixed(data, &offset, &key.q) && GetLengthPrefixed(data, &offset, &key.dp) &&
            GetLengthPrefixed(data, &offset, &key.dq) &&
            GetLengthPrefixed(data, &offset, &key.qinv) && offset == data.size();
  if (!ok) {
    return InvalidArgumentError("malformed RSA private key serialization");
  }
  if (key.pub.n.IsZero() || key.d.IsZero()) {
    return InvalidArgumentError("RSA private key fields must be nonzero");
  }
  return key;
}

bool IsProbablePrime(const BigInt& candidate, Drbg* rng) {
  if (candidate < BigInt(2)) {
    return false;
  }
  if (candidate == BigInt(2)) {
    return true;
  }
  if (!candidate.IsOdd()) {
    return false;
  }
  for (uint32_t p : kSmallPrimes) {
    BigInt small(p);
    if (candidate == small) {
      return true;
    }
    if ((candidate % small).IsZero()) {
      return false;
    }
  }

  // Miller-Rabin: candidate - 1 = d * 2^r.
  BigInt n_minus_1 = candidate - BigInt(1);
  BigInt d = n_minus_1;
  size_t r = 0;
  while (!d.IsOdd()) {
    d = d >> 1;
    ++r;
  }

  // One Montgomery context per candidate, shared by every round's
  // exponentiation and squaring chain (candidate is odd > 2 here).
  Result<MontgomeryContext> mont = MontgomeryContext::Create(candidate);
  const MontgomeryContext& ctx = mont.value();

  // Rounds follow Handbook of Applied Cryptography Table 4.4: large random
  // candidates need very few rounds for a negligible error bound; small
  // inputs (where adversarial composites are plausible) get the full 40.
  size_t candidate_bits = candidate.BitLength();
  const int kRounds = candidate_bits >= 512 ? 8 : (candidate_bits >= 256 ? 16 : 40);
  for (int round = 0; round < kRounds; ++round) {
    // Witness in [2, candidate - 2].
    size_t bits = candidate.BitLength();
    BigInt a;
    do {
      Bytes raw = rng->Generate((bits + 7) / 8);
      a = BigInt::FromBytesBe(raw) % n_minus_1;
    } while (a < BigInt(2));

    BigInt x = ctx.ModExp(a, d);
    if (x == BigInt(1) || x == n_minus_1) {
      continue;
    }
    bool composite = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      x = ctx.ModMul(x, x);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

RsaPrivateKey RsaGenerateKey(size_t bits, Drbg* rng) {
  assert(bits >= 512 && bits % 2 == 0);
  const BigInt e(65537);
  size_t prime_bits = bits / 2;

  auto generate_prime = [&]() {
    for (;;) {
      BigInt candidate = RandomBits(prime_bits, rng);
      if (!candidate.IsOdd()) {
        candidate = candidate + BigInt(1);
      }
      if (!IsProbablePrime(candidate, rng)) {
        continue;
      }
      // e must be invertible mod (p-1).
      if (BigInt::Gcd(candidate - BigInt(1), e) != BigInt(1)) {
        continue;
      }
      return candidate;
    }
  };

  for (;;) {
    BigInt p = generate_prime();
    BigInt q = generate_prime();
    if (p == q) {
      continue;
    }
    if (p < q) {
      std::swap(p, q);
    }
    BigInt n = p * q;
    if (n.BitLength() != bits) {
      continue;
    }
    BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    BigInt d = BigInt::ModInverse(e, phi);
    if (d.IsZero()) {
      continue;
    }

    RsaPrivateKey key;
    key.pub.n = n;
    key.pub.e = e;
    key.d = d;
    key.p = p;
    key.q = q;
    key.dp = d % (p - BigInt(1));
    key.dq = d % (q - BigInt(1));
    key.qinv = BigInt::ModInverse(q, p);
    return key;
  }
}

BigInt RsaPublicOp(const RsaPublicKey& key, const BigInt& m) {
  return BigInt::ModExp(m, key.e, key.n);
}

BigInt RsaPrivateOp(const RsaPrivateKey& key, const BigInt& c) {
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv (m1 - m2) mod p, with a
  // Montgomery context per prime half.
  Result<MontgomeryContext> mont_p = MontgomeryContext::Create(key.p);
  Result<MontgomeryContext> mont_q = MontgomeryContext::Create(key.q);
  if (!mont_p.ok() || !mont_q.ok()) {
    // Degenerate key material (e.g. deserialized without CRT parameters):
    // fall back to the non-CRT private exponentiation.
    return BigInt::ModExp(c, key.d, key.pub.n);
  }
  BigInt m1 = mont_p.value().ModExp(c % key.p, key.dp);
  BigInt m2 = mont_q.value().ModExp(c % key.q, key.dq);
  BigInt diff;
  if (m1 >= m2 % key.p) {
    diff = m1 - (m2 % key.p);
  } else {
    diff = (m1 + key.p) - (m2 % key.p);
  }
  BigInt h = mont_p.value().ModMul(key.qinv, diff);
  return m2 + h * key.q;
}

Result<Bytes> RsaEncryptPkcs1(const RsaPublicKey& key, const Bytes& message, Drbg* rng) {
  size_t k = key.ModulusBytes();
  if (message.size() + 11 > k) {
    return InvalidArgumentError("PKCS#1 message too long for modulus");
  }
  // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M.
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  size_t ps_len = k - message.size() - 3;
  while (em.size() < 2 + ps_len) {
    Bytes r = rng->Generate(ps_len);
    for (uint8_t b : r) {
      if (b != 0 && em.size() < 2 + ps_len) {
        em.push_back(b);
      }
    }
  }
  em.push_back(0x00);
  em.insert(em.end(), message.begin(), message.end());

  BigInt m = BigInt::FromBytesBe(em);
  BigInt c = RsaPublicOp(key, m);
  return c.ToBytesBe(k);
}

Result<Bytes> RsaDecryptPkcs1(const RsaPrivateKey& key, const Bytes& ciphertext) {
  size_t k = key.pub.ModulusBytes();
  if (ciphertext.size() != k) {
    return InvalidArgumentError("PKCS#1 ciphertext length mismatch");
  }
  BigInt c = BigInt::FromBytesBe(ciphertext);
  if (c >= key.pub.n) {
    return InvalidArgumentError("PKCS#1 ciphertext out of range");
  }
  BigInt m = RsaPrivateOp(key, c);
  Bytes em = m.ToBytesBe(k);
  if (em[0] != 0x00 || em[1] != 0x02) {
    return IntegrityFailureError("PKCS#1 decryption: bad block type");
  }
  size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) {
    ++sep;
  }
  if (sep < 10 || sep == em.size()) {
    return IntegrityFailureError("PKCS#1 decryption: bad padding");
  }
  return Bytes(em.begin() + static_cast<long>(sep) + 1, em.end());
}

Bytes RsaSignSha1(const RsaPrivateKey& key, const Bytes& message) {
  size_t k = key.pub.ModulusBytes();
  Bytes digest = Sha1::Digest(message);

  Bytes t(kSha1DigestInfoPrefix, kSha1DigestInfoPrefix + sizeof(kSha1DigestInfoPrefix));
  t.insert(t.end(), digest.begin(), digest.end());

  assert(k >= t.size() + 11);
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), k - t.size() - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), t.begin(), t.end());

  BigInt m = BigInt::FromBytesBe(em);
  BigInt s = RsaPrivateOp(key, m);
  return s.ToBytesBe(k);
}

namespace {

// PKCS#1 v1.5 block-type-1 encoding of a SHA-1 digest, the value a valid
// signature must decrypt to.
Bytes EmsaPkcs1Sha1(const Bytes& digest, size_t k) {
  Bytes t(kSha1DigestInfoPrefix, kSha1DigestInfoPrefix + sizeof(kSha1DigestInfoPrefix));
  t.insert(t.end(), digest.begin(), digest.end());

  Bytes expected;
  expected.reserve(k);
  expected.push_back(0x00);
  expected.push_back(0x01);
  expected.insert(expected.end(), k - t.size() - 3, 0xff);
  expected.push_back(0x00);
  expected.insert(expected.end(), t.begin(), t.end());
  return expected;
}

bool RsaVerifySha1Digest(const RsaPublicKey& key, const Bytes& digest, const Bytes& signature) {
  size_t k = key.ModulusBytes();
  if (signature.size() != k) {
    return false;
  }
  BigInt s = BigInt::FromBytesBe(signature);
  if (s >= key.n) {
    return false;
  }
  Bytes em = RsaPublicOp(key, s).ToBytesBe(k);
  return ConstantTimeEquals(em, EmsaPkcs1Sha1(digest, k));
}

}  // namespace

bool RsaVerifySha1(const RsaPublicKey& key, const Bytes& message, const Bytes& signature) {
  return RsaVerifySha1Digest(key, Sha1::Digest(message), signature);
}

std::vector<bool> RsaVerifySha1Batch(const RsaPublicKey& key, const std::vector<Bytes>& messages,
                                     const std::vector<Bytes>& signatures) {
  std::vector<bool> verdicts(messages.size(), false);
  if (messages.size() != signatures.size()) {
    return verdicts;
  }
  std::vector<Bytes> digests = Sha1DigestMany(messages);
  for (size_t i = 0; i < messages.size(); ++i) {
    verdicts[i] = RsaVerifySha1Digest(key, digests[i], signatures[i]);
  }
  return verdicts;
}

}  // namespace flicker
