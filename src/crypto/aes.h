// AES-128/AES-256 (FIPS 197) with ECB block primitives and CBC/CTR modes,
// implemented from scratch.
//
// TPM sealed storage in this codebase follows the paper's §2.2 advice:
// bulk data is encrypted with a fast symmetric cipher on the main CPU and
// only the symmetric key lives inside the (slow, asymmetric) TPM seal.
// The S-box is synthesized from its GF(2^8) definition at startup so the
// table cannot be mistyped; FIPS vectors pin it in the tests.

#ifndef FLICKER_SRC_CRYPTO_AES_H_
#define FLICKER_SRC_CRYPTO_AES_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace flicker {

class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  // Key must be 16 (AES-128) or 32 (AES-256) bytes; asserts otherwise.
  explicit Aes(const Bytes& key);

  // Single-block ECB primitives; in/out are exactly 16 bytes.
  void EncryptBlock(const uint8_t* in, uint8_t* out) const;
  void DecryptBlock(const uint8_t* in, uint8_t* out) const;

  // CBC with PKCS#7 padding. `iv` must be 16 bytes.
  Bytes EncryptCbc(const Bytes& plaintext, const Bytes& iv) const;
  // Fails with kIntegrityFailure on bad padding and kInvalidArgument on a
  // ciphertext that is not a positive multiple of the block size.
  Result<Bytes> DecryptCbc(const Bytes& ciphertext, const Bytes& iv) const;

  // CTR mode keystream XOR; encryption and decryption are the same call.
  Bytes CryptCtr(const Bytes& data, const Bytes& nonce) const;

 private:
  int rounds_;
  uint32_t round_keys_[60];  // Up to 14 rounds + 1, 4 words each.
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_AES_H_
