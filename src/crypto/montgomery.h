// Montgomery-form modular arithmetic over 64-bit limbs.
//
// This is the performance engine behind every RSA operation in the tree:
// TPM Quote/Seal/Unseal signatures, the AIK handshake, PAL keypairs and
// Miller-Rabin key generation all bottom out in 2048-bit modular
// exponentiation. The context precomputes everything that depends only on
// the modulus - n0' = -n^{-1} mod 2^64 and R^2 mod n with R = 2^(64k) - so
// each multiplication is a single CIOS pass with no long division at all.
//
// Contexts require an odd modulus > 1 (Montgomery reduction needs
// gcd(n, 2^64) = 1); BigInt::ModExp falls back to the generic
// square-and-multiply path for even moduli.
//
// On x86-64 hosts with AVX512-IFMA the context additionally precomputes a
// radix-2^52 representation and runs exponentiation through a vpmadd52
// kernel (8 products per instruction); everything else falls back to the
// scalar FIOS kernel, which is also the correctness oracle in tests.

#ifndef FLICKER_SRC_CRYPTO_MONTGOMERY_H_
#define FLICKER_SRC_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/bigint.h"

namespace flicker {

class MontgomeryContext {
 public:
  // Builds a context for `modulus`. Fails with kInvalidArgument when the
  // modulus is even or <= 1.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  // (base ^ exponent) mod modulus. Fixed 4-bit-window exponentiation over a
  // precomputed odd-power table, entirely in Montgomery form: ~bits
  // squarings plus one table multiply per nonzero window.
  BigInt ModExp(const BigInt& base, const BigInt& exponent) const;

  // (a * b) mod modulus without long division (two Montgomery products).
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

 private:
  using Limbs = std::vector<uint64_t>;

  MontgomeryContext() = default;

  // out = a * b * R^-1 mod n via CIOS; a, b, out hold exactly k limbs and
  // must be < n. `scratch` provides k + 2 limbs of working space.
  void MontMul(const Limbs& a, const Limbs& b, Limbs* out, Limbs* scratch) const;

  // Value reduced mod n, widened to k limbs.
  Limbs ToLimbs(const BigInt& value) const;
  BigInt FromLimbs(const Limbs& limbs) const;

  // Radix-2^52 exponentiation via AVX512-IFMA; only called when nd52_ != 0.
  BigInt ModExpIfma(const BigInt& base, const BigInt& exponent) const;

  BigInt modulus_;
  Limbs n_;             // Modulus limbs (k of them, n_[k-1] != 0).
  Limbs rr_;            // R^2 mod n, k limbs.
  uint64_t n0inv_ = 0;  // -n^{-1} mod 2^64.

  // AVX512-IFMA engine state (radix 2^52); nd52_ == 0 when the host lacks
  // the ISA, the build is not x86-64, or the modulus is small enough that
  // the scalar kernel wins.
  size_t nd52_ = 0;        // 52-bit digit count of the modulus.
  uint64_t n0inv52_ = 0;   // -n^{-1} mod 2^52.
  Limbs n52_;              // Modulus digits, zero-padded to 8-lane multiple.
  Limbs rr52_;             // (2^(52*nd52_))^2 mod n, same padding.
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_MONTGOMERY_H_
