// RSA key generation and PKCS#1 v1.5 operations, implemented from scratch on
// the BigInt library.
//
// Used in three places that mirror the paper:
//  * the TPM's 2048-bit SRK and AIK (seal/unseal, quote signatures),
//  * the secure-channel module's 1024-bit PAL keypair (§4.4.2),
//  * the CA application's 1024-bit signing key (§6.3.2).
// The paper's client encrypts passwords with PKCS#1 encryption (§6.3.1).

#ifndef FLICKER_SRC_CRYPTO_RSA_H_
#define FLICKER_SRC_CRYPTO_RSA_H_

#include <cstddef>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/bigint.h"
#include "src/crypto/drbg.h"

namespace flicker {

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  // Stable serialization (length-prefixed n and e), used for key fingerprints
  // and for shipping the PAL public key to remote parties.
  Bytes Serialize() const;
  static Result<RsaPublicKey> Deserialize(const Bytes& data);
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigInt d;
  BigInt p;
  BigInt q;
  BigInt dp;    // d mod (p-1)
  BigInt dq;    // d mod (q-1)
  BigInt qinv;  // q^-1 mod p

  // Serialization for sealed-storage round trips (the SSH/CA PALs seal their
  // private keys between sessions).
  Bytes Serialize() const;
  static Result<RsaPrivateKey> Deserialize(const Bytes& data);
};

// Generates an RSA keypair with public exponent 65537. `bits` is the modulus
// size (>= 512 and a multiple of 2 required). Primality via Miller-Rabin with
// 40 rounds after small-prime trial division.
RsaPrivateKey RsaGenerateKey(size_t bits, Drbg* rng);

// Returns true iff `candidate` passes trial division and Miller-Rabin.
bool IsProbablePrime(const BigInt& candidate, Drbg* rng);

// Raw RSA with CRT speedup for the private operation.
BigInt RsaPublicOp(const RsaPublicKey& key, const BigInt& m);
BigInt RsaPrivateOp(const RsaPrivateKey& key, const BigInt& c);

// PKCS#1 v1.5 encryption (block type 2 with random nonzero padding).
// Message must be at most modulus_bytes - 11.
Result<Bytes> RsaEncryptPkcs1(const RsaPublicKey& key, const Bytes& message, Drbg* rng);
Result<Bytes> RsaDecryptPkcs1(const RsaPrivateKey& key, const Bytes& ciphertext);

// PKCS#1 v1.5 signature (block type 1) over SHA-1 with the standard
// DigestInfo encoding.
Bytes RsaSignSha1(const RsaPrivateKey& key, const Bytes& message);
bool RsaVerifySha1(const RsaPublicKey& key, const Bytes& message, const Bytes& signature);

// Verifies many (message, signature) pairs under one key; result[i] holds
// for messages[i]/signatures[i]. The message digests are computed in one
// multi-buffer SHA-1 pass; the public-key operations (cheap with e = 65537)
// run serially. The vectors must be the same length.
std::vector<bool> RsaVerifySha1Batch(const RsaPublicKey& key, const std::vector<Bytes>& messages,
                                     const std::vector<Bytes>& signatures);

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_RSA_H_
