#include "src/crypto/montgomery.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define FLICKER_MONT_IFMA 1
#include <immintrin.h>
#endif

namespace flicker {

namespace {

using uint128 = unsigned __int128;

constexpr uint64_t kMask52 = (uint64_t{1} << 52) - 1;

// n0^{-1} mod 2^64 by Newton-Hensel lifting: for odd n0, inv = n0 is correct
// mod 2^3 and each iteration doubles the number of correct low bits
// (3 -> 6 -> 12 -> 24 -> 48 -> 96 >= 64).
uint64_t NegInverse64(uint64_t n0) {
  uint64_t inv = n0;
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - n0 * inv;
  }
  return ~inv + 1;
}

// Finely Integrated Operand Scanning (FIOS) Montgomery product:
// t = a * b * R^-1 mod-ish n, result left in t[0..k-1] with a possible
// overflow limb in t[k] (at most 1 since a, b < n). t holds k + 2 limbs.
//
// The multiply-by-b[i] pass and the fold-in-m*n pass are fused into one j
// loop with two independent carry chains, so the two 64x64 multiplies per
// iteration pipeline instead of serializing. Marked always_inline so the
// fixed-K wrappers below constant-propagate k and fully unroll.
inline __attribute__((always_inline)) void CiosBody(const uint64_t* a, const uint64_t* b,
                                                    const uint64_t* n, uint64_t n0inv, size_t k,
                                                    uint64_t* t) {
  std::fill(t, t + k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    const uint64_t bi = b[i];
    // j = 0 decides m (chosen so the low limb of t + a*bi + m*n cancels).
    uint128 p = static_cast<uint128>(a[0]) * bi + t[0];
    const uint64_t m = static_cast<uint64_t>(p) * n0inv;
    uint128 q = static_cast<uint128>(m) * n[0] + static_cast<uint64_t>(p);
    uint64_t carry_a = static_cast<uint64_t>(p >> 64);
    uint64_t carry_n = static_cast<uint64_t>(q >> 64);
    // Fused pass: accumulate a*bi and m*n, storing shifted one limb right.
    for (size_t j = 1; j < k; ++j) {
      p = static_cast<uint128>(a[j]) * bi + t[j] + carry_a;
      carry_a = static_cast<uint64_t>(p >> 64);
      q = static_cast<uint128>(m) * n[j] + static_cast<uint64_t>(p) + carry_n;
      carry_n = static_cast<uint64_t>(q >> 64);
      t[j - 1] = static_cast<uint64_t>(q);
    }
    const uint128 s = static_cast<uint128>(t[k]) + carry_a + carry_n;
    t[k - 1] = static_cast<uint64_t>(s);
    t[k] = static_cast<uint64_t>(s >> 64);
  }
}

template <size_t K>
void CiosFixed(const uint64_t* a, const uint64_t* b, const uint64_t* n, uint64_t n0inv,
               uint64_t* t) {
  CiosBody(a, b, n, n0inv, K, t);
}

// Dispatch to a fully unrolled kernel for the RSA-relevant widths (512/1024/
// 1536/2048 bits); anything else takes the generic loop.
void Cios(const uint64_t* a, const uint64_t* b, const uint64_t* n, uint64_t n0inv, size_t k,
          uint64_t* t) {
  switch (k) {
    case 8:
      return CiosFixed<8>(a, b, n, n0inv, t);
    case 16:
      return CiosFixed<16>(a, b, n, n0inv, t);
    case 24:
      return CiosFixed<24>(a, b, n, n0inv, t);
    case 32:
      return CiosFixed<32>(a, b, n, n0inv, t);
    default:
      return CiosBody(a, b, n, n0inv, k, t);
  }
}

#ifdef FLICKER_MONT_IFMA

bool IfmaSupported() {
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512ifma") &&
         __builtin_cpu_supports("avx512vl");
}

// Radix-2^52 Montgomery product using vpmadd52{l,h}uq, after Gueron &
// Krasnov. Operands are nd proper 52-bit digits zero-padded to nc * 8 lanes;
// `t` is a zeroed sliding accumulator of at least 2 * nd + 8 limbs (the
// per-iteration digit shift becomes a pointer bump instead of data movement).
// Lanes stay below nd * 2^54 < 2^64 for any nd <= 512, so no mid-loop
// normalization is needed; the tail normalizes and conditionally subtracts n
// once (inputs < n and R = 2^(52*nd) > n bound the result by 2n). `out` gets
// nd reduced digits; its padding lanes are left untouched.
__attribute__((target("avx512f,avx512vl,avx512ifma"))) void MontMulIfma(
    const uint64_t* a, const uint64_t* b, const uint64_t* n, uint64_t n0inv52, size_t nd,
    size_t nc, uint64_t* t, uint64_t* out) {
  for (size_t i = 0; i < nd; ++i) {
    const uint64_t bi = b[i];
    // m makes the low digit of t + a*bi + n*m vanish mod 2^52.
    const uint64_t m = ((t[0] + a[0] * bi) * n0inv52) & kMask52;
    const __m512i vb = _mm512_set1_epi64(static_cast<long long>(bi));
    const __m512i vm = _mm512_set1_epi64(static_cast<long long>(m));
    for (size_t c = 0; c < nc; ++c) {
      const __m512i va = _mm512_loadu_si512(a + 8 * c);
      const __m512i vn = _mm512_loadu_si512(n + 8 * c);
      __m512i lo = _mm512_loadu_si512(t + 8 * c);
      lo = _mm512_madd52lo_epu64(lo, va, vb);
      lo = _mm512_madd52lo_epu64(lo, vn, vm);
      _mm512_storeu_si512(t + 8 * c, lo);
    }
    for (size_t c = 0; c < nc; ++c) {
      const __m512i va = _mm512_loadu_si512(a + 8 * c);
      const __m512i vn = _mm512_loadu_si512(n + 8 * c);
      __m512i hi = _mm512_loadu_si512(t + 8 * c + 1);
      hi = _mm512_madd52hi_epu64(hi, va, vb);
      hi = _mm512_madd52hi_epu64(hi, vn, vm);
      _mm512_storeu_si512(t + 8 * c + 1, hi);
    }
    t[1] += t[0] >> 52;  // Low 52 bits of t[0] are zero by choice of m.
    ++t;                 // Digit shift.
  }

  // Normalize the redundant digits, then subtract n if the result >= n.
  uint64_t carry = 0;
  uint64_t top = 0;
  for (size_t j = 0; j <= nd; ++j) {
    const uint64_t v = t[j] + carry;
    carry = v >> 52;
    if (j < nd) {
      out[j] = v & kMask52;
    } else {
      top = v & kMask52;
    }
  }
  bool ge = top != 0;
  if (!ge) {
    ge = true;
    for (size_t j = nd; j-- > 0;) {
      if (out[j] != n[j]) {
        ge = out[j] > n[j];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t j = 0; j < nd; ++j) {
      const uint64_t d = out[j] - n[j] - borrow;
      borrow = (out[j] < n[j] + borrow) ? 1 : 0;
      out[j] = d & kMask52;
    }
  }
}

// Register-resident variant for the RSA-sized digit counts (nd <= 8 * NC,
// NC known at compile time so the accumulator array lowers to zmm
// registers). Same math as MontMulIfma, but the digit shift is a valignq
// cascade instead of a pointer bump, and the hi-products are applied after
// the shift so they land on the same lanes as the a/n vectors - the
// accumulator never round-trips through memory inside the loop.
template <size_t NC>
__attribute__((target("avx512f,avx512vl,avx512ifma"))) void MontMulIfmaReg(
    const uint64_t* a, const uint64_t* b, const uint64_t* n, uint64_t n0inv52, size_t nd,
    uint64_t* out) {
  const __m512i zero = _mm512_setzero_si512();
  // Two accumulator files (a*b and n*m products) so the two madd chains per
  // lane run in parallel; the true digit value is their lane-wise sum. The
  // digit-0 carry lives in the scalar `pending` instead of being re-injected
  // into lane 0: dropping vector lane 0 at the shift is exact because
  // pending' = (lane0 + pending) >> 52 absorbs its entire value (the low 52
  // bits are zero by choice of m). This keeps the loop-carried dependency
  // down to madd -> valignq -> madd -> extract -> m -> broadcast.
  __m512i aa[NC];
  __m512i an[NC];
  __m512i va[NC];
  __m512i vn[NC];
  for (size_t c = 0; c < NC; ++c) {
    aa[c] = zero;
    an[c] = zero;
    va[c] = _mm512_loadu_si512(a + 8 * c);
    vn[c] = _mm512_loadu_si512(n + 8 * c);
  }
  const uint64_t a0 = a[0];
  uint64_t pending = 0;
  for (size_t i = 0; i < nd; ++i) {
    const uint64_t bi = b[i];
    const uint64_t t0 =
        static_cast<uint64_t>(_mm_cvtsi128_si64(_mm512_castsi512_si128(aa[0]))) +
        static_cast<uint64_t>(_mm_cvtsi128_si64(_mm512_castsi512_si128(an[0]))) + pending;
    const uint64_t m = ((t0 + a0 * bi) * n0inv52) & kMask52;
    const __m512i vb = _mm512_set1_epi64(static_cast<long long>(bi));
    const __m512i vm = _mm512_set1_epi64(static_cast<long long>(m));
    for (size_t c = 0; c < NC; ++c) {
      aa[c] = _mm512_madd52lo_epu64(aa[c], va[c], vb);
      an[c] = _mm512_madd52lo_epu64(an[c], vn[c], vm);
    }
    const uint64_t lane0 =
        static_cast<uint64_t>(_mm_cvtsi128_si64(_mm512_castsi512_si128(aa[0]))) +
        static_cast<uint64_t>(_mm_cvtsi128_si64(_mm512_castsi512_si128(an[0]))) + pending;
    pending = lane0 >> 52;
    for (size_t c = 0; c + 1 < NC; ++c) {
      aa[c] = _mm512_alignr_epi64(aa[c + 1], aa[c], 1);
      an[c] = _mm512_alignr_epi64(an[c + 1], an[c], 1);
    }
    aa[NC - 1] = _mm512_alignr_epi64(zero, aa[NC - 1], 1);
    an[NC - 1] = _mm512_alignr_epi64(zero, an[NC - 1], 1);
    for (size_t c = 0; c < NC; ++c) {
      aa[c] = _mm512_madd52hi_epu64(aa[c], va[c], vb);
      an[c] = _mm512_madd52hi_epu64(an[c], vn[c], vm);
    }
  }

  uint64_t t[NC * 8];
  for (size_t c = 0; c < NC; ++c) {
    _mm512_storeu_si512(t + 8 * c, _mm512_add_epi64(aa[c], an[c]));
  }
  uint64_t carry = pending;
  for (size_t j = 0; j < nd; ++j) {
    const uint64_t v = t[j] + carry;
    carry = v >> 52;
    out[j] = v & kMask52;
  }
  bool ge = carry != 0;
  if (!ge) {
    ge = true;
    for (size_t j = nd; j-- > 0;) {
      if (out[j] != n[j]) {
        ge = out[j] > n[j];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t j = 0; j < nd; ++j) {
      const uint64_t d = out[j] - n[j] - borrow;
      borrow = (out[j] < n[j] + borrow) ? 1 : 0;
      out[j] = d & kMask52;
    }
  }
}

#endif  // FLICKER_MONT_IFMA

// 64-bit limbs -> nd 52-bit digits (zero-padded to `pad` entries).
std::vector<uint64_t> LimbsToDigits52(const std::vector<uint64_t>& limbs, size_t nd, size_t pad) {
  std::vector<uint64_t> d(pad, 0);
  for (size_t j = 0; j < nd; ++j) {
    const size_t bit = 52 * j;
    const size_t li = bit / 64;
    const size_t shift = bit % 64;
    uint64_t v = li < limbs.size() ? limbs[li] >> shift : 0;
    if (shift > 12 && li + 1 < limbs.size()) {
      v |= limbs[li + 1] << (64 - shift);
    }
    d[j] = v & kMask52;
  }
  return d;
}

std::vector<uint64_t> Digits52ToLimbs(const uint64_t* d, size_t nd) {
  std::vector<uint64_t> limbs((52 * nd + 63) / 64 + 1, 0);
  for (size_t j = 0; j < nd; ++j) {
    const size_t bit = 52 * j;
    const size_t li = bit / 64;
    const size_t shift = bit % 64;
    limbs[li] |= d[j] << shift;
    if (shift > 12) {
      limbs[li + 1] |= d[j] >> (64 - shift);
    }
  }
  return limbs;
}

// Final Montgomery correction: if t >= n (including the overflow limb t[k]),
// subtract n once. a, b < n guarantees t < 2n, so one subtraction suffices.
void CondReduce(uint64_t* t, const uint64_t* n, size_t k) {
  if (t[k] == 0) {
    for (size_t j = k; j-- > 0;) {
      if (t[j] != n[j]) {
        if (t[j] < n[j]) {
          return;
        }
        break;
      }
    }
  }
  uint64_t borrow = 0;
  for (size_t j = 0; j < k; ++j) {
    const uint64_t a = t[j];
    const uint64_t s = n[j];
    t[j] = a - s - borrow;
    borrow = (a < s || (a == s && borrow)) ? 1 : 0;
  }
  t[k] -= borrow;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (!modulus.IsOdd() || modulus <= BigInt(1)) {
    return InvalidArgumentError("Montgomery context requires an odd modulus > 1");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  ctx.n_ = modulus.limbs_;
  ctx.n0inv_ = NegInverse64(ctx.n_[0]);
  const size_t k = ctx.n_.size();
  // R^2 mod n with R = 2^(64k): one long division at setup buys division-free
  // multiplication everywhere after.
  BigInt rr = (BigInt(1) << (128 * k)) % modulus;
  ctx.rr_ = rr.limbs_;
  ctx.rr_.resize(k, 0);

#ifdef FLICKER_MONT_IFMA
  // Radix-2^52 engine for RSA-sized moduli on AVX512-IFMA hosts. Below ~16
  // digits the conversion overhead eats the vector win, so stay scalar.
  const size_t nd = (modulus.BitLength() + 51) / 52;
  if (nd >= 16 && IfmaSupported()) {
    const size_t pad = ((nd + 7) / 8) * 8;
    ctx.nd52_ = nd;
    ctx.n0inv52_ = ctx.n0inv_ & kMask52;
    ctx.n52_ = LimbsToDigits52(ctx.n_, nd, pad);
    BigInt rr52 = (BigInt(1) << (104 * nd)) % modulus;
    ctx.rr52_ = LimbsToDigits52(rr52.limbs_, nd, pad);
  }
#endif
  return ctx;
}

void MontgomeryContext::MontMul(const Limbs& a, const Limbs& b, Limbs* out, Limbs* scratch) const {
  const size_t k = n_.size();
  Cios(a.data(), b.data(), n_.data(), n0inv_, k, scratch->data());
  CondReduce(scratch->data(), n_.data(), k);
  out->assign(scratch->begin(), scratch->begin() + static_cast<long>(k));
}

MontgomeryContext::Limbs MontgomeryContext::ToLimbs(const BigInt& value) const {
  const BigInt* reduced = &value;
  BigInt tmp;
  if (BigInt::Compare(value, modulus_) >= 0) {
    tmp = value % modulus_;
    reduced = &tmp;
  }
  Limbs out = reduced->limbs_;
  out.resize(n_.size(), 0);
  return out;
}

BigInt MontgomeryContext::FromLimbs(const Limbs& limbs) const {
  BigInt out;
  out.limbs_ = limbs;
  out.Normalize();
  return out;
}

BigInt MontgomeryContext::ModMul(const BigInt& a, const BigInt& b) const {
  const size_t k = n_.size();
  Limbs scratch(k + 2);
  Limbs am = ToLimbs(a);
  // MontMul(aR^0, R^2) = aR; MontMul(aR, b) = a*b.
  MontMul(am, rr_, &am, &scratch);
  Limbs result(k);
  MontMul(am, ToLimbs(b), &result, &scratch);
  return FromLimbs(result);
}

BigInt MontgomeryContext::ModExp(const BigInt& base, const BigInt& exponent) const {
  if (exponent.IsZero()) {
    return BigInt(1);  // modulus > 1, so 1 mod n = 1.
  }
  if (nd52_ != 0) {
    return ModExpIfma(base, exponent);
  }
  const size_t k = n_.size();
  Limbs scratch(k + 2);

  // Montgomery form of the (reduced) base and of 1.
  Limbs bm = ToLimbs(base);
  MontMul(bm, rr_, &bm, &scratch);
  Limbs one(k, 0);
  one[0] = 1;
  Limbs mont_one(k);
  MontMul(one, rr_, &mont_one, &scratch);

  // Odd-power table for 4-bit windows: table[i] = base^(2i+1) in Montgomery
  // form.
  constexpr int kWindowBits = 4;
  Limbs table[1 << (kWindowBits - 1)];
  table[0] = bm;
  Limbs b2(k);
  MontMul(bm, bm, &b2, &scratch);
  for (size_t i = 1; i < (1u << (kWindowBits - 1)); ++i) {
    table[i].resize(k);
    MontMul(table[i - 1], b2, &table[i], &scratch);
  }

  // Left-to-right sliding-window scan. Windows always end on a set bit, so
  // only odd powers are ever multiplied in.
  Limbs result = mont_one;
  ptrdiff_t i = static_cast<ptrdiff_t>(exponent.BitLength()) - 1;
  while (i >= 0) {
    if (!exponent.GetBit(static_cast<size_t>(i))) {
      MontMul(result, result, &result, &scratch);
      --i;
      continue;
    }
    ptrdiff_t l = i - (kWindowBits - 1);
    if (l < 0) {
      l = 0;
    }
    while (!exponent.GetBit(static_cast<size_t>(l))) {
      ++l;
    }
    unsigned window = 0;
    for (ptrdiff_t bit = i; bit >= l; --bit) {
      window = (window << 1) | (exponent.GetBit(static_cast<size_t>(bit)) ? 1u : 0u);
    }
    for (ptrdiff_t s = 0; s <= i - l; ++s) {
      MontMul(result, result, &result, &scratch);
    }
    MontMul(result, table[window >> 1], &result, &scratch);
    i = l - 1;
  }

  // Leave Montgomery form.
  MontMul(result, one, &result, &scratch);
  return FromLimbs(result);
}

#ifdef FLICKER_MONT_IFMA

BigInt MontgomeryContext::ModExpIfma(const BigInt& base, const BigInt& exponent) const {
  const size_t nd = nd52_;
  const size_t nc = (nd + 7) / 8;
  const size_t pad = nc * 8;
  // Sliding accumulator for the generic (memory-based) kernel; the common
  // RSA widths dispatch to the register-resident kernel instead.
  Limbs t(2 * nd + 8);
  auto mul = [&](const uint64_t* a, const uint64_t* b, uint64_t* out) {
    switch (nc) {
      case 2:
        return MontMulIfmaReg<2>(a, b, n52_.data(), n0inv52_, nd, out);
      case 3:
        return MontMulIfmaReg<3>(a, b, n52_.data(), n0inv52_, nd, out);
      case 4:
        return MontMulIfmaReg<4>(a, b, n52_.data(), n0inv52_, nd, out);
      case 5:
        return MontMulIfmaReg<5>(a, b, n52_.data(), n0inv52_, nd, out);
      default:
        std::memset(t.data(), 0, t.size() * sizeof(uint64_t));
        return MontMulIfma(a, b, n52_.data(), n0inv52_, nd, nc, t.data(), out);
    }
  };

  // Montgomery form of the (reduced) base and of 1.
  Limbs bm = LimbsToDigits52(ToLimbs(base), nd, pad);
  mul(bm.data(), rr52_.data(), bm.data());
  Limbs one(pad, 0);
  one[0] = 1;
  Limbs mont_one(pad, 0);
  mul(one.data(), rr52_.data(), mont_one.data());

  constexpr int kWindowBits = 4;
  Limbs table[1 << (kWindowBits - 1)];
  table[0] = bm;
  Limbs b2(pad, 0);
  mul(bm.data(), bm.data(), b2.data());
  for (size_t i = 1; i < (1u << (kWindowBits - 1)); ++i) {
    table[i].assign(pad, 0);
    mul(table[i - 1].data(), b2.data(), table[i].data());
  }

  Limbs result = mont_one;
  ptrdiff_t i = static_cast<ptrdiff_t>(exponent.BitLength()) - 1;
  while (i >= 0) {
    if (!exponent.GetBit(static_cast<size_t>(i))) {
      mul(result.data(), result.data(), result.data());
      --i;
      continue;
    }
    ptrdiff_t l = i - (kWindowBits - 1);
    if (l < 0) {
      l = 0;
    }
    while (!exponent.GetBit(static_cast<size_t>(l))) {
      ++l;
    }
    unsigned window = 0;
    for (ptrdiff_t bit = i; bit >= l; --bit) {
      window = (window << 1) | (exponent.GetBit(static_cast<size_t>(bit)) ? 1u : 0u);
    }
    for (ptrdiff_t s = 0; s <= i - l; ++s) {
      mul(result.data(), result.data(), result.data());
    }
    mul(result.data(), table[window >> 1].data(), result.data());
    i = l - 1;
  }

  // Leave Montgomery form.
  mul(result.data(), one.data(), result.data());
  Limbs limbs = Digits52ToLimbs(result.data(), nd);
  BigInt out;
  out.limbs_ = limbs;
  out.Normalize();
  return out;
}

#else

BigInt MontgomeryContext::ModExpIfma(const BigInt&, const BigInt&) const {
  return BigInt();  // Unreachable: nd52_ is never set without IFMA support.
}

#endif  // FLICKER_MONT_IFMA

}  // namespace flicker
