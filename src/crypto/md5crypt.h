// md5crypt: the FreeBSD/Linux "$1$" password hash.
//
// The paper's SSH application (§6.3.1, Fig. 7) has the PAL compute
// md5crypt(salt, password) and compare against /etc/passwd. This is that
// algorithm: a deliberately slow, quirky 1000-round MD5 construction.

#ifndef FLICKER_SRC_CRYPTO_MD5CRYPT_H_
#define FLICKER_SRC_CRYPTO_MD5CRYPT_H_

#include <string>
#include <string_view>

namespace flicker {

// Computes the full crypt string "$1$<salt>$<hash>". `salt` is at most 8
// characters (longer salts are truncated, matching the reference
// implementation).
std::string Md5Crypt(std::string_view password, std::string_view salt);

// Checks a password against a full "$1$..." crypt string.
bool Md5CryptVerify(std::string_view password, std::string_view crypt_string);

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_MD5CRYPT_H_
