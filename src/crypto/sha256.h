// SHA-256 (FIPS 180-2), implemented from scratch.
//
// Not required by the TPM v1.2 model itself, but offered by the Crypto PAL
// module for application use (e.g., integrity tags over distributed-computing
// state where an application prefers a stronger hash than SHA-1).

#ifndef FLICKER_SRC_CRYPTO_SHA256_H_
#define FLICKER_SRC_CRYPTO_SHA256_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"

namespace flicker {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  Bytes Finish();

  static Bytes Digest(const Bytes& data);
  static Bytes Digest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_SHA256_H_
