// 4-lane SSE2 instantiation of the multi-buffer SHA kernels. SSE2 is part of
// the x86-64 baseline, so this TU needs no extra -m flags; it is the floor
// every x86-64 host gets even when AVX2 is absent.

#if defined(__x86_64__) && !defined(FLICKER_SIMD_DISABLED)

#include <emmintrin.h>

#include "src/crypto/sha_multibuf_kernel.h"

namespace flicker {
namespace multibuf_internal {

struct Vec128 {
  static constexpr int kLanes = 4;
  __m128i v;

  static Vec128 Load(const uint32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static void Store(uint32_t* p, const Vec128& a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
  }
  static Vec128 Set1(uint32_t x) { return {_mm_set1_epi32(static_cast<int>(x))}; }
};

inline Vec128 Add(const Vec128& a, const Vec128& b) { return {_mm_add_epi32(a.v, b.v)}; }
inline Vec128 Xor(const Vec128& a, const Vec128& b) { return {_mm_xor_si128(a.v, b.v)}; }
inline Vec128 And(const Vec128& a, const Vec128& b) { return {_mm_and_si128(a.v, b.v)}; }
inline Vec128 Or(const Vec128& a, const Vec128& b) { return {_mm_or_si128(a.v, b.v)}; }
inline Vec128 AndNot(const Vec128& a, const Vec128& b) { return {_mm_andnot_si128(a.v, b.v)}; }
template <int N>
inline Vec128 Rotl(const Vec128& a) {
  return {_mm_or_si128(_mm_slli_epi32(a.v, N), _mm_srli_epi32(a.v, 32 - N))};
}
inline Vec128 Shr(const Vec128& a, int n) { return {_mm_srli_epi32(a.v, n)}; }

void Sha1CompressSse2(uint32_t* state, const uint32_t* blocks) {
  Sha1CompressLanes<Vec128>(state, blocks);
}

void Sha256CompressSse2(uint32_t* state, const uint32_t* blocks) {
  Sha256CompressLanes<Vec128>(state, blocks);
}

}  // namespace multibuf_internal
}  // namespace flicker

#endif  // __x86_64__ && !FLICKER_SIMD_DISABLED
