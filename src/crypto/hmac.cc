#include "src/crypto/hmac.h"

#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace flicker {

Bytes HmacSha1(const Bytes& key, const Bytes& message) {
  return HmacDigest<Sha1>(key, message);
}

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  return HmacDigest<Sha256>(key, message);
}

bool HmacSha1Verify(const Bytes& key, const Bytes& message, const Bytes& tag) {
  return ConstantTimeEquals(HmacSha1(key, message), tag);
}

bool HmacSha256Verify(const Bytes& key, const Bytes& message, const Bytes& tag) {
  return ConstantTimeEquals(HmacSha256(key, message), tag);
}

}  // namespace flicker
