#include "src/crypto/sha1.h"

#include <cstring>

namespace flicker {

namespace {

inline uint32_t Rotl(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::Reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  state_[4] = 0xc3d2e1f0;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) | static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];
  uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    uint32_t f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t take = kBlockSize - buffer_len_;
    if (take > len) {
      take = len;
    }
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= kBlockSize) {
    ProcessBlock(p);
    p += kBlockSize;
    len -= kBlockSize;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Bytes Sha1::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  Reset();  // Finish leaves the object ready for the next message.
  return digest;
}

Bytes Sha1::Digest(const void* data, size_t len) {
  Sha1 h;
  h.Update(data, len);
  return h.Finish();
}

Bytes Sha1::Digest(const Bytes& data) {
  return Digest(data.data(), data.size());
}

}  // namespace flicker
