// SHA-1 (FIPS 180-1), implemented from scratch.
//
// SHA-1 is the measurement hash mandated by the TPM v1.2 specification: PCR
// extends, quotes, seal composites, and SKINIT's SLB measurement all use it,
// so this implementation sits at the bottom of the entire attestation chain.

#ifndef FLICKER_SRC_CRYPTO_SHA1_H_
#define FLICKER_SRC_CRYPTO_SHA1_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"

namespace flicker {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1() { Reset(); }

  // Restores the initial chaining state, discarding buffered input.
  void Reset();

  // Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  // Appends padding and returns the 20-byte digest. The object is Reset()
  // automatically, ready for the next message.
  Bytes Finish();

  // One-shot convenience.
  static Bytes Digest(const Bytes& data);
  static Bytes Digest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[5];
  uint64_t total_len_;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_SHA1_H_
