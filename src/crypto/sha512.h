// SHA-512 (FIPS 180-2), implemented from scratch.
//
// Listed in the paper's Crypto PAL module (Fig. 6). The round constants and
// initial state are derived at first use from the defining square/cube roots
// of the first primes (via exact integer root extraction) rather than
// transcribed, so the table cannot be mistyped; FIPS test vectors in the
// test suite pin the result.

#ifndef FLICKER_SRC_CRYPTO_SHA512_H_
#define FLICKER_SRC_CRYPTO_SHA512_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"

namespace flicker {

class Sha512 {
 public:
  static constexpr size_t kDigestSize = 64;
  static constexpr size_t kBlockSize = 128;

  Sha512() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  Bytes Finish();

  static Bytes Digest(const Bytes& data);
  static Bytes Digest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint64_t state_[8];
  uint64_t total_len_;  // Byte count; 2^64 bytes is beyond any simulated input.
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_SHA512_H_
