// Multi-buffer SHA-1/SHA-256: hash many independent messages at once.
//
// The serialized TPM Quote is the attestation pipeline's dominant cost, and
// once batching amortizes it the next hot loop is SHA itself (BENCH_crypto:
// sha1_64kb ~2.4k ops/s single-stream). A single SHA stream has a serial
// dependency between blocks and cannot be vectorized, but the batch-quote
// Merkle builder, the SLB measurement path and the verifier farm all hash
// *sets* of independent messages - so the win comes from interleaving: lane
// j of every vector register carries message j's state, and one AVX2
// instruction advances 8 compressions (SSE2: 4).
//
// Engine selection, in order:
//   * AVX2 8-lane kernel when the host CPU has AVX2,
//   * SSE2 4-lane kernel on any other x86-64,
//   * the scalar fallback (plain-array lanes) everywhere else, when the
//     build sets -DFLICKER_SIMD=OFF, or under ForceScalarForTesting.
//
// Every path produces digests bit-identical to Sha1::Digest / Sha256::Digest
// per message - the differential battery in tests/crypto/sha_multibuf_test.cc
// and the verify.sh --perf campaign both pin this. Messages of different
// lengths are fine (ragged tails): each lane retires independently, its
// digest snapshotted after its own final block while longer lanes continue.

#ifndef FLICKER_SRC_CRYPTO_SHA_MULTIBUF_H_
#define FLICKER_SRC_CRYPTO_SHA_MULTIBUF_H_

#include <cstddef>
#include <vector>

#include "src/common/bytes.h"

namespace flicker {

// Digests for each message, in input order. Equivalent to calling
// Sha1::Digest / Sha256::Digest per element, but lane-parallel.
std::vector<Bytes> Sha1DigestMany(const std::vector<Bytes>& messages);
std::vector<Bytes> Sha256DigestMany(const std::vector<Bytes>& messages);

// The lane width the active engine advances per compression call: 8 (AVX2)
// or 4 (SSE2, and the scalar fallback's plain-array width).
int ShaMultiBufLanes();

// Human-readable engine name for bench reports: "avx2", "sse2" or "scalar".
const char* ShaMultiBufEngine();

// Forces the scalar fallback regardless of host ISA; the differential tests
// use this to compare both paths in one process. Returns the previous value.
bool ShaMultiBufForceScalar(bool force);

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_SHA_MULTIBUF_H_
