// RC4 stream cipher, implemented from scratch.
//
// Listed in the paper's Crypto PAL module (Fig. 6). Kept for fidelity with
// the 2008 artifact; new code in this tree uses AES.

#ifndef FLICKER_SRC_CRYPTO_RC4_H_
#define FLICKER_SRC_CRYPTO_RC4_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace flicker {

class Rc4 {
 public:
  // Key must be 1..256 bytes; asserts otherwise.
  explicit Rc4(const Bytes& key);

  // XORs the keystream into `data`; encryption == decryption. The keystream
  // position advances across calls.
  Bytes Crypt(const Bytes& data);

 private:
  uint8_t s_[256];
  uint8_t i_ = 0;
  uint8_t j_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_RC4_H_
