// MD5 (RFC 1321), implemented from scratch.
//
// Needed by the SSH password application: *nix password files store
// md5crypt ("$1$") hashes, whose core is iterated MD5 (see md5crypt.h).
// The sine-derived constant table is computed at startup from the RFC's
// defining formula rather than transcribed.

#ifndef FLICKER_SRC_CRYPTO_MD5_H_
#define FLICKER_SRC_CRYPTO_MD5_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"

namespace flicker {

class Md5 {
 public:
  static constexpr size_t kDigestSize = 16;
  static constexpr size_t kBlockSize = 64;

  Md5() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  Bytes Finish();

  static Bytes Digest(const Bytes& data);
  static Bytes Digest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t total_len_;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CRYPTO_MD5_H_
