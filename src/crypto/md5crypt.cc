#include "src/crypto/md5crypt.h"

#include "src/common/bytes.h"
#include "src/crypto/md5.h"

namespace flicker {

namespace {

constexpr char kItoa64[] = "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

// The traditional crypt base64: 4 output characters per 3 bytes,
// least-significant 6 bits first.
void To64(std::string* out, uint32_t v, int n) {
  while (n-- > 0) {
    out->push_back(kItoa64[v & 0x3f]);
    v >>= 6;
  }
}

}  // namespace

std::string Md5Crypt(std::string_view password, std::string_view salt) {
  if (salt.substr(0, 3) == "$1$") {
    salt.remove_prefix(3);
  }
  size_t salt_end = salt.find('$');
  if (salt_end != std::string_view::npos) {
    salt = salt.substr(0, salt_end);
  }
  if (salt.size() > 8) {
    salt = salt.substr(0, 8);
  }

  Bytes pw = BytesOf(password);
  Bytes sl = BytesOf(salt);

  // Alternate sum: MD5(password || salt || password).
  Md5 alt;
  alt.Update(pw);
  alt.Update(sl);
  alt.Update(pw);
  Bytes alt_digest = alt.Finish();

  // Main sum: password, magic, salt, then alt-digest bytes for each byte of
  // password length, then the famous bit-twiddling tail.
  Md5 main;
  main.Update(pw);
  main.Update(BytesOf("$1$"));
  main.Update(sl);
  for (size_t i = password.size(); i > 0; i -= 16) {
    main.Update(alt_digest.data(), i > 16 ? 16 : i);
    if (i <= 16) {
      break;
    }
  }
  for (size_t i = password.size(); i != 0; i >>= 1) {
    if (i & 1) {
      uint8_t zero = 0;
      main.Update(&zero, 1);
    } else {
      main.Update(pw.data(), 1);
    }
  }
  Bytes digest = main.Finish();

  // 1000 strengthening rounds with a data-dependent mixing schedule.
  for (int round = 0; round < 1000; ++round) {
    Md5 ctx;
    if (round & 1) {
      ctx.Update(pw);
    } else {
      ctx.Update(digest);
    }
    if (round % 3 != 0) {
      ctx.Update(sl);
    }
    if (round % 7 != 0) {
      ctx.Update(pw);
    }
    if (round & 1) {
      ctx.Update(digest);
    } else {
      ctx.Update(pw);
    }
    digest = ctx.Finish();
  }

  std::string out = "$1$";
  out.append(salt.begin(), salt.end());
  out.push_back('$');
  To64(&out,
       (static_cast<uint32_t>(digest[0]) << 16) | (static_cast<uint32_t>(digest[6]) << 8) |
           digest[12],
       4);
  To64(&out,
       (static_cast<uint32_t>(digest[1]) << 16) | (static_cast<uint32_t>(digest[7]) << 8) |
           digest[13],
       4);
  To64(&out,
       (static_cast<uint32_t>(digest[2]) << 16) | (static_cast<uint32_t>(digest[8]) << 8) |
           digest[14],
       4);
  To64(&out,
       (static_cast<uint32_t>(digest[3]) << 16) | (static_cast<uint32_t>(digest[9]) << 8) |
           digest[15],
       4);
  To64(&out,
       (static_cast<uint32_t>(digest[4]) << 16) | (static_cast<uint32_t>(digest[10]) << 8) |
           digest[5],
       4);
  To64(&out, digest[11], 2);
  return out;
}

bool Md5CryptVerify(std::string_view password, std::string_view crypt_string) {
  if (crypt_string.substr(0, 3) != "$1$") {
    return false;
  }
  std::string_view rest = crypt_string.substr(3);
  size_t dollar = rest.find('$');
  if (dollar == std::string_view::npos) {
    return false;
  }
  std::string recomputed = Md5Crypt(password, rest.substr(0, dollar));
  // Constant-time compare; both sides are fixed-format crypt strings.
  if (recomputed.size() != crypt_string.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < recomputed.size(); ++i) {
    diff = static_cast<uint8_t>(diff | (recomputed[i] ^ crypt_string[i]));
  }
  return diff == 0;
}

}  // namespace flicker
