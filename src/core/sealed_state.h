// Cross-session PAL state: TPM sealed storage plus the replay protection of
// paper §4.3.2 (Fig. 4).
//
// TPM_Seal alone guarantees only the *intended PAL* can read a blob; it does
// not guarantee the blob is the *latest* one - the untrusted OS stores the
// ciphertexts and can hand back an old version. ReplayProtectedStorage
// binds each sealed version to a TPM monotonic counter: Seal increments the
// counter and embeds its value; Unseal compares the embedded value to the
// live counter and rejects stale blobs.

#ifndef FLICKER_SRC_CORE_SEALED_STATE_H_
#define FLICKER_SRC_CORE_SEALED_STATE_H_

#include <map>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/tpm/transport.h"
#include "src/tpm/tpm_util.h"

namespace flicker {

// Seals `data` so only a PAL whose in-execution PCR 17 equals
// `release_pcr17` can unseal it - the §4.3.1 pattern ("PCR 17 must have the
// value V <- H(0x00^20 || H(P')) before the data can be unsealed").
Result<SealedBlob> SealForPal(TpmClient* tpm, const Bytes& data, const Bytes& release_pcr17,
                              const Bytes& blob_auth);

// Unseals inside the target PAL's session (PCR 17 currently holds the bound
// value).
Result<Bytes> UnsealInPal(TpmClient* tpm, const SealedBlob& blob, const Bytes& blob_auth);

class ReplayProtectedStorage {
 public:
  // Creates the backing monotonic counter (owner-authorized).
  static Result<ReplayProtectedStorage> Create(TpmClient* tpm, const Bytes& counter_auth,
                                               const Bytes& owner_secret);

  // Rebinds to an existing counter (e.g., in a later session).
  ReplayProtectedStorage(TpmClient* tpm, uint32_t counter_id, Bytes counter_auth);

  // Fig. 4 Seal: IncrementCounter(); c <- TPM_Seal(data || j, PCR list).
  Result<SealedBlob> Seal(const Bytes& data, const Bytes& release_pcr17, const Bytes& blob_auth);

  // Fig. 4 Unseal: d || j' <- TPM_Unseal(c); output d iff j' == counter.
  // Returns kReplayDetected for stale versions.
  Result<Bytes> Unseal(const SealedBlob& blob, const Bytes& blob_auth);

  uint32_t counter_id() const { return counter_id_; }

 private:
  TpmClient* tpm_;
  uint32_t counter_id_;
  Bytes counter_auth_;
};

// The §4.3.2 NV-storage variant: the version counter lives in a TPM
// non-volatile space whose read AND write access are gated on the owning
// PAL's PCR 17 value. The OS can neither observe nor advance the counter;
// only the PAL, inside its Flicker session, can. ("Values placed in
// non-volatile storage are maintained in the TPM... This, combined with
// the PCR-based access control, is sufficient to protect a counter value
// against attacks from the OS.")
class NvReplayProtectedStorage {
 public:
  // Defines the NV space (owner-authorized; done once at provisioning) and
  // binds access to `pal_pcr17` - the PAL's in-execution PCR 17 value.
  static Result<NvReplayProtectedStorage> Provision(TpmClient* tpm, uint32_t nv_index,
                                                    const Bytes& pal_pcr17,
                                                    const Bytes& owner_secret);

  // Rebinds to an existing space (e.g. in a later session).
  NvReplayProtectedStorage(TpmClient* tpm, uint32_t nv_index);

  // Seal: counter <- NV+1 (PAL-gated write), seal data || counter. Must be
  // called inside the owning PAL's session.
  Result<SealedBlob> Seal(const Bytes& data, const Bytes& release_pcr17, const Bytes& blob_auth);

  // Unseal: reject unless the embedded version equals the NV counter.
  Result<Bytes> Unseal(const SealedBlob& blob, const Bytes& blob_auth);

  uint32_t nv_index() const { return nv_index_; }

 private:
  Result<uint64_t> ReadCounter();

  TpmClient* tpm_;
  uint32_t nv_index_;
};

// What Recover() found and did after a crash (see DESIGN.md §9).
enum class RecoveryClass {
  kClean,            // No staged snapshot; nothing to do.
  kDiscardedStaged,  // Crash before the counter moved (or stale orphan): staged dropped.
  kRolledForward,    // Counter moved but commit didn't: staged promoted to committed.
  kFailClosed,       // Staged version is ahead of any state the counter explains.
};

// Crash-consistent wrapper around replay-protected sealing: a two-phase
// protocol over untrusted storage (modeled by the staged/committed slots,
// which survive machine resets the way a disk does).
//
//   Seal:  stage blob(version = counter+1)  ->  IncrementCounter  ->  commit
//
// A power loss between any two steps leaves a state Recover() can classify
// from the staged version and the live counter alone:
//   staged == counter+1  crash before the increment: the staged blob would
//                        never unseal (its version is ahead) - discard it.
//   staged == counter    increment landed, commit didn't: promote the staged
//                        blob. The previously committed blob's version is now
//                        behind the counter, so rolling forward is the only
//                        way any data stays reachable - and it is the newest.
//   staged <  counter    an orphan from an older crash - discard.
//   staged >  counter+1  impossible under the protocol; refuse to serve
//                        anything (fail closed) rather than guess.
// In every class, UnsealLatest() still verifies the embedded version against
// the live counter, so stale data is never returned even if classification
// were wrong.
// Deliberately mis-orderable protocol knobs; at namespace scope so the
// store's declarations can default-construct it (a nested struct's member
// initializers are not complete until the enclosing class is).
struct CrashStoreOptions {
  // Commit before increment: used to demonstrate that the crash matrix
  // catches the stale-unseal bug.
  bool broken_commit_before_increment = false;
};

class CrashConsistentSealedStore {
 public:
  using Options = CrashStoreOptions;

  // Creates the backing monotonic counter (owner-authorized).
  static Result<CrashConsistentSealedStore> Create(TpmClient* tpm, const Bytes& counter_auth,
                                                   const Bytes& owner_secret,
                                                   const Options& options = Options());

  // Rebinds to an existing counter (the post-crash recovery path).
  CrashConsistentSealedStore(TpmClient* tpm, uint32_t counter_id, Bytes counter_auth,
                             const Options& options = Options());

  // Two-phase seal; on success the new version is committed and readable.
  // A PowerLossException can escape from any CRASH_POINT inside.
  Status Seal(const Bytes& data, const Bytes& release_pcr17, const Bytes& blob_auth);

  // Classifies the on-"disk" state after a crash and repairs it. Must be
  // called before UnsealLatest() after any reset.
  Result<RecoveryClass> Recover();

  // Unseals the committed blob and verifies its embedded version against the
  // live counter; kReplayDetected for stale data, error after fail-closed.
  Result<Bytes> UnsealLatest(const Bytes& blob_auth);

  uint32_t counter_id() const { return counter_id_; }
  bool has_committed() const { return committed_.has_value(); }
  bool has_staged() const { return staged_.has_value(); }
  uint64_t committed_version() const { return committed_ ? committed_->version : 0; }

  struct Snapshot {
    SealedBlob blob;
    uint64_t version = 0;
  };
  // Both "disk" slots as the untrusted OS sees them. Rollback-attack tests
  // copy the image before a later Seal and hand the stale copy back with
  // RestoreDiskForTest; Recover()/UnsealLatest() must then detect it.
  struct DiskImageForTest {
    std::optional<Snapshot> staged;
    std::optional<Snapshot> committed;
  };
  DiskImageForTest CaptureDiskForTest() const { return {staged_, committed_}; }
  void RestoreDiskForTest(DiskImageForTest image) {
    staged_ = std::move(image.staged);
    committed_ = std::move(image.committed);
  }

 private:
  TpmClient* tpm_;
  uint32_t counter_id_;
  Bytes counter_auth_;
  Options options_;

  // The untrusted OS's disk: both slots persist across machine resets.
  std::optional<Snapshot> staged_;
  std::optional<Snapshot> committed_;
  bool fail_closed_ = false;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CORE_SEALED_STATE_H_
