#include "src/core/remote_attestation.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#include "src/common/serde.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

Bytes SerializeQuote(const TpmQuote& quote) {
  Writer w;
  w.U32(quote.selection.mask());
  w.U32(static_cast<uint32_t>(quote.pcr_values.size()));
  for (const Bytes& value : quote.pcr_values) {
    w.Blob(value);
  }
  w.Blob(quote.nonce);
  w.Blob(quote.signature);
  return w.Take();
}

Result<TpmQuote> DeserializeQuote(const Bytes& data) {
  Reader r(data);
  TpmQuote quote;
  uint32_t mask = r.U32();
  for (int i = 0; i < kNumPcrs; ++i) {
    if ((mask >> i) & 1) {
      quote.selection.Select(i);
    }
  }
  uint32_t count = r.U32();
  if (count > static_cast<uint32_t>(kNumPcrs)) {
    return InvalidArgumentError("quote claims more PCR values than PCRs exist");
  }
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    quote.pcr_values.push_back(r.Blob());
  }
  quote.nonce = r.Blob();
  quote.signature = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt quote serialization");
  }
  return quote;
}

Bytes SerializeAttestationResponse(const AttestationResponse& response) {
  Writer w;
  w.Blob(SerializeQuote(response.quote));
  w.Blob(response.aik_public);
  return w.Take();
}

Result<AttestationResponse> DeserializeAttestationResponse(const Bytes& data) {
  if (data.size() > kMaxReplyWireBytes) {
    return InvalidArgumentError("attestation response exceeds wire bound");
  }
  Reader r(data);
  Bytes quote_wire = r.Blob();
  Bytes aik_public = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt attestation response");
  }
  Result<TpmQuote> quote = DeserializeQuote(quote_wire);
  if (!quote.ok()) {
    return quote.status();
  }
  AttestationResponse response;
  response.quote = quote.take();
  response.aik_public = aik_public;
  return response;
}

Bytes SerializeBatchQuoteResponse(const BatchQuoteResponse& response) {
  Writer w;
  w.Blob(response.nonce);
  w.Blob(SerializeAttestationResponse(response.response));
  w.Blob(response.path.Serialize());
  return w.Take();
}

Result<BatchQuoteResponse> DeserializeBatchQuoteResponse(const Bytes& data) {
  if (data.size() > kMaxReplyWireBytes) {
    return InvalidArgumentError("batch quote response exceeds wire bound");
  }
  Reader r(data);
  Bytes nonce = r.Blob();
  Bytes response_wire = r.Blob();
  Bytes path_wire = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt batch quote response");
  }
  if (nonce.size() > kMaxNonceBytes) {
    return InvalidArgumentError("batch quote nonce exceeds wire bound");
  }
  Result<AttestationResponse> inner = DeserializeAttestationResponse(response_wire);
  if (!inner.ok()) {
    return inner.status();
  }
  Result<MerkleAuthPath> path = MerkleAuthPath::Deserialize(path_wire);
  if (!path.ok()) {
    return path.status();
  }
  BatchQuoteResponse response;
  response.nonce = std::move(nonce);
  response.response = inner.take();
  response.path = path.take();
  return response;
}

Bytes SerializeAikCertificate(const AikCertificate& certificate) {
  Writer w;
  w.Blob(certificate.aik_public);
  w.Str(certificate.tpm_label);
  w.Blob(certificate.signature);
  return w.Take();
}

Result<AikCertificate> DeserializeAikCertificate(const Bytes& data) {
  Reader r(data);
  AikCertificate certificate;
  certificate.aik_public = r.Blob();
  certificate.tpm_label = r.Str();
  certificate.signature = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt AIK certificate serialization");
  }
  return certificate;
}

Bytes AttestationChallenge::Serialize() const {
  Writer w;
  w.Blob(nonce);
  w.U32(selection.mask());
  return w.Take();
}

Result<AttestationChallenge> AttestationChallenge::Deserialize(const Bytes& data) {
  Reader r(data);
  AttestationChallenge challenge;
  challenge.nonce = r.Blob();
  uint32_t mask = r.U32();
  for (int i = 0; i < kNumPcrs; ++i) {
    if ((mask >> i) & 1) {
      challenge.selection.Select(i);
    }
  }
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt attestation challenge");
  }
  return challenge;
}

Bytes AttestationReply::Serialize() const {
  Writer w;
  w.Blob(log.Serialize());
  w.Blob(SerializeQuote(quote));
  w.Blob(aik_public);
  w.Blob(SerializeAikCertificate(aik_certificate));
  return w.Take();
}

Result<AttestationReply> AttestationReply::Deserialize(const Bytes& data) {
  if (data.size() > kMaxReplyWireBytes) {
    return InvalidArgumentError("attestation reply exceeds wire bound");
  }
  Reader r(data);
  Bytes log_wire = r.Blob();
  Bytes quote_wire = r.Blob();
  Bytes aik_public = r.Blob();
  Bytes cert_wire = r.Blob();
  if (!r.ok() || !r.AtEnd()) {
    return InvalidArgumentError("corrupt attestation reply");
  }
  Result<FlickerEventLog> log = FlickerEventLog::Deserialize(log_wire);
  if (!log.ok()) {
    return log.status();
  }
  Result<TpmQuote> quote = DeserializeQuote(quote_wire);
  if (!quote.ok()) {
    return quote.status();
  }
  Result<AikCertificate> certificate = DeserializeAikCertificate(cert_wire);
  if (!certificate.ok()) {
    return certificate.status();
  }
  AttestationReply reply;
  reply.log = log.take();
  reply.quote = quote.take();
  reply.aik_public = aik_public;
  reply.aik_certificate = certificate.take();
  return reply;
}

AttestationService::AttestationService(FlickerPlatform* platform, AikCertificate aik_certificate,
                                       AttestationServiceOptions options)
    : platform_(platform), aik_certificate_(std::move(aik_certificate)), options_(options) {}

bool AttestationService::NonceSeen(const Bytes& nonce) const {
  for (const Bytes& seen : answered_nonces_) {
    if (seen == nonce) {
      return true;
    }
  }
  return false;
}

void AttestationService::RememberNonce(const Bytes& nonce) {
  if (options_.nonce_cache_capacity == 0) {
    return;
  }
  if (answered_nonces_.size() < options_.nonce_cache_capacity) {
    answered_nonces_.push_back(nonce);
    return;
  }
  answered_nonces_[answered_next_] = nonce;
  answered_next_ = (answered_next_ + 1) % options_.nonce_cache_capacity;
}

Result<Bytes> AttestationService::HandleChallenge(const Bytes& challenge_wire,
                                                  const PalBinary& binary, const Bytes& inputs,
                                                  const std::vector<Bytes>& pal_extends) {
  obs::ScopedSpan challenge_span("attest", "attest.handle_challenge");
  obs::Count(obs::Ctr::kAttestChallengesHandled);
  if (challenge_wire.size() > kMaxChallengeWireBytes) {
    return InvalidArgumentError("challenge exceeds wire bound");
  }
  Result<AttestationChallenge> challenge = AttestationChallenge::Deserialize(challenge_wire);
  if (!challenge.ok()) {
    return challenge.status();
  }
  if (challenge.value().nonce.empty() || challenge.value().nonce.size() > kMaxNonceBytes) {
    return InvalidArgumentError("challenge nonce size out of bounds");
  }
  if (options_.replay_protection && NonceSeen(challenge.value().nonce)) {
    ++replays_rejected_;
    obs::Count(obs::Ctr::kAttestReplaysRejected);
    obs::Instant("attest", "attest.replay_rejected");
    return ReplayDetectedError("challenge nonce already answered");
  }

  SlbCoreOptions options;
  options.nonce = challenge.value().nonce;
  Result<FlickerSessionResult> session = platform_->ExecuteSession(binary, inputs, options);
  if (!session.ok()) {
    return session.status();
  }
  if (!session.value().ok()) {
    return session.value().record.pal_status;
  }

  Result<AttestationResponse> response =
      platform_->tqd()->HandleChallenge(challenge.value().nonce, challenge.value().selection);
  if (!response.ok()) {
    return response.status();
  }

  AttestationReply reply;
  reply.log.pal_name = binary.pal->name();
  reply.log.claimed_measurement = binary.identity();
  reply.log.inputs = inputs;
  reply.log.outputs = session.value().outputs();
  reply.log.nonce = challenge.value().nonce;
  reply.log.pal_extends = pal_extends;
  reply.quote = response.value().quote;
  reply.aik_public = response.value().aik_public;
  reply.aik_certificate = aik_certificate_;
  // Only successfully-answered nonces enter the cache: a challenge that
  // failed (e.g. mid-session fault) may legitimately be retried verbatim.
  RememberNonce(challenge.value().nonce);
  return reply.Serialize();
}

AttestationVerifier::AttestationVerifier(const PalBinary* binary, RsaPublicKey privacy_ca_public,
                                         LateLaunchTech tech, uint64_t nonce_seed)
    : binary_(binary),
      privacy_ca_public_(std::move(privacy_ca_public)),
      tech_(tech),
      nonce_rng_(nonce_seed) {}

Bytes AttestationVerifier::MakeChallenge() {
  AttestationChallenge challenge;
  challenge.nonce = nonce_rng_.Generate(kPcrSize);
  challenge.selection.Select(kSkinitPcr);
  pending_nonce_ = challenge.nonce;
  return challenge.Serialize();
}

AttestationVerifier::Outcome AttestationVerifier::CheckReply(const Bytes& reply_wire) {
  Outcome outcome;
  if (pending_nonce_.empty()) {
    outcome.status = FailedPreconditionError("no outstanding challenge");
    return outcome;
  }
  Result<AttestationReply> reply = AttestationReply::Deserialize(reply_wire);
  if (!reply.ok()) {
    outcome.status = reply.status();
    return outcome;  // Wire noise, not a reply: the challenge stays open.
  }
  // Any well-formed reply consumes the outstanding nonce, accepted or not:
  // single use, fail closed. A rejected reply forces a fresh challenge
  // rather than leaving the old nonce alive for an attacker's second try.
  const Bytes expected = pending_nonce_;
  pending_nonce_.clear();

  Result<SessionExpectation> expectation = ExpectationFromLog(reply.value().log, *binary_, tech_);
  if (!expectation.ok()) {
    outcome.status = expectation.status();
    return outcome;
  }
  // The log's nonce must be the one we issued (the quote check would also
  // catch this, but fail early with a precise error). The test-only
  // vulnerable mode skips this and trusts whatever nonce the wire claims.
  if (!trust_wire_nonce_ && reply.value().log.nonce != expected) {
    outcome.status = ReplayDetectedError("reply log carries a different nonce");
    return outcome;
  }

  AttestationResponse response;
  response.quote = reply.value().quote;
  response.aik_public = reply.value().aik_public;
  const Bytes& expected_nonce = trust_wire_nonce_ ? reply.value().log.nonce : expected;
  outcome.status = VerifyAttestation(expectation.value(), response,
                                     reply.value().aik_certificate, privacy_ca_public_,
                                     expected_nonce);
  if (outcome.status.ok()) {
    outcome.log = reply.value().log;
  }
  return outcome;
}

}  // namespace flicker
