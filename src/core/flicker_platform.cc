#include "src/core/flicker_platform.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {

FlickerPlatform::FlickerPlatform(const FlickerPlatformConfig& config)
    : mode_(config.mode),
      machine_(config.machine),
      kernel_(&machine_, config.kernel),
      scheduler_(&machine_),
      module_(&machine_, &kernel_, &scheduler_),
      tqd_(&machine_, config.tqd),
      hv_(&machine_, config.hv) {
  machine_.set_measurement_engine(&measurement_cache_);
}

Status FlickerPlatform::EnsureHypervisorResident() {
  if (hv_.resident()) {
    return Status::Ok();
  }
  // The one-time launch is a classic SKINIT: park the APs around it, then
  // every core resumes under the hypervisor.
  FLICKER_RETURN_IF_ERROR(scheduler_.DescheduleAps());
  for (int cpu = 1; cpu < machine_.num_cpus(); ++cpu) {
    FLICKER_RETURN_IF_ERROR(machine_.apic()->SendInitIpi(cpu));
  }
  Status launched = hv_.LateLaunch();
  Status restored = scheduler_.RestoreAps();
  FLICKER_RETURN_IF_ERROR(launched);
  return restored;
}

Result<FlickerSessionResult> FlickerPlatform::ExecuteSession(const PalBinary& binary,
                                                             const Bytes& inputs,
                                                             const SlbCoreOptions& options) {
  FlickerSessionResult result;
  // Ids are assigned whether or not a tracer is installed, so a session's
  // identity is stable across traced and untraced runs of the same seed.
  result.session_id = ++sessions_started_;
  obs::Count(obs::Ctr::kFlickerSessions);
  obs::ScopedSession session_scope(result.session_id);
  obs::ScopedSpan session_span("core", "flicker.session");
  session_span.Arg("id", result.session_id);
  const uint64_t session_start_ns = obs::NowNs(machine_.clock());

  Result<FlickerSessionResult> completed =
      mode_ == SessionMode::kConcurrent
          ? ExecuteConcurrentSession(binary, inputs, options, std::move(result))
          : ExecuteClassicSession(binary, inputs, options, std::move(result));
  if (completed.ok()) {
    obs::ObserveMs(obs::Hist::kFlickerSessionTotalMs,
                   static_cast<double>(obs::NowNs(machine_.clock()) - session_start_ns) / 1e6);
  }
  return completed;
}

Result<FlickerSessionResult> FlickerPlatform::ExecuteClassicSession(
    const PalBinary& binary, const Bytes& inputs, const SlbCoreOptions& options,
    FlickerSessionResult result) {
  SimStopwatch total_watch(machine_.clock());

  // Untrusted staging via the sysfs interface.
  {
    obs::ScopedSpan stage_span("core", "platform.stage");
    FLICKER_RETURN_IF_ERROR(module_.WriteSlb(binary.image));
    FLICKER_RETURN_IF_ERROR(module_.WriteInputs(inputs));
  }

  SimStopwatch suspend_watch(machine_.clock());
  Result<SkinitLaunch> launch = [&]() {
    // AP parking, kernel state save and the SKINIT instruction itself; the
    // hw.skinit child span marks where suspend ends and the launch begins.
    obs::ScopedSpan suspend_span("core", "platform.suspend_skinit");
    return module_.StartSession();
  }();
  if (!launch.ok()) {
    return launch.status();
  }
  result.launch = launch.value();
  // StartSession covers both the suspend dance and SKINIT; attribute the
  // modeled SKINIT cost to skinit_ms and the remainder to suspend_ms.
  result.skinit_ms = machine_.timing().SkinitMillis(result.launch.slb_length);
  result.suspend_ms = suspend_watch.ElapsedMillis() - result.skinit_ms;
  if (result.suspend_ms < 0) {
    result.suspend_ms = 0;
  }

  Result<SessionRecord> record = SlbCore::Run(&machine_, result.launch, binary, options);
  if (!record.ok()) {
    // The platform is wedged mid-session; surface the error after forcing
    // the machine back to a sane state.
    machine_.Reboot();
    return record.status();
  }
  result.record = record.take();

  {
    obs::ScopedSpan resume_span("core", "platform.resume");
    FLICKER_RETURN_IF_ERROR(module_.FinishSession());
  }
  result.session_total_ms = total_watch.ElapsedMillis();
  // Classically the whole machine is suspended for the session's duration.
  result.os_pause_ms = result.session_total_ms;
  return result;
}

Result<FlickerSessionResult> FlickerPlatform::ExecuteConcurrentSession(
    const PalBinary& binary, const Bytes& inputs, const SlbCoreOptions& options,
    FlickerSessionResult result) {
  SimStopwatch total_watch(machine_.clock());
  const uint64_t pause_before_ns = hv_.stats().os_pause_ns;

  {
    obs::ScopedSpan stage_span("core", "platform.stage");
    FLICKER_RETURN_IF_ERROR(module_.WriteSlb(binary.image));
    FLICKER_RETURN_IF_ERROR(module_.WriteInputs(inputs));
  }

  FLICKER_RETURN_IF_ERROR(EnsureHypervisorResident());
  const uint64_t slot = hv_.FreeSlotBase();
  if (slot == 0) {
    return ResourceExhaustedError("no free hypervisor PAL slot");
  }
  FLICKER_RETURN_IF_ERROR(module_.StageForHypervisorAt(slot));

  Result<uint64_t> session_id = [&]() {
    obs::ScopedSpan start_span("core", "platform.hv_start_session");
    return hv_.HcStartSession(slot);
  }();
  if (!session_id.ok()) {
    return session_id.status();
  }
  result.hv_session_id = session_id.value();

  Result<SessionRecord> record = [&]() {
    obs::ScopedSpan run_span("core", "platform.hv_run_session");
    return hv_.RunSession(result.hv_session_id, binary, options);
  }();
  if (!record.ok()) {
    // The hypervisor already tore the session down; the OS never stopped.
    return record.status();
  }
  result.record = record.take();
  // The launch descriptor is what the hypervisor measured when it
  // protected the slot - the same fields SKINIT would have produced.
  if (const hv::HvSession* session = hv_.FindSession(result.hv_session_id)) {
    result.launch = session->launch;
  }

  {
    obs::ScopedSpan collect_span("core", "platform.hv_collect");
    FLICKER_RETURN_IF_ERROR(module_.CollectOutputsAt(slot));
    Result<Bytes> collected = hv_.HcCollectOutputs(result.hv_session_id);
    if (!collected.ok()) {
      return collected.status();
    }
  }

  result.skinit_ms = 0;   // No per-session SKINIT: that is the whole point.
  result.suspend_ms = 0;  // The OS was never suspended.
  result.session_total_ms = total_watch.ElapsedMillis();
  result.os_pause_ms =
      static_cast<double>(hv_.stats().os_pause_ns - pause_before_ns) / 1e6;
  return result;
}

}  // namespace flicker
