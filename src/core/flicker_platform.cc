#include "src/core/flicker_platform.h"

namespace flicker {

FlickerPlatform::FlickerPlatform(const FlickerPlatformConfig& config)
    : machine_(config.machine),
      kernel_(&machine_, config.kernel),
      scheduler_(&machine_),
      module_(&machine_, &kernel_, &scheduler_),
      tqd_(&machine_) {
  machine_.set_measurement_engine(&measurement_cache_);
}

Result<FlickerSessionResult> FlickerPlatform::ExecuteSession(const PalBinary& binary,
                                                             const Bytes& inputs,
                                                             const SlbCoreOptions& options) {
  FlickerSessionResult result;
  SimStopwatch total_watch(machine_.clock());

  // Untrusted staging via the sysfs interface.
  FLICKER_RETURN_IF_ERROR(module_.WriteSlb(binary.image));
  FLICKER_RETURN_IF_ERROR(module_.WriteInputs(inputs));

  SimStopwatch suspend_watch(machine_.clock());
  Result<SkinitLaunch> launch = module_.StartSession();
  if (!launch.ok()) {
    return launch.status();
  }
  result.launch = launch.value();
  // StartSession covers both the suspend dance and SKINIT; attribute the
  // modeled SKINIT cost to skinit_ms and the remainder to suspend_ms.
  result.skinit_ms = machine_.timing().SkinitMillis(result.launch.slb_length);
  result.suspend_ms = suspend_watch.ElapsedMillis() - result.skinit_ms;
  if (result.suspend_ms < 0) {
    result.suspend_ms = 0;
  }

  Result<SessionRecord> record = SlbCore::Run(&machine_, result.launch, binary, options);
  if (!record.ok()) {
    // The platform is wedged mid-session; surface the error after forcing
    // the machine back to a sane state.
    machine_.Reboot();
    return record.status();
  }
  result.record = record.take();

  FLICKER_RETURN_IF_ERROR(module_.FinishSession());
  result.session_total_ms = total_watch.ElapsedMillis();
  return result;
}

}  // namespace flicker
