#include "src/core/flicker_platform.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {

FlickerPlatform::FlickerPlatform(const FlickerPlatformConfig& config)
    : machine_(config.machine),
      kernel_(&machine_, config.kernel),
      scheduler_(&machine_),
      module_(&machine_, &kernel_, &scheduler_),
      tqd_(&machine_, config.tqd) {
  machine_.set_measurement_engine(&measurement_cache_);
}

Result<FlickerSessionResult> FlickerPlatform::ExecuteSession(const PalBinary& binary,
                                                             const Bytes& inputs,
                                                             const SlbCoreOptions& options) {
  FlickerSessionResult result;
  // Ids are assigned whether or not a tracer is installed, so a session's
  // identity is stable across traced and untraced runs of the same seed.
  result.session_id = ++sessions_started_;
  obs::Count(obs::Ctr::kFlickerSessions);
  obs::ScopedSession session_scope(result.session_id);
  obs::ScopedSpan session_span("core", "flicker.session");
  session_span.Arg("id", result.session_id);
  const uint64_t session_start_ns = obs::NowNs(machine_.clock());
  SimStopwatch total_watch(machine_.clock());

  // Untrusted staging via the sysfs interface.
  {
    obs::ScopedSpan stage_span("core", "platform.stage");
    FLICKER_RETURN_IF_ERROR(module_.WriteSlb(binary.image));
    FLICKER_RETURN_IF_ERROR(module_.WriteInputs(inputs));
  }

  SimStopwatch suspend_watch(machine_.clock());
  Result<SkinitLaunch> launch = [&]() {
    // AP parking, kernel state save and the SKINIT instruction itself; the
    // hw.skinit child span marks where suspend ends and the launch begins.
    obs::ScopedSpan suspend_span("core", "platform.suspend_skinit");
    return module_.StartSession();
  }();
  if (!launch.ok()) {
    return launch.status();
  }
  result.launch = launch.value();
  // StartSession covers both the suspend dance and SKINIT; attribute the
  // modeled SKINIT cost to skinit_ms and the remainder to suspend_ms.
  result.skinit_ms = machine_.timing().SkinitMillis(result.launch.slb_length);
  result.suspend_ms = suspend_watch.ElapsedMillis() - result.skinit_ms;
  if (result.suspend_ms < 0) {
    result.suspend_ms = 0;
  }

  Result<SessionRecord> record = SlbCore::Run(&machine_, result.launch, binary, options);
  if (!record.ok()) {
    // The platform is wedged mid-session; surface the error after forcing
    // the machine back to a sane state.
    machine_.Reboot();
    return record.status();
  }
  result.record = record.take();

  {
    obs::ScopedSpan resume_span("core", "platform.resume");
    FLICKER_RETURN_IF_ERROR(module_.FinishSession());
  }
  result.session_total_ms = total_watch.ElapsedMillis();
  obs::ObserveMs(obs::Hist::kFlickerSessionTotalMs,
                 static_cast<double>(obs::NowNs(machine_.clock()) - session_start_ns) / 1e6);
  return result;
}

}  // namespace flicker
