// The Secure Channel PAL module (paper §4.4.2, Fig. 6).
//
// Session 1 (inside a Flicker session): generate an RSA keypair, seal the
// private key to this PAL's own in-execution PCR 17 value, output the public
// key. An attestation over that output convinces a remote party that only
// this PAL, re-launched under Flicker, can ever use the private key.
// Session 2: unseal the private key and decrypt what the remote party sent.

#ifndef FLICKER_SRC_CORE_SECURE_CHANNEL_H_
#define FLICKER_SRC_CORE_SECURE_CHANNEL_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/rsa.h"
#include "src/slb/pal.h"
#include "src/tpm/structures.h"

namespace flicker {

struct SecureChannelKeyMaterial {
  Bytes public_key;          // Serialized RsaPublicKey (K_PAL).
  Bytes sealed_private_key;  // SealedBlob ciphertext, kept by untrusted code.

  Bytes Serialize() const;
  static Result<SecureChannelKeyMaterial> Deserialize(const Bytes& data);
};

class SecureChannelModule {
 public:
  // Session-1 body. Charges the 1024-bit key-generation cost (the dominant
  // CPU cost in Fig. 9a) and the TPM Seal. The private key is sealed to the
  // *current* PCR 17, i.e., to a future session of the same PAL.
  static Result<SecureChannelKeyMaterial> GenerateAndSeal(PalContext* context,
                                                          const Bytes& blob_auth);

  // Session-2 body: recover the private key (TPM Unseal; the dominant cost
  // in Fig. 9b).
  static Result<RsaPrivateKey> UnsealPrivateKey(PalContext* context,
                                                const Bytes& sealed_private_key,
                                                const Bytes& blob_auth);

  // Session-2 body: PKCS#1 decrypt with the recovered key (charged at the
  // paper's 4.6 ms).
  static Result<Bytes> Decrypt(PalContext* context, const RsaPrivateKey& key,
                               const Bytes& ciphertext);
};

// Remote-party side: encrypt a message under an attested PAL public key.
Result<Bytes> SecureChannelEncrypt(const Bytes& serialized_public_key, const Bytes& message,
                                   Drbg* rng);

}  // namespace flicker

#endif  // FLICKER_SRC_CORE_SECURE_CHANNEL_H_
