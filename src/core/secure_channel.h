// The Secure Channel PAL module (paper §4.4.2, Fig. 6).
//
// Session 1 (inside a Flicker session): generate an RSA keypair, seal the
// private key to this PAL's own in-execution PCR 17 value, output the public
// key. An attestation over that output convinces a remote party that only
// this PAL, re-launched under Flicker, can ever use the private key.
// Session 2: unseal the private key and decrypt what the remote party sent.

#ifndef FLICKER_SRC_CORE_SECURE_CHANNEL_H_
#define FLICKER_SRC_CORE_SECURE_CHANNEL_H_

#include <map>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/rsa.h"
#include "src/hw/clock.h"
#include "src/net/session.h"
#include "src/slb/pal.h"
#include "src/tpm/structures.h"

namespace flicker {

struct SecureChannelKeyMaterial {
  Bytes public_key;          // Serialized RsaPublicKey (K_PAL).
  Bytes sealed_private_key;  // SealedBlob ciphertext, kept by untrusted code.

  Bytes Serialize() const;
  static Result<SecureChannelKeyMaterial> Deserialize(const Bytes& data);
};

class SecureChannelModule {
 public:
  // Session-1 body. Charges the 1024-bit key-generation cost (the dominant
  // CPU cost in Fig. 9a) and the TPM Seal. The private key is sealed to the
  // *current* PCR 17, i.e., to a future session of the same PAL.
  static Result<SecureChannelKeyMaterial> GenerateAndSeal(PalContext* context,
                                                          const Bytes& blob_auth);

  // Session-2 body: recover the private key (TPM Unseal; the dominant cost
  // in Fig. 9b).
  static Result<RsaPrivateKey> UnsealPrivateKey(PalContext* context,
                                                const Bytes& sealed_private_key,
                                                const Bytes& blob_auth);

  // Session-2 body: PKCS#1 decrypt with the recovered key (charged at the
  // paper's 4.6 ms).
  static Result<Bytes> Decrypt(PalContext* context, const RsaPrivateKey& key,
                               const Bytes& ciphertext);
};

// Remote-party side: encrypt a message under an attested PAL public key.
Result<Bytes> SecureChannelEncrypt(const Bytes& serialized_public_key, const Bytes& message,
                                   Drbg* rng);

// ---- Attested-session cache (quote amortization, paper §6 SSH design) ----
//
// One verified quote is expensive (a full TPM Quote plus RSA verify); the
// trust it establishes is durable for as long as the attested key stays
// sealed to the PAL. So after a challenger verifies one (batch) quote over
// the secure-channel public key, it ships a fresh session key under K_PAL
// (SecureChannelEncrypt) and both ends register it here. Until the session
// expires or its use budget runs out, attestation traffic rides HMAC-keyed
// AuthedFrames (net/session.h) and never touches the TPM.

struct AttestedSessionConfig {
  double ttl_ms = 60000.0;   // Simulated lifetime from establishment.
  uint64_t max_uses = 1024;  // Frames sealed+opened before re-attestation.
  size_t capacity = 64;      // Live sessions; oldest evicted beyond this.
};

class AttestedSessionCache {
 public:
  explicit AttestedSessionCache(SimClock* clock,
                                AttestedSessionConfig config = AttestedSessionConfig())
      : clock_(clock), config_(config) {}

  // Registers a session around the secret both ends derived from one
  // verified quote. `is_initiator` names this side's role (the challenger
  // that established the session is the initiator on its end).
  uint64_t Establish(const Bytes& session_key, bool is_initiator);

  // Seals a payload under a live session with this side's next counter.
  // A dead session is a kNotFound miss: re-attest and re-establish.
  Result<AuthedFrame> Seal(uint64_t session_id, const Bytes& payload);

  // Authenticates one inbound frame. An unknown, expired, or exhausted
  // session is a kNotFound miss - the caller falls back to a fresh TPM
  // quote. A bad MAC or replayed counter on a LIVE session is a hard
  // integrity failure, never a silent fallback.
  Result<Bytes> Open(const AuthedFrame& frame);

  size_t live_sessions() const { return sessions_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    MacSessionEndpoint endpoint;
    uint64_t established_at_us = 0;
  };

  // Finds a live entry, retiring it first if TTL or use budget expired.
  // Returns nullptr (and counts the miss) when nothing usable remains.
  Entry* Lookup(uint64_t session_id);

  SimClock* clock_;
  AttestedSessionConfig config_;
  std::map<uint64_t, Entry> sessions_;
  uint64_t next_id_ = 1;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CORE_SECURE_CHANNEL_H_
