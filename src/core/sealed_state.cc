#include "src/core/sealed_state.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#include "src/common/fault.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

Result<SealedBlob> SealForPal(TpmClient* tpm, const Bytes& data, const Bytes& release_pcr17,
                              const Bytes& blob_auth) {
  if (release_pcr17.size() != kPcrSize) {
    return InvalidArgumentError("release PCR 17 value must be 20 bytes");
  }
  PcrSelection selection({kSkinitPcr});
  std::map<int, Bytes> release = {{kSkinitPcr, release_pcr17}};
  return TpmSealData(tpm, data, selection, release, blob_auth);
}

Result<Bytes> UnsealInPal(TpmClient* tpm, const SealedBlob& blob, const Bytes& blob_auth) {
  return TpmUnsealData(tpm, blob, blob_auth);
}

Result<ReplayProtectedStorage> ReplayProtectedStorage::Create(TpmClient* tpm, const Bytes& counter_auth,
                                                              const Bytes& owner_secret) {
  Result<uint32_t> id = TpmCreateCounter(tpm, counter_auth, owner_secret);
  if (!id.ok()) {
    return id.status();
  }
  return ReplayProtectedStorage(tpm, id.value(), counter_auth);
}

ReplayProtectedStorage::ReplayProtectedStorage(TpmClient* tpm, uint32_t counter_id, Bytes counter_auth)
    : tpm_(tpm), counter_id_(counter_id), counter_auth_(std::move(counter_auth)) {}

Result<SealedBlob> ReplayProtectedStorage::Seal(const Bytes& data, const Bytes& release_pcr17,
                                                const Bytes& blob_auth) {
  Result<uint64_t> version = tpm_->IncrementCounter(counter_id_, counter_auth_);
  if (!version.ok()) {
    return version.status();
  }
  Bytes payload;
  PutUint64(&payload, version.value());
  payload.insert(payload.end(), data.begin(), data.end());
  return SealForPal(tpm_, payload, release_pcr17, blob_auth);
}

Result<Bytes> ReplayProtectedStorage::Unseal(const SealedBlob& blob, const Bytes& blob_auth) {
  Result<Bytes> payload = UnsealInPal(tpm_, blob, blob_auth);
  if (!payload.ok()) {
    return payload.status();
  }
  if (payload.value().size() < 8) {
    return IntegrityFailureError("replay-protected blob missing version field");
  }
  uint64_t sealed_version = GetUint64(payload.value(), 0);
  Result<uint64_t> live = tpm_->ReadCounter(counter_id_);
  if (!live.ok()) {
    return live.status();
  }
  if (sealed_version != live.value()) {
    return ReplayDetectedError("sealed blob version is stale (counter advanced)");
  }
  return Bytes(payload.value().begin() + 8, payload.value().end());
}

Result<NvReplayProtectedStorage> NvReplayProtectedStorage::Provision(TpmClient* tpm, uint32_t nv_index,
                                                                     const Bytes& pal_pcr17,
                                                                     const Bytes& owner_secret) {
  PcrSelection gate({kSkinitPcr});
  std::map<int, Bytes> values = {{kSkinitPcr, pal_pcr17}};
  FLICKER_RETURN_IF_ERROR(
      TpmDefineNvSpace(tpm, nv_index, 8, gate, values, gate, values, owner_secret));
  return NvReplayProtectedStorage(tpm, nv_index);
}

NvReplayProtectedStorage::NvReplayProtectedStorage(TpmClient* tpm, uint32_t nv_index)
    : tpm_(tpm), nv_index_(nv_index) {}

Result<uint64_t> NvReplayProtectedStorage::ReadCounter() {
  Result<Bytes> raw = tpm_->NvRead(nv_index_);
  if (!raw.ok()) {
    return raw.status();
  }
  if (raw.value().empty()) {
    return uint64_t{0};  // Freshly provisioned space.
  }
  if (raw.value().size() != 8) {
    return IntegrityFailureError("NV counter has unexpected size");
  }
  return GetUint64(raw.value(), 0);
}

Result<SealedBlob> NvReplayProtectedStorage::Seal(const Bytes& data, const Bytes& release_pcr17,
                                                  const Bytes& blob_auth) {
  Result<uint64_t> current = ReadCounter();
  if (!current.ok()) {
    return current.status();
  }
  uint64_t next = current.value() + 1;
  Bytes encoded;
  PutUint64(&encoded, next);
  FLICKER_RETURN_IF_ERROR(tpm_->NvWrite(nv_index_, encoded));

  Bytes payload;
  PutUint64(&payload, next);
  payload.insert(payload.end(), data.begin(), data.end());
  return SealForPal(tpm_, payload, release_pcr17, blob_auth);
}

Result<Bytes> NvReplayProtectedStorage::Unseal(const SealedBlob& blob, const Bytes& blob_auth) {
  Result<Bytes> payload = UnsealInPal(tpm_, blob, blob_auth);
  if (!payload.ok()) {
    return payload.status();
  }
  if (payload.value().size() < 8) {
    return IntegrityFailureError("replay-protected blob missing version field");
  }
  uint64_t sealed_version = GetUint64(payload.value(), 0);
  Result<uint64_t> live = ReadCounter();
  if (!live.ok()) {
    return live.status();
  }
  if (sealed_version != live.value()) {
    return ReplayDetectedError(
        "sealed blob version does not match the NV counter (stale blob or crash desync)");
  }
  return Bytes(payload.value().begin() + 8, payload.value().end());
}

// ---- CrashConsistentSealedStore ----

Result<CrashConsistentSealedStore> CrashConsistentSealedStore::Create(
    TpmClient* tpm, const Bytes& counter_auth, const Bytes& owner_secret, const Options& options) {
  Result<uint32_t> id = TpmCreateCounter(tpm, counter_auth, owner_secret);
  if (!id.ok()) {
    return id.status();
  }
  return CrashConsistentSealedStore(tpm, id.value(), counter_auth, options);
}

CrashConsistentSealedStore::CrashConsistentSealedStore(TpmClient* tpm, uint32_t counter_id,
                                                       Bytes counter_auth, const Options& options)
    : tpm_(tpm),
      counter_id_(counter_id),
      counter_auth_(std::move(counter_auth)),
      options_(options) {}

Status CrashConsistentSealedStore::Seal(const Bytes& data, const Bytes& release_pcr17,
                                        const Bytes& blob_auth) {
  obs::ScopedSpan seal_span("seal", "seal.two_phase");
  if (fail_closed_) {
    return IntegrityFailureError("store failed closed; refusing further seals");
  }
  Result<uint64_t> current = tpm_->ReadCounter(counter_id_);
  if (!current.ok()) {
    return current.status();
  }
  const uint64_t version = current.value() + 1;
  Bytes payload;
  PutUint64(&payload, version);
  payload.insert(payload.end(), data.begin(), data.end());
  Result<SealedBlob> blob = SealForPal(tpm_, payload, release_pcr17, blob_auth);
  if (!blob.ok()) {
    return blob.status();
  }

  // Phase 1: stage. The staged blob's version is ahead of the counter, so a
  // crash here leaves nothing unsealable.
  staged_ = Snapshot{blob.take(), version};
  CRASH_POINT("seal.staged");

  if (options_.broken_commit_before_increment) {
    // The bug the matrix must catch: committing first means a crash before
    // the increment leaves a committed blob whose version the counter never
    // reaches - and the previously committed (stale) data already replaced.
    committed_ = staged_;
    CRASH_POINT("seal.committed");
    Result<uint64_t> bumped = tpm_->IncrementCounter(counter_id_, counter_auth_);
    if (!bumped.ok()) {
      return bumped.status();
    }
    CRASH_POINT("seal.incremented");
    staged_.reset();
    return Status::Ok();
  }

  // Phase 2: the counter increment is the atomic commit point.
  Result<uint64_t> bumped = tpm_->IncrementCounter(counter_id_, counter_auth_);
  if (!bumped.ok()) {
    return bumped.status();
  }
  CRASH_POINT("seal.incremented");

  // Phase 3: publish. A crash between increment and here is repaired by
  // Recover() rolling the staged snapshot forward.
  committed_ = staged_;
  CRASH_POINT("seal.committed");
  staged_.reset();
  return Status::Ok();
}

Result<RecoveryClass> CrashConsistentSealedStore::Recover() {
  obs::ScopedSpan recover_span("seal", "seal.recover");
  Result<uint64_t> live = tpm_->ReadCounter(counter_id_);
  if (!live.ok()) {
    return live.status();
  }
  if (!staged_.has_value()) {
    obs::Count(obs::Ctr::kSealRecoverClean);
    return RecoveryClass::kClean;
  }
  const uint64_t staged_version = staged_->version;
  if (staged_version == live.value() + 1) {
    // Crash before the increment: the seal never committed. A second crash
    // here leaves the staged orphan in place; the next Recover() reclassifies
    // it identically, so discarding is idempotent.
    CRASH_POINT("seal.recover.discard");
    staged_.reset();
    obs::Count(obs::Ctr::kSealRecoverDiscardedStaged);
    return RecoveryClass::kDiscardedStaged;
  }
  if (staged_version == live.value()) {
    // Increment landed, publish didn't: the staged snapshot is the only
    // blob the counter will accept - roll it forward. The promote is written
    // committed-first so a crash between the two writes leaves both slots
    // holding the same version and the next Recover() re-promotes.
    committed_ = staged_;
    CRASH_POINT("seal.recover.promote");
    staged_.reset();
    obs::Count(obs::Ctr::kSealRecoverRolledForward);
    return RecoveryClass::kRolledForward;
  }
  if (staged_version < live.value()) {
    // Orphan from an older crash; the committed blob is newer.
    CRASH_POINT("seal.recover.discard");
    staged_.reset();
    obs::Count(obs::Ctr::kSealRecoverDiscardedStaged);
    return RecoveryClass::kDiscardedStaged;
  }
  // staged_version > live + 1: the protocol cannot produce this. Serve
  // nothing rather than guess which state is real.
  fail_closed_ = true;
  obs::Count(obs::Ctr::kSealRecoverFailClosed);
  obs::Instant("seal", "seal.fail_closed");
  return RecoveryClass::kFailClosed;
}

Result<Bytes> CrashConsistentSealedStore::UnsealLatest(const Bytes& blob_auth) {
  if (fail_closed_) {
    return IntegrityFailureError("store failed closed during recovery");
  }
  if (!committed_.has_value()) {
    return NotFoundError("no committed sealed state");
  }
  Result<Bytes> payload = UnsealInPal(tpm_, committed_->blob, blob_auth);
  if (!payload.ok()) {
    return payload.status();
  }
  if (payload.value().size() < 8) {
    return IntegrityFailureError("sealed snapshot missing version field");
  }
  uint64_t sealed_version = GetUint64(payload.value(), 0);
  Result<uint64_t> live = tpm_->ReadCounter(counter_id_);
  if (!live.ok()) {
    return live.status();
  }
  if (sealed_version != live.value()) {
    return ReplayDetectedError("committed sealed state is stale (version/counter mismatch)");
  }
  return Bytes(payload.value().begin() + 8, payload.value().end());
}

}  // namespace flicker
