// FlickerPlatform: the top-level runtime tying the whole stack together.
//
// One object owns the simulated machine, the untrusted OS (kernel,
// scheduler, flicker-module, quote daemon) and exposes the paper's Fig. 2
// session lifecycle as a single call:
//
//   FlickerPlatform platform;
//   auto binary = BuildPal(std::make_shared<MyPal>(), options);
//   auto result = platform.ExecuteSession(binary.value(), inputs);
//
// ExecuteSession = stage SLB + inputs -> suspend OS -> SKINIT -> SLB core
// (PAL, cleanup, extends) -> resume OS -> collect outputs, with a per-phase
// simulated-time breakdown benches print directly.

#ifndef FLICKER_SRC_CORE_FLICKER_PLATFORM_H_
#define FLICKER_SRC_CORE_FLICKER_PLATFORM_H_

#include <cstdint>
#include <memory>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hv/hypervisor.h"
#include "src/hw/machine.h"
#include "src/os/flicker_module.h"
#include "src/os/kernel.h"
#include "src/os/scheduler.h"
#include "src/os/tqd.h"
#include "src/slb/measurement_cache.h"
#include "src/slb/slb_core.h"
#include "src/slb/slb_layout.h"

namespace flicker {

// How ExecuteSession runs a PAL. Classic is the paper's Fig. 2 lifecycle
// (suspend OS, SKINIT, resume); concurrent is the §9 future-work mode where
// a resident minimal hypervisor pins the PAL to one core while the OS keeps
// running on the rest.
enum class SessionMode {
  kClassic,
  kConcurrent,
};

struct FlickerPlatformConfig {
  MachineConfig machine;
  KernelConfig kernel;
  TqdConfig tqd;
  SessionMode mode = SessionMode::kClassic;
  hv::HvConfig hv;
};

// Everything a completed session yields, including the timing breakdown the
// evaluation tables report.
struct FlickerSessionResult {
  uint64_t session_id = 0;       // Monotonic platform-assigned id (1-based).
  SessionRecord record;          // PAL status, outputs, PCR values, in-session timings.
  SkinitLaunch launch;           // What SKINIT measured.
  double suspend_ms = 0;         // AP deschedule + INIT IPIs + state save.
  double skinit_ms = 0;          // The SKINIT instruction itself.
  double session_total_ms = 0;   // Suspend through resume.
  // Simulated time the OS was actually paused: the whole session in classic
  // mode, only the hypercall/world-switch slivers in concurrent mode.
  double os_pause_ms = 0;
  uint64_t hv_session_id = 0;    // Hypervisor session id (concurrent mode only).

  const Bytes& outputs() const { return record.outputs; }
  bool ok() const { return record.pal_status.ok(); }
};

class FlickerPlatform {
 public:
  explicit FlickerPlatform(const FlickerPlatformConfig& config = FlickerPlatformConfig());

  Machine* machine() { return &machine_; }
  SlbMeasurementCache* measurement_cache() { return &measurement_cache_; }
  OsKernel* kernel() { return &kernel_; }
  Scheduler* scheduler() { return &scheduler_; }
  FlickerModule* flicker_module() { return &module_; }
  TpmQuoteDaemon* tqd() { return &tqd_; }
  TpmClient* tpm() { return machine_.tpm(); }
  SimClock* clock() { return machine_.clock(); }
  hv::Hypervisor* hypervisor() { return &hv_; }
  SessionMode mode() const { return mode_; }

  // Concurrent mode: late-launches the hypervisor if it is not resident
  // (first session after boot or after any reset). The one-time launch
  // parks the APs around SKINIT, then the OS resumes on every core.
  Status EnsureHypervisorResident();

  // Runs one full Flicker session for `binary` with `inputs`. `options`
  // carries the attestation nonce (extended into PCR 17 when present).
  Result<FlickerSessionResult> ExecuteSession(const PalBinary& binary, const Bytes& inputs,
                                              const SlbCoreOptions& options = SlbCoreOptions());

  // Count of sessions this platform has started (successful or not), which
  // is also the id of the most recently started session: ids are 1-based
  // and assigned in start order, so session k is the k-th ever started and
  // the next one will get sessions_started() + 1.
  uint64_t sessions_started() const { return sessions_started_; }

 private:
  Result<FlickerSessionResult> ExecuteClassicSession(const PalBinary& binary, const Bytes& inputs,
                                                     const SlbCoreOptions& options,
                                                     FlickerSessionResult result);
  Result<FlickerSessionResult> ExecuteConcurrentSession(const PalBinary& binary,
                                                        const Bytes& inputs,
                                                        const SlbCoreOptions& options,
                                                        FlickerSessionResult result);

  uint64_t sessions_started_ = 0;
  SessionMode mode_;
  Machine machine_;
  SlbMeasurementCache measurement_cache_;
  OsKernel kernel_;
  Scheduler scheduler_;
  FlickerModule module_;
  TpmQuoteDaemon tqd_;
  hv::Hypervisor hv_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CORE_FLICKER_PLATFORM_H_
