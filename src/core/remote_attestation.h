// Wire-level remote attestation (paper §4.4.1): the challenge/response
// protocol between a verifier and a Flicker platform, with full
// serialization so both ends exchange only byte strings over a Channel.
//
//   verifier                         challenged platform
//     |--- AttestationChallenge --------->|   (nonce, PCR selection)
//     |                                   | run PAL session w/ nonce
//     |<-- AttestationReply --------------|   (event log, quote, AIK cert)
//     | verify cert chain, quote sig,     |
//     | PCR 17 chain vs own PAL build     |
//
// RootkitMonitor, the SSH client and the BOINC server are applications of
// this pattern; this module packages it as a reusable API.

#ifndef FLICKER_SRC_CORE_REMOTE_ATTESTATION_H_
#define FLICKER_SRC_CORE_REMOTE_ATTESTATION_H_

#include "src/attest/event_log.h"
#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/net/channel.h"

namespace flicker {

// Wire-size bounds: every inbound frame is hostile until proven otherwise,
// so deserializers refuse anything outside these envelopes before parsing.
inline constexpr size_t kMaxChallengeWireBytes = 4096;
inline constexpr size_t kMaxReplyWireBytes = 1u << 20;
inline constexpr size_t kMaxNonceBytes = 64;

// Serialization for the TPM structures that cross the wire.
Bytes SerializeQuote(const TpmQuote& quote);
Result<TpmQuote> DeserializeQuote(const Bytes& data);
Bytes SerializeAikCertificate(const AikCertificate& certificate);
Result<AikCertificate> DeserializeAikCertificate(const Bytes& data);
// The tqd's quote+AIK bundle, for protocols (e.g. BOINC submissions) that
// ship it inside their own frames.
Bytes SerializeAttestationResponse(const AttestationResponse& response);
Result<AttestationResponse> DeserializeAttestationResponse(const Bytes& data);
// One challenger's slice of a batch quote: nonce, shared quote+AIK bundle,
// Merkle auth path (DESIGN.md §12 documents the frame layout).
Bytes SerializeBatchQuoteResponse(const BatchQuoteResponse& response);
Result<BatchQuoteResponse> DeserializeBatchQuoteResponse(const Bytes& data);

struct AttestationChallenge {
  Bytes nonce;
  PcrSelection selection;

  Bytes Serialize() const;
  static Result<AttestationChallenge> Deserialize(const Bytes& data);
};

struct AttestationReply {
  FlickerEventLog log;   // Untrusted session claims.
  TpmQuote quote;        // TPM-signed PCR state.
  Bytes aik_public;      // Serialized AIK public key.
  AikCertificate aik_certificate;

  Bytes Serialize() const;
  static Result<AttestationReply> Deserialize(const Bytes& data);
};

struct AttestationServiceOptions {
  // At-most-once challenge handling: a nonce the service already answered
  // is refused (kReplayDetected) instead of burning another PAL session.
  // Disabled only by tests demonstrating why the cache must exist.
  bool replay_protection = true;
  size_t nonce_cache_capacity = 128;
};

// Host side: runs `binary` with `inputs` under the challenge's nonce, then
// assembles the full reply (session I/O in the event log, fresh quote, the
// platform's AIK certificate). `pal_extends` lists measurements the PAL
// extends itself (application-specific; e.g. the rootkit detector's kernel
// hash equals its outputs).
//
// Every inbound challenge is hostile: the wire is length-bounded, the nonce
// size-checked, and duplicates (a replayed or wire-duplicated challenge
// frame) answered with kReplayDetected exactly once each.
class AttestationService {
 public:
  AttestationService(FlickerPlatform* platform, AikCertificate aik_certificate,
                     AttestationServiceOptions options = AttestationServiceOptions());

  Result<Bytes> HandleChallenge(const Bytes& challenge_wire, const PalBinary& binary,
                                const Bytes& inputs,
                                const std::vector<Bytes>& pal_extends = {});

  uint64_t replays_rejected() const { return replays_rejected_; }

 private:
  bool NonceSeen(const Bytes& nonce) const;
  void RememberNonce(const Bytes& nonce);

  FlickerPlatform* platform_;
  AikCertificate aik_certificate_;
  AttestationServiceOptions options_;
  std::vector<Bytes> answered_nonces_;  // FIFO ring, bounded by the cache capacity.
  size_t answered_next_ = 0;
  uint64_t replays_rejected_ = 0;
};

// Verifier side: issues challenges and checks replies against its own
// (authoritative) copy of the PAL binary. A reply is accepted only when its
// nonce matches the outstanding challenge - anything stale, replayed or
// forged fails closed.
class AttestationVerifier {
 public:
  AttestationVerifier(const PalBinary* binary, RsaPublicKey privacy_ca_public,
                      LateLaunchTech tech = LateLaunchTech::kAmdSvm, uint64_t nonce_seed = 0xa77);

  // Builds a fresh challenge; remembers the nonce for the next CheckReply.
  Bytes MakeChallenge();

  struct Outcome {
    Status status;       // OK iff everything verified.
    FlickerEventLog log; // The (now-trustworthy) session facts.
  };
  Outcome CheckReply(const Bytes& reply_wire);

  // DELIBERATELY VULNERABLE mode for negative chaos tests: verify against
  // whatever nonce the reply itself claims instead of the outstanding
  // challenge. A replayed old-but-genuine reply then verifies "fine" - the
  // chaos matrix must catch this variant accepting stale answers.
  void set_trust_wire_nonce_for_testing(bool trust) { trust_wire_nonce_ = trust; }

 private:
  const PalBinary* binary_;
  RsaPublicKey privacy_ca_public_;
  LateLaunchTech tech_;
  Drbg nonce_rng_;
  Bytes pending_nonce_;
  bool trust_wire_nonce_ = false;
};

}  // namespace flicker

#endif  // FLICKER_SRC_CORE_REMOTE_ATTESTATION_H_
