#include "src/core/secure_channel.h"

#include "src/core/sealed_state.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

Bytes SecureChannelKeyMaterial::Serialize() const {
  Bytes out;
  PutUint32(&out, static_cast<uint32_t>(public_key.size()));
  out.insert(out.end(), public_key.begin(), public_key.end());
  PutUint32(&out, static_cast<uint32_t>(sealed_private_key.size()));
  out.insert(out.end(), sealed_private_key.begin(), sealed_private_key.end());
  return out;
}

Result<SecureChannelKeyMaterial> SecureChannelKeyMaterial::Deserialize(const Bytes& data) {
  SecureChannelKeyMaterial material;
  size_t pos = 0;
  if (data.size() < 4) {
    return InvalidArgumentError("key material truncated");
  }
  uint32_t pub_len = GetUint32(data, pos);
  pos += 4;
  if (pos + pub_len + 4 > data.size()) {
    return InvalidArgumentError("key material truncated");
  }
  material.public_key.assign(data.begin() + static_cast<long>(pos),
                             data.begin() + static_cast<long>(pos + pub_len));
  pos += pub_len;
  uint32_t sealed_len = GetUint32(data, pos);
  pos += 4;
  if (pos + sealed_len != data.size()) {
    return InvalidArgumentError("key material truncated");
  }
  material.sealed_private_key.assign(data.begin() + static_cast<long>(pos), data.end());
  return material;
}

Result<SecureChannelKeyMaterial> SecureChannelModule::GenerateAndSeal(PalContext* context,
                                                                      const Bytes& blob_auth) {
  // Seed key generation from the TPM's RNG (the paper pulls 128 bytes via
  // TPM_GetRandom to seed a PRNG).
  Bytes seed = context->tpm()->GetRandom(128);
  Drbg rng(seed);
  context->ChargeRsaKeygen1024();
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);

  // Seal the private key to this PAL's current PCR 17.
  Result<Bytes> pcr17 = context->tpm()->PcrRead(kSkinitPcr);
  if (!pcr17.ok()) {
    return pcr17.status();
  }
  Result<SealedBlob> sealed =
      SealForPal(context->tpm(), key.Serialize(), pcr17.value(), blob_auth);
  if (!sealed.ok()) {
    return sealed.status();
  }

  SecureChannelKeyMaterial material;
  material.public_key = key.pub.Serialize();
  material.sealed_private_key = sealed.value().Serialize();
  return material;
}

Result<RsaPrivateKey> SecureChannelModule::UnsealPrivateKey(PalContext* context,
                                                            const Bytes& sealed_private_key,
                                                            const Bytes& blob_auth) {
  SealedBlob blob = SealedBlob::Deserialize(sealed_private_key);
  Result<Bytes> serialized = UnsealInPal(context->tpm(), blob, blob_auth);
  if (!serialized.ok()) {
    return serialized.status();
  }
  return RsaPrivateKey::Deserialize(serialized.value());
}

Result<Bytes> SecureChannelModule::Decrypt(PalContext* context, const RsaPrivateKey& key,
                                           const Bytes& ciphertext) {
  context->ChargeRsaDecrypt1024();
  return RsaDecryptPkcs1(key, ciphertext);
}

Result<Bytes> SecureChannelEncrypt(const Bytes& serialized_public_key, const Bytes& message,
                                   Drbg* rng) {
  Result<RsaPublicKey> key = RsaPublicKey::Deserialize(serialized_public_key);
  if (!key.ok()) {
    return key.status();
  }
  return RsaEncryptPkcs1(key.value(), message, rng);
}

}  // namespace flicker
