#include "src/core/secure_channel.h"

#include "src/core/sealed_state.h"
#include "src/obs/metrics.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

Bytes SecureChannelKeyMaterial::Serialize() const {
  Bytes out;
  PutUint32(&out, static_cast<uint32_t>(public_key.size()));
  out.insert(out.end(), public_key.begin(), public_key.end());
  PutUint32(&out, static_cast<uint32_t>(sealed_private_key.size()));
  out.insert(out.end(), sealed_private_key.begin(), sealed_private_key.end());
  return out;
}

Result<SecureChannelKeyMaterial> SecureChannelKeyMaterial::Deserialize(const Bytes& data) {
  SecureChannelKeyMaterial material;
  size_t pos = 0;
  if (data.size() < 4) {
    return InvalidArgumentError("key material truncated");
  }
  uint32_t pub_len = GetUint32(data, pos);
  pos += 4;
  if (pos + pub_len + 4 > data.size()) {
    return InvalidArgumentError("key material truncated");
  }
  material.public_key.assign(data.begin() + static_cast<long>(pos),
                             data.begin() + static_cast<long>(pos + pub_len));
  pos += pub_len;
  uint32_t sealed_len = GetUint32(data, pos);
  pos += 4;
  if (pos + sealed_len != data.size()) {
    return InvalidArgumentError("key material truncated");
  }
  material.sealed_private_key.assign(data.begin() + static_cast<long>(pos), data.end());
  return material;
}

Result<SecureChannelKeyMaterial> SecureChannelModule::GenerateAndSeal(PalContext* context,
                                                                      const Bytes& blob_auth) {
  // Seed key generation from the TPM's RNG (the paper pulls 128 bytes via
  // TPM_GetRandom to seed a PRNG).
  Bytes seed = context->tpm()->GetRandom(128);
  Drbg rng(seed);
  context->ChargeRsaKeygen1024();
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);

  // Seal the private key to this PAL's current PCR 17.
  Result<Bytes> pcr17 = context->tpm()->PcrRead(kSkinitPcr);
  if (!pcr17.ok()) {
    return pcr17.status();
  }
  Result<SealedBlob> sealed =
      SealForPal(context->tpm(), key.Serialize(), pcr17.value(), blob_auth);
  if (!sealed.ok()) {
    return sealed.status();
  }

  SecureChannelKeyMaterial material;
  material.public_key = key.pub.Serialize();
  material.sealed_private_key = sealed.value().Serialize();
  return material;
}

Result<RsaPrivateKey> SecureChannelModule::UnsealPrivateKey(PalContext* context,
                                                            const Bytes& sealed_private_key,
                                                            const Bytes& blob_auth) {
  SealedBlob blob = SealedBlob::Deserialize(sealed_private_key);
  Result<Bytes> serialized = UnsealInPal(context->tpm(), blob, blob_auth);
  if (!serialized.ok()) {
    return serialized.status();
  }
  return RsaPrivateKey::Deserialize(serialized.value());
}

Result<Bytes> SecureChannelModule::Decrypt(PalContext* context, const RsaPrivateKey& key,
                                           const Bytes& ciphertext) {
  context->ChargeRsaDecrypt1024();
  return RsaDecryptPkcs1(key, ciphertext);
}

Result<Bytes> SecureChannelEncrypt(const Bytes& serialized_public_key, const Bytes& message,
                                   Drbg* rng) {
  Result<RsaPublicKey> key = RsaPublicKey::Deserialize(serialized_public_key);
  if (!key.ok()) {
    return key.status();
  }
  return RsaEncryptPkcs1(key.value(), message, rng);
}

uint64_t AttestedSessionCache::Establish(const Bytes& session_key, bool is_initiator) {
  if (sessions_.size() >= config_.capacity && !sessions_.empty()) {
    sessions_.erase(sessions_.begin());  // Ids are monotonic: begin() is oldest.
  }
  uint64_t id = next_id_++;
  Entry entry{MacSessionEndpoint(id, session_key, is_initiator), clock_->NowMicros()};
  sessions_.emplace(id, std::move(entry));
  return id;
}

AttestedSessionCache::Entry* AttestedSessionCache::Lookup(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) {
    double age_ms =
        static_cast<double>(clock_->NowMicros() - it->second.established_at_us) / 1000.0;
    if (age_ms > config_.ttl_ms || it->second.endpoint.uses() >= config_.max_uses) {
      sessions_.erase(it);
      it = sessions_.end();
    }
  }
  if (it == sessions_.end()) {
    ++misses_;
    obs::Count(obs::Ctr::kAttestSessionMisses);
    return nullptr;
  }
  return &it->second;
}

Result<AuthedFrame> AttestedSessionCache::Seal(uint64_t session_id, const Bytes& payload) {
  Entry* entry = Lookup(session_id);
  if (entry == nullptr) {
    return NotFoundError("no live attested session; re-attest");
  }
  return entry->endpoint.Seal(payload);
}

Result<Bytes> AttestedSessionCache::Open(const AuthedFrame& frame) {
  Entry* entry = Lookup(frame.session_id);
  if (entry == nullptr) {
    return NotFoundError("no live attested session; fall back to a fresh quote");
  }
  Result<Bytes> payload = entry->endpoint.Open(frame);
  if (payload.ok()) {
    ++hits_;
    obs::Count(obs::Ctr::kAttestSessionHits);
  }
  return payload;
}

}  // namespace flicker
