#include "src/os/interactivity.h"

#include <cmath>

namespace flicker {

InteractivityReport SimulateUserInputDuringSessions(const InteractivityParams& params) {
  InteractivityReport report;
  if (params.event_rate_hz <= 0 || params.duration_ms <= 0) {
    return report;
  }
  const double event_period_ms = 1000.0 / params.event_rate_hz;
  const double cycle_ms = params.session_ms + params.os_window_ms;

  auto os_suspended = [&](double t) {
    if (params.session_ms <= 0) {
      return false;
    }
    return std::fmod(t, cycle_ms) < params.session_ms;
  };

  int buffered = 0;
  double t = event_period_ms;
  while (t <= params.duration_ms) {
    ++report.events_total;
    if (os_suspended(t)) {
      if (buffered < params.controller_buffer_events) {
        ++buffered;  // Held in the controller FIFO, delivered on resume.
      } else {
        ++report.events_lost;
      }
    } else {
      buffered = 0;  // The OS drained the FIFO during its window.
    }
    t += event_period_ms;
  }

  report.loss_fraction = report.events_total == 0
                             ? 0.0
                             : static_cast<double>(report.events_lost) /
                                   static_cast<double>(report.events_total);
  report.longest_hang_ms = params.session_ms;
  return report;
}

}  // namespace flicker
