// Process scheduling and CPU hotplug.
//
// The only scheduling behaviour Flicker depends on is the §4.2 suspend
// sequence: CPU-hotplug deschedules every Application Processor (migrating
// its runnable tasks to the BSP) so the flicker-module can park the APs with
// INIT IPIs before SKINIT.

#ifndef FLICKER_SRC_OS_SCHEDULER_H_
#define FLICKER_SRC_OS_SCHEDULER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/machine.h"

namespace flicker {

struct OsTask {
  std::string name;
  double remaining_ms = 0;
};

class Scheduler {
 public:
  explicit Scheduler(Machine* machine);

  // Enqueues a task on a CPU's runqueue; the CPU becomes busy.
  Status Spawn(int cpu, OsTask task);

  // Runs every CPU's queue for `ms` of simulated time (round-robin within a
  // queue), advancing the platform clock once.
  void RunFor(double ms);

  // CPU hotplug offline: migrate AP runqueues to the BSP and mark APs idle,
  // so they can accept INIT IPIs.
  Status DescheduleAps();

  // Post-session: send Startup IPIs and rebalance nothing (tasks stay on the
  // BSP; a real kernel rebalances lazily).
  Status RestoreAps();

  bool ApsIdle() const;
  size_t QueueDepth(int cpu) const;
  double TotalCompletedMs() const { return completed_ms_; }

 private:
  Machine* machine_;
  std::vector<std::vector<OsTask>> runqueues_;
  double completed_ms_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_OS_SCHEDULER_H_
