#include "src/os/devices.h"

#include <cmath>

#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"

namespace flicker {

BlockCopyReport SimulateBlockCopyDuringSessions(const BlockCopyParams& params) {
  BlockCopyReport report;
  Drbg content(params.content_seed);
  Sha1 source_hash;
  Sha1 delivered_hash;

  const double ms_per_chunk =
      static_cast<double>(params.chunk_bytes) / (params.device_mb_per_s * 1024.0 * 1024.0) * 1000.0;
  const double cycle_ms = params.session_ms + params.os_window_ms;

  double now_ms = 0;
  uint64_t ring_fill = 0;
  uint64_t produced = 0;

  // Is the OS suspended at simulated time t? Sessions start at t=0:
  // [0, session_ms) suspended, [session_ms, cycle) running, repeating.
  auto os_suspended = [&](double t) { return std::fmod(t, cycle_ms) < params.session_ms; };
  // Time until the next OS window opens.
  auto until_os_runs = [&](double t) {
    double phase = std::fmod(t, cycle_ms);
    return phase < params.session_ms ? params.session_ms - phase : 0.0;
  };

  while (produced < params.total_bytes) {
    size_t n = static_cast<size_t>(
        params.chunk_bytes < params.total_bytes - produced ? params.chunk_bytes
                                                           : params.total_bytes - produced);
    Bytes chunk = content.Generate(n);
    source_hash.Update(chunk);

    // A Flicker-aware driver parks the device across suspensions: it never
    // starts a transfer that would land inside a session, so the ring never
    // backs up and the device never stalls mid-transfer (§7.5's proposed
    // fix). Time still passes while the device waits for the OS window.
    if (params.flicker_aware_quiesce && os_suspended(now_ms + ms_per_chunk)) {
      now_ms += until_os_runs(now_ms + ms_per_chunk);
    }

    // Device transfers the chunk at line rate.
    now_ms += ms_per_chunk;

    if (!params.flicker_aware_quiesce && os_suspended(now_ms)) {
      if (ring_fill + n > params.ring_capacity_bytes) {
        // Ring full: the device asserts flow control and stalls until the
        // OS window opens and drains completions.
        double wait = until_os_runs(now_ms);
        now_ms += wait;
        report.stall_ms += wait;
        ++report.stall_events;
        // OS drains the ring.
        ring_fill = 0;
      } else {
        ring_fill += n;
      }
    } else {
      // OS running: completions drain immediately.
      ring_fill = 0;
    }
    // Block-device flow control means no chunk is ever dropped; it reaches
    // the OS buffer in order once the ring drains.
    delivered_hash.Update(chunk);
    report.bytes_delivered += n;
    produced += n;
  }

  report.elapsed_ms = now_ms;
  report.sessions_run = static_cast<int>(now_ms / cycle_ms) + 1;
  report.source_digest = source_hash.Finish();
  report.delivered_digest = delivered_hash.Finish();
  return report;
}

}  // namespace flicker
