#include "src/os/kernel.h"

#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"

namespace flicker {

OsKernel::OsKernel(Machine* machine, const KernelConfig& config)
    : machine_(machine), config_(config) {
  Drbg content(config.content_seed);

  regions_.push_back(KernelRegion{"text", config.text_base, config.text_size});
  regions_.push_back(
      KernelRegion{"syscall_table", config.syscall_table_base, config.syscall_table_size});
  uint64_t module_addr = config.modules_base;
  for (const auto& [name, size] : config.modules) {
    regions_.push_back(KernelRegion{"module:" + name, module_addr, size});
    module_addr += size;
  }

  for (const KernelRegion& region : regions_) {
    Status st = machine_->memory()->Write(region.base, content.Generate(region.size));
    (void)st;  // Config addresses are within the machine by construction.
  }
  pristine_measurement_ = CurrentMeasurement();
  machine_->bsp()->cr3 = cr3_;
}

std::vector<KernelRegion> OsKernel::MeasuredRegions() const {
  return regions_;
}

Bytes OsKernel::SerializeRegions() const {
  Bytes out;
  PutUint32(&out, static_cast<uint32_t>(regions_.size()));
  for (const KernelRegion& region : regions_) {
    PutUint32(&out, static_cast<uint32_t>(region.name.size()));
    Bytes name = BytesOf(region.name);
    out.insert(out.end(), name.begin(), name.end());
    PutUint64(&out, region.base);
    PutUint64(&out, region.size);
  }
  return out;
}

Result<std::vector<KernelRegion>> OsKernel::DeserializeRegions(const Bytes& data) {
  std::vector<KernelRegion> regions;
  size_t pos = 0;
  if (data.size() < 4) {
    return InvalidArgumentError("region list truncated");
  }
  uint32_t count = GetUint32(data, pos);
  pos += 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > data.size()) {
      return InvalidArgumentError("region list truncated");
    }
    uint32_t name_len = GetUint32(data, pos);
    pos += 4;
    if (pos + name_len + 16 > data.size()) {
      return InvalidArgumentError("region list truncated");
    }
    KernelRegion region;
    region.name.assign(data.begin() + static_cast<long>(pos),
                       data.begin() + static_cast<long>(pos + name_len));
    pos += name_len;
    region.base = GetUint64(data, pos);
    pos += 8;
    region.size = GetUint64(data, pos);
    pos += 8;
    regions.push_back(std::move(region));
  }
  return regions;
}

Bytes OsKernel::CurrentMeasurement() const {
  Sha1 hash;
  for (const KernelRegion& region : regions_) {
    Result<Bytes> bytes = machine_->memory()->Read(region.base, region.size);
    if (bytes.ok()) {
      hash.Update(bytes.value());
    }
  }
  return hash.Finish();
}

Status OsKernel::InstallSyscallHook(size_t entry_index) {
  if (entry_index * 8 + 8 > config_.syscall_table_size) {
    return InvalidArgumentError("syscall index out of range");
  }
  // Point the entry at attacker-controlled memory.
  Bytes hook;
  PutUint64(&hook, 0xdeadbeefcafebabeULL);
  FLICKER_RETURN_IF_ERROR(
      machine_->memory()->Write(config_.syscall_table_base + entry_index * 8, hook));
  tampered_ = true;
  return Status::Ok();
}

Status OsKernel::PatchText(uint64_t offset, const Bytes& patch) {
  if (offset + patch.size() > config_.text_size) {
    return InvalidArgumentError("text patch out of range");
  }
  FLICKER_RETURN_IF_ERROR(machine_->memory()->Write(config_.text_base + offset, patch));
  tampered_ = true;
  return Status::Ok();
}

Status OsKernel::RestorePristine() {
  Drbg content(config_.content_seed);
  for (const KernelRegion& region : regions_) {
    FLICKER_RETURN_IF_ERROR(machine_->memory()->Write(region.base, content.Generate(region.size)));
  }
  tampered_ = false;
  return Status::Ok();
}

}  // namespace flicker
