// The flicker-module: the untrusted Linux kernel module that stages Flicker
// sessions (paper §4.1-4.2).
//
// It exposes the four sysfs entries (slb / inputs / outputs / control),
// allocates and patches the SLB, saves kernel state, performs the
// multiprocessor suspend dance, and issues SKINIT. It is deliberately NOT
// in the TCB: everything it does is either measured (the patched SLB) or
// verified (PCR 17 contents), and tests exercise malicious variants.

#ifndef FLICKER_SRC_OS_FLICKER_MODULE_H_
#define FLICKER_SRC_OS_FLICKER_MODULE_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/os/kernel.h"
#include "src/os/scheduler.h"
#include "src/slb/slb_layout.h"

namespace flicker {

class FlickerModule {
 public:
  FlickerModule(Machine* machine, OsKernel* kernel, Scheduler* scheduler);

  // sysfs "slb": stage an uninitialized SLB image (64 KB).
  Status WriteSlb(const Bytes& image);
  // sysfs "inputs": stage PAL input parameters (up to one 4 KB page).
  Status WriteInputs(const Bytes& inputs);
  // sysfs "outputs": read back the previous session's outputs.
  Result<Bytes> ReadOutputs() const;

  // sysfs "control": run the untrusted pre-launch sequence - patch the SLB
  // for its load address, copy it and the inputs into the reserved region,
  // save kernel state, deschedule + park the APs, and execute SKINIT.
  // Returns the launch descriptor the (trusted) SLB core runs from.
  Result<SkinitLaunch> StartSession();

  // Post-session teardown: collect outputs from the well-known page, wake
  // the APs, resume scheduling. `record_outputs` mirrors the real module's
  // copy from the output page into its sysfs buffer.
  Status FinishSession();

  uint64_t slb_base() const { return kSlbFixedBase; }

  // ---- Concurrent (hypervisor) mode ----
  //
  // Stages the SLB + inputs + saved kernel state at `base` (a hypervisor
  // PAL slot) without any suspend dance: the OS keeps running, and the
  // writes go through the guest-access path, so staging into a frame the
  // hypervisor protects takes a nested page fault instead of succeeding.
  Status StageForHypervisorAt(uint64_t base);
  // Reads the session outputs back from `base`'s output page into the
  // sysfs buffer (also via the guest-access path).
  Status CollectOutputsAt(uint64_t base);

  // ---- Adversary hook ----
  // When set, the module corrupts the staged SLB image before launch (flips
  // a byte in the PAL code region). The session still runs, but PCR 17 will
  // hold a different measurement - attestation must catch this.
  void set_corrupt_slb_before_launch(bool corrupt) { corrupt_slb_before_launch_ = corrupt; }

 private:
  Machine* machine_;
  OsKernel* kernel_;
  Scheduler* scheduler_;

  Bytes staged_slb_;
  Bytes staged_inputs_;
  Bytes outputs_;
  bool session_prepared_ = false;
  bool corrupt_slb_before_launch_ = false;
};

}  // namespace flicker

#endif  // FLICKER_SRC_OS_FLICKER_MODULE_H_
