// User-interactivity impact model for Flicker sessions (§7.5 discussion:
// "While a Flicker session runs, the user will perceive a hang on the
// machine. Keyboard and mouse input during the Flicker session may be
// lost.").
//
// Input events arrive at a steady rate; the keyboard/mouse controller
// buffers a handful while the OS cannot service interrupts, and overflow
// events are lost. This quantifies the trade-off behind §6.2's advice to
// break long computations into multiple sessions.

#ifndef FLICKER_SRC_OS_INTERACTIVITY_H_
#define FLICKER_SRC_OS_INTERACTIVITY_H_

#include <cstdint>

namespace flicker {

struct InteractivityParams {
  double event_rate_hz = 30.0;  // Sustained typing + mouse movement.
  // i8042-style controller FIFO: events held while interrupts are off.
  int controller_buffer_events = 16;
  // Session pattern, as in the block-device model.
  double session_ms = 8300.0;
  double os_window_ms = 37.0;
  double duration_ms = 60'000.0;
};

struct InteractivityReport {
  uint64_t events_total = 0;
  uint64_t events_lost = 0;
  double loss_fraction = 0.0;
  double longest_hang_ms = 0.0;  // Longest stretch without event servicing.
};

InteractivityReport SimulateUserInputDuringSessions(const InteractivityParams& params);

}  // namespace flicker

#endif  // FLICKER_SRC_OS_INTERACTIVITY_H_
