// The untrusted operating system's kernel objects.
//
// Flicker treats the OS as adversarial; what the simulator needs from it is
// (a) the memory images a rootkit detector measures (text segment, syscall
// table, loaded modules - paper §6.1), (b) a page-table root to save/restore
// around sessions, and (c) attack hooks that let tests and benches play the
// malicious-OS role.

#ifndef FLICKER_SRC_OS_KERNEL_H_
#define FLICKER_SRC_OS_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"

namespace flicker {

struct KernelRegion {
  std::string name;
  uint64_t base = 0;
  size_t size = 0;
};

struct KernelConfig {
  uint64_t text_base = 0x400000;          // 4 MB.
  size_t text_size = 2 * 1024 * 1024;     // ~2 MB of kernel text (2.6.20-era).
  uint64_t syscall_table_base = 0x640000;
  size_t syscall_table_size = 4096;       // 512 entries x 8 bytes.
  uint64_t modules_base = 0x700000;
  std::vector<std::pair<std::string, size_t>> modules = {
      {"ext3", 96 * 1024}, {"e1000", 64 * 1024}, {"tpm_tis", 16 * 1024}};
  uint64_t content_seed = 0x2620;         // Deterministic kernel "build".
};

class OsKernel {
 public:
  // Writes the synthetic kernel images into machine memory.
  OsKernel(Machine* machine, const KernelConfig& config = KernelConfig());

  // The regions an integrity measurement covers, in measurement order.
  std::vector<KernelRegion> MeasuredRegions() const;

  // Serialized region list, the input format of the rootkit-detector PAL.
  Bytes SerializeRegions() const;
  static Result<std::vector<KernelRegion>> DeserializeRegions(const Bytes& data);

  // SHA-1 over all measured regions as currently in memory (what a correct
  // detector computes). Host-side ground truth for tests.
  Bytes CurrentMeasurement() const;

  // The measurement of the pristine kernel (known-good value an
  // administrator compares against).
  const Bytes& pristine_measurement() const { return pristine_measurement_; }

  // ---- Attack hooks (the adversary controls the OS) ----

  // Hooks a syscall-table entry, the classic rootkit move.
  Status InstallSyscallHook(size_t entry_index);
  // Patches kernel text directly.
  Status PatchText(uint64_t offset, const Bytes& patch);
  // Restores the pristine images.
  Status RestorePristine();
  bool tampered() const { return tampered_; }

  uint64_t cr3() const { return cr3_; }

 private:
  Machine* machine_;
  KernelConfig config_;
  std::vector<KernelRegion> regions_;
  Bytes pristine_measurement_;
  uint64_t cr3_ = 0x2000;  // Opaque page-table root id.
  bool tampered_ = false;
};

}  // namespace flicker

#endif  // FLICKER_SRC_OS_KERNEL_H_
