#include "src/os/tqd.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {

Result<AttestationResponse> TpmQuoteDaemon::QuoteOnce(const Bytes& nonce,
                                                      const PcrSelection& selection) {
  Result<TpmQuote> quote = machine_->tpm()->Quote(nonce, selection);
  if (!quote.ok()) {
    return quote.status();
  }
  AttestationResponse response;
  response.quote = quote.take();
  response.aik_public = machine_->tpm()->aik_public().Serialize();
  return response;
}

void TpmQuoteDaemon::NoteTpmFailure() {
  ++consecutive_tpm_failures_;
  if (!breaker_open_ && consecutive_tpm_failures_ >= config_.breaker_threshold) {
    breaker_open_ = true;
    breaker_opened_at_us_ = machine_->clock()->NowMicros();
    obs::Count(obs::Ctr::kTqdBreakerTrips);
    obs::Instant("tqd", "tqd.breaker_open");
  }
}

bool TpmQuoteDaemon::BreakerAllows() {
  if (!breaker_open_) {
    return true;
  }
  double open_ms = static_cast<double>(machine_->clock()->NowMicros() - breaker_opened_at_us_) /
                   1000.0;
  if (open_ms < config_.breaker_cooldown_ms) {
    return false;
  }
  // Half-open probe: GetTestResult is accepted even in failure mode, so it
  // is the cheapest way to ask whether the device self-tests clean now.
  Result<uint32_t> probe = machine_->tpm()->GetTestResult();
  if (probe.ok() && probe.value() == kTpmTestPassed) {
    breaker_open_ = false;
    consecutive_tpm_failures_ = 0;
    return true;
  }
  // Still sick: restart the cooldown so probes stay rate-limited.
  breaker_opened_at_us_ = machine_->clock()->NowMicros();
  return false;
}

Result<AttestationResponse> TpmQuoteDaemon::HandleChallenge(const Bytes& nonce,
                                                            const PcrSelection& selection) {
  obs::ScopedSpan quote_span("tqd", "tqd.quote");
  if (machine_->in_secure_session()) {
    return FailedPreconditionError("OS suspended: quote daemon not running");
  }
  if (!BreakerAllows()) {
    queued_.push_back(QueuedChallenge{nonce, selection});
    obs::Count(obs::Ctr::kTqdChallengesQueued);
    return TpmFailedError("TPM circuit breaker open; challenge queued");
  }

  // Bounded retry with exponential backoff on transient transport faults.
  // The quote is a single TPM_ORD_Quote frame, so one lost frame costs one
  // retry; anything other than kUnavailable is a real TPM verdict. kTpmFailed
  // verdicts feed the circuit breaker; other errors surface immediately.
  const uint64_t challenge_start_us = machine_->clock()->NowMicros();
  BackoffSchedule backoff(config_.backoff);
  Status last_failure = UnavailableError("quote never attempted");
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (config_.retry_deadline_ms > 0) {
        double elapsed_ms =
            static_cast<double>(machine_->clock()->NowMicros() - challenge_start_us) / 1000.0;
        if (elapsed_ms + backoff.PeekDelayMs() > config_.retry_deadline_ms) {
          return Status(StatusCode::kUnavailable,
                        "quote retry deadline exceeded: " + last_failure.message());
        }
      }
      machine_->clock()->AdvanceMillis(backoff.NextDelayMs());
      ++retries_;
      obs::Count(obs::Ctr::kTqdRetries);
    }
    Result<AttestationResponse> response = QuoteOnce(nonce, selection);
    if (response.ok()) {
      consecutive_tpm_failures_ = 0;
      return response;
    }
    if (response.status().code() == StatusCode::kTpmFailed) {
      NoteTpmFailure();
      if (breaker_open_) {
        queued_.push_back(QueuedChallenge{nonce, selection});
        obs::Count(obs::Ctr::kTqdChallengesQueued);
        return TpmFailedError("TPM entered failure mode; challenge queued");
      }
      return response.status();
    }
    if (response.status().code() != StatusCode::kUnavailable) {
      return response.status();
    }
    last_failure = response.status();
  }
  return Status(StatusCode::kUnavailable,
                "quote retry budget exhausted: " + last_failure.message());
}

Status TpmQuoteDaemon::DrainQueued(std::vector<AttestationResponse>* responses) {
  if (!BreakerAllows()) {
    return TpmFailedError("TPM circuit breaker still open");
  }
  std::vector<QueuedChallenge> pending;
  pending.swap(queued_);
  for (size_t i = 0; i < pending.size(); ++i) {
    Result<AttestationResponse> response = QuoteOnce(pending[i].nonce, pending[i].selection);
    if (!response.ok()) {
      if (response.status().code() == StatusCode::kTpmFailed) {
        NoteTpmFailure();
      }
      // Put this and everything after it back, preserving order.
      queued_.insert(queued_.begin(), pending.begin() + static_cast<long>(i), pending.end());
      return response.status();
    }
    responses->push_back(response.take());
  }
  return Status::Ok();
}

}  // namespace flicker
