#include "src/os/tqd.h"

namespace flicker {

Result<AttestationResponse> TpmQuoteDaemon::HandleChallenge(const Bytes& nonce,
                                                            const PcrSelection& selection) {
  if (machine_->in_secure_session()) {
    return FailedPreconditionError("OS suspended: quote daemon not running");
  }
  Result<TpmQuote> quote = machine_->tpm()->Quote(nonce, selection);
  if (!quote.ok()) {
    return quote.status();
  }
  AttestationResponse response;
  response.quote = quote.take();
  response.aik_public = machine_->tpm()->aik_public().Serialize();
  return response;
}

}  // namespace flicker
