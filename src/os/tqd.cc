#include "src/os/tqd.h"

#include <algorithm>

#include "src/common/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {

Result<AttestationResponse> TpmQuoteDaemon::QuoteOnce(const Bytes& nonce,
                                                      const PcrSelection& selection) {
  Result<TpmQuote> quote = machine_->tpm()->Quote(nonce, selection);
  if (!quote.ok()) {
    return quote.status();
  }
  AttestationResponse response;
  response.quote = quote.take();
  response.aik_public = machine_->tpm()->aik_public().Serialize();
  return response;
}

void TpmQuoteDaemon::NoteTpmFailure() {
  ++consecutive_tpm_failures_;
  if (!breaker_open_ && consecutive_tpm_failures_ >= config_.breaker_threshold) {
    breaker_open_ = true;
    breaker_opened_at_us_ = machine_->clock()->NowMicros();
    obs::Count(obs::Ctr::kTqdBreakerTrips);
    obs::Instant("tqd", "tqd.breaker_open");
    ArmBreakerProbe();
  }
}

bool TpmQuoteDaemon::BreakerAllows() {
  if (!breaker_open_) {
    return true;
  }
  double open_ms = static_cast<double>(machine_->clock()->NowMicros() - breaker_opened_at_us_) /
                   1000.0;
  if (open_ms < config_.breaker_cooldown_ms) {
    return false;
  }
  // Half-open probe: GetTestResult is accepted even in failure mode, so it
  // is the cheapest way to ask whether the device self-tests clean now.
  Result<uint32_t> probe = machine_->tpm()->GetTestResult();
  if (probe.ok() && probe.value() == kTpmTestPassed) {
    breaker_open_ = false;
    consecutive_tpm_failures_ = 0;
    return true;
  }
  // Still sick: restart the cooldown so probes stay rate-limited.
  breaker_opened_at_us_ = machine_->clock()->NowMicros();
  return false;
}

// Bounded retry with exponential backoff on transient transport faults.
// The quote is a single TPM_ORD_Quote frame, so one lost frame costs one
// retry; anything other than kUnavailable is a real TPM verdict. kTpmFailed
// verdicts feed the circuit breaker (the caller reacts to breaker_open_);
// other errors surface immediately.
Result<AttestationResponse> TpmQuoteDaemon::QuoteWithRetry(const Bytes& nonce,
                                                           const PcrSelection& selection,
                                                           double deadline_ms_override) {
  const double deadline_ms =
      deadline_ms_override < 0 ? config_.retry_deadline_ms : deadline_ms_override;
  const uint64_t challenge_start_us = machine_->clock()->NowMicros();
  BackoffSchedule backoff(config_.backoff, config_.backoff_jitter_seed);
  Status last_failure = UnavailableError("quote never attempted");
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (deadline_ms > 0) {
        double elapsed_ms =
            static_cast<double>(machine_->clock()->NowMicros() - challenge_start_us) / 1000.0;
        if (elapsed_ms + backoff.PeekDelayMs() > deadline_ms) {
          return Status(StatusCode::kUnavailable,
                        "quote retry deadline exceeded: " + last_failure.message());
        }
      }
      machine_->clock()->AdvanceMillis(backoff.NextDelayMs());
      ++retries_;
      obs::Count(obs::Ctr::kTqdRetries);
    }
    Result<AttestationResponse> response = QuoteOnce(nonce, selection);
    if (response.ok()) {
      consecutive_tpm_failures_ = 0;
      return response;
    }
    if (response.status().code() == StatusCode::kTpmFailed) {
      NoteTpmFailure();
      return response.status();
    }
    if (response.status().code() != StatusCode::kUnavailable) {
      return response.status();
    }
    last_failure = response.status();
  }
  return Status(StatusCode::kUnavailable,
                "quote retry budget exhausted: " + last_failure.message());
}

Result<AttestationResponse> TpmQuoteDaemon::HandleChallenge(const Bytes& nonce,
                                                            const PcrSelection& selection,
                                                            double deadline_ms_override) {
  obs::ScopedSpan quote_span("tqd", "tqd.quote");
  if (machine_->in_secure_session()) {
    return FailedPreconditionError("OS suspended: quote daemon not running");
  }
  if (!BreakerAllows()) {
    queued_.push_back(QueuedChallenge{nonce, selection});
    obs::Count(obs::Ctr::kTqdChallengesQueued);
    return TpmFailedError("TPM circuit breaker open; challenge queued");
  }

  Result<AttestationResponse> response = QuoteWithRetry(nonce, selection, deadline_ms_override);
  if (!response.ok() && response.status().code() == StatusCode::kTpmFailed && breaker_open_) {
    queued_.push_back(QueuedChallenge{nonce, selection});
    obs::Count(obs::Ctr::kTqdChallengesQueued);
    return TpmFailedError("TPM entered failure mode; challenge queued");
  }
  return response;
}

Status TpmQuoteDaemon::SubmitBatched(const Bytes& nonce, const PcrSelection& selection) {
  if (machine_->in_secure_session()) {
    return FailedPreconditionError("OS suspended: quote daemon not running");
  }
  size_t index = batches_.size();
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (batches_[i].selection.mask() == selection.mask()) {
      index = i;
      break;
    }
  }
  if (index == batches_.size()) {
    PendingBatch batch;
    batch.selection = selection;
    batch.opened_at_us = machine_->clock()->NowMicros();
    batches_.push_back(std::move(batch));
  }
  batches_[index].nonces.push_back(nonce);
  if (timers_bound()) {
    if (BatchIsReady(batches_[index])) {
      // Full (or degenerate single-challenge) window: nothing to wait for.
      CancelBatchTimer(&batches_[index]);
      FlushToSink();
    } else if (!batches_[index].timer_live) {
      ArmBatchTimer(&batches_[index],
                    static_cast<uint64_t>(config_.max_batch_wait_ms * 1e6 + 0.5));
    }
  }
  return Status::Ok();
}

bool TpmQuoteDaemon::BatchIsReady(const PendingBatch& batch) const {
  if (config_.max_batch_size <= 1 || batch.nonces.size() >= config_.max_batch_size) {
    return true;
  }
  double age_ms =
      static_cast<double>(machine_->clock()->NowMicros() - batch.opened_at_us) / 1000.0;
  return age_ms >= config_.max_batch_wait_ms;
}

bool TpmQuoteDaemon::BatchReady() const {
  return std::any_of(batches_.begin(), batches_.end(),
                     [this](const PendingBatch& batch) { return BatchIsReady(batch); });
}

size_t TpmQuoteDaemon::batched_pending() const {
  size_t total = 0;
  for (const PendingBatch& batch : batches_) {
    total += batch.nonces.size();
  }
  return total;
}

Status TpmQuoteDaemon::FlushOneBatch(PendingBatch&& batch,
                                     std::vector<BatchQuoteResponse>* responses) {
  obs::ScopedSpan flush_span("tqd", "tqd.batch_quote");
  double wait_ms =
      static_cast<double>(machine_->clock()->NowMicros() - batch.opened_at_us) / 1000.0;

  Result<MerkleTree> tree = MerkleTree::Build(batch.nonces);
  if (!tree.ok()) {
    return tree.status();
  }
  // A power cut here loses only unanswered challenges: the challengers time
  // out and re-issue, and no TPM or sealed state has been touched yet.
  CRASH_POINT("tqd.batch_flush");
  Result<AttestationResponse> quoted = QuoteWithRetry(tree.value().root(), batch.selection);
  if (!quoted.ok()) {
    batches_.push_back(std::move(batch));  // Keep the window; nothing is lost.
    // Discrete-event mode: the kept window's timer was cancelled when it
    // was selected for flushing; put it back on the retry cadence.
    ArmBatchTimer(&batches_.back(), static_cast<uint64_t>(config_.max_batch_wait_ms * 1e6 + 0.5));
    return quoted.status();
  }
  for (size_t i = 0; i < batch.nonces.size(); ++i) {
    BatchQuoteResponse response;
    response.nonce = batch.nonces[i];
    response.response = quoted.value();
    response.path = tree.value().PathFor(i);
    responses->push_back(std::move(response));
  }
  ++batch_quotes_;
  obs::Count(obs::Ctr::kTqdBatchQuotes);
  obs::Count(obs::Ctr::kTqdBatchedChallenges, batch.nonces.size());
  obs::ObserveMs(obs::Hist::kTqdBatchSize, static_cast<double>(batch.nonces.size()));
  obs::ObserveMs(obs::Hist::kTqdCoalesceWaitMs, wait_ms);
  return Status::Ok();
}

Status TpmQuoteDaemon::FlushReadyBatches(std::vector<BatchQuoteResponse>* responses, bool force) {
  if (machine_->in_secure_session()) {
    return FailedPreconditionError("OS suspended: quote daemon not running");
  }
  if (!BreakerAllows()) {
    // Windows simply stay open; unlike single challenges there is no
    // separate queue to move them to.
    return TpmFailedError("TPM circuit breaker open; batches held");
  }
  std::vector<PendingBatch> ready;
  for (size_t i = 0; i < batches_.size();) {
    if ((force && !batches_[i].nonces.empty()) || BatchIsReady(batches_[i])) {
      CancelBatchTimer(&batches_[i]);
      ready.push_back(std::move(batches_[i]));
      batches_.erase(batches_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  Status first_failure = Status::Ok();
  for (PendingBatch& batch : ready) {
    Status flushed = FlushOneBatch(std::move(batch), responses);
    if (!flushed.ok() && first_failure.ok()) {
      first_failure = flushed;
    }
  }
  return first_failure;
}

Status TpmQuoteDaemon::DrainQueued(std::vector<AttestationResponse>* responses) {
  if (!BreakerAllows()) {
    return TpmFailedError("TPM circuit breaker still open");
  }
  std::vector<QueuedChallenge> pending;
  pending.swap(queued_);
  for (size_t i = 0; i < pending.size(); ++i) {
    Result<AttestationResponse> response = QuoteOnce(pending[i].nonce, pending[i].selection);
    if (!response.ok()) {
      if (response.status().code() == StatusCode::kTpmFailed) {
        NoteTpmFailure();
      }
      // Put this and everything after it back, preserving order.
      queued_.insert(queued_.begin(), pending.begin() + static_cast<long>(i), pending.end());
      return response.status();
    }
    responses->push_back(response.take());
  }
  return Status::Ok();
}

// ---- Discrete-event mode ----

void TpmQuoteDaemon::BindTimers(TimerHost host,
                                std::function<void(std::vector<BatchQuoteResponse>)> batch_sink,
                                std::function<void(std::vector<AttestationResponse>)> drain_sink) {
  timer_host_ = std::move(host);
  batch_sink_ = std::move(batch_sink);
  drain_sink_ = std::move(drain_sink);
}

void TpmQuoteDaemon::ArmBatchTimer(PendingBatch* batch, uint64_t delay_ns) {
  if (!timers_bound()) {
    return;
  }
  const uint64_t token = ++next_timer_token_;
  batch->timer_token = token;
  batch->timer_id = timer_host_.schedule(delay_ns, [this, token] { OnBatchTimer(token); });
  batch->timer_live = true;
}

void TpmQuoteDaemon::CancelBatchTimer(PendingBatch* batch) {
  if (batch->timer_live && timer_host_.cancel) {
    timer_host_.cancel(batch->timer_id);
  }
  batch->timer_live = false;
}

void TpmQuoteDaemon::FlushToSink() {
  std::vector<BatchQuoteResponse> responses;
  // Failure verdicts are not lost: a window whose quote failed was re-queued
  // with a fresh retry timer, and breaker/suspended verdicts leave windows
  // (and their timers, minus the one that fired) intact.
  Status st = FlushReadyBatches(&responses);
  (void)st;
  if (!responses.empty() && batch_sink_) {
    batch_sink_(std::move(responses));
  }
}

void TpmQuoteDaemon::OnBatchTimer(uint64_t token) {
  for (PendingBatch& batch : batches_) {
    if (batch.timer_token == token) {
      batch.timer_live = false;  // This timer just fired; its id is spent.
      break;
    }
  }
  FlushToSink();
  // A window that could not flush (OS suspended, breaker open) is still here
  // with no live timer; keep it on the flush cadence rather than stranding
  // its challenges until the next submit.
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (batches_[i].timer_token == token && !batches_[i].timer_live) {
      ArmBatchTimer(&batches_[i], static_cast<uint64_t>(config_.max_batch_wait_ms * 1e6 + 0.5));
      break;
    }
  }
}

void TpmQuoteDaemon::ArmBreakerProbe() {
  if (!timers_bound() || breaker_probe_armed_) {
    return;
  }
  breaker_probe_armed_ = true;
  breaker_probe_id_ = timer_host_.schedule(
      static_cast<uint64_t>(config_.breaker_cooldown_ms * 1e6 + 0.5), [this] { OnBreakerProbe(); });
}

void TpmQuoteDaemon::OnBreakerProbe() {
  breaker_probe_armed_ = false;
  if (!BreakerAllows()) {
    // Still sick: BreakerAllows restarted the cooldown; probe again then.
    ArmBreakerProbe();
    return;
  }
  std::vector<AttestationResponse> drained;
  Status st = DrainQueued(&drained);
  (void)st;
  if (!drained.empty() && drain_sink_) {
    drain_sink_(std::move(drained));
  }
  if (!queued_.empty()) {
    // The drain died partway (the breaker may have re-opened and armed its
    // own probe via NoteTpmFailure); make sure someone retries.
    ArmBreakerProbe();
  }
  if (BatchReady()) {
    FlushToSink();
  }
}

void TpmQuoteDaemon::OnPowerLoss() {
  // The daemon is a userspace process: windows, queue and timers all lived
  // in RAM. Challengers whose nonces die here simply time out and re-issue.
  for (PendingBatch& batch : batches_) {
    CancelBatchTimer(&batch);
  }
  batches_.clear();
  queued_.clear();
  if (breaker_probe_armed_ && timer_host_.cancel) {
    timer_host_.cancel(breaker_probe_id_);
  }
  breaker_probe_armed_ = false;
  breaker_open_ = false;
  consecutive_tpm_failures_ = 0;
}

}  // namespace flicker
