#include "src/os/tqd.h"

namespace flicker {

Result<AttestationResponse> TpmQuoteDaemon::HandleChallenge(const Bytes& nonce,
                                                            const PcrSelection& selection) {
  if (machine_->in_secure_session()) {
    return FailedPreconditionError("OS suspended: quote daemon not running");
  }

  // Bounded retry with exponential backoff on transient transport faults.
  // The quote is a single TPM_ORD_Quote frame, so one lost frame costs one
  // retry; anything other than kUnavailable is a real TPM verdict and is
  // surfaced immediately.
  double backoff_ms = config_.initial_backoff_ms;
  Status last_failure = UnavailableError("quote never attempted");
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      machine_->clock()->AdvanceMillis(backoff_ms);
      backoff_ms *= 2;
      ++retries_;
    }
    Result<TpmQuote> quote = machine_->tpm()->Quote(nonce, selection);
    if (quote.ok()) {
      AttestationResponse response;
      response.quote = quote.take();
      response.aik_public = machine_->tpm()->aik_public().Serialize();
      return response;
    }
    if (quote.status().code() != StatusCode::kUnavailable) {
      return quote.status();
    }
    last_failure = quote.status();
  }
  return Status(StatusCode::kUnavailable,
                "quote retry budget exhausted: " + last_failure.message());
}

}  // namespace flicker
