// DMA-capable device models.
//
// Two roles from the paper:
//   * the adversarial role (§3.1): a compromised expansion card issuing DMA
//     at arbitrary physical addresses - the DEV must stop it touching the
//     SLB during a session;
//   * the availability role (§7.5): block-device transfers continuing while
//     the OS is suspended; descriptor rings absorb the gap and no data is
//     lost, only delayed.

#ifndef FLICKER_SRC_OS_DEVICES_H_
#define FLICKER_SRC_OS_DEVICES_H_

#include <functional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"

namespace flicker {

// A DMA-capable NIC (or any PCI bus master). All accesses go through the
// machine's DMA port and are subject to the DEV.
class DmaDevice {
 public:
  DmaDevice(Machine* machine, std::string name) : machine_(machine), name_(std::move(name)) {}

  Status WriteTo(uint64_t addr, const Bytes& payload) { return machine_->DmaWrite(addr, payload); }
  Result<Bytes> ReadFrom(uint64_t addr, size_t len) { return machine_->DmaRead(addr, len); }

  const std::string& name() const { return name_; }

 private:
  Machine* machine_;
  std::string name_;
};

// Parameters for the §7.5 experiment: a bulk copy running while Flicker
// sessions repeatedly suspend the OS.
struct BlockCopyParams {
  uint64_t total_bytes = 1ULL << 30;      // 1 GB file, as in the paper.
  size_t chunk_bytes = 64 * 1024;
  double device_mb_per_s = 30.0;          // CD-ROM/USB-era throughput.
  // Descriptor-ring capacity: how much the device can buffer while the OS
  // cannot service completions.
  uint64_t ring_capacity_bytes = 4 * 1024 * 1024;
  // Session pattern: `session_ms` of suspended OS, then `os_window_ms` of
  // normal operation, repeating (paper: 8.3 s sessions, 37 ms windows).
  double session_ms = 8300.0;
  double os_window_ms = 37.0;
  // Flicker-aware driver support (§7.5 discussion): the OS quiesces the
  // device before each session, so the device idles cleanly instead of
  // filling its ring and asserting flow control mid-transfer.
  bool flicker_aware_quiesce = false;
  uint64_t content_seed = 0xc0b7;
};

struct BlockCopyReport {
  uint64_t bytes_delivered = 0;
  uint64_t io_errors = 0;       // Chunks lost (ring overrun with no flow control).
  uint64_t stall_events = 0;    // Device had to pause for ring space.
  double elapsed_ms = 0;
  double stall_ms = 0;
  Bytes source_digest;          // SHA-1 of the source stream.
  Bytes delivered_digest;       // SHA-1 of what reached the OS buffer, in order.
  int sessions_run = 0;
};

// Simulates the copy. The device streams chunks at its line rate; while a
// session has the OS suspended, completed chunks sit in the ring. When the
// ring is full the device stalls (block devices have flow control), so data
// is delayed but never lost - the md5sum-equal result of §7.5.
BlockCopyReport SimulateBlockCopyDuringSessions(const BlockCopyParams& params);

}  // namespace flicker

#endif  // FLICKER_SRC_OS_DEVICES_H_
