// The TPM Quote Daemon (tqd): the userspace attestation service the paper
// runs on the untrusted OS on top of the TrouSerS TCG software stack (§6).
//
// The daemon itself is untrusted: it merely relays nonces to the TPM and
// quotes back to challengers. Security comes from the TPM's signature.
//
// The TPM sits behind a transport that can lose or delay frames, so the
// daemon retries transient (kUnavailable) quote failures with exponential
// backoff, charging the waiting time to the simulated clock like any real
// driver timeout. Permanent errors are returned immediately.

#ifndef FLICKER_SRC_OS_TQD_H_
#define FLICKER_SRC_OS_TQD_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/tpm/structures.h"

namespace flicker {

struct AttestationResponse {
  TpmQuote quote;
  // The AIK public key, shipped alongside (its certificate chain is checked
  // by the verifier against the Privacy CA).
  Bytes aik_public;
};

struct TqdConfig {
  int max_attempts = 4;            // One initial try plus up to three retries.
  double initial_backoff_ms = 2.0; // Doubles after every transient failure.
};

class TpmQuoteDaemon {
 public:
  explicit TpmQuoteDaemon(Machine* machine, TqdConfig config = TqdConfig())
      : machine_(machine), config_(config) {}

  // Handles a challenge: quote the selected PCRs over the verifier's nonce.
  // Fails while a Flicker session holds the platform (the OS, and hence the
  // daemon, is suspended).
  Result<AttestationResponse> HandleChallenge(const Bytes& nonce, const PcrSelection& selection);

  // Transient failures absorbed by retries since construction.
  uint64_t retries() const { return retries_; }

 private:
  Machine* machine_;
  TqdConfig config_;
  uint64_t retries_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_OS_TQD_H_
