// The TPM Quote Daemon (tqd): the userspace attestation service the paper
// runs on the untrusted OS on top of the TrouSerS TCG software stack (§6).
//
// The daemon itself is untrusted: it merely relays nonces to the TPM and
// quotes back to challengers. Security comes from the TPM's signature.

#ifndef FLICKER_SRC_OS_TQD_H_
#define FLICKER_SRC_OS_TQD_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/tpm/structures.h"

namespace flicker {

struct AttestationResponse {
  TpmQuote quote;
  // The AIK public key, shipped alongside (its certificate chain is checked
  // by the verifier against the Privacy CA).
  Bytes aik_public;
};

class TpmQuoteDaemon {
 public:
  explicit TpmQuoteDaemon(Machine* machine) : machine_(machine) {}

  // Handles a challenge: quote the selected PCRs over the verifier's nonce.
  // Fails while a Flicker session holds the platform (the OS, and hence the
  // daemon, is suspended).
  Result<AttestationResponse> HandleChallenge(const Bytes& nonce, const PcrSelection& selection);

 private:
  Machine* machine_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_OS_TQD_H_
