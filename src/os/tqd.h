// The TPM Quote Daemon (tqd): the userspace attestation service the paper
// runs on the untrusted OS on top of the TrouSerS TCG software stack (§6).
//
// The daemon itself is untrusted: it merely relays nonces to the TPM and
// quotes back to challengers. Security comes from the TPM's signature.
//
// The TPM sits behind a transport that can lose or delay frames, so the
// daemon retries transient (kUnavailable) quote failures with exponential
// backoff, charging the waiting time to the simulated clock like any real
// driver timeout. Permanent errors are returned immediately.
//
// A TPM that enters failure mode (kTpmFailed) trips a circuit breaker: the
// daemon stops hammering the device, queues incoming challenges, and probes
// with TPM_GetTestResult after a cooldown; once the device self-tests clean
// again the queue can be drained. The retry loop also respects a total
// simulated-clock deadline so a dead transport cannot stall a challenge
// forever.

#ifndef FLICKER_SRC_OS_TQD_H_
#define FLICKER_SRC_OS_TQD_H_

#include <functional>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/merkle.h"
#include "src/hw/machine.h"
#include "src/tpm/structures.h"

namespace flicker {

struct AttestationResponse {
  TpmQuote quote;
  // The AIK public key, shipped alongside (its certificate chain is checked
  // by the verifier against the Privacy CA).
  Bytes aik_public;
};

// One challenger's slice of a Merkle-aggregated batch quote: the shared
// quote (whose externalData nonce is the batch's Merkle root) plus the
// authentication path tying this challenger's own nonce to that root. The
// challenger recomputes the root from its OWN nonce and the path, so a
// response carrying someone else's path - or a path from another batch -
// fails verification.
struct BatchQuoteResponse {
  Bytes nonce;  // The challenge nonce this slice answers.
  AttestationResponse response;
  MerkleAuthPath path;
};

struct TqdConfig {
  int max_attempts = 4;  // One initial try plus up to three retries.
  // Shared backoff policy (common/backoff.h). Defaults reproduce the
  // daemon's historical 2/4/8 ms doubling schedule exactly.
  BackoffPolicy backoff;
  // Seed for the policy's jitter draws (jitter_fraction or full_jitter).
  // Give each machine in a fleet its own seed: after a partition heals, a
  // thousand daemons all waking on the same pinned 2/4/8 ms schedule hit
  // the farm in lockstep; full jitter plus per-machine seeds spreads the
  // storm across the whole backoff window, still deterministically.
  uint64_t backoff_jitter_seed = 0;
  // Watchdog: total simulated-clock budget (ms) one challenge may consume
  // across all retries and backoff waits; 0 means unlimited. Checked before
  // each retry so the daemon never sleeps past its deadline.
  double retry_deadline_ms = 0;
  // Circuit breaker: consecutive kTpmFailed verdicts that open it, and how
  // long (simulated ms) it stays open before a half-open probe.
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 500.0;
  // Batch coalescing window (SubmitBatched/FlushReadyBatches): a batch is
  // flushed once it holds max_batch_size challenges or its oldest challenge
  // has waited max_batch_wait_ms on the simulated clock, whichever comes
  // first. max_batch_size <= 1 disables coalescing (every submit is ready
  // immediately, as a degenerate one-leaf batch).
  size_t max_batch_size = 32;
  double max_batch_wait_ms = 10.0;
};

class TpmQuoteDaemon {
 public:
  explicit TpmQuoteDaemon(Machine* machine, TqdConfig config = TqdConfig())
      : machine_(machine), config_(config) {}

  // Handles a challenge: quote the selected PCRs over the verifier's nonce.
  // Fails while a Flicker session holds the platform (the OS, and hence the
  // daemon, is suspended). With the breaker open the challenge is queued and
  // kTpmFailed returned; DrainQueued() serves it once the TPM recovers.
  // `deadline_ms_override` < 0 uses config.retry_deadline_ms; otherwise it
  // replaces the watchdog budget for this one challenge (0 = unlimited) -
  // the vTPM multiplexer charges each tenant its own deadline this way.
  Result<AttestationResponse> HandleChallenge(const Bytes& nonce, const PcrSelection& selection,
                                              double deadline_ms_override = -1.0);

  // Re-attempts every queued challenge (oldest first). Responses for the
  // ones that now succeed are appended to `responses`; the rest stay queued.
  Status DrainQueued(std::vector<AttestationResponse>* responses);

  // Batch coalescing: adds a challenge to the open window for its PCR
  // selection (windows never mix selections, so every challenge in a batch
  // shares the quote's composite). The challenge is answered by a later
  // FlushReadyBatches() call.
  Status SubmitBatched(const Bytes& nonce, const PcrSelection& selection);

  // True when some window is ready to flush: full, or its oldest challenge
  // has waited out max_batch_wait_ms.
  bool BatchReady() const;

  // Quotes every ready window (all non-empty windows when `force` is set):
  // the window's nonces become a leaf-sorted Merkle tree, ONE TPM quote is
  // issued over the root through the usual retry/breaker machinery, and one
  // BatchQuoteResponse per challenge is appended to `responses`. A window
  // whose quote fails stays pending - a power cut or breaker trip mid-flush
  // loses no challenges - and the first failure status is returned after the
  // remaining ready windows have been attempted.
  Status FlushReadyBatches(std::vector<BatchQuoteResponse>* responses, bool force = false);

  // ---- Discrete-event mode ----
  //
  // In the polled mode above, callers must keep asking BatchReady() /
  // DrainQueued(); nothing happens between calls. Under the fleet executor
  // the daemon instead owns its deadlines as real heap timers: opening a
  // coalescing window arms a flush timer for max_batch_wait_ms (a window
  // that fills first flushes inline and the timer is cancelled), and a
  // breaker trip arms a cooldown probe that drains the queue once the TPM
  // self-tests clean. Responses produced by timer-driven work go to the
  // sinks, since there is no caller on the stack to return them to.
  //
  // The host's schedule() must measure delay from the daemon machine's
  // local clock (ScheduleAfterLocal in fleet terms) and return an id its
  // cancel() accepts; cancelling an already-fired id must be a no-op.
  struct TimerHost {
    std::function<uint64_t(uint64_t delay_ns, std::function<void()> fn)> schedule;
    std::function<void(uint64_t id)> cancel;
  };
  void BindTimers(TimerHost host,
                  std::function<void(std::vector<BatchQuoteResponse>)> batch_sink,
                  std::function<void(std::vector<AttestationResponse>)> drain_sink);

  // Power-domain hook: the daemon is an untrusted userspace process, so a
  // power cut loses every open window and queued challenge (they lived in
  // RAM) and silences its armed timers. Challengers time out and re-issue -
  // exactly the paper's recovery story for lost challenges.
  void OnPowerLoss();

  // Transient failures absorbed by retries since construction.
  uint64_t retries() const { return retries_; }
  bool breaker_open() const { return breaker_open_; }
  size_t queued_count() const { return queued_.size(); }
  // Challenges sitting in open coalescing windows.
  size_t batched_pending() const;
  uint64_t batch_quotes() const { return batch_quotes_; }

 private:
  struct QueuedChallenge {
    Bytes nonce;
    PcrSelection selection;
  };

  // An open coalescing window: challenges sharing one PCR selection.
  struct PendingBatch {
    PcrSelection selection;
    std::vector<Bytes> nonces;
    uint64_t opened_at_us = 0;
    // Discrete-event mode: the armed flush timer, if any. `timer_token` is
    // the daemon's own label (host timer ids may be reused across hosts),
    // `timer_id` what the host's cancel() wants.
    uint64_t timer_token = 0;
    uint64_t timer_id = 0;
    bool timer_live = false;
  };

  Result<AttestationResponse> QuoteOnce(const Bytes& nonce, const PcrSelection& selection);
  // The shared bounded-retry/backoff/deadline loop around QuoteOnce. On
  // kTpmFailed the breaker has already been fed; the caller decides whether
  // to queue or keep the work.
  Result<AttestationResponse> QuoteWithRetry(const Bytes& nonce, const PcrSelection& selection,
                                             double deadline_ms_override = -1.0);
  bool BatchIsReady(const PendingBatch& batch) const;
  Status FlushOneBatch(PendingBatch&& batch, std::vector<BatchQuoteResponse>* responses);
  void NoteTpmFailure();
  // True when the breaker may pass traffic again (closed, or cooldown over
  // and the half-open GetTestResult probe came back clean).
  bool BreakerAllows();
  // Discrete-event mode internals: arm one window's flush timer, handle it
  // firing, and the breaker's cooldown probe.
  bool timers_bound() const { return static_cast<bool>(timer_host_.schedule); }
  void ArmBatchTimer(PendingBatch* batch, uint64_t delay_ns);
  void CancelBatchTimer(PendingBatch* batch);
  void OnBatchTimer(uint64_t token);
  void ArmBreakerProbe();
  void OnBreakerProbe();
  // Flushes ready windows straight into the batch sink (timer/inline paths).
  void FlushToSink();

  Machine* machine_;
  TqdConfig config_;
  uint64_t retries_ = 0;
  uint64_t batch_quotes_ = 0;

  bool breaker_open_ = false;
  int consecutive_tpm_failures_ = 0;
  uint64_t breaker_opened_at_us_ = 0;
  std::vector<QueuedChallenge> queued_;
  std::vector<PendingBatch> batches_;

  // Discrete-event mode state (unbound = polled mode, zero overhead).
  TimerHost timer_host_;
  std::function<void(std::vector<BatchQuoteResponse>)> batch_sink_;
  std::function<void(std::vector<AttestationResponse>)> drain_sink_;
  uint64_t next_timer_token_ = 0;
  bool breaker_probe_armed_ = false;
  uint64_t breaker_probe_id_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_OS_TQD_H_
