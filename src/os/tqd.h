// The TPM Quote Daemon (tqd): the userspace attestation service the paper
// runs on the untrusted OS on top of the TrouSerS TCG software stack (§6).
//
// The daemon itself is untrusted: it merely relays nonces to the TPM and
// quotes back to challengers. Security comes from the TPM's signature.
//
// The TPM sits behind a transport that can lose or delay frames, so the
// daemon retries transient (kUnavailable) quote failures with exponential
// backoff, charging the waiting time to the simulated clock like any real
// driver timeout. Permanent errors are returned immediately.
//
// A TPM that enters failure mode (kTpmFailed) trips a circuit breaker: the
// daemon stops hammering the device, queues incoming challenges, and probes
// with TPM_GetTestResult after a cooldown; once the device self-tests clean
// again the queue can be drained. The retry loop also respects a total
// simulated-clock deadline so a dead transport cannot stall a challenge
// forever.

#ifndef FLICKER_SRC_OS_TQD_H_
#define FLICKER_SRC_OS_TQD_H_

#include <vector>

#include "src/common/backoff.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/tpm/structures.h"

namespace flicker {

struct AttestationResponse {
  TpmQuote quote;
  // The AIK public key, shipped alongside (its certificate chain is checked
  // by the verifier against the Privacy CA).
  Bytes aik_public;
};

struct TqdConfig {
  int max_attempts = 4;  // One initial try plus up to three retries.
  // Shared backoff policy (common/backoff.h). Defaults reproduce the
  // daemon's historical 2/4/8 ms doubling schedule exactly.
  BackoffPolicy backoff;
  // Watchdog: total simulated-clock budget (ms) one challenge may consume
  // across all retries and backoff waits; 0 means unlimited. Checked before
  // each retry so the daemon never sleeps past its deadline.
  double retry_deadline_ms = 0;
  // Circuit breaker: consecutive kTpmFailed verdicts that open it, and how
  // long (simulated ms) it stays open before a half-open probe.
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 500.0;
};

class TpmQuoteDaemon {
 public:
  explicit TpmQuoteDaemon(Machine* machine, TqdConfig config = TqdConfig())
      : machine_(machine), config_(config) {}

  // Handles a challenge: quote the selected PCRs over the verifier's nonce.
  // Fails while a Flicker session holds the platform (the OS, and hence the
  // daemon, is suspended). With the breaker open the challenge is queued and
  // kTpmFailed returned; DrainQueued() serves it once the TPM recovers.
  Result<AttestationResponse> HandleChallenge(const Bytes& nonce, const PcrSelection& selection);

  // Re-attempts every queued challenge (oldest first). Responses for the
  // ones that now succeed are appended to `responses`; the rest stay queued.
  Status DrainQueued(std::vector<AttestationResponse>* responses);

  // Transient failures absorbed by retries since construction.
  uint64_t retries() const { return retries_; }
  bool breaker_open() const { return breaker_open_; }
  size_t queued_count() const { return queued_.size(); }

 private:
  struct QueuedChallenge {
    Bytes nonce;
    PcrSelection selection;
  };

  Result<AttestationResponse> QuoteOnce(const Bytes& nonce, const PcrSelection& selection);
  void NoteTpmFailure();
  // True when the breaker may pass traffic again (closed, or cooldown over
  // and the half-open GetTestResult probe came back clean).
  bool BreakerAllows();

  Machine* machine_;
  TqdConfig config_;
  uint64_t retries_ = 0;

  bool breaker_open_ = false;
  int consecutive_tpm_failures_ = 0;
  uint64_t breaker_opened_at_us_ = 0;
  std::vector<QueuedChallenge> queued_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_OS_TQD_H_
