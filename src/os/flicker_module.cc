#include "src/os/flicker_module.h"

#include "src/slb/slb_core.h"

namespace flicker {

FlickerModule::FlickerModule(Machine* machine, OsKernel* kernel, Scheduler* scheduler)
    : machine_(machine), kernel_(kernel), scheduler_(scheduler) {}

Status FlickerModule::WriteSlb(const Bytes& image) {
  if (image.size() != kSlbRegionSize) {
    return InvalidArgumentError("SLB image must be exactly 64 KB");
  }
  staged_slb_ = image;
  return Status::Ok();
}

Status FlickerModule::WriteInputs(const Bytes& inputs) {
  if (inputs.size() + 4 > kSlbIoPageSize) {
    return ResourceExhaustedError("inputs exceed the 4 KB input page");
  }
  staged_inputs_ = inputs;
  return Status::Ok();
}

Result<Bytes> FlickerModule::ReadOutputs() const {
  return outputs_;
}

Result<SkinitLaunch> FlickerModule::StartSession() {
  if (staged_slb_.empty()) {
    return FailedPreconditionError("no SLB staged; write the slb entry first");
  }
  if (machine_->in_secure_session()) {
    return FailedPreconditionError("a session is already active");
  }

  // "Initialize the SLB": patch the skeleton GDT/TSS for the load address.
  Bytes patched = staged_slb_;
  PatchSlbImage(&patched, kSlbFixedBase);
  if (corrupt_slb_before_launch_) {
    patched[kSlbCodeOffset + 100] ^= 0xff;  // Malicious-OS tampering.
  }
  FLICKER_RETURN_IF_ERROR(machine_->memory()->Write(kSlbFixedBase, patched));
  FLICKER_RETURN_IF_ERROR(
      WriteIoPage(machine_->memory(), kSlbFixedBase + kSlbInputsOffset, staged_inputs_));

  // "Suspend OS": save kernel state to the well-known page, then use CPU
  // hotplug to idle the APs and park them with INIT IPIs.
  Bytes saved_state;
  PutUint64(&saved_state, machine_->bsp()->cr3);
  FLICKER_RETURN_IF_ERROR(
      WriteIoPage(machine_->memory(), kSlbFixedBase + kSlbSavedStateOffset, saved_state));

  FLICKER_RETURN_IF_ERROR(scheduler_->DescheduleAps());
  for (int cpu = 1; cpu < machine_->num_cpus(); ++cpu) {
    FLICKER_RETURN_IF_ERROR(machine_->apic()->SendInitIpi(cpu));
  }

  Result<SkinitLaunch> launch = machine_->Skinit(machine_->bsp()->id, kSlbFixedBase);
  if (!launch.ok()) {
    // Roll back the suspension so the OS keeps running.
    Status st = scheduler_->RestoreAps();
    (void)st;
    return launch.status();
  }
  session_prepared_ = true;
  return launch;
}

namespace {

// WriteIoPage, but through the guest-access path: in hypervisor mode the
// module runs as a guest and its stores are subject to nested paging.
Status GuestWriteIoPage(Machine* machine, int cpu, uint64_t page_addr, const Bytes& data) {
  if (data.size() + 4 > kSlbIoPageSize) {
    return ResourceExhaustedError("payload exceeds 4 KB I/O page");
  }
  Bytes page;
  PutUint32(&page, static_cast<uint32_t>(data.size()));
  page.insert(page.end(), data.begin(), data.end());
  return machine->GuestWrite(cpu, page_addr, page);
}

}  // namespace

Status FlickerModule::StageForHypervisorAt(uint64_t base) {
  if (staged_slb_.empty()) {
    return FailedPreconditionError("no SLB staged; write the slb entry first");
  }
  const int bsp = machine_->bsp()->id;

  // Same untrusted pre-launch steps as StartSession, minus the suspend
  // dance: patch for the load address, copy image + inputs + saved state.
  Bytes patched = staged_slb_;
  PatchSlbImage(&patched, base);
  if (corrupt_slb_before_launch_) {
    patched[kSlbCodeOffset + 100] ^= 0xff;  // Malicious-OS tampering.
  }
  FLICKER_RETURN_IF_ERROR(machine_->GuestWrite(bsp, base, patched));
  FLICKER_RETURN_IF_ERROR(
      GuestWriteIoPage(machine_, bsp, base + kSlbInputsOffset, staged_inputs_));

  Bytes saved_state;
  PutUint64(&saved_state, machine_->bsp()->cr3);
  return GuestWriteIoPage(machine_, bsp, base + kSlbSavedStateOffset, saved_state);
}

Status FlickerModule::CollectOutputsAt(uint64_t base) {
  const int bsp = machine_->bsp()->id;
  Result<Bytes> header = machine_->GuestRead(bsp, base + kSlbOutputsOffset, 4);
  if (!header.ok()) {
    return header.status();
  }
  uint32_t len = GetUint32(header.value(), 0);
  if (len + 4 > kSlbIoPageSize) {
    return InvalidArgumentError("corrupt I/O page length");
  }
  Result<Bytes> outputs = machine_->GuestRead(bsp, base + kSlbOutputsOffset + 4, len);
  if (!outputs.ok()) {
    return outputs.status();
  }
  outputs_ = outputs.value();
  return Status::Ok();
}

Status FlickerModule::FinishSession() {
  if (!session_prepared_) {
    return FailedPreconditionError("no session to finish");
  }
  session_prepared_ = false;

  // Collect outputs from the well-known page into the sysfs buffer.
  Result<Bytes> outputs = ReadIoPage(*machine_->memory(), kSlbFixedBase + kSlbOutputsOffset);
  if (!outputs.ok()) {
    return outputs.status();
  }
  outputs_ = outputs.value();

  // Wake the APs and resume multiprocessing.
  FLICKER_RETURN_IF_ERROR(scheduler_->RestoreAps());
  return Status::Ok();
}

}  // namespace flicker
