#include "src/os/scheduler.h"

namespace flicker {

Scheduler::Scheduler(Machine* machine)
    : machine_(machine), runqueues_(static_cast<size_t>(machine->num_cpus())) {}

Status Scheduler::Spawn(int cpu, OsTask task) {
  if (cpu < 0 || cpu >= machine_->num_cpus()) {
    return InvalidArgumentError("CPU index out of range");
  }
  if (machine_->cpu(cpu)->state == CpuState::kInit) {
    return FailedPreconditionError("cannot schedule onto a parked CPU");
  }
  runqueues_[static_cast<size_t>(cpu)].push_back(std::move(task));
  machine_->cpu(cpu)->state = CpuState::kRunning;
  return Status::Ok();
}

void Scheduler::RunFor(double ms) {
  for (size_t cpu = 0; cpu < runqueues_.size(); ++cpu) {
    if (machine_->cpu(static_cast<int>(cpu))->state != CpuState::kRunning) {
      continue;
    }
    double budget = ms;
    auto& queue = runqueues_[cpu];
    while (budget > 0 && !queue.empty()) {
      OsTask& task = queue.front();
      double slice = task.remaining_ms < budget ? task.remaining_ms : budget;
      task.remaining_ms -= slice;
      budget -= slice;
      completed_ms_ += slice;
      if (task.remaining_ms <= 0) {
        queue.erase(queue.begin());
      }
    }
  }
  machine_->clock()->AdvanceMillis(ms);
}

Status Scheduler::DescheduleAps() {
  for (int cpu = 1; cpu < machine_->num_cpus(); ++cpu) {
    auto& queue = runqueues_[static_cast<size_t>(cpu)];
    auto& bsp_queue = runqueues_[0];
    bsp_queue.insert(bsp_queue.end(), queue.begin(), queue.end());
    queue.clear();
    machine_->cpu(cpu)->state = CpuState::kIdle;
  }
  return Status::Ok();
}

Status Scheduler::RestoreAps() {
  for (int cpu = 1; cpu < machine_->num_cpus(); ++cpu) {
    if (machine_->cpu(cpu)->state == CpuState::kInit) {
      FLICKER_RETURN_IF_ERROR(machine_->apic()->SendStartupIpi(cpu));
    } else {
      machine_->cpu(cpu)->state = CpuState::kRunning;
    }
  }
  return Status::Ok();
}

bool Scheduler::ApsIdle() const {
  for (int cpu = 1; cpu < machine_->num_cpus(); ++cpu) {
    if (machine_->cpu(cpu)->state == CpuState::kRunning) {
      return false;
    }
  }
  return true;
}

size_t Scheduler::QueueDepth(int cpu) const {
  return runqueues_[static_cast<size_t>(cpu)].size();
}

}  // namespace flicker
