#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace flicker {
namespace obs {

namespace {

// The canonical metric set. docs/METRICS.md is generated from this table
// (micro_obs --dump_metrics_md); verify.sh fails when the checked-in copy
// drifts, so a metric cannot be added or renamed without the docs noticing.
constexpr MetricDef kCounterDefs[static_cast<size_t>(Ctr::kCount)] = {
    {"flicker_sessions_total", "count",
     "Flicker sessions executed (one per FlickerPlatform::ExecuteSession)"},
    {"skinit_launches_total", "count", "Successful SKINIT/SENTER late launches"},
    {"tpm_commands_total", "count",
     "TPM command frames dispatched through TpmTransport (incl. TIS/hardware pseudo-commands)"},
    {"tpm_transport_faults_total", "count",
     "Frames dropped/garbled/delayed by the transport fault plan"},
    {"tqd_retries_total", "count",
     "Transient quote failures absorbed by the quote daemon's retry loop"},
    {"tqd_breaker_trips_total", "count",
     "Times the quote daemon's circuit breaker opened on consecutive TPM failures"},
    {"tqd_challenges_queued_total", "count",
     "Attestation challenges queued behind an open circuit breaker"},
    {"tqd_batch_quotes_total", "count",
     "Merkle-aggregated batch quotes issued (one TPM quote per flushed window)"},
    {"tqd_batched_challenges_total", "count",
     "Attestation challenges answered through a coalesced batch quote"},
    {"attest_session_hits_total", "count",
     "Attested-session calls authenticated by session MAC, skipping the TPM quote"},
    {"attest_session_misses_total", "count",
     "Attested-session lookups that found no live session (fresh quote required)"},
    {"net_messages_sent_total", "count", "Datagrams handed to LossyChannel::Send"},
    {"net_messages_delivered_total", "count", "Datagrams delivered to a receiving endpoint"},
    {"net_faults_injected_total", "count",
     "Datagrams faulted by the armed NetFaultSchedule (drop/dup/reorder/corrupt/delay/partition)"},
    {"session_calls_total", "count", "Reliable request/response calls issued by SessionClient"},
    {"session_retransmits_total", "count", "Request frames retransmitted after a timed-out window"},
    {"session_stale_frames_total", "count",
     "Well-formed frames ignored for carrying a stale or mismatched sequence number"},
    {"session_rejected_frames_total", "count",
     "Inbound frames rejected as malformed/corrupt (client and server sides)"},
    {"session_requests_handled_total", "count",
     "Requests executed by SessionServer handlers (at-most-once executions)"},
    {"session_duplicates_served_total", "count",
     "Duplicate requests answered from the server reply cache without re-execution"},
    {"attest_challenges_handled_total", "count",
     "Attestation challenges answered with a fresh PAL session and quote"},
    {"attest_replays_rejected_total", "count",
     "Attestation challenges refused because their nonce was already answered"},
    {"measure_hashes_total", "count",
     "SLB measurements that ran a full SHA-1 pass (cache miss or changed content)"},
    {"measure_verified_hits_total", "count",
     "SLB measurements served after a snapshot compare (written but byte-identical)"},
    {"measure_clean_hits_total", "count",
     "SLB measurements served from an untouched cache entry (no memory traffic)"},
    {"seal_recover_clean_total", "count",
     "Crash recoveries that found no staged snapshot (nothing to repair)"},
    {"seal_recover_discarded_staged_total", "count",
     "Crash recoveries that discarded a pre-increment or orphaned staged snapshot"},
    {"seal_recover_rolled_forward_total", "count",
     "Crash recoveries that promoted a staged snapshot whose counter increment had landed"},
    {"seal_recover_fail_closed_total", "count",
     "Crash recoveries that refused to serve any state (staged version ahead of the counter)"},
    {"dma_blocked_total", "count", "DMA accesses refused by the Device Exclusion Vector"},
    {"power_cuts_total", "count", "Simulated power losses (RAM erased, TPM reset line fired)"},
    {"warm_resets_total", "count", "Simulated warm resets (RAM preserved, TPM reset line fired)"},
    {"fleet_sessions_total", "count",
     "Attestation rounds completed and verified by the fleet simulation's verifier farm"},
    {"fleet_rounds_failed_total", "count",
     "Fleet attestation rounds that failed verification, timed out, or died to a fault"},
    {"vtpm_quotes_total", "count",
     "Hardware quotes issued on behalf of virtual TPM tenants by the multiplexer"},
    {"vtpm_extends_total", "count", "Virtual PCR extend operations applied across all tenants"},
    {"vtpm_snapshots_total", "count",
     "Per-tenant vTPM state snapshots sealed through the crash-consistent store"},
    {"vtpm_rollbacks_detected_total", "count",
     "Stale vTPM snapshots rejected by the NV monotonic counter binding (fail closed)"},
    {"vtpm_quarantines_total", "count",
     "Tenants quarantined by the multiplexer's per-tenant circuit breaker"},
    {"vtpm_shed_total", "count",
     "Tenant requests shed with kUnavailable (quarantine, full queue, or deadline)"},
    {"vtpm_recoveries_total", "count",
     "Per-tenant vTPM stores recovered after a power cut (any recovery class)"},
    {"session_overload_retries_total", "count",
     "Session calls that received kOverloaded and re-entered the backoff schedule"},
    {"session_overload_sheds_total", "count",
     "Session requests shed by a server's admission control (answered, never cached)"},
    {"fleet_hedges_fired_total", "count",
     "Hedged duplicate requests fired after the p95-derived hedge delay expired"},
    {"fleet_hedge_wins_total", "count",
     "Fleet rounds resolved by the hedge copy rather than the primary verifier"},
    {"fleet_overload_sheds_total", "count",
     "Fleet responses shed by farm admission control (queue depth over the cap)"},
    {"fleet_overload_resends_total", "count",
     "Fleet responses re-sent after a full-jitter backoff following an overload shed"},
    {"fleet_verifier_breaker_trips_total", "count",
     "Per-verifier circuit breakers opened by consecutive hedge-detected misses"},
    {"fleet_verifier_faults_total", "count",
     "Verifier-farm fault activations injected by the chaos plan (gray/crash/hang)"},
    {"chaos_plans_run_total", "count",
     "Composite chaos fault plans executed by the fuzzer (including shrink re-runs)"},
    {"chaos_violations_found_total", "count",
     "Chaos plans whose run violated an invariant oracle (before shrinking)"},
    {"hv_sessions_total", "count",
     "Concurrent PAL sessions started under the minimal hypervisor"},
    {"hv_exits_total", "count",
     "Guest exits handled by the hypervisor (hypercalls and intercepted accesses)"},
    {"hv_denied_accesses_total", "count",
     "Cross-core attacks refused by the hypervisor with a typed denial"},
};

constexpr MetricDef kHistogramDefs[static_cast<size_t>(Hist::kCount)] = {
    {"tpm_command_latency_ms", "ms",
     "Simulated latency charged per dispatched TPM command frame"},
    {"skinit_latency_ms", "ms", "Simulated cost of the SKINIT/SENTER instruction per launch"},
    {"flicker_session_total_ms", "ms",
     "Simulated wall time of one full Flicker session, either mode (classic: "
     "suspend through resume; concurrent: hypercall through output collection)"},
    {"session_call_latency_ms", "ms",
     "Simulated time one SessionClient::Call spent until verdict (success or fail-closed)"},
    {"tqd_batch_size", "challenges",
     "Challenges coalesced into each flushed batch-quote window"},
    {"tqd_coalesce_wait_ms", "ms",
     "Simulated age of a batch window (oldest challenge) when its quote was issued"},
    {"sim_event_heap_size", "events",
     "Pending events on the SimExecutor heap, sampled at each dispatch"},
    {"fleet_round_latency_ms", "ms",
     "Simulated end-to-end fleet round latency (client arrival to verifier verdict)"},
    {"fleet_verifier_busy_ms", "ms",
     "Simulated time a verifier-farm worker spent verifying one fleet round"},
    {"vtpm_queue_age_ms", "ms",
     "Simulated age of a tenant request when the multiplexer dispatched (or shed) it"},
    {"vtpm_round_latency_ms", "ms",
     "Simulated end-to-end vTPM quote latency (tenant enqueue to completion callback)"},
    {"fleet_hedge_delay_ms", "ms",
     "Hedge delay in force when each hedge fired (p95 of observed ack round-trips)"},
    {"fleet_verifier_mttr_ms", "ms",
     "Simulated time a verifier's breaker stayed open before a probe re-closed it"},
    {"hv_exit_latency_ms", "ms",
     "Simulated cost of one guest exit round trip (two world switches plus handler)"},
    {"hv_session_concurrency", "sessions",
     "Concurrent hypervisor PAL sessions active, sampled at each session start"},
};

const char* TypeName(MetricType type) {
  return type == MetricType::kCounter ? "counter" : "histogram";
}

}  // namespace

const MetricDef& CounterDef(Ctr c) { return kCounterDefs[static_cast<size_t>(c)]; }
const MetricDef& HistogramDef(Hist h) { return kHistogramDefs[static_cast<size_t>(h)]; }

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

void MetricsRegistry::Observe(Hist h, double value_ms) {
  HistogramState& state = histograms_[static_cast<size_t>(h)];
  int bucket = kHistogramBucketCount - 1;
  for (int i = 0; i < kHistogramBucketCount - 1; ++i) {
    if (value_ms <= kHistogramBoundsMs[i]) {
      bucket = i;
      break;
    }
  }
  state.buckets[static_cast<size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  state.count.fetch_add(1, std::memory_order_relaxed);
  if (value_ms > 0) {
    state.sum_us.fetch_add(static_cast<uint64_t>(value_ms * 1000.0 + 0.5),
                           std::memory_order_relaxed);
  }
}

uint64_t MetricsRegistry::HistogramCount(Hist h) const {
  return histograms_[static_cast<size_t>(h)].count.load(std::memory_order_relaxed);
}

double MetricsRegistry::HistogramSumMs(Hist h) const {
  return static_cast<double>(
             histograms_[static_cast<size_t>(h)].sum_us.load(std::memory_order_relaxed)) /
         1000.0;
}

uint64_t MetricsRegistry::HistogramBucket(Hist h, int bucket) const {
  if (bucket < 0 || bucket >= kHistogramBucketCount) {
    return 0;
  }
  return histograms_[static_cast<size_t>(h)].buckets[static_cast<size_t>(bucket)].load(
      std::memory_order_relaxed);
}

Result<int> MetricsRegistry::RegisterCounter(const std::string& name, const std::string& unit,
                                             const std::string& help) {
  for (const MetricDef& def : kCounterDefs) {
    if (name == def.name) {
      return InvalidArgumentError("metric name collides with standard counter: " + name);
    }
  }
  for (const MetricDef& def : kHistogramDefs) {
    if (name == def.name) {
      return InvalidArgumentError("metric name collides with standard histogram: " + name);
    }
  }
  std::lock_guard<std::mutex> lock(dynamic_mu_);
  auto it = dynamic_by_name_.find(name);
  if (it != dynamic_by_name_.end()) {
    const DynamicCounter& existing = dynamic_[static_cast<size_t>(it->second)];
    if (existing.unit != unit || existing.help != help) {
      return InvalidArgumentError("metric re-registered with conflicting metadata: " + name);
    }
    return it->second;  // Idempotent: same definition, same id.
  }
  int id = static_cast<int>(dynamic_.size());
  DynamicCounter& counter = dynamic_.emplace_back();
  counter.name = name;
  counter.unit = unit;
  counter.help = help;
  dynamic_by_name_.emplace(name, id);
  return id;
}

void MetricsRegistry::IncDynamic(int id, uint64_t n) {
  std::lock_guard<std::mutex> lock(dynamic_mu_);
  if (id >= 0 && static_cast<size_t>(id) < dynamic_.size()) {
    dynamic_[static_cast<size_t>(id)].value.fetch_add(n, std::memory_order_relaxed);
  }
}

uint64_t MetricsRegistry::GetDynamic(int id) const {
  std::lock_guard<std::mutex> lock(dynamic_mu_);
  if (id < 0 || static_cast<size_t>(id) >= dynamic_.size()) {
    return 0;
  }
  return dynamic_[static_cast<size_t>(id)].value.load(std::memory_order_relaxed);
}

void MetricsRegistry::DumpText(std::ostream& os) const {
  os << "# flicker metrics dump\n";
  for (size_t i = 0; i < static_cast<size_t>(Ctr::kCount); ++i) {
    os << kCounterDefs[i].name << " " << counters_[i].load(std::memory_order_relaxed) << "\n";
  }
  for (size_t i = 0; i < static_cast<size_t>(Hist::kCount); ++i) {
    const HistogramState& state = histograms_[i];
    os << kHistogramDefs[i].name << "_count " << state.count.load(std::memory_order_relaxed)
       << "\n";
    char sum[64];
    std::snprintf(sum, sizeof(sum), "%.3f",
                  static_cast<double>(state.sum_us.load(std::memory_order_relaxed)) / 1000.0);
    os << kHistogramDefs[i].name << "_sum_ms " << sum << "\n";
    for (int b = 0; b < kHistogramBucketCount; ++b) {
      uint64_t count = state.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
      if (count == 0) {
        continue;  // Sparse: only occupied buckets print.
      }
      if (b < kHistogramBucketCount - 1) {
        char bound[32];
        std::snprintf(bound, sizeof(bound), "%g", kHistogramBoundsMs[b]);
        os << kHistogramDefs[i].name << "_bucket{le=\"" << bound << "\"} " << count << "\n";
      } else {
        os << kHistogramDefs[i].name << "_bucket{le=\"+inf\"} " << count << "\n";
      }
    }
  }
  std::lock_guard<std::mutex> lock(dynamic_mu_);
  for (const DynamicCounter& counter : dynamic_) {
    os << counter.name << " " << counter.value.load(std::memory_order_relaxed) << "\n";
  }
}

void MetricsRegistry::DumpMarkdown(std::ostream& os) {
  os << "# Metrics reference\n"
     << "\n"
     << "Generated by `micro_obs --dump_metrics_md=docs/METRICS.md` from the\n"
     << "definition table in `src/obs/metrics.cc`. Do not edit by hand:\n"
     << "`verify.sh` fails when this file drifts from the code.\n"
     << "\n"
     << "All values aggregate over the life of the process in the global\n"
     << "`obs::MetricsRegistry`. Histograms use the shared bucket bounds\n";
  os << "`{";
  for (int i = 0; i < kHistogramBucketCount - 1; ++i) {
    char bound[32];
    std::snprintf(bound, sizeof(bound), "%g", kHistogramBoundsMs[i]);
    os << (i > 0 ? ", " : "") << bound;
  }
  os << ", +inf}` (simulated milliseconds).\n"
     << "\n"
     << "| Metric | Type | Unit | Description |\n"
     << "|---|---|---|---|\n";
  for (const MetricDef& def : kCounterDefs) {
    os << "| `" << def.name << "` | " << TypeName(MetricType::kCounter) << " | " << def.unit
       << " | " << def.help << " |\n";
  }
  for (const MetricDef& def : kHistogramDefs) {
    os << "| `" << def.name << "` | " << TypeName(MetricType::kHistogram) << " | " << def.unit
       << " | " << def.help << " |\n";
  }
}

void MetricsRegistry::ResetValuesForTesting() {
  for (auto& counter : counters_) {
    counter.store(0, std::memory_order_relaxed);
  }
  for (auto& state : histograms_) {
    for (auto& bucket : state.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    state.count.store(0, std::memory_order_relaxed);
    state.sum_us.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(dynamic_mu_);
  for (DynamicCounter& counter : dynamic_) {
    counter.value.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace flicker
