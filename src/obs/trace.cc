#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace flicker {
namespace obs {

namespace {

Tracer* g_tracer = nullptr;

// Minimal JSON string escaping; metric/span names are ASCII by convention
// but arbitrary Status messages can flow into args.
void AppendJsonString(std::string* out, const std::string& in) {
  out->push_back('"');
  for (char c : in) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Chrome trace timestamps are microseconds; ours are integer nanoseconds,
// so three decimals render them exactly (no float drift across runs).
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out->append(buf);
}

void AppendArgs(std::string* out, uint64_t session_id, const std::vector<SpanArg>& args) {
  out->append("\"args\":{\"session\":");
  AppendJsonString(out, std::to_string(session_id));
  for (const SpanArg& arg : args) {
    out->push_back(',');
    AppendJsonString(out, arg.key);
    out->push_back(':');
    AppendJsonString(out, arg.value);
  }
  out->push_back('}');
}

}  // namespace

Tracer* GlobalTracer() { return g_tracer; }

void InstallGlobalTracer(Tracer* tracer) { g_tracer = tracer; }

uint64_t Tracer::BeginSpan(const char* category, std::string name) {
  SpanRecord span;
  span.id = spans_.size() + instants_.size() + 1;
  span.parent_id = stack_.empty() ? 0 : stack_.back();
  span.pid = current_pid_;
  span.session_id = current_session_;
  span.start_ns = NowNs(clock_);
  span.end_ns = span.start_ns;
  span.open = true;
  span.category = category;
  span.name = std::move(name);
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  // Single-threaded stack discipline: the span being ended is normally the
  // innermost open one. A mismatched end (a bug in instrumentation) closes
  // everything above it too, so the tree stays well-formed.
  while (!stack_.empty()) {
    uint64_t top = stack_.back();
    stack_.pop_back();
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
      if (it->id == top && it->open) {
        it->end_ns = NowNs(clock_);
        it->open = false;
        break;
      }
    }
    if (top == id) {
      break;
    }
  }
}

void Tracer::AddSpanArg(uint64_t id, std::string key, std::string value) {
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id == id) {
      it->args.push_back(SpanArg{std::move(key), std::move(value)});
      return;
    }
  }
}

uint64_t Tracer::EmitComplete(const char* category, std::string name, uint64_t start_ns,
                              uint64_t end_ns) {
  SpanRecord span;
  span.id = spans_.size() + instants_.size() + 1;
  span.parent_id = stack_.empty() ? 0 : stack_.back();
  span.pid = current_pid_;
  span.session_id = current_session_;
  span.start_ns = start_ns;
  span.end_ns = end_ns < start_ns ? start_ns : end_ns;
  span.open = false;
  span.category = category;
  span.name = std::move(name);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::Instant(const char* category, std::string name, std::vector<SpanArg> args) {
  InstantRecord instant;
  instant.ts_ns = NowNs(clock_);
  instant.pid = current_pid_;
  instant.session_id = current_session_;
  instant.category = category;
  instant.name = std::move(name);
  instant.args = std::move(args);
  instants_.push_back(std::move(instant));
}

uint64_t Tracer::SetSession(uint64_t session_id) {
  uint64_t previous = current_session_;
  current_session_ = session_id;
  return previous;
}

uint64_t Tracer::SetProcess(uint64_t pid) {
  uint64_t previous = current_pid_;
  current_pid_ = pid;
  return previous;
}

std::string Tracer::ExportChromeTrace() const {
  // One sortable row per event: (timestamp, creation order) fully determines
  // the output order, so same-seed runs serialize byte-identically.
  struct Row {
    uint64_t ts_ns;
    uint64_t order;
    const SpanRecord* span;
    const InstantRecord* instant;
  };
  std::vector<Row> rows;
  rows.reserve(spans_.size() + instants_.size());
  for (const SpanRecord& span : spans_) {
    rows.push_back(Row{span.start_ns, span.id, &span, nullptr});
  }
  uint64_t instant_order = 0;
  for (const InstantRecord& instant : instants_) {
    // Instants interleave after any span that starts at the same tick.
    rows.push_back(Row{instant.ts_ns, (1ull << 60) + instant_order++, nullptr, &instant});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.ts_ns != b.ts_ns) {
      return a.ts_ns < b.ts_ns;
    }
    return a.order < b.order;
  });

  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  for (const Row& row : rows) {
    if (!first) {
      out.append(",\n");
    }
    first = false;
    if (row.span != nullptr) {
      const SpanRecord& span = *row.span;
      out.append("{\"ph\":\"X\",\"pid\":");
      out.append(std::to_string(span.pid));
      out.append(",\"tid\":");
      out.append(std::to_string(span.session_id));
      out.append(",\"ts\":");
      AppendMicros(&out, span.start_ns);
      out.append(",\"dur\":");
      AppendMicros(&out, span.end_ns - span.start_ns);
      out.append(",\"cat\":");
      AppendJsonString(&out, span.category);
      out.append(",\"name\":");
      AppendJsonString(&out, span.name);
      out.push_back(',');
      AppendArgs(&out, span.session_id, span.args);
      out.push_back('}');
    } else {
      const InstantRecord& instant = *row.instant;
      out.append("{\"ph\":\"i\",\"s\":\"t\",\"pid\":");
      out.append(std::to_string(instant.pid));
      out.append(",\"tid\":");
      out.append(std::to_string(instant.session_id));
      out.append(",\"ts\":");
      AppendMicros(&out, instant.ts_ns);
      out.append(",\"cat\":");
      AppendJsonString(&out, instant.category);
      out.append(",\"name\":");
      AppendJsonString(&out, instant.name);
      out.push_back(',');
      AppendArgs(&out, instant.session_id, instant.args);
      out.push_back('}');
    }
  }
  out.append("\n]}\n");
  return out;
}

void Tracer::ExportChromeTrace(std::ostream& os) const { os << ExportChromeTrace(); }

}  // namespace obs
}  // namespace flicker
