// Deterministic cross-layer session tracing on the simulated clock.
//
// One Tracer records everything one run does as a single stream of nested
// spans and instant events, keyed by the monotonically assigned Flicker
// session id and timestamped in sim-clock nanoseconds. Because every
// timestamp comes from SimClock (never the host), the same seed produces a
// byte-identical export: traces are artifacts a test can diff, not
// screenshots of a lucky run.
//
// The span tree of one attestation round reads top-down through the stack:
//
//   attest.handle_challenge            (app/attest layer)
//     flicker.session #3               (core; the assigned session id)
//       platform.stage                 (flicker-module sysfs writes)
//       platform.suspend_skinit        (AP parking + SKINIT)
//         hw.skinit
//           TPM_HW_SkinitReset         (tpm; locality-4 pseudo-command)
//       slb.run
//         slb.stub_hash
//         slb.pal_execute
//         TPM_ORD_Extend ...           (closing extends)
//       platform.resume
//     tqd.quote
//       TPM_ORD_Quote                  (the 972 ms the paper measures)
//
// Instrumentation sites use ScopedSpan / Instant, which no-op (one global
// pointer load + branch) while no tracer is installed, and compile to
// nothing under -DFLICKER_OBS=OFF. Installing a tracer never advances the
// simulated clock, so Table 1/2/4 and Fig. 9 outputs are bit-identical with
// tracing on or off.
//
// Export format: Chrome trace_event JSON ("X" complete events + "i"
// instants), loadable in chrome://tracing or https://ui.perfetto.dev. The
// Flicker session id is mapped to the Chrome "tid" so Perfetto lays
// sessions out as separate tracks.

#ifndef FLICKER_SRC_OBS_TRACE_H_
#define FLICKER_SRC_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/hw/clock.h"

namespace flicker {
namespace obs {

// The shared trace epoch: sim-clock nanoseconds since platform construction.
// Every trace timestamp in the tree - tracer spans, the TpmTransport command
// ring, the LossyChannel delivery rings - reports in this unit and epoch.
// SimClock itself keeps nanoseconds, so this is the clock's native reading;
// there is no longer a µs→ns upscale hiding sub-microsecond charges.
inline uint64_t NowNs(const SimClock* clock) { return clock->NowNanos(); }

struct SpanArg {
  std::string key;
  std::string value;
};

struct SpanRecord {
  uint64_t id = 0;         // 1-based creation order.
  uint64_t parent_id = 0;  // 0 = root.
  uint64_t pid = 1;        // Chrome "process": 1 standalone, machine id in a fleet.
  uint64_t session_id = 0; // Flicker session id; 0 = outside any session.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;     // == start for zero-cost spans; set at EndSpan.
  bool open = false;       // True until EndSpan.
  const char* category = "";
  std::string name;
  std::vector<SpanArg> args;
};

struct InstantRecord {
  uint64_t ts_ns = 0;
  uint64_t pid = 1;        // Chrome "process": 1 standalone, machine id in a fleet.
  uint64_t session_id = 0;
  const char* category = "";
  std::string name;
  std::vector<SpanArg> args;
};

class Tracer {
 public:
  explicit Tracer(const SimClock* clock) : clock_(clock) {}

  // ---- Span API (single-threaded stack discipline) ----
  uint64_t BeginSpan(const char* category, std::string name);
  void EndSpan(uint64_t id);
  void AddSpanArg(uint64_t id, std::string key, std::string value);
  // An already-measured interval (e.g. the transport knows a command's
  // charged latency only after dispatch); parented under the innermost open
  // span like any other child.
  uint64_t EmitComplete(const char* category, std::string name, uint64_t start_ns,
                        uint64_t end_ns);
  void Instant(const char* category, std::string name, std::vector<SpanArg> args = {});

  // ---- Flicker session annotation ----
  //
  // The platform assigns session ids monotonically; the tracer only tags
  // the spans recorded while a session is current. Nested sessions are not
  // a thing Flicker has, but SetSession returns the previous id so scoped
  // helpers restore correctly anyway.
  uint64_t SetSession(uint64_t session_id);
  uint64_t current_session() const { return current_session_; }

  // ---- Fleet process annotation ----
  //
  // In a fleet simulation every machine maps to its own Chrome "pid" so one
  // Perfetto load lays the whole fleet out as parallel process tracks.
  // Standalone runs keep the historical pid 1. Like SetSession, returns the
  // previous pid so scoped helpers restore correctly.
  uint64_t SetProcess(uint64_t pid);
  uint64_t current_process() const { return current_pid_; }

  const SimClock* clock() const { return clock_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<InstantRecord>& instants() const { return instants_; }
  size_t open_depth() const { return stack_.size(); }

  // Chrome trace_event JSON, deterministic: events ordered by (start, id),
  // fixed float formatting, no host state. Loadable in chrome://tracing and
  // Perfetto.
  void ExportChromeTrace(std::ostream& os) const;
  std::string ExportChromeTrace() const;

 private:
  const SimClock* clock_;
  std::vector<SpanRecord> spans_;
  std::vector<InstantRecord> instants_;
  std::vector<uint64_t> stack_;  // Open span ids, innermost last.
  uint64_t current_session_ = 0;
  uint64_t current_pid_ = 1;
};

// ---- Global installation ----
//
// The simulation is single-threaded per platform; instrumentation sites
// reach the tracer through one global pointer so no constructor signature
// in hw/tpm/net/core had to change. Null (the default) disables tracing.
Tracer* GlobalTracer();
void InstallGlobalTracer(Tracer* tracer);  // Pass nullptr to uninstall.

#if defined(FLICKER_OBS_DISABLED)

// Compiled-out variants: every instrumentation site elides to nothing.
class ScopedSpan {
 public:
  ScopedSpan(const char*, const char*) {}
  ScopedSpan(const char*, std::string) {}
  void Arg(const char*, const std::string&) {}
  void Arg(const char*, uint64_t) {}
};
class ScopedSession {
 public:
  explicit ScopedSession(uint64_t) {}
};
class ScopedProcess {
 public:
  explicit ScopedProcess(uint64_t) {}
};
inline void Instant(const char*, const char*, std::vector<SpanArg> = {}) {}
inline void EmitComplete(const char*, std::string, uint64_t, uint64_t) {}

#else

// RAII span against the global tracer; a no-op when none is installed.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name) : ScopedSpan(category, std::string(name)) {}
  ScopedSpan(const char* category, std::string name) {
    Tracer* tracer = GlobalTracer();
    if (tracer != nullptr) {
      tracer_ = tracer;
      id_ = tracer->BeginSpan(category, std::move(name));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(id_);
    }
  }

  void Arg(const char* key, const std::string& value) {
    if (tracer_ != nullptr) {
      tracer_->AddSpanArg(id_, key, value);
    }
  }
  void Arg(const char* key, uint64_t value) {
    if (tracer_ != nullptr) {
      tracer_->AddSpanArg(id_, key, std::to_string(value));
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

// RAII Flicker-session annotation scope.
class ScopedSession {
 public:
  explicit ScopedSession(uint64_t session_id) {
    Tracer* tracer = GlobalTracer();
    if (tracer != nullptr) {
      tracer_ = tracer;
      previous_ = tracer->SetSession(session_id);
    }
  }
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;
  ~ScopedSession() {
    if (tracer_ != nullptr) {
      tracer_->SetSession(previous_);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t previous_ = 0;
};

// RAII fleet-machine (Chrome pid) annotation scope.
class ScopedProcess {
 public:
  explicit ScopedProcess(uint64_t pid) {
    Tracer* tracer = GlobalTracer();
    if (tracer != nullptr) {
      tracer_ = tracer;
      previous_ = tracer->SetProcess(pid);
    }
  }
  ScopedProcess(const ScopedProcess&) = delete;
  ScopedProcess& operator=(const ScopedProcess&) = delete;
  ~ScopedProcess() {
    if (tracer_ != nullptr) {
      tracer_->SetProcess(previous_);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t previous_ = 1;
};

inline void Instant(const char* category, const char* name, std::vector<SpanArg> args = {}) {
  Tracer* tracer = GlobalTracer();
  if (tracer != nullptr) {
    tracer->Instant(category, name, std::move(args));
  }
}

inline void EmitComplete(const char* category, std::string name, uint64_t start_ns,
                         uint64_t end_ns) {
  Tracer* tracer = GlobalTracer();
  if (tracer != nullptr) {
    tracer->EmitComplete(category, std::move(name), start_ns, end_ns);
  }
}

#endif  // FLICKER_OBS_DISABLED

}  // namespace obs
}  // namespace flicker

#endif  // FLICKER_SRC_OBS_TRACE_H_
