// Central metrics registry: one process-wide home for every counter and
// latency histogram the reproduction maintains.
//
// Before this layer, counters lived wherever the code that bumped them
// happened to be (`replays_rejected` in AttestationService, retransmit
// counts in SessionClient, cache hits in SlbMeasurementCache, ...), so no
// single dump could answer "what did this run do?". The registry is the
// canonical aggregate: every standard metric is declared once in the table
// in metrics.cc (name, type, unit, help), instrumentation sites increment
// by enum id (an array index - no map lookup on the hot path), and the
// whole set exports as a plain-text dump or as the generated
// docs/METRICS.md reference table.
//
// Per-instance accessors (e.g. SessionClient::retransmits()) remain - tests
// and callers want the local view - but the registry sees every increment,
// so the global totals and the local counts can never tell different
// stories.
//
// Thread safety: counters and histogram buckets are atomics; dynamic
// registration takes a mutex. The simulation itself is single-threaded, but
// the registry must not be the reason a future multi-platform harness
// races.

#ifndef FLICKER_SRC_OBS_METRICS_H_
#define FLICKER_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

#include "src/common/status.h"

namespace flicker {
namespace obs {

// Standard counters. Adding one: extend this enum (before kCount) and its
// row in kCounterDefs in metrics.cc; docs/METRICS.md is regenerated from
// that table, never edited by hand.
enum class Ctr : int {
  kFlickerSessions = 0,
  kSkinitLaunches,
  kTpmCommands,
  kTpmTransportFaults,
  kTqdRetries,
  kTqdBreakerTrips,
  kTqdChallengesQueued,
  kTqdBatchQuotes,
  kTqdBatchedChallenges,
  kAttestSessionHits,
  kAttestSessionMisses,
  kNetMessagesSent,
  kNetMessagesDelivered,
  kNetFaultsInjected,
  kSessionCalls,
  kSessionRetransmits,
  kSessionStaleFrames,
  kSessionRejectedFrames,
  kSessionRequestsHandled,
  kSessionDuplicatesServed,
  kAttestChallengesHandled,
  kAttestReplaysRejected,
  kMeasureHashes,
  kMeasureVerifiedHits,
  kMeasureCleanHits,
  kSealRecoverClean,
  kSealRecoverDiscardedStaged,
  kSealRecoverRolledForward,
  kSealRecoverFailClosed,
  kDmaBlocked,
  kPowerCuts,
  kWarmResets,
  kFleetSessions,
  kFleetRoundsFailed,
  kVtpmQuotes,
  kVtpmExtends,
  kVtpmSnapshots,
  kVtpmRollbacksDetected,
  kVtpmQuarantines,
  kVtpmShed,
  kVtpmRecoveries,
  kSessionOverloadRetries,
  kSessionOverloadSheds,
  kFleetHedgesFired,
  kFleetHedgeWins,
  kFleetOverloadSheds,
  kFleetOverloadResends,
  kFleetVerifierBreakerTrips,
  kFleetVerifierFaults,
  kChaosPlansRun,
  kChaosViolationsFound,
  kHvSessions,
  kHvExits,
  kHvDeniedAccesses,
  kCount
};

// Standard latency histograms (fixed bucket bounds, simulated milliseconds).
enum class Hist : int {
  kTpmCommandLatencyMs = 0,
  kSkinitLatencyMs,
  kFlickerSessionTotalMs,
  kSessionCallLatencyMs,
  kTqdBatchSize,
  kTqdCoalesceWaitMs,
  kSimEventHeapSize,
  kFleetRoundLatencyMs,
  kFleetVerifierBusyMs,
  kVtpmQueueAgeMs,
  kVtpmRoundLatencyMs,
  kFleetHedgeDelayMs,
  kFleetVerifierMttrMs,
  kHvExitLatencyMs,
  kHvSessionConcurrency,
  kCount
};

enum class MetricType { kCounter, kHistogram };

struct MetricDef {
  const char* name;  // Canonical dotted-to-underscore name, e.g. "tpm_commands_total".
  const char* unit;  // "count", "ms", ...
  const char* help;  // One-line description for the generated reference.
};

// Fixed bucket upper bounds shared by every histogram, in milliseconds; the
// last bucket is +inf. Chosen to straddle the paper's measured range: a PCR
// extend is ~1 ms, a Quote ~1 s (Table 1).
inline constexpr double kHistogramBoundsMs[] = {0.1, 0.5, 1, 2, 5,  10,  20,   50,
                                                100, 200, 500, 1000, 2000, 5000};
inline constexpr int kHistogramBucketCount =
    static_cast<int>(sizeof(kHistogramBoundsMs) / sizeof(kHistogramBoundsMs[0])) + 1;

const MetricDef& CounterDef(Ctr c);
const MetricDef& HistogramDef(Hist h);

class MetricsRegistry {
 public:
  MetricsRegistry();

  // The process-wide registry every instrumentation site increments.
  static MetricsRegistry* Global();

  // ---- Hot path (standard metrics; lock-free) ----
  void Inc(Ctr c, uint64_t n = 1) {
    counters_[static_cast<size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Get(Ctr c) const {
    return counters_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }
  void Observe(Hist h, double value_ms);
  uint64_t HistogramCount(Hist h) const;
  double HistogramSumMs(Hist h) const;
  uint64_t HistogramBucket(Hist h, int bucket) const;

  // ---- Dynamic extension metrics ----
  //
  // For counters that are not part of the standard set (one-off experiment
  // knobs, app-specific counts). Registration is idempotent: registering the
  // same name with identical unit+help returns the existing id; the same
  // name with different metadata (or a name colliding with a standard
  // metric) is an error - two sites cannot silently disagree about what a
  // metric means.
  Result<int> RegisterCounter(const std::string& name, const std::string& unit,
                              const std::string& help);
  void IncDynamic(int id, uint64_t n = 1);
  uint64_t GetDynamic(int id) const;

  // ---- Exports ----
  //
  // Plain-text operator dump: every metric with its current value, counters
  // first, then histograms with per-bucket counts. Deterministic order
  // (definition table order, then dynamic registration order).
  void DumpText(std::ostream& os) const;
  // The generated docs/METRICS.md: the canonical name/type/unit/help table
  // for the standard set (dynamic metrics are run-scoped, not documented).
  static void DumpMarkdown(std::ostream& os);

  // Zeroes every value (standard and dynamic) without invalidating ids.
  void ResetValuesForTesting();

 private:
  struct DynamicCounter {
    std::string name;
    std::string unit;
    std::string help;
    std::atomic<uint64_t> value{0};
  };
  struct HistogramState {
    std::array<std::atomic<uint64_t>, kHistogramBucketCount> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_us{0};  // Accumulated in integer microseconds.
  };

  std::array<std::atomic<uint64_t>, static_cast<size_t>(Ctr::kCount)> counters_{};
  std::array<HistogramState, static_cast<size_t>(Hist::kCount)> histograms_{};

  mutable std::mutex dynamic_mu_;
  std::deque<DynamicCounter> dynamic_;  // Deque: ids stay stable as it grows.
  std::map<std::string, int> dynamic_by_name_;
};

// Shorthand for instrumentation sites: bump a standard counter in the
// global registry. Compiled to nothing when observability is compiled out.
#if defined(FLICKER_OBS_DISABLED)
inline void Count(Ctr, uint64_t = 1) {}
inline void ObserveMs(Hist, double) {}
#else
inline void Count(Ctr c, uint64_t n = 1) { MetricsRegistry::Global()->Inc(c, n); }
inline void ObserveMs(Hist h, double value_ms) { MetricsRegistry::Global()->Observe(h, value_ms); }
#endif

}  // namespace obs
}  // namespace flicker

#endif  // FLICKER_SRC_OBS_METRICS_H_
