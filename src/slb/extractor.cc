#include "src/slb/extractor.h"

#include <algorithm>

namespace flicker {

void CallGraph::AddFunction(SourceFunction function) {
  functions_[function.name] = std::move(function);
}

const SourceFunction* CallGraph::Find(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

Result<PalSpec> ExtractPal(const CallGraph& graph, const std::string& target) {
  if (!graph.Has(target)) {
    return NotFoundError("target function not found in call graph: " + target);
  }

  PalSpec spec;
  spec.target = target;

  // Depth-first closure over in-program functions; out-of-program callees
  // become external symbols.
  std::set<std::string> visited;
  std::set<std::string> externals;
  std::vector<std::string> stack = {target};
  while (!stack.empty()) {
    std::string name = stack.back();
    stack.pop_back();
    if (visited.count(name) != 0) {
      continue;
    }
    visited.insert(name);
    const SourceFunction* function = graph.Find(name);
    if (function == nullptr) {
      externals.insert(name);
      continue;
    }
    spec.extracted_functions.push_back(name);
    spec.extracted_lines += function->lines_of_code;
    spec.extracted_bytes += function->code_bytes;
    for (const std::string& callee : function->callees) {
      stack.push_back(callee);
    }
  }
  std::sort(spec.extracted_functions.begin(), spec.extracted_functions.end());

  // Resolve external symbols against the module registry.
  ModuleRegistry registry;
  std::set<std::string> modules;
  for (const std::string& symbol : externals) {
    bool resolved = false;
    for (const PalModule& module : registry.modules()) {
      if (std::find(module.exported_symbols.begin(), module.exported_symbols.end(), symbol) !=
          module.exported_symbols.end()) {
        modules.insert(module.name);
        resolved = true;
        break;
      }
    }
    if (!resolved) {
      spec.unresolved_symbols.push_back(symbol);
    }
  }
  spec.required_modules.assign(modules.begin(), modules.end());
  std::sort(spec.unresolved_symbols.begin(), spec.unresolved_symbols.end());
  return spec;
}

}  // namespace flicker
