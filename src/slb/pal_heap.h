// The Memory Management PAL module (paper Fig. 6): malloc/free/realloc over
// a statically allocated arena.
//
// A PAL has no OS services, so the module manages a fixed global buffer with
// a first-fit free list (with coalescing on free). The arena is part of the
// PAL's memory and is wiped by the SLB core's cleanup like everything else.

#ifndef FLICKER_SRC_SLB_PAL_HEAP_H_
#define FLICKER_SRC_SLB_PAL_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flicker {

class PalHeap {
 public:
  // Creates a heap over an arena of `arena_bytes` (rounded down to 8-byte
  // granularity). The paper's module serves PALs within a 64 KB SLB, so
  // arenas are small.
  explicit PalHeap(size_t arena_bytes);

  // Returns an 8-byte-aligned block or nullptr when no fit exists.
  void* Malloc(size_t size);
  // Frees a block previously returned by Malloc/Realloc; nullptr is a no-op.
  // Freeing coalesces with adjacent free blocks.
  void Free(void* ptr);
  // Grows/shrinks a block, moving it if needed; Realloc(nullptr, n) mallocs,
  // Realloc(p, 0) frees and returns nullptr.
  void* Realloc(void* ptr, size_t size);

  // Diagnostics.
  // The actual payload capacity of an allocated block (may exceed the
  // requested size when an unsplittable remainder was absorbed).
  size_t AllocatedSize(const void* ptr) const;
  size_t BytesInUse() const;
  size_t LargestFreeBlock() const;
  size_t arena_size() const { return arena_.size(); }
  // True when every block header is consistent (tests call this after
  // workouts to catch corruption).
  bool CheckConsistency() const;

  // Zeroes the whole arena (the cleanup-phase behaviour).
  void Wipe();

 private:
  struct BlockHeader {
    uint32_t size;  // Payload bytes (multiple of 8).
    uint32_t free;  // 1 = free, 0 = allocated.
  };
  static constexpr size_t kHeaderSize = sizeof(BlockHeader);
  static constexpr size_t kAlign = 8;

  BlockHeader* HeaderAt(size_t offset) {
    return reinterpret_cast<BlockHeader*>(arena_.data() + offset);
  }
  const BlockHeader* HeaderAt(size_t offset) const {
    return reinterpret_cast<const BlockHeader*>(arena_.data() + offset);
  }
  size_t OffsetOf(const void* payload) const {
    return static_cast<size_t>(static_cast<const uint8_t*>(payload) - arena_.data()) -
           kHeaderSize;
  }

  std::vector<uint8_t> arena_;
};

}  // namespace flicker

#endif  // FLICKER_SRC_SLB_PAL_HEAP_H_
