#include "src/slb/pal.h"

namespace flicker {

namespace {
constexpr size_t kOutputPageSize = 4096;
}  // namespace

PalContext::PalContext(Machine* machine, uint64_t slb_base, Bytes inputs,
                       bool os_protection_enabled, SegmentState pal_segment,
                       uint64_t deadline_micros)
    : machine_(machine),
      slb_base_(slb_base),
      inputs_(std::move(inputs)),
      os_protection_enabled_(os_protection_enabled),
      pal_segment_(pal_segment),
      deadline_micros_(deadline_micros) {}

bool PalContext::deadline_exceeded() const {
  return deadline_micros_ != 0 && machine_->clock()->NowMicros() > deadline_micros_;
}

Status PalContext::CheckDeadline() const {
  if (deadline_exceeded()) {
    return ResourceExhaustedError("PAL exceeded its execution budget (SLB-core timer fired)");
  }
  return Status::Ok();
}

Status PalContext::SetOutputs(const Bytes& outputs) {
  FLICKER_RETURN_IF_ERROR(CheckDeadline());
  if (outputs.size() > kOutputPageSize) {
    return ResourceExhaustedError("PAL outputs exceed the 4 KB output page");
  }
  outputs_ = outputs;
  return Status::Ok();
}

Result<Bytes> PalContext::ReadMemory(uint64_t addr, size_t len) {
  FLICKER_RETURN_IF_ERROR(CheckDeadline());
  if (os_protection_enabled_ && !pal_segment_.Contains(addr, len)) {
    ++fault_count_;
    return PermissionDeniedError("PAL memory read outside its segment (ring-3 fault)");
  }
  return machine_->memory()->Read(addr, len);
}

Status PalContext::WriteMemory(uint64_t addr, const Bytes& data) {
  FLICKER_RETURN_IF_ERROR(CheckDeadline());
  if (os_protection_enabled_ && !pal_segment_.Contains(addr, data.size())) {
    ++fault_count_;
    return PermissionDeniedError("PAL memory write outside its segment (ring-3 fault)");
  }
  return machine_->memory()->Write(addr, data);
}

void PalContext::ChargeSha1(size_t bytes) {
  machine_->clock()->AdvanceMillis(machine_->timing().Sha1Millis(bytes));
}

void PalContext::ChargeRsaKeygen1024() {
  machine_->clock()->AdvanceMillis(machine_->timing().cpu.rsa1024_keygen_ms);
}

void PalContext::ChargeRsaDecrypt1024() {
  machine_->clock()->AdvanceMillis(machine_->timing().cpu.rsa1024_decrypt_ms);
}

void PalContext::ChargeRsaSign1024() {
  machine_->clock()->AdvanceMillis(machine_->timing().cpu.rsa1024_sign_ms);
}

void PalContext::ChargeMd5Crypt() {
  machine_->clock()->AdvanceMillis(machine_->timing().cpu.md5crypt_ms);
}

void PalContext::ChargeDivisorTests(uint64_t count) {
  machine_->clock()->AdvanceMillis(static_cast<double>(count) /
                                   machine_->timing().cpu.divisor_tests_per_ms);
}

void PalContext::ChargeMillis(double ms) {
  machine_->clock()->AdvanceMillis(ms);
}

}  // namespace flicker
