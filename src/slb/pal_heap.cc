#include "src/slb/pal_heap.h"

#include <cstring>

namespace flicker {

namespace {

size_t RoundUp(size_t n, size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

PalHeap::PalHeap(size_t arena_bytes) : arena_(arena_bytes & ~size_t{7}, 0) {
  if (arena_.size() >= kHeaderSize + kAlign) {
    BlockHeader* first = HeaderAt(0);
    first->size = static_cast<uint32_t>(arena_.size() - kHeaderSize);
    first->free = 1;
  }
}

void* PalHeap::Malloc(size_t size) {
  if (size == 0 || arena_.size() < kHeaderSize) {
    return nullptr;
  }
  size = RoundUp(size, kAlign);

  size_t offset = 0;
  while (offset + kHeaderSize <= arena_.size()) {
    BlockHeader* header = HeaderAt(offset);
    if (header->free && header->size >= size) {
      // Split when the remainder can hold another block.
      size_t remainder = header->size - size;
      if (remainder >= kHeaderSize + kAlign) {
        header->size = static_cast<uint32_t>(size);
        BlockHeader* next = HeaderAt(offset + kHeaderSize + size);
        next->size = static_cast<uint32_t>(remainder - kHeaderSize);
        next->free = 1;
      }
      header->free = 0;
      return arena_.data() + offset + kHeaderSize;
    }
    offset += kHeaderSize + header->size;
  }
  return nullptr;
}

void PalHeap::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  size_t offset = OffsetOf(ptr);
  BlockHeader* header = HeaderAt(offset);
  header->free = 1;

  // Coalesce the whole arena in one pass (arenas are tiny; simplicity over
  // speed, like the original module).
  size_t scan = 0;
  while (scan + kHeaderSize <= arena_.size()) {
    BlockHeader* current = HeaderAt(scan);
    size_t next_offset = scan + kHeaderSize + current->size;
    if (current->free && next_offset + kHeaderSize <= arena_.size()) {
      BlockHeader* next = HeaderAt(next_offset);
      if (next->free) {
        current->size += kHeaderSize + next->size;
        continue;  // Re-check the grown block against its new neighbour.
      }
    }
    scan = next_offset;
  }
}

void* PalHeap::Realloc(void* ptr, size_t size) {
  if (ptr == nullptr) {
    return Malloc(size);
  }
  if (size == 0) {
    Free(ptr);
    return nullptr;
  }
  size_t offset = OffsetOf(ptr);
  BlockHeader* header = HeaderAt(offset);
  size_t rounded = RoundUp(size, kAlign);
  if (rounded <= header->size) {
    return ptr;  // Shrink in place (no split, keep it simple).
  }
  void* bigger = Malloc(size);
  if (bigger == nullptr) {
    return nullptr;  // Original block stays valid, like realloc(3).
  }
  std::memcpy(bigger, ptr, header->size);
  Free(ptr);
  return bigger;
}

size_t PalHeap::AllocatedSize(const void* ptr) const {
  return HeaderAt(OffsetOf(ptr))->size;
}

size_t PalHeap::BytesInUse() const {
  size_t used = 0;
  size_t offset = 0;
  while (offset + kHeaderSize <= arena_.size()) {
    const BlockHeader* header = HeaderAt(offset);
    if (!header->free) {
      used += header->size;
    }
    offset += kHeaderSize + header->size;
  }
  return used;
}

size_t PalHeap::LargestFreeBlock() const {
  size_t largest = 0;
  size_t offset = 0;
  while (offset + kHeaderSize <= arena_.size()) {
    const BlockHeader* header = HeaderAt(offset);
    if (header->free && header->size > largest) {
      largest = header->size;
    }
    offset += kHeaderSize + header->size;
  }
  return largest;
}

bool PalHeap::CheckConsistency() const {
  size_t offset = 0;
  while (offset + kHeaderSize <= arena_.size()) {
    const BlockHeader* header = HeaderAt(offset);
    if (header->size == 0 || header->size % kAlign != 0) {
      return false;
    }
    if (offset + kHeaderSize + header->size > arena_.size()) {
      return false;
    }
    offset += kHeaderSize + header->size;
  }
  return offset == arena_.size();
}

void PalHeap::Wipe() {
  std::memset(arena_.data(), 0, arena_.size());
  if (arena_.size() >= kHeaderSize + kAlign) {
    BlockHeader* first = HeaderAt(0);
    first->size = static_cast<uint32_t>(arena_.size() - kHeaderSize);
    first->free = 1;
  }
}

}  // namespace flicker
