#include "src/slb/slb_core.h"

#include "src/common/fault.h"
#include "src/crypto/sha1.h"
#include "src/obs/trace.h"
#include "src/slb/pal.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {

Bytes FlickerTerminationConstant() {
  // Any fixed public value works; derive it from a tag so it is stable and
  // self-describing.
  return Sha1::Digest(BytesOf("flicker-session-termination-constant"));
}

Status WriteIoPage(PhysicalMemory* memory, uint64_t page_addr, const Bytes& data) {
  if (data.size() + 4 > kSlbIoPageSize) {
    return ResourceExhaustedError("payload exceeds 4 KB I/O page");
  }
  Bytes page;
  PutUint32(&page, static_cast<uint32_t>(data.size()));
  page.insert(page.end(), data.begin(), data.end());
  return memory->Write(page_addr, page);
}

Result<Bytes> ReadIoPage(const PhysicalMemory& memory, uint64_t page_addr) {
  Result<Bytes> header = memory.Read(page_addr, 4);
  if (!header.ok()) {
    return header.status();
  }
  uint32_t len = GetUint32(header.value(), 0);
  if (len + 4 > kSlbIoPageSize) {
    return InvalidArgumentError("corrupt I/O page length");
  }
  return memory.Read(page_addr + 4, len);
}

namespace {

// The pre-hypervisor session environment: the session runs on the BSP
// inside the SKINIT launch, PCR 17 is the hardware register, and exiting
// means Machine::ExitSecureMode.
class ClassicSessionEnv : public SessionEnv {
 public:
  explicit ClassicSessionEnv(Machine* machine) : machine_(machine) {}

  Cpu* session_cpu() override { return machine_->bsp(); }

  Status CheckEntry(const SkinitLaunch& launch) override {
    if (!machine_->in_secure_session() || machine_->active_slb_base() != launch.slb_base) {
      return FailedPreconditionError("SLB core must run inside the SKINIT-launched session");
    }
    return Status::Ok();
  }

  Status ExtendPcr(const Bytes& measurement) override {
    return machine_->tpm()->PcrExtend(kSkinitPcr, measurement);
  }

  Result<Bytes> ReadPcr() override { return machine_->tpm()->PcrRead(kSkinitPcr); }

  Status Exit(uint64_t restored_cr3) override {
    return machine_->ExitSecureMode(machine_->bsp()->id, restored_cr3);
  }

 private:
  Machine* machine_;
};

}  // namespace

Result<SessionRecord> SlbCore::Run(Machine* machine, const SkinitLaunch& launch,
                                   const PalBinary& binary, const SlbCoreOptions& options) {
  ClassicSessionEnv env(machine);
  return RunWith(machine, &env, launch, binary, options);
}

Result<SessionRecord> SlbCore::RunWith(Machine* machine, SessionEnv* env,
                                       const SkinitLaunch& launch, const PalBinary& binary,
                                       const SlbCoreOptions& options) {
  FLICKER_RETURN_IF_ERROR(env->CheckEntry(launch));
  const uint64_t base = launch.slb_base;
  Cpu* core = env->session_cpu();
  SessionRecord record;
  obs::ScopedSpan run_span("slb", "slb.run");
  CRASH_POINT("slb.entry");

  // Step 1: measurement-stub path. SKINIT only measured the stub; the stub
  // now hashes the whole 64 KB region on the (fast) main CPU and extends it.
  // When the measurement cache serves the digest, the session is charged the
  // (much cheaper) snapshot-compare cost instead of a full SHA-1 pass.
  if (binary.options.measurement_stub) {
    obs::ScopedSpan stub_span("slb", "slb.stub_hash");
    SimStopwatch stub_watch(machine->clock());
    Bytes region_digest;
    MeasureOutcome outcome = MeasureOutcome::kHashed;
    if (machine->measurement_engine() != nullptr) {
      Result<Bytes> cached =
          machine->measurement_engine()->Measure(machine->memory(), base, kSlbRegionSize, &outcome);
      if (!cached.ok()) {
        return cached.status();
      }
      region_digest = cached.take();
    } else {
      Result<Bytes> full_region = machine->memory()->Read(base, kSlbRegionSize);
      if (!full_region.ok()) {
        return full_region.status();
      }
      region_digest = Sha1::Digest(full_region.value());
    }
    switch (outcome) {
      case MeasureOutcome::kHashed:
        machine->clock()->AdvanceMillis(machine->timing().Sha1Millis(kSlbRegionSize));
        break;
      case MeasureOutcome::kVerifiedHit:
        machine->clock()->AdvanceMillis(machine->timing().MemTouchMillis(kSlbRegionSize));
        break;
      case MeasureOutcome::kCleanHit:
        break;
    }
    FLICKER_RETURN_IF_ERROR(env->ExtendPcr(region_digest));
    record.stub_hash_ms = stub_watch.ElapsedMillis();
  }

  // Step 2: initialize segmentation - descriptors based at slb_base so the
  // position-dependent PAL sees itself at offset 0.
  core->code_segment = SegmentState{base, kSlbRegionSize - 1};
  core->data_segment = SegmentState{base, kSlbAllocationSize - 1};

  // Record the PCR 17 value the PAL executes under; sealed storage binds to
  // exactly this value.
  Result<Bytes> pcr17 = env->ReadPcr();
  if (!pcr17.ok()) {
    return pcr17.status();
  }
  record.pcr17_during_execution = pcr17.value();

  // Step 3: read inputs and call the PAL. With OS Protection the PAL runs in
  // ring 3 confined to [slb_base, slb_base + allocation).
  Result<Bytes> inputs = ReadIoPage(*machine->memory(), base + kSlbInputsOffset);
  if (!inputs.ok()) {
    return inputs.status();
  }
  const bool protect = binary.options.os_protection;
  SegmentState pal_segment{base, kSlbAllocationSize - 1};
  uint64_t deadline_micros =
      options.max_pal_ms > 0
          ? machine->clock()->NowMicros() + static_cast<uint64_t>(options.max_pal_ms * 1000.0)
          : 0;
  PalContext context(machine, base, inputs.value(), protect, pal_segment, deadline_micros);
  if (protect) {
    core->ring = 3;  // IRET into the PAL (§5.1.2).
  }
  SimStopwatch pal_watch(machine->clock());
  {
    obs::ScopedSpan pal_span("slb", "slb.pal_execute");
    record.pal_status = binary.pal->Execute(&context);
  }
  if (record.pal_status.ok() && context.deadline_exceeded()) {
    record.pal_status =
        ResourceExhaustedError("PAL exceeded its execution budget (SLB-core timer fired)");
  }
  record.pal_execute_ms = pal_watch.ElapsedMillis();
  record.pal_fault_count = context.fault_count();
  core->ring = 0;  // Call gate + TSS return the SLB core to ring 0.
  CRASH_POINT("slb.pal_done");

  // Step 4: publish outputs to the well-known page, then erase everything
  // else the session touched (code, stack, inputs).
  record.outputs = context.outputs();
  FLICKER_RETURN_IF_ERROR(WriteIoPage(machine->memory(), base + kSlbOutputsOffset, record.outputs));
  FLICKER_RETURN_IF_ERROR(machine->memory()->Erase(base, kSlbRegionSize));
  FLICKER_RETURN_IF_ERROR(machine->memory()->Erase(base + kSlbInputsOffset, kSlbIoPageSize));
  CRASH_POINT("slb.erased");

  // Step 5: closing extends (§4.4.1): inputs, outputs, nonce, termination
  // constant - in that order, mirrored by the verifier.
  {
    obs::ScopedSpan extend_span("slb", "slb.extends");
    SimStopwatch extend_watch(machine->clock());
    record.inputs_digest = Sha1::Digest(inputs.value());
    record.outputs_digest = Sha1::Digest(record.outputs);
    FLICKER_RETURN_IF_ERROR(env->ExtendPcr(record.inputs_digest));
    FLICKER_RETURN_IF_ERROR(env->ExtendPcr(record.outputs_digest));
    if (!options.nonce.empty()) {
      FLICKER_RETURN_IF_ERROR(env->ExtendPcr(Sha1::Digest(options.nonce)));
    }
    FLICKER_RETURN_IF_ERROR(env->ExtendPcr(FlickerTerminationConstant()));
    record.extend_ms = extend_watch.ElapsedMillis();
  }

  Result<Bytes> final_pcr = env->ReadPcr();
  if (!final_pcr.ok()) {
    return final_pcr.status();
  }
  record.pcr17_final = final_pcr.value();

  // Step 6: resume the OS - reload flat segments via the call gate, rebuild
  // skeleton page tables, restore the saved CR3 (§4.2 "Resume OS").
  Result<Bytes> saved = ReadIoPage(*machine->memory(), base + kSlbSavedStateOffset);
  if (!saved.ok()) {
    return saved.status();
  }
  if (saved.value().size() != 8) {
    return IntegrityFailureError("saved kernel state page corrupt");
  }
  uint64_t saved_cr3 = GetUint64(saved.value(), 0);
  FLICKER_RETURN_IF_ERROR(env->Exit(saved_cr3));
  return record;
}

}  // namespace flicker
