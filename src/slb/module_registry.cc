#include "src/slb/module_registry.h"

#include "src/crypto/drbg.h"

namespace flicker {

ModuleRegistry::ModuleRegistry() {
  // LOC and binary sizes from Fig. 6 of the paper.
  modules_ = {
      PalModule{
          .name = kModuleSlbCore,
          .description = "Prepare environment, execute PAL, clean environment, resume OS",
          .lines_of_code = 94,
          .binary_bytes = 312,
          .mandatory = true,
          .exported_symbols = {"pal_enter", "slb_exit", "PAL_OUT", "PAL_IN"},
      },
      PalModule{
          .name = kModuleOsProtection,
          .description = "Memory protection, ring 3 PAL execution",
          .lines_of_code = 5,
          .binary_bytes = 46,
          .mandatory = false,
          .exported_symbols = {"ring3_enter", "ring3_exit"},
      },
      PalModule{
          .name = kModuleTpmDriver,
          // The byte-frame transport of src/tpm/transport.h: these exports
          // are TpmTransport::Transmit / RequestLocality / ReleaseLocality.
          .description = "Communication with the TPM (byte-frame transport, TIS localities)",
          .lines_of_code = 216,
          .binary_bytes = 825,
          .mandatory = false,
          .exported_symbols = {"tpm_transmit", "tpm_request_locality", "tpm_release_locality"},
      },
      PalModule{
          .name = kModuleTpmUtilities,
          .description = "TPM operations: Seal, Unseal, GetRandom, PCR Extend, OIAP/OSAP",
          .lines_of_code = 889,
          .binary_bytes = 9427,
          .mandatory = false,
          .exported_symbols = {"tpm_seal", "tpm_unseal", "tpm_get_random", "tpm_pcr_extend",
                               "tpm_pcr_read", "tpm_oiap", "tpm_osap", "tpm_get_capability",
                               "tpm_nv_read", "tpm_nv_write", "tpm_counter_read",
                               "tpm_counter_increment"},
      },
      PalModule{
          .name = kModuleCrypto,
          .description = "RSA, SHA-1, SHA-512, MD5, AES, RC4, multi-precision integers",
          .lines_of_code = 2262,
          .binary_bytes = 31380,
          .mandatory = false,
          .exported_symbols = {"rsa_keygen", "rsa_encrypt", "rsa_decrypt", "rsa_sign",
                               "rsa_verify", "sha1", "sha512", "md5", "md5crypt", "aes_cbc",
                               "rc4", "hmac_sha1", "bigint"},
      },
      PalModule{
          .name = kModuleMemoryManagement,
          .description = "malloc/free/realloc over a static heap buffer",
          .lines_of_code = 657,
          .binary_bytes = 12511,
          .mandatory = false,
          .exported_symbols = {"malloc", "free", "realloc"},
      },
      PalModule{
          .name = kModuleSecureChannel,
          .description = "Generates a keypair, seals private key, returns public key",
          .lines_of_code = 292,
          .binary_bytes = 2021,
          .mandatory = false,
          .exported_symbols = {"secure_channel_keygen", "secure_channel_decrypt"},
      },
  };
}

Result<const PalModule*> ModuleRegistry::Find(const std::string& name) const {
  for (const PalModule& m : modules_) {
    if (m.name == name) {
      return &m;
    }
  }
  return NotFoundError("unknown PAL module: " + name);
}

Bytes ModuleRegistry::SyntheticCode(const PalModule& module) {
  Drbg rng(BytesOf("flicker-module-code:" + module.name));
  return rng.Generate(module.binary_bytes);
}

}  // namespace flicker
