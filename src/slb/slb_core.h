// The SLB Core: the ~250 trusted lines that run between SKINIT and the
// resumption of the untrusted OS (paper §4.2, Fig. 2).
//
// Responsibilities, in session order:
//   1. (stub builds) hash the full 64 KB region on the main CPU and extend
//      it into PCR 17 (§7.2 optimization);
//   2. load the GDT / segment registers based at slb_base;
//   3. call the PAL - in ring 3 behind a segment limit when the OS
//      Protection module is linked;
//   4. erase all sensitive memory the PAL touched;
//   5. extend PCR 17 with the input/output measurements, the attestation
//      nonce, and finally the fixed public termination constant (§4.4.1);
//   6. restore segments/paging and return control to the OS.

#ifndef FLICKER_SRC_SLB_SLB_CORE_H_
#define FLICKER_SRC_SLB_SLB_CORE_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/slb/slb_layout.h"

namespace flicker {

// The fixed public constant extended into PCR 17 at session end. Extending
// it (a) prevents later software from attributing its own extends to the
// PAL and (b) revokes access to PAL-bound sealed secrets (§4.4.1).
Bytes FlickerTerminationConstant();

struct SlbCoreOptions {
  // Attestation nonce from a remote verifier; extended into PCR 17 when
  // nonempty (freshness, §4.4.1).
  Bytes nonce;
  // Execution budget for the PAL in milliseconds; 0 = unlimited. When the
  // budget expires the SLB core's timer terminates the PAL (the §5.1.2
  // timing restriction), the session cleans up and the OS resumes - a
  // malfunctioning PAL cannot keep the platform suspended forever. Choose
  // generously: TPM operations alone can take ~1 s (§5.1.2's caveat).
  double max_pal_ms = 0;
};

// What the session produced. Timing fields cover only the in-session part;
// the caller (flicker-module / platform) wraps SKINIT and teardown around it.
struct SessionRecord {
  Status pal_status;
  Bytes outputs;
  Bytes inputs_digest;
  Bytes outputs_digest;
  // PCR 17 while the PAL executed (what sealed storage binds to).
  Bytes pcr17_during_execution;
  // PCR 17 after the closing extends (what a quote will show).
  Bytes pcr17_final;
  double pal_execute_ms = 0;
  double stub_hash_ms = 0;
  double extend_ms = 0;
  uint64_t pal_fault_count = 0;
};

// The environment a session runs in. The SLB core's trusted body is
// identical whether SKINIT suspended the whole machine (classic mode) or
// the minimal hypervisor pinned the PAL to one core (concurrent mode);
// what differs is which core executes, where PCR 17 lives, and how control
// returns to the OS. Implementations: the classic env in slb_core.cc and
// HvSessionEnv in src/hv.
class SessionEnv {
 public:
  virtual ~SessionEnv() = default;

  // The core the session executes on (BSP classically, the pinned core
  // under the hypervisor).
  virtual Cpu* session_cpu() = 0;
  // Checks the launch descriptor matches this environment's active session.
  virtual Status CheckEntry(const SkinitLaunch& launch) = 0;
  // Extend the session's PCR 17 (hardware register classically; the
  // hypervisor's µPCR - mirrored to hardware when configured - otherwise).
  virtual Status ExtendPcr(const Bytes& measurement) = 0;
  virtual Result<Bytes> ReadPcr() = 0;
  // Return control to the OS: restore the core, drop protections.
  virtual Status Exit(uint64_t restored_cr3) = 0;
};

class SlbCore {
 public:
  // Runs the in-session flow on the BSP. `launch` must come from a
  // successful Machine::Skinit of `binary`'s patched image.
  static Result<SessionRecord> Run(Machine* machine, const SkinitLaunch& launch,
                                   const PalBinary& binary, const SlbCoreOptions& options);

  // The same trusted body against an explicit session environment; Run()
  // delegates here with the classic (SKINIT/hardware-TPM) environment.
  static Result<SessionRecord> RunWith(Machine* machine, SessionEnv* env,
                                       const SkinitLaunch& launch, const PalBinary& binary,
                                       const SlbCoreOptions& options);
};

// I/O page codec shared with the flicker-module: a page holds a 32-bit
// length followed by the payload.
Status WriteIoPage(PhysicalMemory* memory, uint64_t page_addr, const Bytes& data);
Result<Bytes> ReadIoPage(const PhysicalMemory& memory, uint64_t page_addr);

}  // namespace flicker

#endif  // FLICKER_SRC_SLB_SLB_CORE_H_
