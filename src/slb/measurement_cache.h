// Content-addressed cache for SLB measurements.
//
// Every Flicker session hashes the SLB twice: SKINIT streams the measured
// prefix to the TPM, and (with the §7.2 measurement stub) the stub re-hashes
// the full 64 KB region on the main CPU. The paper's workloads re-invoke
// the same PAL session after session, so in steady state both hashes cover
// bytes that have not changed since the previous launch.
//
// The cache keeps, per measured range, the SHA-1 digest plus a snapshot of
// the bytes it covered, keyed by a dirty watch registered with
// PhysicalMemory:
//   * range untouched since the last measurement  -> return the digest
//     (clean hit, no memory traffic at all);
//   * range written but byte-identical (the erase-then-restage cycle every
//     session performs) -> one memcmp against the snapshot, ~an order of
//     magnitude cheaper than SHA-1 (verified hit);
//   * content actually changed -> re-hash and replace the entry.
// A returned digest therefore always equals the SHA-1 of the bytes
// currently in memory - a stale measurement can never be extended into
// PCR 17.

#ifndef FLICKER_SRC_SLB_MEASUREMENT_CACHE_H_
#define FLICKER_SRC_SLB_MEASUREMENT_CACHE_H_

#include <cstdint>
#include <map>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/memory.h"

namespace flicker {

class SlbMeasurementCache : public MeasurementEngine {
 public:
  Result<Bytes> Measure(PhysicalMemory* memory, uint64_t base, size_t len,
                        MeasureOutcome* outcome) override;

  uint64_t hash_count() const { return hash_count_; }
  uint64_t verified_hit_count() const { return verified_hit_count_; }
  uint64_t clean_hit_count() const { return clean_hit_count_; }

 private:
  struct Entry {
    int watch_id;
    Bytes digest;
    Bytes snapshot;  // The exact bytes `digest` covers.
  };

  std::map<std::pair<uint64_t, size_t>, Entry> entries_;
  uint64_t hash_count_ = 0;
  uint64_t verified_hit_count_ = 0;
  uint64_t clean_hit_count_ = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_SLB_MEASUREMENT_CACHE_H_
