// The PAL extraction tool (paper §5.2): the CIL-based analysis that pulls a
// target function and its transitive dependencies out of a larger program.
//
// The input is a call graph of the existing application (function -> callees,
// plus per-function size/LOC). Given a target ("rsa_keygen"), the tool:
//   1. computes the transitive closure of callees,
//   2. splits it into app code to extract vs. symbols that must come from
//      PAL library modules,
//   3. reports unresolvable symbols the programmer must eliminate or replace
//      (printf) or satisfy by linking a module (malloc -> Memory Management),
//   4. emits a PalSpec: the module list and size/LOC accounting for the
//      standalone PAL.

#ifndef FLICKER_SRC_SLB_EXTRACTOR_H_
#define FLICKER_SRC_SLB_EXTRACTOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/slb/module_registry.h"

namespace flicker {

struct SourceFunction {
  std::string name;
  int lines_of_code = 0;
  size_t code_bytes = 0;
  std::vector<std::string> callees;
};

// A program's call graph, as CIL would produce it.
class CallGraph {
 public:
  void AddFunction(SourceFunction function);
  bool Has(const std::string& name) const { return functions_.count(name) != 0; }
  const SourceFunction* Find(const std::string& name) const;

 private:
  std::map<std::string, SourceFunction> functions_;
};

// The extraction result: what becomes the PAL.
struct PalSpec {
  std::string target;
  // Functions lifted from the application into the PAL, in dependency order.
  std::vector<std::string> extracted_functions;
  int extracted_lines = 0;
  size_t extracted_bytes = 0;
  // Library modules the PAL must link (resolved from leaf symbols).
  std::vector<std::string> required_modules;
  // Leaf symbols with no provider: the programmer must eliminate these
  // (e.g. printf) before the PAL builds.
  std::vector<std::string> unresolved_symbols;

  bool Buildable() const { return unresolved_symbols.empty(); }
};

// Extracts `target` and its transitive dependencies from `graph`. Symbols
// not defined in the graph are treated as external references and resolved
// against the module registry's exports. Fails only if the target itself is
// unknown; unresolved leaves are reported in the spec, mirroring the tool's
// "indicates which additional functions must be eliminated or replaced"
// behaviour.
Result<PalSpec> ExtractPal(const CallGraph& graph, const std::string& target);

}  // namespace flicker

#endif  // FLICKER_SRC_SLB_EXTRACTOR_H_
