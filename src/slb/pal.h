// The PAL (Piece of Application Logic) interface and its execution context.
//
// A PAL in the real system is at most ~60 KB of x86 code linked against the
// SLB Core. In the simulator a PAL is a C++ object whose *identity* is a
// deterministic synthetic code image (what gets placed in the SLB, measured
// by SKINIT, and attested) and whose *behaviour* is the Execute() body run
// under the platform's protection checks.

#ifndef FLICKER_SRC_SLB_PAL_H_
#define FLICKER_SRC_SLB_PAL_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/cpu.h"
#include "src/hw/machine.h"
#include "src/tpm/transport.h"

namespace flicker {

// Execution context handed to Pal::Execute by the SLB core. All interaction
// with the platform goes through this object so the OS Protection module can
// interpose on memory accesses and so simulated compute time is charged.
class PalContext {
 public:
  // `deadline_micros` of 0 means no execution budget; otherwise, once the
  // platform clock passes it, every further context operation fails with
  // kResourceExhausted - the timer-interrupt PAL preemption sketched in
  // §5.1.2 ("we are also investigating techniques to limit a PAL's
  // execution time using timer interrupts in the SLB Core").
  PalContext(Machine* machine, uint64_t slb_base, Bytes inputs, bool os_protection_enabled,
             SegmentState pal_segment, uint64_t deadline_micros = 0);

  const Bytes& inputs() const { return inputs_; }

  // Output parameters, written to the well-known page above the SLB
  // (PAL_OUT, §5.1.1). Limited to the 4 KB output page.
  Status SetOutputs(const Bytes& outputs);
  const Bytes& outputs() const { return outputs_; }

  // TPM access (the PAL links the TPM Driver / TPM Utilities modules); all
  // commands cross the byte-marshalled transport at the session's locality.
  TpmClient* tpm() { return machine_->tpm(); }

  // Physical memory access. With the OS Protection module linked, accesses
  // outside the PAL's allocated segment fault with kPermissionDenied - this
  // is the ring-3 + segment-limit enforcement of §5.1.2.
  Result<Bytes> ReadMemory(uint64_t addr, size_t len);
  Status WriteMemory(uint64_t addr, const Bytes& data);

  // Simulated-compute charging: PAL bodies call these so their work shows up
  // on the platform clock with the paper's calibrated costs.
  void ChargeSha1(size_t bytes);
  void ChargeRsaKeygen1024();
  void ChargeRsaDecrypt1024();
  void ChargeRsaSign1024();
  void ChargeMd5Crypt();
  void ChargeDivisorTests(uint64_t count);
  void ChargeMillis(double ms);

  const SimClock* clock() const { return machine_->clock(); }
  uint64_t slb_base() const { return slb_base_; }
  bool os_protection_enabled() const { return os_protection_enabled_; }

  // Count of faulted (blocked) memory accesses, for tests and the OS's
  // misbehaving-PAL diagnostics.
  uint64_t fault_count() const { return fault_count_; }

  // True once the execution budget has been exhausted.
  bool deadline_exceeded() const;

 private:
  // Returns an error when the deadline has passed; called by every
  // context operation.
  Status CheckDeadline() const;

  Machine* machine_;
  uint64_t slb_base_;
  Bytes inputs_;
  Bytes outputs_;
  bool os_protection_enabled_;
  SegmentState pal_segment_;
  uint64_t deadline_micros_;
  uint64_t fault_count_ = 0;
};

// Application-supplied PAL logic.
class Pal {
 public:
  virtual ~Pal() = default;

  // Stable name; part of the PAL's code identity.
  virtual std::string name() const = 0;
  // Bump to change the PAL's measurement when its logic changes.
  virtual std::string code_version() const { return "1"; }

  // Library modules (beyond the mandatory SLB Core) this PAL links.
  virtual std::vector<std::string> required_modules() const = 0;
  // Symbols the application code references; the builder verifies each is
  // exported by a linked module (the §5.2 extraction-tool check).
  virtual std::vector<std::string> required_symbols() const { return {}; }

  // Size/LOC of the application-specific code, contributing to the SLB image
  // and the TCB accounting.
  virtual size_t app_code_bytes() const = 0;
  virtual int app_lines_of_code() const { return 0; }

  // The PAL body, run inside the Flicker session.
  virtual Status Execute(PalContext* context) = 0;
};

}  // namespace flicker

#endif  // FLICKER_SRC_SLB_PAL_H_
