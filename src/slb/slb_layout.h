// The Secure Loader Block memory layout (paper Fig. 3) and the PAL builder
// (the "link your PAL against the SLB Core" step from §5.1.2).
//
// Layout of the 64 KB SLB region plus the I/O pages above it:
//
//   slb_base + 0          u16 length | u16 entry point
//   slb_base + 4          skeleton GDT (6 descriptors, patched by the
//                         flicker-module with slb_base)
//   slb_base + 52         skeleton TSS (patched)
//   slb_base + 156        SLB Core code (+ optional library modules)
//   ...                   PAL application code (ends by slb_base + 60 KB)
//   slb_base + 60 KB      stack space (4 KB, zero, not measured)
//   slb_base + 64 KB      PAL inputs page (4 KB)
//   slb_base + 68 KB      PAL outputs page (4 KB) - the paper's PAL_OUT
//   slb_base + 72 KB      saved kernel state page (4 KB)
//
// `length` covers the initialized prefix (header..end of PAL code); SKINIT
// measures exactly those bytes and DEV-protects the full 64 KB.

#ifndef FLICKER_SRC_SLB_SLB_LAYOUT_H_
#define FLICKER_SRC_SLB_SLB_LAYOUT_H_

#include <cstdint>
#include <memory>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/slb/module_registry.h"
#include "src/slb/pal.h"

namespace flicker {

// Region geometry.
inline constexpr size_t kSlbHeaderSize = 4;
inline constexpr size_t kSlbGdtOffset = 4;
inline constexpr size_t kSlbGdtSize = 48;  // 6 descriptors x 8 bytes.
inline constexpr size_t kSlbTssOffset = 52;
inline constexpr size_t kSlbTssSize = 104;
inline constexpr size_t kSlbCodeOffset = 156;
inline constexpr size_t kSlbMaxMeasuredSize = 60 * 1024;  // PAL ends here; stack above.
inline constexpr size_t kSlbStackOffset = 60 * 1024;
inline constexpr size_t kSlbInputsOffset = 64 * 1024;
inline constexpr size_t kSlbOutputsOffset = 68 * 1024;
inline constexpr size_t kSlbSavedStateOffset = 72 * 1024;
inline constexpr size_t kSlbIoPageSize = 4096;
// Total physical region the OS allocates for a session (SLB + I/O pages).
inline constexpr size_t kSlbAllocationSize = 76 * 1024;

// The well-known physical address the flicker-module loads SLBs at. Fixing
// it keeps PAL measurements independent of allocator behaviour, so a remote
// verifier can predict them (the real module reserves a region the same
// way).
inline constexpr uint64_t kSlbFixedBase = 0x100000;  // 1 MB.

// The size of the measurement-stub loader (§7.2: "We have constructed such a
// PAL in 4736 bytes").
inline constexpr size_t kMeasurementStubSize = 4736;

// TCB accounting for a built PAL (the Fig. 6 style inventory).
struct TcbStats {
  int total_lines = 0;
  size_t total_bytes = 0;
  std::vector<std::string> linked_modules;
};

// Options affecting the SLB image and the in-session behaviour.
struct PalBuildOptions {
  // Link the OS Protection module: PAL runs in ring 3 confined to its
  // segment (§5.1.2).
  bool os_protection = false;
  // Build with the measurement-stub loader: SKINIT measures only the 4736-
  // byte stub; the stub hashes the full 64 KB image on the main CPU and
  // extends it into PCR 17 (§7.2 optimization).
  bool measurement_stub = false;
};

// A PAL linked into an executable SLB image.
struct PalBinary {
  std::shared_ptr<Pal> pal;
  PalBuildOptions options;

  // The uninitialized SLB image (GDT/TSS bases zero), exactly
  // kSlbRegionSize (64 KB) long; only `measured_length` bytes are covered
  // by the SKINIT measurement.
  Bytes image;
  uint16_t measured_length = 0;
  uint16_t entry_point = 0;

  TcbStats tcb;

  // SHA-1 of the *initialized* measured prefix once patched for
  // kSlbFixedBase; this is what SKINIT streams to the TPM.
  Bytes skinit_measurement;
  // With the measurement stub, the stub extends SHA-1 of the full (patched)
  // 64 KB image; empty otherwise.
  Bytes stub_body_measurement;

  // The PAL identity a verifier checks: the full-image hash when using the
  // stub, otherwise the skinit measurement.
  const Bytes& identity() const {
    return options.measurement_stub ? stub_body_measurement : skinit_measurement;
  }
};

// Links `pal` against the SLB Core and its required modules, producing the
// SLB image and TCB accounting. Fails when a required symbol is not
// exported by any linked module or when the image exceeds the 60 KB limit.
Result<PalBinary> BuildPal(std::shared_ptr<Pal> pal, const PalBuildOptions& options = {});

// The flicker-module's patch step: fills the skeleton GDT/TSS with
// descriptors based at `slb_base` (§4.2 "Initialize the SLB"). Idempotent
// for a given base.
void PatchSlbImage(Bytes* image, uint64_t slb_base);

// Computes the SKINIT measurement of a patched image prefix.
Bytes MeasureSlbPrefix(const Bytes& patched_image, uint16_t measured_length);

}  // namespace flicker

#endif  // FLICKER_SRC_SLB_SLB_LAYOUT_H_
