#include "src/slb/measurement_cache.h"

#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"

namespace flicker {

Result<Bytes> SlbMeasurementCache::Measure(PhysicalMemory* memory, uint64_t base, size_t len,
                                           MeasureOutcome* outcome) {
  auto key = std::make_pair(base, len);
  auto it = entries_.find(key);

  if (it != entries_.end() && !memory->IsWatchDirty(it->second.watch_id)) {
    ++clean_hit_count_;
    obs::Count(obs::Ctr::kMeasureCleanHits);
    if (outcome != nullptr) {
      *outcome = MeasureOutcome::kCleanHit;
    }
    return it->second.digest;
  }

  Result<Bytes> region = memory->Read(base, len);
  if (!region.ok()) {
    return region.status();
  }

  if (it != entries_.end()) {
    memory->ClearWatchDirty(it->second.watch_id);
    if (region.value() == it->second.snapshot) {
      ++verified_hit_count_;
      obs::Count(obs::Ctr::kMeasureVerifiedHits);
      if (outcome != nullptr) {
        *outcome = MeasureOutcome::kVerifiedHit;
      }
      return it->second.digest;
    }
    it->second.digest = Sha1::Digest(region.value());
    it->second.snapshot = region.take();
    ++hash_count_;
    obs::Count(obs::Ctr::kMeasureHashes);
    if (outcome != nullptr) {
      *outcome = MeasureOutcome::kHashed;
    }
    return it->second.digest;
  }

  Entry entry;
  entry.watch_id = memory->RegisterWatch(base, len);
  entry.digest = Sha1::Digest(region.value());
  entry.snapshot = region.take();
  ++hash_count_;
  obs::Count(obs::Ctr::kMeasureHashes);
  if (outcome != nullptr) {
    *outcome = MeasureOutcome::kHashed;
  }
  Bytes digest = entry.digest;
  entries_.emplace(key, std::move(entry));
  return digest;
}

}  // namespace flicker
