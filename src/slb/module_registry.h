// The PAL module registry and TCB accounting (paper Fig. 6), plus the
// extraction-tool analog from §5.2.
//
// A PAL is assembled from named library modules. Each module contributes
// lines of code and bytes to the PAL's TCB, and exports a set of symbols a
// PAL may depend on. The builder rejects PALs that reference symbols no
// selected module provides - the same "no printf, no malloc unless you link
// the memory manager" discipline the paper's CIL-based tool enforces.

#ifndef FLICKER_SRC_SLB_MODULE_REGISTRY_H_
#define FLICKER_SRC_SLB_MODULE_REGISTRY_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace flicker {

struct PalModule {
  std::string name;
  std::string description;
  int lines_of_code = 0;
  size_t binary_bytes = 0;
  bool mandatory = false;
  std::vector<std::string> exported_symbols;
};

// The module set from Fig. 6 with the paper's measured LOC / sizes.
class ModuleRegistry {
 public:
  ModuleRegistry();

  const std::vector<PalModule>& modules() const { return modules_; }
  Result<const PalModule*> Find(const std::string& name) const;

  // Synthetic-but-deterministic code bytes for a module: module identity is
  // part of the PAL measurement, so the bytes depend only on the module name
  // and its declared size.
  static Bytes SyntheticCode(const PalModule& module);

 private:
  std::vector<PalModule> modules_;
};

// Canonical module names.
inline constexpr char kModuleSlbCore[] = "SLB Core";
inline constexpr char kModuleOsProtection[] = "OS Protection";
inline constexpr char kModuleTpmDriver[] = "TPM Driver";
inline constexpr char kModuleTpmUtilities[] = "TPM Utilities";
inline constexpr char kModuleCrypto[] = "Crypto";
inline constexpr char kModuleMemoryManagement[] = "Memory Management";
inline constexpr char kModuleSecureChannel[] = "Secure Channel";

}  // namespace flicker

#endif  // FLICKER_SRC_SLB_MODULE_REGISTRY_H_
