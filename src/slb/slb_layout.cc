#include "src/slb/slb_layout.h"

#include <algorithm>
#include <set>

#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha_multibuf.h"
#include "src/hw/machine.h"

namespace flicker {

namespace {

// Deterministic synthetic bytes standing in for the PAL's compiled
// application code. Identity covers name, version and declared size, so a
// logic change that bumps code_version() changes the measurement - the same
// property a recompiled binary has.
Bytes SyntheticAppCode(const Pal& pal) {
  Drbg rng(BytesOf("flicker-app-code:" + pal.name() + ":" + pal.code_version()));
  return rng.Generate(pal.app_code_bytes());
}

Bytes SyntheticStubCode(size_t size) {
  Drbg rng(BytesOf("flicker-measurement-stub:v1"));
  return rng.Generate(size);
}

void PutU16Le(Bytes* image, size_t offset, uint16_t v) {
  (*image)[offset] = static_cast<uint8_t>(v);
  (*image)[offset + 1] = static_cast<uint8_t>(v >> 8);
}

void PutU32Le(Bytes* image, size_t offset, uint32_t v) {
  (*image)[offset] = static_cast<uint8_t>(v);
  (*image)[offset + 1] = static_cast<uint8_t>(v >> 8);
  (*image)[offset + 2] = static_cast<uint8_t>(v >> 16);
  (*image)[offset + 3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

Result<PalBinary> BuildPal(std::shared_ptr<Pal> pal, const PalBuildOptions& options) {
  ModuleRegistry registry;

  // Resolve the module set: SLB Core always, OS Protection when requested,
  // plus whatever the PAL asks for.
  std::vector<const PalModule*> linked;
  std::set<std::string> linked_names;
  auto link = [&](const std::string& name) -> Status {
    if (linked_names.count(name) != 0) {
      return Status::Ok();
    }
    Result<const PalModule*> module = registry.Find(name);
    if (!module.ok()) {
      return module.status();
    }
    linked.push_back(module.value());
    linked_names.insert(name);
    return Status::Ok();
  };
  FLICKER_RETURN_IF_ERROR(link(kModuleSlbCore));
  if (options.os_protection) {
    FLICKER_RETURN_IF_ERROR(link(kModuleOsProtection));
  }
  for (const std::string& name : pal->required_modules()) {
    FLICKER_RETURN_IF_ERROR(link(name));
  }

  // The extraction-tool check (§5.2): every referenced symbol must come from
  // a linked module. "printf" never resolves; "malloc" resolves only with
  // the Memory Management module.
  std::set<std::string> exported;
  for (const PalModule* module : linked) {
    exported.insert(module->exported_symbols.begin(), module->exported_symbols.end());
  }
  for (const std::string& symbol : pal->required_symbols()) {
    if (exported.count(symbol) == 0) {
      return NotFoundError("PAL '" + pal->name() + "' references symbol '" + symbol +
                           "' not exported by any linked module");
    }
  }

  // Assemble the code region: modules in link order, then app code.
  Bytes code;
  for (const PalModule* module : linked) {
    Bytes module_code = ModuleRegistry::SyntheticCode(*module);
    code.insert(code.end(), module_code.begin(), module_code.end());
  }
  Bytes app_code = SyntheticAppCode(*pal);
  code.insert(code.end(), app_code.begin(), app_code.end());

  PalBinary binary;
  binary.pal = std::move(pal);
  binary.options = options;
  binary.image.assign(kSlbRegionSize, 0);

  size_t code_offset = kSlbCodeOffset;
  size_t measured_end;
  if (options.measurement_stub) {
    // The stub occupies the measured prefix; the real core+PAL code follows
    // it inside the (unmeasured-by-SKINIT) remainder of the 64 KB region.
    if (kMeasurementStubSize < kSlbCodeOffset) {
      return InternalError("stub smaller than fixed headers");
    }
    Bytes stub = SyntheticStubCode(kMeasurementStubSize - kSlbCodeOffset);
    std::copy(stub.begin(), stub.end(), binary.image.begin() + static_cast<long>(kSlbCodeOffset));
    code_offset = kMeasurementStubSize;
    measured_end = kMeasurementStubSize;
  } else {
    measured_end = kSlbCodeOffset + code.size();
  }

  if (code_offset + code.size() > kSlbMaxMeasuredSize) {
    return ResourceExhaustedError("PAL too large: code ends beyond the 60 KB limit");
  }
  std::copy(code.begin(), code.end(), binary.image.begin() + static_cast<long>(code_offset));

  binary.measured_length = static_cast<uint16_t>(measured_end);
  binary.entry_point = static_cast<uint16_t>(kSlbCodeOffset);
  PutU16Le(&binary.image, 0, binary.measured_length);
  PutU16Le(&binary.image, 2, binary.entry_point);

  // TCB accounting (Fig. 6): linked modules + app code.
  for (const PalModule* module : linked) {
    binary.tcb.total_lines += module->lines_of_code;
    binary.tcb.total_bytes += module->binary_bytes;
    binary.tcb.linked_modules.push_back(module->name);
  }
  binary.tcb.total_lines += binary.pal->app_lines_of_code();
  binary.tcb.total_bytes += binary.pal->app_code_bytes();

  // Precompute the measurements a verifier expects, for the canonical load
  // address.
  Bytes patched = binary.image;
  PatchSlbImage(&patched, kSlbFixedBase);
  if (options.measurement_stub) {
    // The SKINIT prefix and the stub's full-image hash share the patched
    // image, so hash both in one multi-buffer pass.
    size_t prefix_len = std::min<size_t>(binary.measured_length, patched.size());
    std::vector<Bytes> hashed = Sha1DigestMany(
        {Bytes(patched.begin(), patched.begin() + static_cast<long>(prefix_len)), patched});
    binary.skinit_measurement = std::move(hashed[0]);
    binary.stub_body_measurement = std::move(hashed[1]);
  } else {
    binary.skinit_measurement = MeasureSlbPrefix(patched, binary.measured_length);
  }
  return binary;
}

void PatchSlbImage(Bytes* image, uint64_t slb_base) {
  uint32_t base = static_cast<uint32_t>(slb_base);
  // Descriptors 1..3 (code, data, stack): base field at entry offset + 2.
  for (size_t entry = 1; entry <= 3; ++entry) {
    PutU32Le(image, kSlbGdtOffset + entry * 8 + 2, base);
  }
  // Descriptor 4: call gate target (flat resume segment) - keep base 0.
  // TSS: esp0/cr3-equivalents; stamp the base at its head.
  PutU32Le(image, kSlbTssOffset + 4, base);
}

Bytes MeasureSlbPrefix(const Bytes& patched_image, uint16_t measured_length) {
  size_t len = std::min<size_t>(measured_length, patched_image.size());
  return Sha1::Digest(patched_image.data(), len);
}

}  // namespace flicker
