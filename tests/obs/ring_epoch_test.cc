// The shared trace epoch pin (PR 5 fix): the TpmTransport command ring and
// the LossyChannel delivery rings both timestamp in sim-clock nanoseconds
// (obs::NowNs) on the same epoch as the unified span stream. Before this
// fix the TPM ring reported milliseconds-as-double and the net ring its own
// ms fields, so a dumped frame could not be lined up against the TPM
// command it triggered. These tests pin the unit, the epoch, and the
// cross-layer ordering with one shared clock.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hw/clock.h"
#include "src/hw/timing.h"
#include "src/net/lossy_channel.h"
#include "src/obs/trace.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

TEST(RingEpochTest, TpmRingTimestampsAreSimClockNanoseconds) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  transport.ClearTrace();

  clock.AdvanceMicros(2500);  // A non-zero epoch offset the ring must carry.
  ASSERT_TRUE(client.PcrRead(0).ok());
  const uint64_t now_ns = obs::NowNs(&clock);

  std::vector<TraceEntry> trace = transport.TraceSnapshot();
  ASSERT_FALSE(trace.empty());
  const TraceEntry& last = trace.back();
  // Dispatch completed exactly now: the ring records the same ns value the
  // span stream would.
  EXPECT_EQ(last.at_ns, now_ns);
  // And the charged latency is consistent with the timestamp: the command
  // began at at_ns - latency, which cannot precede the pre-advance epoch.
  EXPECT_GE(last.at_ns,
            2'500'000u + static_cast<uint64_t>(last.latency_ms * 1e6));
}

TEST(RingEpochTest, NetRingTimestampsAreSimClockNanoseconds) {
  SimClock clock;
  LossyChannel channel(&clock);

  clock.AdvanceMicros(1200);
  const uint64_t sent_ns = obs::NowNs(&clock);
  channel.Send(NetEndpoint::kClient, BytesOf("hello"));

  Bytes out;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &out));
  const uint64_t arrival_ns = obs::NowNs(&clock);

  std::vector<NetTraceEntry> trace = channel.TraceSnapshot(NetEndpoint::kServer);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].sent_at_ns, sent_ns);
  // Receive() advanced the clock exactly to the scheduled arrival, so the
  // ring's arrival matches the clock's ns reading afterwards.
  EXPECT_EQ(trace[0].arrival_ns, arrival_ns);
  EXPECT_GT(trace[0].arrival_ns, trace[0].sent_at_ns);
}

TEST(RingEpochTest, CrossLayerEventsOrderOnTheSharedEpoch) {
  // One clock drives both layers, as on the real simulated platform: a
  // network frame arrives, then a TPM command runs. The two rings must
  // interleave correctly when merged on their ns timestamps.
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  LossyChannel channel(&clock, LatencyProfile());
  transport.ClearTrace();

  channel.Send(NetEndpoint::kClient, BytesOf("challenge"));
  Bytes frame;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &frame));
  ASSERT_TRUE(client.PcrRead(0).ok());

  std::vector<NetTraceEntry> net = channel.TraceSnapshot(NetEndpoint::kServer);
  std::vector<TraceEntry> tpm_trace = transport.TraceSnapshot();
  ASSERT_FALSE(net.empty());
  ASSERT_FALSE(tpm_trace.empty());
  // The frame arrived before the command it triggered completed - and both
  // sides are directly comparable because they share unit and epoch.
  EXPECT_LE(net.back().arrival_ns, tpm_trace.back().at_ns);
  EXPECT_LE(net.back().sent_at_ns, net.back().arrival_ns);
}

TEST(RingEpochTest, DumpTraceRendersNanosecondTimestamps) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  LossyChannel channel(&clock);
  transport.ClearTrace();

  clock.AdvanceMicros(7);
  ASSERT_TRUE(client.PcrRead(0).ok());
  channel.Send(NetEndpoint::kClient, BytesOf("x"));
  Bytes out;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &out));

  std::ostringstream tpm_dump;
  transport.DumpTrace(tpm_dump);
  std::ostringstream net_dump;
  channel.DumpTrace(net_dump);
  // Both dumps label their timestamps as ns on the shared epoch.
  EXPECT_NE(tpm_dump.str().find("ns"), std::string::npos) << tpm_dump.str();
  EXPECT_NE(net_dump.str().find("sent@"), std::string::npos) << net_dump.str();
  EXPECT_NE(net_dump.str().find("ns"), std::string::npos) << net_dump.str();
}

TEST(RingEpochTest, EpochSurvivesRingWraparound) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  transport.ClearTrace();

  // Overflow the ring; retained entries must still carry monotonically
  // nondecreasing shared-epoch timestamps.
  for (size_t i = 0; i < TpmTransport::kTraceCapacity + 16; ++i) {
    ASSERT_TRUE(client.PcrRead(0).ok());
  }
  std::vector<TraceEntry> trace = transport.TraceSnapshot();
  ASSERT_EQ(trace.size(), TpmTransport::kTraceCapacity);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at_ns, trace[i - 1].at_ns);
  }
  EXPECT_EQ(trace.back().at_ns, obs::NowNs(&clock));
}

}  // namespace
}  // namespace flicker
