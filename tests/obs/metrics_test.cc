// MetricsRegistry: the process-wide home for counters and histograms.
// Exactness under concurrency, idempotent dynamic registration, fixed
// histogram bucketing, and deterministic text export.

#include "src/obs/metrics.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace flicker {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Get(Ctr::kTpmCommands), 0u);
  registry.Inc(Ctr::kTpmCommands);
  registry.Inc(Ctr::kTpmCommands, 41);
  EXPECT_EQ(registry.Get(Ctr::kTpmCommands), 42u);
  // Other counters are untouched.
  EXPECT_EQ(registry.Get(Ctr::kFlickerSessions), 0u);
}

TEST(MetricsRegistryTest, EveryStandardMetricHasNameUnitAndHelp) {
  for (int i = 0; i < static_cast<int>(Ctr::kCount); ++i) {
    const MetricDef& def = CounterDef(static_cast<Ctr>(i));
    EXPECT_NE(def.name[0], '\0') << "counter " << i;
    EXPECT_NE(def.unit[0], '\0') << "counter " << i;
    EXPECT_NE(def.help[0], '\0') << "counter " << i;
  }
  for (int i = 0; i < static_cast<int>(Hist::kCount); ++i) {
    const MetricDef& def = HistogramDef(static_cast<Hist>(i));
    EXPECT_NE(def.name[0], '\0') << "histogram " << i;
    EXPECT_NE(def.unit[0], '\0') << "histogram " << i;
    EXPECT_NE(def.help[0], '\0') << "histogram " << i;
  }
}

TEST(MetricsRegistryTest, StandardMetricNamesAreUnique) {
  std::vector<std::string> names;
  for (int i = 0; i < static_cast<int>(Ctr::kCount); ++i) {
    names.push_back(CounterDef(static_cast<Ctr>(i)).name);
  }
  for (int i = 0; i < static_cast<int>(Hist::kCount); ++i) {
    names.push_back(HistogramDef(static_cast<Hist>(i)).name);
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(MetricsRegistryTest, HistogramBucketsFollowTheFixedBounds) {
  MetricsRegistry registry;
  registry.Observe(Hist::kTpmCommandLatencyMs, 0.05);   // <= 0.1 -> bucket 0
  registry.Observe(Hist::kTpmCommandLatencyMs, 0.1);    // boundary lands low
  registry.Observe(Hist::kTpmCommandLatencyMs, 1.5);    // <= 2 -> bucket 3
  registry.Observe(Hist::kTpmCommandLatencyMs, 972.0);  // <= 1000 -> bucket 11
  registry.Observe(Hist::kTpmCommandLatencyMs, 9999.0); // > 5000 -> +inf
  EXPECT_EQ(registry.HistogramBucket(Hist::kTpmCommandLatencyMs, 0), 2u);
  EXPECT_EQ(registry.HistogramBucket(Hist::kTpmCommandLatencyMs, 3), 1u);
  EXPECT_EQ(registry.HistogramBucket(Hist::kTpmCommandLatencyMs, 11), 1u);
  EXPECT_EQ(registry.HistogramBucket(Hist::kTpmCommandLatencyMs, kHistogramBucketCount - 1), 1u);
  EXPECT_EQ(registry.HistogramCount(Hist::kTpmCommandLatencyMs), 5u);
  EXPECT_NEAR(registry.HistogramSumMs(Hist::kTpmCommandLatencyMs), 10972.65, 0.01);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.Inc(Ctr::kNetMessagesSent);
        registry.Observe(Hist::kSessionCallLatencyMs, 1.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.Get(Ctr::kNetMessagesSent),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.HistogramCount(Hist::kSessionCallLatencyMs),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // value 1.0 lands in the `le=1` bucket every time - no lost updates.
  EXPECT_EQ(registry.HistogramBucket(Hist::kSessionCallLatencyMs, 2),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, DynamicRegistrationIsIdempotent) {
  MetricsRegistry registry;
  Result<int> first = registry.RegisterCounter("bench_rounds_total", "count", "bench rounds");
  ASSERT_TRUE(first.ok());
  Result<int> again = registry.RegisterCounter("bench_rounds_total", "count", "bench rounds");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value(), again.value());

  registry.IncDynamic(first.value(), 3);
  registry.IncDynamic(again.value(), 4);
  EXPECT_EQ(registry.GetDynamic(first.value()), 7u);
}

TEST(MetricsRegistryTest, ConflictingReRegistrationIsAnError) {
  MetricsRegistry registry;
  ASSERT_TRUE(registry.RegisterCounter("widget_total", "count", "widgets").ok());
  // Same name, different metadata: two sites disagree about the meaning.
  EXPECT_FALSE(registry.RegisterCounter("widget_total", "ms", "widgets").ok());
  EXPECT_FALSE(registry.RegisterCounter("widget_total", "count", "different help").ok());
}

TEST(MetricsRegistryTest, DynamicNameMayNotShadowStandardMetrics) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.RegisterCounter("tpm_commands_total", "count", "shadow").ok());
  EXPECT_FALSE(registry.RegisterCounter("tpm_command_latency_ms", "ms", "shadow").ok());
}

TEST(MetricsRegistryTest, ConcurrentRegistrationOfSameNameYieldsOneId) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> ids(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &ids, t] {
      Result<int> id = registry.RegisterCounter("raced_total", "count", "raced");
      ids[static_cast<size_t>(t)] = id.ok() ? id.value() : -1;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int id : ids) {
    EXPECT_EQ(id, ids[0]);
    EXPECT_GE(id, 0);
  }
}

TEST(MetricsRegistryTest, OutOfRangeDynamicIdsAreHarmless) {
  MetricsRegistry registry;
  registry.IncDynamic(-1);
  registry.IncDynamic(999);
  EXPECT_EQ(registry.GetDynamic(-1), 0u);
  EXPECT_EQ(registry.GetDynamic(999), 0u);
}

TEST(MetricsRegistryTest, DumpTextIsDeterministicAndSparse) {
  MetricsRegistry registry;
  registry.Inc(Ctr::kFlickerSessions, 2);
  registry.Observe(Hist::kSkinitLatencyMs, 14.3);
  Result<int> dyn = registry.RegisterCounter("extra_total", "count", "extra");
  ASSERT_TRUE(dyn.ok());
  registry.IncDynamic(dyn.value(), 5);

  std::ostringstream a;
  registry.DumpText(a);
  std::ostringstream b;
  registry.DumpText(b);
  EXPECT_EQ(a.str(), b.str());

  const std::string dump = a.str();
  EXPECT_NE(dump.find("flicker_sessions_total 2"), std::string::npos);
  EXPECT_NE(dump.find("skinit_latency_ms_count 1"), std::string::npos);
  EXPECT_NE(dump.find("skinit_latency_ms_bucket{le=\"20\"} 1"), std::string::npos);
  EXPECT_NE(dump.find("extra_total 5"), std::string::npos);
  // Sparse: empty buckets never print.
  EXPECT_EQ(dump.find("skinit_latency_ms_bucket{le=\"0.1\"}"), std::string::npos);
}

TEST(MetricsRegistryTest, MarkdownReferenceListsEveryStandardMetric) {
  std::ostringstream os;
  MetricsRegistry::DumpMarkdown(os);
  const std::string md = os.str();
  for (int i = 0; i < static_cast<int>(Ctr::kCount); ++i) {
    EXPECT_NE(md.find(CounterDef(static_cast<Ctr>(i)).name), std::string::npos);
  }
  for (int i = 0; i < static_cast<int>(Hist::kCount); ++i) {
    EXPECT_NE(md.find(HistogramDef(static_cast<Hist>(i)).name), std::string::npos);
  }
  EXPECT_NE(md.find("Do not edit by hand"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsDynamicIds) {
  MetricsRegistry registry;
  registry.Inc(Ctr::kPowerCuts, 7);
  registry.Observe(Hist::kFlickerSessionTotalMs, 100.0);
  Result<int> dyn = registry.RegisterCounter("reset_me_total", "count", "reset");
  ASSERT_TRUE(dyn.ok());
  registry.IncDynamic(dyn.value(), 9);

  registry.ResetValuesForTesting();
  EXPECT_EQ(registry.Get(Ctr::kPowerCuts), 0u);
  EXPECT_EQ(registry.HistogramCount(Hist::kFlickerSessionTotalMs), 0u);
  EXPECT_EQ(registry.GetDynamic(dyn.value()), 0u);
  // The id survives: re-registration still resolves to it.
  Result<int> again = registry.RegisterCounter("reset_me_total", "count", "reset");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), dyn.value());
}

}  // namespace
}  // namespace obs
}  // namespace flicker
