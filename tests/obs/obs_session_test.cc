// End-to-end observability: one full SSH attestation round under a tracer
// must produce the nested span tree the design promises (app frame down to
// individual TPM ordinals), export byte-identically across same-seed runs,
// and leave the simulated clock exactly where an untraced run leaves it.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/ssh.h"
#include "src/core/remote_attestation.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {
namespace {

// The same round bench/micro_obs.cc exports: SSH server setup (attested) plus
// one successful login frame, optionally under a tracer.
struct SshRoundResult {
  bool ok = false;
  uint64_t final_sim_us = 0;
  uint64_t sessions_started = 0;
  std::string trace_json;
  std::vector<obs::SpanRecord> spans;
};

SshRoundResult RunSshRound(bool traced) {
  SshRoundResult result;
  FlickerPlatform platform;
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<SshPal>(), options).value();

  SshServer server(&platform, &binary);
  if (!server.AddUser("alice", "correct horse", "a1b2c3d4").ok()) {
    return result;
  }
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "ssh-server");
  SshClient client(&binary, ca.public_key(), cert);

  obs::Tracer tracer(platform.clock());
  if (traced) {
    obs::InstallGlobalTracer(&tracer);
  }

  Bytes setup_nonce = client.MakeNonce();
  Result<SshServer::SetupResult> setup = server.Setup(setup_nonce);
  bool ok = setup.ok() && client.VerifyServerSetup(setup.value(), setup_nonce).ok();
  if (ok) {
    Bytes login_nonce = client.MakeNonce();
    Result<Bytes> ciphertext = client.EncryptPassword("correct horse", login_nonce);
    ok = ciphertext.ok();
    if (ok) {
      SshLoginRequest request;
      request.username = "alice";
      request.encrypted_password = ciphertext.value();
      request.login_nonce = login_nonce;
      Result<Bytes> verdict = server.HandleLoginFrame(request.Serialize());
      ok = verdict.ok() && verdict.value().size() == 1 && verdict.value()[0] == 1;
    }
  }

  obs::InstallGlobalTracer(nullptr);
  result.ok = ok;
  result.final_sim_us = platform.clock()->NowMicros();
  result.sessions_started = platform.sessions_started();
  if (traced) {
    result.trace_json = tracer.ExportChromeTrace();
    result.spans = tracer.spans();
  }
  return result;
}

const obs::SpanRecord* FindSpan(const std::vector<obs::SpanRecord>& spans,
                                const std::string& name) {
  for (const obs::SpanRecord& span : spans) {
    if (span.name == name) {
      return &span;
    }
  }
  return nullptr;
}

const obs::SpanRecord* FindById(const std::vector<obs::SpanRecord>& spans, uint64_t id) {
  for (const obs::SpanRecord& span : spans) {
    if (span.id == id) {
      return &span;
    }
  }
  return nullptr;
}

// True when `ancestor` is on `span`'s parent chain.
bool HasAncestor(const std::vector<obs::SpanRecord>& spans, const obs::SpanRecord* span,
                 const obs::SpanRecord* ancestor) {
  while (span != nullptr && span->parent_id != 0) {
    span = FindById(spans, span->parent_id);
    if (span == ancestor) {
      return true;
    }
  }
  return false;
}

TEST(ObsSessionTest, SshRoundProducesTheFullSpanTree) {
  SshRoundResult run = RunSshRound(/*traced=*/true);
  ASSERT_TRUE(run.ok);
  ASSERT_FALSE(run.spans.empty());

  // Every layer contributed at least one span.
  const char* const kExpected[] = {
      "app.ssh_setup",    "app.ssh_login_frame", "app.ssh_login",
      "flicker.session",  "platform.stage",      "platform.suspend_skinit",
      "platform.resume",  "hw.skinit",           "HW_SkinitReset",
      "slb.run",          "slb.stub_hash",       "slb.pal_execute",
      "slb.extends",      "tqd.quote",           "TPM_ORD_Quote",
      "TPM_ORD_Extend",
  };
  for (const char* name : kExpected) {
    EXPECT_NE(FindSpan(run.spans, name), nullptr) << "missing span: " << name;
  }

  // Nesting: the SKINIT reset pseudo-command sits under hw.skinit, which
  // sits under the platform suspend phase, which sits inside the session,
  // which sits inside the app frame handler.
  const obs::SpanRecord* frame = FindSpan(run.spans, "app.ssh_login_frame");
  const obs::SpanRecord* session = FindSpan(run.spans, "flicker.session");
  const obs::SpanRecord* suspend = FindSpan(run.spans, "platform.suspend_skinit");
  const obs::SpanRecord* skinit = FindSpan(run.spans, "hw.skinit");
  const obs::SpanRecord* reset = FindSpan(run.spans, "HW_SkinitReset");
  const obs::SpanRecord* pal = FindSpan(run.spans, "slb.pal_execute");
  const obs::SpanRecord* quote = FindSpan(run.spans, "TPM_ORD_Quote");
  const obs::SpanRecord* tqd = FindSpan(run.spans, "tqd.quote");
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(HasAncestor(run.spans, skinit, suspend));
  EXPECT_TRUE(HasAncestor(run.spans, reset, skinit));
  EXPECT_TRUE(HasAncestor(run.spans, pal, session));
  EXPECT_TRUE(HasAncestor(run.spans, quote, tqd));
  // There are two sessions (setup PAL + login PAL); the login one nests
  // under the app's frame handler.
  const obs::SpanRecord* login_session = nullptr;
  for (const obs::SpanRecord& span : run.spans) {
    if (span.name == "flicker.session" && HasAncestor(run.spans, &span, frame)) {
      login_session = &span;
    }
  }
  EXPECT_NE(login_session, nullptr);

  // Session tagging: spans inside a Flicker session carry its id; ids are
  // assigned monotonically from 1.
  EXPECT_GE(run.sessions_started, 2u);
  EXPECT_GT(session->session_id, 0u);
  ASSERT_NE(pal, nullptr);
  EXPECT_GT(pal->session_id, 0u);
  EXPECT_LE(pal->session_id, run.sessions_started);

  // All spans were closed: no open leftovers after the round.
  for (const obs::SpanRecord& span : run.spans) {
    EXPECT_FALSE(span.open) << span.name;
    EXPECT_GE(span.end_ns, span.start_ns) << span.name;
  }
}

TEST(ObsSessionTest, SameSeedRunsExportByteIdenticalTraces) {
  SshRoundResult a = RunSshRound(/*traced=*/true);
  SshRoundResult b = RunSshRound(/*traced=*/true);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ObsSessionTest, TracingNeverAdvancesTheSimulatedClock) {
  SshRoundResult untraced = RunSshRound(/*traced=*/false);
  SshRoundResult traced = RunSshRound(/*traced=*/true);
  ASSERT_TRUE(untraced.ok);
  ASSERT_TRUE(traced.ok);
  // Exact equality: this is what keeps Table 1/2/4 and Fig. 9 bit-identical
  // with tracing on or off.
  EXPECT_EQ(untraced.final_sim_us, traced.final_sim_us);
}

TEST(ObsSessionTest, RoundFeedsTheGlobalMetricsRegistry) {
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
  const uint64_t sessions_before = registry->Get(obs::Ctr::kFlickerSessions);
  const uint64_t skinit_before = registry->Get(obs::Ctr::kSkinitLaunches);
  const uint64_t tpm_before = registry->Get(obs::Ctr::kTpmCommands);
  const uint64_t hashes_before = registry->Get(obs::Ctr::kMeasureHashes);
  const uint64_t session_hist_before =
      registry->HistogramCount(obs::Hist::kFlickerSessionTotalMs);

  SshRoundResult run = RunSshRound(/*traced=*/false);
  ASSERT_TRUE(run.ok);

  // Metrics flow with or without a tracer installed.
  EXPECT_GE(registry->Get(obs::Ctr::kFlickerSessions) - sessions_before, 2u);
  EXPECT_GE(registry->Get(obs::Ctr::kSkinitLaunches) - skinit_before, 2u);
  EXPECT_GT(registry->Get(obs::Ctr::kTpmCommands) - tpm_before, 0u);
  EXPECT_GT(registry->Get(obs::Ctr::kMeasureHashes) - hashes_before, 0u);
  EXPECT_GE(registry->HistogramCount(obs::Hist::kFlickerSessionTotalMs) -
                session_hist_before,
            2u);
}

}  // namespace
}  // namespace flicker
