// Tracer mechanics: span nesting, session tagging, the EmitComplete path
// the TPM transport uses, and the deterministic Chrome trace_event export.

#include "src/obs/trace.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/hw/clock.h"

namespace flicker {
namespace obs {
namespace {

// Installs a tracer for the test body and guarantees removal on exit, so no
// test leaks a dangling global tracer into its neighbors.
class ScopedInstall {
 public:
  explicit ScopedInstall(Tracer* tracer) { InstallGlobalTracer(tracer); }
  ~ScopedInstall() { InstallGlobalTracer(nullptr); }
};

TEST(TracerTest, SpansNestByStackDiscipline) {
  SimClock clock;
  Tracer tracer(&clock);
  uint64_t outer = tracer.BeginSpan("test", "outer");
  clock.AdvanceMillis(5);
  uint64_t inner = tracer.BeginSpan("test", "inner");
  clock.AdvanceMillis(2);
  tracer.EndSpan(inner);
  clock.AdvanceMillis(1);
  tracer.EndSpan(outer);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& outer_span = tracer.spans()[0];
  const SpanRecord& inner_span = tracer.spans()[1];
  EXPECT_EQ(outer_span.parent_id, 0u);
  EXPECT_EQ(inner_span.parent_id, outer_span.id);
  EXPECT_EQ(outer_span.start_ns, 0u);
  EXPECT_EQ(outer_span.end_ns, 8'000'000u);
  EXPECT_EQ(inner_span.start_ns, 5'000'000u);
  EXPECT_EQ(inner_span.end_ns, 7'000'000u);
  EXPECT_FALSE(outer_span.open);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(TracerTest, MismatchedEndClosesEverythingAbove) {
  SimClock clock;
  Tracer tracer(&clock);
  uint64_t a = tracer.BeginSpan("test", "a");
  tracer.BeginSpan("test", "b");
  tracer.BeginSpan("test", "c");
  tracer.EndSpan(a);  // Instrumentation bug: b and c were never ended.
  EXPECT_EQ(tracer.open_depth(), 0u);
  for (const SpanRecord& span : tracer.spans()) {
    EXPECT_FALSE(span.open) << span.name;
  }
}

TEST(TracerTest, EmitCompleteParentsUnderInnermostOpenSpan) {
  SimClock clock;
  Tracer tracer(&clock);
  uint64_t parent = tracer.BeginSpan("test", "parent");
  clock.AdvanceMillis(10);
  tracer.EmitComplete("tpm", "TPM_ORD_Extend", NowNs(&clock) - 1'000'000, NowNs(&clock));
  tracer.EndSpan(parent);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& cmd = tracer.spans()[1];
  EXPECT_EQ(cmd.parent_id, parent);
  EXPECT_EQ(cmd.name, "TPM_ORD_Extend");
  EXPECT_EQ(cmd.end_ns - cmd.start_ns, 1'000'000u);
  EXPECT_FALSE(cmd.open);
}

TEST(TracerTest, EmitCompleteClampsBackwardsIntervals) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.EmitComplete("test", "backwards", 500, 100);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].start_ns, 500u);
  EXPECT_EQ(tracer.spans()[0].end_ns, 500u);
}

TEST(TracerTest, SessionTagsOnlySpansInsideTheScope) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.BeginSpan("test", "before");
  uint64_t previous = tracer.SetSession(3);
  EXPECT_EQ(previous, 0u);
  tracer.BeginSpan("test", "inside");
  tracer.Instant("test", "inside_instant");
  tracer.SetSession(previous);
  tracer.BeginSpan("test", "after");

  EXPECT_EQ(tracer.spans()[0].session_id, 0u);
  EXPECT_EQ(tracer.spans()[1].session_id, 3u);
  EXPECT_EQ(tracer.instants()[0].session_id, 3u);
  EXPECT_EQ(tracer.spans()[2].session_id, 0u);
}

TEST(TracerTest, ScopedHelpersNoOpWithoutGlobalTracer) {
  ASSERT_EQ(GlobalTracer(), nullptr);
  {
    ScopedSpan span("test", "orphan");
    span.Arg("key", std::string("value"));
    Instant("test", "orphan_instant");
    EmitComplete("test", "orphan_complete", 0, 1);
    ScopedSession session(7);
  }
  // Nothing crashed, nothing recorded anywhere: that is the whole contract.
}

TEST(TracerTest, ScopedHelpersRecordAgainstInstalledTracer) {
  SimClock clock;
  Tracer tracer(&clock);
  ScopedInstall install(&tracer);
  {
    ScopedSession session(4);
    ScopedSpan span("test", "scoped");
    span.Arg("bytes", static_cast<uint64_t>(512));
    clock.AdvanceMillis(3);
    Instant("test", "marker");
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].session_id, 4u);
  EXPECT_EQ(tracer.spans()[0].end_ns, 3'000'000u);
  ASSERT_EQ(tracer.spans()[0].args.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].args[0].key, "bytes");
  EXPECT_EQ(tracer.spans()[0].args[0].value, "512");
  ASSERT_EQ(tracer.instants().size(), 1u);
  EXPECT_EQ(tracer.instants()[0].session_id, 4u);
  EXPECT_EQ(tracer.current_session(), 0u);  // ScopedSession restored.
}

TEST(TracerTest, ExportIsByteIdenticalForIdenticalHistories) {
  auto record = [](Tracer* tracer, SimClock* clock) {
    uint64_t span = tracer->BeginSpan("test", "work");
    clock->AdvanceMillis(7);
    tracer->Instant("test", "tick", {{"n", "1"}});
    tracer->EndSpan(span);
  };
  SimClock clock_a;
  Tracer tracer_a(&clock_a);
  record(&tracer_a, &clock_a);
  SimClock clock_b;
  Tracer tracer_b(&clock_b);
  record(&tracer_b, &clock_b);
  EXPECT_EQ(tracer_a.ExportChromeTrace(), tracer_b.ExportChromeTrace());
}

TEST(TracerTest, ExportRendersExactMicrosecondTimestamps) {
  SimClock clock;
  Tracer tracer(&clock);
  clock.AdvanceMicros(1234);
  uint64_t span = tracer.BeginSpan("test", "precise");
  clock.AdvanceMicros(501);
  tracer.EndSpan(span);
  const std::string json = tracer.ExportChromeTrace();
  // Integer nanoseconds render as exact microseconds with three decimals:
  // no float formatting drift between runs or platforms.
  EXPECT_NE(json.find("\"ts\":1234.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":501.000"), std::string::npos) << json;
}

TEST(TracerTest, ExportEscapesHostileStrings) {
  SimClock clock;
  Tracer tracer(&clock);
  uint64_t span = tracer.BeginSpan("test", "quote\"and\\slash");
  tracer.AddSpanArg(span, "msg", "line\nbreak");
  tracer.EndSpan(span);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

TEST(TracerTest, SessionIdBecomesChromeTid) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.SetSession(12);
  uint64_t span = tracer.BeginSpan("test", "in_session");
  tracer.EndSpan(span);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(json.find("\"tid\":12"), std::string::npos) << json;
}

}  // namespace
}  // namespace obs
}  // namespace flicker
