// Whole-platform lifecycle: all four applications interleaved on one
// machine, cross-application isolation of sealed state, and persistence
// across reboots.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/ca.h"
#include "src/apps/distributed.h"
#include "src/apps/rootkit_detector.h"
#include "src/apps/ssh.h"
#include "src/core/sealed_state.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

class LifecycleTest : public ::testing::Test {
 protected:
  LifecycleTest() {
    owner_auth_ = Sha1::Digest(BytesOf("owner"));
    EXPECT_TRUE(platform_.tpm()->TakeOwnership(owner_auth_).ok());
  }

  static PalBinary StubBuild(std::shared_ptr<Pal> pal) {
    PalBuildOptions options;
    options.measurement_stub = true;
    return BuildPal(std::move(pal), options).take();
  }

  FlickerPlatform platform_;
  Bytes owner_auth_;
};

TEST_F(LifecycleTest, FourApplicationsShareOnePlatform) {
  // All four paper applications run interleaved on the same machine; each
  // session gets a fresh PCR 17 and none disturbs another's sealed state.
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform_.tpm()->aik_public(), "shared-host");

  // 1. SSH setup.
  PalBinary ssh_pal = StubBuild(std::make_shared<SshPal>());
  SshServer sshd(&platform_, &ssh_pal);
  ASSERT_TRUE(sshd.AddUser("alice", "pw one", "saltsalt").ok());
  SshClient ssh_client(&ssh_pal, ca.public_key(), cert);
  Bytes setup_nonce = ssh_client.MakeNonce();
  Result<SshServer::SetupResult> setup = sshd.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(ssh_client.VerifyServerSetup(setup.value(), setup_nonce).ok());

  // 2. CA initialization + one signature.
  PalBinary ca_pal = StubBuild(std::make_shared<CaPal>());
  CertificateAuthorityHost ca_host(&platform_, &ca_pal, "Lifecycle CA");
  ASSERT_TRUE(ca_host.Initialize(owner_auth_).ok());
  CaPolicy policy;
  policy.allowed_suffixes = {".example.org"};
  CertificateSigningRequest csr;
  csr.subject = "a.example.org";
  csr.subject_public_key = Bytes(16, 1);
  ASSERT_TRUE(ca_host.SignCertificate(csr, policy).status.ok());

  // 3. A rootkit scan in between.
  PalBinary detector = BuildPal(std::make_shared<RootkitDetectorPal>()).take();
  RootkitMonitor monitor(&detector, platform_.kernel()->pristine_measurement(),
                         ca.public_key(), cert);
  Channel channel(platform_.clock());
  RootkitMonitor::QueryReport scan = monitor.Query(&platform_, &channel);
  ASSERT_TRUE(scan.status.ok());
  EXPECT_TRUE(scan.kernel_clean);

  // 4. BOINC work.
  PalBinary boinc = StubBuild(std::make_shared<DistributedPal>());
  BoincClient boinc_client(&platform_, &boinc);
  ASSERT_TRUE(boinc_client.Initialize().ok());
  FactorWorkUnit unit;
  unit.composite = 30030;
  unit.search_limit = 5000;
  ASSERT_TRUE(boinc_client.Process(unit, 50).status.ok());

  // 5. SSH login still works after all of that: its sealed key survived
  //    every other application's sessions.
  Bytes login_nonce = ssh_client.MakeNonce();
  Result<Bytes> ciphertext = ssh_client.EncryptPassword("pw one", login_nonce);
  ASSERT_TRUE(ciphertext.ok());
  Result<SshServer::LoginResult> login =
      sshd.HandleLogin("alice", ciphertext.value(), login_nonce);
  ASSERT_TRUE(login.ok());
  EXPECT_TRUE(login.value().authenticated);

  // 6. And the CA can still sign (its replay counter was untouched by the
  //    other apps).
  csr.subject = "b.example.org";
  CertificateAuthorityHost::SignReport second = ca_host.SignCertificate(csr, policy);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.certificate.serial, 2u);
}

TEST_F(LifecycleTest, SealedStateIsPerPalNotPerPlatform) {
  // The SSH PAL cannot unseal the CA's state and vice versa, even though
  // both live on the same TPM: the PCR 17 binding separates them.
  PalBinary ssh_pal = StubBuild(std::make_shared<SshPal>());
  PalBinary ca_pal = StubBuild(std::make_shared<CaPal>());
  SshServer sshd(&platform_, &ssh_pal);
  ASSERT_TRUE(sshd.AddUser("alice", "pw", "saltsalt").ok());
  Result<SshServer::SetupResult> setup = sshd.Setup(Bytes(20, 1));
  ASSERT_TRUE(setup.ok());

  // Feed the SSH key material into a CA signing session as its sealed
  // state: the TPM refuses (different PAL identity).
  CertificateAuthorityHost ca_host(&platform_, &ca_pal, "X");
  ASSERT_TRUE(ca_host.Initialize(owner_auth_).ok());
  Result<SecureChannelKeyMaterial> ssh_material =
      SecureChannelKeyMaterial::Deserialize(sshd.key_material());
  ASSERT_TRUE(ssh_material.ok());
  ca_host.set_sealed_state(ssh_material.value().sealed_private_key);
  CaPolicy policy;
  policy.allowed_suffixes = {".x"};
  CertificateSigningRequest csr;
  csr.subject = "a.x";
  csr.subject_public_key = Bytes(4, 1);
  CertificateAuthorityHost::SignReport report = ca_host.SignCertificate(csr, policy);
  ASSERT_FALSE(report.status.ok());
}

TEST_F(LifecycleTest, SealedStateSurvivesReboot) {
  // Reboot between SSH setup and login: the sealed private key unseals fine
  // afterwards, because the PAL's PCR 17 chain is reproduced by SKINIT, not
  // by uptime.
  PalBinary ssh_pal = StubBuild(std::make_shared<SshPal>());
  SshServer sshd(&platform_, &ssh_pal);
  ASSERT_TRUE(sshd.AddUser("alice", "pw", "saltsalt").ok());
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform_.tpm()->aik_public(), "host");
  SshClient client(&ssh_pal, ca.public_key(), cert);
  Bytes setup_nonce = client.MakeNonce();
  Result<SshServer::SetupResult> setup = sshd.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(client.VerifyServerSetup(setup.value(), setup_nonce).ok());

  platform_.machine()->Reboot();

  Bytes login_nonce = client.MakeNonce();
  Result<Bytes> ciphertext = client.EncryptPassword("pw", login_nonce);
  ASSERT_TRUE(ciphertext.ok());
  Result<SshServer::LoginResult> login =
      sshd.HandleLogin("alice", ciphertext.value(), login_nonce);
  ASSERT_TRUE(login.ok()) << login.status().ToString();
  EXPECT_TRUE(login.value().authenticated);
}

TEST_F(LifecycleTest, ManySequentialSessionsStayConsistent) {
  // 20 back-to-back sessions: PCR 17 takes the identical final value every
  // time, and the platform never leaks session state across runs.
  PalBinary detector = BuildPal(std::make_shared<RootkitDetectorPal>()).take();
  Bytes inputs = platform_.kernel()->SerializeRegions();
  Bytes reference_pcr;
  for (int i = 0; i < 20; ++i) {
    Result<FlickerSessionResult> result = platform_.ExecuteSession(detector, inputs);
    ASSERT_TRUE(result.ok()) << i;
    ASSERT_TRUE(result.value().ok()) << i;
    if (i == 0) {
      reference_pcr = result.value().record.pcr17_final;
    } else {
      EXPECT_EQ(result.value().record.pcr17_final, reference_pcr) << i;
    }
    EXPECT_EQ(result.value().outputs(), platform_.kernel()->pristine_measurement()) << i;
  }
}

}  // namespace
}  // namespace flicker
