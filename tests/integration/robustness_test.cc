// Robustness sweep: every wire-format parser in the tree is fed random and
// mutated inputs. Parsers guard the PAL/TCB boundary (the untrusted OS
// supplies all of these buffers), so the property is: never crash, never
// accept garbage as valid, always return a clean error.

#include <gtest/gtest.h>

#include "src/apps/ca.h"
#include "src/apps/distributed.h"
#include "src/attest/event_log.h"
#include "src/core/secure_channel.h"
#include "src/crypto/drbg.h"
#include "src/crypto/rsa.h"
#include "src/os/kernel.h"
#include "src/tpm/tpm.h"
#include "src/tpm/tpm_util.h"

namespace flicker {
namespace {

// Random buffers of assorted sizes.
std::vector<Bytes> RandomInputs(uint64_t seed) {
  Drbg rng(seed);
  std::vector<Bytes> inputs;
  inputs.push_back(Bytes());
  for (size_t len : {1u, 2u, 3u, 4u, 7u, 8u, 16u, 32u, 100u, 1000u, 5000u}) {
    inputs.push_back(rng.Generate(len));
  }
  return inputs;
}

TEST(RobustnessTest, AllParsersSurviveRandomInput) {
  for (const Bytes& input : RandomInputs(0xfade)) {
    (void)FactorState::Deserialize(input);
    (void)CertificateSigningRequest::Deserialize(input);
    (void)Certificate::Deserialize(input);
    (void)CaPolicy::Deserialize(input);
    (void)SecureChannelKeyMaterial::Deserialize(input);
    (void)FlickerEventLog::Deserialize(input);
    (void)RsaPublicKey::Deserialize(input);
    (void)RsaPrivateKey::Deserialize(input);
    (void)OsKernel::DeserializeRegions(input);
  }
  SUCCEED();  // The property is "no crash / no UB".
}

TEST(RobustnessTest, RandomInputNeverParsesAsValidKey) {
  // A 5000-byte random buffer must not satisfy the length-prefixed key
  // grammar by accident (the prefixes make this astronomically unlikely;
  // this guards against a parser that ignores its length fields).
  for (const Bytes& input : RandomInputs(0xbead)) {
    if (input.size() < 8) {
      continue;
    }
    Result<RsaPrivateKey> key = RsaPrivateKey::Deserialize(input);
    EXPECT_FALSE(key.ok());
  }
}

TEST(RobustnessTest, UnsealSurvivesRandomBlobs) {
  SimClock clock;
  Tpm tpm(&clock, InfineonProfile());
  Bytes auth = Bytes(20, 7);
  for (const Bytes& input : RandomInputs(0xcafe)) {
    Result<Bytes> out = TpmUnsealData(&tpm, SealedBlob{input}, auth);
    EXPECT_FALSE(out.ok());
  }
}

TEST(RobustnessTest, LoadKey2SurvivesRandomBlobs) {
  SimClock clock;
  Tpm tpm(&clock, InfineonProfile());
  for (const Bytes& input : RandomInputs(0xdead)) {
    Result<uint32_t> handle = tpm.LoadKey2(input);
    EXPECT_FALSE(handle.ok());
  }
  EXPECT_EQ(tpm.loaded_key_count(), 0u);
}

// Single-byte mutations of *valid* wire forms must be rejected or parse to
// something different - never crash.
TEST(RobustnessTest, MutatedValidStructuresSurvive) {
  Certificate cert;
  cert.serial = 7;
  cert.subject = "host.example.org";
  cert.subject_public_key = BytesOf("key");
  cert.issuer = "CA";
  cert.signature = BytesOf("sig");
  Bytes wire = cert.Serialize();

  Drbg rng(0xfeed);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = wire;
    size_t pos = rng.UniformUint64(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(rng.UniformUint64(255) + 1);
    Result<Certificate> parsed = Certificate::Deserialize(mutated);
    if (parsed.ok()) {
      // If it still parses, it must differ somewhere or the mutation hit a
      // byte the grammar ignores - there are none in this format, so the
      // parsed value must not equal the original in all fields.
      bool identical = parsed.value().serial == cert.serial &&
                       parsed.value().subject == cert.subject &&
                       parsed.value().subject_public_key == cert.subject_public_key &&
                       parsed.value().issuer == cert.issuer &&
                       parsed.value().signature == cert.signature;
      EXPECT_FALSE(identical);
    }
  }
}

TEST(RobustnessTest, TruncationsOfValidStructuresSurvive) {
  FlickerEventLog log;
  log.pal_name = "p";
  log.claimed_measurement = Bytes(20, 1);
  log.inputs = BytesOf("in");
  log.outputs = BytesOf("out");
  log.nonce = Bytes(20, 2);
  log.pal_extends = {Bytes(20, 3)};
  Bytes wire = log.Serialize();
  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(FlickerEventLog::Deserialize(truncated).ok()) << "len " << len;
  }
}

}  // namespace
}  // namespace flicker
