// The crash matrix: sweep a power loss over every instrumented crash point
// of a representative Flicker workload, for both reset kinds, and assert the
// post-recovery invariants after each cell. This is the payoff test of the
// fault-injection campaign: a correct stack survives every interleaving of
// crash x recovery, and a deliberately mis-ordered seal protocol is caught.
//
// Workload per cell (fresh platform each time, so cells are independent and
// the hit sequence is deterministic):
//   1. a full Flicker session (SKINIT -> PAL -> erase -> resume),
//   2. a two-phase seal of a new generation,
//   3. an NV-counter-protected seal,
//   4. TPM_SaveState.
// Recovery per cell: PowerCut or WarmReset, TPM_Startup(ST_CLEAR),
// CrashConsistentSealedStore::Recover().
//
// Invariants checked after recovery:
//   A. dynamic PCRs read back as the -1 reset value,
//   B. Recover() never fails closed and the store serves exactly one of the
//      two generations in flight - never anything else, never stale data,
//   C. the pre-crash NV-protected blob unseals to its exact bytes or fails
//      closed (kReplayDetected), and a fresh generation seals fine,
//   D. the quote daemon can serve a challenge again.

#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/apps/rootkit_detector.h"
#include "src/common/fault.h"
#include "src/core/flicker_platform.h"
#include "src/core/sealed_state.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

constexpr uint32_t kNvIndex = 77;

enum class ResetKind { kPowerCut, kWarmReset };

const char* ResetKindName(ResetKind kind) {
  return kind == ResetKind::kPowerCut ? "PowerCut" : "WarmReset";
}

// One cell's worth of platform + stores, set up identically every time. The
// setup runs without a FaultInjectionScope, so its crash points neither fire
// nor pollute the recording.
struct Rig {
  std::unique_ptr<FlickerPlatform> platform;
  // A second, concurrent-mode platform so the matrix also sweeps crashes
  // through the hypervisor's durability boundaries (launch, session
  // protection, session end) on every cell.
  std::unique_ptr<FlickerPlatform> hv_platform;
  std::unique_ptr<CrashConsistentSealedStore> store;
  std::unique_ptr<NvReplayProtectedStorage> nv;
  PalBinary detector;
  PalBinary hello;
  Bytes inputs;
  Bytes owner_auth;
  Bytes blob_auth;
  Bytes release_pcr;
  SealedBlob nv_v1;
};

class CrashMatrixTest : public ::testing::Test {
 protected:
  std::unique_ptr<Rig> MakeRig(CrashStoreOptions options = CrashStoreOptions()) {
    auto rig = std::make_unique<Rig>();
    rig->platform = std::make_unique<FlickerPlatform>();
    FlickerPlatformConfig hv_config;
    hv_config.mode = SessionMode::kConcurrent;
    rig->hv_platform = std::make_unique<FlickerPlatform>(hv_config);
    rig->hello = BuildPal(std::make_shared<HelloWorldPal>()).take();
    rig->owner_auth = Sha1::Digest(BytesOf("owner"));
    EXPECT_TRUE(rig->platform->tpm()->TakeOwnership(rig->owner_auth).ok());
    rig->blob_auth = Sha1::Digest(BytesOf("blob"));
    // Bind seals and the NV gate to the current (OS-context) PCR 17 so the
    // harness can unseal directly; PAL gating is covered by platform_test.
    rig->release_pcr = rig->platform->tpm()->PcrRead(kSkinitPcr).value();

    Result<CrashConsistentSealedStore> store = CrashConsistentSealedStore::Create(
        rig->platform->tpm(), Sha1::Digest(BytesOf("ctr")), rig->owner_auth, options);
    EXPECT_TRUE(store.ok());
    rig->store = std::make_unique<CrashConsistentSealedStore>(store.take());
    EXPECT_TRUE(rig->store->Seal(BytesOf("gen-1"), rig->release_pcr, rig->blob_auth).ok());

    Result<NvReplayProtectedStorage> nv = NvReplayProtectedStorage::Provision(
        rig->platform->tpm(), kNvIndex, rig->release_pcr, rig->owner_auth);
    EXPECT_TRUE(nv.ok());
    rig->nv = std::make_unique<NvReplayProtectedStorage>(nv.take());
    Result<SealedBlob> nv_v1 =
        rig->nv->Seal(BytesOf("nv-1"), rig->release_pcr, rig->blob_auth);
    EXPECT_TRUE(nv_v1.ok());
    rig->nv_v1 = nv_v1.take();

    PalBuildOptions build;
    build.measurement_stub = true;
    rig->detector = BuildPal(std::make_shared<RootkitDetectorPal>(), build).take();
    rig->inputs = rig->platform->kernel()->SerializeRegions();
    return rig;
  }

  // The deterministic workload every cell replays. Throws PowerLossException
  // when the armed plan elects a hit inside it. The seals run before the
  // session: the NV gate is bound to the OS-context PCR 17, which the
  // session's extends change until the next reset.
  static void RunWorkload(Rig* rig) {
    (void)rig->store->Seal(BytesOf("gen-2"), rig->release_pcr, rig->blob_auth);
    (void)rig->nv->Seal(BytesOf("nv-2"), rig->release_pcr, rig->blob_auth);
    (void)rig->platform->ExecuteSession(rig->detector, rig->inputs);
    (void)rig->platform->tpm()->SaveState();
    // A coalesced batch quote, so the matrix sweeps a power cut through the
    // batch-flush boundary too.
    (void)rig->platform->tqd()->SubmitBatched(BytesOf("batch-a"), PcrSelection({17}));
    (void)rig->platform->tqd()->SubmitBatched(BytesOf("batch-b"), PcrSelection({17}));
    std::vector<BatchQuoteResponse> slices;
    (void)rig->platform->tqd()->FlushReadyBatches(&slices, /*force=*/true);
    // A concurrent-mode session on the second platform, so the sweep also
    // crashes inside the hypervisor's launch / protect / end boundaries.
    (void)rig->hv_platform->ExecuteSession(rig->hello, BytesOf("hv-cell-input"));
  }

  static void Reset(Rig* rig, ResetKind kind) {
    if (kind == ResetKind::kPowerCut) {
      rig->platform->machine()->PowerCut();
    } else {
      rig->platform->machine()->WarmReset();
    }
  }

  // Recovers the cell and checks invariants A-D. Returns false (with gtest
  // failures recorded) when any invariant is violated.
  static bool RecoverAndCheck(Rig* rig) {
    Result<TpmStartupReport> startup = rig->platform->tpm()->Startup(TpmStartupType::kClear);
    EXPECT_TRUE(startup.ok()) << startup.status().ToString();
    if (!startup.ok()) {
      return false;
    }

    // A. Dynamic PCRs are back at their -1 reset value.
    Result<Bytes> pcr17 = rig->platform->tpm()->PcrRead(kSkinitPcr);
    EXPECT_TRUE(pcr17.ok());
    EXPECT_EQ(pcr17.value(), Bytes(20, 0xff));

    // B. Recovery classifies the torn state and the store serves exactly one
    //    of the in-flight generations.
    Result<RecoveryClass> recovered = rig->store->Recover();
    EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
    if (!recovered.ok()) {
      return false;
    }
    EXPECT_NE(recovered.value(), RecoveryClass::kFailClosed);
    Result<Bytes> latest = rig->store->UnsealLatest(rig->blob_auth);
    EXPECT_TRUE(latest.ok()) << latest.status().ToString();
    if (!latest.ok()) {
      return false;
    }
    EXPECT_TRUE(latest.value() == BytesOf("gen-1") || latest.value() == BytesOf("gen-2"))
        << "store served unexpected data";
    EXPECT_GE(rig->store->committed_version(), 1u);

    // C. The pre-crash NV blob is exact or refused - never wrong bytes - and
    //    sealing a fresh generation works.
    Result<Bytes> old_nv = rig->nv->Unseal(rig->nv_v1, rig->blob_auth);
    if (old_nv.ok()) {
      EXPECT_EQ(old_nv.value(), BytesOf("nv-1"));
    } else {
      EXPECT_EQ(old_nv.status().code(), StatusCode::kReplayDetected)
          << old_nv.status().ToString();
    }
    Result<SealedBlob> fresh =
        rig->nv->Seal(BytesOf("nv-post"), rig->release_pcr, rig->blob_auth);
    EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
    if (fresh.ok()) {
      EXPECT_EQ(rig->nv->Unseal(fresh.value(), rig->blob_auth).value(), BytesOf("nv-post"));
    }

    // D. Attestation service resumed, for single and batched challenges.
    Result<AttestationResponse> quote =
        rig->platform->tqd()->HandleChallenge(BytesOf("post-crash"), PcrSelection({17}));
    EXPECT_TRUE(quote.ok()) << quote.status().ToString();
    EXPECT_TRUE(
        rig->platform->tqd()->SubmitBatched(BytesOf("post-crash-batch"), PcrSelection({17})).ok());
    std::vector<BatchQuoteResponse> slices;
    Status batch = rig->platform->tqd()->FlushReadyBatches(&slices, /*force=*/true);
    EXPECT_TRUE(batch.ok()) << batch.ToString();
    EXPECT_EQ(slices.size(), 1u);

    // E. The concurrent-mode platform recovers too: whatever state the
    //    crash tore, a reset evicts the hypervisor and the next session
    //    relaunches it and completes normally.
    rig->hv_platform->machine()->WarmReset();
    EXPECT_FALSE(rig->hv_platform->hypervisor()->resident());
    Result<TpmStartupReport> hv_startup =
        rig->hv_platform->tpm()->Startup(TpmStartupType::kClear);
    EXPECT_TRUE(hv_startup.ok()) << hv_startup.status().ToString();
    Result<FlickerSessionResult> hv_session =
        rig->hv_platform->ExecuteSession(rig->hello, BytesOf("post-crash-hv"));
    EXPECT_TRUE(hv_session.ok()) << hv_session.status().ToString();
    if (hv_session.ok()) {
      EXPECT_EQ(hv_session.value().outputs(), BytesOf("Hello, world"));
    }

    return !::testing::Test::HasFatalFailure();
  }

  // Recording pass: run the workload with an unarmed scheduler to enumerate
  // the crash surface.
  std::vector<std::string> RecordHits() {
    std::unique_ptr<Rig> rig = MakeRig();
    FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
    scheduler->ClearHits();
    FaultInjectionScope scope(scheduler);
    RunWorkload(rig.get());
    return scheduler->hits();
  }
};

TEST_F(CrashMatrixTest, WorkloadCoversTheCrashSurface) {
  std::vector<std::string> hits = RecordHits();
  std::set<std::string> distinct(hits.begin(), hits.end());
  // The acceptance floor is 15 instrumented points; the workload reaches the
  // full census of 22 (19 classic + the hypervisor's three).
  EXPECT_GE(distinct.size(), 15u) << "crash surface shrank";
  for (const char* point :
       {"skinit.enter", "skinit.measured", "skinit.pcr_extended", "slb.entry", "slb.pal_done",
        "slb.erased", "machine.exit_secure", "seal.staged", "seal.incremented", "seal.committed",
        "tpm.counter.journal", "tpm.counter.staged", "tpm.counter.commit", "tpm.nv_write.journal",
        "tpm.nv_write.staged", "tpm.nv_write.commit", "tpm.nv_write.apply", "tpm.save_state",
        "tqd.batch_flush", "hv.launched", "hv.session_protected", "hv.session_end"}) {
    EXPECT_TRUE(distinct.count(point)) << "workload never reached " << point;
  }
}

TEST_F(CrashMatrixTest, EveryCrashPointTimesEveryResetKindRecovers) {
  const std::vector<std::string> hits = RecordHits();
  ASSERT_GE(hits.size(), 15u);

  for (ResetKind kind : {ResetKind::kPowerCut, ResetKind::kWarmReset}) {
    for (size_t i = 1; i <= hits.size(); ++i) {
      std::unique_ptr<Rig> rig = MakeRig();
      FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
      CrashPlan plan;
      plan.crash_at_hit = i;
      scheduler->Arm(plan);
      bool crashed = false;
      std::string point;
      {
        FaultInjectionScope scope(scheduler);
        try {
          RunWorkload(rig.get());
        } catch (const PowerLossException& e) {
          crashed = true;
          point = e.point();
        }
      }
      ASSERT_TRUE(crashed) << "hit " << i << " never fired (recorded " << hits[i - 1] << ")";
      EXPECT_EQ(point, hits[i - 1]) << "replay diverged from the recording at hit " << i;

      Reset(rig.get(), kind);
      bool ok = RecoverAndCheck(rig.get());
      if (!ok || ::testing::Test::HasFailure()) {
        std::cerr << "crash matrix cell failed: crash at hit " << i << " ('" << point << "') + "
                  << ResetKindName(kind) << "\n";
        scheduler->DumpCrashPoints(std::cerr);
        rig->platform->machine()->tpm_transport()->DumpTrace(std::cerr);
        FAIL() << "invariant violated at '" << point << "' x " << ResetKindName(kind);
      }
    }
  }
}

TEST_F(CrashMatrixTest, BrokenCommitOrderingIsCaughtByTheMatrix) {
  // Same sweep, but the store commits before incrementing the counter. The
  // matrix must catch the bug: some cell leaves the store unable to serve
  // either in-flight generation (the committed blob's version is ahead of
  // the counter forever - data loss).
  CrashStoreOptions broken;
  broken.broken_commit_before_increment = true;

  // Record the broken workload's own hit sequence (the seal emits its points
  // in a different order).
  std::vector<std::string> hits;
  {
    std::unique_ptr<Rig> rig = MakeRig(broken);
    FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
    scheduler->ClearHits();
    FaultInjectionScope scope(scheduler);
    RunWorkload(rig.get());
    hits = scheduler->hits();
  }
  ASSERT_FALSE(hits.empty());

  int violations = 0;
  for (size_t i = 1; i <= hits.size(); ++i) {
    std::unique_ptr<Rig> rig = MakeRig(broken);
    FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
    CrashPlan plan;
    plan.crash_at_hit = i;
    scheduler->Arm(plan);
    bool crashed = false;
    {
      FaultInjectionScope scope(scheduler);
      try {
        RunWorkload(rig.get());
      } catch (const PowerLossException&) {
        crashed = true;
      }
    }
    if (!crashed) {
      break;
    }
    rig->platform->machine()->WarmReset();
    if (!rig->platform->tpm()->Startup(TpmStartupType::kClear).ok()) {
      ++violations;
      continue;
    }
    Result<RecoveryClass> recovered = rig->store->Recover();
    Result<Bytes> latest = rig->store->UnsealLatest(rig->blob_auth);
    bool serves_valid_generation =
        recovered.ok() && latest.ok() &&
        (latest.value() == BytesOf("gen-1") || latest.value() == BytesOf("gen-2"));
    if (!serves_valid_generation) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0)
      << "the matrix failed to catch the commit-before-increment protocol bug";
}

// Writes this binary's crash-point census for the verify.sh coverage gate
// (no-op unless FLICKER_CRASH_POINTS_OUT is set).
class CensusEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { ASSERT_TRUE(WriteCrashPointCensus("integration_crash_matrix_test")); }
};
::testing::Environment* const census_env =
    ::testing::AddGlobalTestEnvironment(new CensusEnvironment);

}  // namespace
}  // namespace flicker
